package tomo

import (
	"testing"
	"time"

	"iobt/internal/asset"
)

func TestProberHealthyNetwork(t *testing.T) {
	eng, net, pop := gridNet(t, 3)
	_ = pop
	p := NewProber(eng, net, []asset.ID{0, 2, 6, 8}, time.Second)
	p.Start(time.Second)
	p.Start(0) // idempotent
	_ = eng.Run(10 * time.Second)
	p.Stop()
	if p.Sent.Value() == 0 {
		t.Fatal("no probes sent")
	}
	if p.Lost.Value() != 0 {
		t.Errorf("lost %d probes on a lossless network", p.Lost.Value())
	}
	d := p.Diagnose(100)
	if len(d.Suspected) != 0 {
		t.Errorf("healthy network blamed: %v", d.Suspected)
	}
	if _, ok := p.MeanDelay(0, 8); !ok {
		t.Error("no delay samples for monitor pair")
	}
	if v, ok := p.MeanDelay(8, 0); !ok || v <= 0 {
		t.Error("flipped-pair delay lookup failed")
	}
}

func TestProberDetectsKilledRelay(t *testing.T) {
	eng, net, pop := gridNet(t, 3)
	_ = pop
	p := NewProber(eng, net, []asset.ID{1, 3, 5, 7}, time.Second)
	p.Start(time.Second)
	// Warm up, then kill the center node. The mesh keeps refreshing
	// (gridNet has no auto refresh, so refresh manually when killing).
	eng.Schedule(5*time.Second+time.Millisecond, "kill", func() {
		pop.Kill(4)
		// Routes recompute on the next probe round via version bump.
		net.Refresh()
	})
	_ = eng.Run(12 * time.Second)
	p.Stop()
	// After the kill, probe pairs that needed node 4 get no route at all
	// (probePair skips them), but the probes in flight at kill time and
	// the pre-kill observations still let the window show failures if
	// any were dropped mid-flight. The healthy pre-kill window must be
	// clean:
	d := Localize(p.Window(8))
	for _, l := range d.Suspected {
		if l.A != 4 && l.B != 4 {
			t.Errorf("innocent link blamed after relay death: %v", l)
		}
	}
}

func TestProberTimeoutCountsLoss(t *testing.T) {
	eng, net, pop := gridNet(t, 3)
	_ = pop
	p := NewProber(eng, net, []asset.ID{1, 7}, 500*time.Millisecond)
	// Kill the center immediately after the first probe departs: the
	// probe dies mid-flight and must time out as lost.
	p.Round()
	pop.Kill(4)
	_ = eng.Run(5 * time.Second)
	if p.Lost.Value() == 0 {
		t.Error("mid-flight probe loss not detected by timeout")
	}
	d := p.Diagnose(10)
	if len(d.Suspected) == 0 {
		t.Error("lost probe produced no suspects")
	}
	for _, l := range d.Suspected {
		if l.A != 4 && l.B != 4 {
			t.Errorf("innocent link blamed: %v", l)
		}
	}
}

func TestProberWindow(t *testing.T) {
	eng, net, pop := gridNet(t, 3)
	_ = pop
	p := NewProber(eng, net, []asset.ID{0, 8}, time.Second)
	p.Start(time.Second)
	_ = eng.Run(6 * time.Second)
	p.Stop()
	all := p.Observations()
	if len(all) < 3 {
		t.Fatalf("observations = %d", len(all))
	}
	if got := p.Window(2); len(got) != 2 {
		t.Errorf("Window(2) = %d", len(got))
	}
	if got := p.Window(10000); len(got) != len(all) {
		t.Errorf("oversized window = %d, want %d", len(got), len(all))
	}
}
