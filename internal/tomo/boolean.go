package tomo

import "sort"

// PathObservation is one end-to-end probe outcome.
type PathObservation struct {
	Path Path
	// OK reports whether the probe got through.
	OK bool
}

// Diagnosis is the Boolean failure-localization verdict.
type Diagnosis struct {
	// Suspected are the links blamed for the failed paths.
	Suspected []Link
	// Exonerated are links proven healthy (they carried an OK path).
	Exonerated []Link
	// Unexplained counts failed paths whose links were all exonerated
	// (inconsistent observations, e.g. transient loss).
	Unexplained int
}

// Localize performs Boolean tomography: every link on an OK path is
// healthy; the failed paths are then explained by a greedy minimal
// hitting set over the remaining candidate links.
func Localize(obs []PathObservation) *Diagnosis {
	good := map[Link]bool{}
	for _, o := range obs {
		if o.OK {
			for _, l := range o.Path.Links {
				good[l] = true
			}
		}
	}
	// Candidate sets for each failed path.
	type failedPath struct {
		candidates map[Link]bool
	}
	var failed []failedPath
	for _, o := range obs {
		if o.OK {
			continue
		}
		f := failedPath{candidates: map[Link]bool{}}
		for _, l := range o.Path.Links {
			if !good[l] {
				f.candidates[l] = true
			}
		}
		failed = append(failed, f)
	}
	d := &Diagnosis{}
	for l := range good {
		d.Exonerated = append(d.Exonerated, l)
	}
	sortLinks(d.Exonerated)

	// Greedy hitting set: repeatedly blame the candidate link covering
	// the most unexplained failed paths.
	unexplained := make([]bool, len(failed))
	for i := range unexplained {
		unexplained[i] = true
	}
	remaining := 0
	for i, f := range failed {
		if len(f.candidates) == 0 {
			unexplained[i] = false
			d.Unexplained++
		} else {
			remaining++
		}
	}
	blamed := map[Link]bool{}
	for remaining > 0 {
		counts := map[Link]int{}
		for i, f := range failed {
			if !unexplained[i] {
				continue
			}
			for l := range f.candidates {
				if !blamed[l] {
					counts[l]++
				}
			}
		}
		var best Link
		bestN := 0
		// Deterministic tie-break by link order.
		var cands []Link
		for l := range counts {
			cands = append(cands, l)
		}
		sortLinks(cands)
		for _, l := range cands {
			if counts[l] > bestN {
				best, bestN = l, counts[l]
			}
		}
		if bestN == 0 {
			break
		}
		blamed[best] = true
		for i, f := range failed {
			if unexplained[i] && f.candidates[best] {
				unexplained[i] = false
				remaining--
			}
		}
	}
	for l := range blamed {
		d.Suspected = append(d.Suspected, l)
	}
	sortLinks(d.Suspected)
	return d
}

// Score compares a diagnosis against ground-truth failed links.
type Score struct {
	Precision, Recall float64
}

// Evaluate scores Suspected against the true failed set.
func (d *Diagnosis) Evaluate(truth []Link) Score {
	truthSet := map[Link]bool{}
	for _, l := range truth {
		truthSet[l] = true
	}
	hit := 0
	for _, l := range d.Suspected {
		if truthSet[l] {
			hit++
		}
	}
	s := Score{}
	if len(d.Suspected) > 0 {
		s.Precision = float64(hit) / float64(len(d.Suspected))
	}
	if len(truth) > 0 {
		s.Recall = float64(hit) / float64(len(truth))
	}
	return s
}

func sortLinks(ls []Link) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].A != ls[j].A {
			return ls[i].A < ls[j].A
		}
		return ls[i].B < ls[j].B
	})
}
