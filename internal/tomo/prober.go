package tomo

import (
	"time"

	"iobt/internal/asset"
	"iobt/internal/mesh"
	"iobt/internal/sim"
)

// Prober actively measures the mesh: every interval it sends a probe
// between each monitor pair along the current route and records whether
// it arrived (Boolean tomography input) and how long it took (additive
// tomography input). Unlike CollectPaths — which snapshots topology —
// the prober experiences real loss, jamming, queueing, and mid-flight
// failures, making it the operational front end of the §V.A diagnostics.
type Prober struct {
	eng      *sim.Engine
	net      *mesh.Network
	monitors []asset.ID
	timeout  time.Duration
	ticker   *sim.Ticker

	nextID  int
	pending map[int]*probe

	obs []PathObservation
	// DelaySec records per-path measured delays, aligned with Delivered
	// observations (failed probes contribute no delay sample).
	delays map[pairKey]*sim.Series

	// Sent and Lost count probes.
	Sent sim.Counter
	Lost sim.Counter
}

type pairKey struct{ a, b asset.ID }

type probe struct {
	path Path
	sent time.Duration
}

// NewProber returns an unstarted prober over the monitor set. Timeout
// is how long a probe may be in flight before it counts as lost; zero
// defaults to 2s.
func NewProber(eng *sim.Engine, net *mesh.Network, monitors []asset.ID, timeout time.Duration) *Prober {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ms := make([]asset.ID, len(monitors))
	copy(ms, monitors)
	p := &Prober{
		eng:      eng,
		net:      net,
		monitors: ms,
		timeout:  timeout,
		pending:  make(map[int]*probe),
		delays:   make(map[pairKey]*sim.Series),
	}
	for _, m := range ms {
		id := m
		net.RegisterHandler(id, p.onDeliver)
	}
	return p
}

// Start begins periodic probing.
func (p *Prober) Start(interval time.Duration) {
	if p.ticker != nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	p.ticker = p.eng.Every(interval, "tomo.probe", p.Round)
}

// Stop halts probing.
func (p *Prober) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
		p.ticker = nil
	}
}

// Round sends one probe per monitor pair along the current route.
// Unroutable pairs are recorded immediately as failed observations of
// their last known path (if any) — silence is evidence too.
func (p *Prober) Round() {
	for i := 0; i < len(p.monitors); i++ {
		for j := i + 1; j < len(p.monitors); j++ {
			p.probePair(p.monitors[i], p.monitors[j])
		}
	}
}

func (p *Prober) probePair(a, b asset.ID) {
	route := p.net.Route(a, b)
	if route == nil || len(route) < 2 {
		return // nothing known to blame; Boolean tomography needs a path
	}
	pr := &probe{sent: p.eng.Now()}
	pr.path = Path{From: a, To: b}
	for k := 0; k+1 < len(route); k++ {
		pr.path.Links = append(pr.path.Links, MkLink(route[k], route[k+1]))
	}
	id := p.nextID
	p.nextID++
	p.pending[id] = pr
	p.Sent.Inc()
	err := p.net.Send(mesh.Message{From: a, To: b, Size: 64, Kind: "probe", Payload: id})
	if err != nil {
		p.fail(id)
		return
	}
	p.eng.Schedule(p.timeout, "tomo.timeout", func() { p.fail(id) })
}

func (p *Prober) onDeliver(msg mesh.Message) {
	if msg.Kind != "probe" {
		return
	}
	id, ok := msg.Payload.(int)
	if !ok {
		return
	}
	pr, live := p.pending[id]
	if !live {
		return // already timed out
	}
	delete(p.pending, id)
	p.obs = append(p.obs, PathObservation{Path: pr.path, OK: true})
	key := pairKey{pr.path.From, pr.path.To}
	s, have := p.delays[key]
	if !have {
		s = &sim.Series{}
		p.delays[key] = s
	}
	s.AddDuration(p.eng.Now() - pr.sent)
}

func (p *Prober) fail(id int) {
	pr, live := p.pending[id]
	if !live {
		return
	}
	delete(p.pending, id)
	p.Lost.Inc()
	p.obs = append(p.obs, PathObservation{Path: pr.path, OK: false})
}

// Observations returns a copy of accumulated path observations.
func (p *Prober) Observations() []PathObservation {
	out := make([]PathObservation, len(p.obs))
	copy(out, p.obs)
	return out
}

// Window returns the most recent n observations (or all if fewer).
func (p *Prober) Window(n int) []PathObservation {
	if n >= len(p.obs) {
		return p.Observations()
	}
	out := make([]PathObservation, n)
	copy(out, p.obs[len(p.obs)-n:])
	return out
}

// MeanDelay returns the mean measured delay between two monitors in
// seconds, and whether any sample exists.
func (p *Prober) MeanDelay(a, b asset.ID) (float64, bool) {
	s, ok := p.delays[pairKey{a, b}]
	if !ok || s.N() == 0 {
		// Probes store From/To in probePair order; try the flip.
		s, ok = p.delays[pairKey{b, a}]
		if !ok || s.N() == 0 {
			return 0, false
		}
	}
	return s.Mean(), true
}

// Diagnose runs Boolean localization over the latest window of
// observations.
func (p *Prober) Diagnose(window int) *Diagnosis {
	return Localize(p.Window(window))
}
