package tomo

import (
	"iobt/internal/asset"
	"iobt/internal/mesh"
)

// PlaceMonitors greedily selects up to k monitors from candidates so as
// to maximize the number of distinct links covered by monitor-pair
// routes — the "monitor placement for maximal identifiability"
// heuristic of the paper's ref [20]. It returns the chosen monitor IDs.
func PlaceMonitors(net *mesh.Network, candidates []asset.ID, k int) []asset.ID {
	if k <= 0 || len(candidates) == 0 {
		return nil
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	covered := map[Link]bool{}
	var chosen []asset.ID

	// coverageGain counts links newly covered by routes between cand and
	// every already-chosen monitor.
	coverageGain := func(cand asset.ID) int {
		gain := 0
		for _, m := range chosen {
			route := net.Route(cand, m)
			for i := 0; i+1 < len(route); i++ {
				if !covered[MkLink(route[i], route[i+1])] {
					gain++
				}
			}
		}
		return gain
	}
	commit := func(cand asset.ID) {
		for _, m := range chosen {
			route := net.Route(cand, m)
			for i := 0; i+1 < len(route); i++ {
				covered[MkLink(route[i], route[i+1])] = true
			}
		}
		chosen = append(chosen, cand)
	}

	// Seed: the candidate pair with the longest route between them.
	bestI, bestJ, bestLen := -1, -1, -1
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			if r := net.Route(candidates[i], candidates[j]); r != nil && len(r) > bestLen {
				bestI, bestJ, bestLen = i, j, len(r)
			}
		}
	}
	if bestI < 0 {
		// No connected pair; fall back to the first candidates.
		for i := 0; i < k; i++ {
			chosen = append(chosen, candidates[i])
		}
		return chosen
	}
	chosen = append(chosen, candidates[bestI])
	commit(candidates[bestJ])

	for len(chosen) < k {
		best, bestGain := asset.None, -1
		for _, cand := range candidates {
			if contains(chosen, cand) {
				continue
			}
			if g := coverageGain(cand); g > bestGain {
				best, bestGain = cand, g
			}
		}
		if best == asset.None {
			break
		}
		commit(best)
	}
	return chosen
}

func contains(ids []asset.ID, id asset.ID) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
