package tomo

import (
	"math"
	"testing"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/mesh"
	"iobt/internal/sim"
)

// lineNet builds an n-node line network (node i at x=i*100).
func lineNet(t *testing.T, n int) (*sim.Engine, *mesh.Network, *asset.Population) {
	t.Helper()
	eng := sim.NewEngine(1)
	terr := geo.NewOpenTerrain(float64(n+1)*100, 500)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 150
	for i := 0; i < n; i++ {
		a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
			Mobility: &geo.Static{P: geo.Point{X: float64(i+1) * 100, Y: 250}}}
		a.Energy = caps.EnergyCap
		pop.Add(a)
	}
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	cfg.LossBase = 0
	return eng, mesh.New(eng, pop, terr, cfg), pop
}

// gridNet builds a k x k grid network.
func gridNet(t *testing.T, k int) (*sim.Engine, *mesh.Network, *asset.Population) {
	t.Helper()
	eng := sim.NewEngine(2)
	terr := geo.NewOpenTerrain(float64(k+1)*100, float64(k+1)*100)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 120
	for iy := 0; iy < k; iy++ {
		for ix := 0; ix < k; ix++ {
			a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
				Mobility: &geo.Static{P: geo.Point{X: float64(ix+1) * 100, Y: float64(iy+1) * 100}}}
			a.Energy = caps.EnergyCap
			pop.Add(a)
		}
	}
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	cfg.LossBase = 0
	return eng, mesh.New(eng, pop, terr, cfg), pop
}

func TestMkLinkNormalizes(t *testing.T) {
	if MkLink(5, 2) != MkLink(2, 5) {
		t.Error("link not normalized")
	}
}

func TestCollectPaths(t *testing.T) {
	_, net, _ := lineNet(t, 5)
	paths, links := CollectPaths(net, []asset.ID{0, 4})
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	if len(paths[0].Links) != 4 || len(links) != 4 {
		t.Errorf("links = %d, want 4", len(links))
	}
	// Disconnected monitors yield no path.
	_, _, pop := lineNet(t, 5)
	_ = pop
}

func TestInferDelaysFullyIdentifiableLine(t *testing.T) {
	_, net, _ := lineNet(t, 4) // links: 0-1, 1-2, 2-3
	monitors := []asset.ID{0, 1, 2, 3}
	paths, links := CollectPaths(net, monitors)
	// Ground-truth delays.
	truth := map[Link]float64{
		MkLink(0, 1): 5,
		MkLink(1, 2): 9,
		MkLink(2, 3): 2,
	}
	meas := make([]float64, len(paths))
	for i, p := range paths {
		for _, l := range p.Links {
			meas[i] += truth[l]
		}
	}
	est := InferDelays(paths, links, meas)
	if est.Rank != 3 {
		t.Errorf("rank = %d, want 3", est.Rank)
	}
	for i, l := range links {
		if !est.Identifiable[i] {
			t.Errorf("link %v should be identifiable with all-node monitors", l)
		}
		if math.Abs(est.Est[i]-truth[l]) > 0.01 {
			t.Errorf("link %v delay = %.3f, want %.3f", l, est.Est[i], truth[l])
		}
	}
}

func TestInferDelaysUnderdetermined(t *testing.T) {
	_, net, _ := lineNet(t, 4)
	// Only the two end monitors: a single path, three unknowns.
	paths, links := CollectPaths(net, []asset.ID{0, 3})
	meas := []float64{16}
	est := InferDelays(paths, links, meas)
	if est.Rank != 1 {
		t.Errorf("rank = %d, want 1", est.Rank)
	}
	for i := range links {
		if est.Identifiable[i] {
			t.Errorf("link %v should NOT be identifiable from one path", links[i])
		}
	}
	// The sum along the path must still be explained.
	sum := est.Est[0] + est.Est[1] + est.Est[2]
	if math.Abs(sum-16) > 0.1 {
		t.Errorf("estimated path sum = %.2f, want 16", sum)
	}
}

func TestInferDelaysEmpty(t *testing.T) {
	est := InferDelays(nil, nil, nil)
	if est.Rank != 0 || len(est.Est) != 0 {
		t.Error("empty inference should be empty")
	}
}

func TestMoreMonitorsMoreIdentifiable(t *testing.T) {
	count := func(monitors []asset.ID) int {
		_, net, _ := gridNet(t, 4)
		paths, links := CollectPaths(net, monitors)
		meas := make([]float64, len(paths)) // zeros fine for rank
		est := InferDelays(paths, links, meas)
		n := 0
		for _, ok := range est.Identifiable {
			if ok {
				n++
			}
		}
		_ = links
		return n
	}
	few := count([]asset.ID{0, 15})
	many := count([]asset.ID{0, 3, 12, 15, 5, 10})
	if many <= few {
		t.Errorf("identifiable links: few=%d many=%d; want growth with monitors", few, many)
	}
}

func TestLocalizeSingleFailure(t *testing.T) {
	_, net, pop := gridNet(t, 3)
	// Edge-midpoint monitors: the shortest 1-7 and 3-5 paths must cross
	// the center node 4.
	monitors := []asset.ID{1, 3, 5, 7}
	paths, _ := CollectPaths(net, monitors)
	// Fail node 4's links by killing it, then re-probe the OLD paths:
	// paths through node 4 fail.
	dead := asset.ID(4)
	pop.Kill(dead)
	net.Refresh()
	var obs []PathObservation
	for _, p := range paths {
		ok := true
		for _, l := range p.Links {
			if l.A == dead || l.B == dead {
				ok = false
				break
			}
		}
		obs = append(obs, PathObservation{Path: p, OK: ok})
	}
	d := Localize(obs)
	// All suspected links must touch the dead node.
	for _, l := range d.Suspected {
		if l.A != dead && l.B != dead {
			t.Errorf("innocent link blamed: %v", l)
		}
	}
	if len(d.Suspected) == 0 {
		t.Error("nothing blamed for failed paths")
	}
	if len(d.Exonerated) == 0 {
		t.Error("no links exonerated despite OK paths")
	}
}

func TestLocalizeAllOK(t *testing.T) {
	_, net, _ := lineNet(t, 4)
	paths, _ := CollectPaths(net, []asset.ID{0, 3})
	d := Localize([]PathObservation{{Path: paths[0], OK: true}})
	if len(d.Suspected) != 0 {
		t.Errorf("suspected = %v with all paths OK", d.Suspected)
	}
	if d.Unexplained != 0 {
		t.Error("unexplained should be 0")
	}
}

func TestLocalizeInconsistent(t *testing.T) {
	// The same path reported both OK and failed: all its links get
	// exonerated, leaving the failure unexplained.
	p := Path{From: 0, To: 1, Links: []Link{MkLink(0, 1)}}
	d := Localize([]PathObservation{{Path: p, OK: true}, {Path: p, OK: false}})
	if d.Unexplained != 1 {
		t.Errorf("unexplained = %d, want 1", d.Unexplained)
	}
}

func TestDiagnosisEvaluate(t *testing.T) {
	d := &Diagnosis{Suspected: []Link{MkLink(1, 2), MkLink(3, 4)}}
	s := d.Evaluate([]Link{MkLink(1, 2)})
	if s.Precision != 0.5 || s.Recall != 1 {
		t.Errorf("score = %+v", s)
	}
	empty := (&Diagnosis{}).Evaluate(nil)
	if empty.Precision != 0 || empty.Recall != 0 {
		t.Error("empty evaluate should be zeros")
	}
}

func TestPlaceMonitors(t *testing.T) {
	_, net, _ := gridNet(t, 4)
	var candidates []asset.ID
	for i := 0; i < 16; i++ {
		candidates = append(candidates, asset.ID(i))
	}
	chosen := PlaceMonitors(net, candidates, 4)
	if len(chosen) != 4 {
		t.Fatalf("chosen = %v", chosen)
	}
	// Chosen monitors must be distinct.
	seen := map[asset.ID]bool{}
	for _, id := range chosen {
		if seen[id] {
			t.Fatalf("duplicate monitor %d", id)
		}
		seen[id] = true
	}
	// Placement coverage should beat a naive corner choice... at minimum
	// it must produce connected pairs.
	paths, links := CollectPaths(net, chosen)
	if len(paths) == 0 || len(links) == 0 {
		t.Error("placed monitors cover nothing")
	}
	if PlaceMonitors(net, candidates, 0) != nil {
		t.Error("k=0 should be nil")
	}
	if got := PlaceMonitors(net, candidates[:2], 5); len(got) != 2 {
		t.Errorf("k beyond candidates should clamp: %v", got)
	}
}
