// Package tomo implements network tomography (paper §V.A "System
// diagnostics"): inferring the health of links that cannot be observed
// directly from end-to-end measurements between monitor nodes — the
// paper's refs [19]-[22]. Two inference problems are covered:
//
//   - additive metrics: per-link delays recovered from path delay sums
//     by least squares over the routing matrix (identifiability is
//     exactly the matrix rank);
//   - Boolean diagnosis: failed links localized from path up/down
//     observations (links on any working path are exonerated; a greedy
//     minimal hitting set explains the failed paths).
package tomo

import (
	"math"
	"sort"

	"iobt/internal/asset"
	"iobt/internal/mesh"
)

// Link is an undirected node pair, normalized so A <= B.
type Link struct {
	A, B asset.ID
}

// MkLink returns the normalized link between two nodes.
func MkLink(a, b asset.ID) Link {
	if a > b {
		a, b = b, a
	}
	return Link{A: a, B: b}
}

// Path is a monitor-to-monitor route expressed as its links.
type Path struct {
	From, To asset.ID
	Links    []Link
}

// CollectPaths computes the current route between every ordered monitor
// pair (deduplicated as unordered) and returns the paths plus the sorted
// universe of links they cover.
func CollectPaths(net *mesh.Network, monitors []asset.ID) ([]Path, []Link) {
	seen := map[[2]asset.ID]bool{}
	linkSet := map[Link]bool{}
	var paths []Path
	for i := 0; i < len(monitors); i++ {
		for j := i + 1; j < len(monitors); j++ {
			a, b := monitors[i], monitors[j]
			key := [2]asset.ID{a, b}
			if a > b {
				key = [2]asset.ID{b, a}
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			route := net.Route(a, b)
			if route == nil || len(route) < 2 {
				continue
			}
			p := Path{From: a, To: b}
			for k := 0; k+1 < len(route); k++ {
				l := MkLink(route[k], route[k+1])
				p.Links = append(p.Links, l)
				linkSet[l] = true
			}
			paths = append(paths, p)
		}
	}
	links := make([]Link, 0, len(linkSet))
	for l := range linkSet {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].A != links[j].A {
			return links[i].A < links[j].A
		}
		return links[i].B < links[j].B
	})
	return paths, links
}

// DelayEstimate is the additive-metric inference result.
type DelayEstimate struct {
	Links []Link
	// Est holds the estimated per-link delay, aligned with Links.
	Est []float64
	// Identifiable marks links whose estimate is uniquely determined by
	// the routing matrix (pivot columns of its row-reduced form).
	Identifiable []bool
	// Rank is the routing-matrix rank: the number of independently
	// measurable link combinations.
	Rank int
}

// InferDelays solves the additive tomography problem: measurements[i]
// is the end-to-end delay of paths[i]; the result estimates per-link
// delays by least squares (normal equations with light Tikhonov
// regularization for the unidentifiable null space) and reports which
// links are identifiable.
func InferDelays(paths []Path, links []Link, measurements []float64) *DelayEstimate {
	nL := len(links)
	idx := make(map[Link]int, nL)
	for i, l := range links {
		idx[l] = i
	}
	// Build A (paths x links).
	a := make([][]float64, len(paths))
	for i, p := range paths {
		row := make([]float64, nL)
		for _, l := range p.Links {
			if j, ok := idx[l]; ok {
				row[j] = 1
			}
		}
		a[i] = row
	}
	est := &DelayEstimate{
		Links:        links,
		Est:          make([]float64, nL),
		Identifiable: make([]bool, nL),
	}
	if len(paths) == 0 || nL == 0 {
		return est
	}
	est.Rank, est.Identifiable = rankAndPivots(a)

	// Normal equations with ridge: (AtA + eps I) x = At y.
	ata := make([][]float64, nL)
	aty := make([]float64, nL)
	for i := 0; i < nL; i++ {
		ata[i] = make([]float64, nL)
	}
	for r := range a {
		for i := 0; i < nL; i++ {
			if a[r][i] == 0 {
				continue
			}
			aty[i] += measurements[r]
			for j := 0; j < nL; j++ {
				if a[r][j] != 0 {
					ata[i][j]++
				}
			}
		}
	}
	const eps = 1e-6
	for i := 0; i < nL; i++ {
		ata[i][i] += eps
	}
	x := solveGaussian(ata, aty)
	copy(est.Est, x)
	return est
}

// rankAndPivots row-reduces a copy of A and returns (rank, pivotColumns)
// — pivot columns correspond to identifiable links when combined with
// full column pivoting reasoning; here a column is flagged identifiable
// if it is a pivot and its row has no other free-column support, which
// matches the exact-identifiability cases the tests exercise.
func rankAndPivots(a [][]float64) (int, []bool) {
	if len(a) == 0 {
		return 0, nil
	}
	rows, cols := len(a), len(a[0])
	m := make([][]float64, rows)
	for i := range a {
		m[i] = make([]float64, cols)
		copy(m[i], a[i])
	}
	pivotCol := make([]int, 0, rows)
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		// Find pivot.
		p := -1
		for i := r; i < rows; i++ {
			if math.Abs(m[i][c]) > 1e-9 {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		m[r], m[p] = m[p], m[r]
		pv := m[r][c]
		for j := c; j < cols; j++ {
			m[r][j] /= pv
		}
		for i := 0; i < rows; i++ {
			if i == r {
				continue
			}
			f := m[i][c]
			if math.Abs(f) < 1e-12 {
				continue
			}
			for j := c; j < cols; j++ {
				m[i][j] -= f * m[r][j]
			}
		}
		pivotCol = append(pivotCol, c)
		r++
	}
	rank := r
	ident := make([]bool, cols)
	// A pivot column is identifiable iff its defining reduced row has
	// support only on that column (delay fully pinned down).
	for ri, c := range pivotCol {
		clean := true
		for j := 0; j < cols; j++ {
			if j != c && math.Abs(m[ri][j]) > 1e-9 {
				clean = false
				break
			}
		}
		ident[c] = clean
	}
	return rank, ident
}

// solveGaussian solves the square system M x = b in place (copies made).
func solveGaussian(mIn [][]float64, bIn []float64) []float64 {
	n := len(bIn)
	m := make([][]float64, n)
	for i := range mIn {
		m[i] = make([]float64, n)
		copy(m[i], mIn[i])
	}
	b := make([]float64, n)
	copy(b, bIn)
	for c := 0; c < n; c++ {
		// Partial pivot.
		p := c
		for i := c + 1; i < n; i++ {
			if math.Abs(m[i][c]) > math.Abs(m[p][c]) {
				p = i
			}
		}
		if math.Abs(m[p][c]) < 1e-12 {
			continue
		}
		m[c], m[p] = m[p], m[c]
		b[c], b[p] = b[p], b[c]
		for i := 0; i < n; i++ {
			if i == c {
				continue
			}
			f := m[i][c] / m[c][c]
			if f == 0 {
				continue
			}
			for j := c; j < n; j++ {
				m[i][j] -= f * m[c][j]
			}
			b[i] -= f * b[c]
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		if math.Abs(m[i][i]) > 1e-12 {
			x[i] = b[i] / m[i][i]
		}
	}
	return x
}
