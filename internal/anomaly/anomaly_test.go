package anomaly

import (
	"math"
	"testing"

	"iobt/internal/sim"
)

func TestDetectorFlagsSpike(t *testing.T) {
	d := NewDetector(0.1, 3)
	rng := sim.NewRNG(1)
	for i := 0; i < 200; i++ {
		d.Observe(rng.Norm(10, 1))
	}
	if d.Anomalous(10.5) {
		t.Error("normal value flagged")
	}
	if !d.Anomalous(30) {
		t.Error("20-sigma spike not flagged")
	}
}

func TestDetectorRobustToBurst(t *testing.T) {
	d := NewDetector(0.1, 3)
	rng := sim.NewRNG(2)
	for i := 0; i < 200; i++ {
		d.Observe(rng.Norm(10, 1))
	}
	// A burst of attack values must not become the new normal.
	for i := 0; i < 20; i++ {
		d.Observe(100)
	}
	if !d.Anomalous(100) {
		t.Error("baseline dragged to the attack value")
	}
	if d.Anomalous(10) {
		t.Error("true normal now flagged after burst")
	}
}

func TestDetectorColdStart(t *testing.T) {
	d := NewDetector(0.1, 3)
	if d.Score(42) != 0 {
		t.Error("cold detector should score 0")
	}
	d.Observe(1)
	if d.Score(100) != 0 {
		t.Error("single-sample detector should withhold judgment")
	}
}

func TestDetectorZeroVariance(t *testing.T) {
	d := NewDetector(0.1, 3)
	for i := 0; i < 10; i++ {
		d.Observe(5)
	}
	if d.Score(5) != 0 {
		t.Error("exact match on constant stream should score 0")
	}
	if !d.Anomalous(6) {
		t.Error("any deviation from a constant stream is anomalous")
	}
}

func TestDetectorDefaults(t *testing.T) {
	d := NewDetector(-1, 0)
	if d.alpha != 0.05 || d.Threshold != 3 {
		t.Error("invalid params should default")
	}
}

func TestMAD(t *testing.T) {
	window := []float64{10, 11, 9, 10, 10, 12, 8}
	if s := MAD(window, 10); s > 1 {
		t.Errorf("central value MAD score = %v", s)
	}
	if s := MAD(window, 50); s < 5 {
		t.Errorf("outlier MAD score = %v", s)
	}
	if MAD(nil, 5) != 0 {
		t.Error("empty window should score 0")
	}
	if !math.IsInf(MAD([]float64{5, 5, 5}, 6), 1) {
		t.Error("deviation from zero-MAD window should be +inf")
	}
	if MAD([]float64{5, 5, 5}, 5) != 0 {
		t.Error("match on zero-MAD window should be 0")
	}
}

func TestMADRobustToContamination(t *testing.T) {
	// 40% of the window is attacker-controlled garbage.
	window := []float64{10, 10, 11, 9, 10, 10, 500, 500, 500, 490}
	if s := MAD(window, 10); s > 2 {
		t.Errorf("honest value flagged under contamination: %v", s)
	}
	if s := MAD(window, 500); s < 5 {
		t.Errorf("attack value not flagged: %v", s)
	}
}

func TestAttentionPersistentBeatsDecoy(t *testing.T) {
	a := NewAttention(10, 3)
	rng := sim.NewRNG(3)
	// Warm up three situations.
	for i := 0; i < 100; i++ {
		a.Observe("quiet", rng.Norm(0, 1))
		a.Observe("decoy", rng.Norm(0, 1))
		a.Observe("threat", rng.Norm(0, 1))
	}
	// Decoy: one huge spike. Threat: sustained moderate anomaly.
	a.Observe("decoy", 1000)
	for i := 0; i < 8; i++ {
		a.Observe("threat", 25)
		a.Observe("decoy", rng.Norm(0, 1))
		a.Observe("quiet", rng.Norm(0, 1))
	}
	ranked := a.Ranked()
	if len(ranked) == 0 || ranked[0] != "threat" {
		t.Fatalf("ranked = %v, want threat first", ranked)
	}
	for _, name := range ranked {
		if name == "decoy" {
			t.Error("single-spike decoy captured attention")
		}
		if name == "quiet" {
			t.Error("quiet situation flagged")
		}
	}
}

func TestAttentionEmpty(t *testing.T) {
	a := NewAttention(0, 0)
	if len(a.Ranked()) != 0 {
		t.Error("empty attention should rank nothing")
	}
}

func TestSourceAuditFindsBiasedSource(t *testing.T) {
	audit := NewSourceAudit()
	rng := sim.NewRNG(4)
	for round := 0; round < 50; round++ {
		truth := rng.Norm(20, 2)
		reports := map[int]float64{}
		for src := 0; src < 9; src++ {
			reports[src] = truth + rng.Norm(0, 0.5)
		}
		reports[9] = truth + 15 // systematically biased source
		audit.Round(reports)
	}
	bad := audit.BadSources(3)
	if len(bad) != 1 || bad[0] != 9 {
		t.Errorf("BadSources = %v, want [9]", bad)
	}
	if audit.MeanDeviation(9) < audit.MeanDeviation(0)*3 {
		t.Error("biased source deviation not dominant")
	}
}

func TestSourceAuditEdges(t *testing.T) {
	audit := NewSourceAudit()
	audit.Round(nil)
	if audit.BadSources(0) != nil {
		t.Error("empty audit should return nil")
	}
	if audit.MeanDeviation(5) != 0 {
		t.Error("unknown source deviation should be 0")
	}
	// All sources identical: nobody is bad.
	audit.Round(map[int]float64{1: 5, 2: 5, 3: 5})
	if len(audit.BadSources(3)) != 0 {
		t.Error("identical sources flagged")
	}
}
