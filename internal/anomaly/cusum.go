package anomaly

import "math"

// CUSUM is a two-sided cumulative-sum quickest-change detector (Page's
// test): it accumulates evidence of a persistent mean shift and alarms
// when either side's statistic crosses the threshold. Where the z-score
// Detector needs a single large excursion, CUSUM detects small but
// sustained shifts with minimal expected delay — the classical quickest
// change detection setting (the paper's state-assessment services, §V.A).
type CUSUM struct {
	// Mu0 and Sigma describe the in-control distribution.
	Mu0, Sigma float64
	// Drift is the half-shift allowance k, in sigmas (detects shifts
	// larger than ~2k); threshold h is also in sigmas.
	Drift, Threshold float64

	hi, lo float64
	// Alarms counts threshold crossings.
	Alarms int
}

// NewCUSUM returns a detector for the given in-control mean and
// standard deviation. Non-positive drift defaults to 0.5 sigma,
// non-positive threshold to 5 sigma (the ARL-standard choice).
func NewCUSUM(mu0, sigma, drift, threshold float64) *CUSUM {
	if sigma <= 0 {
		sigma = 1
	}
	if drift <= 0 {
		drift = 0.5
	}
	if threshold <= 0 {
		threshold = 5
	}
	return &CUSUM{Mu0: mu0, Sigma: sigma, Drift: drift, Threshold: threshold}
}

// Observe folds in one sample and reports whether the detector alarms
// on it. After an alarm the statistics reset, arming the detector for
// the next change.
func (c *CUSUM) Observe(v float64) bool {
	z := (v - c.Mu0) / c.Sigma
	c.hi = math.Max(0, c.hi+z-c.Drift)
	c.lo = math.Max(0, c.lo-z-c.Drift)
	if c.hi > c.Threshold || c.lo > c.Threshold {
		c.hi, c.lo = 0, 0
		c.Alarms++
		return true
	}
	return false
}

// Stat returns the larger of the two one-sided statistics (how close
// the detector is to alarming, in sigma units).
func (c *CUSUM) Stat() float64 { return math.Max(c.hi, c.lo) }

// Reset clears the accumulated statistics without counting an alarm.
func (c *CUSUM) Reset() { c.hi, c.lo = 0, 0 }
