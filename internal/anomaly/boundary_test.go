package anomaly

import (
	"math"
	"testing"
)

// TestDetectorBoundaries drives the streaming z-score detector through
// its edge regimes: cold start, constant (zero-variance) streams,
// parameter clamping, and the ramp-up/freeze transition.
func TestDetectorBoundaries(t *testing.T) {
	t.Run("cold-start-scores-zero", func(t *testing.T) {
		d := NewDetector(0.1, 3)
		if s := d.Score(1e9); s != 0 {
			t.Errorf("score before two observations = %v, want 0", s)
		}
		d.Observe(5)
		if s := d.Score(1e9); s != 0 {
			t.Errorf("score after one observation = %v, want 0", s)
		}
	})

	t.Run("constant-stream", func(t *testing.T) {
		d := NewDetector(0.1, 3)
		for i := 0; i < 50; i++ {
			d.Observe(7)
		}
		if s := d.Score(7); s != 0 {
			t.Errorf("score of the constant value = %v, want 0", s)
		}
		// Any deviation from a zero-variance baseline is maximally
		// anomalous.
		if !d.Anomalous(7.001) {
			t.Error("deviation from constant stream not anomalous")
		}
	})

	t.Run("param-clamping", func(t *testing.T) {
		for _, d := range []*Detector{
			NewDetector(0, 0), NewDetector(-1, -2), NewDetector(1, 3), NewDetector(2, 0),
		} {
			if d.Threshold <= 0 {
				t.Errorf("threshold not clamped: %v", d.Threshold)
			}
			if d.alpha <= 0 || d.alpha >= 1 {
				t.Errorf("alpha not clamped: %v", d.alpha)
			}
		}
	})

	t.Run("frozen-baseline-resists-attack-burst", func(t *testing.T) {
		d := NewDetector(0.1, 3)
		for i := 0; i < 40; i++ {
			d.Observe(10 + 0.1*float64(i%5)) // settled normal around 10
		}
		// A sustained burst of attack values must stay anomalous: the
		// frozen baseline refuses to absorb them.
		for i := 0; i < 20; i++ {
			if !d.Anomalous(1000) {
				t.Fatalf("attack value legitimized after %d observations", i)
			}
			d.Observe(1000)
		}
	})
}

// TestMADBoundaries covers the robust scorer's degenerate windows.
func TestMADBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		window []float64
		v      float64
		want   float64
	}{
		{"empty-window", nil, 42, 0},
		{"identical-window-same-value", []float64{5, 5, 5}, 5, 0},
		{"identical-window-other-value", []float64{5, 5, 5}, 6, math.Inf(1)},
		{"single-element-same", []float64{3}, 3, 0},
		{"single-element-other", []float64{3}, 9, math.Inf(1)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := MAD(tc.window, tc.v); got != tc.want {
				t.Errorf("MAD(%v, %v) = %v, want %v", tc.window, tc.v, got, tc.want)
			}
		})
	}
	t.Run("robust-to-contamination", func(t *testing.T) {
		window := []float64{10, 10.1, 9.9, 10.2, 9.8, 1000, 1000} // 2/7 contaminated
		if s := MAD(window, 10); s > 3 {
			t.Errorf("inlier scored %v against contaminated window", s)
		}
		if s := MAD(window, 1000); s < 3 {
			t.Errorf("outlier scored only %v against contaminated window", s)
		}
	})
}

// TestAttentionBoundaries covers the attention service's parameter
// clamps and its one-shot-decoy vs sustained-anomaly discrimination.
func TestAttentionBoundaries(t *testing.T) {
	t.Run("no-observations", func(t *testing.T) {
		a := NewAttention(0, 0) // both clamped to defaults
		if r := a.Ranked(); len(r) != 0 {
			t.Errorf("empty service ranked %v", r)
		}
	})

	t.Run("minhits-above-window-clamped", func(t *testing.T) {
		a := NewAttention(4, 99)
		if a.minHits > a.window {
			t.Errorf("minHits %d > window %d", a.minHits, a.window)
		}
	})

	t.Run("single-spike-not-ranked", func(t *testing.T) {
		a := NewAttention(10, 3)
		for i := 0; i < 40; i++ {
			a.Observe("decoy", 5)
		}
		a.Observe("decoy", 500) // one-shot distraction
		for i := 0; i < 5; i++ {
			a.Observe("decoy", 5)
		}
		if r := a.Ranked(); len(r) != 0 {
			t.Errorf("one-shot spike earned attention: %v", r)
		}
	})

	t.Run("sustained-anomaly-ranked", func(t *testing.T) {
		a := NewAttention(10, 3)
		for i := 0; i < 40; i++ {
			a.Observe("real", 5)
		}
		for i := 0; i < 5; i++ {
			a.Observe("real", 500)
		}
		r := a.Ranked()
		if len(r) != 1 || r[0] != "real" {
			t.Errorf("sustained anomaly not ranked: %v", r)
		}
	})
}

// TestCUSUMBoundaries covers parameter clamping, the
// no-change/small-shift/persistent-shift regimes, and reset semantics.
func TestCUSUMBoundaries(t *testing.T) {
	t.Run("param-clamping", func(t *testing.T) {
		c := NewCUSUM(0, -1, -1, -1)
		if c.Sigma != 1 || c.Drift != 0.5 || c.Threshold != 5 {
			t.Errorf("defaults not applied: sigma=%v drift=%v threshold=%v", c.Sigma, c.Drift, c.Threshold)
		}
	})

	t.Run("in-control-never-alarms", func(t *testing.T) {
		c := NewCUSUM(10, 1, 0.5, 5)
		vals := []float64{10.2, 9.8, 10.1, 9.9, 10, 10.3, 9.7}
		for i := 0; i < 100; i++ {
			if c.Observe(vals[i%len(vals)]) {
				t.Fatalf("alarm on in-control stream at sample %d", i)
			}
		}
	})

	t.Run("persistent-shift-alarms", func(t *testing.T) {
		c := NewCUSUM(10, 1, 0.5, 5)
		alarmed := false
		for i := 0; i < 30; i++ {
			if c.Observe(12) { // +2 sigma sustained
				alarmed = true
				break
			}
		}
		if !alarmed {
			t.Fatal("no alarm on a sustained +2-sigma shift")
		}
		if c.Stat() != 0 {
			t.Errorf("statistics not reset after alarm: %v", c.Stat())
		}
	})

	t.Run("downward-shift-alarms", func(t *testing.T) {
		c := NewCUSUM(10, 1, 0.5, 5)
		alarmed := false
		for i := 0; i < 30; i++ {
			if c.Observe(8) {
				alarmed = true
				break
			}
		}
		if !alarmed {
			t.Fatal("no alarm on a sustained -2-sigma shift")
		}
	})

	t.Run("reset-disarms-without-alarm", func(t *testing.T) {
		c := NewCUSUM(10, 1, 0.5, 5)
		for i := 0; i < 3; i++ {
			c.Observe(12)
		}
		if c.Stat() == 0 {
			t.Fatal("statistic did not accumulate")
		}
		c.Reset()
		if c.Stat() != 0 || c.Alarms != 0 {
			t.Errorf("Reset left stat=%v alarms=%d", c.Stat(), c.Alarms)
		}
	})
}

// TestSourceAuditBoundaries covers the audit's degenerate inputs: no
// rounds, an empty round, a single source, and perfect consensus.
func TestSourceAuditBoundaries(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		s := NewSourceAudit()
		s.Round(nil)
		s.Round(map[int]float64{})
		if bad := s.BadSources(3); bad != nil {
			t.Errorf("empty audit flagged %v", bad)
		}
		if d := s.MeanDeviation(7); d != 0 {
			t.Errorf("unknown source deviation = %v, want 0", d)
		}
	})

	t.Run("single-source-is-its-own-consensus", func(t *testing.T) {
		s := NewSourceAudit()
		s.Round(map[int]float64{1: 42})
		if d := s.MeanDeviation(1); d != 0 {
			t.Errorf("single source deviation = %v, want 0", d)
		}
	})

	t.Run("perfect-consensus-flags-nobody", func(t *testing.T) {
		s := NewSourceAudit()
		for i := 0; i < 5; i++ {
			s.Round(map[int]float64{1: 10, 2: 10, 3: 10})
		}
		if bad := s.BadSources(3); len(bad) != 0 {
			t.Errorf("perfect consensus flagged %v", bad)
		}
	})

	t.Run("liar-flagged-worst-first", func(t *testing.T) {
		s := NewSourceAudit()
		for i := 0; i < 10; i++ {
			s.Round(map[int]float64{1: 10, 2: 10.1, 3: 9.9, 4: 50, 5: 30})
		}
		bad := s.BadSources(3)
		if len(bad) != 2 || bad[0] != 4 || bad[1] != 5 {
			t.Errorf("BadSources = %v, want [4 5] (worst first)", bad)
		}
	})
}
