package anomaly

import "sort"

// Attention ranks situations (streams) by persistent anomaly evidence.
// A situation earns attention by exceeding its detector threshold in
// m-of-n recent observations; a one-shot decoy spike therefore cannot
// outrank a sustained anomaly — the paper's requirement that attention
// services resist "intentionally-designed distractions".
type Attention struct {
	window   int
	minHits  int
	streams  map[string]*attnStream
	detAlpha float64
	detThr   float64
}

type attnStream struct {
	det  *Detector
	hits []bool // ring of recent exceedances
	pos  int
}

// NewAttention returns an attention service requiring minHits anomalous
// observations within the last window to flag a situation.
func NewAttention(window, minHits int) *Attention {
	if window <= 0 {
		window = 10
	}
	if minHits <= 0 || minHits > window {
		minHits = (window + 1) / 2
	}
	return &Attention{
		window:   window,
		minHits:  minHits,
		streams:  make(map[string]*attnStream),
		detAlpha: 0.05,
		detThr:   3,
	}
}

// Observe feeds one reading for the named situation.
func (a *Attention) Observe(name string, v float64) {
	s, ok := a.streams[name]
	if !ok {
		s = &attnStream{det: NewDetector(a.detAlpha, a.detThr), hits: make([]bool, a.window)}
		a.streams[name] = s
	}
	score := s.det.Observe(v)
	s.hits[s.pos] = score > a.detThr
	s.pos = (s.pos + 1) % a.window
}

// hitCount returns the exceedances in the window.
func (s *attnStream) hitCount() int {
	n := 0
	for _, h := range s.hits {
		if h {
			n++
		}
	}
	return n
}

// Ranked returns situation names ordered by attention priority
// (persistent anomalies first); situations below minHits are excluded.
func (a *Attention) Ranked() []string {
	type entry struct {
		name string
		hits int
	}
	var out []entry
	for name, s := range a.streams {
		if h := s.hitCount(); h >= a.minHits {
			out = append(out, entry{name, h})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].hits != out[j].hits {
			return out[i].hits > out[j].hits
		}
		return out[i].name < out[j].name
	})
	names := make([]string, len(out))
	for i, e := range out {
		names[i] = e.name
	}
	return names
}

// SourceAudit identifies bad sources by systematic deviation from the
// peer consensus (median) on a shared quantity, feeding the result back
// into trust.
type SourceAudit struct {
	// deviations accumulates |report - consensus| per source.
	deviations map[int]float64
	counts     map[int]int
}

// NewSourceAudit returns an empty audit.
func NewSourceAudit() *SourceAudit {
	return &SourceAudit{deviations: make(map[int]float64), counts: make(map[int]int)}
}

// Round ingests one round of reports about the same ground quantity:
// reports[source] = value. Consensus is the median report.
func (s *SourceAudit) Round(reports map[int]float64) {
	if len(reports) == 0 {
		return
	}
	vals := make([]float64, 0, len(reports))
	//iobt:allow maporder vals only feeds median(), which sorts its argument; the result is order-insensitive
	for _, v := range reports {
		vals = append(vals, v)
	}
	consensus := median(vals)
	for src, v := range reports {
		d := v - consensus
		if d < 0 {
			d = -d
		}
		s.deviations[src] += d
		s.counts[src]++
	}
}

// MeanDeviation returns a source's average deviation from consensus.
func (s *SourceAudit) MeanDeviation(src int) float64 {
	n := s.counts[src]
	if n == 0 {
		return 0
	}
	return s.deviations[src] / float64(n)
}

// BadSources returns sources whose mean deviation exceeds factor times
// the median source deviation, worst first.
func (s *SourceAudit) BadSources(factor float64) []int {
	if factor <= 0 {
		factor = 3
	}
	var devs []float64
	//iobt:allow maporder devs only feeds median(), which sorts its argument; the result is order-insensitive
	for src := range s.counts {
		devs = append(devs, s.MeanDeviation(src))
	}
	if len(devs) == 0 {
		return nil
	}
	base := median(devs)
	threshold := base * factor
	if threshold < 1e-9 {
		threshold = 1e-9
	}
	type entry struct {
		src int
		dev float64
	}
	var out []entry
	for src := range s.counts {
		if d := s.MeanDeviation(src); d > threshold {
			out = append(out, entry{src, d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].dev != out[j].dev {
			return out[i].dev > out[j].dev
		}
		return out[i].src < out[j].src
	})
	ids := make([]int, len(out))
	for i, e := range out {
		ids[i] = e.src
	}
	return ids
}
