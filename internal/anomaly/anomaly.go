// Package anomaly implements information diagnostics (paper §V.A):
// streaming anomaly scoring, an attention service that directs scarce
// operator attention to the situations that deserve it most — "even in
// the presence of noise, failures, bad data, malicious adversarial
// inputs, and other possibly intentionally-designed distractions" — and
// a source audit that identifies bad (human or physical) sources by
// their systematic deviation from peer consensus.
package anomaly

import (
	"math"
	"sort"
)

// Detector is a streaming z-score detector over an exponentially
// weighted mean and variance. The zero value is not ready; use
// NewDetector.
type Detector struct {
	alpha    float64
	mean     float64
	variance float64
	n        int
	// Threshold is the |z| above which a value is anomalous.
	Threshold float64
}

// NewDetector returns a detector with smoothing alpha in (0,1) (small =
// slow baseline) and the given z threshold.
func NewDetector(alpha, threshold float64) *Detector {
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	if threshold <= 0 {
		threshold = 3
	}
	return &Detector{alpha: alpha, Threshold: threshold}
}

// Score returns the anomaly score (|z|) of v against the current
// baseline WITHOUT updating the baseline.
func (d *Detector) Score(v float64) float64 {
	if d.n < 2 {
		return 0
	}
	sd := math.Sqrt(d.variance)
	if sd < 1e-9 {
		if v == d.mean {
			return 0
		}
		return d.Threshold * 10
	}
	return math.Abs(v-d.mean) / sd
}

// Observe scores v and then folds it into the baseline. Anomalous
// observations do NOT update the baseline: a burst of attack values
// cannot drag the mean (or inflate the variance) to legitimize itself.
// Sustained regime changes are the attention service's job to surface,
// not the detector's to silently absorb.
func (d *Detector) Observe(v float64) float64 {
	score := d.Score(v)
	// During ramp-up the variance estimate is unreliable (it starts at
	// zero), so the baseline always absorbs; freezing only begins once
	// the detector has a settled view of normal.
	const rampUp = 30
	if score > d.Threshold && d.n >= rampUp {
		d.n++
		return score
	}
	if d.n == 0 {
		d.mean = v
	} else {
		delta := v - d.mean
		d.mean += d.alpha * delta
		d.variance = (1-d.alpha)*d.variance + d.alpha*delta*delta
	}
	d.n++
	return score
}

// Anomalous reports whether v scores above the threshold.
func (d *Detector) Anomalous(v float64) bool { return d.Score(v) > d.Threshold }

// MAD computes the median absolute deviation score of v against a
// window of values: |v - median| / (1.4826 * MAD). Robust to up to 50%
// contamination of the window.
func MAD(window []float64, v float64) float64 {
	if len(window) == 0 {
		return 0
	}
	med := median(append([]float64(nil), window...))
	devs := make([]float64, len(window))
	for i, w := range window {
		devs[i] = math.Abs(w - med)
	}
	m := median(devs)
	scale := 1.4826 * m
	if scale < 1e-9 {
		if v == med {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(v-med) / scale
}

func median(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}
