package anomaly

import (
	"testing"

	"iobt/internal/sim"
)

func TestCUSUMDetectsUpShift(t *testing.T) {
	rng := sim.NewRNG(1)
	c := NewCUSUM(0, 1, 0.5, 5)
	// In control: no (or extremely rare) alarms.
	for i := 0; i < 500; i++ {
		c.Observe(rng.Norm(0, 1))
	}
	if c.Alarms > 1 {
		t.Errorf("false alarms in control: %d", c.Alarms)
	}
	// Shift by +1.5 sigma: alarm within a handful of samples.
	c.Reset()
	base := c.Alarms
	delay := -1
	for i := 0; i < 100; i++ {
		if c.Observe(rng.Norm(1.5, 1)) && delay < 0 {
			delay = i + 1
		}
	}
	if c.Alarms == base {
		t.Fatal("no alarm after +1.5 sigma shift")
	}
	if delay > 20 {
		t.Errorf("detection delay = %d samples, want quick", delay)
	}
}

func TestCUSUMDetectsDownShift(t *testing.T) {
	rng := sim.NewRNG(2)
	c := NewCUSUM(10, 2, 0.5, 5)
	fired := false
	for i := 0; i < 100; i++ {
		if c.Observe(rng.Norm(7, 2)) {
			fired = true
			break
		}
	}
	if !fired {
		t.Error("no alarm on downward shift")
	}
}

// TestCUSUMBeatsZScoreOnSmallShift is the quickest-change claim: a
// persistent small shift that never produces a 3-sigma excursion is
// invisible to the z-score detector but caught by CUSUM.
func TestCUSUMBeatsZScoreOnSmallShift(t *testing.T) {
	rng := sim.NewRNG(3)
	c := NewCUSUM(0, 1, 0.25, 5)
	z := NewDetector(0.05, 3)
	for i := 0; i < 300; i++ {
		v := rng.Norm(0, 0.2) // tight in-control noise
		c.Observe(v)
		z.Observe(v)
	}
	cusumDelay, zDelay := -1, -1
	// Sustained shift of +0.45: ~2.2 of the z-detector's learned sigmas
	// (below its 3-sigma threshold), but steadily accumulating for CUSUM.
	for i := 0; i < 400; i++ {
		v := rng.Norm(0.45, 0.2)
		if c.Observe(v) && cusumDelay < 0 {
			cusumDelay = i + 1
		}
		if s := z.Observe(v); s > 3 && zDelay < 0 {
			zDelay = i + 1
		}
	}
	if cusumDelay < 0 {
		t.Fatal("CUSUM never detected the sustained small shift")
	}
	if zDelay >= 0 && zDelay <= cusumDelay {
		t.Logf("z-score also fired (delay %d vs cusum %d) — acceptable but unexpected", zDelay, cusumDelay)
	}
	if cusumDelay > 30 {
		t.Errorf("CUSUM delay = %d, want prompt detection", cusumDelay)
	}
}

func TestCUSUMDefaults(t *testing.T) {
	c := NewCUSUM(0, -1, 0, 0)
	if c.Sigma != 1 || c.Drift != 0.5 || c.Threshold != 5 {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestCUSUMStatAndReset(t *testing.T) {
	c := NewCUSUM(0, 1, 0.5, 100) // huge threshold: never alarms
	for i := 0; i < 10; i++ {
		c.Observe(3)
	}
	if c.Stat() <= 0 {
		t.Error("stat should accumulate under shift")
	}
	c.Reset()
	if c.Stat() != 0 {
		t.Error("reset did not clear statistics")
	}
	if c.Alarms != 0 {
		t.Error("reset must not count an alarm")
	}
}

func TestCUSUMRearmsAfterAlarm(t *testing.T) {
	rng := sim.NewRNG(4)
	c := NewCUSUM(0, 1, 0.5, 5)
	alarms := 0
	for epoch := 0; epoch < 3; epoch++ {
		// In control.
		for i := 0; i < 100; i++ {
			c.Observe(rng.Norm(0, 1))
		}
		// Shift.
		for i := 0; i < 50; i++ {
			if c.Observe(rng.Norm(2, 1)) {
				alarms++
				break
			}
		}
	}
	if alarms != 3 {
		t.Errorf("alarms = %d, want one per epoch", alarms)
	}
}
