package core

import (
	"bytes"
	"testing"
	"time"

	"iobt/internal/cop"
	"iobt/internal/geo"
	"iobt/internal/track"
)

func copTestRuntime(t *testing.T, seed int64) (*World, *Runtime) {
	t.Helper()
	w := testWorld(t, seed)
	m := testMission(CommandHierarchy)
	m.TrustAudit = true // mission acts feed the ledger the picture folds
	r := NewRuntime(w, m)
	if err := r.Synthesize(); err != nil {
		w.Stop()
		t.Fatalf("synthesize: %v", err)
	}
	tr := track.NewTracker(track.Config{})
	r.AttachTracker(tr)
	if err := r.Start(); err != nil {
		w.Stop()
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { r.Stop(); w.Stop() })
	return w, r
}

func TestBuildPictureFoldsWorldState(t *testing.T) {
	w, r := copTestRuntime(t, 31)
	if err := w.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Feed the tracker a couple of detection batches so fixes exist.
	for i := 0; i < 4; i++ {
		r.Tracker().Observe(w.Eng.Now()+time.Duration(i)*time.Second,
			[]track.Detection{{Pos: geo.Point{X: 700, Y: 700}, Var: 4, Sensor: 1}})
	}

	actor := w.PickCommandPost()
	p := BuildPicture(w, r, actor, 100)
	tracks, subjects, cells, _ := p.Counts()
	if subjects == 0 {
		t.Error("no trust subjects folded from the ledger")
	}
	if tracks == 0 {
		t.Error("no track fixes folded from the tracker")
	}
	if cells == 0 {
		t.Error("no coverage cells folded from the composite")
	}

	// Idempotent at a fixed instant: folding again changes nothing.
	before := p.Digest()
	UpdatePicture(p, w, r, 100)
	if p.Digest() != before {
		t.Error("re-fold at a fixed instant changed the picture")
	}

	// Monotone over time: the later picture dominates its clone.
	snap := p.Clone()
	if err := w.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	UpdatePicture(p, w, r, 100)
	if !p.Dominates(snap) {
		t.Error("later fold does not dominate the earlier picture")
	}
}

func TestPictureReplicasConvergeByMerge(t *testing.T) {
	w, r := copTestRuntime(t, 32)
	if err := w.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	a := BuildPicture(w, r, 1, 100)
	b := cop.NewPicture(2)
	// b learns everything a knows over the wire: encode, decode, merge —
	// the exact path gossip payloads take.
	enc, _ := PublishPicture(a, w)
	remote, err := cop.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b.Merge(remote)
	if a.Digest() != b.Digest() {
		t.Error("replicas diverged after merge of encoded state")
	}
	if !bytes.Equal(enc, a.Encode()) {
		t.Error("encoding not deterministic across calls")
	}
}

func TestCellAtQuantizes(t *testing.T) {
	if c := CellAt(geo.Point{X: 250, Y: 999}, 100); c.X != 2 || c.Y != 9 {
		t.Errorf("CellAt = %+v", c)
	}
	if c := CellAt(geo.Point{X: -1, Y: 0}, 100); c.X != -1 || c.Y != 0 {
		t.Errorf("negative CellAt = %+v", c)
	}
	// Non-positive cell size falls back to the default.
	if c := CellAt(geo.Point{X: 250, Y: 250}, 0); c.X != 2 || c.Y != 2 {
		t.Errorf("default CellAt = %+v", c)
	}
}
