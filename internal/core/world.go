// Package core assembles the substrates into the paper's IoBT runtime:
// a battlefield world, mission specifications expressed as commander's
// intent, synthesis of composite assets (Challenge 1), reflexive
// adaptive execution (Challenge 2), and learning hooks (Challenge 3).
//
// The runtime's central measurable is the decision loop: the time from
// a battlefield incident to an authorized action. Two command models are
// implemented — classic multi-level hierarchy and command-by-intent —
// so experiment E1 can quantify the paper's motivating claim that
// intent-based autonomy "shortens the decision loop".
package core

import (
	"context"
	"time"

	"iobt/internal/asset"
	"iobt/internal/attack"
	"iobt/internal/geo"
	"iobt/internal/mesh"
	"iobt/internal/sim"
	"iobt/internal/trust"
)

// WorldConfig parameterizes world construction.
type WorldConfig struct {
	Seed int64
	// Terrain selects the map. Nil defaults to a 2km urban grid.
	Terrain *geo.Terrain
	// Assets is the approximate population size.
	Assets int
	// Mix overrides the default population mix when non-nil.
	Mix *asset.Mix
	// Mesh overrides the default network config when non-nil.
	Mesh *mesh.Config
	// Churn, when non-nil, starts an asset lifecycle process.
	Churn *asset.ChurnConfig
}

// World bundles the simulated battlefield: engine, terrain, population,
// network, jamming field, and the trust ledger.
type World struct {
	Eng     *sim.Engine
	Terrain *geo.Terrain
	Pop     *asset.Population
	Net     *mesh.Network
	Jam     *attack.Field
	Smoke   *attack.Obscurants
	Trust   *trust.Ledger
	Churn   *asset.Churn
}

// NewWorld builds and wires a world. The network's topology maintenance
// is started; call World.Stop when done.
func NewWorld(cfg WorldConfig) *World {
	eng := sim.NewEngine(cfg.Seed)
	terr := cfg.Terrain
	if terr == nil {
		terr = geo.NewUrbanTerrain(2000, 2000, 100)
	}
	if cfg.Assets <= 0 {
		cfg.Assets = 200
	}
	mix := asset.DefaultMix(cfg.Assets)
	if cfg.Mix != nil {
		mix = *cfg.Mix
	}
	pop := asset.Generate(terr, mix, eng.Stream("gen"))

	mcfg := mesh.DefaultConfig()
	if cfg.Mesh != nil {
		mcfg = *cfg.Mesh
	}
	net := mesh.New(eng, pop, terr, mcfg)
	jam := attack.NewField(eng)
	net.SetJamming(jam.At)
	net.Start()

	w := &World{
		Eng:     eng,
		Terrain: terr,
		Pop:     pop,
		Net:     net,
		Jam:     jam,
		Smoke:   attack.NewObscurants(eng),
		Trust:   trust.NewLedger(),
	}
	if cfg.Churn != nil {
		w.Churn = asset.NewChurn(eng, pop, *cfg.Churn)
		w.Churn.Start()
	}
	return w
}

// Stop halts background processes (network refresh, churn).
func (w *World) Stop() {
	w.Net.Stop()
	if w.Churn != nil {
		w.Churn.Stop()
	}
}

// Run advances the world by the given horizon.
func (w *World) Run(horizon time.Duration) error { return w.Eng.Run(horizon) }

// RunContext advances the world by the given horizon with cooperative
// cancellation: a cancelled ctx aborts the run between events and
// surfaces context.Cause(ctx). The mission service uses this so a
// stopped or stalled mission's worker can be reclaimed without leaking.
func (w *World) RunContext(ctx context.Context, horizon time.Duration) error {
	return w.Eng.RunContext(ctx, horizon)
}

// PickCommandPost returns the alive blue asset with the most compute
// (the edge server acting as the command post), or None.
func (w *World) PickCommandPost() asset.ID {
	best := asset.None
	bestC := -1.0
	for _, a := range w.Pop.All() {
		if !a.Alive() || a.Affiliation != asset.Blue {
			continue
		}
		if a.Caps.Compute > bestC {
			best, bestC = a.ID, a.Caps.Compute
		}
	}
	return best
}
