package core

import (
	"testing"
	"time"

	"iobt/internal/checkpoint"
)

// shardMissionConfig is the representative workload the differential
// suite replays at every shard count: enough assets to spread across 8
// shards, a fault schedule that exercises every health transition, and
// an incident schedule dense enough that tracks flow to the post.
func shardMissionConfig() ShardMissionConfig {
	return ShardMissionConfig{
		Assets:      96,
		Incidents:   12,
		DegradeFrac: 0.35,
		FailFrac:    0.15,
		Horizon:     150 * time.Second,
	}
}

// journalShardMission logs every shard-count-invariant result field, so
// a journal diff catches any divergence between runs.
func journalShardMission(j *checkpoint.Journal, res *ShardMissionResult) {
	j.Logf(0, "assets=%d incidents=%d hrep=%d trep=%d stale=%d changes=%d det=%d picture=%d h/d/c=%d/%d/%d tracked=%d mission=%s events=%d clamped=%d violations=%d digest=%016x",
		res.Assets, res.Incidents, res.HealthReports, res.TrackReports, res.StaleReports,
		res.HealthChanges, res.Detections, res.PictureAssets,
		res.PostHealthy, res.PostDegraded, res.PostCritical, res.TrackedIncidents,
		res.MissionHealth, res.Events, res.ClampedSends, len(res.Violations), res.Digest)
}

// TestShardMissionDeterminismAcrossShardCounts is the migration slice's
// headline differential: the same seed at 1, 2, 4, and 8 shards must
// produce byte-identical journals (checked by
// checkpoint.VerifyEquivalence) and zero conservation violations — the
// proof that moving Runtime's shared health/track maps into owner-only
// actor state with mailbox messaging preserved the model.
func TestShardMissionDeterminismAcrossShardCounts(t *testing.T) {
	const seed = 41
	cfg := shardMissionConfig()
	runAt := func(shards int) func(*checkpoint.Journal) {
		return func(j *checkpoint.Journal) {
			res, err := RunShardMission(seed, shards, cfg)
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			for _, v := range res.Violations {
				t.Errorf("shards=%d conservation violation: %s", shards, v)
			}
			if res.HealthReports == 0 || res.TrackedIncidents == 0 {
				t.Fatalf("shards=%d degenerate run: hrep=%d tracked=%d", shards, res.HealthReports, res.TrackedIncidents)
			}
			journalShardMission(j, res)
		}
	}
	if d := checkpoint.VerifyEquivalence(seed, "shard-mission",
		runAt(1), runAt(2), runAt(4), runAt(8)); d != nil {
		t.Errorf("shard counts diverged: %v", d)
	}
}

// TestShardMissionReplay asserts plain same-configuration determinism
// through the standard replay verifier.
func TestShardMissionReplay(t *testing.T) {
	cfg := shardMissionConfig()
	if d := checkpoint.VerifyReplay(7, "shard-mission-replay", func(j *checkpoint.Journal) {
		res, err := RunShardMission(7, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		journalShardMission(j, res)
	}); d != nil {
		t.Errorf("replay diverged: %v", d)
	}
}

// TestShardMissionPicture checks the post's mailbox-fed picture against
// the per-asset ground truth: every asset reports at least its initial
// Healthy transition well before the horizon, so the picture must cover
// the full population; the fault schedule guarantees degradations; and
// in-order per-asset delivery means the sequence guard never fires.
func TestShardMissionPicture(t *testing.T) {
	res, err := RunShardMission(41, 4, shardMissionConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.PictureAssets != res.Assets {
		t.Errorf("post picture covers %d of %d assets", res.PictureAssets, res.Assets)
	}
	if res.PostHealthy+res.PostDegraded+res.PostCritical != res.PictureAssets {
		t.Errorf("picture partition %d+%d+%d does not cover %d assets",
			res.PostHealthy, res.PostDegraded, res.PostCritical, res.PictureAssets)
	}
	if res.PostDegraded == 0 && res.PostCritical == 0 {
		t.Error("fault schedule produced no degraded or critical assets in the picture")
	}
	if res.MissionHealth != Degraded && res.MissionHealth != Critical {
		t.Errorf("mission health %s despite a degraded force", res.MissionHealth)
	}
	if res.StaleReports != 0 {
		t.Errorf("%d stale reports despite in-order per-asset delivery", res.StaleReports)
	}
	if res.Detections == 0 || res.TrackReports == 0 {
		t.Errorf("no detections flowed to the post: det=%d trep=%d", res.Detections, res.TrackReports)
	}
	if res.ClampedSends != 0 {
		t.Errorf("%d clamped sends with ReportLatency above the lookahead floor", res.ClampedSends)
	}
}

func TestShardMissionValidation(t *testing.T) {
	if _, err := RunShardMission(1, 2, ShardMissionConfig{Assets: 1}); err == nil {
		t.Error("one-asset mission accepted")
	}
}
