package core

// ShardMission is the first migration slice of the mission runtime onto
// the sharded engine. The classic Runtime keeps shared maps — members,
// per-asset health, resolved incidents — that every handler reads and
// writes freely, which the sequential sim.Engine permits and the
// parallel sim.Sharded engine cannot. This file re-expresses the
// health/tracking half of that state in the owner-only discipline the
// shardsafe analyzers enforce:
//
//   - each battlefield asset is one actor owning its OWN health state
//     and track observations (//iobt:actor-state shardAsset) — the
//     sharded analogue of Runtime's shared health/tracker maps;
//   - the command post is one more actor owning the aggregated
//     operational picture (//iobt:actor-state shardPost), fed
//     EXCLUSIVELY by ShardCtx.Send mailbox messages — never by a
//     cross-actor read;
//   - post-side merges are idempotent and commutative (sequence-guarded
//     health updates, count/min track folds), so the picture is a pure
//     function of the message multiset.
//
// Under those rules the same seed yields a byte-identical result for
// any shard count, which TestShardMissionDeterminismAcrossShardCounts
// proves with checkpoint.VerifyEquivalence at 1, 2, 4, and 8 shards.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"iobt/internal/geo"
	"iobt/internal/sim"
)

// ShardMissionConfig parameterizes one sharded mission run. The zero
// value of most fields picks a sensible default; Assets is required.
type ShardMissionConfig struct {
	// Assets is the sensing population size (required, >= 2). The
	// command post is one additional actor.
	Assets int
	// Area is the battlefield bounds (default scales with sqrt(Assets)
	// to hold density roughly constant).
	Area geo.Rect
	// SensorRange is the detection radius in meters (default 150).
	// Degraded assets sense at 60% of it.
	SensorRange float64
	// Drift is the mobility amplitude: each asset oscillates within
	// Drift meters of its home point (default 25).
	Drift float64

	// Incidents is how many battlefield incidents the schedule holds
	// (default max(3, Assets/8)).
	Incidents int
	// IncidentDur is how long each incident stays observable
	// (default 30s).
	IncidentDur time.Duration

	// DegradeFrac of assets degrade at a drawn time (default 0.25);
	// FailFrac fail outright (default 0.1). Failed sensors stop
	// detecting but keep reporting health.
	DegradeFrac float64
	FailFrac    float64

	// SenseEvery is the detection scan cadence (default 2s) and
	// HealthEvery the health re-evaluation cadence (default 5s).
	SenseEvery  time.Duration
	HealthEvery time.Duration
	// ReportLatency is the asset→post message delay (default 150ms,
	// above the engine lookahead so reports are never clamped).
	ReportLatency time.Duration
	// MobilityEvery is the shard-migration cadence following asset
	// drift (default 4s; negative disables).
	MobilityEvery time.Duration
	// Horizon is the virtual run length (default 180s).
	Horizon time.Duration
}

func (sc ShardMissionConfig) withDefaults() ShardMissionConfig {
	if sc.Area.Width() <= 0 || sc.Area.Height() <= 0 {
		side := 400 * math.Sqrt(float64(sc.Assets)/25)
		sc.Area = geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1.5 * side, Y: side})
	}
	if sc.SensorRange <= 0 {
		sc.SensorRange = 150
	}
	if sc.Drift < 0 {
		sc.Drift = 0
	} else if sc.Drift == 0 {
		sc.Drift = 25
	}
	if sc.Incidents <= 0 {
		sc.Incidents = sc.Assets / 8
		if sc.Incidents < 3 {
			sc.Incidents = 3
		}
	}
	if sc.IncidentDur <= 0 {
		sc.IncidentDur = 30 * time.Second
	}
	if sc.DegradeFrac == 0 {
		sc.DegradeFrac = 0.25
	}
	if sc.FailFrac == 0 {
		sc.FailFrac = 0.1
	}
	if sc.SenseEvery <= 0 {
		sc.SenseEvery = 2 * time.Second
	}
	if sc.HealthEvery <= 0 {
		sc.HealthEvery = 5 * time.Second
	}
	if sc.ReportLatency <= 0 {
		sc.ReportLatency = 150 * time.Millisecond
	}
	if sc.MobilityEvery == 0 {
		sc.MobilityEvery = 4 * time.Second
	}
	if sc.Horizon <= 0 {
		sc.Horizon = 180 * time.Second
	}
	return sc
}

// ShardMissionResult aggregates one sharded mission run. Every field is
// derived from per-actor state folded in ID order, so for a fixed seed
// and config it is identical across shard counts — Digest is the
// byte-level witness the differential tests compare.
type ShardMissionResult struct {
	Shards    int
	Assets    int
	Incidents int

	// HealthReports / TrackReports count mailbox messages the post
	// applied; StaleReports counts sequence-guarded rejects (0 on a
	// healthy run — reports from one asset arrive in order).
	HealthReports uint64
	TrackReports  uint64
	StaleReports  uint64
	// HealthChanges sums per-asset health transitions; Detections sums
	// per-asset first-time incident observations.
	HealthChanges uint64
	Detections    uint64

	// PictureAssets is how many assets the post's picture covers;
	// PostHealthy/PostDegraded/PostCritical partition it.
	PictureAssets int
	PostHealthy   int
	PostDegraded  int
	PostCritical  int
	// TrackedIncidents is how many distinct incidents reached the
	// post's picture.
	TrackedIncidents int
	// MissionHealth is the post's summary judgment of the force, in the
	// same HealthState vocabulary the classic Runtime reports.
	MissionHealth HealthState

	// Events is the total number of simulation events executed and
	// ClampedSends the number of Send delays raised to the lookahead
	// floor (0 here: ReportLatency sits above the floor by default).
	Events       uint64
	ClampedSends uint64
	// Violations lists conservation-law breaches (empty on a healthy
	// run).
	Violations []string
	// Digest folds all per-actor model state in ID order.
	Digest uint64
}

// shardIncident is one scheduled battlefield incident: part of the
// frozen run context, observable by any asset within sensor range
// during [at, at+dur) — a pure function of the schedule and the clock.
type shardIncident struct {
	id  int
	pos geo.Point
	at  time.Duration
	dur time.Duration
}

// shardAsset is one asset's state, owned by its actor: only events
// executing on the asset mutate it — enforced by the shardown analyzer.
// health and tracks are the migrated slice of the classic Runtime's
// shared maps.
//
//iobt:actor-state
type shardAsset struct {
	id  int
	rng *sim.RNG
	// Oscillation parameters: pos(t) = home + (ax sin(wx t + px),
	// ay sin(wy t + py)), amplitudes bounded by Drift.
	home                   geo.Point
	ax, ay, wx, wy, px, py float64
	degradeAt, failAt      time.Duration // 0 = never

	health        HealthState
	healthSeq     uint64
	healthChanges uint64
	tracks        map[int]time.Duration // incident -> first local detection
	reports       uint64

	// Tick closures are built once at setup and rescheduled by value;
	// re-invoking the maker every tick allocated a fresh closure per
	// asset per cadence.
	healthFn, senseFn, mobFn func(*sim.ShardCtx)
}

// shardPost is the command post's aggregated operational picture, owned
// by the post actor and fed only through ShardCtx.Send mailbox
// messages. Its merges are idempotent (healthSeq guard) and commutative
// (count and min folds), so the picture is independent of same-time
// message interleaving.
//
//iobt:actor-state
type shardPost struct {
	health    map[int]HealthState
	healthSeq map[int]uint64
	tracks    map[int]int           // incident -> distinct reporting assets
	firstSeen map[int]time.Duration // incident -> earliest reported detection
	firstBy   map[int]int           // incident -> reporter of that detection

	healthReports, trackReports, staleReports uint64
}

// shardMission carries the immutable run context shared by all events:
// the actor tables, the incident schedule, and the placement map.
// Everything here is written once at setup and only read during the
// run, so workers share it safely — the gocapture analyzer lets event
// closures capture it on the strength of this annotation.
//
//iobt:frozen
type shardMission struct {
	sc     ShardMissionConfig
	assets []*shardAsset
	// posts is indexed by actor ID so post state is only reachable
	// through ShardCtx.Self(); every slot below postID is nil.
	posts     []*shardPost
	incidents []shardIncident
	sm        *geo.ShardMap
	postID    sim.ActorID
}

func (r *shardMission) pos(id int, t time.Duration) geo.Point {
	a := r.assets[id]
	ts := t.Seconds()
	return geo.Point{
		X: a.home.X + a.ax*math.Sin(a.wx*ts+a.px),
		Y: a.home.Y + a.ay*math.Sin(a.wy*ts+a.py),
	}
}

// healthOf is the pure per-asset health schedule: past failAt the
// platform is Critical, past degradeAt it is Degraded.
func healthOf(degradeAt, failAt, t time.Duration) HealthState {
	switch {
	case failAt > 0 && t >= failAt:
		return Critical
	case degradeAt > 0 && t >= degradeAt:
		return Degraded
	default:
		return Healthy
	}
}

// RunShardMission executes one mission slice on a sharded engine with
// the given shard count. The shard count is a pure performance knob:
// for a fixed seed and config the returned result — including Digest —
// is identical for every shards value.
func RunShardMission(seed int64, shards int, sc ShardMissionConfig) (*ShardMissionResult, error) {
	sc = sc.withDefaults()
	if sc.Assets < 2 {
		return nil, fmt.Errorf("core: shard mission needs at least 2 assets, got %d", sc.Assets)
	}
	if shards < 1 {
		shards = 1
	}

	eng := sim.NewSharded(seed, sim.ShardedConfig{Shards: shards, Lookahead: 100 * time.Millisecond})
	r := &shardMission{
		sc:        sc,
		assets:    make([]*shardAsset, sc.Assets),
		posts:     make([]*shardPost, sc.Assets+1),
		incidents: make([]shardIncident, sc.Incidents),
		sm:        geo.NewShardMap(sc.Area, shards),
		postID:    sim.ActorID(sc.Assets),
	}

	// Field layout, fault schedule, and incident schedule from setup
	// streams, drawn in ID order — shard-count independent by
	// construction.
	field := eng.Stream("shardworld/field")
	faults := eng.Stream("shardworld/fault")
	incs := eng.Stream("shardworld/incident")
	for i := 0; i < sc.Assets; i++ {
		a := &shardAsset{
			id:     i,
			rng:    eng.Stream(fmt.Sprintf("shardworld/asset/%d", i)),
			tracks: make(map[int]time.Duration),
		}
		a.home = geo.Point{
			X: field.Uniform(sc.Area.Min.X, sc.Area.Max.X),
			Y: field.Uniform(sc.Area.Min.Y, sc.Area.Max.Y),
		}
		a.ax = field.Uniform(0, sc.Drift)
		a.ay = field.Uniform(0, sc.Drift)
		a.wx = field.Uniform(0.05, 0.4)
		a.wy = field.Uniform(0.05, 0.4)
		a.px = field.Uniform(0, 2*math.Pi)
		a.py = field.Uniform(0, 2*math.Pi)
		if faults.Bool(sc.DegradeFrac) {
			a.degradeAt = time.Duration(faults.Uniform(float64(sc.Horizon/6), float64(sc.Horizon/2)))
		}
		if faults.Bool(sc.FailFrac) {
			a.failAt = time.Duration(faults.Uniform(float64(sc.Horizon/3), float64(2*sc.Horizon/3)))
		}
		r.assets[i] = a
		eng.AddActor(sim.ActorID(i), r.sm.ShardOf(a.home))
	}
	for i := range r.incidents {
		r.incidents[i] = shardIncident{
			id: i,
			pos: geo.Point{
				X: incs.Uniform(sc.Area.Min.X, sc.Area.Max.X),
				Y: incs.Uniform(sc.Area.Min.Y, sc.Area.Max.Y),
			},
			at:  time.Duration(incs.Uniform(float64(5*time.Second), float64(sc.Horizon)*0.7)),
			dur: sc.IncidentDur,
		}
	}
	r.posts[r.postID] = &shardPost{
		health:    make(map[int]HealthState),
		healthSeq: make(map[int]uint64),
		tracks:    make(map[int]int),
		firstSeen: make(map[int]time.Duration),
		firstBy:   make(map[int]int),
	}
	center := geo.Point{
		X: sc.Area.Min.X + sc.Area.Width()/2,
		Y: sc.Area.Min.Y + sc.Area.Height()/2,
	}
	eng.AddActor(r.postID, r.sm.ShardOf(center))

	for i := 0; i < sc.Assets; i++ {
		a := r.assets[i]
		a.healthFn = r.healthTick(a)
		hp := time.Duration(a.rng.Intn(int(sc.HealthEvery/time.Millisecond))) * time.Millisecond
		eng.ScheduleActor(sim.ActorID(i), sc.HealthEvery+hp, "health", a.healthFn)
		a.senseFn = r.senseTick(a)
		sp := time.Duration(a.rng.Intn(int(sc.SenseEvery/time.Millisecond))) * time.Millisecond
		eng.ScheduleActor(sim.ActorID(i), sc.SenseEvery+sp, "sense", a.senseFn)
		// Mobility ticks run at EVERY shard count (a 1-shard Migrate is a
		// no-op): gating them on shards > 1 would skew both the per-asset
		// stream and the processed-event count, breaking invariance.
		if sc.MobilityEvery > 0 {
			a.mobFn = r.mobilityTick(a)
			mp := time.Duration(a.rng.Intn(int(sc.MobilityEvery/time.Millisecond))) * time.Millisecond
			eng.ScheduleActor(sim.ActorID(i), sc.MobilityEvery+mp, "mobility", a.mobFn)
		}
	}

	if err := eng.Run(sc.Horizon); err != nil {
		return nil, err
	}
	return r.collect(eng, shards), nil
}

// healthTick re-evaluates the asset's own health and, on a transition,
// mails the change to the command post — the owner-only replacement for
// writing a shared health map.
func (r *shardMission) healthTick(a *shardAsset) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		now := c.Now()
		if next := healthOf(a.degradeAt, a.failAt, now); next != a.health {
			a.health = next
			a.healthChanges++
			a.healthSeq++
			c.Send(r.postID, r.sc.ReportLatency, "health.report", r.healthReport(a.id, a.healthSeq, next))
		}
		if now+r.sc.HealthEvery <= r.sc.Horizon {
			c.Schedule(r.sc.HealthEvery, "health", a.healthFn)
		}
	}
}

// senseTick scans the frozen incident schedule against the asset's own
// position and records first-time detections locally before mailing
// them to the post.
func (r *shardMission) senseTick(a *shardAsset) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		now := c.Now()
		if a.failAt == 0 || now < a.failAt {
			rng := r.sc.SensorRange
			if a.health == Degraded {
				rng *= 0.6
			}
			p := r.pos(a.id, now)
			for _, inc := range r.incidents {
				if now < inc.at || now >= inc.at+inc.dur {
					continue
				}
				if _, seen := a.tracks[inc.id]; seen {
					continue
				}
				if p.Dist(inc.pos) > rng {
					continue
				}
				a.tracks[inc.id] = now
				a.reports++
				c.Send(r.postID, r.sc.ReportLatency, "track.report", r.trackReport(a.id, inc.id, now))
			}
		}
		if now+r.sc.SenseEvery <= r.sc.Horizon {
			c.Schedule(r.sc.SenseEvery, "sense", a.senseFn)
		}
	}
}

// mobilityTick follows the asset's drift across shard bands, staging a
// migration whenever the band changes — purely a placement decision,
// invisible to model state.
func (r *shardMission) mobilityTick(a *shardAsset) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		now := c.Now()
		c.Migrate(r.sm.ShardOf(r.pos(a.id, now)))
		if now+r.sc.MobilityEvery <= r.sc.Horizon {
			c.Schedule(r.sc.MobilityEvery, "mobility", a.mobFn)
		}
	}
}

// healthReport merges one asset's health transition into the post's
// picture. The per-asset sequence guard makes the merge idempotent:
// replaying or reordering a report can never regress the picture.
func (r *shardMission) healthReport(id int, seq uint64, state HealthState) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		p := r.posts[c.Self()]
		if seq <= p.healthSeq[id] {
			p.staleReports++
			return
		}
		p.healthSeq[id] = seq
		p.health[id] = state
		p.healthReports++
	}
}

// trackReport merges one detection into the post's picture with
// commutative folds: a distinct-reporter count and an earliest-seen
// minimum (ties broken by lowest reporter ID), both independent of
// arrival order.
func (r *shardMission) trackReport(assetID, incID int, at time.Duration) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		p := r.posts[c.Self()]
		p.tracks[incID]++
		cur, seen := p.firstSeen[incID]
		if !seen || at < cur || (at == cur && assetID < p.firstBy[incID]) {
			p.firstSeen[incID] = at
			p.firstBy[incID] = assetID
		}
		p.trackReports++
	}
}

// collect folds per-actor state into the result, checks the
// conservation laws, and computes the ID-ordered digest. It runs after
// Run returns, while the engine is quiescent.
func (r *shardMission) collect(eng *sim.Sharded, shards int) *ShardMissionResult {
	res := &ShardMissionResult{
		Shards:       shards,
		Assets:       r.sc.Assets,
		Incidents:    r.sc.Incidents,
		Events:       eng.Processed(),
		ClampedSends: eng.ClampedSends(),
	}
	p := r.posts[r.postID]

	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	for _, a := range r.assets {
		res.HealthChanges += a.healthChanges
		res.Detections += uint64(len(a.tracks))
		w(uint64(a.id))
		w(uint64(a.health))
		w(a.healthSeq)
		w(a.healthChanges)
		w(a.reports)
		keys := make([]int, 0, len(a.tracks))
		for id := range a.tracks {
			keys = append(keys, id)
		}
		sort.Ints(keys)
		w(uint64(len(keys)))
		for _, id := range keys {
			// Conservation law 1: every local track traces to a scheduled
			// incident and was detected inside its observable window.
			if id < 0 || id >= len(r.incidents) {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"asset %d tracks unscheduled incident %d", a.id, id))
			} else if at := a.tracks[id]; at < r.incidents[id].at || at >= r.incidents[id].at+r.incidents[id].dur {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"asset %d detected incident %d at %s outside its window", a.id, id, at))
			}
			w(uint64(id))
			w(uint64(a.tracks[id]))
		}
	}

	res.HealthReports = p.healthReports
	res.TrackReports = p.trackReports
	res.StaleReports = p.staleReports
	res.PictureAssets = len(p.health)
	ids := make([]int, 0, len(p.health))
	for id := range p.health {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		switch p.health[id] {
		case Healthy:
			res.PostHealthy++
		case Degraded:
			res.PostDegraded++
		case Critical:
			res.PostCritical++
		default:
			res.Violations = append(res.Violations, fmt.Sprintf(
				"post picture holds unknown health %d for asset %d", p.health[id], id))
		}
		w(uint64(id))
		w(uint64(p.health[id]))
		w(p.healthSeq[id])
	}
	incIDs := make([]int, 0, len(p.tracks))
	for id := range p.tracks {
		incIDs = append(incIDs, id)
	}
	sort.Ints(incIDs)
	res.TrackedIncidents = len(incIDs)
	for _, id := range incIDs {
		// Conservation law 2: the post cannot know more reporters than
		// assets, nor incidents nobody scheduled.
		if id < 0 || id >= len(r.incidents) {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"post tracks unscheduled incident %d", id))
		}
		if p.tracks[id] > r.sc.Assets {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"post counts %d reporters for incident %d with only %d assets", p.tracks[id], id, r.sc.Assets))
		}
		w(uint64(id))
		w(uint64(p.tracks[id]))
		w(uint64(p.firstSeen[id]))
		w(uint64(p.firstBy[id]))
	}
	w(p.healthReports)
	w(p.trackReports)
	w(p.staleReports)

	// Conservation law 3: the post applies at most what the assets sent
	// (reports still in flight at the horizon are simply unapplied), and
	// rejects nothing on a healthy run.
	if res.HealthReports+res.StaleReports > res.HealthChanges {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"post applied %d + rejected %d health reports but assets made %d transitions",
			res.HealthReports, res.StaleReports, res.HealthChanges))
	}
	if res.TrackReports > res.Detections {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"post applied %d track reports but assets detected %d", res.TrackReports, res.Detections))
	}

	switch {
	case res.PictureAssets > 0 && res.PostCritical*3 > res.PictureAssets:
		res.MissionHealth = Critical
	case res.PostCritical > 0 || res.PostDegraded > 0:
		res.MissionHealth = Degraded
	default:
		res.MissionHealth = Healthy
	}
	res.Digest = h.Sum64()
	return res
}
