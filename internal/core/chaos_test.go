package core

import (
	"testing"
	"testing/quick"
	"time"

	"iobt/internal/asset"
	"iobt/internal/attack"
	"iobt/internal/geo"
)

// TestChaosMissionInvariants injects random kill waves, jamming, smoke,
// and churn during a mission and checks that the runtime never panics
// and its metrics stay internally consistent, for many random seeds —
// the paper's "disruptions and failures at different scales" as a
// property test.
func TestChaosMissionInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		w := NewWorld(WorldConfig{
			Seed:    seed,
			Terrain: geo.NewOpenTerrain(1200, 1200),
			Assets:  250,
			Churn:   &asset.ChurnConfig{FailRatePerMin: 0.05, ArriveRatePerMin: 5, ReviveProb: 0.5},
		})
		defer w.Stop()
		m := DefaultMission(geo.NewRect(geo.Point{X: 200, Y: 200}, geo.Point{X: 1000, Y: 1000}))
		m.Goal.CoverageFrac = 0.4
		m.IncidentsPerMin = 40
		if seed%2 == 0 {
			m.Command = CommandHierarchy
		}
		r := NewRuntime(w, m)
		if err := r.Synthesize(); err != nil {
			// Some random worlds are legitimately too sparse; that is
			// not an invariant violation.
			return true
		}
		if err := r.Start(); err != nil {
			return false
		}
		chaos := w.Eng.Stream("chaos")
		// Random jamming and smoke bursts.
		w.Jam.Add(attack.Jammer{
			Area:      geo.Circle{Center: w.Terrain.RandomPoint(chaos), Radius: chaos.Uniform(100, 500)},
			Intensity: chaos.Uniform(0.3, 1),
			From:      30 * time.Second,
			Until:     90 * time.Second,
		})
		w.Smoke.Add(attack.Obscurant{
			Area:   geo.Circle{Center: w.Terrain.RandomPoint(chaos), Radius: chaos.Uniform(100, 400)},
			Blocks: asset.ModVisual,
			From:   time.Minute,
		})
		// A kill wave against the composite.
		w.Eng.Schedule(45*time.Second, "chaos.kill", func() {
			for i, id := range r.Composite().Members {
				if i%3 == 0 {
					w.Pop.Kill(id)
				}
			}
			w.Net.Refresh()
		})
		if err := w.Run(3 * time.Minute); err != nil {
			return false
		}
		r.Stop()

		met := &r.Metrics
		// Invariants: counts are consistent and rates bounded.
		if met.Detected.Value() > met.Incidents.Value() {
			return false
		}
		if met.OnTime.Value() > met.Acted.Value() {
			return false
		}
		if met.Acted.Value() > met.Detected.Value() {
			return false
		}
		if met.DecisionLatency.N() != int(met.Acted.Value()) {
			return false
		}
		if s := met.SuccessRate(); s < 0 || s > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
