package core_test

import (
	"testing"
	"testing/quick"
	"time"

	"iobt/internal/asset"
	"iobt/internal/core"
	"iobt/internal/fault"
	"iobt/internal/geo"
	"iobt/internal/verify"
)

// TestChaosMissionInvariants injects a randomized fault plan — jam
// wave, smoke, a kill wave against the composite, plus churn — through
// the unified fault harness during a mission, and checks that the
// runtime never panics and its metrics stay internally consistent, for
// many random seeds — the paper's "disruptions and failures at
// different scales" as a property test. The invariants are the shared
// verify catalogue; the harness drives their cadence.
func TestChaosMissionInvariants(t *testing.T) {
	maxCount := 8
	if testing.Short() {
		maxCount = 2
	}
	prop := func(seed int64) bool {
		w := core.NewWorld(core.WorldConfig{
			Seed:    seed,
			Terrain: geo.NewOpenTerrain(1200, 1200),
			Assets:  250,
			Churn:   &asset.ChurnConfig{FailRatePerMin: 0.05, ArriveRatePerMin: 5, ReviveProb: 0.5},
		})
		defer w.Stop()
		m := core.DefaultMission(geo.NewRect(geo.Point{X: 200, Y: 200}, geo.Point{X: 1000, Y: 1000}))
		m.Goal.CoverageFrac = 0.4
		m.IncidentsPerMin = 40
		if seed%2 == 0 {
			m.Command = core.CommandHierarchy
			m.ReliableOrders = true
			m.CheckpointEvery = 15 * time.Second
		}
		if seed%4 == 0 {
			m.Degradation = true
		}
		r := core.NewRuntime(w, m)
		if err := r.Synthesize(); err != nil {
			// Some random worlds are legitimately too sparse; that is
			// not an invariant violation.
			return true
		}
		if err := r.Start(); err != nil {
			return false
		}
		defer r.Stop()

		chaos := w.Eng.Stream("chaos")
		plan := &fault.Plan{Name: "chaos"}
		plan.Add(fault.Fault{
			Kind: fault.JamWave, At: 30 * time.Second, Duration: 60 * time.Second,
			Area:      geo.Circle{Center: w.Terrain.RandomPoint(chaos), Radius: chaos.Uniform(100, 500)},
			Intensity: chaos.Uniform(0.3, 1),
		})
		plan.Add(fault.Fault{
			Kind: fault.Smoke, At: time.Minute,
			Area: geo.Circle{Center: w.Terrain.RandomPoint(chaos), Radius: chaos.Uniform(100, 400)},
		})
		plan.Add(fault.Fault{
			Kind: fault.KillWave, At: 45 * time.Second,
			Fraction: 1.0 / 3, Select: fault.SelectComposite,
		})
		if seed%2 == 0 {
			// Crash the post and promote a successor (alternating warm and
			// cold), so the invariants — message conservation above all —
			// are exercised across the crash/restore boundary.
			plan.Add(fault.Fault{Kind: fault.CrashPost, At: 80 * time.Second})
			plan.Add(fault.Fault{Kind: fault.Failover, At: 85 * time.Second, Warm: seed%4 == 0})
		}

		met := &r.Metrics
		reg := verify.NewRegistry()
		reg.Add(verify.MissionInvariants(w, r)...)
		reg.SetClock(w.Eng.Now)
		h := &fault.Harness{
			T: fault.Target{
				Eng: w.Eng, Pop: w.Pop, Net: w.Net, Jam: w.Jam, Smoke: w.Smoke,
				Composite:   func() []asset.ID { return r.Composite().Members },
				CommandPost: func() asset.ID { return r.Sink() },
				CrashPost:   r.CrashPost,
				Failover:    r.Failover,
			},
			Plan:       plan,
			Goodput:    func() (uint64, uint64) { return met.OnTime.Value(), met.Incidents.Value() },
			Invariants: reg.FaultInvariants(),
		}
		rep, err := h.Run(3 * time.Minute)
		if err != nil {
			return false
		}
		if !rep.OK() {
			t.Logf("seed %d: %s", seed, rep)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Error(err)
	}
}

// TestChaosDeterminism runs the same seeded mission under the same
// fault plan twice and requires identical metrics — fault injection
// must be fully deterministic per seed.
func TestChaosDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64, uint64, uint64) {
		w := core.NewWorld(core.WorldConfig{Seed: 7, Terrain: geo.NewOpenTerrain(1200, 1200), Assets: 250})
		defer w.Stop()
		m := core.DefaultMission(geo.NewRect(geo.Point{X: 200, Y: 200}, geo.Point{X: 1000, Y: 1000}))
		m.Goal.CoverageFrac = 0.4
		m.Command = core.CommandHierarchy
		m.ReliableOrders = true
		m.Degradation = true
		m.IncidentsPerMin = 30
		r := core.NewRuntime(w, m)
		if err := r.Synthesize(); err != nil {
			t.Skip("sparse world")
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		h := &fault.Harness{
			T: fault.Target{
				Eng: w.Eng, Pop: w.Pop, Net: w.Net, Jam: w.Jam, Smoke: w.Smoke,
				Composite:   func() []asset.ID { return r.Composite().Members },
				CommandPost: func() asset.ID { return r.Sink() },
			},
			Plan: fault.StandardPlan(1200),
			Goodput: func() (uint64, uint64) {
				return r.Metrics.OnTime.Value(), r.Metrics.Incidents.Value()
			},
		}
		if _, err := h.Run(3 * time.Minute); err != nil {
			t.Fatal(err)
		}
		met := &r.Metrics
		return met.Incidents.Value(), met.Detected.Value(), met.OnTime.Value(),
			met.Undeliverable.Value(), met.Fallbacks.Value()
	}
	i1, d1, o1, u1, f1 := run()
	i2, d2, o2, u2, f2 := run()
	if i1 != i2 || d1 != d2 || o1 != o2 || u1 != u2 || f1 != f2 {
		t.Errorf("same seed diverged: (%d %d %d %d %d) vs (%d %d %d %d %d)",
			i1, d1, o1, u1, f1, i2, d2, o2, u2, f2)
	}
}
