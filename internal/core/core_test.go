package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/attack"
	"iobt/internal/geo"
	"iobt/internal/mesh"
	"iobt/internal/sim"
	"iobt/internal/trust"
)

// testWorld builds a mid-size world with a dense-enough population for
// composition over a sub-area to be feasible.
func testWorld(t *testing.T, seed int64) *World {
	t.Helper()
	return NewWorld(WorldConfig{
		Seed:    seed,
		Terrain: geo.NewOpenTerrain(1500, 1500),
		Assets:  400,
	})
}

func testMission(cmd CommandModel) Mission {
	m := DefaultMission(geo.NewRect(geo.Point{X: 300, Y: 300}, geo.Point{X: 1200, Y: 1200}))
	m.Goal.CoverageFrac = 0.5
	m.Command = cmd
	m.IncidentsPerMin = 30
	return m
}

func TestWorldConstruction(t *testing.T) {
	w := testWorld(t, 1)
	defer w.Stop()
	if w.Pop.Len() < 300 {
		t.Fatalf("population = %d", w.Pop.Len())
	}
	if w.PickCommandPost() == asset.None {
		t.Fatal("no command post found")
	}
	if err := w.Run(time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if w.Eng.Now() != time.Second {
		t.Errorf("clock = %v", w.Eng.Now())
	}
}

func TestWorldDefaults(t *testing.T) {
	w := NewWorld(WorldConfig{Seed: 2})
	defer w.Stop()
	if w.Terrain.Kind != geo.TerrainUrban {
		t.Error("default terrain should be urban")
	}
	if w.Pop.Len() == 0 {
		t.Error("default population empty")
	}
}

func TestSynthesizeProducesFeasibleComposite(t *testing.T) {
	w := testWorld(t, 3)
	defer w.Stop()
	r := NewRuntime(w, testMission(CommandIntent))
	if err := r.Synthesize(); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	comp := r.Composite()
	if comp == nil || !comp.Assurance.Feasible {
		t.Fatalf("composite not feasible: %+v", comp)
	}
	if len(comp.Members) == 0 {
		t.Fatal("empty composite")
	}
}

func TestStartWithoutSynthesize(t *testing.T) {
	w := testWorld(t, 4)
	defer w.Stop()
	r := NewRuntime(w, testMission(CommandIntent))
	if err := r.Start(); err == nil {
		t.Fatal("Start before Synthesize should fail")
	}
}

func TestIntentMissionRuns(t *testing.T) {
	w := testWorld(t, 5)
	defer w.Stop()
	r := NewRuntime(w, testMission(CommandIntent))
	if err := r.Synthesize(); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := w.Run(5 * time.Minute); err != nil {
		t.Fatalf("run: %v", err)
	}
	r.Stop()
	m := &r.Metrics
	if m.Incidents.Value() < 100 {
		t.Fatalf("incidents = %d, want ~150", m.Incidents.Value())
	}
	if m.DetectionRate() < 0.4 {
		t.Errorf("detection rate = %.2f", m.DetectionRate())
	}
	if m.SuccessRate() < 0.4 {
		t.Errorf("success rate = %.2f", m.SuccessRate())
	}
	// Intent decisions are sub-second.
	if m.DecisionLatency.Mean() > 1 {
		t.Errorf("intent decision latency = %.3fs", m.DecisionLatency.Mean())
	}
}

func TestHierarchyMissionSlowerThanIntent(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several multi-minute missions")
	}
	latency := func(cmd CommandModel, levels int) (float64, float64) {
		w := testWorld(t, 6)
		defer w.Stop()
		m := testMission(cmd)
		m.HierarchyLevels = levels
		r := NewRuntime(w, m)
		if err := r.Synthesize(); err != nil {
			t.Fatalf("synthesize: %v", err)
		}
		if err := r.Start(); err != nil {
			t.Fatalf("start: %v", err)
		}
		if err := w.Run(5 * time.Minute); err != nil {
			t.Fatalf("run: %v", err)
		}
		r.Stop()
		return r.Metrics.DecisionLatency.Mean(), r.Metrics.SuccessRate()
	}
	intentLat, intentOK := latency(CommandIntent, 3)
	hierLat, hierOK := latency(CommandHierarchy, 3)
	if hierLat < 2*intentLat {
		t.Errorf("hierarchy latency %.2fs not >> intent %.2fs", hierLat, intentLat)
	}
	if hierOK > intentOK {
		t.Errorf("hierarchy success %.2f beats intent %.2f", hierOK, intentOK)
	}
	// Deeper hierarchies are slower still.
	deepLat, _ := latency(CommandHierarchy, 6)
	if deepLat <= hierLat {
		t.Errorf("depth-6 latency %.2fs not above depth-3 %.2fs", deepLat, hierLat)
	}
}

func TestReflexRepairAfterLosses(t *testing.T) {
	w := testWorld(t, 7)
	defer w.Stop()
	r := NewRuntime(w, testMission(CommandIntent))
	if err := r.Synthesize(); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	// Kill half the composite members mid-mission.
	w.Eng.Schedule(time.Minute, "killwave", func() {
		comp := r.Composite()
		for i, id := range comp.Members {
			if i%2 == 0 {
				w.Pop.Kill(id)
			}
		}
		w.Net.Refresh()
	})
	if err := w.Run(5 * time.Minute); err != nil {
		t.Fatalf("run: %v", err)
	}
	r.Stop()
	if r.Metrics.Repairs.Value() == 0 {
		t.Error("no reflex repair after killing half the composite")
	}
	// Post-repair composite must be live and feasible-ish.
	live := 0
	for _, id := range r.Composite().Members {
		if a := w.Pop.Get(id); a != nil && a.Alive() {
			live++
		}
	}
	if live == 0 {
		t.Error("repaired composite has no live members")
	}
}

func TestJammingDegradesHierarchyMoreThanIntent(t *testing.T) {
	run := func(cmd CommandModel) float64 {
		w := testWorld(t, 8)
		defer w.Stop()
		m := testMission(cmd)
		r := NewRuntime(w, m)
		if err := r.Synthesize(); err != nil {
			t.Fatalf("synthesize: %v", err)
		}
		if err := r.Start(); err != nil {
			t.Fatalf("start: %v", err)
		}
		// Heavy jamming over the mission area from t=30s: reports cannot
		// reach the command post.
		w.Jam.Add(attack.Jammer{
			Area:      geo.Circle{Center: geo.Point{X: 750, Y: 750}, Radius: 700},
			Intensity: 0.95,
			From:      30 * time.Second,
		})
		if err := w.Run(4 * time.Minute); err != nil {
			t.Fatalf("run: %v", err)
		}
		r.Stop()
		return r.Metrics.SuccessRate()
	}
	intentOK := run(CommandIntent)
	hierOK := run(CommandHierarchy)
	if intentOK <= hierOK {
		t.Errorf("under jamming, intent (%.2f) should beat hierarchy (%.2f)", intentOK, hierOK)
	}
}

func TestChurnWorldStillRuns(t *testing.T) {
	w := NewWorld(WorldConfig{
		Seed:    9,
		Terrain: geo.NewOpenTerrain(1500, 1500),
		Assets:  300,
		Churn:   &asset.ChurnConfig{FailRatePerMin: 0.02, ArriveRatePerMin: 3, ReviveProb: 0.5},
	})
	defer w.Stop()
	r := NewRuntime(w, testMission(CommandIntent))
	if err := r.Synthesize(); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	if err := w.Run(3 * time.Minute); err != nil {
		t.Fatalf("run: %v", err)
	}
	r.Stop()
	if w.Churn.Failed() == 0 {
		t.Error("churn inactive")
	}
	if r.Metrics.SuccessRate() == 0 {
		t.Error("mission produced no successes under churn")
	}
}

func TestCommandModelString(t *testing.T) {
	if CommandHierarchy.String() != "hierarchy" || CommandIntent.String() != "intent" {
		t.Error("command model names wrong")
	}
	if CommandModel(0).String() != "unknown" {
		t.Error("zero command model should be unknown")
	}
}

func TestMeshConfigOverride(t *testing.T) {
	mc := mesh.DefaultConfig()
	mc.LossBase = 0
	w := NewWorld(WorldConfig{Seed: 10, Terrain: geo.NewOpenTerrain(500, 500), Assets: 50, Mesh: &mc})
	defer w.Stop()
	if w.Net == nil {
		t.Fatal("nil network")
	}
}

// TestSmokeBlindsVisualComposite is the live E12: smoke over the area
// collapses an all-visual composite's detection but not a diverse one.
func TestSmokeBlindsVisualComposite(t *testing.T) {
	detectionWith := func(modalities asset.Modality) float64 {
		eng := sim.NewEngine(31)
		terr := geo.NewOpenTerrain(1000, 1000)
		pop := asset.NewPopulation(terr)
		rng := eng.Stream("place")
		for i := 0; i < 40; i++ {
			caps := asset.DefaultCaps(asset.ClassSensor)
			caps.Modalities = modalities
			caps.RadioRange = 400
			a := &asset.Asset{Affiliation: asset.Blue, Class: asset.ClassSensor, Caps: caps,
				Online: true, DutyCycle: 1,
				Mobility: &geo.Static{P: geo.Point{X: rng.Uniform(100, 900), Y: rng.Uniform(100, 900)}}}
			a.Energy = caps.EnergyCap
			pop.Add(a)
		}
		w := &World{Eng: eng, Terrain: terr, Pop: pop,
			Net:   mesh.New(eng, pop, terr, mesh.DefaultConfig()),
			Jam:   attack.NewField(eng),
			Smoke: attack.NewObscurants(eng),
			Trust: trustLedger()}
		m := DefaultMission(geo.NewRect(geo.Point{X: 100, Y: 100}, geo.Point{X: 900, Y: 900}))
		m.Goal.CoverageFrac = 0.4
		m.IncidentsPerMin = 60
		r := NewRuntime(w, m)
		if err := r.Synthesize(); err != nil {
			t.Fatalf("synthesize: %v", err)
		}
		// Smoke over the whole map from the start.
		w.Smoke.Add(attack.Obscurant{
			Area:   geo.Circle{Center: geo.Point{X: 500, Y: 500}, Radius: 800},
			Blocks: asset.ModVisual,
		})
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		_ = w.Run(2 * time.Minute)
		r.Stop()
		w.Net.Stop()
		return r.Metrics.DetectionRate()
	}
	visualOnly := detectionWith(asset.ModVisual)
	diverse := detectionWith(asset.ModVisual | asset.ModSeismic)
	if visualOnly > 0.05 {
		t.Errorf("all-visual composite detected %.2f under smoke; want blind", visualOnly)
	}
	if diverse < 0.5 {
		t.Errorf("diverse composite detected only %.2f under smoke", diverse)
	}
}
func trustLedger() *trust.Ledger { return trust.NewLedger() }

func TestMetricsZeroDivision(t *testing.T) {
	var m Metrics
	if m.SuccessRate() != 0 || m.DetectionRate() != 0 {
		t.Error("zero-incident rates should be 0")
	}
}

func TestMissionNormalizedDefaults(t *testing.T) {
	m := Mission{}.normalized()
	if m.ApprovalPerLevel <= 0 || m.LocalDeliberation <= 0 ||
		m.IncidentDeadline <= 0 || m.HierarchyLevels < 1 || m.IncidentsPerMin <= 0 {
		t.Errorf("defaults not applied: %+v", m)
	}
}

// TestReliableOrdersImproveHierarchySuccess: ARQ recovers decisions a
// lossy channel would drop, at a modest latency cost.
func TestReliableOrdersImproveHierarchySuccess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs paired multi-minute missions")
	}
	run := func(reliable bool) (float64, float64) {
		mc := mesh.DefaultConfig()
		mc.LossBase = 0.5 // harsh channel
		w := NewWorld(WorldConfig{
			Seed:    61,
			Terrain: geo.NewOpenTerrain(1500, 1500),
			Assets:  400,
			Mesh:    &mc,
		})
		defer w.Stop()
		m := testMission(CommandHierarchy)
		m.ReliableOrders = reliable
		r := NewRuntime(w, m)
		if err := r.Synthesize(); err != nil {
			t.Fatalf("synthesize: %v", err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(5 * time.Minute); err != nil {
			t.Fatal(err)
		}
		r.Stop()
		return r.Metrics.SuccessRate(), r.Metrics.DecisionLatency.Mean()
	}
	plainOK, plainLat := run(false)
	arqOK, arqLat := run(true)
	if arqOK <= plainOK {
		t.Errorf("ARQ success %.2f not above best-effort %.2f on lossy channel", arqOK, plainOK)
	}
	if arqLat < plainLat {
		t.Logf("note: ARQ latency %.2fs below plain %.2fs (plain only counts survivors)", arqLat, plainLat)
	}
}

// TestRunContextCancellation pins the cooperative-cancellation contract
// the mission service relies on: a live context behaves like Run, a
// cancelled one aborts between events and surfaces its cause.
func TestRunContextCancellation(t *testing.T) {
	w := testWorld(t, 11)
	defer w.Stop()
	if err := w.RunContext(context.Background(), time.Second); err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if w.Eng.Now() != time.Second {
		t.Errorf("clock = %v after RunContext, want 1s", w.Eng.Now())
	}

	budget := errors.New("budget exhausted")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(budget)
	err := w.RunContext(ctx, time.Minute)
	if !errors.Is(err, budget) {
		t.Fatalf("cancelled RunContext error = %v, want the cancellation cause", err)
	}
	if w.Eng.Now() > 2*time.Second {
		t.Errorf("cancelled run advanced the clock to %v", w.Eng.Now())
	}
}
