package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"iobt/internal/adapt"
	"iobt/internal/asset"
	"iobt/internal/checkpoint"
	"iobt/internal/compose"
	"iobt/internal/geo"
	"iobt/internal/mesh"
	"iobt/internal/sim"
	"iobt/internal/track"
	"iobt/internal/trust"
)

// Metrics collects mission outcomes.
type Metrics struct {
	// Incidents counts generated battlefield events.
	Incidents sim.Counter
	// Detected counts incidents seen by some composite member.
	Detected sim.Counter
	// Acted counts incidents that received an authorized action.
	Acted sim.Counter
	// OnTime counts actions completed before the incident deadline.
	OnTime sim.Counter
	// Undeliverable counts incidents whose command traffic terminally
	// failed: no command post, an unreachable one, or an exhausted ARQ
	// budget. Before this counter existed those incidents vanished
	// silently; chaos invariants now audit it.
	Undeliverable sim.Counter
	// DecisionLatency records detection-to-action seconds.
	DecisionLatency sim.Series
	// Repairs counts composite re-synthesis events.
	Repairs sim.Counter
	// RepairTime records seconds from coverage violation to repair.
	RepairTime sim.Series
	// Fallbacks counts command-continuity fallbacks (hierarchy → intent
	// after repeated order-delivery failures).
	Fallbacks sim.Counter
	// Restores counts hierarchy restorations after a fallback.
	Restores sim.Counter
	// Relaxations counts coverage-goal relaxation steps taken when the
	// candidate pool could not repair the composite.
	Relaxations sim.Counter
	// HealthChanges counts mission health-state transitions.
	HealthChanges sim.Counter
	// OrdersCarried counts successful command-channel deliveries (each
	// ACKed report or order leg). With Undeliverable it bounds the
	// command traffic lost across a post crash.
	OrdersCarried sim.Counter
	// Failovers counts command-post promotions performed by Failover
	// (warm or cold), as opposed to the implicit repickSink path.
	Failovers sim.Counter
}

// SuccessRate returns OnTime/Incidents.
func (m *Metrics) SuccessRate() float64 {
	if m.Incidents.Value() == 0 {
		return 0
	}
	return float64(m.OnTime.Value()) / float64(m.Incidents.Value())
}

// DetectionRate returns Detected/Incidents.
func (m *Metrics) DetectionRate() float64 {
	if m.Incidents.Value() == 0 {
		return 0
	}
	return float64(m.Detected.Value()) / float64(m.Incidents.Value())
}

// Runtime executes one mission on a world.
type Runtime struct {
	W       *World
	Mission Mission
	Metrics Metrics

	comp       *compose.Composite
	members    map[asset.ID]bool
	sink       asset.ID
	req        compose.Requirements
	rng        *sim.RNG
	gen        *sim.Ticker
	healthMon  *adapt.Monitor
	nextIncID  int
	resolved   map[int]bool // incidents terminally resolved (acted or undeliverable)
	rel        *mesh.Reliable
	started    bool
	registered map[asset.ID]bool

	health     HealthState
	orderFails int // consecutive order-delivery failures
	fellBack   bool
	relaxSteps int

	// Checkpoint/failover state (see failover.go).
	coord    *checkpoint.Coordinator
	journal  *checkpoint.Journal
	tracker  *track.Tracker
	postDown bool // post destroyed, successor not yet promoted
}

// ErrSynthesisFailed wraps composition failure at mission start.
var ErrSynthesisFailed = errors.New("core: mission synthesis failed")

// NewRuntime prepares (but does not start) a mission runtime.
func NewRuntime(w *World, m Mission) *Runtime {
	return &Runtime{
		W:          w,
		Mission:    m.normalized(),
		rng:        w.Eng.Stream("runtime"),
		members:    make(map[asset.ID]bool),
		registered: make(map[asset.ID]bool),
		resolved:   make(map[int]bool),
		health:     Healthy,
	}
}

// Synthesize performs Challenge-1 composition: build the candidate pool
// (trust-aware), derive requirements from the goal, and solve greedily.
func (r *Runtime) Synthesize() error {
	r.req = compose.Derive(r.Mission.Goal)
	pool := compose.PoolFromPopulation(r.W.Pop, r.W.Trust)
	comp, err := compose.GreedySolver{}.Solve(r.req, pool)
	if err != nil {
		if comp != nil {
			return fmt.Errorf("%w: %v", ErrSynthesisFailed, comp.Assurance.Violations)
		}
		return ErrSynthesisFailed
	}
	r.install(comp)
	r.sink = r.W.PickCommandPost()
	return nil
}

func (r *Runtime) install(comp *compose.Composite) {
	r.comp = comp
	for id := range r.members {
		delete(r.members, id)
	}
	for _, id := range comp.Members {
		r.members[id] = true
	}
	if r.started {
		r.registerCommandNodes()
	}
}

// Composite returns the current composite (nil before Synthesize).
func (r *Runtime) Composite() *compose.Composite { return r.comp }

// Health returns the current mission health state.
func (r *Runtime) Health() HealthState { return r.health }

// FellBack reports whether command has fallen back from hierarchy to
// intent.
func (r *Runtime) FellBack() bool { return r.fellBack }

// Reliable returns the ARQ layer carrying command traffic (nil unless
// Mission.ReliableOrders and started).
func (r *Runtime) Reliable() *mesh.Reliable { return r.rel }

// Sink returns the current command post (None if lost).
func (r *Runtime) Sink() asset.ID { return r.sink }

// Start begins incident generation and the coverage reflex monitor.
// Synthesize must have succeeded.
func (r *Runtime) Start() error {
	if r.comp == nil {
		return ErrSynthesisFailed
	}
	if r.Mission.ReliableOrders {
		r.rel = mesh.NewReliable(r.W.Eng, r.W.Net)
	}
	r.started = true
	r.registerCommandNodes()
	interval := time.Duration(float64(time.Minute) / r.Mission.IncidentsPerMin)
	r.gen = r.W.Eng.Every(interval, "core.incident", r.incident)
	r.healthMon = adapt.NewMonitor(r.W.Eng, "coverage",
		r.monitorTick,
		r.repair,
	)
	r.healthMon.Start(5 * time.Second)
	r.startCheckpoints()
	return nil
}

// Stop halts mission processes.
func (r *Runtime) Stop() {
	if r.gen != nil {
		r.gen.Stop()
		r.gen = nil
	}
	if r.healthMon != nil {
		r.healthMon.Stop()
		r.healthMon = nil
	}
	if r.coord != nil {
		r.coord.Stop()
	}
}

// monitorTick is the periodic self-check: it re-evaluates coverage (the
// monitor fires repair when it fails), refreshes the health state
// machine, and — when degradation reflexes are on — probes whether a
// fallen-back hierarchy can be restored.
func (r *Runtime) monitorTick() bool {
	ok := r.coverageHolds()
	r.setHealth(r.computeHealth(ok))
	if ok && r.Mission.Degradation && r.fellBack {
		r.tryRestoreHierarchy()
	}
	return ok
}

// coverageHolds re-evaluates the composite assurance against current
// positions and liveness.
func (r *Runtime) coverageHolds() bool {
	members := r.liveMembers()
	a := compose.Evaluate(r.req, members)
	needFrac := float64(r.req.NeedCells) / float64(maxi(len(r.req.Cells), 1))
	return a.CoverageFrac+1e-9 >= needFrac
}

// repair is the reflex: incremental re-composition around failed
// members (paper: "re-assemble ... upon damage ... within an
// appropriately short time"). When the candidate pool cannot restore
// the goal and degradation reflexes are enabled, the coverage
// requirement is relaxed stepwise (never below Mission.RelaxFloor)
// instead of limping silently below an unmeetable goal.
func (r *Runtime) repair() {
	start := r.W.Eng.Now()
	failed := map[asset.ID]bool{}
	for id := range r.members {
		a := r.W.Pop.Get(id)
		if a == nil || !a.Alive() {
			failed[id] = true
		}
	}
	pool := compose.PoolFromPopulation(r.W.Pop, r.W.Trust)
	comp, err := compose.Recompose(r.req, r.comp, failed, pool)
	if err != nil && r.Mission.Degradation {
		for err != nil && r.relaxOnce() {
			comp, err = compose.Recompose(r.req, r.comp, failed, pool)
		}
	}
	if err != nil {
		// Pool exhausted (and relaxation floor reached, or reflexes
		// disabled): record the degraded state rather than pretending
		// the goal still holds.
		r.setHealth(r.computeHealth(false))
		return
	}
	r.install(comp)
	r.Metrics.Repairs.Inc()
	r.Metrics.RepairTime.AddDuration(r.W.Eng.Now() - start)
	r.journalf("repair members=%d", len(comp.Members))
	r.setHealth(r.computeHealth(r.coverageHolds()))
}

// relaxOnce lowers the coverage requirement one step (-20%), bounded by
// Mission.RelaxFloor. Returns false when no further relaxation is
// allowed.
func (r *Runtime) relaxOnce() bool {
	floor := int(r.Mission.RelaxFloor * float64(len(r.req.Cells)))
	if floor < 1 {
		floor = 1
	}
	if r.req.NeedCells <= floor {
		return false
	}
	next := r.req.NeedCells * 4 / 5
	if next >= r.req.NeedCells {
		next = r.req.NeedCells - 1
	}
	if next < floor {
		next = floor
	}
	r.req.NeedCells = next
	r.relaxSteps++
	r.Metrics.Relaxations.Inc()
	return true
}

// sortedMemberIDs returns the current composite membership in
// ascending ID order. Every loop over r.members whose effects can
// reach scheduling, messaging, or tie-breaking must iterate this
// slice instead of the map: map iteration order differs between
// same-seed runs, and dettaint traces any value it touches all the
// way into the event queue.
func (r *Runtime) sortedMemberIDs() []asset.ID {
	ids := make([]asset.ID, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// liveMembers materializes current member candidates with live
// positions, in ascending ID order: the list feeds the composition
// solvers, whose tie-breaking follows slice order, so map iteration
// order must not leak into it.
func (r *Runtime) liveMembers() []compose.Candidate {
	ids := r.sortedMemberIDs()
	var out []compose.Candidate
	for _, id := range ids {
		a := r.W.Pop.Get(id)
		if a == nil || !a.Alive() {
			continue
		}
		out = append(out, compose.Candidate{
			ID: id, Pos: a.Pos(), Caps: a.Caps,
			Trust: r.W.Trust.Score(id), Affiliation: a.Affiliation,
		})
	}
	return out
}

// incident generates one battlefield event and drives the decision loop.
func (r *Runtime) incident() {
	r.Metrics.Incidents.Inc()
	r.nextIncID++
	pos := geo.Point{
		X: r.rng.Uniform(r.Mission.Goal.Area.Min.X, r.Mission.Goal.Area.Max.X),
		Y: r.rng.Uniform(r.Mission.Goal.Area.Min.Y, r.Mission.Goal.Area.Max.Y),
	}
	deadline := r.W.Eng.Now() + r.Mission.IncidentDeadline

	detector := r.nearestDetector(pos)
	if detector == asset.None {
		r.journalf("incident id=%d x=%.2f y=%.2f missed", r.nextIncID, pos.X, pos.Y)
		return // coverage gap: incident missed
	}
	r.Metrics.Detected.Inc()
	detectedAt := r.W.Eng.Now()
	r.journalf("incident id=%d x=%.2f y=%.2f det=%d", r.nextIncID, pos.X, pos.Y, detector)

	incID := r.nextIncID
	complete := func() {
		// An incident resolves exactly once. A duplicate order — the ARQ
		// window requeued by a warm failover re-delivers traffic that
		// already executed, or a delayed order lands after the incident
		// was declared undeliverable — must not be executed again.
		if r.resolved[incID] {
			r.journalf("order id=%d duplicate ignored", incID)
			return
		}
		r.resolved[incID] = true
		now := r.W.Eng.Now()
		r.Metrics.Acted.Inc()
		r.Metrics.DecisionLatency.AddDuration(now - detectedAt)
		if now <= deadline {
			r.Metrics.OnTime.Inc()
		}
		if r.Mission.TrustAudit {
			r.W.Trust.Observe(detector, trust.EvMission, true)
		}
		r.journalf("acted id=%d ontime=%v", incID, now <= deadline)
	}

	cmd := r.Mission.Command
	if r.fellBack {
		// Command continuity: the hierarchy is unreachable, subordinates
		// act on commander's intent.
		cmd = CommandIntent
	}
	switch cmd {
	case CommandIntent:
		// Subordinate initiative: deliberate locally, act.
		r.W.Eng.Schedule(r.Mission.LocalDeliberation, "core.intent-act", complete)
	default:
		r.hierarchyLoop(detector, incID, complete)
	}
}

// failIncident returns the terminal-failure callback for one incident.
// Like complete, it resolves the incident at most once: a late ARQ
// exhaustion after the order already executed (or a second failure for
// traffic requeued across a failover) is not a new command failure.
func (r *Runtime) failIncident(incID int) func() {
	return func() {
		if r.resolved[incID] {
			return
		}
		r.resolved[incID] = true
		r.commandFailed()
	}
}

// hierarchyLoop routes the report to the command post, pays per-level
// approval, and routes the order back. Terminal delivery failures are
// counted (Metrics.Undeliverable) and feed the command-continuity
// reflex.
func (r *Runtime) hierarchyLoop(detector asset.ID, incID int, complete func()) {
	fail := r.failIncident(incID)
	if r.sink == asset.None || !r.sinkAlive() {
		r.repickSink()
	}
	sink := r.sink
	if sink == asset.None {
		fail()
		return
	}
	msg := mesh.Message{
		From: detector, To: sink, Size: 2000, Kind: "report",
		Payload: reportPayload{incID: incID, detector: detector, complete: complete},
	}
	if r.rel != nil {
		r.rel.Send(msg, r.commandCarried, fail)
		return
	}
	if err := r.W.Net.Send(msg); err != nil {
		// Command post unreachable: the hierarchy cannot authorize.
		fail()
	}
}

type reportPayload struct {
	incID    int
	detector asset.ID
	complete func()
}

type orderPayload struct {
	incID    int
	complete func()
}

// registerCommandNodes installs the report/order handler on the command
// post and every composite member, exactly once per node. Handlers used
// to be re-registered on every incident; now registration happens at
// Start and on composite changes only (Reliable.Registrations guards
// this in the regression test).
func (r *Runtime) registerCommandNodes() {
	if r.Mission.Command != CommandHierarchy {
		return
	}
	for _, id := range r.sortedMemberIDs() {
		r.registerNode(id)
	}
	if r.sink != asset.None {
		r.registerNode(r.sink)
	}
}

func (r *Runtime) registerNode(id asset.ID) {
	if r.registered[id] {
		return
	}
	r.registered[id] = true
	h := r.commandHandler(id)
	if r.rel != nil {
		r.rel.Register(id, h)
		return
	}
	r.W.Net.RegisterHandler(id, h)
}

// commandHandler serves both legs of the decision loop at one node:
// reports are processed only while the node is the current command post
// (pay the staffing delay for each echelon, send the order back);
// orders execute at their detector.
func (r *Runtime) commandHandler(id asset.ID) mesh.Handler {
	return func(msg mesh.Message) {
		switch msg.Kind {
		case "report":
			if id != r.sink {
				return // stale post: no longer authorized
			}
			p, ok := msg.Payload.(reportPayload)
			if !ok {
				return
			}
			delay := time.Duration(r.Mission.HierarchyLevels) * r.Mission.ApprovalPerLevel
			r.W.Eng.Schedule(delay, "core.approve", func() {
				order := mesh.Message{
					From: id, To: p.detector, Size: 500, Kind: "order",
					Payload: orderPayload{incID: p.incID, complete: p.complete},
				}
				fail := r.failIncident(p.incID)
				if r.rel != nil {
					r.rel.Send(order, r.commandCarried, fail)
					return
				}
				if err := r.W.Net.Send(order); err != nil {
					fail()
				}
			})
		case "order":
			p, ok := msg.Payload.(orderPayload)
			if !ok {
				return
			}
			p.complete()
		}
	}
}

// commandCarried records a successful command-channel delivery.
func (r *Runtime) commandCarried() {
	r.Metrics.OrdersCarried.Inc()
	r.orderFails = 0
	r.setHealth(r.computeHealth(true))
}

// commandFailed records a terminal command-channel failure (no post,
// unreachable post, or exhausted ARQ budget) and drives the
// command-continuity reflex: re-pick the post, and after
// Mission.FallbackAfter consecutive failures fall back to intent.
func (r *Runtime) commandFailed() {
	r.Metrics.Undeliverable.Inc()
	r.orderFails++
	if r.Mission.Degradation {
		if r.sink == asset.None || !r.sinkAlive() {
			r.repickSink()
		}
		if !r.fellBack && r.orderFails >= r.Mission.FallbackAfter {
			r.fellBack = true
			r.Metrics.Fallbacks.Inc()
			r.journalf("fallback fails=%d", r.orderFails)
		}
	}
	r.setHealth(r.computeHealth(true))
}

// tryRestoreHierarchy probes whether a fallen-back hierarchy can be
// restored: a live command post reachable from some live member.
func (r *Runtime) tryRestoreHierarchy() {
	if r.sink == asset.None || !r.sinkAlive() {
		r.repickSink()
	}
	if r.sink == asset.None || !r.sinkAlive() {
		return
	}
	for id := range r.members {
		a := r.W.Pop.Get(id)
		if a == nil || !a.Alive() {
			continue
		}
		if r.W.Net.Reachable(id, r.sink) {
			r.fellBack = false
			r.orderFails = 0
			r.Metrics.Restores.Inc()
			r.journalf("restore sink=%d", r.sink)
			return
		}
	}
}

func (r *Runtime) sinkAlive() bool {
	a := r.W.Pop.Get(r.sink)
	return a != nil && a.Alive()
}

func (r *Runtime) repickSink() {
	if r.postDown {
		// The post was destroyed by a crash fault: promotion is the
		// failover subsystem's decision (warm/cold/none), not an implicit
		// side effect of the next delivery failure.
		return
	}
	r.sink = r.W.PickCommandPost()
	if r.started && r.sink != asset.None {
		r.registerNode(r.sink)
	}
}

// nearestDetector returns the closest live composite member that can
// sense the position, or None. Environmental obscurants (smoke) mask a
// member's blocked modalities, so an all-visual composite goes blind
// inside a smoke field while a modality-diverse one keeps detecting —
// the paper's seismic-for-visual substitution, live.
func (r *Runtime) nearestDetector(pos geo.Point) asset.ID {
	best := asset.None
	bestD := 0.0
	mods := r.Mission.Goal.Modalities
	blocked := r.W.Smoke.BlockedAt(pos)
	// Ascending-ID iteration makes the strict `d < bestD` tie-break
	// deterministic: equidistant detectors resolve to the lowest ID
	// instead of whichever the map yielded first that run.
	for _, id := range r.sortedMemberIDs() {
		a := r.W.Pop.Get(id)
		if a == nil || !a.Alive() {
			continue
		}
		effective := a.Caps.Modalities &^ blocked
		if effective == 0 {
			continue // everything this member senses with is obscured
		}
		if mods != 0 && effective&mods == 0 {
			continue
		}
		d := a.Pos().Dist(pos)
		if d > a.Caps.SenseRange {
			continue
		}
		if best == asset.None || d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
