package core

import (
	"errors"
	"fmt"
	"time"

	"iobt/internal/adapt"
	"iobt/internal/asset"
	"iobt/internal/compose"
	"iobt/internal/geo"
	"iobt/internal/mesh"
	"iobt/internal/sim"
)

// Metrics collects mission outcomes.
type Metrics struct {
	// Incidents counts generated battlefield events.
	Incidents sim.Counter
	// Detected counts incidents seen by some composite member.
	Detected sim.Counter
	// Acted counts incidents that received an authorized action.
	Acted sim.Counter
	// OnTime counts actions completed before the incident deadline.
	OnTime sim.Counter
	// DecisionLatency records detection-to-action seconds.
	DecisionLatency sim.Series
	// Repairs counts composite re-synthesis events.
	Repairs sim.Counter
	// RepairTime records seconds from coverage violation to repair.
	RepairTime sim.Series
}

// SuccessRate returns OnTime/Incidents.
func (m *Metrics) SuccessRate() float64 {
	if m.Incidents.Value() == 0 {
		return 0
	}
	return float64(m.OnTime.Value()) / float64(m.Incidents.Value())
}

// DetectionRate returns Detected/Incidents.
func (m *Metrics) DetectionRate() float64 {
	if m.Incidents.Value() == 0 {
		return 0
	}
	return float64(m.Detected.Value()) / float64(m.Incidents.Value())
}

// Runtime executes one mission on a world.
type Runtime struct {
	W       *World
	Mission Mission
	Metrics Metrics

	comp      *compose.Composite
	members   map[asset.ID]bool
	sink      asset.ID
	req       compose.Requirements
	rng       *sim.RNG
	gen       *sim.Ticker
	healthMon *adapt.Monitor
	nextIncID int
	rel       *mesh.Reliable
}

// ErrSynthesisFailed wraps composition failure at mission start.
var ErrSynthesisFailed = errors.New("core: mission synthesis failed")

// NewRuntime prepares (but does not start) a mission runtime.
func NewRuntime(w *World, m Mission) *Runtime {
	return &Runtime{
		W:       w,
		Mission: m.normalized(),
		rng:     w.Eng.Stream("runtime"),
		members: make(map[asset.ID]bool),
	}
}

// Synthesize performs Challenge-1 composition: build the candidate pool
// (trust-aware), derive requirements from the goal, and solve greedily.
func (r *Runtime) Synthesize() error {
	r.req = compose.Derive(r.Mission.Goal)
	pool := compose.PoolFromPopulation(r.W.Pop, r.W.Trust)
	comp, err := compose.GreedySolver{}.Solve(r.req, pool)
	if err != nil {
		if comp != nil {
			return fmt.Errorf("%w: %v", ErrSynthesisFailed, comp.Assurance.Violations)
		}
		return ErrSynthesisFailed
	}
	r.install(comp)
	r.sink = r.W.PickCommandPost()
	return nil
}

func (r *Runtime) install(comp *compose.Composite) {
	r.comp = comp
	for id := range r.members {
		delete(r.members, id)
	}
	for _, id := range comp.Members {
		r.members[id] = true
	}
}

// Composite returns the current composite (nil before Synthesize).
func (r *Runtime) Composite() *compose.Composite { return r.comp }

// Start begins incident generation and the coverage reflex monitor.
// Synthesize must have succeeded.
func (r *Runtime) Start() error {
	if r.comp == nil {
		return ErrSynthesisFailed
	}
	if r.Mission.ReliableOrders {
		r.rel = mesh.NewReliable(r.W.Eng, r.W.Net)
	}
	interval := time.Duration(float64(time.Minute) / r.Mission.IncidentsPerMin)
	r.gen = r.W.Eng.Every(interval, "core.incident", r.incident)
	r.healthMon = adapt.NewMonitor(r.W.Eng, "coverage",
		r.coverageHolds,
		r.repair,
	)
	r.healthMon.Start(5 * time.Second)
	return nil
}

// Stop halts mission processes.
func (r *Runtime) Stop() {
	if r.gen != nil {
		r.gen.Stop()
		r.gen = nil
	}
	if r.healthMon != nil {
		r.healthMon.Stop()
		r.healthMon = nil
	}
}

// coverageHolds re-evaluates the composite assurance against current
// positions and liveness.
func (r *Runtime) coverageHolds() bool {
	members := r.liveMembers()
	a := compose.Evaluate(r.req, members)
	needFrac := float64(r.req.NeedCells) / float64(maxi(len(r.req.Cells), 1))
	return a.CoverageFrac+1e-9 >= needFrac
}

// repair is the reflex: incremental re-composition around failed
// members (paper: "re-assemble ... upon damage ... within an
// appropriately short time").
func (r *Runtime) repair() {
	start := r.W.Eng.Now()
	failed := map[asset.ID]bool{}
	for id := range r.members {
		a := r.W.Pop.Get(id)
		if a == nil || !a.Alive() {
			failed[id] = true
		}
	}
	pool := compose.PoolFromPopulation(r.W.Pop, r.W.Trust)
	comp, err := compose.Recompose(r.req, r.comp, failed, pool)
	if err != nil {
		return // pool exhausted; keep limping
	}
	r.install(comp)
	r.Metrics.Repairs.Inc()
	r.Metrics.RepairTime.AddDuration(r.W.Eng.Now() - start)
}

// liveMembers materializes current member candidates with live
// positions.
func (r *Runtime) liveMembers() []compose.Candidate {
	var out []compose.Candidate
	for id := range r.members {
		a := r.W.Pop.Get(id)
		if a == nil || !a.Alive() {
			continue
		}
		out = append(out, compose.Candidate{
			ID: id, Pos: a.Pos(), Caps: a.Caps,
			Trust: r.W.Trust.Score(id), Affiliation: a.Affiliation,
		})
	}
	return out
}

// incident generates one battlefield event and drives the decision loop.
func (r *Runtime) incident() {
	r.Metrics.Incidents.Inc()
	r.nextIncID++
	pos := geo.Point{
		X: r.rng.Uniform(r.Mission.Goal.Area.Min.X, r.Mission.Goal.Area.Max.X),
		Y: r.rng.Uniform(r.Mission.Goal.Area.Min.Y, r.Mission.Goal.Area.Max.Y),
	}
	deadline := r.W.Eng.Now() + r.Mission.IncidentDeadline

	detector := r.nearestDetector(pos)
	if detector == asset.None {
		return // coverage gap: incident missed
	}
	r.Metrics.Detected.Inc()
	detectedAt := r.W.Eng.Now()

	complete := func() {
		now := r.W.Eng.Now()
		r.Metrics.Acted.Inc()
		r.Metrics.DecisionLatency.AddDuration(now - detectedAt)
		if now <= deadline {
			r.Metrics.OnTime.Inc()
		}
	}

	switch r.Mission.Command {
	case CommandIntent:
		// Subordinate initiative: deliberate locally, act.
		r.W.Eng.Schedule(r.Mission.LocalDeliberation, "core.intent-act", complete)
	default:
		r.hierarchyLoop(detector, complete)
	}
}

// hierarchyLoop routes the report to the command post, pays per-level
// approval, and routes the order back.
func (r *Runtime) hierarchyLoop(detector asset.ID, complete func()) {
	sink := r.sink
	if sink == asset.None {
		return
	}
	incID := r.nextIncID
	msg := mesh.Message{
		From: detector, To: sink, Size: 2000, Kind: "report",
		Payload: reportPayload{incID: incID, detector: detector, complete: complete},
	}
	if r.rel != nil {
		r.rel.Register(sink, r.sinkHandler(sink))
		r.rel.Register(detector, r.detectorHandler(detector))
		r.rel.Send(msg, nil, nil)
		return
	}
	r.W.Net.RegisterHandler(sink, r.sinkHandler(sink))
	r.W.Net.RegisterHandler(detector, r.detectorHandler(detector))
	if err := r.W.Net.Send(msg); err != nil {
		// Command post unreachable: the hierarchy cannot authorize.
		return
	}
}

type reportPayload struct {
	incID    int
	detector asset.ID
	complete func()
}

type orderPayload struct {
	incID    int
	complete func()
}

// sinkHandler processes reports at the command post: pay the staffing
// delay for each echelon, then send the order back.
func (r *Runtime) sinkHandler(sink asset.ID) mesh.Handler {
	return func(msg mesh.Message) {
		if msg.Kind != "report" {
			return
		}
		p, ok := msg.Payload.(reportPayload)
		if !ok {
			return
		}
		delay := time.Duration(r.Mission.HierarchyLevels) * r.Mission.ApprovalPerLevel
		r.W.Eng.Schedule(delay, "core.approve", func() {
			order := mesh.Message{
				From: sink, To: p.detector, Size: 500, Kind: "order",
				Payload: orderPayload{incID: p.incID, complete: p.complete},
			}
			if r.rel != nil {
				r.rel.Send(order, nil, nil)
				return
			}
			_ = r.W.Net.Send(order)
		})
	}
}

// detectorHandler executes orders arriving back at the detector.
func (r *Runtime) detectorHandler(asset.ID) mesh.Handler {
	return func(msg mesh.Message) {
		if msg.Kind != "order" {
			return
		}
		p, ok := msg.Payload.(orderPayload)
		if !ok {
			return
		}
		p.complete()
	}
}

// nearestDetector returns the closest live composite member that can
// sense the position, or None. Environmental obscurants (smoke) mask a
// member's blocked modalities, so an all-visual composite goes blind
// inside a smoke field while a modality-diverse one keeps detecting —
// the paper's seismic-for-visual substitution, live.
func (r *Runtime) nearestDetector(pos geo.Point) asset.ID {
	best := asset.None
	bestD := 0.0
	mods := r.Mission.Goal.Modalities
	blocked := r.W.Smoke.BlockedAt(pos)
	for id := range r.members {
		a := r.W.Pop.Get(id)
		if a == nil || !a.Alive() {
			continue
		}
		effective := a.Caps.Modalities &^ blocked
		if effective == 0 {
			continue // everything this member senses with is obscured
		}
		if mods != 0 && effective&mods == 0 {
			continue
		}
		d := a.Pos().Dist(pos)
		if d > a.Caps.SenseRange {
			continue
		}
		if best == asset.None || d < bestD {
			best, bestD = id, d
		}
	}
	return best
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
