package core

import (
	"testing"
	"time"
)

// TestLiveMembersSorted locks in the iobtlint maporder fix: the
// candidate list liveMembers materializes from the members map feeds
// the composition solvers, whose tie-breaking follows slice order, so
// it must come out in ascending ID order regardless of map iteration
// order.
func TestLiveMembersSorted(t *testing.T) {
	w := testWorld(t, 11)
	defer w.Stop()
	r := NewRuntime(w, testMission(CommandIntent))
	if err := r.Synthesize(); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer r.Stop()
	if err := w.Run(2 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	for trial := 0; trial < 5; trial++ {
		ms := r.liveMembers()
		if len(ms) == 0 {
			t.Fatal("no live members")
		}
		for i := 1; i < len(ms); i++ {
			if ms[i-1].ID >= ms[i].ID {
				t.Fatalf("liveMembers not in ascending ID order: %v >= %v at %d",
					ms[i-1].ID, ms[i].ID, i)
			}
		}
	}
}
