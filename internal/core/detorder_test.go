package core

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
)

// TestLiveMembersSorted locks in the iobtlint maporder fix: the
// candidate list liveMembers materializes from the members map feeds
// the composition solvers, whose tie-breaking follows slice order, so
// it must come out in ascending ID order regardless of map iteration
// order.
func TestLiveMembersSorted(t *testing.T) {
	w := testWorld(t, 11)
	defer w.Stop()
	r := NewRuntime(w, testMission(CommandIntent))
	if err := r.Synthesize(); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer r.Stop()
	if err := w.Run(2 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	for trial := 0; trial < 5; trial++ {
		ms := r.liveMembers()
		if len(ms) == 0 {
			t.Fatal("no live members")
		}
		for i := 1; i < len(ms); i++ {
			if ms[i-1].ID >= ms[i].ID {
				t.Fatalf("liveMembers not in ascending ID order: %v >= %v at %d",
					ms[i-1].ID, ms[i].ID, i)
			}
		}
	}
}

// TestSortedMemberIDs pins the helper every scheduling-reachable
// member loop now goes through: ascending ID order, every call.
func TestSortedMemberIDs(t *testing.T) {
	w := testWorld(t, 12)
	defer w.Stop()
	r := NewRuntime(w, testMission(CommandIntent))
	if err := r.Synthesize(); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	for trial := 0; trial < 5; trial++ {
		ids := r.sortedMemberIDs()
		if len(ids) == 0 {
			t.Fatal("no members")
		}
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatalf("sortedMemberIDs out of order at %d: %v", i, ids)
			}
		}
	}
}

// TestNearestDetectorTieBreak locks in the iobtlint dettaint fix: two
// members exactly equidistant from the sensed position must resolve to
// the lower ID every time, not to whichever the members map yielded
// first that run — the strict `d < bestD` comparison made the old
// map-range loop first-wins.
func TestNearestDetectorTieBreak(t *testing.T) {
	w := testWorld(t, 13)
	defer w.Stop()
	r := NewRuntime(w, testMission(CommandIntent))
	mk := func(x, y float64) asset.ID {
		caps := asset.DefaultCaps(asset.ClassSensor)
		caps.SenseRange = 500
		a := &asset.Asset{
			Affiliation: asset.Blue,
			Class:       asset.ClassSensor,
			Caps:        caps,
			Online:      true,
			Mobility:    &geo.Static{P: geo.Point{X: x, Y: y}},
		}
		a.Energy = caps.EnergyCap
		return w.Pop.Add(a)
	}
	left := mk(600, 700)
	right := mk(800, 700)
	r.members = map[asset.ID]bool{left: true, right: true}
	r.Mission.Goal.Modalities = 0
	pos := geo.Point{X: 700, Y: 700} // exactly 100 from both
	for trial := 0; trial < 100; trial++ {
		if got := r.nearestDetector(pos); got != left {
			t.Fatalf("trial %d: nearestDetector = %v, want lowest equidistant ID %v", trial, got, left)
		}
	}
}
