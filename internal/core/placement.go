package core

import (
	"iobt/internal/asset"
	"iobt/internal/geo"
)

// Asset-to-shard placement for the sharded simulation core. The
// battlefield is split by a geo.ShardMap (vertical bands); each asset
// is owned by the shard whose band holds its position, so the dominant
// short-range radio traffic stays shard-local and only boundary
// crossings pay the cross-shard mailbox path.

// PlaceAssets assigns every live asset in pop to its spatial shard and
// returns the placement keyed by asset ID. The walk is over the
// population's stable slice order, so the result is deterministic for a
// fixed world.
func PlaceAssets(pop *asset.Population, sm *geo.ShardMap) map[asset.ID]int {
	place := make(map[asset.ID]int, pop.Len())
	for _, a := range pop.All() {
		if !a.Alive() {
			continue
		}
		place[a.ID] = sm.ShardOf(a.Pos())
	}
	return place
}

// ShardLoad folds a placement into per-shard asset counts — the
// balance diagnostic for choosing a shard count (a band holding most of
// the population serializes the run no matter how many workers exist).
func ShardLoad(place map[asset.ID]int, shards int) []int {
	load := make([]int, shards)
	for _, sh := range place {
		if sh >= 0 && sh < shards {
			load[sh]++
		}
	}
	return load
}
