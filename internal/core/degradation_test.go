package core

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/attack"
	"iobt/internal/fault"
	"iobt/internal/geo"
)

// TestHandlerRegistrationOnce is the regression test for the old
// hierarchyLoop behavior that re-registered sink and detector handlers
// on every incident: registration must happen at Start (and on
// composite changes), not per message.
func TestHandlerRegistrationOnce(t *testing.T) {
	w := testWorld(t, 41)
	defer w.Stop()
	m := testMission(CommandHierarchy)
	m.ReliableOrders = true
	r := NewRuntime(w, m)
	if err := r.Synthesize(); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	after30s := r.Reliable().Registrations.Value()
	if after30s == 0 {
		t.Fatal("no handlers registered at all")
	}
	if err := w.Run(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	if r.Metrics.Incidents.Value() < 30 {
		t.Fatalf("only %d incidents; the regression needs traffic", r.Metrics.Incidents.Value())
	}
	// A calm mission (no composite churn) must not register anything new
	// after warm-up, no matter how many incidents flow.
	if got := r.Reliable().Registrations.Value(); got != after30s {
		t.Errorf("registrations grew from %d to %d across %d incidents; handlers churned",
			after30s, got, r.Metrics.Incidents.Value())
	}
}

// TestCommandFallbackAndRestore drives the command-continuity reflex:
// a total jam makes every order exchange fail, the runtime falls back
// from hierarchy to intent, and when the jam lifts the hierarchy is
// restored.
func TestCommandFallbackAndRestore(t *testing.T) {
	w := testWorld(t, 42)
	defer w.Stop()
	m := testMission(CommandHierarchy)
	m.ReliableOrders = true
	m.Degradation = true
	r := NewRuntime(w, m)
	if err := r.Synthesize(); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	// Total communication blackout from 1:00 to 3:00.
	w.Jam.Add(attack.Jammer{
		Area:      geo.Circle{Center: geo.Point{X: 750, Y: 750}, Radius: 2000},
		Intensity: 1,
		From:      time.Minute,
		Until:     3 * time.Minute,
	})
	if err := w.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	met := &r.Metrics
	if met.Undeliverable.Value() == 0 {
		t.Error("blackout produced no undeliverable commands; silent loss is back")
	}
	if met.Fallbacks.Value() == 0 {
		t.Error("no command-continuity fallback under total blackout")
	}
	if met.Restores.Value() == 0 {
		t.Error("hierarchy not restored after the jam lifted")
	}
	if r.FellBack() {
		t.Error("still fallen back two minutes after the jam lifted")
	}
	if met.SuccessRate() < 0.3 {
		t.Errorf("success %.2f with reflexes; fallback should keep the mission alive",
			met.SuccessRate())
	}
}

// TestDegradationDoublesStandardPlanSuccess pins the acceptance
// criterion: under the standard fault plan (partition + map-wide jam
// wave + 1/3 kill wave + command-post loss) the mission with
// degradation reflexes achieves at least twice the success rate of the
// same mission with them disabled.
func TestDegradationDoublesStandardPlanSuccess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two six-minute missions")
	}
	run := func(degrade bool) float64 {
		w := testWorld(t, 43)
		defer w.Stop()
		m := testMission(CommandHierarchy)
		m.ReliableOrders = true
		m.Degradation = degrade
		r := NewRuntime(w, m)
		if err := r.Synthesize(); err != nil {
			t.Fatalf("synthesize: %v", err)
		}
		if err := r.Start(); err != nil {
			t.Fatal(err)
		}
		defer r.Stop()
		h := &fault.Harness{
			T: fault.Target{
				Eng: w.Eng, Pop: w.Pop, Net: w.Net, Jam: w.Jam, Smoke: w.Smoke,
				Composite:   func() []asset.ID { return r.Composite().Members },
				CommandPost: func() asset.ID { return r.Sink() },
			},
			Plan: fault.StandardPlan(1500),
			Goodput: func() (uint64, uint64) {
				return r.Metrics.OnTime.Value(), r.Metrics.Incidents.Value()
			},
		}
		if _, err := h.Run(6 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return r.Metrics.SuccessRate()
	}
	withReflex := run(true)
	withoutReflex := run(false)
	if withReflex < 2*withoutReflex {
		t.Errorf("reflex success %.2f < 2x no-reflex %.2f", withReflex, withoutReflex)
	}
}

// TestCoverageRelaxationWhenPoolExhausted: when repair cannot restore
// the goal from the surviving pool, the goal is relaxed stepwise and
// recorded, instead of the old silent keep-limping.
func TestCoverageRelaxationWhenPoolExhausted(t *testing.T) {
	w := testWorld(t, 44)
	defer w.Stop()
	m := testMission(CommandIntent)
	m.Degradation = true
	r := NewRuntime(w, m)
	if err := r.Synthesize(); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	// Annihilate the composite and nearly the whole population: the
	// pool cannot meet the original goal again.
	w.Eng.Schedule(time.Minute, "annihilate", func() {
		kept := 0
		for _, a := range w.Pop.All() {
			if !a.Alive() {
				continue
			}
			if kept < 10 {
				kept++
				continue
			}
			w.Pop.Kill(a.ID)
		}
		w.Net.Refresh()
	})
	if err := w.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	if r.Metrics.Relaxations.Value() == 0 {
		t.Error("pool exhaustion triggered no coverage relaxation")
	}
	if r.Health() == Healthy {
		t.Error("mission reports healthy after losing nearly every asset")
	}
}

// TestHealthStateTransitions checks the state machine surfaces
// degradation and recovery.
func TestHealthStateTransitions(t *testing.T) {
	w := testWorld(t, 45)
	defer w.Stop()
	m := testMission(CommandHierarchy)
	m.ReliableOrders = true
	m.Degradation = true
	r := NewRuntime(w, m)
	if err := r.Synthesize(); err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if r.Health() != Healthy {
		t.Fatalf("initial health = %v", r.Health())
	}
	sawDegraded := false
	w.Eng.Every(time.Second, "probe", func() {
		if r.Health() == Degraded {
			sawDegraded = true
		}
	})
	w.Jam.Add(attack.Jammer{
		Area:      geo.Circle{Center: geo.Point{X: 750, Y: 750}, Radius: 2000},
		Intensity: 1,
		From:      30 * time.Second,
		Until:     2 * time.Minute,
	})
	if err := w.Run(4 * time.Minute); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	if !sawDegraded {
		t.Error("blackout never surfaced as Degraded health")
	}
	if r.Metrics.HealthChanges.Value() == 0 {
		t.Error("no health transitions recorded")
	}
	if r.Health() != Healthy {
		t.Errorf("health %v after recovery window, want healthy", r.Health())
	}
}
