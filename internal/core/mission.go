package core

import (
	"time"

	"iobt/internal/compose"
	"iobt/internal/geo"
)

// CommandModel selects how battlefield decisions are authorized.
type CommandModel int

// Command models.
const (
	// CommandHierarchy routes every decision to the command post and
	// back, paying per-level staffing delays — the paper's "strict
	// hierarchical structure" whose authorizations "must arrive through
	// an appropriate chain of command".
	CommandHierarchy CommandModel = iota + 1
	// CommandIntent lets the detecting asset act on commander's intent
	// after a brief local deliberation — "empowers subordinate units to
	// exercise more initiative and autonomy".
	CommandIntent
)

// String names the command model.
func (c CommandModel) String() string {
	switch c {
	case CommandHierarchy:
		return "hierarchy"
	case CommandIntent:
		return "intent"
	default:
		return "unknown"
	}
}

// Mission is a commander's tasking.
type Mission struct {
	// Goal is the declarative synthesis goal (area, modalities,
	// coverage, resources).
	Goal compose.Goal
	// Command selects the decision-authorization model.
	Command CommandModel
	// HierarchyLevels is the chain-of-command depth (hierarchy only).
	HierarchyLevels int
	// ReliableOrders routes hierarchy reports and orders over the ARQ
	// layer instead of best-effort delivery: fewer decisions lost to
	// channel loss, at added latency and airtime.
	ReliableOrders bool
	// ApprovalPerLevel is the staffing delay added at each echelon.
	// Zero defaults to 2s.
	ApprovalPerLevel time.Duration
	// LocalDeliberation is the on-asset decision time under intent.
	// Zero defaults to 200ms.
	LocalDeliberation time.Duration

	// Degradation enables the graceful-degradation reflexes: command
	// continuity (hierarchy → intent fallback after FallbackAfter
	// consecutive order-delivery failures, restored when a post becomes
	// reachable again) and coverage-goal relaxation (down to RelaxFloor)
	// when the candidate pool cannot repair the composite.
	Degradation bool
	// FallbackAfter is the consecutive command-delivery-failure count
	// that triggers the intent fallback. Zero defaults to 3.
	FallbackAfter int
	// RelaxFloor is the lowest coverage fraction relaxation may reach,
	// as a fraction of the original cell grid. Zero defaults to 0.2.
	RelaxFloor float64

	// IncidentsPerMin is the battlefield event rate.
	IncidentsPerMin float64
	// IncidentDeadline is how long an incident stays actionable.
	// Zero defaults to 30s.
	IncidentDeadline time.Duration

	// CheckpointEvery enables periodic mission checkpoints at this
	// cadence (zero disables). Checkpoints capture command-post state —
	// composite roll, trust ledger, track picture, ARQ window — so a
	// successor post can be promoted warm after the post is destroyed.
	// Shorter cadence means a fresher restore at more airtime/compute;
	// E15 sweeps this trade-off.
	CheckpointEvery time.Duration
	// ColdRebuild is how long a cold-promoted successor takes to rebuild
	// command state from scratch (re-synthesis, re-acquisition). Zero
	// defaults to 15s.
	ColdRebuild time.Duration
	// WarmHandover is how long a warm-promoted successor takes to load
	// the last checkpoint and resume. Zero defaults to 500ms.
	WarmHandover time.Duration
	// TrustAudit makes each completed action feed positive mission
	// evidence (trust.EvMission) for its detector, so the trust ledger
	// accumulates signal during the mission — and the evidence lost in a
	// post crash (the stale-trust window) is measurable.
	TrustAudit bool
}

// DefaultMission returns an evacuation-style mission over the given
// area: visual+thermal coverage with modest compute.
func DefaultMission(area geo.Rect) Mission {
	return Mission{
		Goal: compose.Goal{
			Name:         "evacuation",
			Area:         area,
			Modalities:   0, // any modality may detect incidents
			CoverageFrac: 0.7,
			PerHop:       5 * time.Millisecond,
		},
		Command:           CommandIntent,
		HierarchyLevels:   3,
		ApprovalPerLevel:  2 * time.Second,
		LocalDeliberation: 200 * time.Millisecond,
		IncidentsPerMin:   6,
		IncidentDeadline:  30 * time.Second,
	}
}

// normalized fills mission defaults.
func (m Mission) normalized() Mission {
	if m.ApprovalPerLevel <= 0 {
		m.ApprovalPerLevel = 2 * time.Second
	}
	if m.LocalDeliberation <= 0 {
		m.LocalDeliberation = 200 * time.Millisecond
	}
	if m.IncidentDeadline <= 0 {
		m.IncidentDeadline = 30 * time.Second
	}
	if m.HierarchyLevels < 1 {
		m.HierarchyLevels = 1
	}
	if m.FallbackAfter <= 0 {
		m.FallbackAfter = 3
	}
	if m.RelaxFloor <= 0 {
		m.RelaxFloor = 0.2
	}
	if m.IncidentsPerMin <= 0 {
		m.IncidentsPerMin = 6
	}
	if m.ColdRebuild <= 0 {
		m.ColdRebuild = 15 * time.Second
	}
	if m.WarmHandover <= 0 {
		m.WarmHandover = 500 * time.Millisecond
	}
	return m
}
