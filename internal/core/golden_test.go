package core_test

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/checkpoint"
	"iobt/internal/core"
	"iobt/internal/fault"
	"iobt/internal/geo"
	"iobt/internal/verify"
)

// runStandard runs the reference mission (hierarchy + ARQ, degradation
// reflexes on) under the standard fault plan with the shared verify
// catalogue armed, and returns the runtime.
func runStandard(t *testing.T, seed int64, journal *checkpoint.Journal) *core.Runtime {
	t.Helper()
	w := core.NewWorld(core.WorldConfig{Seed: seed, Terrain: geo.NewOpenTerrain(1200, 1200), Assets: 250})
	defer w.Stop()
	m := core.DefaultMission(geo.NewRect(geo.Point{X: 200, Y: 200}, geo.Point{X: 1000, Y: 1000}))
	m.Goal.CoverageFrac = 0.4
	m.Command = core.CommandHierarchy
	m.ReliableOrders = true
	m.Degradation = true
	m.IncidentsPerMin = 30
	m.CheckpointEvery = 15 * time.Second
	r := core.NewRuntime(w, m)
	r.SetJournal(journal)
	if err := r.Synthesize(); err != nil {
		t.Skip("sparse world")
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	reg := verify.NewRegistry()
	reg.Add(verify.MissionInvariants(w, r)...)
	reg.SetClock(w.Eng.Now)
	h := &fault.Harness{
		T: fault.Target{
			Eng: w.Eng, Pop: w.Pop, Net: w.Net, Jam: w.Jam, Smoke: w.Smoke,
			Composite:   func() []asset.ID { return r.Composite().Members },
			CommandPost: func() asset.ID { return r.Sink() },
		},
		Plan: fault.StandardPlan(1200),
		Goodput: func() (uint64, uint64) {
			return r.Metrics.OnTime.Value(), r.Metrics.Incidents.Value()
		},
		Invariants: reg.FaultInvariants(),
	}
	rep, err := h.Run(3 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("invariant violations: %s", rep)
	}
	return r
}

// TestGoldenDeterminism is the golden determinism regression: the
// standard fault plan run twice at the same seed must produce
// bit-identical mission metrics — not just a few counters, the full
// Fingerprint (every counter plus the latency/repair series shapes).
func TestGoldenDeterminism(t *testing.T) {
	f1 := runStandard(t, 42, nil).Metrics.Fingerprint()
	f2 := runStandard(t, 42, nil).Metrics.Fingerprint()
	if f1 != f2 {
		t.Errorf("same-seed standard-plan fingerprints differ: %016x vs %016x", f1, f2)
	}
}

// TestReplayVerifyStandardPlan replays the standard-plan mission from
// its decision journal and requires zero divergence.
func TestReplayVerifyStandardPlan(t *testing.T) {
	plan := fault.StandardPlan(1200)
	div := checkpoint.VerifyReplay(42, plan.String(), func(j *checkpoint.Journal) {
		runStandard(t, 42, j)
	})
	if div != nil {
		t.Errorf("replay diverged at line %d:\n  run A: %s\n  run B: %s", div.Index, div.A, div.B)
	}
}
