package core_test

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/checkpoint"
	"iobt/internal/core"
	"iobt/internal/fault"
	"iobt/internal/geo"
	"iobt/internal/track"
	"iobt/internal/verify"
)

// failoverMission builds a hierarchy+ARQ mission with checkpoints and a
// deterministic track scenario, runs it under a crash(+failover) plan,
// and returns the runtime, report, and world.
func runFailover(t *testing.T, seed int64, every time.Duration, plan *fault.Plan, journal *checkpoint.Journal) (*core.Runtime, *fault.Report, *core.World) {
	t.Helper()
	w := core.NewWorld(core.WorldConfig{Seed: seed, Terrain: geo.NewOpenTerrain(1200, 1200), Assets: 250})
	m := core.DefaultMission(geo.NewRect(geo.Point{X: 200, Y: 200}, geo.Point{X: 1000, Y: 1000}))
	m.Goal.CoverageFrac = 0.4
	m.Command = core.CommandHierarchy
	m.ReliableOrders = true
	m.IncidentsPerMin = 30
	m.CheckpointEvery = every
	m.TrustAudit = true
	r := core.NewRuntime(w, m)
	r.SetJournal(journal)

	// A deterministic target picture fused at the post: three crossing
	// targets observed once a second.
	tracker := track.NewTracker(track.Config{})
	r.AttachTracker(tracker)
	w.Eng.Every(time.Second, "test.targets", func() {
		ts := w.Eng.Now().Seconds()
		tracker.Observe(w.Eng.Now(), []track.Detection{
			{Pos: geo.Point{X: 200 + 3*ts, Y: 300}, Var: 9, Sensor: 1},
			{Pos: geo.Point{X: 900 - 2*ts, Y: 600}, Var: 9, Sensor: 2},
			{Pos: geo.Point{X: 550, Y: 200 + 2.5*ts}, Var: 9, Sensor: 3},
		})
	})

	if err := r.Synthesize(); err != nil {
		t.Skip("sparse world")
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	reg := verify.NewRegistry()
	reg.Add(verify.MissionInvariants(w, r)...)
	reg.SetClock(w.Eng.Now)
	h := &fault.Harness{
		T: fault.Target{
			Eng: w.Eng, Pop: w.Pop, Net: w.Net, Jam: w.Jam, Smoke: w.Smoke,
			Composite:   func() []asset.ID { return r.Composite().Members },
			CommandPost: func() asset.ID { return r.Sink() },
			CrashPost:   r.CrashPost,
			Failover:    r.Failover,
		},
		Plan: plan,
		Goodput: func() (uint64, uint64) {
			return r.Metrics.OnTime.Value(), r.Metrics.Incidents.Value()
		},
		Invariants: reg.FaultInvariants(),
		Recovery:   fault.RecoveryHooks(r.Probe()),
	}
	rep, err := h.Run(4 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	r.Stop()
	w.Stop()
	return r, rep, w
}

func crashPlan(mode string) *fault.Plan {
	p := &fault.Plan{Name: "crash-" + mode}
	p.Add(fault.Fault{Kind: fault.CrashPost, At: 119 * time.Second})
	switch mode {
	case "warm":
		p.Add(fault.Fault{Kind: fault.Failover, At: 119*time.Second + 500*time.Millisecond, Warm: true})
	case "cold":
		p.Add(fault.Fault{Kind: fault.Failover, At: 119*time.Second + 500*time.Millisecond, Warm: false})
	}
	return p
}

// TestFailoverWarmBeatsCold is the tentpole property: at the same seed
// and crash time, a warm-promoted successor loses fewer orders and
// resumes faster than a cold-promoted one, which in turn beats no
// promotion at all.
func TestFailoverWarmBeatsCold(t *testing.T) {
	const seed = 11
	_, warm, _ := runFailover(t, seed, 15*time.Second, crashPlan("warm"), nil)
	_, cold, _ := runFailover(t, seed, 15*time.Second, crashPlan("cold"), nil)
	_, none, _ := runFailover(t, seed, 15*time.Second, crashPlan("none"), nil)

	for name, rep := range map[string]*fault.Report{"warm": warm, "cold": cold, "none": none} {
		if !rep.OK() {
			t.Fatalf("%s: invariant violations: %s", name, rep)
		}
		if len(rep.Recovery) != 1 {
			t.Fatalf("%s: %d recovery gaps, want 1", name, len(rep.Recovery))
		}
	}
	gw, gc, gn := warm.Recovery[0], cold.Recovery[0], none.Recovery[0]
	t.Logf("warm: %s", gw)
	t.Logf("cold: %s", gc)
	t.Logf("none: %s", gn)

	if !gw.Resumed {
		t.Fatal("warm failover did not resume command")
	}
	if !gc.Resumed {
		t.Fatal("cold failover did not resume command")
	}
	if gn.Resumed {
		t.Error("no-failover run resumed command; repickSink leak past postDown?")
	}
	if gw.TimeToResume >= gc.TimeToResume {
		t.Errorf("warm resume %s not faster than cold %s", gw.TimeToResume, gc.TimeToResume)
	}
	if gw.OrdersLost > gc.OrdersLost {
		t.Errorf("warm lost %d orders, cold lost %d", gw.OrdersLost, gc.OrdersLost)
	}
	if gc.OrdersLost > gn.OrdersLost {
		t.Errorf("cold lost %d orders, none lost %d", gc.OrdersLost, gn.OrdersLost)
	}
	// Warm restores the checkpointed trust ledger; cold rebuilds from
	// nothing, so everything the ledger held goes stale.
	if gw.StaleTrust >= gc.StaleTrust {
		t.Errorf("warm stale trust %.2f not below cold %.2f", gw.StaleTrust, gc.StaleTrust)
	}
	// Warm restores the track picture; cold re-acquires every target.
	if gw.TrackFrag > gc.TrackFrag {
		t.Errorf("warm track frag %d above cold %d", gw.TrackFrag, gc.TrackFrag)
	}
}

// TestFailoverDeterministicFingerprint runs the warm-failover mission
// twice at the same seed and requires bit-identical metrics.
func TestFailoverDeterministicFingerprint(t *testing.T) {
	r1, _, _ := runFailover(t, 23, 15*time.Second, crashPlan("warm"), nil)
	r2, _, _ := runFailover(t, 23, 15*time.Second, crashPlan("warm"), nil)
	if f1, f2 := r1.Metrics.Fingerprint(), r2.Metrics.Fingerprint(); f1 != f2 {
		t.Errorf("same-seed warm failover fingerprints differ: %016x vs %016x", f1, f2)
	}
}

// TestReplayVerifyFailoverPlan replays the full crash+warm-failover
// mission from its journal and requires zero divergence: the decision
// log — every incident, action, checkpoint digest, crash, and
// promotion — must be byte-identical across runs.
func TestReplayVerifyFailoverPlan(t *testing.T) {
	plan := crashPlan("warm")
	div := checkpoint.VerifyReplay(31, plan.String(), func(j *checkpoint.Journal) {
		runFailover(t, 31, 15*time.Second, plan, j)
	})
	if div != nil {
		t.Errorf("replay diverged at line %d:\n  run A: %s\n  run B: %s", div.Index, div.A, div.B)
	}
}
