package core

import (
	"math"
	"time"

	"iobt/internal/asset"
	"iobt/internal/cop"
	"iobt/internal/geo"
)

// This file bridges the live mission state into the convergent common
// operational picture (internal/cop): each node folds what it can see
// locally — the trust ledger, the track picture, the composite's sensor
// footprint — into its own Picture replica, and the gossip overlay
// (internal/mesh) carries encoded replicas between nodes where Merge
// reconciles them. Folding is monotone by construction (evidence joins,
// LWW registers keyed by the engine clock, idempotent coverage), so the
// PictureMonotone invariant holds across arbitrary update/merge orders.

// DefaultCOPCell is the coverage-map cell size in meters used when a
// caller passes a non-positive cellSize.
const DefaultCOPCell = 100.0

// CellAt quantizes a position into a coverage-map cell.
func CellAt(p geo.Point, cellSize float64) cop.Cell {
	if cellSize <= 0 {
		cellSize = DefaultCOPCell
	}
	return cop.Cell{
		X: int32(math.Floor(p.X / cellSize)),
		Y: int32(math.Floor(p.Y / cellSize)),
	}
}

// UpdatePicture folds the actor's current view of the world into its
// picture replica: trust evidence for every subject the ledger has seen,
// an LWW fix per live track stamped with the engine clock, and one
// coverage cell per alive composite member position. r may be nil (a
// bare sensing node with no mission runtime); coverage and tracks are
// then skipped. The update is idempotent at a fixed instant and
// monotone over time.
func UpdatePicture(p *cop.Picture, w *World, r *Runtime, cellSize float64) {
	now := w.Eng.Now()
	for _, id := range w.Trust.IDs() {
		alpha, beta := w.Trust.Evidence(id)
		p.ObserveTrust(id, alpha, beta)
	}
	if r == nil {
		return
	}
	if tr := r.Tracker(); tr != nil {
		for _, fx := range tr.Fixes() {
			p.ObserveTrack(fx.ID, cop.TrackFix{
				Pos: fx.Pos, Vel: fx.Vel, Hits: fx.Hits, Confirmed: fx.Confirmed,
			}, now)
		}
	}
	if comp := r.Composite(); comp != nil {
		for _, id := range comp.Members {
			a := w.Pop.Get(id)
			if a == nil || !a.Alive() {
				continue
			}
			c := CellAt(a.Pos(), cellSize)
			// Cover mints a fresh add-tag per call; only cover cells not
			// already held so repeated folds stay bounded.
			if !p.Covered(c) {
				p.Cover(c)
			}
		}
	}
}

// BuildPicture constructs the actor's picture replica and folds the
// current world state into it once. Callers that update continuously
// should keep the replica and call UpdatePicture on a tick.
func BuildPicture(w *World, r *Runtime, actor asset.ID, cellSize float64) *cop.Picture {
	p := cop.NewPicture(actor)
	UpdatePicture(p, w, r, cellSize)
	return p
}

// PublishPicture encodes the replica for dissemination and returns the
// payload bytes plus the wall-free timestamp it was cut at. The gossip
// payload kind for encoded pictures is "cop".
func PublishPicture(p *cop.Picture, w *World) ([]byte, time.Duration) {
	return p.Encode(), w.Eng.Now()
}
