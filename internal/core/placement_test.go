package core

import (
	"testing"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

func TestPlaceAssetsSpatial(t *testing.T) {
	terr := geo.NewOpenTerrain(800, 800)
	pop := asset.Generate(terr, asset.DefaultMix(150), sim.NewRNG(7).Derive("place"))
	sm := geo.NewShardMap(terr.Bounds, 4)

	place := PlaceAssets(pop, sm)
	if len(place) == 0 {
		t.Fatal("empty placement")
	}
	alive := 0
	for _, a := range pop.All() {
		if !a.Alive() {
			continue
		}
		alive++
		sh, ok := place[a.ID]
		if !ok {
			t.Fatalf("live asset %d unplaced", a.ID)
		}
		if want := sm.ShardOf(a.Pos()); sh != want {
			t.Fatalf("asset %d placed on shard %d, position says %d", a.ID, sh, want)
		}
	}
	if len(place) != alive {
		t.Fatalf("placed %d assets, %d alive", len(place), alive)
	}

	// Placement is deterministic for a fixed world.
	again := PlaceAssets(pop, sm)
	for id, sh := range place {
		if again[id] != sh {
			t.Fatalf("placement of %d changed across calls: %d vs %d", id, sh, again[id])
		}
	}

	// Every asset lands in a valid shard and the loads account for all.
	load := ShardLoad(place, sm.Shards())
	total := 0
	for _, n := range load {
		total += n
	}
	if total != alive {
		t.Fatalf("shard loads sum to %d, want %d", total, alive)
	}
}
