package core

import "iobt/internal/asset"

// HealthState is the mission health: the runtime's own summary of
// whether the decision loop and coverage goal are intact. The paper's
// operating regime makes degradation normal, not exceptional — the
// state machine gives reflexes and reports a shared vocabulary.
//
//	Healthy  — coverage goal met, command channel delivering.
//	Degraded — a reflex is compensating: coverage relaxed, command
//	           fallen back to intent, or recent delivery failures.
//	Critical — the mission cannot meet even its relaxed goal, or the
//	           command channel is gone with no reflex to absorb it.
type HealthState int

// Health states.
const (
	Healthy HealthState = iota + 1
	Degraded
	Critical
)

// String names the state.
func (h HealthState) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	default:
		return "unknown"
	}
}

// computeHealth derives the state from current conditions. covered is
// the caller's latest coverage evaluation (passed in so event-path
// callers can avoid re-evaluating the full cell grid).
func (r *Runtime) computeHealth(covered bool) HealthState {
	atFloor := false
	if r.relaxSteps > 0 {
		floor := int(r.Mission.RelaxFloor * float64(len(r.req.Cells)))
		if floor < 1 {
			floor = 1
		}
		atFloor = r.req.NeedCells <= floor
	}
	cmdLost := false
	if r.Mission.Command == CommandHierarchy && !r.fellBack {
		cmdLost = r.sink == asset.None || !r.sinkAlive()
	}
	switch {
	case !covered && (!r.Mission.Degradation || atFloor):
		return Critical
	case cmdLost && !r.Mission.Degradation && r.orderFails >= r.Mission.FallbackAfter:
		return Critical
	case !covered || cmdLost || r.fellBack || r.relaxSteps > 0 || r.orderFails > 0:
		return Degraded
	default:
		return Healthy
	}
}

// setHealth applies a transition, counting changes.
func (r *Runtime) setHealth(next HealthState) {
	if next == r.health {
		return
	}
	r.health = next
	r.Metrics.HealthChanges.Inc()
}
