package core

import (
	"hash/fnv"

	"iobt/internal/asset"
	"iobt/internal/checkpoint"
	"iobt/internal/compose"
	"iobt/internal/mesh"
	"iobt/internal/sim"
	"iobt/internal/track"
)

// This file is the command-post survivability layer. The command post
// is the mission's single richest state concentration — composite roll,
// trust ledger, track picture, unacknowledged command traffic — and the
// paper's threat model makes it a priority target. Three dispositions
// are modeled when it dies:
//
//	none — no promotion: the mission limps on its degradation reflexes
//	       (intent fallback) or stalls.
//	cold — a successor is promoted after Mission.ColdRebuild: all
//	       post-local state is rebuilt from scratch, in-flight command
//	       traffic fails loudly.
//	warm — a successor is promoted after Mission.WarmHandover: state is
//	       restored from the last periodic checkpoint and the
//	       checkpointed ARQ window is requeued, re-addressed to the
//	       successor.
//
// E15 measures the recovery gap (orders lost, time-to-resume, stale
// trust, track fragmentation) across the three dispositions and the
// checkpoint cadence.

// startCheckpoints builds and starts the checkpoint coordinator when
// the mission enables a cadence. Called from Start.
func (r *Runtime) startCheckpoints() {
	if r.Mission.CheckpointEvery <= 0 {
		return
	}
	r.coord = checkpoint.NewCoordinator(r.W.Eng, r.Mission.CheckpointEvery)
	// A cut that shares a timestamp with the crash would snapshot
	// destroyed state; skip cuts while no post is standing.
	r.coord.Gate = func() bool { return !r.postDown }
	r.coord.OnCheckpoint = func(ck *checkpoint.Checkpoint) {
		r.journalf("checkpoint seq=%d digest=%016x", ck.Seq, ck.Digest())
	}
	r.coord.Register(r)
	r.coord.Register(r.W.Trust)
	if r.tracker != nil {
		//iobt:allow metricreg optional component: a tracker is only checkpointed when the mission attached one
		r.coord.Register(r.tracker)
	}
	if r.rel != nil {
		//iobt:allow metricreg optional component: the ARQ window only exists when the mission runs reliable orders
		r.coord.Register(r.rel)
	}
	r.coord.Start()
}

// Checkpoints returns the checkpoint coordinator (nil unless the
// mission set CheckpointEvery and the runtime started).
func (r *Runtime) Checkpoints() *checkpoint.Coordinator { return r.coord }

// SetJournal installs a decision journal; every mission decision is
// appended to it, so two runs from the same seed and fault plan can be
// diffed for divergence (checkpoint.VerifyReplay).
func (r *Runtime) SetJournal(j *checkpoint.Journal) { r.journal = j }

// journalf appends one timestamped decision-log line when a journal is
// installed.
func (r *Runtime) journalf(format string, args ...any) {
	if r.journal != nil {
		r.journal.Logf(r.W.Eng.Now(), format, args...)
	}
}

// AttachTracker couples a track picture to the mission as command-post
// state: it is wiped by a post crash and checkpointed/restored by the
// failover subsystem. Call before Start.
func (r *Runtime) AttachTracker(tr *track.Tracker) { r.tracker = tr }

// Tracker returns the attached track picture (nil if none).
func (r *Runtime) Tracker() *track.Tracker { return r.tracker }

// PostDown reports whether the command post has been destroyed and no
// successor has been promoted yet.
func (r *Runtime) PostDown() bool { return r.postDown }

// CrashPost destroys the current command post and everything that lived
// on it: the node dies, the trust ledger and track picture are wiped,
// and implicit re-promotion (repickSink) is disabled until Failover
// decides the disposition. In-flight ARQ exchanges are left to their
// retry budgets — with no post standing they drain into Undeliverable
// unless a warm failover requeues them first.
func (r *Runtime) CrashPost() {
	if r.sink == asset.None || !r.sinkAlive() {
		r.repickSink()
	}
	old := r.sink
	if old == asset.None {
		return
	}
	r.W.Pop.Kill(old)
	r.W.Net.Refresh()
	r.postDown = true
	r.sink = asset.None
	r.W.Trust.Reset()
	if r.tracker != nil {
		r.tracker.Reset()
	}
	r.journalf("crash post=%d", old)
	r.setHealth(r.computeHealth(r.coverageHolds()))
}

// Failover promotes a successor command post after a CrashPost. The
// promotion is not instant: a warm successor pays Mission.WarmHandover
// to load the last checkpoint; a cold one pays Mission.ColdRebuild to
// rebuild state from scratch. Until the delay elapses the mission has
// no post. Warm promotion falls back to cold when no checkpoint exists.
func (r *Runtime) Failover(warm bool) {
	if !r.postDown {
		return
	}
	if warm && (r.coord == nil || r.coord.Last() == nil) {
		warm = false
	}
	if warm {
		r.W.Eng.Schedule(r.Mission.WarmHandover, "core.failover.warm", func() { r.promoteWarm() })
		return
	}
	r.W.Eng.Schedule(r.Mission.ColdRebuild, "core.failover.cold", func() { r.promoteCold() })
}

// promoteWarm installs the successor and restores every checkpointed
// section: runtime mission state, trust ledger, track picture, and the
// ARQ window (requeued, re-addressed from the dead post to the
// successor).
func (r *Runtime) promoteWarm() {
	old, successor := r.sink, r.W.PickCommandPost()
	if successor == asset.None {
		r.journalf("failover warm: no successor")
		return
	}
	// Checkpointed traffic addressed to (or authored by) a dead post
	// must re-home to the successor as it is requeued.
	if r.rel != nil {
		r.rel.Readdress = func(m mesh.Message) mesh.Message {
			if m.To != successor && !r.aliveNode(m.To) {
				m.To = successor
			}
			if m.From != successor && !r.aliveNode(m.From) {
				m.From = successor
			}
			return m
		}
	}
	if err := r.coord.RestoreLast(); err != nil {
		r.journalf("failover warm: restore failed: %v", err)
	}
	// The checkpoint named the dead post as sink; the successor takes
	// over from here.
	r.postDown = false
	r.sink = successor
	r.registerNode(successor)
	r.Metrics.Failovers.Inc()
	ck := r.coord.Last()
	r.journalf("failover warm old=%d new=%d ckseq=%d age=%s", old, successor, ck.Seq, r.W.Eng.Now()-ck.At)
	r.setHealth(r.computeHealth(r.coverageHolds()))
}

// promoteCold installs the successor with no inherited state: the
// in-flight window fails loudly, the trust ledger and track picture
// stay empty (they were wiped at the crash), and the composite is
// re-evaluated by the normal repair reflex.
func (r *Runtime) promoteCold() {
	old, successor := r.sink, r.W.PickCommandPost()
	if successor == asset.None {
		r.journalf("failover cold: no successor")
		return
	}
	failed := 0
	if r.rel != nil {
		failed = r.rel.FailInflight()
	}
	r.postDown = false
	r.sink = successor
	r.registerNode(successor)
	r.Metrics.Failovers.Inc()
	r.journalf("failover cold old=%d new=%d failed=%d", old, successor, failed)
	r.setHealth(r.computeHealth(r.coverageHolds()))
}

// aliveNode reports whether id names a live, online asset.
func (r *Runtime) aliveNode(id asset.ID) bool {
	a := r.W.Pop.Get(id)
	return a != nil && a.Alive() && a.Online
}

// SnapshotName implements checkpoint.Snapshotter for the runtime's own
// mission state.
func (r *Runtime) SnapshotName() string { return "runtime" }

// Snapshot encodes the command post's mission state: the composite
// roll, the sink, the (possibly relaxed) coverage requirement, and the
// command-continuity reflex state.
func (r *Runtime) Snapshot() []byte {
	e := checkpoint.NewEncoder()
	e.Int64(int64(r.sink))
	compose.EncodeComposite(e, r.comp)
	e.Int(r.req.NeedCells)
	e.Int(r.relaxSteps)
	e.Bool(r.fellBack)
	e.Int(r.orderFails)
	e.Int(r.nextIncID)
	e.Int(int(r.health))
	return e.Bytes()
}

// Restore applies a runtime snapshot (the warm-promotion path). The
// snapshot's sink is the post that took the checkpoint — usually dead
// by now — so promoteWarm overrides it after restoring.
func (r *Runtime) Restore(data []byte) error {
	d := checkpoint.NewDecoder(data)
	sink := asset.ID(d.Int64())
	comp := compose.DecodeComposite(d)
	needCells := d.Int()
	relaxSteps := d.Int()
	fellBack := d.Bool()
	orderFails := d.Int()
	nextIncID := d.Int()
	health := HealthState(d.Int())
	if d.Err() != nil {
		return d.Err()
	}
	r.sink = sink
	if comp != nil {
		r.install(comp)
	}
	r.req.NeedCells = needCells
	r.relaxSteps = relaxSteps
	r.fellBack = fellBack
	r.orderFails = orderFails
	// Incident identity is mission-global, like the metrics: rolling the
	// counter back to the checkpoint would hand post-restore incidents
	// IDs already marked resolved, silently dropping their completions.
	if nextIncID > r.nextIncID {
		r.nextIncID = nextIncID
	}
	r.health = health
	return nil
}

// Fingerprint digests every mission metric into one value, so two runs
// can be compared for bit-identical outcomes (the golden determinism
// regression and the replay verifier both use it). Series contribute
// their full shape (count, sum, extrema), counters their value.
func (m *Metrics) Fingerprint() uint64 {
	e := checkpoint.NewEncoder()
	for _, c := range []*sim.Counter{
		&m.Incidents, &m.Detected, &m.Acted, &m.OnTime, &m.Undeliverable,
		&m.Repairs, &m.Fallbacks, &m.Restores, &m.Relaxations,
		&m.HealthChanges, &m.OrdersCarried, &m.Failovers,
	} {
		e.Uint64(c.Value())
	}
	for _, s := range []*sim.Series{&m.DecisionLatency, &m.RepairTime} {
		e.Int(s.N())
		e.Float64(s.Sum())
		if s.N() > 0 {
			e.Float64(s.Min())
			e.Float64(s.Max())
		}
	}
	h := fnv.New64a()
	h.Write(e.Bytes())
	return h.Sum64()
}

// RecoveryProbe samples the mission surfaces the fault harness needs to
// measure a failover's recovery gap.
type RecoveryProbe struct {
	// OrdersDelivered is the cumulative successful command deliveries.
	OrdersDelivered func() uint64
	// OrdersLost is the cumulative terminal command failures.
	OrdersLost func() uint64
	// TrustEvidence is the evidence mass currently in the trust ledger.
	TrustEvidence func() float64
	// ConfirmedTracks is the current confirmed-track count (zero when no
	// tracker is attached).
	ConfirmedTracks func() int
	// PostUp reports whether a command post is standing (false between a
	// crash and its successor's promotion).
	PostUp func() bool
}

// Probe returns the runtime's recovery-measurement surface.
func (r *Runtime) Probe() RecoveryProbe {
	return RecoveryProbe{
		OrdersDelivered: func() uint64 { return r.Metrics.OrdersCarried.Value() },
		OrdersLost:      func() uint64 { return r.Metrics.Undeliverable.Value() },
		TrustEvidence:   func() float64 { return r.W.Trust.EvidenceTotal() },
		ConfirmedTracks: func() int {
			if r.tracker == nil {
				return 0
			}
			return r.tracker.ConfirmedCount()
		},
		PostUp: func() bool { return !r.postDown && r.sink != asset.None && r.sinkAlive() },
	}
}

var _ checkpoint.Snapshotter = (*Runtime)(nil)
