package service

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"iobt/internal/verify"
)

// smallScenario is a fast nominal mission for pool/admission tests.
func smallScenario(seed int64) verify.Scenario {
	return verify.Scenario{
		Seed:    seed,
		Assets:  90,
		Size:    600,
		Terrain: "open",
		Command: "intent",
		Rate:    10,
		Horizon: 20 * time.Second,
	}
}

func TestSubmitParsesAndDefaultsCheckpoint(t *testing.T) {
	svc := New(Config{Workers: 1, CheckpointEvery: 7 * time.Second})
	defer svc.Close()
	m, err := svc.Submit(smallScenario(2101).String())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if m.Scenario.Checkpoint != 7*time.Second {
		t.Errorf("default checkpoint cadence not applied: %v", m.Scenario.Checkpoint)
	}
	if svc.Mission(m.ID) != m {
		t.Error("mission not registered under its ID")
	}
	if _, err := svc.Submit("not a scenario"); err == nil {
		t.Error("garbage submission accepted")
	}
}

// TestAdmissionControlRejectsWhenFull fills the bounded queue with no
// workers draining it and requires ErrQueueFull — the 429 path.
func TestAdmissionControlRejectsWhenFull(t *testing.T) {
	// One worker, blocked by a long mission; queue depth 2.
	svc := New(Config{Workers: 1, QueueDepth: 2, RetryAfterHint: 2500 * time.Millisecond})
	defer svc.Close()
	// The worker picks up the first mission almost immediately; fill the
	// queue behind it until rejection.
	full := 0
	for i := 0; i < 50; i++ {
		_, err := svc.SubmitScenario(smallScenario(int64(2200 + i)))
		if errors.Is(err, ErrQueueFull) {
			full++
			// The rejection is typed: it carries the configured retry hint
			// for clients (and the HTTP Retry-After header) to honor.
			var qf *QueueFullError
			if !errors.As(err, &qf) {
				t.Fatalf("queue-full rejection is not a *QueueFullError: %v", err)
			}
			if qf.RetryAfter != 2500*time.Millisecond {
				t.Errorf("RetryAfter hint = %v, want 2.5s", qf.RetryAfter)
			}
			break
		}
		if err != nil {
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if full == 0 {
		t.Fatal("bounded queue never rejected: admission control is not bounded")
	}
	if svc.Telemetry().RejectedFull == 0 {
		t.Error("rejection not counted in telemetry")
	}
}

// TestDrainLosesNoAdmittedMission submits a batch, drains, and requires
// every admitted mission to be terminal and successful: drain means
// "finish what you accepted", not "abandon it".
func TestDrainLosesNoAdmittedMission(t *testing.T) {
	svc := New(Config{Workers: 4})
	var admitted []*Mission
	for i := 0; i < 8; i++ {
		m, err := svc.SubmitScenario(smallScenario(int64(2300 + i)))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		admitted = append(admitted, m)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, m := range admitted {
		if st := m.State(); st != StateCompleted {
			t.Errorf("%s: state %s (%s), want completed", m.ID, st, m.Reason())
		}
		if len(m.Violations()) != 0 {
			t.Errorf("%s: unexpected violations %v", m.ID, m.Violations())
		}
		if m.Summary().Checks == 0 {
			t.Errorf("%s: invariant audit is empty", m.ID)
		}
		if m.FirstEventLatency() <= 0 {
			t.Errorf("%s: first-event latency not measured", m.ID)
		}
	}
	if _, err := svc.SubmitScenario(smallScenario(9999)); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit error = %v, want ErrDraining", err)
	}
}

// TestEventBudgetFailsMission pins the per-mission resource budget: a
// mission over its event budget is cancelled and terminally failed (a
// retry would hit the same budget).
func TestEventBudgetFailsMission(t *testing.T) {
	m := runOne(t, Config{Workers: 1, MaxEvents: 20}, smallScenario(2401))
	if m.State() != StateFailed {
		t.Fatalf("over-budget mission ended %s, want failed", m.State())
	}
	if got := m.Reason(); !strings.Contains(got, "event limit") {
		t.Errorf("reason %q does not name the event budget", got)
	}
}

// TestWallBudgetFailsMission wedges a mission and bounds it by wall
// clock instead of the stall deadline.
func TestWallBudgetFailsMission(t *testing.T) {
	m := runOne(t, Config{
		Workers:       1,
		MaxWall:       300 * time.Millisecond,
		WatchdogEvery: 20 * time.Millisecond,
		StallAfter:    -1, // only the wall budget may trip
		MaxRestarts:   -1,
		Chaos:         ChaosConfig{CrashProb: 1, AtFrac: 0.4, Stall: true},
	}, smallScenario(2501))
	if m.State() != StateFailed {
		t.Fatalf("wall-budget mission ended %s (%s), want failed", m.State(), m.Reason())
	}
	if got := m.Reason(); !strings.Contains(got, "wall-clock") {
		t.Errorf("reason %q does not name the wall budget", got)
	}
}

// TestCheckpointBytesBudget bounds the encoded checkpoint size so a
// state-bloated mission cannot fill the data directory.
func TestCheckpointBytesBudget(t *testing.T) {
	sc := recoveryScenario(2601)
	m := runOne(t, Config{Workers: 1, DataDir: t.TempDir(), MaxCheckpointBytes: 64}, sc)
	if m.State() != StateFailed {
		t.Fatalf("oversized-checkpoint mission ended %s, want failed", m.State())
	}
	if got := m.Reason(); !strings.Contains(got, "checkpoint size") {
		t.Errorf("reason %q does not name the checkpoint budget", got)
	}
}

// TestCloseLeaksNoGoroutines boots a service, runs missions (some
// crashing), closes it, and requires the goroutine count back at its
// baseline: workers, watchdog, and per-attempt machinery all unwind.
func TestCloseLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	svc := New(Config{
		Workers: 4,
		Chaos:   ChaosConfig{CrashProb: 0.5},
	})
	for i := 0; i < 6; i++ {
		if _, err := svc.SubmitScenario(smallScenario(int64(2700 + i))); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	// Close mid-flight: in-flight attempts are cancelled, queued missions
	// fail fast.
	time.Sleep(50 * time.Millisecond)
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for _, m := range svc.Missions() {
		if !m.State().Terminal() {
			t.Errorf("%s not terminal after Close: %s", m.ID, m.State())
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestDrainDeadlineCancelsInFlight pins the hard-drain path: when the
// drain context expires, in-flight missions are cancelled and marked
// failed rather than left running.
func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	svc := New(Config{
		Workers:    1,
		StallAfter: -1, // let the wedge live until the drain deadline
		Chaos:      ChaosConfig{CrashProb: 1, AtFrac: 0.3, Stall: true},
	})
	m, err := svc.SubmitScenario(smallScenario(2801))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	err = svc.Drain(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain error = %v, want deadline exceeded", err)
	}
	if st := m.State(); st != StateFailed {
		t.Errorf("hard-drained mission state %s, want failed", st)
	}
}

// TestTelemetryCounts sanity-checks the counter wiring end to end.
func TestTelemetryCounts(t *testing.T) {
	svc := New(Config{Workers: 2})
	for i := 0; i < 3; i++ {
		if _, err := svc.SubmitScenario(smallScenario(int64(2900 + i))); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	tel := svc.Telemetry()
	if tel.Admitted != 3 || tel.Completed != 3 {
		t.Errorf("telemetry admitted=%d completed=%d, want 3/3", tel.Admitted, tel.Completed)
	}
	if tel.Queued != 0 || tel.Running != 0 {
		t.Errorf("drained service still reports queued=%d running=%d", tel.Queued, tel.Running)
	}
}

// TestDataDirCreatedOnDemand pins the fresh-deployment path: pointing
// DataDir at a directory that does not exist yet must not fail every
// mission at store-open — the service creates it.
func TestDataDirCreatedOnDemand(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "missions", "ckpt")
	sc := smallScenario(3001)
	sc.Checkpoint = 5 * time.Second
	m := runOne(t, Config{Workers: 1, DataDir: dir}, sc)
	if st := m.State(); st != StateCompleted {
		t.Fatalf("mission in fresh data dir ended %s (%s), want completed", st, m.Reason())
	}
	if _, err := os.Stat(filepath.Join(dir, m.ID+".ckpt")); err != nil {
		t.Errorf("journal file missing from created data dir: %v", err)
	}
}
