package service

import (
	"testing"
	"time"

	"iobt/internal/sim"
)

// TestRetryWait pins the client backoff contract: the server's hint is
// the floor, jitter adds at most 50%, a missing hint falls back to the
// 2ms flood default, and the same seed stream reproduces the same waits.
func TestRetryWait(t *testing.T) {
	rng := sim.NewRNG(77).Derive("flood.client.0")
	for i := 0; i < 200; i++ {
		hint := 10 * time.Millisecond
		w := retryWait(hint, rng)
		if w < hint || w > hint+hint/2 {
			t.Fatalf("wait %v outside [%v, %v]", w, hint, hint+hint/2)
		}
	}
	if w := retryWait(0, sim.NewRNG(77).Derive("x")); w < 2*time.Millisecond || w > 3*time.Millisecond {
		t.Errorf("zero hint wait = %v, want within [2ms, 3ms]", w)
	}
	a, b := sim.NewRNG(9).Derive("flood.client.1"), sim.NewRNG(9).Derive("flood.client.1")
	for i := 0; i < 50; i++ {
		if wa, wb := retryWait(time.Second, a), retryWait(time.Second, b); wa != wb {
			t.Fatalf("same stream diverged at %d: %v vs %v", i, wa, wb)
		}
	}
}

// TestFloodReport runs a small client flood through a deliberately
// narrow queue with chaos crashes and checks the report's accounting:
// every mission terminal, latency percentiles ordered, crash/recovery
// counters consistent, and the merged invariant audit non-empty.
func TestFloodReport(t *testing.T) {
	rep, err := Flood(FloodConfig{
		Missions: 8,
		Clients:  3,
		BaseSeed: 6100,
		Horizon:  20 * time.Second,
		Service: Config{
			Workers:    2,
			QueueDepth: 2,
			Chaos:      ChaosConfig{CrashProb: 0.5},
		},
	})
	if err != nil {
		t.Fatalf("flood: %v", err)
	}
	terminal := rep.Completed + rep.Degraded + rep.Failed + rep.Quarantined
	if terminal != 8 || rep.Admitted != 8 {
		t.Fatalf("accounting: admitted=%d terminal=%d, want 8/8", rep.Admitted, terminal)
	}
	// Submitted counts every attempt, including 429-rejected retries
	// through the depth-2 queue.
	if rep.Submitted != rep.Admitted+rep.Retried {
		t.Errorf("submitted=%d != admitted=%d + retried=%d",
			rep.Submitted, rep.Admitted, rep.Retried)
	}
	if rep.Completed != 8 {
		t.Errorf("completed=%d degraded=%d failed=%d quarantined=%d, want all 8 completed",
			rep.Completed, rep.Degraded, rep.Failed, rep.Quarantined)
	}
	if rep.MissionsPerSec <= 0 || rep.ElapsedSec <= 0 {
		t.Errorf("throughput not measured: %+v", rep)
	}
	if rep.P50FirstEventMs <= 0 || rep.P99FirstEventMs < rep.P50FirstEventMs {
		t.Errorf("latency percentiles inconsistent: p50=%.2f p99=%.2f",
			rep.P50FirstEventMs, rep.P99FirstEventMs)
	}
	if rep.Crashes == 0 {
		t.Fatal("chaos at prob 0.5 over 8 seeds never crashed: flood exercised nothing")
	}
	// Recoveries counts checkpoint-anchored restarts only; a crash that
	// lands before the mission's first cut restarts from scratch.
	if rep.Recoveries == 0 || rep.Recoveries > rep.Crashes {
		t.Errorf("recovery accounting: crashes=%d recoveries=%d", rep.Crashes, rep.Recoveries)
	}
	if rep.MeanRecoveryMs <= 0 || rep.MaxRecoveryMs < rep.MeanRecoveryMs {
		t.Errorf("recovery timing: mean=%.2f max=%.2f", rep.MeanRecoveryMs, rep.MaxRecoveryMs)
	}
	if rep.Violations != 0 {
		t.Errorf("flood reported %d invariant violations", rep.Violations)
	}
	if rep.Summary.Checks == 0 {
		t.Error("merged invariant audit is empty")
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{{0.5, 3}, {0.99, 5}, {0.01, 1}}
	for _, tc := range cases {
		if got := percentile(vs, tc.p); got != tc.want {
			t.Errorf("percentile(%.2f) = %g, want %g", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile of empty = %g, want 0", got)
	}
}

// TestMissionStateStrings pins the state names served over HTTP and
// the terminal set.
func TestMissionStateStrings(t *testing.T) {
	cases := []struct {
		s        MissionState
		name     string
		terminal bool
	}{
		{StateQueued, "queued", false},
		{StateRunning, "running", false},
		{StateRestarting, "restarting", false},
		{StateCompleted, "completed", true},
		{StateDegraded, "degraded", true},
		{StateFailed, "failed", true},
		{StateQuarantined, "quarantined", true},
		{MissionState(99), "MissionState(99)", false},
	}
	for _, tc := range cases {
		if got := tc.s.String(); got != tc.name {
			t.Errorf("String(%d) = %q, want %q", int(tc.s), got, tc.name)
		}
		if got := tc.s.Terminal(); got != tc.terminal {
			t.Errorf("Terminal(%s) = %v, want %v", tc.name, got, tc.terminal)
		}
	}
}
