package service

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"iobt/internal/checkpoint"
	"iobt/internal/fault"
	"iobt/internal/verify"
)

// recoveryScenario is the crash-recovery workhorse: hierarchy command
// over the ARQ layer (so the checkpoint carries the in-flight window,
// the hardest section to recover), a fault plan with a jam wave, and a
// checkpoint cadence tight enough that the injected crash lands well
// past several cuts.
func recoveryScenario(seed int64) verify.Scenario {
	plan := &fault.Plan{Name: "recovery"}
	plan.Add(fault.Fault{Kind: fault.JamWave, At: 12 * time.Second,
		Duration: 10 * time.Second, Intensity: 0.6})
	return verify.Scenario{
		Seed:       seed,
		Assets:     100,
		Size:       600,
		Terrain:    "open",
		Command:    "hierarchy",
		Reliable:   true,
		Checkpoint: 5 * time.Second,
		Rate:       20,
		Horizon:    40 * time.Second,
		Track:      true,
		Plan:       plan,
	}
}

// runOne submits sc to a fresh service with the given config and waits
// for the mission to reach a terminal state via Drain.
func runOne(t *testing.T, cfg Config, sc verify.Scenario) *Mission {
	t.Helper()
	svc := New(cfg)
	m, err := svc.SubmitScenario(sc)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := m.State(); !st.Terminal() {
		t.Fatalf("mission not terminal after drain: %s", st)
	}
	return m
}

// TestCrashRecoveryByteIdentical is the acceptance demo, machine-checked:
// kill a worker mid-flight, let the supervisor restore the mission from
// its persisted checkpoint, and require the completed mission to be
// byte-identical — journal and metrics fingerprint — to an uncrashed
// same-seed run.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	sc := recoveryScenario(1201)

	crashed := runOne(t, Config{
		Workers: 1,
		DataDir: t.TempDir(),
		Chaos:   ChaosConfig{CrashProb: 1, AtFrac: 0.6},
	}, sc)
	if crashed.State() != StateCompleted {
		t.Fatalf("crashed mission ended %s (%s), want completed", crashed.State(), crashed.Reason())
	}
	if crashed.Restarts() == 0 {
		t.Fatal("chaos crash did not trigger a supervised restart")
	}
	if crashed.RecoveredFrom() == 0 {
		t.Fatal("recovery was not anchored at a persisted checkpoint")
	}
	if n := len(crashed.RecoveryTimes()); n == 0 {
		t.Error("no recovery time was measured")
	}

	clean := runOne(t, Config{Workers: 1}, sc)
	if clean.State() != StateCompleted {
		t.Fatalf("clean mission ended %s (%s), want completed", clean.State(), clean.Reason())
	}

	if div := checkpoint.Compare(crashed.Journal(), clean.Journal()); div != nil {
		t.Fatalf("recovered journal diverges from uncrashed run:\n%s", div)
	}
	if a, b := crashed.Fingerprint(), clean.Fingerprint(); a != b {
		t.Fatalf("metrics fingerprint %016x != uncrashed %016x", a, b)
	}
}

// TestStallRecovery wedges the worker instead of panicking: the
// watchdog must detect the missing progress heartbeat, cancel the
// attempt, and the supervisor must recover it to the same byte-identical
// completion.
func TestStallRecovery(t *testing.T) {
	sc := recoveryScenario(1301)
	stalled := runOne(t, Config{
		Workers:       1,
		DataDir:       t.TempDir(),
		StallAfter:    200 * time.Millisecond,
		WatchdogEvery: 20 * time.Millisecond,
		Chaos:         ChaosConfig{CrashProb: 1, AtFrac: 0.5, Stall: true},
	}, sc)
	if stalled.State() != StateCompleted {
		t.Fatalf("stalled mission ended %s (%s), want completed", stalled.State(), stalled.Reason())
	}
	if stalled.Restarts() == 0 {
		t.Fatal("watchdog stall did not trigger a restart")
	}

	clean := runOne(t, Config{Workers: 1}, sc)
	if div := checkpoint.Compare(stalled.Journal(), clean.Journal()); div != nil {
		t.Fatalf("stall-recovered journal diverges:\n%s", div)
	}
}

// TestRunnerVerifyReplay pins the service runner itself to the repo's
// replay contract: two bare runner passes of the same scenario must
// journal byte-identically under checkpoint.VerifyReplay.
func TestRunnerVerifyReplay(t *testing.T) {
	sc := recoveryScenario(1401)
	div := checkpoint.VerifyReplay(sc.Seed, planString(sc), func(j *checkpoint.Journal) {
		ctx, cancel := context.WithCancelCause(context.Background())
		defer cancel(nil)
		out, err := runAttempt(attemptParams{
			sc: sc, ctx: ctx, cancel: cancel, journal: j,
			invariantEvery: time.Second, progressEvery: time.Second,
		})
		if err != nil {
			t.Fatalf("runAttempt: %v", err)
		}
		if out.events == 0 {
			t.Fatal("runner executed no events")
		}
	})
	if div != nil {
		t.Fatalf("service runner is not replay-stable:\n%s", div)
	}
}

// TestRecoveryAcrossStoreReopen proves the anchor really is the disk
// record, not in-process memory: recover a mission whose checkpoint
// journal was written by a different service instance (a "restarted
// process"), seeding recovery purely from the recovered file.
func TestRecoveryAcrossStoreReopen(t *testing.T) {
	sc := recoveryScenario(1501)
	dir := t.TempDir()

	// First service: crash the mission on every attempt so it ends
	// quarantined, leaving durable checkpoints behind.
	svc := New(Config{
		Workers:     1,
		DataDir:     dir,
		MaxRestarts: 1,
		Chaos:       ChaosConfig{CrashProb: 1, AtFrac: 0.6, CrashAttempts: 99},
	})
	m1, err := svc.SubmitScenario(sc)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if m1.State() != StateQuarantined {
		t.Fatalf("always-crashing mission ended %s, want quarantined", m1.State())
	}
	recs, err := checkpoint.RecoverStore(filepath.Join(dir, m1.ID+".ckpt"))
	if err != nil || len(recs) == 0 {
		t.Fatalf("no durable checkpoints survived the crash loop: %d records, err %v", len(recs), err)
	}

	// Second service, same data dir: submit the same scenario chaos-free.
	// Its mission gets the same ID (fresh service, same ordering), so
	// OpenStore recovers the first instance's records and the very first
	// attempt starts as a recovery, anchored at the durable cut.
	svc2 := New(Config{Workers: 1, DataDir: dir})
	m2, err := svc2.SubmitScenario(sc)
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if m2.ID != m1.ID {
		t.Fatalf("mission IDs diverge across instances: %s vs %s", m2.ID, m1.ID)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel2()
	if err := svc2.Drain(ctx2); err != nil {
		t.Fatalf("drain 2: %v", err)
	}
	if m2.State() != StateCompleted {
		t.Fatalf("recovered mission ended %s (%s), want completed", m2.State(), m2.Reason())
	}
	if m2.RecoveredFrom() == 0 {
		t.Fatal("second instance did not anchor at the recovered checkpoint")
	}

	clean := runOne(t, Config{Workers: 1}, sc)
	if div := checkpoint.Compare(m2.Journal(), clean.Journal()); div != nil {
		t.Fatalf("cross-process recovery diverges from uncrashed run:\n%s", div)
	}
}

// TestQuarantineBoundsRestartStorm pins the quarantine bound: a mission
// that crashes on every attempt consumes exactly MaxRestarts restarts
// and then stops, without wedging its worker forever.
func TestQuarantineBoundsRestartStorm(t *testing.T) {
	sc := recoveryScenario(1601)
	m := runOne(t, Config{
		Workers:     1,
		MaxRestarts: 2,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
		Chaos:       ChaosConfig{CrashProb: 1, AtFrac: 0.5, CrashAttempts: 99},
	}, sc)
	if m.State() != StateQuarantined {
		t.Fatalf("crash-looping mission ended %s, want quarantined", m.State())
	}
	if got := m.Restarts(); got != 2 {
		t.Errorf("restarts = %d, want exactly MaxRestarts (2)", got)
	}
	if got := m.Attempts(); got != 3 {
		t.Errorf("attempts = %d, want 3 (initial + 2 restarts)", got)
	}
}

// TestCrashDoesNotDisturbNeighbor runs a crashing mission and a clean
// mission concurrently on a 2-worker pool: the neighbor must complete
// with a journal identical to running it alone.
func TestCrashDoesNotDisturbNeighbor(t *testing.T) {
	crashy := recoveryScenario(1701)
	quiet := recoveryScenario(1702)

	svc := New(Config{
		Workers: 2,
		DataDir: t.TempDir(),
		// Chaos draws per-seed; CrashProb 1 hits both, which is fine — the
		// point is isolation, and both must still complete.
		Chaos: ChaosConfig{CrashProb: 1, AtFrac: 0.5},
	})
	mc, err := svc.SubmitScenario(crashy)
	if err != nil {
		t.Fatalf("submit crashy: %v", err)
	}
	mq, err := svc.SubmitScenario(quiet)
	if err != nil {
		t.Fatalf("submit quiet: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if mc.State() != StateCompleted || mq.State() != StateCompleted {
		t.Fatalf("states: crashy %s (%s), quiet %s (%s)",
			mc.State(), mc.Reason(), mq.State(), mq.Reason())
	}

	alone := runOne(t, Config{Workers: 1}, quiet)
	if div := checkpoint.Compare(mq.Journal(), alone.Journal()); div != nil {
		t.Fatalf("neighbor mission perturbed by the crashing one:\n%s", div)
	}
}
