package service

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"iobt/internal/checkpoint"
	"iobt/internal/verify"
)

// MissionState is the lifecycle state of one submitted mission.
type MissionState int

// Mission lifecycle. Queued → Running → (Restarting → Running)* → one of
// the four terminal states.
const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued MissionState = iota + 1
	// StateRunning: a worker is executing an attempt.
	StateRunning
	// StateRestarting: the last attempt crashed or stalled; the
	// supervisor is backing off before restarting from the latest
	// checkpoint.
	StateRestarting
	// StateCompleted: ran to its horizon with every invariant intact.
	StateCompleted
	// StateDegraded: ran to its horizon but violated invariants; a
	// reproducer snapshot was written when a data directory is set.
	StateDegraded
	// StateFailed: terminally failed (budget exhausted, synthesis
	// infeasible, replay divergence, or service shutdown).
	StateFailed
	// StateQuarantined: crashed or stalled past the restart budget; the
	// supervisor gave up to protect its neighbors.
	StateQuarantined
)

// String names the state.
func (s MissionState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateRestarting:
		return "restarting"
	case StateCompleted:
		return "completed"
	case StateDegraded:
		return "degraded"
	case StateFailed:
		return "failed"
	case StateQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("MissionState(%d)", int(s))
	}
}

// Terminal reports whether the state is final.
func (s MissionState) Terminal() bool {
	switch s {
	case StateCompleted, StateDegraded, StateFailed, StateQuarantined:
		return true
	case StateQueued, StateRunning, StateRestarting:
		return false
	default:
		return false
	}
}

// Mission is one admitted scenario and its supervision record. All
// exported accessors are safe for concurrent use.
type Mission struct {
	// ID is the service-assigned mission identifier (stable, ordered).
	ID string
	// Scenario is the parsed scenario, with the service's default
	// checkpoint cadence applied when the submission had none.
	Scenario verify.Scenario
	// Source is the canonical .scn serialization of Scenario.
	Source string

	mu            sync.Mutex
	state         MissionState
	reason        string
	attempts      int
	restarts      int
	crashes       int
	stalls        int
	checkpoints   int
	recoveredFrom int
	submittedAt   time.Time
	firstEventAt  time.Time
	finishedAt    time.Time
	pendingCrash  time.Time
	recoveryMs    []float64
	fingerprint   uint64
	journal       *checkpoint.Journal
	summary       verify.Summary
	violations    []string
	cancel        context.CancelCauseFunc

	// Watchdog-visible progress, updated from inside the running engine.
	running      atomic.Bool
	events       atomic.Uint64
	virtualNS    atomic.Int64
	attemptStart atomic.Int64 // unix nanos
	lastProgress atomic.Int64 // unix nanos
}

// State returns the current lifecycle state.
func (m *Mission) State() MissionState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state
}

// Reason explains the current state (empty for clean states).
func (m *Mission) Reason() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reason
}

// Attempts returns how many attempts have started.
func (m *Mission) Attempts() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.attempts
}

// Restarts returns how many supervised restarts have been spent.
func (m *Mission) Restarts() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.restarts
}

// Fingerprint returns the final metrics fingerprint (zero until a
// terminal clean state).
func (m *Mission) Fingerprint() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fingerprint
}

// Journal returns the decision journal of the final successful attempt
// (nil until then). Two same-seed missions — one crashed and recovered,
// one undisturbed — must produce byte-identical journals.
func (m *Mission) Journal() *checkpoint.Journal {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.journal
}

// Summary returns the invariant audit of the final attempt.
func (m *Mission) Summary() verify.Summary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.summary
}

// Violations returns the rendered invariant violations.
func (m *Mission) Violations() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.violations...)
}

// RecoveredFrom returns the checkpoint sequence the last recovery was
// anchored at (0: never recovered from a checkpoint).
func (m *Mission) RecoveredFrom() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recoveredFrom
}

// RecoveryTimes returns the wall-clock milliseconds each restart took
// from failure detection to the recovered attempt's first event.
func (m *Mission) RecoveryTimes() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]float64(nil), m.recoveryMs...)
}

// FirstEventLatency returns submit-to-first-event wall latency, or 0
// before the first event.
func (m *Mission) FirstEventLatency() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.firstEventAt.IsZero() {
		return 0
	}
	return m.firstEventAt.Sub(m.submittedAt)
}

func (m *Mission) setCancel(c context.CancelCauseFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cancel = c
}

// cancelWith aborts the in-flight attempt with the given cause (used by
// the watchdog). It is a no-op between attempts.
func (m *Mission) cancelWith(cause error) {
	m.mu.Lock()
	c := m.cancel
	m.mu.Unlock()
	if c != nil {
		c(cause)
	}
}

func (m *Mission) beginAttempt() {
	now := time.Now()
	m.mu.Lock()
	m.attempts++
	m.state = StateRunning
	m.mu.Unlock()
	m.attemptStart.Store(now.UnixNano())
	m.lastProgress.Store(now.UnixNano())
	m.running.Store(true)
}

func (m *Mission) endAttempt() {
	m.running.Store(false)
}

// noteProgress is called from inside the engine at the progress cadence.
func (m *Mission) noteProgress(events uint64, vnow time.Duration) {
	m.events.Store(events)
	m.virtualNS.Store(int64(vnow))
	m.lastProgress.Store(time.Now().UnixNano())
}

// noteFirstEvent is called when an attempt's first engine event fires:
// it stamps the submit-to-first-event latency once, and closes the
// recovery-time measurement opened by the previous crash.
func (m *Mission) noteFirstEvent() {
	now := time.Now()
	m.lastProgress.Store(now.UnixNano())
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.firstEventAt.IsZero() {
		m.firstEventAt = now
	}
	if !m.pendingCrash.IsZero() {
		m.recoveryMs = append(m.recoveryMs, float64(now.Sub(m.pendingCrash))/float64(time.Millisecond))
		m.pendingCrash = time.Time{}
	}
}

// noteFailure records a restartable failure (crash or stall) and opens
// the recovery-time measurement.
func (m *Mission) noteFailure(crash bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if crash {
		m.crashes++
	} else {
		m.stalls++
	}
	if m.pendingCrash.IsZero() {
		m.pendingCrash = time.Now()
	}
}

// MissionView is the JSON projection of a mission for the HTTP API.
type MissionView struct {
	ID            string    `json:"id"`
	State         string    `json:"state"`
	Reason        string    `json:"reason,omitempty"`
	Seed          int64     `json:"seed"`
	Attempts      int       `json:"attempts"`
	Restarts      int       `json:"restarts"`
	Crashes       int       `json:"crashes"`
	Stalls        int       `json:"stalls"`
	Events        uint64    `json:"events"`
	VirtualTime   string    `json:"virtual_time"`
	Checkpoints   int       `json:"checkpoints"`
	RecoveredFrom int       `json:"recovered_from_seq,omitempty"`
	Fingerprint   string    `json:"fingerprint,omitempty"`
	JournalDigest string    `json:"journal_digest,omitempty"`
	Violations    []string  `json:"violations,omitempty"`
	FirstEventMs  float64   `json:"submit_to_first_event_ms,omitempty"`
	RecoveryMs    []float64 `json:"recovery_ms,omitempty"`
}

// View snapshots the mission for serving.
func (m *Mission) View() MissionView {
	m.mu.Lock()
	defer m.mu.Unlock()
	v := MissionView{
		ID:            m.ID,
		State:         m.state.String(),
		Reason:        m.reason,
		Seed:          m.Scenario.Seed,
		Attempts:      m.attempts,
		Restarts:      m.restarts,
		Crashes:       m.crashes,
		Stalls:        m.stalls,
		Events:        m.events.Load(),
		VirtualTime:   time.Duration(m.virtualNS.Load()).String(),
		Checkpoints:   m.checkpoints,
		RecoveredFrom: m.recoveredFrom,
		Violations:    append([]string(nil), m.violations...),
		RecoveryMs:    append([]float64(nil), m.recoveryMs...),
	}
	if m.fingerprint != 0 {
		v.Fingerprint = fmt.Sprintf("%016x", m.fingerprint)
	}
	if m.journal != nil {
		v.JournalDigest = fmt.Sprintf("%016x", m.journal.Digest())
	}
	if !m.firstEventAt.IsZero() {
		v.FirstEventMs = float64(m.firstEventAt.Sub(m.submittedAt)) / float64(time.Millisecond)
	}
	return v
}
