package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"iobt/internal/asset"
	"iobt/internal/checkpoint"
	"iobt/internal/core"
	"iobt/internal/fault"
	"iobt/internal/geo"
	"iobt/internal/track"
	"iobt/internal/verify"
)

// This file is the deterministic heart of the service: one mission
// attempt, from scenario to horizon. Every attempt of the same mission
// schedules the same service events in the same order (progress ticker,
// admission stamp, fault plan), so a recovery attempt replays the exact
// event sequence of the crashed one up to the checkpoint cut — which is
// what lets the service prove, by byte comparison, that it restored the
// mission rather than a lookalike.
//
// Recovery is replay-anchored: a checkpoint record stores the engine's
// executed-event count at the cut. The recovering attempt rebuilds the
// world from the scenario recipe, runs until exactly that many events
// have executed (landing on the cut instant even when several events
// share its timestamp), byte-compares its live captured state against
// the persisted sections, then literally restores the persisted
// checkpoint — skipping the ARQ window, whose Restore deliberately
// requeues in-flight traffic (failover semantics, not replay semantics;
// the replayed live window is already byte-identical) — and continues
// to the horizon.

// Attempt failure taxonomy. Restartable: errPanicked, errStalled.
var (
	errPanicked         = errors.New("worker panicked")
	errStalled          = errors.New("watchdog: no event progress within stall budget")
	errWallBudget       = errors.New("budget: wall-clock limit exceeded")
	errEventBudget      = errors.New("budget: event limit exceeded")
	errCheckpointBudget = errors.New("budget: checkpoint size limit exceeded")
	errSynthesis        = errors.New("mission synthesis failed")
	errDivergence       = errors.New("recovery: replay diverged from persisted checkpoint")
	errStoreWrite       = errors.New("checkpoint store write failed")
	errServiceStopped   = errors.New("service stopped")
)

// restartable reports whether a failed attempt may be retried from the
// latest checkpoint. Budget and divergence failures are deterministic —
// a retry would fail identically — so only crashes and stalls restart.
func restartable(err error) bool {
	return errors.Is(err, errPanicked) || errors.Is(err, errStalled)
}

// chaosPlan is an injected worker failure for tests, the soak job, and
// the flood harness: a panic (or stall) fired from inside the engine at
// a virtual instant.
type chaosPlan struct {
	at    time.Duration
	stall bool
	ctx   context.Context // stall loop exits when the attempt is cancelled
}

// attemptParams is one attempt's full recipe.
type attemptParams struct {
	sc     verify.Scenario
	ctx    context.Context
	cancel context.CancelCauseFunc
	// journal records mission decisions; fresh per attempt.
	journal *checkpoint.Journal
	// invariantEvery / progressEvery are virtual cadences.
	invariantEvery time.Duration
	progressEvery  time.Duration
	// Budgets (zero: unlimited). Wall-clock budgets live in the watchdog.
	maxEvents          uint64
	maxCheckpointBytes int
	// chaos, when non-nil, injects a worker failure.
	chaos *chaosPlan
	// anchor, when non-nil, is the checkpoint record to recover from.
	anchor *checkpoint.Record
	// persistedDigests maps already-durable checkpoint seqs to their
	// digests; replayed cuts are cross-checked instead of re-persisted.
	persistedDigests map[int]uint64
	// onCheckpoint persists a fresh cut; a returned error aborts the
	// attempt terminally.
	onCheckpoint func(rec checkpoint.Record) error
	// onProgress / onFirstEvent feed the watchdog and latency metrics.
	onProgress   func(events uint64, vnow time.Duration)
	onFirstEvent func()
}

// attemptOutcome is a finished attempt's result.
type attemptOutcome struct {
	fingerprint   uint64
	summary       verify.Summary
	violations    []verify.Violation
	events        uint64
	recoveredFrom int
	journal       *checkpoint.Journal
}

// runAttempt executes one mission attempt to the scenario horizon.
// Panics are NOT recovered here — the supervisor's wrapper converts
// them to errPanicked — so the bare runner stays usable as a
// checkpoint.VerifyReplay hook.
func runAttempt(p attemptParams) (*attemptOutcome, error) {
	sc := p.sc
	var terr *geo.Terrain
	switch sc.Terrain {
	case "urban":
		terr = geo.NewUrbanTerrain(sc.Size, sc.Size, 100)
	case "sparse":
		terr = geo.NewSparseTerrain(sc.Size, sc.Size)
	default:
		terr = geo.NewOpenTerrain(sc.Size, sc.Size)
	}
	w := core.NewWorld(core.WorldConfig{Seed: sc.Seed, Terrain: terr, Assets: sc.Assets})
	defer w.Stop()

	pad := sc.Size / 5
	m := core.DefaultMission(geo.NewRect(
		geo.Point{X: pad, Y: pad}, geo.Point{X: sc.Size - pad, Y: sc.Size - pad}))
	m.Goal.CoverageFrac = 0.4
	m.IncidentsPerMin = sc.Rate
	m.Command = core.CommandIntent
	if sc.Command == "hierarchy" {
		m.Command = core.CommandHierarchy
	}
	m.ReliableOrders = sc.Reliable
	m.Degradation = sc.Degrade
	m.CheckpointEvery = sc.Checkpoint
	m.TrustAudit = true

	r := core.NewRuntime(w, m)
	r.SetJournal(p.journal)

	if sc.Track {
		tracker := track.NewTracker(track.Config{})
		r.AttachTracker(tracker)
		// The same deterministic three-target picture the verifier fuses,
		// so track state is part of what checkpoints must carry.
		w.Eng.Every(time.Second, "service.targets", func() {
			ts := w.Eng.Now().Seconds()
			tracker.Observe(w.Eng.Now(), []track.Detection{
				{Pos: geo.Point{X: sc.Size/6 + 3*ts, Y: sc.Size / 4}, Var: 9, Sensor: 1},
				{Pos: geo.Point{X: 3*sc.Size/4 - 2*ts, Y: sc.Size / 2}, Var: 9, Sensor: 2},
				{Pos: geo.Point{X: sc.Size / 2, Y: sc.Size/6 + 2.5*ts}, Var: 9, Sensor: 3},
			})
		})
	}

	if err := r.Synthesize(); err != nil {
		return nil, fmt.Errorf("%w: %v", errSynthesis, err)
	}
	if err := r.Start(); err != nil {
		return nil, fmt.Errorf("%w: %v", errSynthesis, err)
	}
	defer r.Stop()

	coord := r.Checkpoints()
	if coord != nil {
		prev := coord.OnCheckpoint
		coord.OnCheckpoint = func(ck *checkpoint.Checkpoint) {
			if prev != nil {
				prev(ck)
			}
			if p.maxCheckpointBytes > 0 && ck.Bytes() > p.maxCheckpointBytes {
				p.cancel(fmt.Errorf("%w: cut seq %d is %d bytes (limit %d)",
					errCheckpointBudget, ck.Seq, ck.Bytes(), p.maxCheckpointBytes))
				return
			}
			if want, ok := p.persistedDigests[ck.Seq]; ok {
				// Replaying already-durable ground: the re-taken cut must
				// digest identically, or the replay has silently diverged.
				if got := ck.Digest(); got != want {
					p.cancel(fmt.Errorf("%w: replayed cut seq %d digest %016x != persisted %016x",
						errDivergence, ck.Seq, got, want))
				}
				return
			}
			if p.onCheckpoint != nil {
				rec := checkpoint.Record{Seq: ck.Seq, At: ck.At, Processed: w.Eng.Processed(), Checkpoint: ck}
				if err := p.onCheckpoint(rec); err != nil {
					p.cancel(fmt.Errorf("%w: %v", errStoreWrite, err))
				}
			}
		}
	}

	// Progress heartbeat and event budget, on the virtual clock: while
	// the engine makes progress the watchdog sees it; when an event
	// wedges, the heartbeat stops with it.
	w.Eng.Every(p.progressEvery, "service.progress", func() {
		n := w.Eng.Processed()
		if p.onProgress != nil {
			p.onProgress(n, w.Eng.Now())
		}
		if p.maxEvents > 0 && n > p.maxEvents {
			p.cancel(fmt.Errorf("%w: %d events executed (limit %d)", errEventBudget, n, p.maxEvents))
		}
	})
	// Admission stamp: fires as the attempt's first executed event.
	w.Eng.Schedule(0, "service.admit", func() {
		if p.onFirstEvent != nil {
			p.onFirstEvent()
		}
	})

	reg := verify.NewRegistry()
	reg.Add(verify.MissionInvariants(w, r)...)

	if sc.Plan != nil && len(sc.Plan.Faults) > 0 {
		fault.Apply(fault.Target{
			Eng: w.Eng, Pop: w.Pop, Net: w.Net, Jam: w.Jam, Smoke: w.Smoke,
			Composite:   func() []asset.ID { return r.Composite().Members },
			CommandPost: func() asset.ID { return r.Sink() },
			CrashPost:   r.CrashPost,
			Failover:    r.Failover,
		}, sc.Plan)
	}
	if c := p.chaos; c != nil {
		w.Eng.ScheduleAt(c.at, "service.chaos", func() {
			if c.stall {
				for c.ctx.Err() == nil {
					time.Sleep(time.Millisecond)
				}
				return
			}
			panic(fmt.Sprintf("chaos: injected worker crash at %s", w.Eng.Now()))
		})
	}

	reg.Arm(w.Eng, p.invariantEvery)
	defer reg.Disarm()

	out := &attemptOutcome{journal: p.journal}
	if p.anchor != nil {
		if coord == nil {
			return nil, fmt.Errorf("%w: checkpoint record exists but the mission has no coordinator", errDivergence)
		}
		target := p.anchor.Processed
		if !w.Eng.RunUntil(func() bool { return w.Eng.Processed() >= target }, target+1) {
			return nil, fmt.Errorf("%w: event queue drained after %d events (anchor at %d)",
				errDivergence, w.Eng.Processed(), target)
		}
		if p.ctx.Err() != nil {
			return nil, context.Cause(p.ctx)
		}
		live := coord.Capture()
		if got, want := live.Digest(), p.anchor.Checkpoint.Digest(); got != want {
			return nil, fmt.Errorf("%w: replayed state digest %016x != persisted %016x at seq %d",
				errDivergence, got, want, p.anchor.Seq)
		}
		if err := coord.RestoreCheckpoint(p.anchor.Checkpoint,
			func(name string) bool { return name != "arq" }); err != nil {
			return nil, fmt.Errorf("%w: %v", errDivergence, err)
		}
		out.recoveredFrom = p.anchor.Seq
	}

	if remaining := sc.Horizon - w.Eng.Now(); remaining > 0 {
		if err := w.RunContext(p.ctx, remaining); err != nil {
			return nil, err
		}
	}

	// Final sweep at the horizon so end-state violations are caught even
	// when the last periodic tick predates the final events.
	reg.CheckNow(w.Eng.Now())

	out.fingerprint = r.Metrics.Fingerprint()
	out.summary = reg.Summarize()
	out.violations = reg.Violations()
	out.events = w.Eng.Processed()
	return out, nil
}

// planString canonicalizes the fault plan for journal headers.
func planString(sc verify.Scenario) string {
	if sc.Plan == nil {
		return ""
	}
	return sc.Plan.String()
}
