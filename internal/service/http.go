package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"
)

// The HTTP surface of iobtd: submit a .scn scenario, watch missions,
// read telemetry. Admission pressure is visible in the status codes —
// 429 when the bounded run queue is full, 503 while draining — so a
// flooding client gets backpressure instead of an unbounded backlog.

// maxScenarioBytes bounds a submitted scenario file; real reproducers
// are a few hundred bytes.
const maxScenarioBytes = 1 << 20

// Handler returns the iobtd HTTP API:
//
//	POST /missions       submit a .scn scenario (202, 400, 429, 503)
//	GET  /missions       list missions in submission order
//	GET  /missions/{id}  one mission's status
//	GET  /telemetry      service counters
//	GET  /healthz        liveness and drain state
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /missions", s.handleSubmit)
	mux.HandleFunc("GET /missions", s.handleList)
	mux.HandleFunc("GET /missions/{id}", s.handleMission)
	mux.HandleFunc("GET /telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// retryAfterSeconds renders the hint carried by a QueueFullError as the
// Retry-After value: whole seconds, rounded up, never below 1 (RFC 9110
// allows only integral seconds or an HTTP date).
func retryAfterSeconds(err error) string {
	var qf *QueueFullError
	if errors.As(err, &qf) && qf.RetryAfter > 0 {
		secs := int64((qf.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		return strconv.FormatInt(secs, 10)
	}
	return "1"
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxScenarioBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "read body: " + err.Error()})
		return
	}
	m, err := s.Submit(string(body))
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", retryAfterSeconds(err))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, m.View())
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	missions := s.Missions()
	views := make([]MissionView, 0, len(missions))
	for _, m := range missions {
		views = append(views, m.View())
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Service) handleMission(w http.ResponseWriter, r *http.Request) {
	m := s.Mission(r.PathValue("id"))
	if m == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such mission"})
		return
	}
	writeJSON(w, http.StatusOK, m.View())
}

func (s *Service) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Telemetry())
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	// A draining service is alive but no longer admitting; health flips
	// to 503 so load balancers rotate it out while in-flight missions
	// finish, instead of routing submissions into guaranteed rejections.
	status, code := "ok", http.StatusOK
	if s.Draining() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	t := s.Telemetry()
	writeJSON(w, code, map[string]any{
		"status":  status,
		"queued":  t.Queued,
		"running": t.Running,
	})
}
