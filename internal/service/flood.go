package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"iobt/internal/sim"
	"iobt/internal/verify"
)

// The synthetic client flood: concurrent clients slam the admission
// queue with small missions while the chaos injector crashes workers
// mid-flight. It measures what the service promises under pressure —
// sustained missions/sec, tail submit-to-first-event latency, and how
// long a crashed mission takes to be running again — and is the engine
// behind experiment E16 and the CI soak job.

// FloodConfig shapes one flood run.
type FloodConfig struct {
	// Missions is the total missions to push through (default 24).
	Missions int
	// Clients is the number of concurrent submitters (default 4).
	Clients int
	// Service configures the service under test.
	Service Config
	// BaseSeed seeds mission i with BaseSeed+i.
	BaseSeed int64
	// Horizon is each mission's virtual duration (default 30s).
	Horizon time.Duration
	// Rate is each mission's incident load (default 10/min).
	Rate float64
	// Assets sizes each mission's population (default 90).
	Assets int
	// DrainTimeout bounds the post-flood drain (default 5m).
	DrainTimeout time.Duration
}

// FloodReport is the outcome of one flood run.
type FloodReport struct {
	Missions    int     `json:"missions"`
	Workers     int     `json:"workers"`
	Submitted   int64   `json:"submitted"`
	Admitted    int64   `json:"admitted"`
	Retried     int64   `json:"retried_submissions"`
	Completed   int64   `json:"completed"`
	Degraded    int64   `json:"degraded"`
	Failed      int64   `json:"failed"`
	Quarantined int64   `json:"quarantined"`
	Crashes     int64   `json:"crashes"`
	Restarts    int64   `json:"restarts"`
	Recoveries  int64   `json:"recoveries"`
	ElapsedSec  float64 `json:"elapsed_sec"`
	// MissionsPerSec is terminal missions over wall elapsed time.
	MissionsPerSec float64 `json:"missions_per_sec"`
	// P50/P99FirstEventMs are submit-to-first-event latency percentiles.
	P50FirstEventMs float64 `json:"p50_first_event_ms"`
	P99FirstEventMs float64 `json:"p99_first_event_ms"`
	// MeanRecoveryMs / MaxRecoveryMs cover crash-to-first-recovered-event
	// gaps (0 when nothing crashed).
	MeanRecoveryMs float64 `json:"mean_recovery_ms"`
	MaxRecoveryMs  float64 `json:"max_recovery_ms"`
	// Violations counts missions that ended degraded or worse.
	Violations int `json:"violations"`
	// Summary merges the invariant audits of every mission.
	Summary verify.Summary `json:"summary"`
}

func (c FloodConfig) withDefaults() FloodConfig {
	if c.Missions <= 0 {
		c.Missions = 24
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Horizon <= 0 {
		c.Horizon = 30 * time.Second
	}
	if c.Rate <= 0 {
		c.Rate = 10
	}
	if c.Assets <= 0 {
		c.Assets = 90
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Minute
	}
	if c.Service.RetryAfterHint == 0 {
		// The flood's whole point is to cycle backpressure quickly; the
		// production 1s default would serialize the run behind sleeps.
		c.Service.RetryAfterHint = 2 * time.Millisecond
	}
	return c
}

// retryWait converts the service's Retry-After hint into one client's
// actual backoff: the hint plus up to 50% deterministic jitter, so
// rejected clients spread out instead of re-colliding in lockstep at
// exactly the advertised instant.
func retryWait(hint time.Duration, rng *sim.RNG) time.Duration {
	if hint <= 0 {
		hint = 2 * time.Millisecond
	}
	if q := int(hint / 2); q > 0 {
		hint += time.Duration(rng.Intn(q + 1))
	}
	return hint
}

// floodScenario builds mission i's scenario: small open-terrain worlds,
// alternating command models, reliable orders on every fourth mission so
// the ARQ checkpoint section is exercised too.
func floodScenario(cfg FloodConfig, i int) verify.Scenario {
	sc := verify.Scenario{
		Seed:    cfg.BaseSeed + int64(i),
		Assets:  cfg.Assets,
		Size:    600,
		Terrain: "open",
		Command: "intent",
		Rate:    cfg.Rate,
		Horizon: cfg.Horizon,
	}
	if i%2 == 1 {
		sc.Command = "hierarchy"
		sc.Reliable = i%4 == 1
	}
	return sc
}

// Flood runs the synthetic client flood and returns its report.
func Flood(cfg FloodConfig) (*FloodReport, error) {
	cfg = cfg.withDefaults()
	svc := New(cfg.Service)
	defer svc.Close()

	start := time.Now()
	work := make(chan verify.Scenario)
	go func() {
		defer close(work)
		for i := 0; i < cfg.Missions; i++ {
			work <- floodScenario(cfg, i)
		}
	}()

	var mu sync.Mutex
	var retried int64
	var submitErr error
	var wg sync.WaitGroup
	wg.Add(cfg.Clients)
	for c := 0; c < cfg.Clients; c++ {
		go func(client int) {
			defer wg.Done()
			// Each client jitters its retries from its own seed-derived
			// stream, so the backoff pattern is reproducible run to run.
			rng := sim.NewRNG(cfg.BaseSeed).Derive(fmt.Sprintf("flood.client.%d", client))
			for sc := range work {
				// A real client retries on 429 backpressure, honoring the
				// server's Retry-After hint; count the retries so the report
				// shows the queue actually pushed back.
				for {
					_, err := svc.SubmitScenario(sc)
					if err == nil {
						break
					}
					var qf *QueueFullError
					if !errors.As(err, &qf) {
						mu.Lock()
						if submitErr == nil {
							submitErr = err
						}
						mu.Unlock()
						return
					}
					mu.Lock()
					retried++
					mu.Unlock()
					time.Sleep(retryWait(qf.RetryAfter, rng))
				}
			}
		}(c)
	}
	wg.Wait()
	if submitErr != nil {
		return nil, fmt.Errorf("flood: submit: %w", submitErr)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		return nil, fmt.Errorf("flood: drain: %w", err)
	}

	elapsed := time.Since(start)
	tel := svc.Telemetry()
	rep := &FloodReport{
		Missions:    cfg.Missions,
		Workers:     svc.cfg.Workers,
		Submitted:   tel.Submitted,
		Admitted:    tel.Admitted,
		Retried:     retried,
		Completed:   tel.Completed,
		Degraded:    tel.Degraded,
		Failed:      tel.Failed,
		Quarantined: tel.Quarantined,
		Crashes:     tel.Crashes,
		Restarts:    tel.Restarts,
		Recoveries:  tel.Recoveries,
		ElapsedSec:  elapsed.Seconds(),
	}
	terminal := tel.Completed + tel.Degraded + tel.Failed + tel.Quarantined
	if sec := elapsed.Seconds(); sec > 0 {
		rep.MissionsPerSec = float64(terminal) / sec
	}

	var firstEvent []float64
	var recoveries []float64
	for _, m := range svc.Missions() {
		if d := m.FirstEventLatency(); d > 0 {
			firstEvent = append(firstEvent, float64(d)/float64(time.Millisecond))
		}
		recoveries = append(recoveries, m.RecoveryTimes()...)
		if m.State() == StateDegraded {
			rep.Violations++
		}
		rep.Summary.Merge(m.Summary())
	}
	rep.P50FirstEventMs = percentile(firstEvent, 0.50)
	rep.P99FirstEventMs = percentile(firstEvent, 0.99)
	if len(recoveries) > 0 {
		sum, maxv := 0.0, 0.0
		for _, v := range recoveries {
			sum += v
			maxv = math.Max(maxv, v)
		}
		rep.MeanRecoveryMs = sum / float64(len(recoveries))
		rep.MaxRecoveryMs = maxv
	}
	return rep, nil
}

// percentile returns the p-quantile (nearest-rank) of vs, 0 when empty.
func percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
