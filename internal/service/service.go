// Package service is the iobtd mission service: a supervised runner for
// concurrent simulated missions. Each submitted scenario (the verifier's
// .scn reproducer format) runs in a worker from a bounded pool behind
// admission control; a per-mission supervisor recovers panics without
// disturbing neighbors, a watchdog detects stalled missions on the wall
// clock, and crashed or stalled missions restart from their latest
// persisted checkpoint — with exponential backoff and a quarantine bound
// so a crash loop cannot starve the pool. Recovery is verified, not
// assumed: the replayed state is byte-compared against the persisted cut
// before the mission continues (see runner.go).
//
// The paper's IoBT must "survive in the presence of failures, attacks
// and compromises"; this package applies that demand to the mission
// infrastructure itself, the layer the simulations run on.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"iobt/internal/checkpoint"
	"iobt/internal/sim"
	"iobt/internal/verify"
)

// Admission errors. The HTTP layer maps these to 429 and 503.
var (
	// ErrQueueFull rejects a submission when the run queue is at depth.
	ErrQueueFull = errors.New("service: run queue full")
	// ErrDraining rejects a submission during graceful shutdown.
	ErrDraining = errors.New("service: draining, not accepting missions")
)

// QueueFullError is the concrete queue-full rejection: it unwraps to
// ErrQueueFull (so errors.Is keeps working) and carries the retry hint
// that the HTTP layer advertises as the Retry-After header and that
// well-behaved clients honor before resubmitting.
type QueueFullError struct {
	// RetryAfter is how long the client should wait before retrying.
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", ErrQueueFull, e.RetryAfter)
}

func (e *QueueFullError) Unwrap() error { return ErrQueueFull }

// Config tunes the service. Zero values take the stated defaults.
type Config struct {
	// Workers is the worker-pool size (default 4).
	Workers int
	// QueueDepth bounds the admission queue (default 64).
	QueueDepth int
	// RetryAfterHint is the backpressure interval advertised with
	// queue-full rejections: QueueFullError carries it and the HTTP layer
	// renders it as Retry-After (default 1s).
	RetryAfterHint time.Duration
	// MaxRestarts bounds supervised restarts per mission before
	// quarantine (default 3). Negative: no restarts.
	MaxRestarts int
	// BackoffBase and BackoffMax shape the exponential restart backoff
	// (defaults 25ms and 1s); jitter is drawn deterministically from the
	// mission seed.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// WatchdogEvery is the watchdog scan cadence (default 50ms).
	WatchdogEvery time.Duration
	// StallAfter is the wall-clock progress deadline: an attempt whose
	// engine makes no progress for this long is stalled and restarted
	// (default 2s; negative disables).
	StallAfter time.Duration
	// MaxWall is the per-attempt wall-clock budget (0: unlimited).
	MaxWall time.Duration
	// MaxEvents is the per-attempt executed-event budget (0: unlimited).
	MaxEvents uint64
	// MaxCheckpointBytes bounds one checkpoint cut's encoded size
	// (0: unlimited).
	MaxCheckpointBytes int
	// CheckpointEvery is the default virtual checkpoint cadence applied
	// to scenarios that set none (default 10s; negative leaves scenarios
	// untouched).
	CheckpointEvery time.Duration
	// InvariantEvery is the virtual invariant-check cadence (default 1s).
	InvariantEvery time.Duration
	// ProgressEvery is the virtual progress-heartbeat cadence (default 1s).
	ProgressEvery time.Duration
	// DataDir, when set, holds per-mission checkpoint journal files and
	// reproducer snapshots. Empty: checkpoints are kept in memory only
	// (recovery still works within the process).
	DataDir string
	// Chaos injects worker failures for tests and soak runs.
	Chaos ChaosConfig
}

// ChaosConfig is the built-in failure injector: it models a worker
// crashing (or wedging) mid-mission, which is exactly what the
// supervisor exists to absorb.
type ChaosConfig struct {
	// CrashProb is the per-mission probability of injected failure,
	// drawn deterministically from the mission seed.
	CrashProb float64
	// CrashAttempts is how many leading attempts fail (default 1, so a
	// single restart recovers; set above MaxRestarts to force
	// quarantine).
	CrashAttempts int
	// Stall wedges the worker instead of panicking, exercising the
	// watchdog path.
	Stall bool
	// AtFrac places the failure at this fraction of the horizon
	// (0: drawn uniformly from [0.3, 0.7)).
	AtFrac float64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = time.Second
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 3
	}
	if c.MaxRestarts < 0 {
		c.MaxRestarts = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.WatchdogEvery <= 0 {
		c.WatchdogEvery = 50 * time.Millisecond
	}
	if c.StallAfter == 0 {
		c.StallAfter = 2 * time.Second
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10 * time.Second
	}
	if c.InvariantEvery <= 0 {
		c.InvariantEvery = time.Second
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = time.Second
	}
	if c.Chaos.CrashAttempts <= 0 {
		c.Chaos.CrashAttempts = 1
	}
	return c
}

// telemetry is the service-wide counter set.
type telemetry struct {
	submitted        atomic.Int64
	admitted         atomic.Int64
	rejectedFull     atomic.Int64
	rejectedDraining atomic.Int64
	completed        atomic.Int64
	degraded         atomic.Int64
	failed           atomic.Int64
	quarantined      atomic.Int64
	crashes          atomic.Int64
	stalls           atomic.Int64
	restarts         atomic.Int64
	recoveries       atomic.Int64
	watchdogTrips    atomic.Int64
	checkpoints      atomic.Int64
	checkpointBytes  atomic.Int64
}

// Telemetry is the JSON projection of the service counters.
type Telemetry struct {
	Submitted        int64 `json:"submitted"`
	Admitted         int64 `json:"admitted"`
	RejectedFull     int64 `json:"rejected_queue_full"`
	RejectedDraining int64 `json:"rejected_draining"`
	Queued           int   `json:"queued"`
	Running          int   `json:"running"`
	Completed        int64 `json:"completed"`
	Degraded         int64 `json:"degraded"`
	Failed           int64 `json:"failed"`
	Quarantined      int64 `json:"quarantined"`
	Crashes          int64 `json:"crashes"`
	Stalls           int64 `json:"stalls"`
	Restarts         int64 `json:"restarts"`
	Recoveries       int64 `json:"recoveries"`
	WatchdogTrips    int64 `json:"watchdog_trips"`
	Checkpoints      int64 `json:"checkpoints_persisted"`
	CheckpointBytes  int64 `json:"checkpoint_bytes"`
}

// Service is a running mission service. Create with New, stop with
// Drain (graceful) or Close (immediate).
type Service struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelCauseFunc
	queue  chan *Mission
	wg     sync.WaitGroup
	wdDone chan struct{}

	mu       sync.Mutex
	draining bool
	stopped  bool
	nextID   int
	byID     map[string]*Mission
	order    []*Mission

	tel telemetry
}

// New starts a service: the worker pool and the watchdog begin
// immediately.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Service{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		queue:  make(chan *Mission, cfg.QueueDepth),
		wdDone: make(chan struct{}),
		byID:   make(map[string]*Mission),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	go s.watchdog()
	return s
}

// Submit parses a .scn scenario and admits it. Parse errors, ErrQueueFull,
// and ErrDraining are the caller's to map (400/429/503).
func (s *Service) Submit(src string) (*Mission, error) {
	sc, err := verify.ParseScenario(src)
	if err != nil {
		return nil, err
	}
	return s.SubmitScenario(sc)
}

// SubmitScenario admits a parsed scenario into the bounded run queue.
func (s *Service) SubmitScenario(sc verify.Scenario) (*Mission, error) {
	s.tel.submitted.Add(1)
	if sc.Horizon <= 0 {
		return nil, fmt.Errorf("service: scenario horizon must be positive")
	}
	if sc.Assets <= 0 || sc.Size <= 0 {
		return nil, fmt.Errorf("service: scenario needs assets and a map size")
	}
	if sc.Checkpoint == 0 && s.cfg.CheckpointEvery > 0 {
		sc.Checkpoint = s.cfg.CheckpointEvery
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.tel.rejectedDraining.Add(1)
		return nil, ErrDraining
	}
	s.nextID++
	m := &Mission{
		ID:          fmt.Sprintf("m-%06d", s.nextID),
		Scenario:    sc,
		Source:      sc.String(),
		state:       StateQueued,
		submittedAt: time.Now(),
	}
	select {
	case s.queue <- m:
	default:
		s.tel.rejectedFull.Add(1)
		return nil, &QueueFullError{RetryAfter: s.cfg.RetryAfterHint}
	}
	s.byID[m.ID] = m
	s.order = append(s.order, m)
	s.tel.admitted.Add(1)
	return m, nil
}

// Mission returns the mission with the given ID, or nil.
func (s *Service) Mission(id string) *Mission {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// Missions returns every admitted mission in submission order.
func (s *Service) Missions() []*Mission {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Mission(nil), s.order...)
}

// Telemetry snapshots the service counters.
func (s *Service) Telemetry() Telemetry {
	queued, running := 0, 0
	for _, m := range s.Missions() {
		switch m.State() {
		case StateQueued:
			queued++
		case StateRunning, StateRestarting:
			running++
		case StateCompleted, StateDegraded, StateFailed, StateQuarantined:
		default:
		}
	}
	return Telemetry{
		Submitted:        s.tel.submitted.Load(),
		Admitted:         s.tel.admitted.Load(),
		RejectedFull:     s.tel.rejectedFull.Load(),
		RejectedDraining: s.tel.rejectedDraining.Load(),
		Queued:           queued,
		Running:          running,
		Completed:        s.tel.completed.Load(),
		Degraded:         s.tel.degraded.Load(),
		Failed:           s.tel.failed.Load(),
		Quarantined:      s.tel.quarantined.Load(),
		Crashes:          s.tel.crashes.Load(),
		Stalls:           s.tel.stalls.Load(),
		Restarts:         s.tel.restarts.Load(),
		Recoveries:       s.tel.recoveries.Load(),
		WatchdogTrips:    s.tel.watchdogTrips.Load(),
		Checkpoints:      s.tel.checkpoints.Load(),
		CheckpointBytes:  s.tel.checkpointBytes.Load(),
	}
}

// Draining reports whether the service has stopped admitting missions.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission, waits for every admitted mission to reach a
// terminal state, then stops the watchdog. If ctx expires first,
// in-flight attempts are cancelled — their checkpoints are durable — and
// ctx's error is returned.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("service: already draining")
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var derr error
	select {
	case <-done:
	case <-ctx.Done():
		s.cancel(fmt.Errorf("%w: drain deadline expired", errServiceStopped))
		<-done
		derr = ctx.Err()
	}
	s.shutdown()
	return derr
}

// Close stops the service immediately: admission closes, in-flight
// attempts are cancelled, queued missions fail fast. Safe after Drain.
func (s *Service) Close() error {
	s.mu.Lock()
	already := s.stopped
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	if already {
		return nil
	}
	s.cancel(errServiceStopped)
	s.wg.Wait()
	s.shutdown()
	return nil
}

// shutdown stops the watchdog once the workers are done.
func (s *Service) shutdown() {
	s.mu.Lock()
	already := s.stopped
	s.stopped = true
	s.mu.Unlock()
	if already {
		return
	}
	s.cancel(errServiceStopped)
	<-s.wdDone
}

// worker drains the run queue; one goroutine per pool slot.
func (s *Service) worker() {
	defer s.wg.Done()
	for m := range s.queue {
		s.runMission(m)
	}
}

// watchdog scans running missions on the wall clock: an attempt past its
// wall budget, or one whose engine has made no progress within the stall
// deadline, is cancelled with the matching cause. The supervisor decides
// what the cancellation means (restart vs terminal).
func (s *Service) watchdog() {
	defer close(s.wdDone)
	t := time.NewTicker(s.cfg.WatchdogEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
		}
		now := time.Now()
		for _, m := range s.Missions() {
			if !m.running.Load() {
				continue
			}
			start := time.Unix(0, m.attemptStart.Load())
			if s.cfg.MaxWall > 0 && now.Sub(start) > s.cfg.MaxWall {
				s.tel.watchdogTrips.Add(1)
				m.cancelWith(fmt.Errorf("%w: attempt ran %s (budget %s)",
					errWallBudget, now.Sub(start).Round(time.Millisecond), s.cfg.MaxWall))
				continue
			}
			last := time.Unix(0, m.lastProgress.Load())
			if s.cfg.StallAfter > 0 && now.Sub(last) > s.cfg.StallAfter {
				s.tel.watchdogTrips.Add(1)
				m.cancelWith(fmt.Errorf("%w: no progress for %s (deadline %s)",
					errStalled, now.Sub(last).Round(time.Millisecond), s.cfg.StallAfter))
			}
		}
	}
}

// runMission supervises one mission through attempts to a terminal
// state.
func (s *Service) runMission(m *Mission) {
	if s.ctx.Err() != nil {
		s.finish(m, StateFailed, "service stopped before the mission ran")
		return
	}
	var store *checkpoint.Store
	var persisted []checkpoint.Record
	if s.cfg.DataDir != "" {
		// A fresh deployment's data directory may not exist yet; an
		// operator pointing -data at a new path should not watch every
		// mission fail at store-open.
		if err := os.MkdirAll(s.cfg.DataDir, 0o755); err != nil {
			s.finish(m, StateFailed, "checkpoint store: "+err.Error())
			return
		}
		st, recs, err := checkpoint.OpenStore(filepath.Join(s.cfg.DataDir, m.ID+".ckpt"))
		if err != nil {
			s.finish(m, StateFailed, "checkpoint store: "+err.Error())
			return
		}
		store, persisted = st, recs
		defer st.Close()
	}
	backoffRNG := sim.NewRNG(m.Scenario.Seed).Derive("service.backoff")

	for {
		m.beginAttempt()
		out, err := s.attempt(m, store, &persisted)
		m.endAttempt()

		if err == nil {
			s.conclude(m, out)
			return
		}
		crash := errors.Is(err, errPanicked)
		if crash {
			s.tel.crashes.Add(1)
		} else if errors.Is(err, errStalled) {
			s.tel.stalls.Add(1)
		}
		if !restartable(err) {
			s.finish(m, StateFailed, err.Error())
			return
		}
		m.noteFailure(crash)
		if m.Restarts() >= s.cfg.MaxRestarts {
			s.finish(m, StateQuarantined,
				fmt.Sprintf("restart budget (%d) exhausted; last failure: %v", s.cfg.MaxRestarts, err))
			return
		}
		m.mu.Lock()
		m.restarts++
		n := m.restarts
		m.state = StateRestarting
		m.reason = err.Error()
		m.mu.Unlock()
		s.tel.restarts.Add(1)

		if !s.sleepBackoff(n, backoffRNG) {
			s.finish(m, StateFailed, "service stopped during restart backoff")
			return
		}
	}
}

// sleepBackoff waits BackoffBase·2^(n-1) capped at BackoffMax, plus up
// to 25% deterministic jitter, interruptible by service shutdown. It
// returns false when shutdown interrupted the wait.
func (s *Service) sleepBackoff(n int, rng *sim.RNG) bool {
	d := s.cfg.BackoffBase
	for i := 1; i < n && d < s.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	if q := int(d / 4); q > 0 {
		d += time.Duration(rng.Intn(q + 1))
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.ctx.Done():
		return false
	}
}

// attempt wraps one runAttempt with supervision plumbing: panic
// recovery, the watchdog cancel hook, checkpoint persistence, and chaos.
func (s *Service) attempt(m *Mission, store *checkpoint.Store, persisted *[]checkpoint.Record) (out *attemptOutcome, aerr error) {
	defer func() {
		if p := recover(); p != nil {
			aerr = fmt.Errorf("%w: %v", errPanicked, p)
		}
	}()
	ctx, cancel := context.WithCancelCause(s.ctx)
	defer cancel(nil)
	m.setCancel(cancel)
	defer m.setCancel(nil)

	digests := make(map[int]uint64, len(*persisted))
	var anchor *checkpoint.Record
	if n := len(*persisted); n > 0 {
		rec := (*persisted)[n-1]
		anchor = &rec
		for _, r := range *persisted {
			digests[r.Seq] = r.Checkpoint.Digest()
		}
	}

	recovering := anchor != nil
	p := attemptParams{
		sc:                 m.Scenario,
		ctx:                ctx,
		cancel:             cancel,
		journal:            checkpoint.NewJournal(m.Scenario.Seed, planString(m.Scenario)),
		invariantEvery:     s.cfg.InvariantEvery,
		progressEvery:      s.cfg.ProgressEvery,
		maxEvents:          s.cfg.MaxEvents,
		maxCheckpointBytes: s.cfg.MaxCheckpointBytes,
		chaos:              s.chaosFor(m, ctx),
		anchor:             anchor,
		persistedDigests:   digests,
		onCheckpoint: func(rec checkpoint.Record) error {
			if store != nil {
				if err := store.Append(rec); err != nil {
					return err
				}
				if err := store.Sync(); err != nil {
					return err
				}
			}
			*persisted = append(*persisted, rec)
			s.tel.checkpoints.Add(1)
			s.tel.checkpointBytes.Add(int64(rec.Checkpoint.Bytes()))
			m.mu.Lock()
			m.checkpoints++
			m.mu.Unlock()
			return nil
		},
		onProgress: m.noteProgress,
		onFirstEvent: func() {
			m.noteFirstEvent()
			if recovering {
				s.tel.recoveries.Add(1)
				recovering = false
			}
		},
	}
	return runAttempt(p)
}

// chaosFor derives the mission's injected failure, if any, from its
// seed: deterministic, so a chaos run is as reproducible as a clean one.
// Only the leading CrashAttempts attempts fail; recovery attempts beyond
// that run undisturbed.
func (s *Service) chaosFor(m *Mission, ctx context.Context) *chaosPlan {
	c := s.cfg.Chaos
	if c.CrashProb <= 0 || m.Attempts() > c.CrashAttempts {
		return nil
	}
	rng := sim.NewRNG(m.Scenario.Seed).Derive("service.chaos")
	if !rng.Bool(c.CrashProb) {
		return nil
	}
	frac := c.AtFrac
	if frac <= 0 {
		frac = rng.Uniform(0.3, 0.7)
	}
	return &chaosPlan{
		at:    time.Duration(frac * float64(m.Scenario.Horizon)),
		stall: c.Stall,
		ctx:   ctx,
	}
}

// conclude records a finished attempt's outcome and the terminal state:
// completed when clean, degraded (with a reproducer snapshot) when an
// invariant was violated.
func (s *Service) conclude(m *Mission, out *attemptOutcome) {
	m.mu.Lock()
	m.fingerprint = out.fingerprint
	m.summary = out.summary
	m.journal = out.journal
	if out.recoveredFrom > 0 {
		m.recoveredFrom = out.recoveredFrom
	}
	m.violations = m.violations[:0]
	for _, v := range out.violations {
		m.violations = append(m.violations, v.String())
	}
	m.events.Store(out.events)
	m.mu.Unlock()

	if len(out.violations) == 0 {
		s.finish(m, StateCompleted, "")
		return
	}
	reason := fmt.Sprintf("%d invariant violations (first: %s)", len(out.violations), out.violations[0])
	if s.cfg.DataDir != "" {
		path := filepath.Join(s.cfg.DataDir, m.ID+".reproducer.scn")
		if err := os.WriteFile(path, []byte(m.Source), 0o644); err != nil {
			reason += "; reproducer write failed: " + err.Error()
		} else {
			reason += "; reproducer: " + path
		}
	}
	s.finish(m, StateDegraded, reason)
}

// finish moves a mission to a terminal state and bumps the matching
// counter.
func (s *Service) finish(m *Mission, st MissionState, reason string) {
	m.mu.Lock()
	m.state = st
	m.reason = reason
	m.finishedAt = time.Now()
	m.mu.Unlock()
	switch st {
	case StateCompleted:
		s.tel.completed.Add(1)
	case StateDegraded:
		s.tel.degraded.Add(1)
	case StateFailed:
		s.tel.failed.Add(1)
	case StateQuarantined:
		s.tel.quarantined.Add(1)
	case StateQueued, StateRunning, StateRestarting:
		// Not terminal; finish is never called with these.
	default:
	}
}
