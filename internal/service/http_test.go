package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRetryAfterSeconds pins the header rendering: whole seconds rounded
// up, floor of 1, and "1" for untyped queue-full errors.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{&QueueFullError{RetryAfter: 2500 * time.Millisecond}, "3"},
		{&QueueFullError{RetryAfter: 2 * time.Second}, "2"},
		{&QueueFullError{RetryAfter: 400 * time.Millisecond}, "1"},
		{&QueueFullError{}, "1"},
		{ErrQueueFull, "1"},
		{fmt.Errorf("wrap: %w", &QueueFullError{RetryAfter: 61 * time.Second}), "61"},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.err); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
	if !errors.Is(&QueueFullError{RetryAfter: time.Second}, ErrQueueFull) {
		t.Error("QueueFullError does not unwrap to ErrQueueFull")
	}
}

func postScenario(t *testing.T, srv *httptest.Server, body string) (*http.Response, MissionView) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/missions", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /missions: %v", err)
	}
	defer resp.Body.Close()
	var v MissionView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, v
}

func TestHTTPSubmitStatusTelemetry(t *testing.T) {
	svc := New(Config{Workers: 2})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp, v := postScenario(t, srv, smallScenario(3101).String())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if v.ID == "" || v.State == "" {
		t.Fatalf("submit response missing id/state: %+v", v)
	}

	// Malformed scenario → 400.
	resp, _ = postScenario(t, srv, "scenario v999\nnope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad scenario status = %d, want 400", resp.StatusCode)
	}

	// Poll the mission to terminal state over HTTP.
	deadline := time.Now().Add(2 * time.Minute)
	var got MissionView
	for {
		r, err := http.Get(srv.URL + "/missions/" + v.ID)
		if err != nil {
			t.Fatalf("GET mission: %v", err)
		}
		err = json.NewDecoder(r.Body).Decode(&got)
		r.Body.Close()
		if err != nil {
			t.Fatalf("decode mission: %v", err)
		}
		if got.State == StateCompleted.String() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mission never completed over HTTP: %+v", got)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got.Fingerprint == "" || got.JournalDigest == "" {
		t.Errorf("completed view missing fingerprint/journal digest: %+v", got)
	}

	// List contains it; telemetry counts it; health is ok.
	r, err := http.Get(srv.URL + "/missions")
	if err != nil {
		t.Fatalf("GET /missions: %v", err)
	}
	var list []MissionView
	if err := json.NewDecoder(r.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	r.Body.Close()
	if len(list) == 0 {
		t.Error("mission list empty")
	}

	r, err = http.Get(srv.URL + "/telemetry")
	if err != nil {
		t.Fatalf("GET /telemetry: %v", err)
	}
	var tel Telemetry
	if err := json.NewDecoder(r.Body).Decode(&tel); err != nil {
		t.Fatalf("decode telemetry: %v", err)
	}
	r.Body.Close()
	if tel.Completed == 0 {
		t.Errorf("telemetry completed = 0 after a completed mission")
	}

	var health struct {
		Status  string `json:"status"`
		Queued  int64  `json:"queued"`
		Running int64  `json:"running"`
	}
	r, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if err := json.NewDecoder(r.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	r.Body.Close()
	if health.Status != "ok" {
		t.Errorf("healthz status = %q, want ok", health.Status)
	}

	// 404 for unknown missions.
	r, err = http.Get(srv.URL + "/missions/m-999999")
	if err != nil {
		t.Fatalf("GET unknown: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown mission status = %d, want 404", r.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestHTTPBackpressureAndDrainCodes(t *testing.T) {
	// Wedge the single worker with stall chaos (no stall watchdog, no
	// restarts) so admitted missions pile up behind it and the bounded
	// queue pushes back over HTTP.
	svc := New(Config{
		Workers:        1,
		QueueDepth:     1,
		StallAfter:     -1,
		MaxRestarts:    -1,
		RetryAfterHint: 3 * time.Second,
		Chaos:          ChaosConfig{CrashProb: 1, AtFrac: 0.3, Stall: true},
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Flood until a 429 appears.
	got429 := false
	for i := 0; i < 50 && !got429; i++ {
		resp, _ := postScenario(t, srv, smallScenario(int64(3200+i)).String())
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			got429 = true
			// The header is the configured admission hint, not a constant.
			if got := resp.Header.Get("Retry-After"); got != "3" {
				t.Errorf("429 Retry-After = %q, want %q", got, "3")
			}
		case http.StatusAccepted:
		default:
			t.Fatalf("unexpected submit status %d", resp.StatusCode)
		}
	}
	if !got429 {
		t.Fatal("bounded queue never returned 429 over HTTP")
	}

	// Draining → 503. The short drain deadline also unwedges the stalled
	// missions by cancelling them.
	var drainDone sync.WaitGroup
	drainDone.Add(1)
	go func() {
		defer drainDone.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = svc.Drain(ctx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if svc.Draining() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never started draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ := postScenario(t, srv, smallScenario(3301).String())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit status = %d, want 503", resp.StatusCode)
	}

	// Health flips to 503/"draining" too, so balancers stop routing here.
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz while draining: %v", err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatalf("decode draining healthz: %v", err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503", hr.StatusCode)
	}
	if health.Status != "draining" {
		t.Errorf("draining healthz body status = %q, want %q", health.Status, "draining")
	}
	drainDone.Wait()
}
