package cop

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

// randomPicture builds a replica with seeded-random tracks, trust
// evidence, and coverage churn, so the algebraic tests run over many
// shapes of state.
func randomPicture(seed int64, self asset.ID) *Picture {
	rng := sim.NewRNG(seed)
	p := NewPicture(self)
	for i := 0; i < 3+rng.Intn(5); i++ {
		p.ObserveTrack(i, TrackFix{
			Pos:       geo.Point{X: rng.Uniform(0, 1000), Y: rng.Uniform(0, 1000)},
			Vel:       geo.Vec{DX: rng.Uniform(-5, 5), DY: rng.Uniform(-5, 5)},
			Hits:      1 + rng.Intn(9),
			Confirmed: rng.Bool(0.5),
		}, time.Duration(rng.Intn(100))*time.Second)
	}
	for i := 0; i < 2+rng.Intn(4); i++ {
		p.ObserveTrust(asset.ID(rng.Intn(20)), rng.Uniform(0, 10), rng.Uniform(0, 10))
	}
	for i := 0; i < 4+rng.Intn(6); i++ {
		c := Cell{X: int32(rng.Intn(5)), Y: int32(rng.Intn(5))}
		p.Cover(c)
		if rng.Bool(0.3) {
			p.Uncover(c)
		}
	}
	return p
}

func mergeOf(ps ...*Picture) *Picture {
	out := NewPicture(0)
	for _, p := range ps {
		out.Merge(p)
	}
	return out
}

func TestMergeCommutative(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := randomPicture(seed, 1)
		b := randomPicture(seed+100, 2)
		ab := mergeOf(a, b)
		ba := mergeOf(b, a)
		if ab.Digest() != ba.Digest() {
			t.Fatalf("seed %d: merge not commutative", seed)
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := randomPicture(seed, 1)
		b := randomPicture(seed+100, 2)
		c := randomPicture(seed+200, 3)
		left := mergeOf(mergeOf(a, b), c)
		right := mergeOf(a, mergeOf(b, c))
		if left.Digest() != right.Digest() {
			t.Fatalf("seed %d: merge not associative", seed)
		}
	}
}

func TestMergeIdempotent(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := randomPicture(seed, 1)
		b := randomPicture(seed+100, 2)
		once := mergeOf(a, b)
		thrice := mergeOf(a, b, b, a, b)
		if once.Digest() != thrice.Digest() {
			t.Fatalf("seed %d: merge not idempotent", seed)
		}
	}
}

func TestMergeDominatesInputs(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := randomPicture(seed, 1)
		b := randomPicture(seed+100, 2)
		m := mergeOf(a, b)
		if !m.Dominates(a) || !m.Dominates(b) {
			t.Fatalf("seed %d: merge does not dominate its inputs", seed)
		}
		if !m.Dominates(m) {
			t.Fatalf("seed %d: dominance not reflexive", seed)
		}
	}
}

func TestLWWNewerStampWins(t *testing.T) {
	p := NewPicture(1)
	p.ObserveTrack(0, TrackFix{Hits: 1}, 10*time.Second)
	p.ObserveTrack(0, TrackFix{Hits: 5}, 20*time.Second)
	// A stale write must not regress the register.
	p.ObserveTrack(0, TrackFix{Hits: 99}, 15*time.Second)
	fix, ok := p.Track(TrackKey{Actor: 1, ID: 0})
	if !ok || fix.Hits != 5 {
		t.Errorf("register = %+v ok=%v, want Hits=5", fix, ok)
	}

	// Across replicas: the newer stamp wins no matter the merge order.
	q := NewPicture(2)
	q.ObserveTrack(0, TrackFix{Hits: 7}, 30*time.Second)
	p.Merge(q)
	if fix, _ := p.Track(TrackKey{Actor: 2, ID: 0}); fix.Hits != 7 {
		t.Errorf("remote register lost: %+v", fix)
	}
}

func TestLWWStampTiebreakByActor(t *testing.T) {
	a, b := NewPicture(1), NewPicture(2)
	a.ObserveTrack(0, TrackFix{Hits: 1}, 10*time.Second)
	b.ObserveTrack(0, TrackFix{Hits: 2}, 10*time.Second)
	// Distinct actors never collide on TrackKey, but stamps at the same
	// instant must still order deterministically for Dominates.
	sa := Stamp{T: 10 * time.Second, Actor: 1}
	sb := Stamp{T: 10 * time.Second, Actor: 2}
	if !sb.After(sa) || sa.After(sb) {
		t.Error("equal-time stamps must tiebreak by actor ID")
	}
	if sa.After(sa) {
		t.Error("a stamp must not supersede itself")
	}
}

func TestTrustEvidenceGrowOnly(t *testing.T) {
	p := NewPicture(1)
	p.ObserveTrust(7, 4, 1)
	p.ObserveTrust(7, 2, 3) // alpha regression ignored, beta grows
	e := p.Trust(7)
	if e.Alpha != 4 || e.Beta != 3 {
		t.Errorf("evidence = %+v, want {4 3}", e)
	}

	q := NewPicture(2)
	q.ObserveTrust(7, 10, 0)
	p.Merge(q)
	e = p.Trust(7)
	if e.Alpha != 14 || e.Beta != 3 {
		t.Errorf("summed evidence = %+v, want {14 3}", e)
	}
	if s := p.Score(7); s <= 0.5 {
		t.Errorf("score = %v, want > 0.5 with net-positive evidence", s)
	}
}

func TestCoverageObservedRemove(t *testing.T) {
	cell := Cell{X: 3, Y: 4}
	a, b := NewPicture(1), NewPicture(2)
	a.Cover(cell)
	b.Merge(a)
	if !b.Covered(cell) {
		t.Fatal("merge lost coverage")
	}
	// Concurrently: A re-covers (a new tag B has not seen) while B
	// uncovers based on what it observed.
	a.Cover(cell)
	b.Uncover(cell)
	if b.Covered(cell) {
		t.Fatal("uncover failed locally")
	}
	a.Merge(b)
	b.Merge(a)
	// Observed-remove semantics: the unseen concurrent Cover survives.
	if !a.Covered(cell) || !b.Covered(cell) {
		t.Error("concurrent cover must survive an observed remove")
	}
	if a.Digest() != b.Digest() {
		t.Error("replicas diverged after symmetric merge")
	}
}

func TestCoverageUncoverAllSeen(t *testing.T) {
	p := NewPicture(1)
	c := Cell{X: 0, Y: 0}
	p.Cover(c)
	p.Cover(c)
	p.Uncover(c)
	if p.Covered(c) {
		t.Error("uncover must tombstone every observed tag")
	}
	if cells := p.CoveredCells(); len(cells) != 0 {
		t.Errorf("covered cells = %v, want none", cells)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		p := randomPicture(seed, 3)
		q, err := Decode(p.Encode())
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if p.Digest() != q.Digest() {
			t.Fatalf("seed %d: roundtrip changed state", seed)
		}
		if q.Self() != p.Self() {
			t.Fatalf("seed %d: owner lost in roundtrip", seed)
		}
		// The decoded replica must keep allocating fresh tags.
		q.Cover(Cell{X: 9, Y: 9})
		if !q.Covered(Cell{X: 9, Y: 9}) {
			t.Fatalf("seed %d: decoded replica cannot make progress", seed)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := randomPicture(5, 1)
	data := p.Encode()
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Error("truncated decode should fail")
	}
}

func TestDigestOrderInsensitive(t *testing.T) {
	// The same logical state reached through different op interleavings
	// must encode identically.
	build := func(order []int) *Picture {
		p := NewPicture(1)
		for _, i := range order {
			switch i {
			case 0:
				p.ObserveTrust(4, 2, 1)
			case 1:
				p.ObserveTrack(1, TrackFix{Hits: 3}, 5*time.Second)
			case 2:
				p.ObserveTrust(9, 1, 1)
			}
		}
		return p
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	if a.Digest() != b.Digest() {
		t.Error("digest depends on operation order")
	}
}

func TestDominatesDetectsRegression(t *testing.T) {
	a := randomPicture(9, 1)
	b := a.Clone()
	b.ObserveTrust(99, 1, 0)
	if a.Dominates(b) {
		t.Error("older replica must not dominate a newer one")
	}
	if !b.Dominates(a) {
		t.Error("a superset replica must dominate its past")
	}
}

func TestCountsAndAccessors(t *testing.T) {
	p := NewPicture(1)
	p.ObserveTrack(0, TrackFix{Hits: 3, Confirmed: true}, time.Second)
	p.ObserveTrust(2, 1, 1)
	p.Cover(Cell{X: 1, Y: 1})
	p.Cover(Cell{X: 2, Y: 2})
	p.Uncover(Cell{X: 2, Y: 2})
	tracks, pairs, covered, tombs := p.Counts()
	if tracks != 1 || pairs != 1 || covered != 1 || tombs != 1 {
		t.Errorf("counts = %d %d %d %d, want 1 1 1 1", tracks, pairs, covered, tombs)
	}
	if got := p.TrackKeys(); len(got) != 1 || got[0] != (TrackKey{Actor: 1, ID: 0}) {
		t.Errorf("track keys = %v", got)
	}
	if got := p.Subjects(); len(got) != 1 || got[0] != 2 {
		t.Errorf("subjects = %v", got)
	}
}
