// Package cop replicates the common operational picture as a state-based
// CRDT: the track store is a map of last-writer-wins registers, trust
// evidence is a grow-only counter per (subject, observer), and the sensor
// coverage map is an observed-remove set of grid cells. Merges are
// commutative, associative, and idempotent, so command posts converge on
// the same picture regardless of message ordering, duplication, or how
// long a partition kept them apart — the property the paper's §III
// "composing thousands of battle things" vision needs and that the
// gossip layer (internal/mesh) exploits: replicas exchange encoded
// pictures and merge, with no coordination and no ordering assumptions.
//
// All ordering inside the package is explicit (virtual-time stamps with
// asset-ID tiebreaks, sorted iteration for encoding), so same-seed runs
// stay byte-identical.
package cop

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"iobt/internal/asset"
	"iobt/internal/checkpoint"
	"iobt/internal/geo"
)

// Stamp orders LWW writes: virtual time first, writer ID as tiebreak.
// Two stamps are equal only for the same writer at the same instant, in
// which case the values are identical by construction.
type Stamp struct {
	T     time.Duration
	Actor asset.ID
}

// After reports whether s strictly supersedes o.
func (s Stamp) After(o Stamp) bool {
	if s.T != o.T {
		return s.T > o.T
	}
	return s.Actor > o.Actor
}

// TrackKey names a replicated track: the reporting actor plus its local
// track ID. Different observers of the same target keep distinct entries;
// fusion across observers is a read-side concern.
type TrackKey struct {
	Actor asset.ID
	ID    int
}

// TrackFix is the replicated state of one track (the LWW register value).
type TrackFix struct {
	Pos       geo.Point
	Vel       geo.Vec
	Hits      int
	Confirmed bool
}

// trackReg is an LWW register: the newest stamp wins on merge.
type trackReg struct {
	Fix   TrackFix
	Stamp Stamp
}

// Evidence is accumulated Beta-reputation evidence from one observer.
// Both components only grow, so pointwise max is the join.
type Evidence struct {
	Alpha, Beta float64
}

// max-merge of evidence pairs.
func (e Evidence) join(o Evidence) Evidence {
	if o.Alpha > e.Alpha {
		e.Alpha = o.Alpha
	}
	if o.Beta > e.Beta {
		e.Beta = o.Beta
	}
	return e
}

// dominates reports e >= o pointwise.
func (e Evidence) dominates(o Evidence) bool {
	return e.Alpha >= o.Alpha && e.Beta >= o.Beta
}

// Cell indexes the coverage grid.
type Cell struct {
	X, Y int32
}

// tag uniquely identifies one OR-set add: the covering actor plus a
// per-actor sequence number.
type tag struct {
	Actor asset.ID
	Seq   uint64
}

// Picture is one replica of the common operational picture. It is not
// safe for concurrent use; like the rest of the simulator it lives on
// the single-threaded engine loop.
type Picture struct {
	self asset.ID
	seq  uint64

	tracks map[TrackKey]trackReg
	// trust[subject][observer] = grow-only evidence pair.
	trust map[asset.ID]map[asset.ID]Evidence
	// adds[cell] holds the live tags asserting coverage of cell;
	// removes tombstones tags whose coverage was withdrawn. A cell is
	// covered iff it has at least one un-tombstoned tag.
	adds    map[Cell]map[tag]bool
	removes map[tag]bool
}

// NewPicture returns an empty replica owned by actor self.
func NewPicture(self asset.ID) *Picture {
	return &Picture{
		self:    self,
		tracks:  make(map[TrackKey]trackReg),
		trust:   make(map[asset.ID]map[asset.ID]Evidence),
		adds:    make(map[Cell]map[tag]bool),
		removes: make(map[tag]bool),
	}
}

// Self returns the owning actor.
func (p *Picture) Self() asset.ID { return p.self }

// ObserveTrack records the replica owner's current estimate of its local
// track id at virtual time at. Later stamps supersede earlier ones; a
// stale observation (earlier stamp) is ignored.
func (p *Picture) ObserveTrack(id int, fix TrackFix, at time.Duration) {
	key := TrackKey{Actor: p.self, ID: id}
	st := Stamp{T: at, Actor: p.self}
	if cur, ok := p.tracks[key]; ok && !st.After(cur.Stamp) {
		return
	}
	p.tracks[key] = trackReg{Fix: fix, Stamp: st}
}

// Track returns the replicated fix for key, if present.
func (p *Picture) Track(key TrackKey) (TrackFix, bool) {
	reg, ok := p.tracks[key]
	return reg.Fix, ok
}

// TrackKeys returns every replicated track key, sorted.
func (p *Picture) TrackKeys() []TrackKey {
	keys := make([]TrackKey, 0, len(p.tracks))
	for k := range p.tracks {
		keys = append(keys, k)
	}
	sortTrackKeys(keys)
	return keys
}

// ObserveTrust records the owner's accumulated evidence about subject.
// Evidence only grows: the stored pair is the pointwise max of every
// observation, so re-delivery and reordering are harmless.
func (p *Picture) ObserveTrust(subject asset.ID, alpha, beta float64) {
	obs := p.trust[subject]
	if obs == nil {
		obs = make(map[asset.ID]Evidence)
		p.trust[subject] = obs
	}
	obs[p.self] = obs[p.self].join(Evidence{Alpha: alpha, Beta: beta})
}

// Trust sums the replicated evidence about subject across observers.
func (p *Picture) Trust(subject asset.ID) Evidence {
	var total Evidence
	for _, observer := range p.observersOf(subject) {
		e := p.trust[subject][observer]
		total.Alpha += e.Alpha
		total.Beta += e.Beta
	}
	return total
}

// Score is the Beta-posterior mean of subject's summed evidence with a
// uniform prior, matching trust.Ledger's convention.
func (p *Picture) Score(subject asset.ID) float64 {
	e := p.Trust(subject)
	return (1 + e.Alpha) / (2 + e.Alpha + e.Beta)
}

// Subjects returns every asset with replicated trust evidence, sorted.
func (p *Picture) Subjects() []asset.ID {
	ids := make([]asset.ID, 0, len(p.trust))
	for id := range p.trust {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// observersOf returns the sorted observers with evidence about subject.
func (p *Picture) observersOf(subject asset.ID) []asset.ID {
	obs := p.trust[subject]
	ids := make([]asset.ID, 0, len(obs))
	for id := range obs {
		ids = append(ids, id)
	}
	sortIDs(ids)
	return ids
}

// Cover asserts that the owner currently covers cell c.
func (p *Picture) Cover(c Cell) {
	tags := p.adds[c]
	if tags == nil {
		tags = make(map[tag]bool)
		p.adds[c] = tags
	}
	p.seq++
	tags[tag{Actor: p.self, Seq: p.seq}] = true
}

// Uncover withdraws coverage of c by tombstoning every live tag the
// replica has observed — the observed-remove rule: concurrent Covers it
// has not yet seen survive the removal.
func (p *Picture) Uncover(c Cell) {
	for _, t := range p.liveTags(c) {
		p.removes[t] = true
	}
}

// Covered reports whether any un-tombstoned coverage assertion for c
// has been observed.
func (p *Picture) Covered(c Cell) bool {
	return len(p.liveTags(c)) > 0
}

// CoveredCells returns every covered cell, sorted.
func (p *Picture) CoveredCells() []Cell {
	cells := make([]Cell, 0, len(p.adds))
	for c := range p.adds {
		if p.Covered(c) {
			cells = append(cells, c)
		}
	}
	sortCells(cells)
	return cells
}

// liveTags returns c's un-tombstoned tags, sorted.
func (p *Picture) liveTags(c Cell) []tag {
	var live []tag
	for t := range p.adds[c] {
		if !p.removes[t] {
			live = append(live, t)
		}
	}
	sortTags(live)
	return live
}

// Merge joins o into p. The join is commutative, associative, and
// idempotent: LWW registers keep the newer stamp, evidence counters take
// the pointwise max, and the coverage OR-set unions adds and tombstones.
// o is not modified.
func (p *Picture) Merge(o *Picture) {
	for key, reg := range o.tracks {
		if cur, ok := p.tracks[key]; !ok || reg.Stamp.After(cur.Stamp) {
			p.tracks[key] = reg
		}
	}
	for subject, obs := range o.trust {
		mine := p.trust[subject]
		if mine == nil {
			mine = make(map[asset.ID]Evidence, len(obs))
			p.trust[subject] = mine
		}
		for observer, e := range obs {
			mine[observer] = mine[observer].join(e)
		}
	}
	for c, tags := range o.adds {
		mine := p.adds[c]
		if mine == nil {
			mine = make(map[tag]bool, len(tags))
			p.adds[c] = mine
		}
		for t := range tags {
			mine[t] = true
		}
	}
	for t := range o.removes {
		p.removes[t] = true
	}
}

// Dominates reports whether p's state is at or past o in the CRDT
// partial order: every register o holds exists in p with an equal or
// newer stamp, every evidence pair is pointwise >=, and p's add and
// tombstone sets contain o's. Merging can only move a replica up this
// order — "anti-entropy never regresses CRDT state" is checked against
// exactly this predicate by verify.PictureMonotone.
func (p *Picture) Dominates(o *Picture) bool {
	for key, reg := range o.tracks {
		cur, ok := p.tracks[key]
		if !ok {
			return false
		}
		if cur.Stamp != reg.Stamp && !cur.Stamp.After(reg.Stamp) {
			return false
		}
	}
	for subject, obs := range o.trust {
		mine := p.trust[subject]
		for observer, e := range obs {
			if mine == nil || !mine[observer].dominates(e) {
				return false
			}
		}
	}
	for c, tags := range o.adds {
		mine := p.adds[c]
		for t := range tags {
			if mine == nil || !mine[t] {
				return false
			}
		}
	}
	for t := range o.removes {
		if !p.removes[t] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy (same owner, same tag sequence).
func (p *Picture) Clone() *Picture {
	c := NewPicture(p.self)
	c.seq = p.seq
	c.Merge(p)
	return c
}

// MergeEncoded decodes a serialized replica and merges it into p —
// the receive path for pictures carried as opaque payloads through a
// dissemination overlay (e.g. the sharded mesh, whose frames must stay
// closed over per-node state and therefore ship bytes, not pointers).
func (p *Picture) MergeEncoded(data []byte) error {
	o, err := Decode(data)
	if err != nil {
		return err
	}
	p.Merge(o)
	return nil
}

// Encode serializes the replica deterministically: every map is walked
// in sorted key order, so equal states produce equal bytes and Digest
// can stand in for deep comparison.
func (p *Picture) Encode() []byte {
	e := checkpoint.NewEncoder()
	e.Int64(int64(p.self))
	e.Uint64(p.seq)
	p.encodeState(e)
	return e.Bytes()
}

// encodeState writes the replicated (convergent) state, excluding the
// replica-local identity fields, in sorted key order.
func (p *Picture) encodeState(e *checkpoint.Encoder) {
	keys := p.TrackKeys()
	e.Int(len(keys))
	for _, k := range keys {
		reg := p.tracks[k]
		e.Int64(int64(k.Actor))
		e.Int(k.ID)
		e.Float64(reg.Fix.Pos.X)
		e.Float64(reg.Fix.Pos.Y)
		e.Float64(reg.Fix.Vel.DX)
		e.Float64(reg.Fix.Vel.DY)
		e.Int(reg.Fix.Hits)
		e.Bool(reg.Fix.Confirmed)
		e.Int64(int64(reg.Stamp.T))
		e.Int64(int64(reg.Stamp.Actor))
	}

	subjects := p.Subjects()
	e.Int(len(subjects))
	for _, s := range subjects {
		observers := p.observersOf(s)
		e.Int64(int64(s))
		e.Int(len(observers))
		for _, o := range observers {
			ev := p.trust[s][o]
			e.Int64(int64(o))
			e.Float64(ev.Alpha)
			e.Float64(ev.Beta)
		}
	}

	cells := make([]Cell, 0, len(p.adds))
	for c := range p.adds {
		cells = append(cells, c)
	}
	sortCells(cells)
	e.Int(len(cells))
	for _, c := range cells {
		tags := make([]tag, 0, len(p.adds[c]))
		for t := range p.adds[c] {
			tags = append(tags, t)
		}
		sortTags(tags)
		e.Int64(int64(c.X))
		e.Int64(int64(c.Y))
		e.Int(len(tags))
		for _, t := range tags {
			e.Int64(int64(t.Actor))
			e.Uint64(t.Seq)
		}
	}

	removes := make([]tag, 0, len(p.removes))
	for t := range p.removes {
		removes = append(removes, t)
	}
	sortTags(removes)
	e.Int(len(removes))
	for _, t := range removes {
		e.Int64(int64(t.Actor))
		e.Uint64(t.Seq)
	}
}

// Decode reconstructs a replica from Encode's output.
func Decode(data []byte) (*Picture, error) {
	d := checkpoint.NewDecoder(data)
	p := NewPicture(asset.ID(d.Int64()))
	p.seq = d.Uint64()

	nTracks := d.Int()
	for i := 0; i < nTracks && d.Err() == nil; i++ {
		k := TrackKey{Actor: asset.ID(d.Int64()), ID: d.Int()}
		var reg trackReg
		reg.Fix.Pos.X = d.Float64()
		reg.Fix.Pos.Y = d.Float64()
		reg.Fix.Vel.DX = d.Float64()
		reg.Fix.Vel.DY = d.Float64()
		reg.Fix.Hits = d.Int()
		reg.Fix.Confirmed = d.Bool()
		reg.Stamp.T = time.Duration(d.Int64())
		reg.Stamp.Actor = asset.ID(d.Int64())
		p.tracks[k] = reg
	}

	nSubjects := d.Int()
	for i := 0; i < nSubjects && d.Err() == nil; i++ {
		s := asset.ID(d.Int64())
		nObs := d.Int()
		obs := make(map[asset.ID]Evidence, nObs)
		for j := 0; j < nObs && d.Err() == nil; j++ {
			o := asset.ID(d.Int64())
			obs[o] = Evidence{Alpha: d.Float64(), Beta: d.Float64()}
		}
		p.trust[s] = obs
	}

	nCells := d.Int()
	for i := 0; i < nCells && d.Err() == nil; i++ {
		c := Cell{X: int32(d.Int64()), Y: int32(d.Int64())}
		nTags := d.Int()
		tags := make(map[tag]bool, nTags)
		for j := 0; j < nTags && d.Err() == nil; j++ {
			tags[tag{Actor: asset.ID(d.Int64()), Seq: d.Uint64()}] = true
		}
		p.adds[c] = tags
	}

	nRemoves := d.Int()
	for i := 0; i < nRemoves && d.Err() == nil; i++ {
		p.removes[tag{Actor: asset.ID(d.Int64()), Seq: d.Uint64()}] = true
	}

	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("cop: decode: %w", err)
	}
	return p, nil
}

// Digest hashes the deterministic encoding of the replicated state —
// identity fields excluded, so two converged replicas with different
// owners digest identically. Equal digests mean equal replicated state.
func (p *Picture) Digest() uint64 {
	e := checkpoint.NewEncoder()
	p.encodeState(e)
	h := fnv.New64a()
	_, _ = h.Write(e.Bytes())
	return h.Sum64()
}

// Counts summarizes the replica size: tracks, trust pairs, covered
// cells, tombstones.
func (p *Picture) Counts() (tracks, trustPairs, covered, tombstones int) {
	tracks = len(p.tracks)
	for _, s := range p.Subjects() {
		trustPairs += len(p.trust[s])
	}
	covered = len(p.CoveredCells())
	tombstones = len(p.removes)
	return
}

func sortIDs(ids []asset.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func sortTrackKeys(keys []TrackKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Actor != keys[j].Actor {
			return keys[i].Actor < keys[j].Actor
		}
		return keys[i].ID < keys[j].ID
	})
}

func sortCells(cells []Cell) {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].X != cells[j].X {
			return cells[i].X < cells[j].X
		}
		return cells[i].Y < cells[j].Y
	})
}

func sortTags(tags []tag) {
	sort.Slice(tags, func(i, j int) bool {
		if tags[i].Actor != tags[j].Actor {
			return tags[i].Actor < tags[j].Actor
		}
		return tags[i].Seq < tags[j].Seq
	})
}
