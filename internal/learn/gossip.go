package learn

import (
	"strconv"

	"iobt/internal/sim"
)

// Topology yields the undirected neighbor lists in force at a given
// round; time-varying topologies (the paper's "impact of time-varying
// topology ... on the correctness and convergence of distributed
// learning") return different graphs per round.
type Topology func(round int) [][]int

// Ring returns a static ring over n nodes.
func Ring(n int) Topology {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		adj[i] = []int{(i + n - 1) % n, (i + 1) % n}
	}
	if n == 1 {
		adj[0] = nil
	}
	return func(int) [][]int { return adj }
}

// Star returns a static star with node 0 at the hub.
func Star(n int) Topology {
	adj := make([][]int, n)
	for i := 1; i < n; i++ {
		adj[0] = append(adj[0], i)
		adj[i] = []int{0}
	}
	return func(int) [][]int { return adj }
}

// Full returns the complete graph.
func Full(n int) Topology {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return func(int) [][]int { return adj }
}

// Dynamic returns a fresh Erdős–Rényi graph each round with edge
// probability p — the churning battlefield topology.
func Dynamic(n int, p float64, rng *sim.RNG) Topology {
	return func(round int) [][]int {
		r := rng.Derive("round" + strconv.Itoa(round))
		adj := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Bool(p) {
					adj[i] = append(adj[i], j)
					adj[j] = append(adj[j], i)
				}
			}
		}
		return adj
	}
}

// Hierarchical returns a two-level tree: sqrt(n) cluster heads fully
// connected to each other, members connected to their head.
func Hierarchical(n int) Topology {
	heads := 1
	for heads*heads < n {
		heads++
	}
	adj := make([][]int, n)
	for h := 0; h < heads && h < n; h++ {
		for g := 0; g < heads && g < n; g++ {
			if h != g {
				adj[h] = append(adj[h], g)
			}
		}
	}
	for i := heads; i < n; i++ {
		h := i % heads
		adj[i] = append(adj[i], h)
		adj[h] = append(adj[h], i)
	}
	return func(int) [][]int { return adj }
}

// Edges counts undirected edges in a topology round (for cost
// accounting).
func Edges(adj [][]int) int {
	total := 0
	for _, nb := range adj {
		total += len(nb)
	}
	return total / 2
}

// GossipConfig parameterizes decentralized training.
type GossipConfig struct {
	Rounds int
	LR     float64
	// Mix is the neighbor-averaging weight in (0,1]: w_i <- (1-Mix)*w_i
	// + Mix*avg(neighbors).
	Mix float64
	// ByzFrac marks the lowest-index fraction of nodes Byzantine
	// (they gossip sign-flipped weights).
	ByzFrac float64
	// TrimNeighbors makes honest nodes aggregate neighbor weights with a
	// coordinate median instead of a mean (robust gossip).
	TrimNeighbors bool
}

// GossipResult captures a decentralized run.
type GossipResult struct {
	// Models holds each node's final model.
	Models []*Model
	// MeanAcc is the mean node accuracy per round on the test set.
	MeanAcc []float64
	// Disagreement is the mean pairwise weight distance per round
	// (consensus metric).
	Disagreement []float64
	// BytesSent counts total gossip traffic.
	BytesSent float64
}

// RunGossip trains one model per node with decentralized gradient
// descent: each round, every node takes a local SGD step then averages
// with its current neighbors.
func RunGossip(shards []*Dataset, test *Dataset, topo Topology, cfg GossipConfig) *GossipResult {
	n := len(shards)
	if n == 0 {
		return &GossipResult{}
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 30
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.5
	}
	if cfg.Mix <= 0 || cfg.Mix > 1 {
		cfg.Mix = 0.5
	}
	dim := 0
	for _, s := range shards {
		if s.Len() > 0 {
			dim = len(s.X[0])
			break
		}
	}
	models := make([]*Model, n)
	for i := range models {
		models[i] = NewModel(dim)
	}
	nByz := int(cfg.ByzFrac * float64(n))
	res := &GossipResult{}
	msgBytes := float64((dim + 1) * 8)

	shared := make([][]float64, n)
	for r := 0; r < cfg.Rounds; r++ {
		adj := topo(r)
		// Local step, then publish (possibly poisoned) weights.
		for i := 0; i < n; i++ {
			models[i].SGDStep(shards[i].X, shards[i].Y, cfg.LR)
			w := make([]float64, len(models[i].W))
			copy(w, models[i].W)
			if i < nByz {
				for c := range w {
					w[c] = -10 * w[c]
				}
			}
			shared[i] = w
		}
		// Mix with neighbors.
		next := make([][]float64, n)
		for i := 0; i < n; i++ {
			if i < nByz {
				next[i] = shared[i] // Byzantine nodes keep their junk
				continue
			}
			nbrs := adj[i]
			if len(nbrs) == 0 {
				next[i] = models[i].W
				continue
			}
			res.BytesSent += msgBytes * float64(len(nbrs))
			gathered := make([][]float64, 0, len(nbrs))
			for _, j := range nbrs {
				gathered = append(gathered, shared[j])
			}
			var avg []float64
			if cfg.TrimNeighbors {
				avg = (MedianAgg{}).Aggregate(gathered)
			} else {
				avg = (MeanAgg{}).Aggregate(gathered)
			}
			w := make([]float64, len(models[i].W))
			for c := range w {
				w[c] = (1-cfg.Mix)*models[i].W[c] + cfg.Mix*avg[c]
			}
			next[i] = w
		}
		for i := 0; i < n; i++ {
			models[i].W = next[i]
		}
		// Metrics over honest nodes.
		acc := 0.0
		honest := 0
		for i := nByz; i < n; i++ {
			acc += models[i].Accuracy(test.X, test.Y)
			honest++
		}
		if honest > 0 {
			acc /= float64(honest)
		}
		res.MeanAcc = append(res.MeanAcc, acc)
		res.Disagreement = append(res.Disagreement, disagreement(models[nByz:]))
	}
	res.Models = models
	return res
}

// disagreement returns the mean pairwise L2 distance between models.
func disagreement(models []*Model) float64 {
	n := len(models)
	if n < 2 {
		return 0
	}
	total, pairs := 0.0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			diff := make([]float64, len(models[i].W))
			for c := range diff {
				diff[c] = models[i].W[c] - models[j].W[c]
			}
			total += normL2(diff)
			pairs++
		}
	}
	return total / float64(pairs)
}
