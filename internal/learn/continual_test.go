package learn

import (
	"testing"

	"iobt/internal/sim"
)

// contexts builds three clearly distinct concepts over the same feature
// space.
func contexts(rng *sim.RNG, dim int) [][]float64 {
	var ws [][]float64
	for c := 0; c < 3; c++ {
		w := make([]float64, dim+1)
		for i := range w {
			w[i] = rng.Norm(0, 3)
		}
		ws = append(ws, w)
	}
	// Make context 1 roughly the negation of 0 for maximal interference.
	for i := range ws[1] {
		ws[1][i] = -ws[0][i]
	}
	return ws
}

func TestCatastrophicForgettingBaselineVsContextual(t *testing.T) {
	rng := sim.NewRNG(1)
	const dim = 4
	ws := contexts(rng, dim)

	single := NewSingleLearner(dim, 0.3)
	ctx := NewContextualLearner(dim, 0.3)

	// Stream: 3 phases, batches of 20.
	var evalSets []*Dataset
	for phase := 0; phase < 3; phase++ {
		evalSets = append(evalSets, GenDatasetFromW(rng, ws[phase], 400, 0.02))
		for b := 0; b < 40; b++ {
			batch := GenDatasetFromW(rng, ws[phase], 20, 0.02)
			single.Observe(batch.X, batch.Y)
			ctx.Observe(batch.X, batch.Y)
		}
	}

	// Retention on context 0 after training through 1 and 2.
	singleOld := single.Predictor().Accuracy(evalSets[0].X, evalSets[0].Y)
	ctxOld := ctx.BestAccuracy(evalSets[0].X, evalSets[0].Y)
	if ctxOld < 0.85 {
		t.Errorf("contextual retention on old context = %.3f", ctxOld)
	}
	if singleOld > ctxOld-0.1 {
		t.Errorf("baseline (%.3f) should forget context 0 relative to contextual (%.3f)", singleOld, ctxOld)
	}
	if ctx.NumContexts() < 2 {
		t.Errorf("contextual learner detected %d contexts, want >= 2", ctx.NumContexts())
	}
}

func TestContextualReusesStoredModel(t *testing.T) {
	rng := sim.NewRNG(2)
	const dim = 4
	ws := contexts(rng, dim)
	ctx := NewContextualLearner(dim, 0.3)
	phase := func(w []float64, batches int) {
		for b := 0; b < batches; b++ {
			batch := GenDatasetFromW(rng, w, 20, 0.02)
			ctx.Observe(batch.X, batch.Y)
		}
	}
	phase(ws[0], 40)
	phase(ws[1], 40)
	n := ctx.NumContexts()
	phase(ws[0], 10) // return to a known context
	if ctx.NumContexts() != n {
		t.Errorf("revisiting a known context spawned a new model: %d -> %d", n, ctx.NumContexts())
	}
	if ctx.Switches == 0 {
		t.Error("no context switches recorded")
	}
}

func TestContinualEdges(t *testing.T) {
	ctx := NewContextualLearner(3, 0)
	ctx.Observe(nil, nil) // no panic
	if ctx.NumContexts() != 1 {
		t.Error("empty observation should not change contexts")
	}
	s := NewSingleLearner(3, 0)
	s.Observe(nil, nil)
	if s.Predictor() == nil {
		t.Error("nil predictor")
	}
}
