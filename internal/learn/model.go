// Package learn implements the paper's Challenge 3 (§V.B): distributed
// machine learning for intelligent battlefield services. It provides
// logistic models trained by federated averaging with Byzantine-robust
// aggregation (coordinate median, trimmed mean, Krum), fully
// decentralized gossip gradient descent over time-varying topologies,
// explicit communication-cost accounting for the cost-of-learning
// trade-off (refs [28]-[33]), and contextual continual learning that
// avoids catastrophic forgetting (ref [26]).
//
// Models are deliberately convex (logistic regression): the paper's
// distributed-learning claims concern topology dynamics, adversarial
// compromise, and communication cost — all orthogonal to model class —
// and convex models make convergence measurable and deterministic.
package learn

import "math"

// Model is a logistic-regression classifier. W[0] is the bias; W[1:]
// multiply the features.
type Model struct {
	W []float64
}

// NewModel returns a zero model for dim features.
func NewModel(dim int) *Model {
	return &Model{W: make([]float64, dim+1)}
}

// Clone returns a deep copy.
func (m *Model) Clone() *Model {
	w := make([]float64, len(m.W))
	copy(w, m.W)
	return &Model{W: w}
}

// Dim returns the feature dimension.
func (m *Model) Dim() int { return len(m.W) - 1 }

// score returns w·x plus bias.
func (m *Model) score(x []float64) float64 {
	s := m.W[0]
	n := len(m.W) - 1
	if len(x) < n {
		n = len(x)
	}
	for i := 0; i < n; i++ {
		s += m.W[i+1] * x[i]
	}
	return s
}

// Predict returns P(y=1 | x).
func (m *Model) Predict(x []float64) float64 { return sigmoid(m.score(x)) }

// Classify returns the hard label.
func (m *Model) Classify(x []float64) int {
	if m.Predict(x) >= 0.5 {
		return 1
	}
	return 0
}

// Gradient accumulates the logistic-loss gradient of one example into
// grad (len = len(W)).
func (m *Model) Gradient(grad []float64, x []float64, y int) {
	p := m.Predict(x)
	err := p - float64(y)
	grad[0] += err
	n := len(m.W) - 1
	if len(x) < n {
		n = len(x)
	}
	for i := 0; i < n; i++ {
		grad[i+1] += err * x[i]
	}
}

// SGDStep performs one mini-batch gradient step at learning rate lr.
func (m *Model) SGDStep(X [][]float64, Y []int, lr float64) {
	if len(X) == 0 {
		return
	}
	grad := make([]float64, len(m.W))
	for i := range X {
		m.Gradient(grad, X[i], Y[i])
	}
	scale := lr / float64(len(X))
	for i := range m.W {
		m.W[i] -= scale * grad[i]
	}
}

// Loss returns the mean logistic loss over a dataset.
func (m *Model) Loss(X [][]float64, Y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	total := 0.0
	for i := range X {
		p := m.Predict(X[i])
		p = math.Min(math.Max(p, 1e-12), 1-1e-12)
		if Y[i] == 1 {
			total += -math.Log(p)
		} else {
			total += -math.Log(1 - p)
		}
	}
	return total / float64(len(X))
}

// Accuracy returns the classification accuracy on a dataset.
func (m *Model) Accuracy(X [][]float64, Y []int) float64 {
	if len(X) == 0 {
		return 0
	}
	ok := 0
	for i := range X {
		if m.Classify(X[i]) == Y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(X))
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}
