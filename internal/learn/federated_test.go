package learn

import (
	"testing"

	"iobt/internal/sim"
)

func fedWorld(seed int64, workers int) (*sim.RNG, []*Dataset, *Dataset) {
	rng := sim.NewRNG(seed)
	train := GenDataset(rng, GenConfig{N: 2000, Dim: 5, Noise: 0.05})
	test := GenDatasetFromW(rng, train.TrueW, 500, 0.05)
	shards := train.Split(rng, workers, 0.3)
	return rng, shards, test
}

func finalAcc(r *FedResult) float64 {
	if len(r.TestAcc) == 0 {
		return 0
	}
	return r.TestAcc[len(r.TestAcc)-1]
}

func TestFedAvgCleanConverges(t *testing.T) {
	rng, shards, test := fedWorld(1, 20)
	res := RunFederated(rng, shards, test, FedConfig{Rounds: 25, LocalSteps: 5, LR: 0.5, Agg: MeanAgg{}})
	if acc := finalAcc(res); acc < 0.9 {
		t.Errorf("clean FedAvg accuracy = %.3f", acc)
	}
	if res.BytesSent <= 0 {
		t.Error("no communication accounted")
	}
}

func TestFedAvgPoisonedCollapses(t *testing.T) {
	rng, shards, test := fedWorld(2, 20)
	res := RunFederated(rng, shards, test, FedConfig{
		Rounds: 25, LocalSteps: 5, LR: 0.5,
		ByzFrac: 0.3, Attack: AttackSignFlip, Agg: MeanAgg{},
	})
	if acc := finalAcc(res); acc > 0.75 {
		t.Errorf("FedAvg under 30%% sign-flip should collapse, got %.3f", acc)
	}
}

func TestRobustAggregatorsSurviveAttack(t *testing.T) {
	for _, tc := range []struct {
		name string
		agg  Aggregator
	}{
		{"median", MedianAgg{}},
		{"trimmed", TrimmedMeanAgg{K: 6}},
		{"krum", KrumAgg{F: 6}},
	} {
		rng, shards, test := fedWorld(3, 20)
		res := RunFederated(rng, shards, test, FedConfig{
			Rounds: 25, LocalSteps: 5, LR: 0.5,
			ByzFrac: 0.3, Attack: AttackSignFlip, Agg: tc.agg,
		})
		if acc := finalAcc(res); acc < 0.85 {
			t.Errorf("%s under 30%% sign-flip: accuracy %.3f, want >= 0.85", tc.name, acc)
		}
	}
}

func TestRandomAttackAlsoHandled(t *testing.T) {
	rng, shards, test := fedWorld(4, 15)
	res := RunFederated(rng, shards, test, FedConfig{
		Rounds: 20, LocalSteps: 5, LR: 0.5,
		ByzFrac: 0.2, Attack: AttackRandom, Agg: MedianAgg{},
	})
	if acc := finalAcc(res); acc < 0.85 {
		t.Errorf("median under random attack: %.3f", acc)
	}
}

func TestDropProbStillLearns(t *testing.T) {
	rng, shards, test := fedWorld(5, 20)
	res := RunFederated(rng, shards, test, FedConfig{
		Rounds: 30, LocalSteps: 5, LR: 0.5, DropProb: 0.5, Agg: MeanAgg{},
	})
	if acc := finalAcc(res); acc < 0.85 {
		t.Errorf("accuracy with 50%% dropouts = %.3f", acc)
	}
}

func TestAggregatorEdgeCases(t *testing.T) {
	for _, agg := range []Aggregator{MeanAgg{}, MedianAgg{}, TrimmedMeanAgg{K: 1}, KrumAgg{F: 1}} {
		if agg.Name() == "" {
			t.Error("aggregator without name")
		}
		if got := agg.Aggregate(nil); got != nil {
			t.Errorf("%s: empty aggregate = %v", agg.Name(), got)
		}
		one := agg.Aggregate([][]float64{{1, 2, 3}})
		if len(one) != 3 || one[0] != 1 {
			t.Errorf("%s: single update aggregate = %v", agg.Name(), one)
		}
	}
}

func TestMedianEvenCount(t *testing.T) {
	got := (MedianAgg{}).Aggregate([][]float64{{1}, {3}, {5}, {100}})
	if got[0] != 4 {
		t.Errorf("median = %v, want 4", got[0])
	}
}

func TestTrimmedMeanClampsK(t *testing.T) {
	got := (TrimmedMeanAgg{K: 5}).Aggregate([][]float64{{1}, {2}, {3}})
	// K clamps to 1: keep {2}.
	if got[0] != 2 {
		t.Errorf("trimmed = %v, want 2", got[0])
	}
}

func TestKrumPicksInlier(t *testing.T) {
	updates := [][]float64{
		{1, 1}, {1.1, 0.9}, {0.9, 1.1}, {1.05, 1}, // honest cluster
		{-50, 40}, // outlier
	}
	got := (KrumAgg{F: 1}).Aggregate(updates)
	if got[0] < 0 {
		t.Errorf("krum picked the outlier: %v", got)
	}
}
