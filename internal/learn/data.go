package learn

import (
	"math"

	"iobt/internal/sim"
)

// Dataset is a labeled classification problem.
type Dataset struct {
	X [][]float64
	Y []int
	// TrueW is the generating weight vector (bias first), kept for
	// evaluation.
	TrueW []float64
}

// GenConfig parameterizes synthetic data generation.
type GenConfig struct {
	N   int
	Dim int
	// Noise is the label-flip probability.
	Noise float64
	// Margin scales the generating weights; larger = more separable.
	Margin float64
}

// GenDataset draws a linearly separable (up to Noise) binary dataset
// from a random hyperplane.
func GenDataset(rng *sim.RNG, cfg GenConfig) *Dataset {
	if cfg.Dim <= 0 {
		cfg.Dim = 5
	}
	if cfg.Margin <= 0 {
		cfg.Margin = 2
	}
	w := make([]float64, cfg.Dim+1)
	for i := range w {
		w[i] = rng.Norm(0, cfg.Margin)
	}
	d := &Dataset{TrueW: w}
	for k := 0; k < cfg.N; k++ {
		x := make([]float64, cfg.Dim)
		for i := range x {
			x[i] = rng.Norm(0, 1)
		}
		s := w[0]
		for i := range x {
			s += w[i+1] * x[i]
		}
		y := 0
		if s > 0 {
			y = 1
		}
		if rng.Bool(cfg.Noise) {
			y = 1 - y
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	return d
}

// GenDatasetFromW draws points labeled by a fixed hyperplane (used by
// the continual-learning contexts, where each context has its own
// generating concept).
func GenDatasetFromW(rng *sim.RNG, w []float64, n int, noise float64) *Dataset {
	dim := len(w) - 1
	d := &Dataset{TrueW: w}
	for k := 0; k < n; k++ {
		x := make([]float64, dim)
		for i := range x {
			x[i] = rng.Norm(0, 1)
		}
		s := w[0]
		for i := range x {
			s += w[i+1] * x[i]
		}
		y := 0
		if s > 0 {
			y = 1
		}
		if rng.Bool(noise) {
			y = 1 - y
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	return d
}

// Split partitions the dataset into n shards. When skew > 0, shard i
// receives a class-skewed subsample (non-IID federated data): shard
// parity biases its label mix by the skew fraction.
func (d *Dataset) Split(rng *sim.RNG, n int, skew float64) []*Dataset {
	if n <= 0 {
		n = 1
	}
	shards := make([]*Dataset, n)
	for i := range shards {
		shards[i] = &Dataset{TrueW: d.TrueW}
	}
	perm := rng.Perm(len(d.X))
	for _, idx := range perm {
		// Preferred shard parity by label under skew.
		var s int
		if skew > 0 && rng.Bool(skew) {
			// Send label-1 examples to even shards, label-0 to odd.
			s = rng.Intn((n + 1) / 2)
			if d.Y[idx] == 1 {
				s = s * 2 % n
			} else {
				s = (s*2 + 1) % n
			}
		} else {
			s = rng.Intn(n)
		}
		shards[s].X = append(shards[s].X, d.X[idx])
		shards[s].Y = append(shards[s].Y, d.Y[idx])
	}
	return shards
}

// Subset returns the first n examples (or fewer).
func (d *Dataset) Subset(n int) *Dataset {
	if n > len(d.X) {
		n = len(d.X)
	}
	return &Dataset{X: d.X[:n], Y: d.Y[:n], TrueW: d.TrueW}
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.X) }

// BayesAccuracy returns the accuracy of the generating hyperplane itself
// (the noise ceiling).
func (d *Dataset) BayesAccuracy() float64 {
	if len(d.X) == 0 || d.TrueW == nil {
		return 0
	}
	m := &Model{W: d.TrueW}
	return m.Accuracy(d.X, d.Y)
}

// normL2 returns the L2 norm of a vector.
func normL2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
