package learn

import (
	"sort"

	"iobt/internal/sim"
)

// Aggregator combines per-worker model weights into a global update.
type Aggregator interface {
	// Name identifies the aggregator in result tables.
	Name() string
	// Aggregate combines the workers' weight vectors (all same length).
	Aggregate(updates [][]float64) []float64
}

// MeanAgg is plain federated averaging (FedAvg) — the non-robust
// baseline that Byzantine workers poison.
type MeanAgg struct{}

// Name implements Aggregator.
func (MeanAgg) Name() string { return "fedavg" }

// Aggregate implements Aggregator.
func (MeanAgg) Aggregate(updates [][]float64) []float64 {
	if len(updates) == 0 {
		return nil
	}
	out := make([]float64, len(updates[0]))
	for _, u := range updates {
		for i := range out {
			out[i] += u[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(updates))
	}
	return out
}

// MedianAgg takes the coordinate-wise median — robust to < 50%
// arbitrary corruption per coordinate.
type MedianAgg struct{}

// Name implements Aggregator.
func (MedianAgg) Name() string { return "median" }

// Aggregate implements Aggregator.
func (MedianAgg) Aggregate(updates [][]float64) []float64 {
	if len(updates) == 0 {
		return nil
	}
	dim := len(updates[0])
	out := make([]float64, dim)
	col := make([]float64, len(updates))
	for i := 0; i < dim; i++ {
		for j, u := range updates {
			col[j] = u[i]
		}
		sort.Float64s(col)
		n := len(col)
		if n%2 == 1 {
			out[i] = col[n/2]
		} else {
			out[i] = (col[n/2-1] + col[n/2]) / 2
		}
	}
	return out
}

// TrimmedMeanAgg drops the K largest and K smallest values per
// coordinate before averaging.
type TrimmedMeanAgg struct {
	// K is the per-side trim count; it is clamped so at least one value
	// survives.
	K int
}

// Name implements Aggregator.
func (TrimmedMeanAgg) Name() string { return "trimmed" }

// Aggregate implements Aggregator.
func (a TrimmedMeanAgg) Aggregate(updates [][]float64) []float64 {
	if len(updates) == 0 {
		return nil
	}
	k := a.K
	if k < 0 {
		k = 0
	}
	for 2*k >= len(updates) {
		k--
	}
	dim := len(updates[0])
	out := make([]float64, dim)
	col := make([]float64, len(updates))
	for i := 0; i < dim; i++ {
		for j, u := range updates {
			col[j] = u[i]
		}
		sort.Float64s(col)
		kept := col[k : len(col)-k]
		s := 0.0
		for _, v := range kept {
			s += v
		}
		out[i] = s / float64(len(kept))
	}
	return out
}

// KrumAgg implements Krum (Blanchard et al.): select the single update
// minimizing the sum of squared distances to its n-f-2 nearest
// neighbors. Tolerates f Byzantine workers among n when n >= 2f+3.
type KrumAgg struct {
	// F is the assumed number of Byzantine workers.
	F int
}

// Name implements Aggregator.
func (KrumAgg) Name() string { return "krum" }

// Aggregate implements Aggregator.
func (a KrumAgg) Aggregate(updates [][]float64) []float64 {
	n := len(updates)
	if n == 0 {
		return nil
	}
	if n == 1 {
		out := make([]float64, len(updates[0]))
		copy(out, updates[0])
		return out
	}
	k := n - a.F - 2
	if k < 1 {
		k = 1
	}
	if k > n-1 {
		k = n - 1
	}
	bestIdx, bestScore := 0, 0.0
	dists := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				dists[j] = 0
				continue
			}
			d := 0.0
			for c := range updates[i] {
				diff := updates[i][c] - updates[j][c]
				d += diff * diff
			}
			dists[j] = d
		}
		sort.Float64s(dists)
		score := 0.0
		// dists[0] is the zero self-distance; take the next k.
		for c := 1; c <= k; c++ {
			score += dists[c]
		}
		if i == 0 || score < bestScore {
			bestIdx, bestScore = i, score
		}
	}
	out := make([]float64, len(updates[bestIdx]))
	copy(out, updates[bestIdx])
	return out
}

// Attack is the Byzantine worker behavior.
type Attack int

// Byzantine attack modes.
const (
	// AttackNone makes Byzantine workers behave honestly.
	AttackNone Attack = iota
	// AttackSignFlip sends the negated honest update, scaled up.
	AttackSignFlip
	// AttackRandom sends large random noise.
	AttackRandom
)

// FedConfig parameterizes a federated run.
type FedConfig struct {
	Rounds     int
	LocalSteps int
	LR         float64
	// ByzFrac is the fraction of workers that are Byzantine.
	ByzFrac float64
	Attack  Attack
	Agg     Aggregator
	// DropProb is the per-round probability a worker is unreachable
	// (network adversity / time-varying connectivity).
	DropProb float64
	// TopK, when positive, switches workers to sending top-k sparsified
	// weight deltas instead of dense weights (gradient compression for
	// the cost-of-learning trade-off, §V.B).
	TopK int
}

// FedResult captures a run's trajectory.
type FedResult struct {
	Model *Model
	// TestAcc is accuracy per round on the held-out set.
	TestAcc []float64
	// BytesSent counts total communication (8 bytes per weight per
	// worker message, up and down).
	BytesSent float64
}

// RunFederated trains over the shards with a central aggregator.
// Workers with index < ByzFrac*n are Byzantine.
func RunFederated(rng *sim.RNG, shards []*Dataset, test *Dataset, cfg FedConfig) *FedResult {
	if cfg.Agg == nil {
		cfg.Agg = MeanAgg{}
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 20
	}
	if cfg.LocalSteps <= 0 {
		cfg.LocalSteps = 5
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.5
	}
	dim := 0
	for _, s := range shards {
		if s.Len() > 0 {
			dim = len(s.X[0])
			break
		}
	}
	global := NewModel(dim)
	nByz := int(cfg.ByzFrac * float64(len(shards)))
	res := &FedResult{}
	msgBytes := float64(len(global.W) * 8)
	sendDelta := cfg.TopK > 0

	for r := 0; r < cfg.Rounds; r++ {
		var updates [][]float64
		for wi, shard := range shards {
			if cfg.DropProb > 0 && rng.Bool(cfg.DropProb) {
				continue // unreachable this round
			}
			local := global.Clone()
			for s := 0; s < cfg.LocalSteps; s++ {
				local.SGDStep(shard.X, shard.Y, cfg.LR)
			}
			w := make([]float64, len(local.W))
			copy(w, local.W)
			upBytes := msgBytes
			if sendDelta {
				for i := range w {
					w[i] -= global.W[i]
				}
				var kept int
				w, kept = SparsifyTopK(w, cfg.TopK)
				upBytes = SparseMessageBytes(kept)
			}
			if wi < nByz {
				switch cfg.Attack {
				case AttackNone:
					// Byzantine workers behave honestly: the update
					// computed above goes out unmodified.
				case AttackSignFlip:
					for i := range w {
						w[i] = -10 * w[i]
					}
				case AttackRandom:
					for i := range w {
						w[i] = rng.Norm(0, 50)
					}
				}
			}
			updates = append(updates, w)
			res.BytesSent += msgBytes + upBytes // down + up
		}
		if len(updates) == 0 {
			res.TestAcc = append(res.TestAcc, global.Accuracy(test.X, test.Y))
			continue
		}
		agg := cfg.Agg.Aggregate(updates)
		if sendDelta {
			for i := range global.W {
				global.W[i] += agg[i]
			}
		} else {
			global.W = agg
		}
		res.TestAcc = append(res.TestAcc, global.Accuracy(test.X, test.Y))
	}
	res.Model = global
	return res
}
