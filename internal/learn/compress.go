package learn

import "sort"

// SparsifyTopK keeps the k largest-magnitude entries of v and zeroes the
// rest (top-k gradient sparsification). It returns the sparse vector and
// the number of retained entries. k <= 0 or k >= len(v) returns a copy.
func SparsifyTopK(v []float64, k int) ([]float64, int) {
	out := make([]float64, len(v))
	if k <= 0 || k >= len(v) {
		copy(out, v)
		return out, len(v)
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := v[idx[a]], v[idx[b]]
		if va < 0 {
			va = -va
		}
		if vb < 0 {
			vb = -vb
		}
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	for _, i := range idx[:k] {
		out[i] = v[i]
	}
	return out, k
}

// SparseMessageBytes estimates the wire size of a k-sparse update:
// 8 bytes per value plus 4 bytes per index.
func SparseMessageBytes(k int) float64 { return float64(k) * 12 }
