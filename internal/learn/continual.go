package learn

// Continual learning (paper §V.B "Continuous and robust learning"): "in
// systems that learn blindly without proper contextualization, new
// information can often erase previously learned knowledge" [26]. The
// ContextualLearner maintains one model per automatically detected
// context; SingleLearner is the forgetting baseline.

// SingleLearner trains one model over the whole stream.
type SingleLearner struct {
	Model *Model
	lr    float64
}

// NewSingleLearner returns the baseline learner.
func NewSingleLearner(dim int, lr float64) *SingleLearner {
	if lr <= 0 {
		lr = 0.3
	}
	return &SingleLearner{Model: NewModel(dim), lr: lr}
}

// Observe trains on one mini-batch.
func (s *SingleLearner) Observe(X [][]float64, Y []int) {
	s.Model.SGDStep(X, Y, s.lr)
}

// Predictor returns the model used for inference.
func (s *SingleLearner) Predictor() *Model { return s.Model }

// ContextualLearner detects context switches from prediction-error
// spikes and maintains a separate model per context, reusing a stored
// model when it explains fresh data well ("the system must learn the
// different relevant underlying contexts automatically").
type ContextualLearner struct {
	models  []*Model
	active  int
	lr      float64
	dim     int
	baseAcc float64 // accuracy threshold for keeping the active model

	// Switches counts detected context changes.
	Switches int
}

// NewContextualLearner returns a learner with one initial context.
func NewContextualLearner(dim int, lr float64) *ContextualLearner {
	if lr <= 0 {
		lr = 0.3
	}
	return &ContextualLearner{
		models:  []*Model{NewModel(dim)},
		lr:      lr,
		dim:     dim,
		baseAcc: 0.65,
	}
}

// NumContexts returns how many context models exist.
func (c *ContextualLearner) NumContexts() int { return len(c.models) }

// Predictor returns the currently active model.
func (c *ContextualLearner) Predictor() *Model { return c.models[c.active] }

// Observe trains on a mini-batch, first checking whether the active
// model still explains it; if not it switches to the best stored model
// or spawns a fresh one.
func (c *ContextualLearner) Observe(X [][]float64, Y []int) {
	if len(X) == 0 {
		return
	}
	if c.models[c.active].Accuracy(X, Y) < c.baseAcc {
		// Context change suspected: find the best stored model.
		best, bestAcc := -1, 0.0
		for i, m := range c.models {
			if acc := m.Accuracy(X, Y); acc > bestAcc {
				best, bestAcc = i, acc
			}
		}
		if best >= 0 && bestAcc >= c.baseAcc {
			if best != c.active {
				c.active = best
				c.Switches++
			}
		} else {
			// Unknown context: spawn a new model so the old knowledge
			// is preserved rather than overwritten.
			c.models = append(c.models, NewModel(c.dim))
			c.active = len(c.models) - 1
			c.Switches++
		}
	}
	c.models[c.active].SGDStep(X, Y, c.lr)
}

// BestAccuracy evaluates every stored model on a dataset and returns the
// best score (the retention metric: can the learner still serve an old
// context?).
func (c *ContextualLearner) BestAccuracy(X [][]float64, Y []int) float64 {
	best := 0.0
	for _, m := range c.models {
		if acc := m.Accuracy(X, Y); acc > best {
			best = acc
		}
	}
	return best
}
