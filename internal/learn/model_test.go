package learn

import (
	"math"
	"testing"
	"testing/quick"

	"iobt/internal/sim"
)

func TestSigmoid(t *testing.T) {
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", s)
	}
	if s := sigmoid(100); s <= 0.99 {
		t.Errorf("sigmoid(100) = %v", s)
	}
	if s := sigmoid(-100); s >= 0.01 {
		t.Errorf("sigmoid(-100) = %v", s)
	}
	// Symmetry.
	if math.Abs(sigmoid(3)+sigmoid(-3)-1) > 1e-12 {
		t.Error("sigmoid not symmetric")
	}
}

func TestModelTrainsOnSeparableData(t *testing.T) {
	rng := sim.NewRNG(1)
	d := GenDataset(rng, GenConfig{N: 500, Dim: 4, Noise: 0})
	m := NewModel(4)
	for epoch := 0; epoch < 50; epoch++ {
		m.SGDStep(d.X, d.Y, 0.5)
	}
	if acc := m.Accuracy(d.X, d.Y); acc < 0.97 {
		t.Errorf("training accuracy = %.3f on separable data", acc)
	}
}

func TestLossDecreasesUnderSGD(t *testing.T) {
	rng := sim.NewRNG(2)
	d := GenDataset(rng, GenConfig{N: 300, Dim: 5, Noise: 0.05})
	m := NewModel(5)
	prev := m.Loss(d.X, d.Y)
	for epoch := 0; epoch < 20; epoch++ {
		m.SGDStep(d.X, d.Y, 0.3)
		cur := m.Loss(d.X, d.Y)
		if cur > prev+1e-6 {
			t.Fatalf("loss increased at epoch %d: %v -> %v", epoch, prev, cur)
		}
		prev = cur
	}
}

func TestModelEdges(t *testing.T) {
	m := NewModel(3)
	if m.Dim() != 3 {
		t.Errorf("Dim = %d", m.Dim())
	}
	if m.Predict([]float64{1, 2, 3}) != 0.5 {
		t.Error("zero model should predict 0.5")
	}
	if m.Accuracy(nil, nil) != 0 || m.Loss(nil, nil) != 0 {
		t.Error("empty dataset metrics should be 0")
	}
	m.SGDStep(nil, nil, 0.1) // no-op, no panic
	c := m.Clone()
	c.W[0] = 99
	if m.W[0] == 99 {
		t.Error("Clone aliases weights")
	}
	// Short feature vector must not panic.
	_ = m.Predict([]float64{1})
	grad := make([]float64, 4)
	m.Gradient(grad, []float64{1}, 1)
}

func TestGenDatasetNoiseCeiling(t *testing.T) {
	rng := sim.NewRNG(3)
	clean := GenDataset(rng, GenConfig{N: 2000, Dim: 5, Noise: 0})
	if acc := clean.BayesAccuracy(); acc != 1 {
		t.Errorf("clean Bayes accuracy = %v", acc)
	}
	noisy := GenDataset(rng, GenConfig{N: 2000, Dim: 5, Noise: 0.2})
	acc := noisy.BayesAccuracy()
	if acc < 0.75 || acc > 0.85 {
		t.Errorf("noisy Bayes accuracy = %v, want ~0.8", acc)
	}
}

func TestSplitConservesData(t *testing.T) {
	rng := sim.NewRNG(4)
	d := GenDataset(rng, GenConfig{N: 1000, Dim: 3, Noise: 0})
	shards := d.Split(rng, 7, 0)
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != 1000 {
		t.Errorf("split lost data: %d", total)
	}
	if len(shards) != 7 {
		t.Errorf("shards = %d", len(shards))
	}
}

func TestSplitSkewProducesNonIID(t *testing.T) {
	rng := sim.NewRNG(5)
	d := GenDataset(rng, GenConfig{N: 4000, Dim: 3, Noise: 0})
	shards := d.Split(rng, 4, 0.9)
	// Class balance should differ strongly between even and odd shards.
	frac1 := func(s *Dataset) float64 {
		if s.Len() == 0 {
			return 0
		}
		n := 0
		for _, y := range s.Y {
			n += y
		}
		return float64(n) / float64(s.Len())
	}
	if math.Abs(frac1(shards[0])-frac1(shards[1])) < 0.2 {
		t.Errorf("skewed shards too similar: %.2f vs %.2f", frac1(shards[0]), frac1(shards[1]))
	}
}

func TestSubset(t *testing.T) {
	rng := sim.NewRNG(6)
	d := GenDataset(rng, GenConfig{N: 100, Dim: 2, Noise: 0})
	if d.Subset(10).Len() != 10 {
		t.Error("Subset(10)")
	}
	if d.Subset(1000).Len() != 100 {
		t.Error("Subset beyond length should clamp")
	}
}

// Property: gradient of loss at a point actually descends (finite check:
// loss after one small step never increases much on the same batch).
func TestSGDStepDescends(t *testing.T) {
	prop := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		d := GenDataset(rng, GenConfig{N: 50, Dim: 3, Noise: 0.1})
		m := NewModel(3)
		// Random start.
		for i := range m.W {
			m.W[i] = rng.Norm(0, 1)
		}
		before := m.Loss(d.X, d.Y)
		m.SGDStep(d.X, d.Y, 0.05)
		after := m.Loss(d.X, d.Y)
		return after <= before+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
