package learn

import (
	"testing"

	"iobt/internal/sim"
)

func TestSparsifyTopK(t *testing.T) {
	v := []float64{0.1, -5, 2, 0.3, -1}
	got, kept := SparsifyTopK(v, 2)
	if kept != 2 {
		t.Errorf("kept = %d", kept)
	}
	want := []float64{0, -5, 2, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Input untouched.
	if v[0] != 0.1 {
		t.Error("input mutated")
	}
}

func TestSparsifyTopKEdges(t *testing.T) {
	v := []float64{1, 2}
	if got, kept := SparsifyTopK(v, 0); kept != 2 || got[0] != 1 {
		t.Error("k<=0 should copy")
	}
	if got, kept := SparsifyTopK(v, 5); kept != 2 || got[1] != 2 {
		t.Error("k>=len should copy")
	}
	if got, kept := SparsifyTopK(nil, 3); kept != 0 || len(got) != 0 {
		t.Error("nil input")
	}
}

func TestSparseMessageBytes(t *testing.T) {
	if SparseMessageBytes(3) != 36 {
		t.Errorf("bytes = %v", SparseMessageBytes(3))
	}
}

func TestFederatedTopKCutsBytesKeepsAccuracy(t *testing.T) {
	run := func(topK int) (float64, float64) {
		rng := sim.NewRNG(9)
		train := GenDataset(rng, GenConfig{N: 2000, Dim: 10, Noise: 0.05})
		test := GenDatasetFromW(rng, train.TrueW, 500, 0.05)
		shards := train.Split(rng, 20, 0.3)
		res := RunFederated(rng.Derive("fed"), shards, test, FedConfig{
			Rounds: 30, LocalSteps: 5, LR: 0.5, TopK: topK,
		})
		return res.TestAcc[len(res.TestAcc)-1], res.BytesSent
	}
	denseAcc, denseBytes := run(0)
	sparseAcc, sparseBytes := run(3) // 3 of 11 coordinates per round
	if sparseBytes >= denseBytes {
		t.Errorf("compression did not reduce bytes: %v vs %v", sparseBytes, denseBytes)
	}
	if sparseAcc < denseAcc-0.05 {
		t.Errorf("top-k accuracy %.3f far below dense %.3f", sparseAcc, denseAcc)
	}
	if sparseAcc < 0.85 {
		t.Errorf("top-k accuracy %.3f too low", sparseAcc)
	}
}

func TestFederatedTopKDeltaSemantics(t *testing.T) {
	// With TopK on and zero local steps... local steps default to 5, so
	// instead verify the global model actually moves under compression.
	rng := sim.NewRNG(10)
	train := GenDataset(rng, GenConfig{N: 500, Dim: 5, Noise: 0})
	test := GenDatasetFromW(rng, train.TrueW, 200, 0)
	shards := train.Split(rng, 5, 0)
	res := RunFederated(rng.Derive("fed"), shards, test, FedConfig{
		Rounds: 10, LocalSteps: 3, LR: 0.5, TopK: 2,
	})
	moved := false
	for _, w := range res.Model.W {
		if w != 0 {
			moved = true
		}
	}
	if !moved {
		t.Error("global model never moved under delta compression")
	}
}
