package learn

import (
	"testing"

	"iobt/internal/sim"
)

func gossipWorld(seed int64, nodes int) ([]*Dataset, *Dataset) {
	rng := sim.NewRNG(seed)
	train := GenDataset(rng, GenConfig{N: 1500, Dim: 4, Noise: 0.05})
	test := GenDatasetFromW(rng, train.TrueW, 400, 0.05)
	return train.Split(rng, nodes, 0.3), test
}

func lastF(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return v[len(v)-1]
}

func TestTopologyShapes(t *testing.T) {
	if e := Edges(Ring(10)(0)); e != 10 {
		t.Errorf("ring edges = %d, want 10", e)
	}
	if e := Edges(Star(10)(0)); e != 9 {
		t.Errorf("star edges = %d, want 9", e)
	}
	if e := Edges(Full(10)(0)); e != 45 {
		t.Errorf("full edges = %d, want 45", e)
	}
	if e := Edges(Ring(1)(0)); e != 0 {
		t.Errorf("singleton ring edges = %d", e)
	}
	h := Hierarchical(16)(0)
	if Edges(h) >= Edges(Full(16)(0)) {
		t.Error("hierarchical should be sparser than full")
	}
	// Every non-head node must reach a head.
	for i := 4; i < 16; i++ {
		if len(h[i]) == 0 {
			t.Errorf("node %d disconnected in hierarchical", i)
		}
	}
}

func TestDynamicTopologyVariesAndIsDeterministic(t *testing.T) {
	rng := sim.NewRNG(7)
	topo := Dynamic(12, 0.3, rng)
	a0, a1 := topo(0), topo(1)
	if Edges(a0) == 0 {
		t.Fatal("dynamic graph empty at p=0.3")
	}
	same := true
	for i := range a0 {
		if len(a0[i]) != len(a1[i]) {
			same = false
			break
		}
	}
	if same {
		// Identical degree sequences across rounds are suspicious but
		// possible; require actual equality check to fail.
		eq := true
		for i := range a0 {
			for j := range a0[i] {
				if j >= len(a1[i]) || a0[i][j] != a1[i][j] {
					eq = false
					break
				}
			}
		}
		if eq {
			t.Error("dynamic topology identical across rounds")
		}
	}
	// Same round re-queried must be identical (determinism/resume).
	b0 := topo(0)
	for i := range a0 {
		if len(a0[i]) != len(b0[i]) {
			t.Fatal("dynamic topology not deterministic per round")
		}
	}
}

func TestGossipConvergesOnRing(t *testing.T) {
	shards, test := gossipWorld(1, 16)
	res := RunGossip(shards, test, Ring(16), GossipConfig{Rounds: 60, LR: 0.4, Mix: 0.5})
	if acc := lastF(res.MeanAcc); acc < 0.85 {
		t.Errorf("ring gossip accuracy = %.3f", acc)
	}
	// Consensus: non-IID local gradients sustain a disagreement floor,
	// but gossip must keep it small relative to the model scale.
	meanNorm := 0.0
	for _, m := range res.Models {
		meanNorm += normL2(m.W)
	}
	meanNorm /= float64(len(res.Models))
	if final := res.Disagreement[len(res.Disagreement)-1]; final > 0.3*meanNorm {
		t.Errorf("disagreement %.3f too large vs model norm %.3f", final, meanNorm)
	}
}

func TestGossipFullBeatsRingPerRound(t *testing.T) {
	shards, test := gossipWorld(2, 16)
	ring := RunGossip(shards, test, Ring(16), GossipConfig{Rounds: 15, LR: 0.4})
	full := RunGossip(shards, test, Full(16), GossipConfig{Rounds: 15, LR: 0.4})
	if lastF(full.MeanAcc) < lastF(ring.MeanAcc)-0.02 {
		t.Errorf("full (%.3f) should converge at least as fast as ring (%.3f) per round",
			lastF(full.MeanAcc), lastF(ring.MeanAcc))
	}
	if full.BytesSent <= ring.BytesSent {
		t.Error("full topology must cost more communication")
	}
}

func TestGossipSurvivesDynamicTopology(t *testing.T) {
	shards, test := gossipWorld(3, 16)
	rng := sim.NewRNG(30)
	res := RunGossip(shards, test, Dynamic(16, 0.2, rng), GossipConfig{Rounds: 60, LR: 0.4})
	if acc := lastF(res.MeanAcc); acc < 0.85 {
		t.Errorf("dynamic-topology gossip accuracy = %.3f", acc)
	}
}

func TestRobustGossipResistsByzantine(t *testing.T) {
	shards, test := gossipWorld(4, 16)
	plain := RunGossip(shards, test, Full(16), GossipConfig{
		Rounds: 40, LR: 0.4, ByzFrac: 0.25,
	})
	robust := RunGossip(shards, test, Full(16), GossipConfig{
		Rounds: 40, LR: 0.4, ByzFrac: 0.25, TrimNeighbors: true,
	})
	if lastF(robust.MeanAcc) <= lastF(plain.MeanAcc) {
		t.Errorf("robust gossip (%.3f) should beat plain (%.3f) under attack",
			lastF(robust.MeanAcc), lastF(plain.MeanAcc))
	}
	if lastF(robust.MeanAcc) < 0.8 {
		t.Errorf("robust gossip accuracy = %.3f", lastF(robust.MeanAcc))
	}
}

func TestGossipEmpty(t *testing.T) {
	res := RunGossip(nil, nil, Ring(0), GossipConfig{})
	if len(res.Models) != 0 {
		t.Error("empty gossip should return empty result")
	}
}

func TestCostAccuracyTradeoffExists(t *testing.T) {
	// E10's shape: under a byte budget, a sparse topology can beat a
	// dense one because it affords more rounds.
	shards, test := gossipWorld(5, 16)
	budget := 400_000.0 // bytes

	accUnderBudget := func(topo Topology, perRoundEdges int) float64 {
		msg := float64((4 + 1) * 8)
		rounds := int(budget / (msg * 2 * float64(perRoundEdges)))
		if rounds < 1 {
			rounds = 1
		}
		res := RunGossip(shards, test, topo, GossipConfig{Rounds: rounds, LR: 0.4})
		return lastF(res.MeanAcc)
	}
	ringAcc := accUnderBudget(Ring(16), Edges(Ring(16)(0)))
	fullAcc := accUnderBudget(Full(16), Edges(Full(16)(0)))
	// With a tight budget the ring affords ~7x the rounds; it should win
	// or at least tie. (The crossover direction is what E10 charts.)
	if ringAcc < fullAcc-0.05 {
		t.Errorf("budgeted ring %.3f much worse than full %.3f; expected sparse to compete", ringAcc, fullAcc)
	}
}
