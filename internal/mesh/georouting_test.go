package mesh

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

func TestRouteGeoLine(t *testing.T) {
	_, _, net := lineWorld(t, 5, 100)
	path := net.RouteGeo(0, 4)
	if len(path) != 5 {
		t.Fatalf("geo path = %v", path)
	}
	for i, id := range path {
		if id != asset.ID(i) {
			t.Fatalf("geo path = %v, want straight line", path)
		}
	}
	if p := net.RouteGeo(2, 2); len(p) != 1 {
		t.Errorf("self geo route = %v", p)
	}
}

func TestRouteGeoMatchesBFSHopsOnGrid(t *testing.T) {
	eng := sim.NewEngine(1)
	terr := geo.NewOpenTerrain(700, 700)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 120
	for iy := 0; iy < 5; iy++ {
		for ix := 0; ix < 5; ix++ {
			a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
				Mobility: &geo.Static{P: geo.Point{X: float64(ix+1) * 100, Y: float64(iy+1) * 100}}}
			a.Energy = caps.EnergyCap
			pop.Add(a)
		}
	}
	cfg := DefaultConfig()
	cfg.StepMobility = false
	net := New(eng, pop, terr, cfg)
	bfs := net.Route(0, 24)
	geoPath := net.RouteGeo(0, 24)
	if geoPath == nil {
		t.Fatal("greedy stranded on a convex grid")
	}
	// Greedy on a grid is at most slightly longer than BFS.
	if len(geoPath) > len(bfs)+2 {
		t.Errorf("geo path %d hops vs BFS %d", len(geoPath)-1, len(bfs)-1)
	}
}

func TestRouteGeoVoidReturnsNil(t *testing.T) {
	// A concave "C" topology: greedy toward the destination walks into
	// the void and strands, while BFS routes around.
	eng := sim.NewEngine(2)
	terr := geo.NewOpenTerrain(1000, 1000)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 160
	add := func(x, y float64) asset.ID {
		a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
			Mobility: &geo.Static{P: geo.Point{X: x, Y: y}}}
		a.Energy = caps.EnergyCap
		return pop.Add(a)
	}
	// Source and destination on the same horizontal line, wall between.
	src := add(100, 500)
	dead := add(250, 500) // the greedy trap: closest to dst but a dead end
	dst := add(500, 500)
	// Detour chain around the top (each within 160m of the next).
	add(150, 620)
	add(290, 680)
	add(430, 620)
	cfg := DefaultConfig()
	cfg.StepMobility = false
	cfg.LossBase = 0
	net := New(eng, pop, terr, cfg)
	// Preconditions: dead-end node links to src but not to dst.
	if net.Linked(dead, dst) {
		t.Skip("geometry assumption broken: trap links to dst")
	}
	if !net.Reachable(src, dst) {
		t.Fatal("BFS should find the detour")
	}
	if got := net.RouteGeo(src, dst); got != nil {
		t.Errorf("greedy should strand in the void, got %v", got)
	}
	// SendGeo falls back to BFS and still delivers.
	delivered := false
	net.RegisterHandler(dst, func(Message) { delivered = true })
	if err := net.SendGeo(Message{From: src, To: dst, Size: 10}); err != nil {
		t.Fatalf("SendGeo fallback: %v", err)
	}
	_ = eng.Run(time.Minute)
	if !delivered {
		t.Error("fallback message not delivered")
	}
}

func TestSendGeoDeadNodes(t *testing.T) {
	_, pop, net := lineWorld(t, 3, 100)
	pop.Kill(0)
	net.Refresh()
	if err := net.SendGeo(Message{From: 0, To: 2, Size: 1}); err != ErrDeadNode {
		t.Errorf("err = %v, want ErrDeadNode", err)
	}
	if net.RouteGeo(1, 0) != nil {
		t.Error("route to dead destination should be nil")
	}
}

func TestSendGeoDelivers(t *testing.T) {
	eng, _, net := lineWorld(t, 5, 100)
	got := 0
	net.RegisterHandler(4, func(Message) { got++ })
	if err := net.SendGeo(Message{From: 0, To: 4, Size: 10}); err != nil {
		t.Fatalf("SendGeo: %v", err)
	}
	_ = eng.Run(time.Minute)
	if got != 1 {
		t.Errorf("delivered %d", got)
	}
}
