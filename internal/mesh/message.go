package mesh

import (
	"errors"
	"time"
)

// Send errors.
var (
	// ErrNoRoute means the destination is unreachable right now.
	ErrNoRoute = errors.New("mesh: no route to destination")
	// ErrDeadNode means the source is dead or offline.
	ErrDeadNode = errors.New("mesh: source node is dead or offline")
)

// Send routes msg from msg.From to msg.To hop by hop. Delivery (or loss)
// is asynchronous: each hop takes BaseLatency plus transmission and
// queueing delay, and may drop the message with a distance-dependent
// probability. The route is pinned at send time (source routing), so
// mid-flight topology changes can strand a message — exactly the
// disruption the adaptation experiments need to observe.
//
// Send returns ErrNoRoute/ErrDeadNode for immediately-known failures;
// a nil error means "in flight", not "will be delivered".
func (n *Network) Send(msg Message) error {
	n.Sent.Inc()
	src := n.pop.Get(msg.From)
	if src == nil || !src.Alive() || !src.Online {
		n.Dropped.Inc()
		return ErrDeadNode
	}
	path := n.Route(msg.From, msg.To)
	if path == nil {
		n.NoRoute.Inc()
		return ErrNoRoute
	}
	msg.Sent = n.eng.Now()
	n.inFlight++
	n.forward(msg, path, 0)
	return nil
}

// dropInFlight retires an in-flight message as dropped, keeping the
// conservation ledger (see CheckConservation) balanced.
func (n *Network) dropInFlight() {
	n.Dropped.Inc()
	n.inFlight--
}

// forward schedules the hop from path[i] to path[i+1].
func (n *Network) forward(msg Message, path []NodeID, i int) {
	if i >= len(path)-1 {
		n.deliver(msg)
		return
	}
	from := n.pop.Get(path[i])
	to := n.pop.Get(path[i+1])
	if from == nil || to == nil || !from.Alive() || !to.Alive() {
		n.dropInFlight()
		return
	}
	// The link must still exist (mobility/jamming may have severed it).
	r := n.linkRange(from, to)
	d := from.Pos().Dist(to.Pos())
	if r <= 0 || d > r {
		n.dropInFlight()
		return
	}
	// Distance-dependent loss: quadratic rise toward the range edge,
	// floored so even short hops are not perfectly reliable.
	frac := d / r
	pLoss := n.cfg.LossBase * frac * frac
	if n.rng.Bool(pLoss) {
		n.dropInFlight()
		return
	}
	// Energy: transmitter pays per byte.
	if n.cfg.EnergyPerByte > 0 {
		from.Drain(msg.Size * n.cfg.EnergyPerByte)
	}
	delay := n.cfg.BaseLatency + n.txDelay(from.ID, msg.Size, from.Caps.Bandwidth)
	if n.hopFault != nil {
		eff := n.hopFault(&msg)
		if eff.Drop {
			n.dropInFlight()
			return
		}
		if eff.Corrupt {
			msg.Corrupted = true
		}
		delay += eff.Delay
	}
	msg.Hops++
	n.eng.Schedule(delay, "mesh.hop", func() {
		n.forward(msg, path, i+1)
	})
}

// txDelay models transmission plus queueing at a node: the node's
// backlog drains at its bandwidth; this message waits behind it.
func (n *Network) txDelay(id NodeID, sizeBytes, bandwidthKbps float64) time.Duration {
	if bandwidthKbps <= 0 {
		bandwidthKbps = 1
	}
	bytesPerSec := bandwidthKbps * 1000 / 8
	tx := sizeBytes / bytesPerSec
	if !n.cfg.QueueDrain {
		return time.Duration(tx * float64(time.Second))
	}
	st := n.backlog[id]
	now := n.eng.Now()
	// Drain the backlog for the elapsed wall time.
	elapsed := (now - st.asOf).Seconds()
	st.bytes -= elapsed * bytesPerSec
	if st.bytes < 0 {
		st.bytes = 0
	}
	wait := st.bytes / bytesPerSec
	st.bytes += sizeBytes
	st.asOf = now
	n.backlog[id] = st
	return time.Duration((wait + tx) * float64(time.Second))
}

// Backlog returns the current queued bytes at a node (after draining for
// elapsed time). Used by the allocation experiments to observe
// saturation.
func (n *Network) Backlog(id NodeID) float64 {
	st, ok := n.backlog[id]
	if !ok {
		return 0
	}
	a := n.pop.Get(id)
	bw := 1.0
	if a != nil {
		bw = a.Caps.Bandwidth
	}
	bytesPerSec := bw * 1000 / 8
	elapsed := (n.eng.Now() - st.asOf).Seconds()
	b := st.bytes - elapsed*bytesPerSec
	if b < 0 {
		b = 0
	}
	return b
}

func (n *Network) deliver(msg Message) {
	dst := n.pop.Get(msg.To)
	if dst == nil || !dst.Alive() || !dst.Online {
		n.dropInFlight()
		return
	}
	if msg.Corrupted {
		// A corrupted frame still consumes airtime and reaches the
		// destination, but its content is garbage: handlers see an
		// unparseable kind and no payload, and must tolerate it.
		n.Corrupted.Inc()
		msg.Kind = "corrupt"
		msg.Payload = nil
	}
	n.Delivered.Inc()
	n.inFlight--
	n.LatencySec.AddDuration(n.eng.Now() - msg.Sent)
	n.HopCount.Add(float64(msg.Hops))
	if h, ok := n.handlers[msg.To]; ok {
		h(msg)
	}
}

// Broadcast delivers msg from msg.From to all current neighbors (one
// hop). It returns the number of neighbors targeted.
func (n *Network) Broadcast(msg Message) int {
	src := n.pop.Get(msg.From)
	if src == nil || !src.Alive() || !src.Online {
		return 0
	}
	nbrs := n.neighbors[msg.From]
	msg.Sent = n.eng.Now()
	for _, nb := range nbrs {
		m := msg
		m.To = nb
		n.Sent.Inc()
		n.inFlight++
		n.forward(m, []NodeID{msg.From, nb}, 0)
	}
	return len(nbrs)
}

// SendDirect bypasses routing and attempts a single-hop send, failing
// (dropping) if the nodes are not linked. It is used by protocols that
// maintain their own overlay (gossip, spanning tree).
func (n *Network) SendDirect(msg Message) error {
	n.Sent.Inc()
	if !n.Linked(msg.From, msg.To) {
		n.Dropped.Inc()
		return ErrNoRoute
	}
	msg.Sent = n.eng.Now()
	n.inFlight++
	n.forward(msg, []NodeID{msg.From, msg.To}, 0)
	return nil
}
