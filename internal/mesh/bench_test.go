package mesh

// Dissemination-path micro-benchmarks: one op is a full epidemic
// spread of a single publish across an 8×8 member grid (rumor
// mongering only; anti-entropy is disabled so the relay/receive path
// dominates). allocs/op therefore reads as the whole-overlay
// allocation cost of disseminating one payload.

import (
	"testing"
	"time"
)

func BenchmarkGossipPublishSpread(b *testing.B) {
	eng, _, net := gridWorld(b, 7, 8, 8, 100)
	g := joinAll(net, GossipConfig{Fanout: 3, TTL: 10, AntiEntropyEvery: -1})
	g.Start()
	// Warm the overlay so lazy setup (routing tables, member maps) is
	// outside the measured loop.
	if _, err := g.Publish(0, "cop", 64, "warm"); err != nil {
		b.Fatal(err)
	}
	if err := eng.Run(30 * time.Second); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Publish(0, "cop", 64, "picture"); err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(30 * time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
