package mesh

import (
	"testing"
	"time"

	"iobt/internal/checkpoint"
	"iobt/internal/cop"
	"iobt/internal/geo"
)

// shardScenarios are the representative dissemination workloads the
// differential suite replays at every shard count: an E17-style gossip
// run through partition, jamming, and heal; an E14-style permanent
// fault sweep; and the BFS flooding baseline.
func shardScenarios() map[string]ShardScenario {
	return map[string]ShardScenario{
		"gossip-partition-jam-heal": {
			Nodes:            150,
			Horizon:          120 * time.Second,
			PublishUntil:     90 * time.Second,
			Publishers:       3,
			AntiEntropyEvery: 10 * time.Second,
			PartitionAt:      30 * time.Second,
			HealAt:           85 * time.Second,
			JamFrom:          40 * time.Second,
			JamTo:            70 * time.Second,
			JamZone:          geo.NewRect(geo.Point{X: 500, Y: 100}, geo.Point{X: 900, Y: 700}),
			JamIntensity:     0.7,
		},
		"gossip-kill-sweep": {
			Nodes:        120,
			Horizon:      100 * time.Second,
			PublishUntil: 80 * time.Second,
			Publishers:   4,
			KillAt:       40 * time.Second,
			KillFrac:     0.3,
		},
		"bfs-baseline": {
			Nodes:        120,
			Mode:         ShardModeBFS,
			Horizon:      100 * time.Second,
			PublishUntil: 80 * time.Second,
			Publishers:   3,
		},
	}
}

func scenarioNames() []string {
	return []string{"gossip-partition-jam-heal", "gossip-kill-sweep", "bfs-baseline"}
}

// journalResult logs every shard-count-invariant result field, so a
// journal diff catches any divergence between runs.
func journalResult(j *checkpoint.Journal, res *ShardResult) {
	j.Logf(0, "mode=%s nodes=%d published=%d delivered=%d dup=%d relays=%d repairs=%d dropped=%d ratio=%.6f events=%d clamped=%d violations=%d digest=%016x",
		res.Mode, res.Nodes, res.Published, res.Delivered, res.Duplicates, res.Relays,
		res.Repairs, res.DroppedDead, res.DeliveryRatio, res.Events, res.ClampedSends, len(res.Violations), res.Digest)
}

// TestShardScenarioDeterminismAcrossShardCounts is the PR's headline
// differential: each representative scenario, same seed, at 1, 2, 4,
// and 8 shards, must produce byte-identical journals (checked by
// checkpoint.VerifyEquivalence) and zero conservation violations.
func TestShardScenarioDeterminismAcrossShardCounts(t *testing.T) {
	for _, name := range scenarioNames() {
		sc := shardScenarios()[name]
		t.Run(name, func(t *testing.T) {
			const seed = 77
			runAt := func(shards int) func(*checkpoint.Journal) {
				return func(j *checkpoint.Journal) {
					res, err := RunShardScenario(seed, shards, sc)
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					for _, v := range res.Violations {
						t.Errorf("shards=%d conservation violation: %s", shards, v)
					}
					if res.Published == 0 || res.Delivered == 0 {
						t.Fatalf("shards=%d degenerate run: published=%d delivered=%d", shards, res.Published, res.Delivered)
					}
					journalResult(j, res)
				}
			}
			if d := checkpoint.VerifyEquivalence(seed, name,
				runAt(1), runAt(2), runAt(4), runAt(8)); d != nil {
				t.Errorf("shard counts diverged: %v", d)
			}
		})
	}
}

// TestShardScenarioClampedSends drives a hop latency below the engine's
// 100ms lookahead so the runtime clamp fires, and asserts the counter
// is populated in the result and shard-count invariant — clamping is a
// pure function of the model's stated delays, never of the partition.
// (The stock scenarios use 120ms hops, so their clamp count is zero;
// this is the one place the floor is deliberately undercut.)
func TestShardScenarioClampedSends(t *testing.T) {
	sc := ShardScenario{Nodes: 32, HopLatency: 20 * time.Millisecond, Horizon: 60 * time.Second}
	ref, err := RunShardScenario(5, 1, sc)
	if err != nil {
		t.Fatal(err)
	}
	if ref.ClampedSends == 0 {
		t.Fatal("20ms hops against a 100ms lookahead produced no clamped sends; the counter is dead")
	}
	for _, shards := range []int{2, 4} {
		res, err := RunShardScenario(5, shards, sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.ClampedSends != ref.ClampedSends {
			t.Errorf("shards=%d: ClampedSends = %d, want %d (shard-count invariant)", shards, res.ClampedSends, ref.ClampedSends)
		}
		if res.Digest != ref.Digest {
			t.Errorf("shards=%d: digest %016x differs from 1-shard %016x", shards, res.Digest, ref.Digest)
		}
	}
}

// TestShardScenarioReplay asserts plain same-configuration determinism
// through the standard replay verifier.
func TestShardScenarioReplay(t *testing.T) {
	sc := shardScenarios()["gossip-partition-jam-heal"]
	if d := checkpoint.VerifyReplay(13, "shardnet-replay", func(j *checkpoint.Journal) {
		res, err := RunShardScenario(13, 4, sc)
		if err != nil {
			t.Fatal(err)
		}
		journalResult(j, res)
	}); d != nil {
		t.Errorf("replay diverged: %v", d)
	}
}

// TestShardScenarioCOPPayload wires the COP CRDT through the opaque
// payload hooks: publishers ship encoded pictures, receivers merge them
// with MergeEncoded into per-node replicas (owned state only), and the
// merged picture digests must agree across shard counts.
func TestShardScenarioCOPPayload(t *testing.T) {
	sc := shardScenarios()["gossip-kill-sweep"]
	run := func(shards int) (uint64, int) {
		pics := make([]*cop.Picture, sc.Nodes)
		for i := range pics {
			pics[i] = cop.NewPicture(NodeID(i))
		}
		local := sc
		local.Payload = func(origin NodeID, seq uint64, at time.Duration) []byte {
			p := cop.NewPicture(origin)
			p.ObserveTrack(int(seq), cop.TrackFix{Pos: geo.Point{X: float64(origin), Y: float64(seq)}}, at)
			return p.Encode()
		}
		local.OnDeliver = func(node NodeID, key GossipKey, data []byte, at time.Duration) {
			if err := pics[node].MergeEncoded(data); err != nil {
				t.Errorf("node %d: merge payload %v: %v", node, key, err)
			}
		}
		res, err := RunShardScenario(404, shards, local)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("shards=%d violations: %v", shards, res.Violations)
		}
		merged := 0
		digest := uint64(0)
		for i, p := range pics {
			tracks, _, _, _ := p.Counts()
			if tracks > 0 {
				merged++
			}
			digest = digest*1099511628211 ^ p.Digest() ^ uint64(i)
		}
		return digest, merged
	}
	d1, m1 := run(1)
	d4, m4 := run(4)
	if m1 == 0 {
		t.Fatal("no node ever merged a COP payload")
	}
	if d1 != d4 || m1 != m4 {
		t.Errorf("COP replicas diverged across shard counts: 1-shard (%016x, %d) vs 4-shard (%016x, %d)", d1, m1, d4, m4)
	}
}

// TestShardScenarioModes sanity-checks the two protocol shapes: BFS
// reaches at least as many distinct destinations per publish as
// TTL-bounded gossip on the same field, and gossip pays duplicates for
// its redundancy.
func TestShardScenarioModes(t *testing.T) {
	base := ShardScenario{
		Nodes:        120,
		Horizon:      100 * time.Second,
		PublishUntil: 60 * time.Second,
		Publishers:   2,
	}
	gossip := base
	bfs := base
	bfs.Mode = ShardModeBFS
	gr, err := RunShardScenario(5, 2, gossip)
	if err != nil {
		t.Fatal(err)
	}
	br, err := RunShardScenario(5, 2, bfs)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Published != br.Published {
		t.Fatalf("modes published different loads: %d vs %d", gr.Published, br.Published)
	}
	if br.DeliveryRatio < gr.DeliveryRatio {
		t.Errorf("BFS flooding ratio %.3f below gossip %.3f", br.DeliveryRatio, gr.DeliveryRatio)
	}
	if br.Duplicates != 0 {
		t.Errorf("BFS baseline produced %d duplicates", br.Duplicates)
	}
	if gr.Delivered > 0 && gr.Duplicates == 0 {
		t.Logf("note: gossip produced no duplicates (unusually sparse field)")
	}
}

func TestShardScenarioValidation(t *testing.T) {
	if _, err := RunShardScenario(1, 2, ShardScenario{Nodes: 1}); err == nil {
		t.Error("one-node scenario accepted")
	}
	if _, err := RunShardScenario(1, 2, ShardScenario{Nodes: 10, Mode: "carrier-pigeon"}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestShardScenarioDeliversUnderFaults guards against the scenarios
// degenerating into silence: even through partition+jam+kill, the
// overlay should still reach a meaningful share of the surviving
// population by the horizon (anti-entropy repairs the partition era).
func TestShardScenarioDeliversUnderFaults(t *testing.T) {
	sc := shardScenarios()["gossip-partition-jam-heal"]
	res, err := RunShardScenario(99, 4, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRatio <= 0.2 {
		t.Errorf("delivery ratio %.3f suspiciously low for a healed run", res.DeliveryRatio)
	}
	if res.Repairs == 0 {
		t.Error("anti-entropy never repaired anything through the partition")
	}
	if res.Events != res.Published+res.Delivered+res.Duplicates+res.DroppedDead {
		// Events also include ticks; just require it dominates the frames.
		if res.Events < res.Delivered {
			t.Errorf("event count %d below delivered %d", res.Events, res.Delivered)
		}
	}
}
