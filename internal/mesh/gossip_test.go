package mesh

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

// gridWorld builds cols×rows static sensors spaced apart so each links
// to its orthogonal and diagonal neighbors only. Loss is disabled so
// protocol behavior is exact.
func gridWorld(t testing.TB, seed int64, cols, rows int, spacing float64) (*sim.Engine, *asset.Population, *Network) {
	t.Helper()
	eng := sim.NewEngine(seed)
	side := float64(cols+rows) * spacing
	terr := geo.NewOpenTerrain(side, 1000)
	pop := asset.NewPopulation(terr)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			caps := asset.DefaultCaps(asset.ClassSensor)
			caps.RadioRange = spacing * 1.5
			a := &asset.Asset{
				Affiliation: asset.Blue,
				Class:       asset.ClassSensor,
				Caps:        caps,
				Online:      true,
				Mobility:    &geo.Static{P: geo.Point{X: float64(c+1) * spacing, Y: float64(r+1) * spacing}},
			}
			a.Energy = caps.EnergyCap
			pop.Add(a)
		}
	}
	cfg := DefaultConfig()
	cfg.StepMobility = false
	cfg.LossBase = 0
	net := New(eng, pop, terr, cfg)
	return eng, pop, net
}

// joinAll enrolls every linked node and returns the gossip overlay.
func joinAll(net *Network, cfg GossipConfig) *Gossip {
	g := NewGossip(net, cfg)
	for _, id := range net.Nodes() {
		g.Join(id, nil)
	}
	return g
}

func TestGossipDisseminatesToAllMembers(t *testing.T) {
	eng, _, net := gridWorld(t, 7, 5, 4, 100)
	g := joinAll(net, GossipConfig{Fanout: 3, TTL: 10, AntiEntropyEvery: 2 * time.Second})
	g.Start()
	key, err := g.Publish(0, "cop", 64, "picture-v1")
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if err := eng.Run(30 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, id := range g.Members() {
		if !g.Holds(id, key) {
			t.Errorf("member %d never received %v", id, key)
		}
	}
	if ratio := g.DeliveryRatio(); ratio != 1 {
		t.Errorf("delivery ratio = %v, want 1", ratio)
	}
	if err := g.CheckConservation(); err != nil {
		t.Errorf("conservation: %v", err)
	}
}

func TestGossipDuplicateSuppression(t *testing.T) {
	eng, _, net := gridWorld(t, 3, 3, 3, 100)
	// Huge fanout degenerates to flooding: every reception relays to all
	// neighbors, so duplicates are guaranteed in a 3×3 grid.
	g := joinAll(net, GossipConfig{Fanout: 1 << 20, TTL: 10, AntiEntropyEvery: -1})
	if _, err := g.Publish(4, "report", 32, nil); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := g.DeliveredNew.Value(); got != 9 {
		t.Errorf("first-time deliveries = %d, want 9 (one per member)", got)
	}
	if g.Duplicates.Value() == 0 {
		t.Error("flood fanout over a 3×3 grid must produce duplicate receptions")
	}
	if err := g.CheckConservation(); err != nil {
		t.Errorf("conservation: %v", err)
	}
}

func TestGossipTTLBoundsSpread(t *testing.T) {
	eng, _, net := lineWorld(t, 10, 100)
	// TTL 2 without anti-entropy: origin relays with budget 2, so the
	// payload reaches at most 3 hops down the line.
	g := joinAll(net, GossipConfig{Fanout: 2, TTL: 2, AntiEntropyEvery: -1})
	key, err := g.Publish(0, "report", 32, nil)
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !g.Holds(1, key) {
		t.Error("direct neighbor should receive the payload")
	}
	for id := NodeID(4); id < 10; id++ {
		if g.Holds(id, key) {
			t.Errorf("member %d beyond the TTL budget received the payload", id)
		}
	}
	if g.Expired.Value() == 0 {
		t.Error("the TTL budget must expire somewhere on a 10-node line")
	}
	if err := g.CheckConservation(); err != nil {
		t.Errorf("conservation: %v", err)
	}
}

// TestGossipDeterminism pins the fanout determinism contract: identical
// seeds produce byte-identical dissemination (same frames, same
// receptions, same latency sum), and a different seed is allowed to —
// and on this topology does — make different relay choices.
func TestGossipDeterminism(t *testing.T) {
	run := func(seed int64) (frames, delivered, dups uint64, latency float64) {
		eng, _, net := gridWorld(t, seed, 5, 5, 100)
		g := joinAll(net, GossipConfig{Fanout: 2, TTL: 12, AntiEntropyEvery: time.Second})
		g.Start()
		for i := 0; i < 4; i++ {
			if _, err := g.Publish(NodeID(i*6), "cop", 48, i); err != nil {
				t.Fatalf("publish: %v", err)
			}
		}
		if err := eng.Run(20 * time.Second); err != nil {
			t.Fatalf("run: %v", err)
		}
		return g.FramesSent.Value(), g.DeliveredNew.Value(), g.Duplicates.Value(), g.LatencySec.Sum()
	}
	f1, d1, u1, l1 := run(42)
	f2, d2, u2, l2 := run(42)
	if f1 != f2 || d1 != d2 || u1 != u2 || l1 != l2 {
		t.Errorf("same seed diverged: frames %d/%d delivered %d/%d dups %d/%d latency %v/%v",
			f1, f2, d1, d2, u1, u2, l1, l2)
	}
	f3, _, u3, l3 := run(43)
	if f1 == f3 && u1 == u3 && l1 == l3 {
		t.Log("seed 43 happened to match seed 42 exactly; suspicious but not fatal")
	}
}

func TestGossipPartitionHealReconverges(t *testing.T) {
	eng, _, net := gridWorld(t, 11, 6, 4, 100)
	// Sever every link crossing x=350: two 3×4 islands.
	cut := func(a, b geo.Point) bool { return (a.X < 350) != (b.X < 350) }
	net.SetLinkFault(cut)
	net.Refresh()
	g := joinAll(net, GossipConfig{Fanout: 3, TTL: 10, AntiEntropyEvery: 2 * time.Second})
	g.Start()
	// One publish per side: neither can cross the cut.
	kLeft, err := g.Publish(0, "cop", 64, "left")
	if err != nil {
		t.Fatalf("publish left: %v", err)
	}
	kRight, err := g.Publish(5, "cop", 64, "right")
	if err != nil {
		t.Fatalf("publish right: %v", err)
	}
	if err := eng.Run(20 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if g.Holds(5, kLeft) || g.Holds(0, kRight) {
		t.Fatal("payload crossed an active partition")
	}
	if ratio := g.DeliveryRatio(); ratio >= 1 {
		t.Fatalf("delivery ratio %v during partition, want < 1", ratio)
	}
	if err := g.CheckConservation(); err != nil {
		t.Errorf("conservation during partition: %v", err)
	}

	// Heal: anti-entropy digests now cross the seam and repair both sides.
	net.SetLinkFault(nil)
	net.Refresh()
	if err := eng.Run(30 * time.Second); err != nil {
		t.Fatalf("run after heal: %v", err)
	}
	if ratio := g.DeliveryRatio(); ratio != 1 {
		t.Errorf("delivery ratio after heal = %v, want 1", ratio)
	}
	if g.Repairs.Value() == 0 {
		t.Error("reconvergence must be driven by anti-entropy repairs")
	}
	if err := g.CheckConservation(); err != nil {
		t.Errorf("conservation after heal: %v", err)
	}
}

func TestGossipConservationDetectsRegression(t *testing.T) {
	eng, _, net := gridWorld(t, 13, 3, 3, 100)
	g := joinAll(net, GossipConfig{Fanout: 3, TTL: 8, AntiEntropyEvery: -1})
	key, err := g.Publish(0, "report", 32, nil)
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := g.CheckConservation(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
	// A replica silently losing state is exactly what the invariant
	// exists to catch.
	delete(g.members[4].have, key)
	if err := g.CheckConservation(); err == nil {
		t.Error("regressed replica state not detected")
	}
}

func TestGossipConservationDetectsPhantomPayload(t *testing.T) {
	_, _, net := gridWorld(t, 17, 2, 2, 100)
	g := joinAll(net, GossipConfig{})
	// A payload that traces to no publish must be flagged.
	g.members[1].have[GossipKey{Origin: 3, Seq: 9}] = GossipPayload{Key: GossipKey{Origin: 3, Seq: 9}}
	if err := g.CheckConservation(); err == nil {
		t.Error("phantom payload (no origin publish) not detected")
	}
}

func TestGossipNonMemberPublishFails(t *testing.T) {
	_, _, net := gridWorld(t, 19, 2, 2, 100)
	g := NewGossip(net, GossipConfig{})
	if _, err := g.Publish(0, "report", 32, nil); err == nil {
		t.Error("publish from non-member should fail")
	}
}

func TestGossipAppHandlerChaining(t *testing.T) {
	eng, _, net := gridWorld(t, 23, 2, 2, 100)
	g := NewGossip(net, GossipConfig{Fanout: 3, TTL: 8, AntiEntropyEvery: -1})
	var gossiped, direct []Message
	for _, id := range net.Nodes() {
		id := id
		g.Join(id, func(m Message) {
			if m.Kind == "cop" {
				gossiped = append(gossiped, m)
			} else {
				direct = append(direct, m)
			}
		})
	}
	if _, err := g.Publish(0, "cop", 64, "payload"); err != nil {
		t.Fatalf("publish: %v", err)
	}
	// Non-gossip traffic must still reach the chained app handler.
	mustSend(t, net, Message{From: 0, To: 3, Size: 16, Kind: "order"})
	if err := eng.Run(10 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(gossiped) != 3 {
		t.Errorf("app saw %d gossip deliveries, want 3 (origin's own copy is not echoed back)", len(gossiped))
	}
	for _, m := range gossiped {
		if m.From != 0 || m.Payload != "payload" {
			t.Errorf("gossip delivery carries wrong origin/payload: %+v", m)
		}
	}
	if len(direct) != 1 || direct[0].Kind != "order" {
		t.Errorf("direct traffic lost in handler chaining: %+v", direct)
	}
}

func TestGossipLeaveBalancesLedger(t *testing.T) {
	eng, _, net := gridWorld(t, 29, 3, 3, 100)
	g := joinAll(net, GossipConfig{Fanout: 3, TTL: 8, AntiEntropyEvery: -1})
	if _, err := g.Publish(0, "report", 32, nil); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if err := eng.Run(5 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	g.Leave(4)
	if err := g.CheckConservation(); err != nil {
		t.Errorf("conservation after leave: %v", err)
	}
	if got := len(g.Members()); got != 8 {
		t.Errorf("members after leave = %d, want 8", got)
	}
}

func TestGossipOriginLatencyZero(t *testing.T) {
	_, _, net := gridWorld(t, 31, 2, 2, 100)
	g := joinAll(net, GossipConfig{AntiEntropyEvery: -1})
	if _, err := g.Publish(0, "report", 32, nil); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if g.LatencySec.N() != 1 || g.LatencySec.Sum() != 0 {
		t.Errorf("origin's own copy should record zero latency, got n=%d sum=%v",
			g.LatencySec.N(), g.LatencySec.Sum())
	}
}
