package mesh

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

// lossyPair builds two nodes with a lossy link at the range edge.
func lossyPair(t *testing.T, lossBase float64, seed int64) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(seed)
	terr := geo.NewOpenTerrain(1000, 1000)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 100
	for i := 0; i < 2; i++ {
		a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
			Mobility: &geo.Static{P: geo.Point{X: float64(i) * 95, Y: 500}}}
		a.Energy = caps.EnergyCap
		pop.Add(a)
	}
	cfg := DefaultConfig()
	cfg.StepMobility = false
	cfg.LossBase = lossBase
	return eng, New(eng, pop, terr, cfg)
}

func TestReliableDeliversOverLossyLink(t *testing.T) {
	eng, net := lossyPair(t, 0.6, 1) // ~54% per-hop loss at this distance
	r := NewReliable(eng, net)
	r.MaxRetries = 15 // round-trip success is ~0.21 per attempt here
	delivered := 0
	r.Register(1, func(m Message) {
		if m.Kind != "order" {
			t.Errorf("delivered kind = %q", m.Kind)
		}
		delivered++
	})
	acked, failed := 0, 0
	const total = 50
	for i := 0; i < total; i++ {
		r.Send(Message{From: 0, To: 1, Size: 100, Kind: "order"},
			func() { acked++ }, func() { failed++ })
	}
	_ = eng.Run(20 * time.Minute)
	if acked < total*9/10 {
		t.Errorf("acked %d of %d over lossy link; ARQ should recover most", acked, total)
	}
	// Delivery can exceed acks (data arrived, every ACK lost) but never
	// lag them.
	if delivered < acked {
		t.Errorf("delivered %d < acked %d", delivered, acked)
	}
	if acked+failed != total {
		t.Errorf("acked %d + failed %d != %d", acked, failed, total)
	}
	// Retries actually happened.
	if r.Attempts.Value() <= uint64(total) {
		t.Errorf("attempts = %d; expected retransmissions", r.Attempts.Value())
	}
	if int(r.Acked.Value()) != acked || int(r.Exhausted.Value()) != failed {
		t.Error("counters disagree with callbacks")
	}
}

func TestReliableNoDuplicateDelivery(t *testing.T) {
	// Perfect link: every retry would duplicate without suppression;
	// force a retry by making the timeout shorter than the RTT.
	eng, net := lossyPair(t, 0, 2)
	r := NewReliable(eng, net)
	r.Timeout = time.Millisecond // well under the ~10ms round trip
	delivered := 0
	r.Register(1, func(Message) { delivered++ })
	r.Send(Message{From: 0, To: 1, Size: 100, Kind: "x"}, nil, nil)
	_ = eng.Run(time.Minute)
	if delivered != 1 {
		t.Errorf("delivered %d times, want exactly once", delivered)
	}
	if r.Attempts.Value() < 2 {
		t.Errorf("attempts = %d; the short timeout should have retried", r.Attempts.Value())
	}
}

func TestReliableExhaustsOnPartition(t *testing.T) {
	eng, net := lossyPair(t, 0, 3)
	r := NewReliable(eng, net)
	r.MaxRetries = 2
	r.Register(1, func(Message) {})
	// Jam everything: no frame gets through.
	net.SetJamming(func(geo.Point) float64 { return 1 })
	net.Refresh()
	failed := false
	r.Send(Message{From: 0, To: 1, Size: 10, Kind: "x"}, nil, func() { failed = true })
	_ = eng.Run(time.Minute)
	if !failed {
		t.Error("retry budget exhaustion not reported")
	}
	if r.Exhausted.Value() != 1 {
		t.Errorf("Exhausted = %d", r.Exhausted.Value())
	}
}

func TestReliablePassesPlainTraffic(t *testing.T) {
	eng, net := lossyPair(t, 0, 4)
	r := NewReliable(eng, net)
	got := ""
	r.Register(1, func(m Message) { got = m.Kind })
	// A plain (non-ARQ) message sent directly still reaches the handler.
	mustSend(t, net, Message{From: 0, To: 1, Size: 10, Kind: "plain"})
	_ = eng.Run(time.Minute)
	if got != "plain" {
		t.Errorf("plain traffic kind = %q", got)
	}
}

func TestReliableDuplicateAckAfterCompletion(t *testing.T) {
	eng, net := lossyPair(t, 0, 5)
	r := NewReliable(eng, net)
	acked := 0
	r.Register(1, func(Message) {})
	r.Send(Message{From: 0, To: 1, Size: 10, Kind: "x"}, func() { acked++ }, nil)
	_ = eng.Run(time.Minute)
	if acked != 1 || r.Acked.Value() != 1 {
		t.Fatalf("acked=%d counter=%d before duplicate", acked, r.Acked.Value())
	}
	// Replay the ACK frame for the completed exchange (seq 0): it must
	// be ignored, not double-counted.
	r.onReceive(0, Message{From: 1, To: 0, Kind: "rel:0:ack"})
	if acked != 1 || r.Acked.Value() != 1 {
		t.Errorf("duplicate ACK double-counted: acked=%d counter=%d", acked, r.Acked.Value())
	}
	if r.LateAcks.Value() != 1 {
		t.Errorf("LateAcks = %d, want 1", r.LateAcks.Value())
	}
}

func TestReliableExhaustionThenLateAck(t *testing.T) {
	eng, net := lossyPair(t, 0, 6)
	r := NewReliable(eng, net)
	r.MaxRetries = 2
	r.Timeout = 100 * time.Millisecond
	r.Register(1, func(Message) {})
	// Full partition: nothing gets through.
	net.SetJamming(func(geo.Point) float64 { return 1 })
	net.Refresh()
	acked, failed := 0, 0
	r.Send(Message{From: 0, To: 1, Size: 10, Kind: "x"}, func() { acked++ }, func() { failed++ })
	_ = eng.Run(time.Minute)
	if failed != 1 || r.Exhausted.Value() != 1 {
		t.Fatalf("failed=%d Exhausted=%d, want 1/1", failed, r.Exhausted.Value())
	}
	// An ACK straggling in after Exhausted fired must not resurrect the
	// exchange, fire onAck, or disturb the counters.
	r.onReceive(0, Message{From: 1, To: 0, Kind: "rel:0:ack"})
	if acked != 0 {
		t.Error("late ACK resurrected a dead exchange")
	}
	if r.Acked.Value() != 0 || r.Exhausted.Value() != 1 {
		t.Errorf("late ACK disturbed counters: acked=%d exhausted=%d",
			r.Acked.Value(), r.Exhausted.Value())
	}
	if r.LateAcks.Value() != 1 {
		t.Errorf("LateAcks = %d, want 1", r.LateAcks.Value())
	}
}

func TestReliableExponentialBackoff(t *testing.T) {
	eng, net := lossyPair(t, 0, 7)
	r := NewReliable(eng, net)
	r.MaxRetries = 4
	r.Timeout = time.Second
	r.Register(1, func(Message) {})
	net.SetJamming(func(geo.Point) float64 { return 1 })
	net.Refresh()
	var failedAt time.Duration
	r.Send(Message{From: 0, To: 1, Size: 10, Kind: "x"}, nil, func() { failedAt = eng.Now() })
	_ = eng.Run(5 * time.Minute)
	// Five attempts with doubling timeouts: ~1+2+4+8+16 = 31s (±10%
	// jitter). A fixed 1s timeout would exhaust at ~5s.
	if failedAt < 20*time.Second {
		t.Errorf("exhausted at %v; backoff should space retries out past 20s", failedAt)
	}
	if failedAt > 45*time.Second {
		t.Errorf("exhausted at %v; backoff overshot the ~31s expectation", failedAt)
	}
}

func TestReliableAdaptiveRTO(t *testing.T) {
	eng, net := lossyPair(t, 0, 8)
	r := NewReliable(eng, net)
	r.Register(1, func(Message) {})
	if r.RTO() != r.Timeout {
		t.Fatalf("pre-sample RTO = %v, want initial Timeout %v", r.RTO(), r.Timeout)
	}
	for i := 0; i < 5; i++ {
		r.Send(Message{From: 0, To: 1, Size: 100, Kind: "x"}, nil, nil)
	}
	_ = eng.Run(time.Minute)
	if r.SRTT() <= 0 {
		t.Fatal("no RTT samples on a clean link")
	}
	// The adaptive RTO must have pulled far below the 2s initial value
	// toward the ~10ms observed RTT (floored at MinTimeout).
	if rto := r.RTO(); rto >= r.Timeout/2 {
		t.Errorf("RTO = %v did not adapt down from %v (SRTT %v)", rto, r.Timeout, r.SRTT())
	}
	if rto := r.RTO(); rto < r.MinTimeout {
		t.Errorf("RTO = %v below floor %v", rto, r.MinTimeout)
	}
}

func TestSplitRel(t *testing.T) {
	if seq, rest, ok := splitRel("rel:17:order"); !ok || seq != 17 || rest != "order" {
		t.Errorf("splitRel = %d %q %v", seq, rest, ok)
	}
	for _, bad := range []string{"order", "rel:", "rel:xx:ack", "rel:5"} {
		if _, _, ok := splitRel(bad); ok {
			t.Errorf("splitRel(%q) accepted", bad)
		}
	}
}
