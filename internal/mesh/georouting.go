package mesh

// RouteGeo computes a route by greedy geographic forwarding: each hop
// relays to the neighbor strictly closest to the destination's physical
// position. It needs no global topology knowledge — per-hop cost is
// O(degree) instead of BFS's O(V+E) — which is why position-based
// routing is the classic choice for infrastructure-less battlefield
// meshes. The trade-off is completeness: greedy forwarding strands at a
// local minimum ("void") where no neighbor improves on the current
// node; RouteGeo then returns nil and callers fall back to Route.
//
// The returned path includes both endpoints.
func (n *Network) RouteGeo(src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	target := n.pop.Get(dst)
	if target == nil || !target.Alive() {
		return nil
	}
	goal := target.Pos()

	path := []NodeID{src}
	visited := map[NodeID]bool{src: true}
	cur := src
	curAsset := n.pop.Get(cur)
	if curAsset == nil || !curAsset.Alive() {
		return nil
	}
	curDist := curAsset.Pos().Dist(goal)

	for hops := 0; hops < n.cfg.MaxHops; hops++ {
		best := NodeID(-1)
		bestDist := curDist
		for _, nb := range n.neighbors[cur] {
			if visited[nb] {
				continue
			}
			a := n.pop.Get(nb)
			if a == nil || !a.Alive() {
				continue
			}
			if d := a.Pos().Dist(goal); d < bestDist {
				best, bestDist = nb, d
			}
		}
		if best < 0 {
			return nil // void: no strictly closer neighbor
		}
		path = append(path, best)
		visited[best] = true
		if best == dst {
			return path
		}
		cur, curDist = best, bestDist
	}
	return nil
}

// SendGeo routes msg with greedy geographic forwarding, falling back to
// shortest-path routing when greedy strands. It returns ErrNoRoute when
// both fail.
func (n *Network) SendGeo(msg Message) error {
	n.Sent.Inc()
	src := n.pop.Get(msg.From)
	if src == nil || !src.Alive() || !src.Online {
		n.Dropped.Inc()
		return ErrDeadNode
	}
	path := n.RouteGeo(msg.From, msg.To)
	if path == nil {
		path = n.Route(msg.From, msg.To)
	}
	if path == nil {
		n.NoRoute.Inc()
		return ErrNoRoute
	}
	msg.Sent = n.eng.Now()
	n.inFlight++
	n.forward(msg, path, 0)
	return nil
}
