package mesh

import (
	"slices"
	"sort"
)

// Route returns the current shortest path (in hops) from src to dst,
// including both endpoints, or nil if dst is unreachable. Paths are
// cached per (src,dst) and invalidated by topology changes.
func (n *Network) Route(src, dst NodeID) []NodeID {
	if src == dst {
		return []NodeID{src}
	}
	key := [2]NodeID{src, dst}
	if e, ok := n.routes[key]; ok && e.version == n.version {
		return e.path
	}
	path := n.bfs(src, dst)
	n.routes[key] = routeEntry{path: path, version: n.version}
	return path
}

// Reachable reports whether dst is reachable from src over the current
// topology.
func (n *Network) Reachable(src, dst NodeID) bool {
	return n.Route(src, dst) != nil
}

// bfs runs breadth-first search over the neighbor table. Neighbor order
// is deterministic, so returned paths are deterministic too.
func (n *Network) bfs(src, dst NodeID) []NodeID {
	if _, ok := n.neighbors[src]; !ok {
		return nil
	}
	prev := map[NodeID]NodeID{src: src}
	frontier := []NodeID{src}
	depth := 0
	for len(frontier) > 0 && depth < n.cfg.MaxHops {
		var next []NodeID
		for _, u := range frontier {
			for _, v := range n.neighbors[u] {
				if _, seen := prev[v]; seen {
					continue
				}
				prev[v] = u
				if v == dst {
					return buildPath(prev, src, dst)
				}
				next = append(next, v)
			}
		}
		frontier = next
		depth++
	}
	return nil
}

func buildPath(prev map[NodeID]NodeID, src, dst NodeID) []NodeID {
	var rev []NodeID
	for at := dst; ; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	out := make([]NodeID, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// Component returns all nodes reachable from src (including src),
// in ascending ID order.
func (n *Network) Component(src NodeID) []NodeID {
	if _, ok := n.neighbors[src]; !ok {
		return []NodeID{src}
	}
	seen := map[NodeID]bool{src: true}
	stack := []NodeID{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range n.neighbors[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	out := make([]NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sortNodeIDs(out)
	return out
}

// Components returns every connected component with at least minSize
// nodes, largest first.
func (n *Network) Components(minSize int) [][]NodeID {
	seen := make(map[NodeID]bool, len(n.neighbors))
	var comps [][]NodeID
	ids := n.Nodes()
	for _, id := range ids {
		if seen[id] {
			continue
		}
		comp := n.Component(id)
		for _, v := range comp {
			seen[v] = true
		}
		if len(comp) >= minSize {
			comps = append(comps, comp)
		}
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

func sortNodeIDs(s []NodeID) {
	// slices.Sort, not sort.Slice: the latter allocates a closure and a
	// reflect swapper per call, and this runs per relayed frame.
	slices.Sort(s)
}
