package mesh

// ShardNet is the dissemination model for the sharded simulation core.
// The classic Network/Gossip stack is bound to the sequential
// sim.Engine: handlers freely read each other's state, which a parallel
// engine cannot allow. ShardNet re-expresses dissemination in the
// sharded discipline instead:
//
//   - every radio node is one sim.Sharded actor, and node state is
//     touched only by that node's events;
//   - node positions are pure functions of (node, time) — precomputed
//     bounded oscillations around a home point — so link state needs no
//     cross-actor reads and cannot depend on event interleaving;
//   - all model randomness draws from per-node streams, never shared or
//     per-shard ones.
//
// Under those rules the same seed yields a byte-identical final state
// for any shard count, which is exactly what the differential tests and
// the E18 scaling experiment verify.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"iobt/internal/geo"
	"iobt/internal/sim"
)

// Dissemination modes for RunShardScenario.
const (
	// ShardModeGossip is fanout rumor mongering with TTL and optional
	// push anti-entropy — the sharded analogue of the Gossip overlay.
	ShardModeGossip = "gossip"
	// ShardModeBFS is the idealized link-state flooding baseline: every
	// publish reaches the origin's connected component along shortest
	// hop paths, one delivery event per destination.
	ShardModeBFS = "bfs"
)

// ShardScenario configures one sharded dissemination run. The zero
// value of most fields picks a sensible default; Nodes is required.
type ShardScenario struct {
	// Nodes is the radio population size (required, >= 2).
	Nodes int
	// Area is the battlefield bounds (default scales with sqrt(Nodes)
	// to hold density roughly constant).
	Area geo.Rect
	// Radio is the link range in meters (default 130).
	Radio float64
	// Drift is the mobility amplitude: each node oscillates within
	// Drift meters of its home point (default 25).
	Drift float64

	// Mode selects the dissemination protocol (default ShardModeGossip).
	Mode string
	// Fanout and TTL parameterize gossip relaying (defaults 3 and 8).
	Fanout int
	TTL    int
	// AntiEntropyEvery is the push-repair cadence; zero disables
	// anti-entropy (pure rumor mongering).
	AntiEntropyEvery time.Duration
	// HopLatency is the per-hop propagation delay (default 120ms; the
	// engine lookahead clamps it up if smaller).
	HopLatency time.Duration

	// Publishers is how many nodes publish (default max(1, Nodes/64)),
	// spread by a deterministic stride over the ID space.
	Publishers int
	// PublishEvery is the per-publisher cadence (default 5s) and
	// PublishUntil the last publish time (default Horizon - 30s).
	PublishEvery time.Duration
	PublishUntil time.Duration
	// Horizon is the virtual run length (default 240s).
	Horizon time.Duration
	// MobilityEvery is the cadence of shard-migration ticks following
	// node drift (default 4s; negative disables them).
	MobilityEvery time.Duration

	// KillFrac of nodes fail permanently at KillAt (zero disables).
	KillAt   time.Duration
	KillFrac float64
	// JamZone attenuates links touching it by JamIntensity during
	// [JamFrom, JamTo).
	JamFrom, JamTo time.Duration
	JamZone        geo.Rect
	JamIntensity   float64
	// Links crossing the vertical midline are cut during
	// [PartitionAt, HealAt) (zero PartitionAt disables).
	PartitionAt, HealAt time.Duration

	// Payload, when set, produces the opaque application bytes carried
	// by each publish. OnDeliver observes every first-time delivery.
	// Both run on the shard that owns the node, so they must touch only
	// per-node state (e.g. node-indexed COP pictures).
	Payload   func(origin NodeID, seq uint64, at time.Duration) []byte
	OnDeliver func(node NodeID, key GossipKey, data []byte, at time.Duration)
}

func (sc ShardScenario) withDefaults() ShardScenario {
	if sc.Area.Width() <= 0 || sc.Area.Height() <= 0 {
		side := 400 * math.Sqrt(float64(sc.Nodes)/25)
		sc.Area = geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1.5 * side, Y: side})
	}
	if sc.Radio <= 0 {
		sc.Radio = 130
	}
	if sc.Drift < 0 {
		sc.Drift = 0
	} else if sc.Drift == 0 {
		sc.Drift = 25
	}
	if sc.Mode == "" {
		sc.Mode = ShardModeGossip
	}
	if sc.Fanout <= 0 {
		sc.Fanout = 3
	}
	if sc.TTL <= 0 {
		sc.TTL = 8
	}
	if sc.HopLatency <= 0 {
		sc.HopLatency = 120 * time.Millisecond
	}
	if sc.Horizon <= 0 {
		sc.Horizon = 240 * time.Second
	}
	if sc.Publishers <= 0 {
		sc.Publishers = sc.Nodes / 64
		if sc.Publishers < 1 {
			sc.Publishers = 1
		}
	}
	if sc.Publishers > sc.Nodes {
		sc.Publishers = sc.Nodes
	}
	if sc.PublishEvery <= 0 {
		sc.PublishEvery = 5 * time.Second
	}
	if sc.PublishUntil <= 0 {
		sc.PublishUntil = sc.Horizon - 30*time.Second
		if sc.PublishUntil < 0 {
			sc.PublishUntil = sc.Horizon / 2
		}
	}
	if sc.MobilityEvery == 0 {
		sc.MobilityEvery = 4 * time.Second
	}
	return sc
}

// ShardResult aggregates one sharded dissemination run. Every field is
// derived from per-node state folded in ID order, so for a fixed seed
// and scenario it is identical across shard counts — Digest is the
// byte-level witness the differential tests compare.
type ShardResult struct {
	Mode   string
	Shards int
	Nodes  int

	Published   uint64
	Delivered   uint64 // first-time deliveries at non-origin nodes
	Duplicates  uint64
	Relays      uint64
	Repairs     uint64 // deliveries via anti-entropy push
	DroppedDead uint64 // frames arriving at failed nodes

	// DeliveryRatio is the mean over published payloads of the fraction
	// of end-of-run live nodes holding it.
	DeliveryRatio float64
	// Events is the total number of simulation events executed.
	Events uint64
	// ClampedSends counts Send delays the engine raised to the Lookahead
	// floor. It is shard-count invariant (clamping is a pure function of
	// the model's stated delay) and belongs in every fingerprint: a
	// drifting value means the model's latencies changed meaning.
	ClampedSends uint64
	// Violations lists conservation-law breaches (empty on a healthy
	// run; the E18 gate requires exactly zero).
	Violations []string
	// Digest folds all per-node model state in ID order.
	Digest uint64
}

// shardNode is one radio node's state, owned by its actor: only events
// executing on the node mutate it — enforced by the shardown analyzer.
//
//iobt:actor-state
type shardNode struct {
	id   NodeID
	rng  *sim.RNG
	home geo.Point
	// Oscillation parameters: pos(t) = home + (ax sin(wx t + px),
	// ay sin(wy t + py)), amplitudes bounded by Drift.
	ax, ay, wx, wy, px, py float64
	killAt                 time.Duration // 0 = never fails

	publisher bool
	pubSeq    uint64

	holds map[GossipKey][]byte

	// peerBuf/candBuf back the node's own link-state queries (relay,
	// anti-entropy). They are actor-state like everything else here:
	// only this node's events touch them, so reuse is race-free. The
	// BFS flood walks *other* nodes' link state and must not borrow
	// these — it keeps its own scratch.
	peerBuf []NodeID
	candBuf []int32

	// Tick closures are built once at setup and rescheduled by value;
	// re-invoking the maker every tick allocated a fresh closure per
	// node per cadence.
	pubFn, aeFn, mobFn func(*sim.ShardCtx)

	selfHeld, delivered, duplicates, relays, repairs, dropped uint64
}

// shardRun carries the immutable run context shared by all events: the
// node table, the pure link-state parameters, and the fault schedule.
// Everything here is written once at setup and only read during the
// run, so workers share it safely — the gocapture analyzer lets event
// closures capture it on the strength of this annotation.
//
//iobt:frozen
type shardRun struct {
	sc    ShardScenario
	nodes []*shardNode
	grid  *geo.Grid
	sm    *geo.ShardMap
	reach float64 // candidate radius: Radio + 2*Drift
	mid   float64 // partition midline
}

func (r *shardRun) pos(id NodeID, t time.Duration) geo.Point {
	n := r.nodes[id]
	ts := t.Seconds()
	return geo.Point{
		X: n.home.X + n.ax*math.Sin(n.wx*ts+n.px),
		Y: n.home.Y + n.ay*math.Sin(n.wy*ts+n.py),
	}
}

func (r *shardRun) alive(id NodeID, t time.Duration) bool {
	k := r.nodes[id].killAt
	return k == 0 || t < k
}

// linked is the pure link-state predicate: it reads only setup-time
// constants and the clock, never mutable node state.
func (r *shardRun) linked(a, b NodeID, t time.Duration) bool {
	if a == b || !r.alive(a, t) || !r.alive(b, t) {
		return false
	}
	pa, pb := r.pos(a, t), r.pos(b, t)
	if r.sc.PartitionAt > 0 && t >= r.sc.PartitionAt && t < r.sc.HealAt {
		if (pa.X < r.mid) != (pb.X < r.mid) {
			return false
		}
	}
	rng := r.sc.Radio
	if r.sc.JamIntensity > 0 && t >= r.sc.JamFrom && t < r.sc.JamTo {
		if r.sc.JamZone.Contains(pa) || r.sc.JamZone.Contains(pb) {
			rng *= 1 - r.sc.JamIntensity
		}
	}
	return pa.Dist(pb) <= rng
}

// peers returns the nodes linked to id at time t, ascending by ID. The
// candidate set comes from a static spatial hash over home positions
// with the drift-padded radius, so the scan is local, not O(N). Both
// scratch slices are reused through the returned pair — callers on the
// hot path thread the owning node's buffers, the BFS flood its own.
func (r *shardRun) peers(dst []NodeID, cand []int32, id NodeID, t time.Duration) ([]NodeID, []int32) {
	dst = dst[:0]
	cand = r.grid.Near(cand[:0], r.pos(id, t), r.reach)
	for _, c := range cand {
		nb := NodeID(c)
		if nb != id && r.linked(id, nb, t) {
			dst = append(dst, nb)
		}
	}
	sortNodeIDs(dst)
	return dst, cand
}

// RunShardScenario executes one dissemination scenario on a sharded
// engine with the given shard count. The shard count is a pure
// performance knob: for a fixed seed and scenario the returned result —
// including Digest — is identical for every shards value.
func RunShardScenario(seed int64, shards int, sc ShardScenario) (*ShardResult, error) {
	sc = sc.withDefaults()
	if sc.Nodes < 2 {
		return nil, fmt.Errorf("mesh: shard scenario needs at least 2 nodes, got %d", sc.Nodes)
	}
	if sc.Mode != ShardModeGossip && sc.Mode != ShardModeBFS {
		return nil, fmt.Errorf("mesh: unknown shard scenario mode %q", sc.Mode)
	}
	if shards < 1 {
		shards = 1
	}

	eng := sim.NewSharded(seed, sim.ShardedConfig{Shards: shards, Lookahead: 100 * time.Millisecond})
	run := &shardRun{
		sc:    sc,
		nodes: make([]*shardNode, sc.Nodes),
		grid:  geo.NewGrid(sc.Area, sc.Radio+2*sc.Drift),
		sm:    geo.NewShardMap(sc.Area, shards),
		reach: sc.Radio + 2*sc.Drift,
		mid:   sc.Area.Min.X + sc.Area.Width()/2,
	}

	// Field layout and fault assignment from setup streams, drawn in ID
	// order — shard-count independent by construction.
	field := eng.Stream("shardnet/field")
	kills := eng.Stream("shardnet/kill")
	stride := sc.Nodes / sc.Publishers
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < sc.Nodes; i++ {
		n := &shardNode{
			id:    NodeID(i),
			rng:   eng.Stream(fmt.Sprintf("shardnet/node/%d", i)),
			holds: make(map[GossipKey][]byte),
		}
		n.home = geo.Point{
			X: field.Uniform(sc.Area.Min.X, sc.Area.Max.X),
			Y: field.Uniform(sc.Area.Min.Y, sc.Area.Max.Y),
		}
		n.ax = field.Uniform(0, sc.Drift)
		n.ay = field.Uniform(0, sc.Drift)
		n.wx = field.Uniform(0.05, 0.4)
		n.wy = field.Uniform(0.05, 0.4)
		n.px = field.Uniform(0, 2*math.Pi)
		n.py = field.Uniform(0, 2*math.Pi)
		if sc.KillFrac > 0 && sc.KillAt > 0 && kills.Bool(sc.KillFrac) {
			n.killAt = sc.KillAt
		}
		n.publisher = i%stride == 0 && uint64(i/stride) < uint64(sc.Publishers)
		run.nodes[i] = n
		run.grid.Insert(int32(i), n.home)
		eng.AddActor(sim.ActorID(i), run.sm.ShardOf(n.home))
	}

	for i := 0; i < sc.Nodes; i++ {
		n := run.nodes[i]
		if n.publisher {
			n.pubFn = run.publishTick(n)
			first := time.Second + time.Duration(n.rng.Intn(int(sc.PublishEvery/time.Millisecond)))*time.Millisecond
			eng.ScheduleActor(sim.ActorID(i), first, "publish", n.pubFn)
		}
		if sc.AntiEntropyEvery > 0 && sc.Mode == ShardModeGossip {
			n.aeFn = run.antiEntropyTick(n)
			phase := time.Duration(n.rng.Intn(int(sc.AntiEntropyEvery/time.Millisecond))) * time.Millisecond
			eng.ScheduleActor(sim.ActorID(i), sc.AntiEntropyEvery+phase, "anti-entropy", n.aeFn)
		}
		// Mobility ticks run at EVERY shard count (a 1-shard Migrate is a
		// no-op): gating them on shards > 1 would skew both the per-node
		// stream (the phase draw below) and the processed-event count,
		// breaking shard-count invariance.
		if sc.MobilityEvery > 0 {
			n.mobFn = run.mobilityTick(n)
			phase := time.Duration(n.rng.Intn(int(sc.MobilityEvery/time.Millisecond))) * time.Millisecond
			eng.ScheduleActor(sim.ActorID(i), sc.MobilityEvery+phase, "mobility", n.mobFn)
		}
	}

	if err := eng.Run(sc.Horizon); err != nil {
		return nil, err
	}
	return run.collect(eng, shards), nil
}

// publishTick publishes one payload and reschedules until PublishUntil.
func (r *shardRun) publishTick(n *shardNode) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		now := c.Now()
		if !r.alive(n.id, now) {
			return
		}
		key := GossipKey{Origin: n.id, Seq: n.pubSeq}
		n.pubSeq++
		var data []byte
		if r.sc.Payload != nil {
			data = r.sc.Payload(n.id, key.Seq, now)
		}
		n.holds[key] = data
		n.selfHeld++
		switch r.sc.Mode {
		case ShardModeBFS:
			//iobt:allow gocapture payload bytes are written once at publish and read-only on every hop; sharing the backing array IS the radio broadcast model
			r.flood(c, n, key, data, now)
		default:
			//iobt:allow gocapture payload bytes are written once at publish and read-only on every hop; sharing the backing array IS the radio broadcast model
			r.relay(c, n, key, data, r.sc.TTL, n.id, now)
		}
		if next := now + r.sc.PublishEvery; next <= r.sc.PublishUntil {
			c.Schedule(r.sc.PublishEvery, "publish", n.pubFn)
		}
	}
}

// relay forwards key to up to Fanout linked peers, shuffled by the
// relaying node's own stream — per-node randomness keeps the draw
// sequence a function of the node's event order alone.
//
//iobt:hot
func (r *shardRun) relay(c *sim.ShardCtx, n *shardNode, key GossipKey, data []byte, ttl int, exclude NodeID, now time.Duration) {
	if ttl <= 0 {
		return
	}
	n.peerBuf, n.candBuf = r.peers(n.peerBuf, n.candBuf, n.id, now)
	peers := n.peerBuf
	if exclude != n.id {
		trimmed := peers[:0]
		for _, p := range peers {
			if p != exclude {
				trimmed = append(trimmed, p)
			}
		}
		peers = trimmed
	}
	if len(peers) == 0 {
		return
	}
	n.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if len(peers) > r.sc.Fanout {
		peers = peers[:r.sc.Fanout]
	}
	from := n.id
	for _, p := range peers {
		n.relays++
		jitter := time.Duration(n.rng.Exp(float64(20 * time.Millisecond)))
		//iobt:allow gocapture payload bytes are immutable after publish; every receiver stores the same backing array it would get from a codec round-trip
		c.Send(sim.ActorID(p), r.sc.HopLatency+jitter, "gossip.data", r.receive(key, data, ttl-1, from)) //iobt:allow hotalloc the receive closure is the message frame itself: one allocation per transmitted copy, exactly what a codec would cost
	}
}

// receive handles one data frame at its destination node.
func (r *shardRun) receive(key GossipKey, data []byte, ttl int, from NodeID) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		m := r.nodes[c.Self()]
		now := c.Now()
		if !r.alive(m.id, now) {
			m.dropped++
			return
		}
		if _, ok := m.holds[key]; ok {
			m.duplicates++
			return
		}
		m.holds[key] = data
		m.delivered++
		if r.sc.OnDeliver != nil {
			r.sc.OnDeliver(m.id, key, data, now)
		}
		if r.sc.Mode == ShardModeGossip {
			//iobt:allow gocapture payload bytes are immutable after publish; the relay hands on the same read-only array it received
			r.relay(c, m, key, data, ttl, from, now)
		}
	}
}

// flood is the BFS baseline: walk the origin's connected component over
// the pure link state at publish time and schedule one delivery per
// destination at hop-count latency — the cost model of an idealized
// link-state flood, one event per (publish, destination).
func (r *shardRun) flood(c *sim.ShardCtx, n *shardNode, key GossipKey, data []byte, now time.Duration) {
	type hop struct {
		id    NodeID
		depth int
	}
	seen := map[NodeID]bool{n.id: true}
	frontier := []hop{{n.id, 0}}
	var scratch []NodeID
	var cand []int32
	for len(frontier) > 0 {
		h := frontier[0]
		frontier = frontier[1:]
		scratch, cand = r.peers(scratch, cand, h.id, now)
		for _, p := range scratch {
			if seen[p] {
				continue
			}
			seen[p] = true
			d := h.depth + 1
			n.relays++
			//iobt:allow gocapture payload bytes are immutable after publish; the analytic flood shares the same read-only array on every edge
			c.Send(sim.ActorID(p), time.Duration(d)*r.sc.HopLatency, "bfs.data", r.receive(key, data, 0, n.id))
			frontier = append(frontier, hop{p, d})
		}
	}
}

// antiEntropyTick pushes the node's held keys to one random linked
// peer; the peer adopts what it lacks. Push-only repair keeps frames
// closed over per-node state.
func (r *shardRun) antiEntropyTick(n *shardNode) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		now := c.Now()
		if !r.alive(n.id, now) {
			return
		}
		if len(n.holds) > 0 {
			var peers []NodeID
			peers, n.candBuf = r.peers(n.peerBuf, n.candBuf, n.id, now)
			n.peerBuf = peers
			if len(peers) > 0 {
				target := peers[n.rng.Pick(len(peers))]
				keys := make([]GossipKey, 0, len(n.holds))
				for key := range n.holds {
					keys = append(keys, key)
				}
				sortGossipKeys(keys)
				snap := make([]GossipPayload, len(keys))
				for i, key := range keys {
					snap[i] = GossipPayload{Key: key, Data: n.holds[key]}
				}
				//iobt:allow gocapture snap is a fresh per-send snapshot never touched again by the sender; the payload arrays inside are publish-time immutable
				c.Send(sim.ActorID(target), r.sc.HopLatency, "gossip.sync", r.repairFrom(snap))
			}
		}
		if next := now + r.sc.AntiEntropyEvery; next <= r.sc.Horizon {
			c.Schedule(r.sc.AntiEntropyEvery, "anti-entropy", n.aeFn)
		}
	}
}

func (r *shardRun) repairFrom(snap []GossipPayload) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		m := r.nodes[c.Self()]
		now := c.Now()
		if !r.alive(m.id, now) {
			m.dropped++
			return
		}
		for _, p := range snap {
			if _, ok := m.holds[p.Key]; ok {
				continue
			}
			var data []byte
			if b, ok := p.Data.([]byte); ok {
				data = b
			}
			m.holds[p.Key] = data
			m.delivered++
			m.repairs++
			if r.sc.OnDeliver != nil {
				r.sc.OnDeliver(m.id, p.Key, data, now)
			}
		}
	}
}

// mobilityTick follows the node's drift across shard bands, staging a
// migration whenever the band changes — purely a placement decision,
// invisible to model state.
func (r *shardRun) mobilityTick(n *shardNode) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		now := c.Now()
		if !r.alive(n.id, now) {
			return
		}
		c.Migrate(r.sm.ShardOf(r.pos(n.id, now)))
		if next := now + r.sc.MobilityEvery; next <= r.sc.Horizon {
			c.Schedule(r.sc.MobilityEvery, "mobility", n.mobFn)
		}
	}
}

// collect folds per-node state into the result, checks the
// conservation laws, and computes the ID-ordered digest.
func (r *shardRun) collect(eng *sim.Sharded, shards int) *ShardResult {
	res := &ShardResult{Mode: r.sc.Mode, Shards: shards, Nodes: r.sc.Nodes, Events: eng.Processed(), ClampedSends: eng.ClampedSends()}

	pubSeq := make(map[NodeID]uint64)
	for _, n := range r.nodes {
		if n.publisher {
			pubSeq[n.id] = n.pubSeq
			res.Published += n.pubSeq
		}
	}
	aliveEnd := 0
	for _, n := range r.nodes {
		if r.alive(n.id, r.sc.Horizon) {
			aliveEnd++
		}
	}

	holders := make(map[GossipKey]uint64)
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	for _, n := range r.nodes {
		res.Delivered += n.delivered
		res.Duplicates += n.duplicates
		res.Relays += n.relays
		res.Repairs += n.repairs
		res.DroppedDead += n.dropped

		// Conservation law 1: held copies equal counted first-time
		// deliveries plus self-publishes — nothing held uncounted,
		// nothing counted unheld.
		if uint64(len(n.holds)) != n.delivered+n.selfHeld {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"node %d holds %d payloads but counted %d deliveries + %d publishes",
				n.id, len(n.holds), n.delivered, n.selfHeld))
		}
		keys := make([]GossipKey, 0, len(n.holds))
		for key := range n.holds {
			keys = append(keys, key)
		}
		sortGossipKeys(keys)
		w(uint64(n.id))
		w(uint64(len(keys)))
		w(n.delivered)
		w(n.duplicates)
		w(n.relays)
		w(n.repairs)
		w(n.dropped)
		for _, key := range keys {
			// Conservation law 2: every held payload traces to a publish.
			if seq, ok := pubSeq[key.Origin]; !ok || key.Seq >= seq {
				res.Violations = append(res.Violations, fmt.Sprintf(
					"node %d holds %v never published by %d", n.id, key, key.Origin))
			}
			holders[key]++
			w(uint64(key.Origin))
			w(key.Seq)
		}
	}
	// Conservation law 3: deliveries cannot exceed publishes × nodes.
	if max := res.Published * uint64(r.sc.Nodes); res.Delivered > max {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"%d deliveries exceed %d published × %d nodes", res.Delivered, res.Published, r.sc.Nodes))
	}
	if res.Published > 0 && aliveEnd > 0 {
		var sum float64
		for _, cnt := range holders {
			sum += float64(cnt) / float64(aliveEnd)
		}
		res.DeliveryRatio = sum / float64(res.Published)
	}
	res.Digest = h.Sum64()
	return res
}
