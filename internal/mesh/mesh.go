// Package mesh simulates the wireless network that connects IoBT assets:
// range- and terrain-dependent links, topology dynamics under mobility
// and churn, jamming, per-hop loss and latency, bandwidth queueing, and
// multi-hop routing.
//
// The paper (§II) requires forward-deployed networks of disadvantaged
// assets with "limitations on energy, power, storage, and bandwidth" and
// no fixed infrastructure; mesh is that substrate.
package mesh

import (
	"fmt"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

// NodeID aliases asset.ID: network endpoints are assets.
type NodeID = asset.ID

// Config parameterizes the radio and protocol model.
type Config struct {
	// NeighborRefresh is the cadence of topology recomputation (and
	// mobility stepping if StepMobility is set). Zero defaults to 1s.
	NeighborRefresh time.Duration
	// StepMobility makes the network advance asset mobility on each
	// refresh tick.
	StepMobility bool
	// DrainIdle makes the refresh tick also charge idle energy (scaled
	// by duty cycle), so battery-limited assets die over mission time.
	DrainIdle bool
	// BaseLatency is per-hop propagation plus processing delay.
	BaseLatency time.Duration
	// LossBase is the per-hop loss probability at the edge of radio
	// range (loss falls off quadratically closer in).
	LossBase float64
	// EnergyPerByte is the transmission energy cost in joules/byte.
	EnergyPerByte float64
	// QueueDrain controls bandwidth queueing: a node's backlog drains at
	// its Bandwidth (kb/s) and adds backlog/bandwidth delay to each hop.
	QueueDrain bool
	// MaxHops bounds route length; zero defaults to 64.
	MaxHops int
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		NeighborRefresh: time.Second,
		StepMobility:    true,
		BaseLatency:     5 * time.Millisecond,
		LossBase:        0.1,
		EnergyPerByte:   1e-6,
		QueueDrain:      true,
		MaxHops:         64,
	}
}

// Message is a unit of application data routed over the mesh.
type Message struct {
	From, To NodeID
	// Size is the payload size in bytes (affects queueing and energy).
	Size float64
	// Kind tags the message for handlers ("report", "cmd", "grad", ...).
	Kind string
	// Payload carries arbitrary application data.
	Payload any
	// Hops counts traversed links; filled in at delivery.
	Hops int
	// Sent is the virtual send time; filled in by Send.
	Sent time.Duration
	// Corrupted marks a frame mangled in flight by an injected fault;
	// its kind and payload are destroyed before delivery.
	Corrupted bool
}

// Handler consumes messages delivered to a node.
type Handler func(Message)

// Network is the simulated mesh.
type Network struct {
	eng  *sim.Engine
	pop  *asset.Population
	terr *geo.Terrain
	cfg  Config
	rng  *sim.RNG

	neighbors map[NodeID][]NodeID
	version   uint64
	routes    map[[2]NodeID]routeEntry
	handlers  map[NodeID]Handler
	backlog   map[NodeID]backlogState

	// jamming, when set, returns the jamming intensity [0,1] at a point;
	// links shrink by that factor. attack.Field provides this.
	jamming func(geo.Point) float64
	// linkFault, when set, reports whether the link between two
	// positions is severed by an injected fault (e.g. a partition).
	// internal/fault provides this.
	linkFault func(a, b geo.Point) bool
	// hopFault, when set, is consulted once per hop and may drop,
	// corrupt, or delay the frame. internal/fault provides this.
	hopFault func(*Message) HopEffect

	ticker *sim.Ticker

	// Metrics. Every message accepted by Send/SendDirect/SendGeo (and
	// each per-neighbor copy fanned out by Broadcast) increments Sent
	// and reaches exactly one terminal counter — Delivered, Dropped, or
	// NoRoute — unless it is still traversing hops (InFlight). The
	// conservation law Delivered+Dropped+NoRoute+InFlight == Sent is
	// checked continuously by the chaos and failover tests; see
	// CheckConservation.
	Delivered  sim.Counter
	Sent       sim.Counter
	Dropped    sim.Counter
	NoRoute    sim.Counter
	Corrupted  sim.Counter
	LatencySec sim.Series
	HopCount   sim.Series

	inFlight int
}

// InFlight returns the number of messages currently traversing hops
// (accepted for forwarding but not yet delivered or dropped).
func (n *Network) InFlight() int { return n.inFlight }

// CheckConservation verifies the message conservation law:
//
//	Delivered + Dropped + NoRoute + InFlight == Sent
//
// Nothing the network accepts may vanish without a terminal account —
// not across jamming, kill waves, or a command-post crash/restore. The
// fault harness runs this as a continuous invariant.
func (n *Network) CheckConservation() error {
	accounted := n.Delivered.Value() + n.Dropped.Value() + n.NoRoute.Value() + uint64(n.inFlight)
	if accounted != n.Sent.Value() {
		return fmt.Errorf("mesh: conservation violated: delivered %d + dropped %d + noroute %d + inflight %d = %d != sent %d",
			n.Delivered.Value(), n.Dropped.Value(), n.NoRoute.Value(), n.inFlight, accounted, n.Sent.Value())
	}
	return nil
}

// HopEffect is a per-hop fault verdict returned by the hop-fault hook.
type HopEffect struct {
	// Drop discards the frame at this hop.
	Drop bool
	// Corrupt marks the frame corrupted: it is still delivered, but with
	// its kind and payload destroyed, so handlers must tolerate garbage.
	Corrupt bool
	// Delay adds extra latency to this hop.
	Delay time.Duration
}

type routeEntry struct {
	path    []NodeID
	version uint64
}

type backlogState struct {
	bytes float64
	asOf  time.Duration
}

// New builds a network over pop on terr, driven by eng. Call Start to
// begin topology maintenance.
func New(eng *sim.Engine, pop *asset.Population, terr *geo.Terrain, cfg Config) *Network {
	if cfg.NeighborRefresh <= 0 {
		cfg.NeighborRefresh = time.Second
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 64
	}
	n := &Network{
		eng:       eng,
		pop:       pop,
		terr:      terr,
		cfg:       cfg,
		rng:       eng.Stream("mesh"),
		neighbors: make(map[NodeID][]NodeID),
		routes:    make(map[[2]NodeID]routeEntry),
		handlers:  make(map[NodeID]Handler),
		backlog:   make(map[NodeID]backlogState),
	}
	n.Refresh()
	return n
}

// SetJamming installs the jamming intensity field. Passing nil clears it.
func (n *Network) SetJamming(f func(geo.Point) float64) {
	n.jamming = f
	n.invalidate()
}

// SetLinkFault installs the link-severing fault hook. Passing nil
// clears it. Callers should Refresh after changing fault state so the
// neighbor table reflects the cut links.
func (n *Network) SetLinkFault(f func(a, b geo.Point) bool) {
	n.linkFault = f
	n.invalidate()
}

// SetHopFault installs the per-hop fault hook. Passing nil clears it.
func (n *Network) SetHopFault(f func(*Message) HopEffect) { n.hopFault = f }

// Start begins periodic topology refresh.
func (n *Network) Start() {
	if n.ticker != nil {
		return
	}
	n.ticker = n.eng.Every(n.cfg.NeighborRefresh, "mesh.refresh", func() {
		if n.cfg.StepMobility {
			n.pop.StepMobility(n.cfg.NeighborRefresh)
		}
		if n.cfg.DrainIdle {
			n.pop.StepEnergy(n.cfg.NeighborRefresh)
		}
		n.Refresh()
	})
}

// Stop halts topology maintenance.
func (n *Network) Stop() {
	if n.ticker != nil {
		n.ticker.Stop()
		n.ticker = nil
	}
}

// Version returns the topology version; it increments on every refresh
// and invalidation so callers can cache derived structures.
func (n *Network) Version() uint64 { return n.version }

func (n *Network) invalidate() {
	n.version++
	// Route entries are validated lazily against version.
}

// jamAt returns jamming intensity at p, in [0,1].
func (n *Network) jamAt(p geo.Point) float64 {
	if n.jamming == nil {
		return 0
	}
	v := n.jamming(p)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// linkRange returns the effective communication range between two
// assets, accounting for terrain clutter and jamming, or 0 if either
// node cannot link.
func (n *Network) linkRange(a, b *asset.Asset) float64 {
	if a == nil || b == nil || !a.Alive() || !b.Alive() || !a.Online || !b.Online {
		return 0
	}
	r := a.Caps.RadioRange
	if b.Caps.RadioRange < r {
		r = b.Caps.RadioRange
	}
	pa, pb := a.Pos(), b.Pos()
	r *= n.terr.RangeFactor(pa, pb)
	jam := n.jamAt(pa)
	if j := n.jamAt(pb); j > jam {
		jam = j
	}
	r *= 1 - jam
	if r > 0 && n.linkFault != nil && n.linkFault(pa, pb) {
		return 0
	}
	return r
}

// Linked reports whether a direct link exists between two nodes now.
func (n *Network) Linked(a, b NodeID) bool {
	aa, bb := n.pop.Get(a), n.pop.Get(b)
	if aa == nil || bb == nil {
		return false
	}
	r := n.linkRange(aa, bb)
	return r > 0 && aa.Pos().Dist(bb.Pos()) <= r
}

// Refresh recomputes the neighbor table from current positions.
func (n *Network) Refresh() {
	n.invalidate()
	for k := range n.neighbors {
		delete(n.neighbors, k)
	}
	var scratch []asset.ID
	for _, a := range n.pop.All() {
		if !a.Alive() || !a.Online {
			continue
		}
		scratch = scratch[:0]
		scratch = n.pop.Near(scratch, a.Pos(), a.Caps.RadioRange)
		var nbrs []NodeID
		for _, id := range scratch {
			if id == a.ID {
				continue
			}
			b := n.pop.Get(id)
			r := n.linkRange(a, b)
			if r > 0 && a.Pos().Dist(b.Pos()) <= r {
				nbrs = append(nbrs, id)
			}
		}
		if len(nbrs) > 0 {
			n.neighbors[a.ID] = nbrs
		}
	}
}

// Neighbors returns the current neighbor list of id. The returned slice
// is owned by the network; callers must not mutate it.
func (n *Network) Neighbors(id NodeID) []NodeID { return n.neighbors[id] }

// Nodes returns the IDs that currently have at least one link,
// in ascending order. Used by overlays (gossip, spanning tree).
func (n *Network) Nodes() []NodeID {
	out := make([]NodeID, 0, len(n.neighbors))
	for id := range n.neighbors {
		out = append(out, id)
	}
	sortNodeIDs(out)
	return out
}

// RegisterHandler sets the delivery callback for a node, replacing any
// previous handler.
func (n *Network) RegisterHandler(id NodeID, h Handler) { n.handlers[id] = h }

// Handler returns the currently registered delivery handler for id (nil
// when none). Overlays that take over a node's handler use it to chain
// the previous one rather than silently dropping its traffic.
func (n *Network) Handler(id NodeID) Handler { return n.handlers[id] }

// UnregisterHandler removes a node's handler.
func (n *Network) UnregisterHandler(id NodeID) { delete(n.handlers, id) }
