package mesh

import (
	"testing"
	"time"
)

// TestWindowSnapshotRequeueAndFail exercises the warm-failover window
// disposition: exchanges captured by the snapshot are requeued (with
// Readdress applied), exchanges begun after the cut fail loudly, and
// nothing vanishes from the terminal accounting.
func TestWindowSnapshotRequeueAndFail(t *testing.T) {
	eng, net := lossyPair(t, 0, 7)
	r := NewReliable(eng, net)
	r.Register(1, func(Message) {})

	// Two exchanges in flight at the cut. Pause delivery so they stay
	// unacknowledged while we snapshot.
	blocked := true
	net.SetHopFault(func(*Message) HopEffect { return HopEffect{Drop: blocked} })
	acked, failed := 0, 0
	for i := 0; i < 2; i++ {
		r.Send(Message{From: 0, To: 1, Size: 64, Kind: "order"},
			func() { acked++ }, func() { failed++ })
	}
	snap := r.Snapshot()
	if got := r.InflightCount(); got != 2 {
		t.Fatalf("inflight at snapshot = %d, want 2", got)
	}

	// A third exchange begins after the cut: the snapshot must not know
	// it, so Restore has to fail it.
	r.Send(Message{From: 0, To: 1, Size: 64, Kind: "late"},
		func() { acked++ }, func() { failed++ })

	readdressed := 0
	r.Readdress = func(m Message) Message { readdressed++; return m }
	if err := r.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if failed != 1 {
		t.Fatalf("post-cut exchange failed = %d, want 1", failed)
	}
	if readdressed != 2 {
		t.Fatalf("readdressed %d exchanges, want 2", readdressed)
	}
	if got := r.Requeued.Value(); got != 2 {
		t.Fatalf("Requeued = %d, want 2", got)
	}

	// Unblock the link; the requeued exchanges must complete.
	blocked = false
	_ = eng.Run(time.Minute)
	if acked != 2 {
		t.Fatalf("acked = %d, want 2 after requeue", acked)
	}
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFailInflightColdDisposition checks the cold path: every live
// exchange fails, firing onFail exactly once each.
func TestFailInflightColdDisposition(t *testing.T) {
	eng, net := lossyPair(t, 0, 8)
	r := NewReliable(eng, net)
	r.Register(1, func(Message) {})
	net.SetHopFault(func(*Message) HopEffect { return HopEffect{Drop: true} })
	failed := 0
	for i := 0; i < 3; i++ {
		r.Send(Message{From: 0, To: 1, Size: 64, Kind: "order"}, nil, func() { failed++ })
	}
	if n := r.FailInflight(); n != 3 {
		t.Fatalf("FailInflight = %d, want 3", n)
	}
	if failed != 3 {
		t.Fatalf("onFail fired %d times, want 3", failed)
	}
	if r.InflightCount() != 0 {
		t.Fatalf("inflight = %d after FailInflight", r.InflightCount())
	}
	_ = eng.Run(time.Minute)
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
