package mesh

import (
	"testing"
	"time"
)

// TestWindowSnapshotRequeueAndFail exercises the warm-failover window
// disposition: exchanges captured by the snapshot are requeued (with
// Readdress applied), exchanges begun after the cut fail loudly, and
// nothing vanishes from the terminal accounting.
func TestWindowSnapshotRequeueAndFail(t *testing.T) {
	eng, net := lossyPair(t, 0, 7)
	r := NewReliable(eng, net)
	r.Register(1, func(Message) {})

	// Two exchanges in flight at the cut. Pause delivery so they stay
	// unacknowledged while we snapshot.
	blocked := true
	net.SetHopFault(func(*Message) HopEffect { return HopEffect{Drop: blocked} })
	acked, failed := 0, 0
	for i := 0; i < 2; i++ {
		r.Send(Message{From: 0, To: 1, Size: 64, Kind: "order"},
			func() { acked++ }, func() { failed++ })
	}
	snap := r.Snapshot()
	if got := r.InflightCount(); got != 2 {
		t.Fatalf("inflight at snapshot = %d, want 2", got)
	}

	// A third exchange begins after the cut: the snapshot must not know
	// it, so Restore has to fail it.
	r.Send(Message{From: 0, To: 1, Size: 64, Kind: "late"},
		func() { acked++ }, func() { failed++ })

	readdressed := 0
	r.Readdress = func(m Message) Message { readdressed++; return m }
	if err := r.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if failed != 1 {
		t.Fatalf("post-cut exchange failed = %d, want 1", failed)
	}
	if readdressed != 2 {
		t.Fatalf("readdressed %d exchanges, want 2", readdressed)
	}
	if got := r.Requeued.Value(); got != 2 {
		t.Fatalf("Requeued = %d, want 2", got)
	}

	// Unblock the link; the requeued exchanges must complete.
	blocked = false
	_ = eng.Run(time.Minute)
	if acked != 2 {
		t.Fatalf("acked = %d, want 2 after requeue", acked)
	}
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestFailInflightColdDisposition checks the cold path: every live
// exchange fails, firing onFail exactly once each.
func TestFailInflightColdDisposition(t *testing.T) {
	eng, net := lossyPair(t, 0, 8)
	r := NewReliable(eng, net)
	r.Register(1, func(Message) {})
	net.SetHopFault(func(*Message) HopEffect { return HopEffect{Drop: true} })
	failed := 0
	for i := 0; i < 3; i++ {
		r.Send(Message{From: 0, To: 1, Size: 64, Kind: "order"}, nil, func() { failed++ })
	}
	if n := r.FailInflight(); n != 3 {
		t.Fatalf("FailInflight = %d, want 3", n)
	}
	if failed != 3 {
		t.Fatalf("onFail fired %d times, want 3", failed)
	}
	if r.InflightCount() != 0 {
		t.Fatalf("inflight = %d after FailInflight", r.InflightCount())
	}
	_ = eng.Run(time.Minute)
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestWindowEmptySnapshotDispositions covers the zero-capacity edges:
// an empty window snapshots and restores as a no-op, and restoring an
// empty snapshot onto a window with live exchanges fails every one of
// them — the snapshot knows no exchange, so they are all post-cut.
func TestWindowEmptySnapshotDispositions(t *testing.T) {
	eng, net := lossyPair(t, 0, 9)
	r := NewReliable(eng, net)
	r.Register(1, func(Message) {})

	empty := r.Snapshot()
	if err := r.Restore(empty); err != nil {
		t.Fatalf("Restore of empty snapshot on empty window: %v", err)
	}
	if n := r.FailInflight(); n != 0 {
		t.Fatalf("FailInflight on empty window = %d, want 0", n)
	}
	if err := r.Restore(nil); err == nil {
		t.Fatal("Restore accepted a nil buffer")
	}

	net.SetHopFault(func(*Message) HopEffect { return HopEffect{Drop: true} })
	failed := 0
	for i := 0; i < 3; i++ {
		r.Send(Message{From: 0, To: 1, Size: 64, Kind: "order"}, nil, func() { failed++ })
	}
	if err := r.Restore(empty); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if failed != 3 || r.InflightCount() != 0 {
		t.Fatalf("failed=%d inflight=%d, want 3/0 after empty-snapshot restore",
			failed, r.InflightCount())
	}
	if got := r.Requeued.Value(); got != 0 {
		t.Fatalf("Requeued = %d, want 0", got)
	}
	_ = eng.Run(time.Minute)
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestWindowTruncatedSnapshotRejected pins the decode guard: a snapshot
// cut short anywhere must be rejected with an error and must leave the
// live window untouched — no exchange failed, requeued, or lost.
func TestWindowTruncatedSnapshotRejected(t *testing.T) {
	eng, net := lossyPair(t, 0, 10)
	r := NewReliable(eng, net)
	r.Register(1, func(Message) {})
	net.SetHopFault(func(*Message) HopEffect { return HopEffect{Drop: true} })
	failed := 0
	for i := 0; i < 2; i++ {
		r.Send(Message{From: 0, To: 1, Size: 64, Kind: "order"}, nil, func() { failed++ })
	}
	snap := r.Snapshot()
	for cut := 1; cut < len(snap); cut += 7 {
		if err := r.Restore(snap[:len(snap)-cut]); err == nil {
			t.Fatalf("snapshot truncated by %d bytes accepted", cut)
		}
	}
	if r.InflightCount() != 2 || failed != 0 || r.Requeued.Value() != 0 {
		t.Fatalf("rejected restore disturbed the window: inflight=%d failed=%d requeued=%d",
			r.InflightCount(), failed, r.Requeued.Value())
	}
	_ = eng.Run(time.Minute)
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestWindowLateDuplicateAcksAfterRequeue covers the duplicate-seq
// edges: repeated restores requeue the same exchange without duplicating
// it, a late ACK from a pre-crash attempt still completes it (the seq
// survives the requeue), and the duplicate ACK that follows is counted
// as late and ignored rather than double-completing.
func TestWindowLateDuplicateAcksAfterRequeue(t *testing.T) {
	eng, net := lossyPair(t, 0, 11)
	r := NewReliable(eng, net)
	r.Register(1, func(Message) {})
	net.SetHopFault(func(*Message) HopEffect { return HopEffect{Drop: true} })
	acked := 0
	r.Send(Message{From: 0, To: 1, Size: 64, Kind: "order"}, func() { acked++ }, nil)
	snap := r.Snapshot()

	if err := r.Restore(snap); err != nil {
		t.Fatalf("first restore: %v", err)
	}
	if err := r.Restore(snap); err != nil {
		t.Fatalf("second restore: %v", err)
	}
	if got := r.Requeued.Value(); got != 2 {
		t.Fatalf("Requeued = %d, want 2 (one per restore)", got)
	}
	if r.InflightCount() != 1 {
		t.Fatalf("inflight = %d, want 1: requeue must not duplicate the exchange", r.InflightCount())
	}

	ack := Message{From: 1, To: 0, Size: 32, Kind: "rel:0:ack"}
	r.onReceive(0, ack)
	if acked != 1 || r.InflightCount() != 0 {
		t.Fatalf("acked=%d inflight=%d after late ACK, want 1/0", acked, r.InflightCount())
	}
	r.onReceive(0, ack)
	if acked != 1 {
		t.Fatalf("duplicate ACK double-completed the exchange: acked=%d", acked)
	}
	if got := r.LateAcks.Value(); got != 1 {
		t.Fatalf("LateAcks = %d, want 1", got)
	}
	_ = eng.Run(time.Minute)
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestWindowSnapshotDoesNotResurrectRetiredSeq covers seq reuse across
// a failover: a snapshot naming an exchange that exhausted its budget
// between the cut and the restore must not resurrect the retired seq.
func TestWindowSnapshotDoesNotResurrectRetiredSeq(t *testing.T) {
	eng, net := lossyPair(t, 0, 12)
	r := NewReliable(eng, net)
	r.Register(1, func(Message) {})
	r.MaxRetries = 0 // one attempt, then the budget is spent
	net.SetHopFault(func(*Message) HopEffect { return HopEffect{Drop: true} })
	failed := 0
	r.Send(Message{From: 0, To: 1, Size: 64, Kind: "order"}, nil, func() { failed++ })
	snap := r.Snapshot() // names the seq while it is still live

	_ = eng.Run(time.Minute)
	if failed != 1 || r.InflightCount() != 0 {
		t.Fatalf("failed=%d inflight=%d, want the exchange exhausted before restore",
			failed, r.InflightCount())
	}

	if err := r.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if r.InflightCount() != 0 || r.Requeued.Value() != 0 || failed != 1 {
		t.Fatalf("retired seq resurrected: inflight=%d requeued=%d failed=%d",
			r.InflightCount(), r.Requeued.Value(), failed)
	}
	if err := net.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
