package mesh

import (
	"sort"

	"iobt/internal/checkpoint"
)

// The ARQ in-flight window is command-post state: orders and reports
// awaiting acknowledgment exist only in the sender's retransmission
// table. When the post is destroyed, exchanges the last checkpoint
// captured can be requeued by a warm successor (re-addressed to the new
// post, fresh retry budget); exchanges begun after the cut died with
// the node and must fail loudly, not vanish.

// InflightCount returns the number of unacknowledged exchanges.
func (r *Reliable) InflightCount() int { return len(r.inflight) }

// inflightSeqs returns the live window in ascending seq order, so every
// bulk operation over it is deterministic.
func (r *Reliable) inflightSeqs() []int {
	seqs := make([]int, 0, len(r.inflight))
	for seq := range r.inflight {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs
}

// FailInflight terminates every in-flight exchange, firing each onFail
// callback (in seq order). This is the cold-failover disposition: the
// window died with the post and the rebuilt post has no memory of it.
// Returns the number of exchanges failed.
func (r *Reliable) FailInflight() int {
	return r.failSeqs(r.inflightSeqs())
}

func (r *Reliable) failSeqs(seqs []int) int {
	n := 0
	for _, seq := range seqs {
		st, ok := r.inflight[seq]
		if !ok || st.done {
			continue
		}
		st.done = true
		st.timeout.Cancel()
		delete(r.inflight, seq)
		r.Exhausted.Inc()
		n++
		if st.onFail != nil {
			st.onFail()
		}
	}
	return n
}

// SnapshotName implements checkpoint.Snapshotter.
func (r *Reliable) SnapshotName() string { return "arq" }

// Snapshot encodes the in-flight window: each exchange's seq and frame
// metadata, in seq order. Payloads and completion callbacks are
// process-local and not encoded; Restore resumes the live exchanges the
// snapshot names and fails the rest.
func (r *Reliable) Snapshot() []byte {
	e := checkpoint.NewEncoder()
	seqs := r.inflightSeqs()
	e.Int(len(seqs))
	for _, seq := range seqs {
		st := r.inflight[seq]
		e.Int(seq)
		e.Int64(int64(st.msg.From))
		e.Int64(int64(st.msg.To))
		e.Float64(st.msg.Size)
		e.String(st.msg.Kind)
		e.Int(st.tries)
	}
	return e.Bytes()
}

// Restore applies a checkpointed window to the live one (the warm
// failover path): exchanges named by the snapshot and still in flight
// are requeued with a fresh retry budget — rewritten through Readdress
// when set, so traffic addressed to the dead post re-homes to its
// successor — while live exchanges the snapshot does not know about are
// failed (they began after the cut and died with the post).
func (r *Reliable) Restore(data []byte) error {
	d := checkpoint.NewDecoder(data)
	n := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	keep := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		seq := d.Int()
		_ = d.Int64()   // From
		_ = d.Int64()   // To
		_ = d.Float64() // Size
		_ = d.String()  // Kind
		_ = d.Int()     // tries
		keep[seq] = true
	}
	if d.Err() != nil {
		return d.Err()
	}
	var lost []int
	for _, seq := range r.inflightSeqs() {
		if !keep[seq] {
			lost = append(lost, seq)
		}
	}
	r.failSeqs(lost)
	for _, seq := range r.inflightSeqs() {
		if keep[seq] {
			r.requeue(seq)
		}
	}
	return nil
}

// requeue re-arms one exchange: fresh retry budget, immediate attempt,
// message rewritten through Readdress. The exchange keeps its seq, so a
// late ACK from a pre-crash attempt still completes it.
func (r *Reliable) requeue(seq int) {
	st, ok := r.inflight[seq]
	if !ok || st.done {
		return
	}
	st.timeout.Cancel()
	st.tries = 0
	// An exchange that spans a failover is not a clean RTT sample
	// (Karn's rule applies: ambiguous which attempt an ACK answers).
	st.retx = true
	if r.Readdress != nil {
		st.msg = r.Readdress(st.msg)
	}
	r.Requeued.Inc()
	r.attempt(seq)
}
