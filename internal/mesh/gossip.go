package mesh

import (
	"fmt"
	"sort"
	"time"

	"iobt/internal/sim"
)

// Epidemic dissemination over the mesh. BFS source routing (Send) pins a
// path at send time, so one jammed region or partition silently severs
// everything behind it. Gossip instead relays each payload to a small
// seeded-random subset of neighbors (rumor mongering) and runs a periodic
// anti-entropy digest exchange, so partitioned nodes reconverge as soon
// as the topology heals. The design follows Farooq & Zhu's epidemic
// information-dissemination model for IoBT (see PAPERS.md) and SNIPPETS.md
// #3's "rapid exponential spreading".
//
// Determinism contract: relay peer selection collects the candidate
// neighbor IDs, sorts them, then applies a seeded shuffle from the
// engine-derived "gossip" stream and takes the first Fanout. Anti-entropy
// walks members in ascending ID order and picks each partner from a
// sorted candidate list with the same stream. Same seed, same byte-for-
// byte behavior — the dettaint/maporder analyzers police this.

// Gossip frame kinds carried over SendDirect.
const (
	KindGossipData   = "gossip.data"
	KindGossipDigest = "gossip.digest"
)

// GossipKey names a published payload: the origin node plus a per-origin
// sequence number assigned by Publish.
type GossipKey struct {
	Origin NodeID
	Seq    uint64
}

// GossipPayload is one disseminated unit of application data.
type GossipPayload struct {
	Key  GossipKey
	Kind string
	Data any
	// Size is the application payload size in bytes.
	Size float64
	// Born is the virtual publish time; dissemination latency is
	// measured against it.
	Born time.Duration
}

// GossipConfig parameterizes the epidemic protocol.
type GossipConfig struct {
	// Fanout is how many neighbors each node relays a fresh payload to
	// (default 3). A Fanout at least the maximum degree degenerates to
	// flooding.
	Fanout int
	// TTL is the relay hop budget of a fresh publish (default 8).
	TTL int
	// AntiEntropyEvery is the digest-exchange cadence (default 5s).
	// Negative disables anti-entropy (pure rumor mongering).
	AntiEntropyEvery time.Duration
	// FrameOverhead is the per-frame header size in bytes added on top
	// of the payload (default 24).
	FrameOverhead float64
	// DigestEntryBytes sizes one digest sequence entry (default 12).
	DigestEntryBytes float64
}

func (c GossipConfig) withDefaults() GossipConfig {
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.TTL <= 0 {
		c.TTL = 8
	}
	if c.AntiEntropyEvery == 0 {
		c.AntiEntropyEvery = 5 * time.Second
	}
	if c.FrameOverhead <= 0 {
		c.FrameOverhead = 24
	}
	if c.DigestEntryBytes <= 0 {
		c.DigestEntryBytes = 12
	}
	return c
}

// gossipMember is one participating node's replica state.
type gossipMember struct {
	id  NodeID
	app Handler
	// have holds every payload this member has received, keyed by
	// (origin, seq). It only grows; anti-entropy never regresses it.
	have map[GossipKey]GossipPayload
}

// gossipDataFrame rides KindGossipData messages.
type gossipDataFrame struct {
	Payload GossipPayload
	TTL     int
}

// gossipDigestFrame rides KindGossipDigest messages: a compact statement
// of everything the sender holds, so the receiver can push back what the
// sender is missing.
type gossipDigestFrame struct {
	From    NodeID
	Entries []digestEntry
}

// digestEntry lists the sequence numbers held for one origin, ascending.
type digestEntry struct {
	Origin NodeID
	Seqs   []uint64
}

// Gossip is the epidemic dissemination overlay. It is not safe for
// concurrent use; like the rest of the simulator it runs on the
// single-threaded engine loop.
type Gossip struct {
	net *Network
	eng *sim.Engine
	rng *sim.RNG
	cfg GossipConfig

	members map[NodeID]*gossipMember
	// published holds the next sequence number per origin; a key with
	// Seq >= published[Origin] cannot exist anywhere (the conservation
	// invariant checks exactly that).
	published map[NodeID]uint64

	ticker *sim.Ticker

	// peerBuf backs memberPeers: the overlay is single-threaded and no
	// caller holds the returned slice across another memberPeers call,
	// so one reused buffer serves every relay decision without a
	// per-frame allocation.
	peerBuf []NodeID

	// prevHeld remembers each member's held count at the last
	// CheckConservation call; anti-entropy must never regress it.
	prevHeld map[NodeID]int
	// departedHeld and departedMembers keep the delivery ledger balanced
	// when Leave discards a member's replica state.
	departedHeld    int
	departedMembers int

	// Metrics.
	Published     sim.Counter // payloads published
	FramesSent    sim.Counter // data+digest frames handed to the mesh
	DeliveredNew  sim.Counter // first-time receptions (incl. origin's own copy)
	Duplicates    sim.Counter // suppressed re-receptions
	Expired       sim.Counter // receptions whose TTL forbade relaying
	Repairs       sim.Counter // payloads pushed by anti-entropy
	Rounds        sim.Counter // anti-entropy rounds run
	CorruptFrames sim.Counter // frames mangled in flight
	LatencySec    sim.Series  // publish-to-first-reception latency
}

// NewGossip builds the overlay on net. Call Join for every participating
// node, then Start to arm anti-entropy.
func NewGossip(net *Network, cfg GossipConfig) *Gossip {
	return &Gossip{
		net:       net,
		eng:       net.eng,
		rng:       net.eng.Stream("gossip"),
		cfg:       cfg.withDefaults(),
		members:   make(map[NodeID]*gossipMember),
		published: make(map[NodeID]uint64),
		prevHeld:  make(map[NodeID]int),
	}
}

// Config returns the effective (defaulted) configuration.
func (g *Gossip) Config() GossipConfig { return g.cfg }

// Join enrolls id in the overlay and registers its mesh handler. app, if
// non-nil, receives each first-time payload as a Message (From = origin,
// Kind/Payload/Size from the publish) plus any non-gossip traffic
// delivered to the node. A node's own publishes are stored but not
// echoed back to its app handler — the publisher already has its data.
func (g *Gossip) Join(id NodeID, app Handler) {
	if _, ok := g.members[id]; ok {
		g.members[id].app = app
		return
	}
	m := &gossipMember{id: id, app: app, have: make(map[GossipKey]GossipPayload)}
	g.members[id] = m
	g.net.RegisterHandler(id, func(msg Message) { g.handle(m, msg) })
}

// Leave removes id from the overlay and unregisters its handler. Its
// replica state is discarded.
func (g *Gossip) Leave(id NodeID) {
	m, ok := g.members[id]
	if !ok {
		return
	}
	g.departedHeld += len(m.have)
	g.departedMembers++
	delete(g.members, id)
	delete(g.prevHeld, id)
	g.net.UnregisterHandler(id)
}

// Members returns the enrolled node IDs in ascending order.
func (g *Gossip) Members() []NodeID {
	out := make([]NodeID, 0, len(g.members))
	for id := range g.members {
		out = append(out, id)
	}
	sortNodeIDs(out)
	return out
}

// Start arms the periodic anti-entropy exchange.
func (g *Gossip) Start() {
	if g.ticker != nil || g.cfg.AntiEntropyEvery < 0 {
		return
	}
	g.ticker = g.eng.Every(g.cfg.AntiEntropyEvery, "gossip.antientropy", func() {
		g.antiEntropyRound()
	})
}

// Stop halts anti-entropy.
func (g *Gossip) Stop() {
	if g.ticker != nil {
		g.ticker.Stop()
		g.ticker = nil
	}
}

// Publish disseminates data from origin. The payload is stored at the
// origin immediately (counting as its own delivery) and relayed to a
// seeded fanout of neighbors with the full TTL budget.
func (g *Gossip) Publish(origin NodeID, kind string, size float64, data any) (GossipKey, error) {
	m, ok := g.members[origin]
	if !ok {
		return GossipKey{}, fmt.Errorf("gossip: origin %d is not a member", origin)
	}
	key := GossipKey{Origin: origin, Seq: g.published[origin]}
	g.published[origin]++
	g.Published.Inc()
	p := GossipPayload{Key: key, Kind: kind, Data: data, Size: size, Born: g.eng.Now()}
	m.have[key] = p
	g.DeliveredNew.Inc()
	g.LatencySec.Add(0)
	g.relay(m, p, g.cfg.TTL, origin)
	return key, nil
}

// Holds reports whether member id has received key.
func (g *Gossip) Holds(id NodeID, key GossipKey) bool {
	m, ok := g.members[id]
	if !ok {
		return false
	}
	_, ok = m.have[key]
	return ok
}

// HeldAt returns how many payloads member id holds.
func (g *Gossip) HeldAt(id NodeID) int {
	m, ok := g.members[id]
	if !ok {
		return 0
	}
	return len(m.have)
}

// DeliveryRatio is the fraction of (member, payload) pairs reached:
// total held copies over published × members. 1.0 means every member
// holds every publish; it is the experiment E17 headline metric.
func (g *Gossip) DeliveryRatio() float64 {
	var total uint64
	for _, origin := range g.Members() {
		total += g.published[origin]
	}
	denom := float64(total) * float64(len(g.members))
	if denom == 0 {
		return 0
	}
	var held int
	for _, id := range g.Members() {
		held += len(g.members[id].have)
	}
	return float64(held) / denom
}

// handle dispatches one delivered mesh message for member m.
func (g *Gossip) handle(m *gossipMember, msg Message) {
	switch msg.Kind {
	case KindGossipData:
		frame, ok := msg.Payload.(*gossipDataFrame)
		if !ok {
			return
		}
		g.receive(m, frame.Payload, frame.TTL, msg.From)
	case KindGossipDigest:
		frame, ok := msg.Payload.(*gossipDigestFrame)
		if !ok {
			return
		}
		g.repair(m, frame)
	default:
		if msg.Kind == "corrupt" {
			g.CorruptFrames.Inc()
		}
		if m.app != nil {
			m.app(msg)
		}
	}
}

// receive processes a data frame at member m: duplicate suppression,
// first-time delivery to the app handler, and onward relay while the TTL
// budget lasts.
func (g *Gossip) receive(m *gossipMember, p GossipPayload, ttl int, from NodeID) {
	if _, dup := m.have[p.Key]; dup {
		g.Duplicates.Inc()
		return
	}
	m.have[p.Key] = p
	g.DeliveredNew.Inc()
	g.LatencySec.AddDuration(g.eng.Now() - p.Born)
	if m.app != nil {
		m.app(Message{
			From:    p.Key.Origin,
			To:      m.id,
			Kind:    p.Kind,
			Payload: p.Data,
			Size:    p.Size,
			Sent:    p.Born,
		})
	}
	if ttl <= 0 {
		g.Expired.Inc()
		return
	}
	g.relay(m, p, ttl-1, from)
}

// relay forwards p from member m to a seeded-random fanout of its member
// neighbors, excluding the node it arrived from. Candidates are sorted
// before the seeded shuffle so peer choice depends only on the seed and
// the topology, never on map iteration order.
//
//iobt:hot
func (g *Gossip) relay(m *gossipMember, p GossipPayload, ttl int, exclude NodeID) {
	peers := g.memberPeers(m.id, exclude)
	if len(peers) == 0 {
		return
	}
	g.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	k := g.cfg.Fanout
	if k > len(peers) {
		k = len(peers)
	}
	// One shared frame per relay decision: Message.Payload is an
	// interface, so a pointer frame costs one allocation for the whole
	// fanout where a value frame would box once per peer.
	//iobt:allow hotalloc the frame is the message: one pointer payload shared across the whole fanout, freed when the last delivery fires
	frame := &gossipDataFrame{Payload: p, TTL: ttl}
	for _, peer := range peers[:k] {
		g.FramesSent.Inc()
		//iobt:allow errdrop gossip is fire-and-forget by design: a refused or lost frame is repaired by the next anti-entropy round
		g.net.SendDirect(Message{ //iobt:allow hotalloc the Engine-based mesh pays one path slice and one hop closure per transmitted frame — the modeled radio transmission; the sharded overlay is the zero-alloc path
			From:    m.id,
			To:      peer,
			Size:    p.Size + g.cfg.FrameOverhead,
			Kind:    KindGossipData,
			Payload: frame,
		})
	}
}

// memberPeers returns m's current neighbors that are also overlay
// members, ascending, excluding exclude. The returned slice aliases
// g.peerBuf and is only valid until the next call.
//
//iobt:hot
func (g *Gossip) memberPeers(id, exclude NodeID) []NodeID {
	peers := g.peerBuf[:0]
	for _, nb := range g.net.Neighbors(id) {
		if nb == exclude {
			continue
		}
		if _, ok := g.members[nb]; ok {
			peers = append(peers, nb)
		}
	}
	sortNodeIDs(peers)
	g.peerBuf = peers
	return peers
}

// antiEntropyRound has every member send a digest of its holdings to one
// seeded-random member neighbor. The receiver pushes back every payload
// the digest lacks as a fresh full-TTL data frame, so repairs spread
// epidemically too — that is what re-converges partitions after heal.
func (g *Gossip) antiEntropyRound() {
	g.Rounds.Inc()
	for _, id := range g.Members() {
		m := g.members[id]
		peers := g.memberPeers(id, id)
		if len(peers) == 0 {
			continue
		}
		partner := peers[g.rng.Pick(len(peers))]
		frame := g.digest(m)
		g.FramesSent.Inc()
		//iobt:allow errdrop a lost digest only delays convergence: the next round retries with a fresh partner
		g.net.SendDirect(Message{
			From:    id,
			To:      partner,
			Size:    g.cfg.FrameOverhead + g.cfg.DigestEntryBytes*float64(len(m.have)),
			Kind:    KindGossipDigest,
			Payload: frame,
		})
	}
}

// digest summarizes m's holdings with deterministic ordering: origins
// ascending, sequence numbers ascending within each origin.
func (g *Gossip) digest(m *gossipMember) *gossipDigestFrame {
	keys := make([]GossipKey, 0, len(m.have))
	for key := range m.have {
		keys = append(keys, key)
	}
	sortGossipKeys(keys)
	var entries []digestEntry
	for _, key := range keys {
		if n := len(entries); n > 0 && entries[n-1].Origin == key.Origin {
			entries[n-1].Seqs = append(entries[n-1].Seqs, key.Seq)
			continue
		}
		entries = append(entries, digestEntry{Origin: key.Origin, Seqs: []uint64{key.Seq}})
	}
	return &gossipDigestFrame{From: m.id, Entries: entries}
}

// repair pushes every payload m holds that the digest sender lacks back
// to the sender, with the full TTL budget so the repair floods onward.
func (g *Gossip) repair(m *gossipMember, frame *gossipDigestFrame) {
	if _, ok := g.members[frame.From]; !ok {
		return
	}
	theirs := make(map[GossipKey]bool)
	for _, e := range frame.Entries {
		for _, seq := range e.Seqs {
			theirs[GossipKey{Origin: e.Origin, Seq: seq}] = true
		}
	}
	missing := make([]GossipKey, 0)
	for key := range m.have {
		if !theirs[key] {
			missing = append(missing, key)
		}
	}
	sortGossipKeys(missing)
	for _, key := range missing {
		p := m.have[key]
		g.Repairs.Inc()
		g.FramesSent.Inc()
		//iobt:allow errdrop a failed repair push is retried by construction: the partner's holdings are re-compared every anti-entropy round
		g.net.SendDirect(Message{
			From:    m.id,
			To:      frame.From,
			Size:    p.Size + g.cfg.FrameOverhead,
			Kind:    KindGossipData,
			Payload: &gossipDataFrame{Payload: p, TTL: g.cfg.TTL},
		})
	}
}

// sortGossipKeys orders keys by (origin, seq) ascending.
func sortGossipKeys(keys []GossipKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Origin != keys[j].Origin {
			return keys[i].Origin < keys[j].Origin
		}
		return keys[i].Seq < keys[j].Seq
	})
}

// CheckConservation verifies the gossip conservation law:
//
//  1. every held payload traces to an origin publish (its sequence
//     number is below the origin's publish counter);
//  2. first-time deliveries equal total held copies (nothing is held
//     that was never counted delivered, and vice versa);
//  3. no member's holdings ever shrink — anti-entropy never regresses
//     replica state;
//  4. deliveries never exceed publishes × members.
//
// The verify registry arms this as the mesh-overlay invariant.
func (g *Gossip) CheckConservation() error {
	var held int
	for _, id := range g.Members() {
		m := g.members[id]
		held += len(m.have)
		keys := make([]GossipKey, 0, len(m.have))
		for key := range m.have {
			keys = append(keys, key)
		}
		sortGossipKeys(keys)
		for _, key := range keys {
			if key.Seq >= g.published[key.Origin] {
				return fmt.Errorf("gossip: member %d holds %v but origin %d only published %d payloads",
					id, key, key.Origin, g.published[key.Origin])
			}
		}
		if prev := g.prevHeld[id]; len(m.have) < prev {
			return fmt.Errorf("gossip: member %d regressed from %d to %d held payloads", id, prev, len(m.have))
		}
		g.prevHeld[id] = len(m.have)
	}
	if uint64(held+g.departedHeld) != g.DeliveredNew.Value() {
		return fmt.Errorf("gossip: %d payloads held (+%d departed) but %d first-time deliveries counted",
			held, g.departedHeld, g.DeliveredNew.Value())
	}
	var total uint64
	for origin := range g.published {
		total += g.published[origin]
	}
	pop := uint64(len(g.members) + g.departedMembers)
	if max := total * pop; g.DeliveredNew.Value() > max {
		return fmt.Errorf("gossip: %d deliveries exceed %d published × %d members", g.DeliveredNew.Value(), total, pop)
	}
	return nil
}
