package mesh

import (
	"testing"
	"testing/quick"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

// lineWorld builds n static sensor nodes in a row, spaced apart, each
// within radio range of only its immediate neighbors.
func lineWorld(t *testing.T, n int, spacing float64) (*sim.Engine, *asset.Population, *Network) {
	t.Helper()
	eng := sim.NewEngine(1)
	terr := geo.NewOpenTerrain(float64(n+1)*spacing, 1000)
	pop := asset.NewPopulation(terr)
	for i := 0; i < n; i++ {
		caps := asset.DefaultCaps(asset.ClassSensor)
		caps.RadioRange = spacing * 1.5 // reach neighbor, not neighbor's neighbor
		a := &asset.Asset{
			Affiliation: asset.Blue,
			Class:       asset.ClassSensor,
			Caps:        caps,
			Online:      true,
			Mobility:    &geo.Static{P: geo.Point{X: float64(i+1) * spacing, Y: 500}},
		}
		a.Energy = caps.EnergyCap
		pop.Add(a)
	}
	cfg := DefaultConfig()
	cfg.StepMobility = false
	cfg.LossBase = 0 // deterministic delivery for protocol tests
	net := New(eng, pop, terr, cfg)
	return eng, pop, net
}

// mustSend fails the test if the network refuses the message outright
// (dead source, no route). Per-hop loss is still possible afterwards —
// tests that exercise loss assert on delivery counts, not on Send.
func mustSend(t *testing.T, net *Network, msg Message) {
	t.Helper()
	if err := net.Send(msg); err != nil {
		t.Fatalf("send %d->%d: %v", msg.From, msg.To, err)
	}
}

func TestLineTopology(t *testing.T) {
	_, _, net := lineWorld(t, 5, 100)
	if got := len(net.Neighbors(0)); got != 1 {
		t.Errorf("end node neighbors = %d, want 1", got)
	}
	if got := len(net.Neighbors(2)); got != 2 {
		t.Errorf("middle node neighbors = %d, want 2", got)
	}
	if !net.Linked(0, 1) || net.Linked(0, 2) {
		t.Error("link predicate wrong")
	}
}

func TestRouteShortestPath(t *testing.T) {
	_, _, net := lineWorld(t, 5, 100)
	path := net.Route(0, 4)
	if len(path) != 5 {
		t.Fatalf("path = %v, want 5 nodes", path)
	}
	for i, id := range path {
		if id != asset.ID(i) {
			t.Fatalf("path = %v, want 0..4 in order", path)
		}
	}
	if p := net.Route(2, 2); len(p) != 1 || p[0] != 2 {
		t.Errorf("self route = %v", p)
	}
}

func TestRouteCacheInvalidation(t *testing.T) {
	_, pop, net := lineWorld(t, 5, 100)
	if net.Route(0, 4) == nil {
		t.Fatal("expected route")
	}
	pop.Kill(2)
	net.Refresh()
	if net.Route(0, 4) != nil {
		t.Error("route survived cut vertex removal")
	}
	if net.Reachable(0, 1) != true {
		t.Error("adjacent nodes should remain reachable")
	}
}

func TestComponents(t *testing.T) {
	_, pop, net := lineWorld(t, 6, 100)
	pop.Kill(3)
	net.Refresh()
	comps := net.Components(1)
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Errorf("component sizes = %d,%d", len(comps[0]), len(comps[1]))
	}
	comp := net.Component(0)
	if len(comp) != 3 {
		t.Errorf("Component(0) = %v", comp)
	}
}

func TestSendDelivers(t *testing.T) {
	eng, _, net := lineWorld(t, 5, 100)
	var got []Message
	net.RegisterHandler(4, func(m Message) { got = append(got, m) })
	err := net.Send(Message{From: 0, To: 4, Size: 100, Kind: "report"})
	if err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := eng.Run(time.Minute); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if got[0].Hops != 4 {
		t.Errorf("hops = %d, want 4", got[0].Hops)
	}
	if net.Delivered.Value() != 1 {
		t.Error("Delivered counter wrong")
	}
	if net.LatencySec.N() != 1 || net.LatencySec.Mean() <= 0 {
		t.Error("latency not recorded")
	}
}

func TestSendNoRoute(t *testing.T) {
	_, pop, net := lineWorld(t, 5, 100)
	pop.Kill(2)
	net.Refresh()
	err := net.Send(Message{From: 0, To: 4, Size: 10})
	if err != ErrNoRoute {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
	if net.NoRoute.Value() != 1 {
		t.Error("NoRoute counter wrong")
	}
}

func TestSendDeadSource(t *testing.T) {
	_, pop, net := lineWorld(t, 3, 100)
	pop.Kill(0)
	net.Refresh()
	if err := net.Send(Message{From: 0, To: 2, Size: 10}); err != ErrDeadNode {
		t.Errorf("err = %v, want ErrDeadNode", err)
	}
}

func TestMidFlightNodeLossDrops(t *testing.T) {
	eng, pop, net := lineWorld(t, 5, 100)
	delivered := false
	net.RegisterHandler(4, func(Message) { delivered = true })
	if err := net.Send(Message{From: 0, To: 4, Size: 100}); err != nil {
		t.Fatalf("send: %v", err)
	}
	// Kill a mid-path node before the message reaches it.
	pop.Kill(2)
	if err := eng.Run(time.Minute); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered {
		t.Error("message delivered across a dead relay")
	}
	if net.Dropped.Value() == 0 {
		t.Error("drop not counted")
	}
}

func TestLossyLinkDropsSometimes(t *testing.T) {
	eng := sim.NewEngine(2)
	terr := geo.NewOpenTerrain(1000, 1000)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 100
	for i := 0; i < 2; i++ {
		a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
			Mobility: &geo.Static{P: geo.Point{X: float64(i) * 99, Y: 500}}} // near range edge
		a.Energy = caps.EnergyCap
		pop.Add(a)
	}
	cfg := DefaultConfig()
	cfg.StepMobility = false
	cfg.LossBase = 0.5
	net := New(eng, pop, terr, cfg)
	delivered := 0
	net.RegisterHandler(1, func(Message) { delivered++ })
	const total = 200
	for i := 0; i < total; i++ {
		mustSend(t, net, Message{From: 0, To: 1, Size: 10})
	}
	_ = eng.Run(time.Hour)
	if delivered == 0 || delivered == total {
		t.Errorf("delivered = %d of %d; want lossy but nonzero", delivered, total)
	}
}

func TestBroadcast(t *testing.T) {
	eng, _, net := lineWorld(t, 5, 100)
	heard := map[asset.ID]bool{}
	for i := asset.ID(0); i < 5; i++ {
		id := i
		net.RegisterHandler(id, func(Message) { heard[id] = true })
	}
	n := net.Broadcast(Message{From: 2, Size: 10, Kind: "hello"})
	if n != 2 {
		t.Errorf("broadcast targets = %d, want 2", n)
	}
	_ = eng.Run(time.Minute)
	if !heard[1] || !heard[3] || heard[0] || heard[4] || heard[2] {
		t.Errorf("heard = %v, want only 1 and 3", heard)
	}
}

func TestSendDirectRequiresLink(t *testing.T) {
	eng, _, net := lineWorld(t, 5, 100)
	if err := net.SendDirect(Message{From: 0, To: 4, Size: 10}); err != ErrNoRoute {
		t.Errorf("SendDirect to non-neighbor: err = %v", err)
	}
	ok := false
	net.RegisterHandler(1, func(Message) { ok = true })
	if err := net.SendDirect(Message{From: 0, To: 1, Size: 10}); err != nil {
		t.Fatalf("SendDirect: %v", err)
	}
	_ = eng.Run(time.Minute)
	if !ok {
		t.Error("direct message not delivered")
	}
}

func TestTransmitEnergyDrain(t *testing.T) {
	eng, pop, net := lineWorld(t, 2, 100)
	before := pop.Get(0).Energy
	mustSend(t, net, Message{From: 0, To: 1, Size: 1e6})
	_ = eng.Run(time.Minute)
	if pop.Get(0).Energy >= before {
		t.Error("transmission did not drain energy")
	}
}

func TestQueueingDelaysLargeTransfers(t *testing.T) {
	eng, _, net := lineWorld(t, 2, 100)
	var first, second time.Duration
	count := 0
	net.RegisterHandler(1, func(Message) {
		count++
		if count == 1 {
			first = eng.Now()
		} else {
			second = eng.Now()
		}
	})
	// Two back-to-back large messages: the second must queue behind the
	// first at the sender.
	mustSend(t, net, Message{From: 0, To: 1, Size: 50000})
	mustSend(t, net, Message{From: 0, To: 1, Size: 50000})
	_ = eng.Run(time.Hour)
	if count != 2 {
		t.Fatalf("delivered %d, want 2", count)
	}
	if second <= first {
		t.Errorf("no queueing: first=%v second=%v", first, second)
	}
}

func TestJammingSeversLinks(t *testing.T) {
	_, _, net := lineWorld(t, 5, 100)
	if !net.Reachable(0, 4) {
		t.Fatal("precondition: reachable")
	}
	// Jam the middle of the line completely.
	net.SetJamming(func(p geo.Point) float64 {
		if p.Dist(geo.Point{X: 300, Y: 500}) < 120 {
			return 1
		}
		return 0
	})
	net.Refresh()
	if net.Reachable(0, 4) {
		t.Error("route survived total jamming of the middle")
	}
	net.SetJamming(nil)
	net.Refresh()
	if !net.Reachable(0, 4) {
		t.Error("route did not recover after jamming cleared")
	}
}

func TestMobilityChangesTopology(t *testing.T) {
	eng := sim.NewEngine(3)
	terr := geo.NewOpenTerrain(2000, 1000)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassUAV)
	caps.RadioRange = 150
	// A static node and a patroller that moves in and out of range.
	a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
		Mobility: &geo.Static{P: geo.Point{X: 100, Y: 500}}}
	a.Energy = caps.EnergyCap
	pop.Add(a)
	b := &asset.Asset{Class: asset.ClassUAV, Caps: caps, Online: true,
		Mobility: geo.NewPatrol([]geo.Point{{X: 200, Y: 500}, {X: 1800, Y: 500}}, 50)}
	b.Energy = caps.EnergyCap
	pop.Add(b)
	cfg := DefaultConfig()
	cfg.StepMobility = true
	net := New(eng, pop, terr, cfg)
	net.Start()
	if !net.Linked(0, 1) {
		t.Fatal("precondition: linked at start")
	}
	_ = eng.Run(10 * time.Second) // UAV moves 500m away
	if net.Linked(0, 1) {
		t.Error("link survived departure")
	}
	net.Stop()
	verAtStop := net.Version()
	_ = eng.Run(10 * time.Second)
	if net.Version() != verAtStop {
		t.Error("refresh continued after Stop")
	}
}

func TestVersionAdvancesOnRefresh(t *testing.T) {
	_, _, net := lineWorld(t, 3, 100)
	v := net.Version()
	net.Refresh()
	if net.Version() <= v {
		t.Error("version did not advance")
	}
}

func TestNodesSorted(t *testing.T) {
	_, _, net := lineWorld(t, 5, 100)
	ids := net.Nodes()
	if len(ids) != 5 {
		t.Fatalf("Nodes = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("Nodes not sorted: %v", ids)
		}
	}
}

func TestDrainIdleKillsBatteryNodes(t *testing.T) {
	eng := sim.NewEngine(40)
	terr := geo.NewOpenTerrain(500, 500)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassMote)
	a := &asset.Asset{Class: asset.ClassMote, Caps: caps, Online: true, DutyCycle: 1,
		Mobility: &geo.Static{P: geo.Point{X: 250, Y: 250}}}
	a.Energy = 2 // dies after 200s at 0.01 J/s
	pop.Add(a)
	cfg := DefaultConfig()
	cfg.StepMobility = false
	cfg.DrainIdle = true
	net := New(eng, pop, terr, cfg)
	net.Start()
	_ = eng.Run(100 * time.Second)
	if !a.Alive() {
		t.Fatal("died too early")
	}
	_ = eng.Run(150 * time.Second)
	net.Stop()
	if a.Alive() {
		t.Error("battery node survived past its energy budget")
	}
}

// Property: every route returned is a valid chain of currently linked
// nodes, starts at src, and ends at dst.
func TestRouteValidityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		eng := sim.NewEngine(seed)
		terr := geo.NewOpenTerrain(1500, 1500)
		pop := asset.Generate(terr, asset.DefaultMix(150), eng.Stream("gen"))
		cfg := DefaultConfig()
		cfg.StepMobility = false
		net := New(eng, pop, terr, cfg)
		ids := net.Nodes()
		if len(ids) < 2 {
			return true
		}
		rng := sim.NewRNG(seed)
		for trial := 0; trial < 20; trial++ {
			src := ids[rng.Intn(len(ids))]
			dst := ids[rng.Intn(len(ids))]
			path := net.Route(src, dst)
			if path == nil {
				continue
			}
			if path[0] != src || path[len(path)-1] != dst {
				return false
			}
			for i := 0; i+1 < len(path); i++ {
				if !net.Linked(path[i], path[i+1]) {
					return false
				}
			}
			// Geographic route, when it exists, must satisfy the same
			// validity conditions.
			if gp := net.RouteGeo(src, dst); gp != nil {
				if gp[0] != src || gp[len(gp)-1] != dst {
					return false
				}
				for i := 0; i+1 < len(gp); i++ {
					if !net.Linked(gp[i], gp[i+1]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestUnregisterHandler(t *testing.T) {
	eng, _, net := lineWorld(t, 2, 100)
	called := false
	net.RegisterHandler(1, func(Message) { called = true })
	net.UnregisterHandler(1)
	mustSend(t, net, Message{From: 0, To: 1, Size: 10})
	_ = eng.Run(time.Minute)
	if called {
		t.Error("handler called after unregister")
	}
}

func TestBacklogObservable(t *testing.T) {
	eng, _, net := lineWorld(t, 2, 100)
	if net.Backlog(0) != 0 {
		t.Error("fresh node has backlog")
	}
	mustSend(t, net, Message{From: 0, To: 1, Size: 100000})
	mustSend(t, net, Message{From: 0, To: 1, Size: 100000})
	if net.Backlog(0) <= 0 {
		t.Error("backlog not visible after queued sends")
	}
	_ = eng.Run(time.Hour)
	if net.Backlog(0) != 0 {
		t.Errorf("backlog did not drain: %v", net.Backlog(0))
	}
	if net.Backlog(12345) != 0 {
		t.Error("unknown node backlog should be 0")
	}
}
