package mesh

import (
	"strconv"
	"time"

	"iobt/internal/sim"
)

// Reliable is a stop-and-wait ARQ layer over the lossy mesh: each
// message is retried until acknowledged or the retry budget is spent.
// Forward-deployed links drop packets routinely (paper §II), so
// mission-critical traffic — orders, evacuation routes — needs
// acknowledged delivery; the cost is latency and extra airtime, which
// the tests and benches quantify.
type Reliable struct {
	net *Network
	eng *sim.Engine
	// MaxRetries bounds retransmissions (default 5).
	MaxRetries int
	// Timeout is the per-attempt ACK deadline (default 2s).
	Timeout time.Duration

	nextSeq  int
	inflight map[int]*rtxState
	handlers map[NodeID]Handler
	seen     map[NodeID]map[int]bool // per-destination delivered seqs

	// Acked and Exhausted count terminal outcomes.
	Acked     sim.Counter
	Exhausted sim.Counter
	// Attempts counts every transmission including retries.
	Attempts sim.Counter
}

type rtxState struct {
	msg     Message
	tries   int
	done    bool
	onAck   func()
	onFail  func()
	timeout sim.Handle
}

// NewReliable wraps a network with an ARQ layer. Nodes that should
// receive reliable messages must be registered via Register (the layer
// owns their mesh handler).
func NewReliable(eng *sim.Engine, net *Network) *Reliable {
	return &Reliable{
		net:        net,
		eng:        eng,
		MaxRetries: 5,
		Timeout:    2 * time.Second,
		inflight:   make(map[int]*rtxState),
		handlers:   make(map[NodeID]Handler),
		seen:       make(map[NodeID]map[int]bool),
	}
}

// Register installs the application handler for a node and takes over
// its mesh handler for ACK processing and duplicate suppression.
func (r *Reliable) Register(id NodeID, h Handler) {
	r.handlers[id] = h
	r.net.RegisterHandler(id, func(msg Message) { r.onReceive(id, msg) })
}

// Send transmits msg reliably. onAck (optional) fires when the ACK
// arrives; onFail (optional) fires when the retry budget is exhausted.
// The sender's mesh handler is installed automatically so ACKs can
// reach the ARQ layer (Register it explicitly if it also consumes
// application traffic).
func (r *Reliable) Send(msg Message, onAck, onFail func()) {
	if _, ok := r.handlers[msg.From]; !ok {
		r.Register(msg.From, nil)
	}
	seq := r.nextSeq
	r.nextSeq++
	st := &rtxState{msg: msg, onAck: onAck, onFail: onFail}
	r.inflight[seq] = st
	r.attempt(seq)
}

func (r *Reliable) attempt(seq int) {
	st, ok := r.inflight[seq]
	if !ok || st.done {
		return
	}
	if st.tries > r.MaxRetries {
		st.done = true
		delete(r.inflight, seq)
		r.Exhausted.Inc()
		if st.onFail != nil {
			st.onFail()
		}
		return
	}
	st.tries++
	r.Attempts.Inc()
	m := st.msg
	m.Kind = "rel:" + strconv.Itoa(seq) + ":" + m.Kind
	_ = r.net.Send(m) // losses surface as missing ACKs
	st.timeout = r.eng.Schedule(r.Timeout, "arq.timeout", func() { r.attempt(seq) })
}

// onReceive demultiplexes data and ACK frames at a registered node.
func (r *Reliable) onReceive(self NodeID, msg Message) {
	seq, rest, isRel := splitRel(msg.Kind)
	if !isRel {
		if h := r.handlers[self]; h != nil {
			h(msg)
		}
		return
	}
	if rest == "ack" {
		st, ok := r.inflight[seq]
		if !ok || st.done {
			return // duplicate or late ACK
		}
		st.done = true
		st.timeout.Cancel()
		delete(r.inflight, seq)
		r.Acked.Inc()
		if st.onAck != nil {
			st.onAck()
		}
		return
	}
	// Data frame: ACK it (even for duplicates — the ACK may have been
	// lost), deliver once.
	ack := Message{From: self, To: msg.From, Size: 32, Kind: "rel:" + strconv.Itoa(seq) + ":ack"}
	_ = r.net.Send(ack)
	if r.seen[self] == nil {
		r.seen[self] = make(map[int]bool)
	}
	if r.seen[self][seq] {
		return
	}
	r.seen[self][seq] = true
	if h := r.handlers[self]; h != nil {
		delivered := msg
		delivered.Kind = rest
		h(delivered)
	}
}

// splitRel parses "rel:<seq>:<kind>".
func splitRel(kind string) (int, string, bool) {
	const prefix = "rel:"
	if len(kind) <= len(prefix) || kind[:len(prefix)] != prefix {
		return 0, "", false
	}
	rest := kind[len(prefix):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == ':' {
			seq, err := strconv.Atoi(rest[:i])
			if err != nil {
				return 0, "", false
			}
			return seq, rest[i+1:], true
		}
	}
	return 0, "", false
}
