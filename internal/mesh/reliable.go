package mesh

import (
	"strconv"
	"time"

	"iobt/internal/sim"
)

// Reliable is a stop-and-wait ARQ layer over the lossy mesh: each
// message is retried until acknowledged or the retry budget is spent.
// Forward-deployed links drop packets routinely (paper §II), so
// mission-critical traffic — orders, evacuation routes — needs
// acknowledged delivery; the cost is latency and extra airtime, which
// the tests and benches quantify.
//
// Retransmission timing is adaptive: the layer keeps a smoothed RTT
// estimate (Jacobson/Karels, with Karn's rule: only never-retransmitted
// exchanges contribute samples) and backs off exponentially with
// deterministic jitter on each retry, so a jammed or partitioned mesh
// is probed at decreasing cost instead of hammered on a fixed period.
type Reliable struct {
	net *Network
	eng *sim.Engine
	// MaxRetries bounds retransmissions (default 5).
	MaxRetries int
	// Timeout is the initial retransmission timeout used before any RTT
	// sample exists (default 2s).
	Timeout time.Duration
	// MinTimeout floors the adaptive timeout (default 50ms).
	MinTimeout time.Duration
	// MaxTimeout caps the adaptive timeout and the backoff (default 30s).
	MaxTimeout time.Duration
	// Backoff is the per-retry timeout multiplier (default 2).
	Backoff float64
	// JitterFrac spreads each timeout uniformly within ±JitterFrac
	// (default 0.1). Jitter is drawn from a dedicated engine stream, so
	// runs stay deterministic per seed.
	JitterFrac float64
	// Readdress, when set, rewrites each message as Restore requeues it
	// after a warm failover (mapping the dead post's ID to its
	// successor's). Nil leaves messages unchanged.
	Readdress func(Message) Message

	rng *sim.RNG

	nextSeq  int
	inflight map[int]*rtxState
	handlers map[NodeID]Handler
	seen     map[NodeID]map[int]bool // per-destination delivered seqs

	srtt   time.Duration
	rttvar time.Duration
	hasRTT bool

	// Acked and Exhausted count terminal outcomes.
	Acked     sim.Counter
	Exhausted sim.Counter
	// Attempts counts every transmission including retries.
	Attempts sim.Counter
	// LateAcks counts ACKs that arrived after their exchange was already
	// retired (completed or exhausted); they are ignored.
	LateAcks sim.Counter
	// Registrations counts Register calls, so tests can assert handlers
	// are installed once rather than churned per message.
	Registrations sim.Counter
	// Requeued counts exchanges re-armed by a warm-failover Restore.
	Requeued sim.Counter
}

type rtxState struct {
	msg     Message
	tries   int
	done    bool
	retx    bool // some attempt was retransmitted (Karn: no RTT sample)
	sentAt  time.Duration
	onAck   func()
	onFail  func()
	timeout sim.Handle
}

// NewReliable wraps a network with an ARQ layer. Nodes that should
// receive reliable messages must be registered via Register (the layer
// owns their mesh handler).
func NewReliable(eng *sim.Engine, net *Network) *Reliable {
	return &Reliable{
		net:        net,
		eng:        eng,
		MaxRetries: 5,
		Timeout:    2 * time.Second,
		MinTimeout: 50 * time.Millisecond,
		MaxTimeout: 30 * time.Second,
		Backoff:    2,
		JitterFrac: 0.1,
		rng:        eng.Stream("mesh.arq"),
		inflight:   make(map[int]*rtxState),
		handlers:   make(map[NodeID]Handler),
		seen:       make(map[NodeID]map[int]bool),
	}
}

// Register installs the application handler for a node and takes over
// its mesh handler for ACK processing and duplicate suppression.
func (r *Reliable) Register(id NodeID, h Handler) {
	r.Registrations.Inc()
	r.handlers[id] = h
	r.net.RegisterHandler(id, func(msg Message) { r.onReceive(id, msg) })
}

// Registered reports whether id already has a handler installed.
func (r *Reliable) Registered(id NodeID) bool {
	_, ok := r.handlers[id]
	return ok
}

// RTO returns the current base retransmission timeout: the configured
// initial Timeout until an RTT sample exists, then SRTT + 4·RTTVAR
// clamped to [MinTimeout, MaxTimeout].
func (r *Reliable) RTO() time.Duration {
	if !r.hasRTT {
		return r.Timeout
	}
	rto := r.srtt + 4*r.rttvar
	if rto < r.MinTimeout {
		rto = r.MinTimeout
	}
	if rto > r.MaxTimeout {
		rto = r.MaxTimeout
	}
	return rto
}

// SRTT returns the smoothed RTT estimate (zero before any sample).
func (r *Reliable) SRTT() time.Duration { return r.srtt }

// sampleRTT folds one round-trip measurement into the estimator
// (RFC 6298 coefficients).
func (r *Reliable) sampleRTT(rtt time.Duration) {
	if !r.hasRTT {
		r.srtt = rtt
		r.rttvar = rtt / 2
		r.hasRTT = true
		return
	}
	dev := r.srtt - rtt
	if dev < 0 {
		dev = -dev
	}
	r.rttvar = (3*r.rttvar + dev) / 4
	r.srtt = (7*r.srtt + rtt) / 8
}

// attemptTimeout returns the jittered, backed-off deadline for the
// given attempt number (1-based).
func (r *Reliable) attemptTimeout(tries int) time.Duration {
	d := float64(r.RTO())
	factor := r.Backoff
	if factor < 1 {
		factor = 1
	}
	for i := 1; i < tries; i++ {
		d *= factor
		if d >= float64(r.MaxTimeout) {
			d = float64(r.MaxTimeout)
			break
		}
	}
	if r.JitterFrac > 0 {
		d *= 1 + r.JitterFrac*(2*r.rng.Float64()-1)
	}
	to := time.Duration(d)
	if to < time.Millisecond {
		to = time.Millisecond
	}
	return to
}

// Send transmits msg reliably. onAck (optional) fires when the ACK
// arrives; onFail (optional) fires when the retry budget is exhausted.
// The sender's mesh handler is installed automatically so ACKs can
// reach the ARQ layer (Register it explicitly if it also consumes
// application traffic).
func (r *Reliable) Send(msg Message, onAck, onFail func()) {
	if _, ok := r.handlers[msg.From]; !ok {
		r.Register(msg.From, nil)
	}
	seq := r.nextSeq
	r.nextSeq++
	st := &rtxState{msg: msg, onAck: onAck, onFail: onFail}
	r.inflight[seq] = st
	r.attempt(seq)
}

func (r *Reliable) attempt(seq int) {
	st, ok := r.inflight[seq]
	if !ok || st.done {
		return
	}
	if st.tries > r.MaxRetries {
		st.done = true
		delete(r.inflight, seq)
		r.Exhausted.Inc()
		if st.onFail != nil {
			st.onFail()
		}
		return
	}
	st.tries++
	if st.tries > 1 {
		st.retx = true
	}
	st.sentAt = r.eng.Now()
	r.Attempts.Inc()
	m := st.msg
	m.Kind = "rel:" + strconv.Itoa(seq) + ":" + m.Kind
	//iobt:allow errdrop ARQ handles loss by design: a failed attempt surfaces as a missing ACK and the timeout below retries it
	_ = r.net.Send(m)
	st.timeout = r.eng.Schedule(r.attemptTimeout(st.tries), "arq.timeout", func() { r.attempt(seq) })
}

// onReceive demultiplexes data and ACK frames at a registered node.
func (r *Reliable) onReceive(self NodeID, msg Message) {
	seq, rest, isRel := splitRel(msg.Kind)
	if !isRel {
		if h := r.handlers[self]; h != nil {
			h(msg)
		}
		return
	}
	if rest == "ack" {
		st, ok := r.inflight[seq]
		if !ok || st.done {
			// Duplicate or late ACK: the exchange is already retired
			// (acked earlier, or the retry budget fired onFail). It must
			// neither resurrect state nor double-count.
			r.LateAcks.Inc()
			return
		}
		st.done = true
		st.timeout.Cancel()
		delete(r.inflight, seq)
		if !st.retx {
			r.sampleRTT(r.eng.Now() - st.sentAt)
		}
		r.Acked.Inc()
		if st.onAck != nil {
			st.onAck()
		}
		return
	}
	// Data frame: ACK it (even for duplicates — the ACK may have been
	// lost), deliver once.
	ack := Message{From: self, To: msg.From, Size: 32, Kind: "rel:" + strconv.Itoa(seq) + ":ack"}
	//iobt:allow errdrop a lost ACK is the ARQ protocol's own failure mode: the sender times out and retransmits, and we re-ACK the duplicate
	_ = r.net.Send(ack)
	if r.seen[self] == nil {
		r.seen[self] = make(map[int]bool)
	}
	if r.seen[self][seq] {
		return
	}
	r.seen[self][seq] = true
	if h := r.handlers[self]; h != nil {
		delivered := msg
		delivered.Kind = rest
		h(delivered)
	}
}

// splitRel parses "rel:<seq>:<kind>".
func splitRel(kind string) (int, string, bool) {
	const prefix = "rel:"
	if len(kind) <= len(prefix) || kind[:len(prefix)] != prefix {
		return 0, "", false
	}
	rest := kind[len(prefix):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == ':' {
			seq, err := strconv.Atoi(rest[:i])
			if err != nil {
				return 0, "", false
			}
			return seq, rest[i+1:], true
		}
	}
	return 0, "", false
}
