package geo

import "iobt/internal/sim"

// TerrainKind selects how the environment attenuates radio signals and
// constrains movement.
type TerrainKind int

// Terrain kinds. The paper (§II "Varying scale") calls out two extremes:
// dense cluttered mega-cities and sparse open terrain.
const (
	TerrainOpen TerrainKind = iota + 1
	TerrainUrban
	TerrainSparse
)

// String returns the terrain kind name.
func (k TerrainKind) String() string {
	switch k {
	case TerrainOpen:
		return "open"
	case TerrainUrban:
		return "urban"
	case TerrainSparse:
		return "sparse"
	default:
		return "unknown"
	}
}

// Terrain is a battlefield map: an area, a clutter model for radio
// attenuation, and (for urban maps) a street grid that constrains
// movement.
type Terrain struct {
	Kind   TerrainKind
	Bounds Rect
	// BlockSize is the urban street-grid pitch in meters (urban only).
	BlockSize float64
	// Obstruction in [0,1] scales radio range: effective range is
	// range * (1 - Obstruction * clutter(p,q)).
	Obstruction float64
}

// NewOpenTerrain returns unobstructed flat terrain of the given extent.
func NewOpenTerrain(width, height float64) *Terrain {
	return &Terrain{
		Kind:   TerrainOpen,
		Bounds: NewRect(Point{0, 0}, Point{width, height}),
	}
}

// NewUrbanTerrain returns a mega-city style map: a street grid with the
// given block pitch and heavy radio clutter.
func NewUrbanTerrain(width, height, blockSize float64) *Terrain {
	if blockSize <= 0 {
		blockSize = 100
	}
	return &Terrain{
		Kind:        TerrainUrban,
		Bounds:      NewRect(Point{0, 0}, Point{width, height}),
		BlockSize:   blockSize,
		Obstruction: 0.5,
	}
}

// NewSparseTerrain returns wide, lightly cluttered terrain modeling the
// paper's "sparse terrain with gaps in coverage" extreme.
func NewSparseTerrain(width, height float64) *Terrain {
	return &Terrain{
		Kind:        TerrainSparse,
		Bounds:      NewRect(Point{0, 0}, Point{width, height}),
		Obstruction: 0.15,
	}
}

// RangeFactor returns the multiplier (0,1] applied to nominal radio range
// for a link between p and q. Urban clutter worsens with the number of
// blocks crossed; open terrain is unobstructed.
func (t *Terrain) RangeFactor(p, q Point) float64 {
	if t.Obstruction <= 0 {
		return 1
	}
	clutter := 0.0
	switch t.Kind {
	case TerrainUrban:
		// Blocks crossed along each axis, saturating at 5.
		dx := absf(p.X-q.X) / t.BlockSize
		dy := absf(p.Y-q.Y) / t.BlockSize
		blocks := dx + dy
		if blocks > 5 {
			blocks = 5
		}
		clutter = blocks / 5
	case TerrainSparse:
		clutter = 0.5 // uniform light clutter
	default:
		clutter = 0
	}
	f := 1 - t.Obstruction*clutter
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// SnapToStreet moves p to the nearest street line on urban terrain. On
// other terrains it returns p unchanged.
func (t *Terrain) SnapToStreet(p Point) Point {
	if t.Kind != TerrainUrban || t.BlockSize <= 0 {
		return p
	}
	// Snap the nearer coordinate to its grid line.
	sx := roundTo(p.X, t.BlockSize)
	sy := roundTo(p.Y, t.BlockSize)
	if absf(p.X-sx) <= absf(p.Y-sy) {
		return t.Bounds.Clamp(Point{sx, p.Y})
	}
	return t.Bounds.Clamp(Point{p.X, sy})
}

// RandomPoint returns a uniform point in the terrain bounds.
func (t *Terrain) RandomPoint(rng *sim.RNG) Point {
	return Point{
		X: rng.Uniform(t.Bounds.Min.X, t.Bounds.Max.X),
		Y: rng.Uniform(t.Bounds.Min.Y, t.Bounds.Max.Y),
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func roundTo(v, step float64) float64 {
	n := v / step
	k := float64(int(n + 0.5))
	return k * step
}
