package geo

import (
	"sort"
	"testing"
	"testing/quick"

	"iobt/internal/sim"
)

func newTestGrid() *Grid {
	return NewGrid(NewRect(Point{0, 0}, Point{1000, 1000}), 50)
}

func TestGridInsertNear(t *testing.T) {
	g := newTestGrid()
	g.Insert(1, Point{100, 100})
	g.Insert(2, Point{110, 100})
	g.Insert(3, Point{500, 500})
	got := g.Near(nil, Point{100, 100}, 20)
	if len(got) != 2 {
		t.Fatalf("Near = %v, want ids 1,2", got)
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestGridMove(t *testing.T) {
	g := newTestGrid()
	g.Insert(1, Point{100, 100})
	g.Move(1, Point{900, 900})
	if ids := g.Near(nil, Point{100, 100}, 50); len(ids) != 0 {
		t.Errorf("stale position found: %v", ids)
	}
	if ids := g.Near(nil, Point{900, 900}, 50); len(ids) != 1 || ids[0] != 1 {
		t.Errorf("moved position not found: %v", ids)
	}
	p, ok := g.Position(1)
	if !ok || p != (Point{900, 900}) {
		t.Errorf("Position = %v, %v", p, ok)
	}
}

func TestGridMoveUnknownInserts(t *testing.T) {
	g := newTestGrid()
	g.Move(7, Point{10, 10})
	if g.Len() != 1 {
		t.Error("Move of unknown id should insert")
	}
}

func TestGridRemove(t *testing.T) {
	g := newTestGrid()
	g.Insert(1, Point{100, 100})
	g.Remove(1)
	g.Remove(1) // idempotent
	if g.Len() != 0 {
		t.Errorf("Len = %d after remove", g.Len())
	}
	if _, ok := g.Position(1); ok {
		t.Error("Position should report missing")
	}
}

func TestGridInsertTwiceMoves(t *testing.T) {
	g := newTestGrid()
	g.Insert(1, Point{100, 100})
	g.Insert(1, Point{700, 700})
	if g.Len() != 1 {
		t.Fatalf("duplicate insert produced %d entries", g.Len())
	}
	if ids := g.Near(nil, Point{700, 700}, 10); len(ids) != 1 {
		t.Error("re-insert did not move")
	}
}

func TestGridInRect(t *testing.T) {
	g := newTestGrid()
	g.Insert(1, Point{100, 100})
	g.Insert(2, Point{200, 200})
	g.Insert(3, Point{800, 800})
	got := g.InRect(nil, NewRect(Point{0, 0}, Point{300, 300}))
	if len(got) != 2 {
		t.Errorf("InRect = %v", got)
	}
}

func TestGridEdgePositions(t *testing.T) {
	g := newTestGrid()
	// Corners and outside points must not panic and must be queryable.
	g.Insert(1, Point{0, 0})
	g.Insert(2, Point{1000, 1000}) // on max edge (clamped cell)
	g.Insert(3, Point{-50, 2000})  // outside; clamped
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
	if ids := g.Near(nil, Point{0, 0}, 1); len(ids) != 1 {
		t.Errorf("corner query = %v", ids)
	}
}

// Property: Near agrees with a brute-force scan.
func TestGridNearMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		g := newTestGrid()
		type entry struct {
			id int32
			p  Point
		}
		var all []entry
		for i := int32(0); i < 200; i++ {
			p := Point{rng.Uniform(0, 1000), rng.Uniform(0, 1000)}
			g.Insert(i, p)
			all = append(all, entry{i, p})
		}
		center := Point{rng.Uniform(0, 1000), rng.Uniform(0, 1000)}
		radius := rng.Uniform(0, 300)
		got := g.Near(nil, center, radius)
		var want []int32
		for _, e := range all {
			if e.p.Dist(center) <= radius {
				want = append(want, e.id)
			}
		}
		sortIDs(got)
		sortIDs(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func sortIDs(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func TestGridAccessorsAndDegenerate(t *testing.T) {
	g := newTestGrid()
	if g.Bounds().Width() != 1000 {
		t.Errorf("Bounds = %v", g.Bounds())
	}
	// Degenerate bounds fall back to unit cells without panicking.
	d := NewGrid(Rect{}, 0)
	d.Insert(1, Point{})
	if got := d.Near(nil, Point{}, 1); len(got) != 1 {
		t.Errorf("degenerate grid Near = %v", got)
	}
	// Negative radius returns nothing.
	if got := g.Near(nil, Point{X: 1, Y: 1}, -5); got != nil {
		t.Errorf("negative radius = %v", got)
	}
}
