package geo

import "math"

// Grid is a uniform spatial hash over a bounded area: O(1) insert/move
// and neighborhood queries that only touch nearby cells. It is the index
// used for radio-range neighbor discovery over thousands of nodes.
type Grid struct {
	bounds   Rect
	cellSize float64
	cols     int
	rows     int
	cells    [][]int32       // cell -> ids
	where    map[int32]Point // id -> position
}

// NewGrid returns a grid over bounds with the given cell size. A
// non-positive cell size defaults to 1/32 of the larger dimension.
func NewGrid(bounds Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		cellSize = math.Max(bounds.Width(), bounds.Height()) / 32
		if cellSize <= 0 {
			cellSize = 1
		}
	}
	cols := int(math.Ceil(bounds.Width()/cellSize)) + 1
	rows := int(math.Ceil(bounds.Height()/cellSize)) + 1
	if cols < 1 {
		cols = 1
	}
	if rows < 1 {
		rows = 1
	}
	return &Grid{
		bounds:   bounds,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		cells:    make([][]int32, cols*rows),
		where:    make(map[int32]Point),
	}
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.where) }

// Bounds returns the indexed area.
func (g *Grid) Bounds() Rect { return g.bounds }

func (g *Grid) cellOf(p Point) int {
	p = g.bounds.Clamp(p)
	cx := int((p.X - g.bounds.Min.X) / g.cellSize)
	cy := int((p.Y - g.bounds.Min.Y) / g.cellSize)
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Insert adds id at position p. Inserting an existing id moves it.
func (g *Grid) Insert(id int32, p Point) {
	if _, ok := g.where[id]; ok {
		g.Move(id, p)
		return
	}
	c := g.cellOf(p)
	g.cells[c] = append(g.cells[c], id)
	g.where[id] = p
}

// Remove deletes id from the index. Removing an unknown id is a no-op.
func (g *Grid) Remove(id int32) {
	p, ok := g.where[id]
	if !ok {
		return
	}
	c := g.cellOf(p)
	g.cells[c] = removeID(g.cells[c], id)
	delete(g.where, id)
}

// Move updates id's position. Unknown ids are inserted.
func (g *Grid) Move(id int32, p Point) {
	old, ok := g.where[id]
	if !ok {
		g.Insert(id, p)
		return
	}
	oc, nc := g.cellOf(old), g.cellOf(p)
	if oc != nc {
		g.cells[oc] = removeID(g.cells[oc], id)
		g.cells[nc] = append(g.cells[nc], id)
	}
	g.where[id] = p
}

// Position returns the indexed position of id.
func (g *Grid) Position(id int32) (Point, bool) {
	p, ok := g.where[id]
	return p, ok
}

// Near appends to dst all ids within radius of p (excluding none) and
// returns the extended slice. Results are in arbitrary but deterministic
// order for a fixed insertion history.
func (g *Grid) Near(dst []int32, p Point, radius float64) []int32 {
	if radius < 0 {
		return dst
	}
	r2 := radius * radius
	minC := g.cellOf(Point{p.X - radius, p.Y - radius})
	maxC := g.cellOf(Point{p.X + radius, p.Y + radius})
	minCX, minCY := minC%g.cols, minC/g.cols
	maxCX, maxCY := maxC%g.cols, maxC/g.cols
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			for _, id := range g.cells[cy*g.cols+cx] {
				if g.where[id].Dist2(p) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// InRect appends all ids inside r to dst and returns the extended slice.
func (g *Grid) InRect(dst []int32, r Rect) []int32 {
	minC := g.cellOf(r.Min)
	maxC := g.cellOf(Point{r.Max.X, r.Max.Y})
	minCX, minCY := minC%g.cols, minC/g.cols
	maxCX, maxCY := maxC%g.cols, maxC/g.cols
	for cy := minCY; cy <= maxCY; cy++ {
		for cx := minCX; cx <= maxCX; cx++ {
			for _, id := range g.cells[cy*g.cols+cx] {
				if r.Contains(g.where[id]) {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

func removeID(s []int32, id int32) []int32 {
	for i, v := range s {
		if v == id {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}
