package geo

// ShardMap partitions a bounded area into vertical bands of equal
// width, one per shard. It is the spatial key behind the sharded
// simulation core: an actor is owned by the shard whose band holds its
// position, and crossing a band boundary under mobility triggers a
// shard migration. Vertical bands suit the battlefield workloads here —
// radio traffic is dominated by short-range neighbor exchange, so most
// frames stay inside one band and the conservative window protocol only
// pays for the boundary crossings.
type ShardMap struct {
	bounds Rect
	shards int
	width  float64
}

// NewShardMap partitions bounds into shards vertical bands. A
// non-positive shard count gets one band.
func NewShardMap(bounds Rect, shards int) *ShardMap {
	if shards < 1 {
		shards = 1
	}
	w := bounds.Width() / float64(shards)
	if w <= 0 {
		w = 1
	}
	return &ShardMap{bounds: bounds, shards: shards, width: w}
}

// Shards returns the number of bands.
func (m *ShardMap) Shards() int { return m.shards }

// Bounds returns the partitioned area.
func (m *ShardMap) Bounds() Rect { return m.bounds }

// ShardOf returns the shard owning position p. Positions outside the
// bounds clamp to the nearest band, so every point maps somewhere.
func (m *ShardMap) ShardOf(p Point) int {
	i := int((p.X - m.bounds.Min.X) / m.width)
	if i < 0 {
		return 0
	}
	if i >= m.shards {
		return m.shards - 1
	}
	return i
}

// Band returns shard i's territory (clamped to the valid range).
func (m *ShardMap) Band(i int) Rect {
	if i < 0 {
		i = 0
	}
	if i >= m.shards {
		i = m.shards - 1
	}
	min := m.bounds.Min.X + float64(i)*m.width
	max := min + m.width
	if i == m.shards-1 {
		max = m.bounds.Max.X
	}
	return Rect{Min: Point{min, m.bounds.Min.Y}, Max: Point{max, m.bounds.Max.Y}}
}

// Crossed reports whether moving from old to new changes the owning
// shard, returning the new shard either way — the mobility layer calls
// this on every step to decide whether to stage a migration.
func (m *ShardMap) Crossed(old, now Point) (int, bool) {
	a, b := m.ShardOf(old), m.ShardOf(now)
	return b, a != b
}
