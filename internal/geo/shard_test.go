package geo

import "testing"

func TestShardMapPartition(t *testing.T) {
	m := NewShardMap(NewRect(Point{0, 0}, Point{1200, 800}), 4)
	if m.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", m.Shards())
	}
	cases := []struct {
		p    Point
		want int
	}{
		{Point{0, 0}, 0},
		{Point{299, 799}, 0},
		{Point{300, 0}, 1},
		{Point{899, 400}, 2},
		{Point{1199, 0}, 3},
		{Point{-50, 0}, 0},    // clamped left
		{Point{5000, 0}, 3},   // clamped right
		{Point{1200, 400}, 3}, // boundary clamps into the last band
	}
	for _, tc := range cases {
		if got := m.ShardOf(tc.p); got != tc.want {
			t.Errorf("ShardOf(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestShardMapBandsTile(t *testing.T) {
	bounds := NewRect(Point{100, 0}, Point{1300, 900})
	m := NewShardMap(bounds, 5)
	// Bands tile the bounds: contiguous, non-overlapping, full cover.
	prev := bounds.Min.X
	for i := 0; i < m.Shards(); i++ {
		b := m.Band(i)
		if b.Min.X != prev {
			t.Fatalf("band %d starts at %v, want %v", i, b.Min.X, prev)
		}
		if b.Min.Y != bounds.Min.Y || b.Max.Y != bounds.Max.Y {
			t.Fatalf("band %d does not span the full height: %v", i, b)
		}
		prev = b.Max.X
	}
	if prev != bounds.Max.X {
		t.Fatalf("bands end at %v, want %v", prev, bounds.Max.X)
	}
	// Every band point maps back to its band.
	for i := 0; i < m.Shards(); i++ {
		c := m.Band(i).Center()
		if got := m.ShardOf(c); got != i {
			t.Fatalf("ShardOf(center of band %d) = %d", i, got)
		}
	}
}

func TestShardMapCrossed(t *testing.T) {
	m := NewShardMap(NewRect(Point{0, 0}, Point{1000, 1000}), 4)
	if sh, moved := m.Crossed(Point{100, 100}, Point{200, 900}); moved || sh != 0 {
		t.Fatalf("intra-band move reported crossing (shard %d, moved %v)", sh, moved)
	}
	if sh, moved := m.Crossed(Point{240, 100}, Point{260, 100}); !moved || sh != 1 {
		t.Fatalf("boundary crossing missed (shard %d, moved %v)", sh, moved)
	}
}

func TestShardMapDegenerate(t *testing.T) {
	m := NewShardMap(Rect{}, 0)
	if m.Shards() != 1 {
		t.Fatalf("degenerate map shards = %d, want 1", m.Shards())
	}
	if got := m.ShardOf(Point{3, 4}); got != 0 {
		t.Fatalf("degenerate ShardOf = %d, want 0", got)
	}
}
