package geo

import "testing"

func TestShardMapPartition(t *testing.T) {
	m := NewShardMap(NewRect(Point{0, 0}, Point{1200, 800}), 4)
	if m.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", m.Shards())
	}
	cases := []struct {
		p    Point
		want int
	}{
		{Point{0, 0}, 0},
		{Point{299, 799}, 0},
		{Point{300, 0}, 1},
		{Point{899, 400}, 2},
		{Point{1199, 0}, 3},
		{Point{-50, 0}, 0},    // clamped left
		{Point{5000, 0}, 3},   // clamped right
		{Point{1200, 400}, 3}, // boundary clamps into the last band
	}
	for _, tc := range cases {
		if got := m.ShardOf(tc.p); got != tc.want {
			t.Errorf("ShardOf(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

func TestShardMapBandsTile(t *testing.T) {
	bounds := NewRect(Point{100, 0}, Point{1300, 900})
	m := NewShardMap(bounds, 5)
	// Bands tile the bounds: contiguous, non-overlapping, full cover.
	prev := bounds.Min.X
	for i := 0; i < m.Shards(); i++ {
		b := m.Band(i)
		if b.Min.X != prev {
			t.Fatalf("band %d starts at %v, want %v", i, b.Min.X, prev)
		}
		if b.Min.Y != bounds.Min.Y || b.Max.Y != bounds.Max.Y {
			t.Fatalf("band %d does not span the full height: %v", i, b)
		}
		prev = b.Max.X
	}
	if prev != bounds.Max.X {
		t.Fatalf("bands end at %v, want %v", prev, bounds.Max.X)
	}
	// Every band point maps back to its band.
	for i := 0; i < m.Shards(); i++ {
		c := m.Band(i).Center()
		if got := m.ShardOf(c); got != i {
			t.Fatalf("ShardOf(center of band %d) = %d", i, got)
		}
	}
}

func TestShardMapCrossed(t *testing.T) {
	m := NewShardMap(NewRect(Point{0, 0}, Point{1000, 1000}), 4)
	if sh, moved := m.Crossed(Point{100, 100}, Point{200, 900}); moved || sh != 0 {
		t.Fatalf("intra-band move reported crossing (shard %d, moved %v)", sh, moved)
	}
	if sh, moved := m.Crossed(Point{240, 100}, Point{260, 100}); !moved || sh != 1 {
		t.Fatalf("boundary crossing missed (shard %d, moved %v)", sh, moved)
	}
}

// TestShardMapBandEdges pins seam ownership: a position exactly on an
// interior band boundary belongs to the band on its right (bands are
// left-inclusive), and the world's right edge clamps into the last
// band. Mobility puts assets exactly on these lines, and two shards
// both claiming (or both disclaiming) a seam asset would corrupt the
// migration protocol.
func TestShardMapBandEdges(t *testing.T) {
	m := NewShardMap(NewRect(Point{0, 0}, Point{1200, 800}), 4) // width 300, exact in float64
	for i := 1; i < m.Shards(); i++ {
		seam := m.Band(i).Min.X
		if seam != m.Band(i-1).Max.X {
			t.Fatalf("bands %d/%d do not share a seam: %v vs %v", i-1, i, m.Band(i-1).Max.X, seam)
		}
		if got := m.ShardOf(Point{seam, 400}); got != i {
			t.Errorf("ShardOf(seam %v) = %d, want right band %d", seam, got, i)
		}
	}
	if got := m.ShardOf(Point{1200, 0}); got != 3 {
		t.Errorf("ShardOf(right edge) = %d, want last band 3", got)
	}
	if got := m.ShardOf(Point{0, 800}); got != 0 {
		t.Errorf("ShardOf(left edge) = %d, want 0", got)
	}
}

// TestShardMapZeroWidthWorld covers the degenerate geometry where the
// bounds have no horizontal extent (all assets on one vertical line):
// the map must still hand out valid shard indices rather than divide by
// zero, with the whole line owned by shard 0 and the tiling invariants
// intact.
func TestShardMapZeroWidthWorld(t *testing.T) {
	m := NewShardMap(NewRect(Point{500, 0}, Point{500, 800}), 4)
	if m.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", m.Shards())
	}
	for _, p := range []Point{{500, 0}, {500, 400}, {500, 800}, {499, 100}, {501, 100}, {5000, 0}} {
		got := m.ShardOf(p)
		if got < 0 || got >= m.Shards() {
			t.Fatalf("ShardOf(%v) = %d, outside [0,%d)", p, got, m.Shards())
		}
	}
	if got := m.ShardOf(Point{500, 400}); got != 0 {
		t.Errorf("ShardOf(on the line) = %d, want 0", got)
	}
	for i := 0; i < m.Shards(); i++ {
		if b := m.Band(i); b.Min.Y != 0 || b.Max.Y != 800 {
			t.Errorf("band %d lost the vertical extent: %v", i, b)
		}
	}
}

// TestShardMapCrossedOnSeam pins the mobility edge case of a step
// landing exactly on a band boundary: the move must report exactly one
// crossing into the right-hand band, and a subsequent step that stays
// on the seam must not report a second one.
func TestShardMapCrossedOnSeam(t *testing.T) {
	m := NewShardMap(NewRect(Point{0, 0}, Point{1000, 1000}), 4) // seams at 250, 500, 750
	if sh, moved := m.Crossed(Point{240, 100}, Point{250, 100}); !moved || sh != 1 {
		t.Errorf("landing on seam 250: shard %d moved %v, want crossing into 1", sh, moved)
	}
	if sh, moved := m.Crossed(Point{250, 100}, Point{250, 900}); moved || sh != 1 {
		t.Errorf("sliding along seam 250: shard %d moved %v, want no crossing", sh, moved)
	}
	if sh, moved := m.Crossed(Point{250, 100}, Point{249, 100}); !moved || sh != 0 {
		t.Errorf("stepping off seam 250 leftward: shard %d moved %v, want crossing into 0", sh, moved)
	}
	if sh, moved := m.Crossed(Point{990, 100}, Point{1000, 100}); moved || sh != 3 {
		t.Errorf("landing on the world's right edge: shard %d moved %v, want clamp into 3 without crossing", sh, moved)
	}
}

func TestShardMapDegenerate(t *testing.T) {
	m := NewShardMap(Rect{}, 0)
	if m.Shards() != 1 {
		t.Fatalf("degenerate map shards = %d, want 1", m.Shards())
	}
	if got := m.ShardOf(Point{3, 4}); got != 0 {
		t.Fatalf("degenerate ShardOf = %d, want 0", got)
	}
}
