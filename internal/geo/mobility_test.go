package geo

import (
	"math"
	"testing"
	"time"

	"iobt/internal/sim"
)

func TestStatic(t *testing.T) {
	s := &Static{P: Point{5, 5}}
	if s.Step(time.Hour) != (Point{5, 5}) || s.Pos() != (Point{5, 5}) {
		t.Error("static node moved")
	}
}

func TestRandomWaypointStaysInBounds(t *testing.T) {
	terr := NewOpenTerrain(1000, 1000)
	rng := sim.NewRNG(1)
	w := NewRandomWaypoint(terr, rng, Point{500, 500}, 1, 10, time.Second)
	for i := 0; i < 5000; i++ {
		p := w.Step(time.Second)
		if !terr.Bounds.Contains(p) && p != terr.Bounds.Max {
			// Clamp semantics allow boundary equality.
			if p.X < 0 || p.Y < 0 || p.X > 1000 || p.Y > 1000 {
				t.Fatalf("escaped bounds at %v", p)
			}
		}
	}
}

func TestRandomWaypointSpeedRespected(t *testing.T) {
	terr := NewOpenTerrain(10000, 10000)
	rng := sim.NewRNG(2)
	const maxSpeed = 5.0
	w := NewRandomWaypoint(terr, rng, Point{5000, 5000}, 1, maxSpeed, 0)
	prev := w.Pos()
	for i := 0; i < 1000; i++ {
		cur := w.Step(time.Second)
		if d := cur.Dist(prev); d > maxSpeed+1e-9 {
			t.Fatalf("moved %v m in 1s, max %v", d, maxSpeed)
		}
		prev = cur
	}
}

func TestRandomWaypointPauses(t *testing.T) {
	terr := NewOpenTerrain(100, 100)
	rng := sim.NewRNG(3)
	w := NewRandomWaypoint(terr, rng, Point{50, 50}, 10, 10, time.Minute)
	// Walk until a waypoint is reached (position == dest triggers rest).
	var atRest bool
	for i := 0; i < 10000; i++ {
		before := w.Pos()
		after := w.Step(100 * time.Millisecond)
		if w.resting > 0 && before == after {
			atRest = true
			break
		}
	}
	if !atRest {
		t.Error("walker never paused at a waypoint")
	}
}

func TestPatrolCycles(t *testing.T) {
	route := []Point{{0, 0}, {100, 0}, {100, 100}, {0, 100}}
	p := NewPatrol(route, 10)
	if p.Pos() != (Point{0, 0}) {
		t.Fatalf("start = %v", p.Pos())
	}
	// Perimeter is 400 m at 10 m/s -> 40 s per lap.
	p.Step(40 * time.Second)
	if d := p.Pos().Dist(Point{0, 0}); d > 1e-6 {
		t.Errorf("after one lap at %v, dist from start %v", p.Pos(), d)
	}
	p.Step(10 * time.Second)
	if d := p.Pos().Dist(Point{100, 0}); d > 1e-6 {
		t.Errorf("quarter lap position = %v", p.Pos())
	}
}

func TestPatrolDegenerate(t *testing.T) {
	p := NewPatrol([]Point{{5, 5}}, 10)
	if p.Step(time.Hour) != (Point{5, 5}) {
		t.Error("single-point patrol moved")
	}
	empty := NewPatrol(nil, 10)
	_ = empty.Step(time.Second) // must not panic
}

func TestPatrolCopiesRoute(t *testing.T) {
	route := []Point{{0, 0}, {10, 0}}
	p := NewPatrol(route, 1)
	route[1] = Point{999, 999}
	p.Step(10 * time.Second)
	if p.Pos().Dist(Point{10, 0}) > 1e-6 {
		t.Error("patrol aliased caller's route slice")
	}
}

func TestConvoyFollows(t *testing.T) {
	leader := NewPatrol([]Point{{0, 0}, {100, 0}}, 10)
	follower := NewConvoy(leader, Vec{-5, 0})
	leader.Step(2 * time.Second)
	if got := follower.Step(2 * time.Second); got.Dist(Point{15, 0}) > 1e-6 {
		t.Errorf("follower = %v, want (15,0)", got)
	}
}

func TestTerrainRangeFactor(t *testing.T) {
	open := NewOpenTerrain(1000, 1000)
	if f := open.RangeFactor(Point{0, 0}, Point{900, 900}); f != 1 {
		t.Errorf("open terrain factor = %v", f)
	}
	urban := NewUrbanTerrain(1000, 1000, 100)
	near := urban.RangeFactor(Point{0, 0}, Point{10, 10})
	far := urban.RangeFactor(Point{0, 0}, Point{900, 900})
	if !(far < near && near <= 1) {
		t.Errorf("urban clutter not monotone: near=%v far=%v", near, far)
	}
	if far < 0.05 {
		t.Errorf("factor below floor: %v", far)
	}
	sparse := NewSparseTerrain(1000, 1000)
	if f := sparse.RangeFactor(Point{0, 0}, Point{900, 900}); !(f > 0.8 && f < 1) {
		t.Errorf("sparse factor = %v", f)
	}
}

func TestSnapToStreet(t *testing.T) {
	urban := NewUrbanTerrain(1000, 1000, 100)
	p := urban.SnapToStreet(Point{104, 250})
	// X=104 is 4 from the 100-grid line; Y=250 is 50 from one. Snap X.
	if p.X != 100 || p.Y != 250 {
		t.Errorf("SnapToStreet = %v", p)
	}
	open := NewOpenTerrain(1000, 1000)
	if open.SnapToStreet(Point{104, 250}) != (Point{104, 250}) {
		t.Error("open terrain should not snap")
	}
}

func TestRandomPointInBounds(t *testing.T) {
	terr := NewUrbanTerrain(500, 300, 50)
	rng := sim.NewRNG(4)
	for i := 0; i < 1000; i++ {
		p := terr.RandomPoint(rng)
		if p.X < 0 || p.X >= 500 || p.Y < 0 || p.Y >= 300 {
			t.Fatalf("point out of bounds: %v", p)
		}
	}
}

func TestRoundTo(t *testing.T) {
	if v := roundTo(149, 100); v != 100 {
		t.Errorf("roundTo(149,100) = %v", v)
	}
	if v := roundTo(150, 100); v != 200 {
		t.Errorf("roundTo(150,100) = %v", v)
	}
	if v := roundTo(0, 100); v != 0 {
		t.Errorf("roundTo(0,100) = %v", v)
	}
}

func TestAbsf(t *testing.T) {
	if absf(-3) != 3 || absf(3) != 3 || absf(0) != 0 {
		t.Error("absf wrong")
	}
	if !math.IsInf(absf(math.Inf(-1)), 1) {
		t.Error("absf(-inf) should be +inf")
	}
}

func TestTerrainKindString(t *testing.T) {
	if TerrainOpen.String() != "open" || TerrainUrban.String() != "urban" ||
		TerrainSparse.String() != "sparse" || TerrainKind(0).String() != "unknown" {
		t.Error("terrain kind names wrong")
	}
}

func TestNewUrbanTerrainDefaults(t *testing.T) {
	u := NewUrbanTerrain(100, 100, 0)
	if u.BlockSize != 100 {
		t.Errorf("default block size = %v", u.BlockSize)
	}
}

func TestRandomWaypointClampedSpeeds(t *testing.T) {
	terr := NewOpenTerrain(100, 100)
	rng := sim.NewRNG(9)
	// Invalid speeds fall back to sane defaults.
	w := NewRandomWaypoint(terr, rng, Point{X: 50, Y: 50}, -1, -2, 0)
	if w.minSpeed <= 0 || w.maxSpeed < w.minSpeed {
		t.Errorf("speed clamping failed: %v..%v", w.minSpeed, w.maxSpeed)
	}
}
