// Package geo provides 2-D geometry, spatial indexing, terrain maps, and
// mobility models for the battlefield simulator.
//
// Distances are in meters and the coordinate system is a flat plane,
// which is adequate for the city-to-region scales the experiments use.
package geo

import (
	"fmt"
	"math"
)

// Point is a position on the plane, in meters.
type Point struct {
	X, Y float64
}

// Add returns p translated by v.
func (p Point) Add(v Vec) Point { return Point{p.X + v.DX, p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vec { return Vec{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// Dist2 returns the squared distance (cheaper when only comparing).
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String renders the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Vec is a displacement on the plane, in meters.
type Vec struct {
	DX, DY float64
}

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{v.DX * k, v.DY * k} }

// Len returns the vector's length.
func (v Vec) Len() float64 { return math.Hypot(v.DX, v.DY) }

// Unit returns the unit vector in v's direction, or the zero vector if v
// has zero length.
func (v Vec) Unit() Vec {
	l := v.Len()
	if l == 0 {
		return Vec{}
	}
	return Vec{v.DX / l, v.DY / l}
}

// Rect is an axis-aligned rectangle. Min is inclusive, Max exclusive for
// containment purposes; a degenerate rectangle contains nothing.
type Rect struct {
	Min, Max Point
}

// NewRect returns the rectangle spanning the two corner points in any
// order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Clamp returns the point inside r closest to p.
func (r Rect) Clamp(p Point) Point {
	x := math.Max(r.Min.X, math.Min(p.X, r.Max.X))
	y := math.Max(r.Min.Y, math.Min(p.Y, r.Max.Y))
	return Point{x, y}
}

// Intersects reports whether r and o overlap.
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X < o.Max.X && o.Min.X < r.Max.X &&
		r.Min.Y < o.Max.Y && o.Min.Y < r.Max.Y
}

// Circle is a disk used for sensor footprints and jamming fields.
type Circle struct {
	Center Point
	Radius float64
}

// Contains reports whether p lies inside the circle.
func (c Circle) Contains(p Point) bool {
	return c.Center.Dist2(p) <= c.Radius*c.Radius
}

// Bounds returns the circle's bounding rectangle.
func (c Circle) Bounds() Rect {
	return Rect{
		Min: Point{c.Center.X - c.Radius, c.Center.Y - c.Radius},
		Max: Point{c.Center.X + c.Radius, c.Center.Y + c.Radius},
	}
}
