package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := p.Add(Vec{3, 4})
	if q != (Point{4, 6}) {
		t.Errorf("Add = %v", q)
	}
	v := q.Sub(p)
	if v != (Vec{3, 4}) {
		t.Errorf("Sub = %v", v)
	}
	if d := p.Dist(q); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d2 := p.Dist2(q); math.Abs(d2-25) > 1e-12 {
		t.Errorf("Dist2 = %v, want 25", d2)
	}
}

func TestVecUnit(t *testing.T) {
	u := Vec{3, 4}.Unit()
	if math.Abs(u.Len()-1) > 1e-12 {
		t.Errorf("unit length = %v", u.Len())
	}
	if z := (Vec{}).Unit(); z != (Vec{}) {
		t.Errorf("zero vec unit = %v", z)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{10, 20}, Point{0, 0})
	if r.Min != (Point{0, 0}) || r.Max != (Point{10, 20}) {
		t.Fatalf("NewRect normalized wrong: %+v", r)
	}
	if r.Width() != 10 || r.Height() != 20 || r.Area() != 200 {
		t.Error("dimensions wrong")
	}
	if r.Center() != (Point{5, 10}) {
		t.Errorf("Center = %v", r.Center())
	}
	if !r.Contains(Point{5, 5}) || r.Contains(Point{10, 5}) || r.Contains(Point{-1, 5}) {
		t.Error("Contains wrong")
	}
}

func TestRectClamp(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	if got := r.Clamp(Point{-5, 5}); got != (Point{0, 5}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Clamp(Point{20, 20}); got != (Point{10, 10}) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Clamp(Point{3, 4}); got != (Point{3, 4}) {
		t.Errorf("Clamp moved interior point: %v", got)
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{10, 10})
	b := NewRect(Point{5, 5}, Point{15, 15})
	c := NewRect(Point{10, 10}, Point{20, 20})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects should intersect")
	}
	if a.Intersects(c) {
		t.Error("touching rects should not intersect (half-open)")
	}
}

func TestCircle(t *testing.T) {
	c := Circle{Center: Point{0, 0}, Radius: 5}
	if !c.Contains(Point{3, 4}) {
		t.Error("boundary point should be contained")
	}
	if c.Contains(Point{4, 4}) {
		t.Error("exterior point contained")
	}
	b := c.Bounds()
	if b.Min != (Point{-5, -5}) || b.Max != (Point{5, 5}) {
		t.Errorf("Bounds = %+v", b)
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestDistanceMetricProperties(t *testing.T) {
	prop := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPointString(t *testing.T) {
	if (Point{X: 1.25, Y: 2}).String() == "" {
		t.Error("empty String")
	}
}

func TestVecScale(t *testing.T) {
	v := Vec{DX: 1, DY: -2}.Scale(3)
	if v != (Vec{DX: 3, DY: -6}) {
		t.Errorf("Scale = %v", v)
	}
}
