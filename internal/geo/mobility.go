package geo

import (
	"time"

	"iobt/internal/sim"
)

// Mobility produces a node's position as a function of virtual time.
// Implementations are stepped by the world at a fixed cadence; Step
// returns the new position after dt has elapsed.
type Mobility interface {
	// Step advances the model by dt and returns the new position.
	Step(dt time.Duration) Point
	// Pos returns the current position without advancing.
	Pos() Point
}

// Static is a node that never moves.
type Static struct{ P Point }

var _ Mobility = (*Static)(nil)

// Step returns the fixed position.
func (s *Static) Step(time.Duration) Point { return s.P }

// Pos returns the fixed position.
func (s *Static) Pos() Point { return s.P }

// RandomWaypoint implements the classic random-waypoint model: pick a
// uniform destination, travel at a uniform speed, pause, repeat.
type RandomWaypoint struct {
	terrain  *Terrain
	rng      *sim.RNG
	pos      Point
	dest     Point
	speed    float64 // m/s
	minSpeed float64
	maxSpeed float64
	pause    time.Duration
	resting  time.Duration
}

var _ Mobility = (*RandomWaypoint)(nil)

// NewRandomWaypoint returns a walker starting at start with speeds drawn
// uniformly from [minSpeed,maxSpeed] m/s and the given pause time at each
// waypoint.
func NewRandomWaypoint(t *Terrain, rng *sim.RNG, start Point, minSpeed, maxSpeed float64, pause time.Duration) *RandomWaypoint {
	if minSpeed <= 0 {
		minSpeed = 0.5
	}
	if maxSpeed < minSpeed {
		maxSpeed = minSpeed
	}
	w := &RandomWaypoint{
		terrain:  t,
		rng:      rng,
		pos:      t.Bounds.Clamp(start),
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		pause:    pause,
	}
	w.pickDest()
	return w
}

func (w *RandomWaypoint) pickDest() {
	w.dest = w.terrain.RandomPoint(w.rng)
	w.speed = w.rng.Uniform(w.minSpeed, w.maxSpeed)
}

// Pos returns the current position.
func (w *RandomWaypoint) Pos() Point { return w.pos }

// Step advances the walker by dt.
func (w *RandomWaypoint) Step(dt time.Duration) Point {
	if w.resting > 0 {
		if dt <= w.resting {
			w.resting -= dt
			return w.pos
		}
		dt -= w.resting
		w.resting = 0
	}
	dist := w.speed * dt.Seconds()
	to := w.dest.Sub(w.pos)
	if to.Len() <= dist {
		w.pos = w.dest
		w.resting = w.pause
		w.pickDest()
		return w.pos
	}
	w.pos = w.pos.Add(to.Unit().Scale(dist))
	return w.pos
}

// Patrol moves a node around a fixed cyclic route at constant speed,
// modeling guard and UAV orbits.
type Patrol struct {
	route []Point
	pos   Point
	next  int
	speed float64
}

var _ Mobility = (*Patrol)(nil)

// NewPatrol returns a patroller over route at speed m/s. The route must
// have at least one point; a single point behaves like Static.
func NewPatrol(route []Point, speed float64) *Patrol {
	r := make([]Point, len(route))
	copy(r, route)
	p := &Patrol{route: r, speed: speed}
	if len(r) > 0 {
		p.pos = r[0]
		p.next = 1 % len(r)
	}
	return p
}

// Pos returns the current position.
func (p *Patrol) Pos() Point { return p.pos }

// Step advances the patrol by dt.
func (p *Patrol) Step(dt time.Duration) Point {
	if len(p.route) < 2 || p.speed <= 0 {
		return p.pos
	}
	dist := p.speed * dt.Seconds()
	for dist > 0 {
		target := p.route[p.next]
		to := target.Sub(p.pos)
		l := to.Len()
		if l <= dist {
			p.pos = target
			dist -= l
			p.next = (p.next + 1) % len(p.route)
			continue
		}
		p.pos = p.pos.Add(to.Unit().Scale(dist))
		dist = 0
	}
	return p.pos
}

// Convoy follows a leader mobility with a fixed offset, modeling vehicle
// columns and human teams that move together.
type Convoy struct {
	leader Mobility
	offset Vec
}

var _ Mobility = (*Convoy)(nil)

// NewConvoy returns a follower that trails leader by offset.
func NewConvoy(leader Mobility, offset Vec) *Convoy {
	return &Convoy{leader: leader, offset: offset}
}

// Pos returns the follower position.
func (c *Convoy) Pos() Point { return c.leader.Pos().Add(c.offset) }

// Step advances the leader is NOT done here — the leader is stepped by
// its own registration; Convoy just re-reads it.
func (c *Convoy) Step(time.Duration) Point { return c.Pos() }
