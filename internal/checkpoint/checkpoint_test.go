package checkpoint

import (
	"math"
	"testing"
	"time"

	"iobt/internal/sim"
)

func TestCodecRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint64(42)
	e.Int64(-7)
	e.Int(123456)
	e.Float64(math.Pi)
	e.Float64(math.Inf(1))
	e.Bool(true)
	e.Bool(false)
	e.String("composite")
	e.String("")

	d := NewDecoder(e.Bytes())
	if v := d.Uint64(); v != 42 {
		t.Errorf("uint64: got %d", v)
	}
	if v := d.Int64(); v != -7 {
		t.Errorf("int64: got %d", v)
	}
	if v := d.Int(); v != 123456 {
		t.Errorf("int: got %d", v)
	}
	if v := d.Float64(); v != math.Pi {
		t.Errorf("float64: got %v", v)
	}
	if v := d.Float64(); !math.IsInf(v, 1) {
		t.Errorf("inf: got %v", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("bool round trip failed")
	}
	if v := d.String(); v != "composite" {
		t.Errorf("string: got %q", v)
	}
	if v := d.String(); v != "" {
		t.Errorf("empty string: got %q", v)
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Errorf("%d bytes left over", d.Remaining())
	}
}

func TestCodecTruncation(t *testing.T) {
	e := NewEncoder()
	e.String("hello")
	d := NewDecoder(e.Bytes()[:4])
	_ = d.String()
	if d.Err() == nil {
		t.Fatal("want truncation error")
	}
	// Sticky: further reads stay failed and return zero values.
	if v := d.Uint64(); v != 0 {
		t.Errorf("read after error: got %d", v)
	}
}

// fakeComp is a Snapshotter over a single int.
type fakeComp struct {
	name  string
	state int
}

func (f *fakeComp) SnapshotName() string { return f.name }
func (f *fakeComp) Snapshot() []byte {
	e := NewEncoder()
	e.Int(f.state)
	return e.Bytes()
}
func (f *fakeComp) Restore(data []byte) error {
	d := NewDecoder(data)
	f.state = d.Int()
	return d.Err()
}

func TestCoordinatorCadenceAndRestore(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &fakeComp{name: "a", state: 1}
	b := &fakeComp{name: "b", state: 10}
	c := NewCoordinator(eng, 10*time.Second)
	c.Register(a)
	c.Register(b)
	c.Start()

	// Mutate state over time so successive checkpoints differ.
	eng.Every(time.Second, "mutate", func() { a.state++; b.state++ })
	if err := eng.Run(35 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.Stop()

	if got := c.Taken.Value(); got != 3 {
		t.Fatalf("want 3 checkpoints over 35s at 10s cadence, got %d", got)
	}
	last := c.Last()
	if last == nil || last.Seq != 3 || last.At != 30*time.Second {
		t.Fatalf("unexpected last checkpoint: %+v", last)
	}

	// Damage the state, then restore the cut.
	a.state, b.state = -1, -1
	if err := c.RestoreLast(); err != nil {
		t.Fatal(err)
	}
	// At the shared t=30s timestamp the checkpoint event was queued
	// first (armed at t=20s, before the mutate ticker's t=29s arming),
	// so the cut sees 29 mutations.
	if a.state != 30 || b.state != 39 {
		t.Errorf("restored state (%d,%d), want (30,39)", a.state, b.state)
	}
}

func TestCoordinatorGate(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &fakeComp{name: "a"}
	c := NewCoordinator(eng, time.Second)
	c.Register(a)
	open := false
	c.Gate = func() bool { return open }
	c.Start()
	_ = eng.Run(3 * time.Second)
	if c.Taken.Value() != 0 || c.Skipped.Value() != 3 {
		t.Fatalf("gated: taken=%d skipped=%d", c.Taken.Value(), c.Skipped.Value())
	}
	open = true
	_ = eng.Run(2 * time.Second)
	if c.Taken.Value() != 2 {
		t.Fatalf("ungated: taken=%d", c.Taken.Value())
	}
}

func TestRestoreWithoutCheckpoint(t *testing.T) {
	c := NewCoordinator(sim.NewEngine(1), time.Second)
	if err := c.RestoreLast(); err == nil {
		t.Fatal("want error restoring with no checkpoint")
	}
}

func TestDigestStableAcrossRegistrationOrder(t *testing.T) {
	mk := func(first, second *fakeComp) uint64 {
		eng := sim.NewEngine(1)
		c := NewCoordinator(eng, 0)
		c.Register(first)
		c.Register(second)
		return c.TakeNow().Digest()
	}
	d1 := mk(&fakeComp{name: "a", state: 5}, &fakeComp{name: "b", state: 6})
	d2 := mk(&fakeComp{name: "b", state: 6}, &fakeComp{name: "a", state: 5})
	if d1 != d2 {
		t.Errorf("digest depends on registration order: %x vs %x", d1, d2)
	}
	d3 := mk(&fakeComp{name: "a", state: 7}, &fakeComp{name: "b", state: 6})
	if d1 == d3 {
		t.Error("digest blind to state change")
	}
}

func TestJournalCompare(t *testing.T) {
	a := NewJournal(1, "plan p")
	b := NewJournal(1, "plan p")
	a.Logf(time.Second, "inc %d", 1)
	b.Logf(time.Second, "inc %d", 1)
	if d := Compare(a, b); d != nil {
		t.Fatalf("identical journals diverged: %v", d)
	}
	if a.Digest() != b.Digest() {
		t.Error("identical journals have different digests")
	}
	b.Logf(2*time.Second, "inc 2")
	d := Compare(a, b)
	if d == nil || d.Index != 1 {
		t.Fatalf("want divergence at 1, got %v", d)
	}
	a.Logf(2*time.Second, "inc 3")
	d = Compare(a, b)
	if d == nil || d.Index != 1 {
		t.Fatalf("want content divergence at 1, got %v", d)
	}
}

func TestVerifyReplay(t *testing.T) {
	run := func(j *Journal) {
		eng := sim.NewEngine(j.Seed)
		rng := eng.Stream("replay-test")
		eng.Every(time.Second, "tick", func() {
			j.Logf(eng.Now(), "draw %.6f", rng.Float64())
		})
		_ = eng.Run(5 * time.Second)
	}
	if d := VerifyReplay(7, "none", run); d != nil {
		t.Fatalf("deterministic run diverged: %v", d)
	}

	// A run that leaks nondeterminism (state surviving across runs)
	// must be caught.
	calls := 0
	bad := func(j *Journal) {
		calls++
		j.Logf(0, "call %d", calls)
	}
	if d := VerifyReplay(7, "none", bad); d == nil {
		t.Fatal("nondeterministic run not caught")
	}
}
