package checkpoint

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"time"
)

// This file is the durability layer under the coordinator: an
// append-only journal file of checkpoint records, one file per
// mission. The mission service persists every periodic cut here so a
// crashed worker can be restarted from its latest snapshot instead of
// from nothing. The format is built for crash consistency: a process
// can die mid-append (torn write) or scribble on the tail, and
// recovery must still yield every record written before the damage —
// never an error for a recoverable file, never a silently accepted
// corrupt record.
//
// Layout:
//
//	header:  8-byte magic "iobtckpt" + 8-byte little-endian version
//	record:  8-byte payload length + 8-byte FNV-1a checksum + payload
//
// The payload is the deterministic codec encoding of one Record. A
// scan stops at the first incomplete or checksum-failing record; what
// precedes it is the durable prefix, and OpenStore truncates the torn
// tail so subsequent appends extend a clean file.

// storeMagic identifies a checkpoint journal file.
const storeMagic = "iobtckpt"

// StoreVersion is the journal file format version.
const StoreVersion = 1

// ErrNotStore marks a file that does not carry the journal magic — the
// store refuses to recover (or truncate!) a file it does not own.
var ErrNotStore = errors.New("checkpoint: not a checkpoint journal file")

// Record is one durable checkpoint entry: the cut itself plus the
// replay anchor needed to re-reach the cut deterministically.
type Record struct {
	// Seq is the checkpoint sequence number (Checkpoint.Seq).
	Seq int
	// At is the virtual time of the cut.
	At time.Duration
	// Processed is the engine's executed-event count at the cut: a
	// recovering worker replays the mission until exactly this many
	// events have run, which lands it on the cut instant even when
	// several events share the cut's timestamp.
	Processed uint64
	// Checkpoint holds the captured sections.
	Checkpoint *Checkpoint
}

// encodeRecord serializes one record payload with the deterministic
// codec.
func encodeRecord(rec Record) []byte {
	e := NewEncoder()
	e.Int(rec.Seq)
	e.Int64(int64(rec.At))
	e.Uint64(rec.Processed)
	n := 0
	if rec.Checkpoint != nil {
		n = len(rec.Checkpoint.Sections)
	}
	e.Int(n)
	for i := 0; i < n; i++ {
		s := rec.Checkpoint.Sections[i]
		e.String(s.Name)
		e.String(string(s.Data))
	}
	return e.Bytes()
}

// decodeRecord is encodeRecord's inverse.
func decodeRecord(payload []byte) (Record, error) {
	d := NewDecoder(payload)
	var rec Record
	rec.Seq = d.Int()
	rec.At = time.Duration(d.Int64())
	rec.Processed = d.Uint64()
	n := d.Int()
	if d.Err() != nil {
		return rec, d.Err()
	}
	if n < 0 || n > len(payload) {
		return rec, fmt.Errorf("checkpoint: record claims %d sections in %d payload bytes", n, len(payload))
	}
	ck := &Checkpoint{Seq: rec.Seq, At: rec.At}
	for i := 0; i < n; i++ {
		name := d.String()
		data := d.String()
		if d.Err() != nil {
			return rec, d.Err()
		}
		ck.Sections = append(ck.Sections, Section{Name: name, Data: []byte(data)})
	}
	if d.Remaining() != 0 {
		return rec, fmt.Errorf("checkpoint: %d trailing bytes after record", d.Remaining())
	}
	rec.Checkpoint = ck
	return rec, nil
}

func checksum(payload []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(payload)
	return h.Sum64()
}

// scanRecords reads the record stream after the header, returning every
// complete record and the byte offset of the clean prefix end. Damage —
// a torn header or payload, a checksum mismatch, an undecodable payload
// — ends the scan at the last clean offset rather than erroring: that
// is exactly the crash-recovery contract.
func scanRecords(r io.Reader) ([]Record, int64) {
	var recs []Record
	offset := int64(len(storeMagic) + 8)
	var hdr [16]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return recs, offset // clean EOF or torn record header
		}
		length := int64(leUint64(hdr[0:8]))
		sum := leUint64(hdr[8:16])
		// An absurd length (beyond any real checkpoint) is tail damage,
		// not a record; reading it would block recovery on allocation.
		const maxRecord = 1 << 30
		if length <= 0 || length > maxRecord {
			return recs, offset
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return recs, offset // torn payload
		}
		if checksum(payload) != sum {
			return recs, offset // corrupt record
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, offset // checksummed but undecodable: treat as damage
		}
		recs = append(recs, rec)
		offset += 16 + length
	}
}

func leUint64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func leBytes(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// Store is an open checkpoint journal file positioned for append.
type Store struct {
	f    *os.File
	path string
}

// OpenStore opens (creating if needed) the journal file at path,
// recovers every complete record, truncates any torn or corrupt tail,
// and returns the store positioned for append together with the
// recovered records. A file that exists but does not carry the journal
// magic is refused with ErrNotStore — recovery must never truncate a
// file it does not own.
func OpenStore(path string) (*Store, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	recs, cleanEnd, err := recoverOpen(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	// A fresh (or torn-header) file gets a clean header; an existing one
	// is truncated back to its durable prefix.
	if cleanEnd == 0 {
		if err := writeHeader(f); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
	} else if err := truncateTo(f, cleanEnd); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	return &Store{f: f, path: path}, recs, nil
}

// RecoverStore reads the durable record prefix of the journal file at
// path without modifying it. A missing file recovers to zero records.
func RecoverStore(path string) ([]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open store: %w", err)
	}
	defer f.Close()
	recs, _, err := recoverOpen(f)
	return recs, err
}

// recoverOpen validates the header and scans records. cleanEnd == 0
// signals "no usable header" (empty or torn-header file) — the caller
// may rewrite it. A wrong magic is an error, not a rewrite.
func recoverOpen(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	var hdr [len(storeMagic) + 8]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil {
		if n == 0 {
			return nil, 0, nil // empty: fresh file
		}
		// A torn header holds no records by definition: the header is the
		// first thing ever written. Rewrite it — unless the fragment
		// already disagrees with the magic, in which case this is not our
		// file.
		if string(hdr[:min(n, len(storeMagic))]) != storeMagic[:min(n, len(storeMagic))] {
			return nil, 0, ErrNotStore
		}
		return nil, 0, nil
	}
	if string(hdr[:len(storeMagic)]) != storeMagic {
		return nil, 0, ErrNotStore
	}
	if v := leUint64(hdr[len(storeMagic):]); v != StoreVersion {
		return nil, 0, fmt.Errorf("checkpoint: journal file version %d (this build reads %d)", v, StoreVersion)
	}
	recs, cleanEnd := scanRecords(f)
	return recs, cleanEnd, nil
}

func writeHeader(f *os.File) error {
	if err := truncateTo(f, 0); err != nil {
		return err
	}
	hdr := append([]byte(storeMagic), leBytes(StoreVersion)...)
	if _, err := f.Write(hdr); err != nil {
		return fmt.Errorf("checkpoint: write store header: %w", err)
	}
	return nil
}

func truncateTo(f *os.File, off int64) error {
	if err := f.Truncate(off); err != nil {
		return fmt.Errorf("checkpoint: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	return nil
}

// Append writes one record to the journal file. The write is framed
// with a length and checksum so a crash mid-append costs at most this
// record on recovery.
func (s *Store) Append(rec Record) error {
	payload := encodeRecord(rec)
	buf := make([]byte, 0, 16+len(payload))
	buf = append(buf, leBytes(uint64(len(payload)))...)
	buf = append(buf, leBytes(checksum(payload))...)
	buf = append(buf, payload...)
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("checkpoint: append record: %w", err)
	}
	return nil
}

// Sync flushes appended records to stable storage.
func (s *Store) Sync() error { return s.f.Sync() }

// Path returns the journal file path.
func (s *Store) Path() string { return s.path }

// Close closes the journal file.
func (s *Store) Close() error { return s.f.Close() }
