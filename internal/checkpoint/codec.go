package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
)

// The checkpoint wire format is a deliberately tiny deterministic
// binary encoding: fixed little-endian scalars and length-prefixed
// strings, no maps, no reflection. Determinism matters more than
// compactness here — the replay verifier compares checkpoint digests
// across runs, so the same state must always encode to the same bytes.

// Encoder appends values to a byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded size so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uint64 appends a fixed 8-byte unsigned integer.
func (e *Encoder) Uint64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// Int64 appends a fixed 8-byte signed integer.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Int appends an int as 8 bytes.
func (e *Encoder) Int(v int) { e.Int64(int64(v)) }

// Float64 appends an IEEE-754 double bit pattern.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Bool appends one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// Decoder reads values back in the order they were encoded. The first
// read past the end of the buffer sets a sticky error; callers check
// Err once after decoding a section.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a buffer for reading.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the sticky decode error, nil if all reads were in bounds.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = fmt.Errorf("checkpoint: truncated section (want %d bytes at offset %d of %d)", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint64 reads a fixed 8-byte unsigned integer.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 reads a fixed 8-byte signed integer.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Int reads an int encoded as 8 bytes.
func (d *Decoder) Int() int { return int(d.Int64()) }

// Float64 reads an IEEE-754 double.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Bool reads one byte.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.Int()
	if d.err != nil {
		return ""
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
