package checkpoint

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"
)

// Journal is the decision log of one mission run: every consequential
// runtime event (incident, delivery, failure, failover, checkpoint) as
// a timestamped line. Two runs of the same seed and fault plan must
// produce byte-identical journals — the replay verifier turns that
// claim into an asserted invariant.
type Journal struct {
	// Seed and Plan identify the run being recorded (the replay recipe).
	Seed int64
	Plan string

	lines []string
}

// NewJournal returns an empty journal for the given replay recipe.
func NewJournal(seed int64, plan string) *Journal {
	return &Journal{Seed: seed, Plan: plan}
}

// Logf appends one event line stamped with virtual time now.
func (j *Journal) Logf(now time.Duration, format string, args ...any) {
	if j == nil {
		return
	}
	j.lines = append(j.lines, fmt.Sprintf("%12d %s", now.Nanoseconds(), fmt.Sprintf(format, args...)))
}

// Len returns the number of recorded events.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return len(j.lines)
}

// Lines returns the recorded events.
func (j *Journal) Lines() []string {
	if j == nil {
		return nil
	}
	return j.lines
}

// Digest returns an FNV-1a hash over the recipe and every line.
func (j *Journal) Digest() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed=%d\n", j.Seed)
	_, _ = h.Write([]byte(j.Plan))
	_, _ = h.Write([]byte{0})
	for _, l := range j.lines {
		_, _ = h.Write([]byte(l))
		_, _ = h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// String renders the journal (for debugging diverged runs).
func (j *Journal) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "journal seed=%d plan=%q digest=%016x entries=%d\n",
		j.Seed, j.Plan, j.Digest(), len(j.lines))
	for _, l := range j.lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// Divergence pinpoints the first difference between two journals.
type Divergence struct {
	// Index is the first differing line (== len of the shorter journal
	// when one is a prefix of the other).
	Index int
	// A and B are the differing lines ("<end of journal>" when one ran
	// out).
	A, B string
}

// Error formats the divergence as a diagnostic string.
func (d *Divergence) Error() string {
	return fmt.Sprintf("replay diverged at entry %d:\n  run A: %s\n  run B: %s", d.Index, d.A, d.B)
}

// Compare diffs two journals line by line. It returns nil when they are
// identical, otherwise the first divergence.
func Compare(a, b *Journal) *Divergence {
	const end = "<end of journal>"
	n := len(a.lines)
	if len(b.lines) < n {
		n = len(b.lines)
	}
	for i := 0; i < n; i++ {
		if a.lines[i] != b.lines[i] {
			return &Divergence{Index: i, A: a.lines[i], B: b.lines[i]}
		}
	}
	if len(a.lines) != len(b.lines) {
		d := &Divergence{Index: n, A: end, B: end}
		if n < len(a.lines) {
			d.A = a.lines[n]
		}
		if n < len(b.lines) {
			d.B = b.lines[n]
		}
		return d
	}
	return nil
}

// VerifyReplay runs a mission twice — run receives a fresh journal each
// time and must rebuild the entire world from its recorded recipe — and
// diffs the journals. It returns nil when the runs are byte-identical:
// "deterministic for a fixed seed" as an asserted invariant rather than
// a claim.
func VerifyReplay(seed int64, plan string, run func(*Journal)) *Divergence {
	a := NewJournal(seed, plan)
	run(a)
	b := NewJournal(seed, plan)
	run(b)
	return Compare(a, b)
}

// VerifyEquivalence runs several implementations of the same recipe —
// each receives a fresh journal — and diffs every run against the
// first. It generalizes VerifyReplay from "same code twice" to
// "different configurations, same observable history": the sharded
// engine uses it to assert that a 1-shard and an N-shard run of one
// seed log byte-identical journals. The returned divergence is the
// first mismatch found, nil when all runs agree (or fewer than two runs
// were given).
func VerifyEquivalence(seed int64, plan string, runs ...func(*Journal)) *Divergence {
	var ref *Journal
	for _, run := range runs {
		j := NewJournal(seed, plan)
		run(j)
		if ref == nil {
			ref = j
			continue
		}
		if d := Compare(ref, j); d != nil {
			return d
		}
	}
	return nil
}
