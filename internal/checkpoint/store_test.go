package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testRecord(seq int) Record {
	return Record{
		Seq:       seq,
		At:        time.Duration(seq) * 10 * time.Second,
		Processed: uint64(seq * 1000),
		Checkpoint: &Checkpoint{
			Seq: seq,
			At:  time.Duration(seq) * 10 * time.Second,
			Sections: []Section{
				{Name: "runtime", Data: []byte{byte(seq), 1, 2, 3}},
				{Name: "trust", Data: []byte{byte(seq), 9, 8}},
			},
		},
	}
}

func writeStore(t *testing.T, path string, n int) {
	t.Helper()
	st, recs, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh store recovered %d records", len(recs))
	}
	for i := 1; i <= n; i++ {
		if err := st.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	writeStore(t, path, 3)

	recs, err := RecoverStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		want := testRecord(i + 1)
		if rec.Seq != want.Seq || rec.At != want.At || rec.Processed != want.Processed {
			t.Errorf("record %d header = %+v", i, rec)
		}
		if rec.Checkpoint.Digest() != want.Checkpoint.Digest() {
			t.Errorf("record %d digest mismatch", i)
		}
	}
}

func TestStoreRecoverMissingFile(t *testing.T) {
	recs, err := RecoverStore(filepath.Join(t.TempDir(), "absent.ckpt"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("missing file: recs=%d err=%v, want 0, nil", len(recs), err)
	}
}

// TestStoreTruncatedTail simulates a crash mid-append at every byte
// boundary inside the final record: recovery must always return the two
// complete records, never error, and never yield a third.
func TestStoreTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	writeStore(t, full, 3)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Find where record 3 starts: recover the 2-record prefix length by
	// writing a 2-record file and measuring it.
	two := filepath.Join(dir, "two.ckpt")
	writeStore(t, two, 2)
	rawTwo, err := os.ReadFile(two)
	if err != nil {
		t.Fatal(err)
	}
	start := len(rawTwo)
	if start >= len(raw) {
		t.Fatal("3-record file not longer than 2-record file")
	}
	for cut := start; cut < len(raw); cut++ {
		torn := filepath.Join(dir, "torn.ckpt")
		if err := os.WriteFile(torn, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, err := RecoverStore(torn)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(recs) != 2 {
			t.Fatalf("cut at %d: recovered %d records, want 2", cut, len(recs))
		}
	}
}

// TestStoreCorruptTail flips one byte in the final record's payload:
// the checksum must reject it and recovery must fall back to the last
// complete prefix.
func TestStoreCorruptTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	writeStore(t, path, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := RecoverStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("recovered %d records after tail corruption, want 2", len(recs))
	}
}

// TestStoreAppendAfterRecovery reopens a torn file: OpenStore must
// truncate the damage and appends must extend the clean prefix.
func TestStoreAppendAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	writeStore(t, path, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear off the last 5 bytes (mid-payload of record 3).
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	st, recs, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("reopen recovered %d records, want 2", len(recs))
	}
	if err := st.Append(testRecord(4)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err = RecoverStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Seq != 4 {
		t.Fatalf("after truncate+append: %d records (last seq %d), want 3 with seq 4",
			len(recs), recs[len(recs)-1].Seq)
	}
}

func TestStoreEmptyAndTornHeader(t *testing.T) {
	dir := t.TempDir()
	// Empty file: usable as fresh.
	empty := filepath.Join(dir, "empty.ckpt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	st, recs, err := OpenStore(empty)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty file: recs=%d err=%v", len(recs), err)
	}
	_ = st.Close()
	// Torn header (magic prefix only): rewritten as fresh.
	torn := filepath.Join(dir, "torn.ckpt")
	if err := os.WriteFile(torn, []byte(storeMagic[:4]), 0o644); err != nil {
		t.Fatal(err)
	}
	st, recs, err = OpenStore(torn)
	if err != nil || len(recs) != 0 {
		t.Fatalf("torn header: recs=%d err=%v", len(recs), err)
	}
	_ = st.Close()
}

func TestStoreRefusesForeignFile(t *testing.T) {
	dir := t.TempDir()
	foreign := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(foreign, []byte("this is not a checkpoint journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenStore(foreign); !errors.Is(err, ErrNotStore) {
		t.Fatalf("OpenStore(foreign) err = %v, want ErrNotStore", err)
	}
	if _, err := RecoverStore(foreign); !errors.Is(err, ErrNotStore) {
		t.Fatalf("RecoverStore(foreign) err = %v, want ErrNotStore", err)
	}
	// The foreign file must be untouched.
	raw, err := os.ReadFile(foreign)
	if err != nil || string(raw) != "this is not a checkpoint journal" {
		t.Fatalf("foreign file modified: %q err=%v", raw, err)
	}
}

func TestStoreVersionGate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vnext.ckpt")
	hdr := append([]byte(storeMagic), leBytes(StoreVersion+1)...)
	if err := os.WriteFile(path, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverStore(path); err == nil {
		t.Fatal("future version accepted")
	}
}

// TestStoreSyncAndPath covers the durability flush and the path
// accessor the service uses when reporting where a mission journals.
func TestStoreSyncAndPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	st, _, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Path(); got != path {
		t.Errorf("Path() = %q, want %q", got, path)
	}
	if err := st.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// A synced record survives reopening without Close.
	recs, err := RecoverStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("after Sync: recovered %d records, want the synced one", len(recs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
