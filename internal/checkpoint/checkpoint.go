// Package checkpoint is the mission state durability layer: periodic,
// consistent snapshots of every component that holds command-post state
// (composite membership, trust scores, track hypotheses, reliable
// transfer windows), so a successor post can be promoted warm — restored
// from the last checkpoint — instead of rebuilt cold from nothing.
//
// The paper (§IV) demands IoBTs that "survive in the presence of
// failures, attacks and compromises" and recompose around lost nodes;
// comms-side reflexes (ARQ, command fallback) cannot recover state that
// existed only in a destroyed node's memory. Checkpointing makes that
// state durable, and — because every encoding is deterministic — also
// verifiable: the companion replay verifier (replay.go) re-runs a
// mission from seed + fault plan and asserts the decision logs and
// checkpoint digests are byte-identical.
package checkpoint

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"iobt/internal/sim"
)

// Snapshotter is implemented by components that can capture and restore
// their mission-critical state. Snapshot must be deterministic: the
// same logical state always encodes to the same bytes (sort map keys,
// use the codec in codec.go). Restore replaces the component's state
// with the decoded snapshot.
type Snapshotter interface {
	// SnapshotName identifies the component's section in a checkpoint.
	// Names must be unique per coordinator.
	SnapshotName() string
	// Snapshot encodes the component's current state.
	Snapshot() []byte
	// Restore replaces the component's state from an encoding.
	Restore(data []byte) error
}

// Section is one component's captured state inside a checkpoint.
type Section struct {
	Name string
	Data []byte
}

// Checkpoint is a consistent cut across all registered components,
// taken at a single virtual instant (the sim is single-threaded, so a
// synchronous sweep is automatically consistent).
type Checkpoint struct {
	// Seq is the checkpoint sequence number (1-based).
	Seq int
	// At is the virtual time of the cut.
	At time.Duration
	// Sections hold each component's encoding, in registration order.
	Sections []Section
}

// Bytes returns the total encoded size of all sections.
func (c *Checkpoint) Bytes() int {
	n := 0
	for _, s := range c.Sections {
		n += len(s.Data)
	}
	return n
}

// Section returns the named section's data, or nil.
func (c *Checkpoint) Section(name string) []byte {
	for _, s := range c.Sections {
		if s.Name == name {
			return s.Data
		}
	}
	return nil
}

// Digest returns an FNV-1a hash over all sections in name order —
// a stable fingerprint of the captured state, independent of
// registration order.
func (c *Checkpoint) Digest() uint64 {
	names := make([]string, 0, len(c.Sections))
	byName := make(map[string][]byte, len(c.Sections))
	for _, s := range c.Sections {
		names = append(names, s.Name)
		byName[s.Name] = s.Data
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, name := range names {
		_, _ = h.Write([]byte(name))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write(byName[name])
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}

// Coordinator drives the checkpoint cadence on the sim engine and keeps
// the most recent checkpoint for restore.
type Coordinator struct {
	eng   *sim.Engine
	comps []Snapshotter
	every time.Duration
	tick  *sim.Ticker
	last  *Checkpoint
	seq   int

	// Gate, when set, is consulted before each periodic checkpoint; a
	// false return skips the cut (e.g. the command post is down and a
	// snapshot now would capture the crashed state).
	Gate func() bool
	// OnCheckpoint, when set, observes each completed cut (journaling).
	OnCheckpoint func(*Checkpoint)

	// Taken counts checkpoints captured; Skipped counts gated ticks;
	// Restores counts RestoreLast calls; BytesTotal accumulates encoded
	// checkpoint sizes.
	Taken      sim.Counter
	Skipped    sim.Counter
	Restores   sim.Counter
	BytesTotal sim.Counter
}

// NewCoordinator returns a coordinator with the given cadence (which
// must be positive for Start to do anything).
func NewCoordinator(eng *sim.Engine, every time.Duration) *Coordinator {
	return &Coordinator{eng: eng, every: every}
}

// Register adds a component to every subsequent checkpoint. Section
// order follows registration order.
func (c *Coordinator) Register(s Snapshotter) {
	c.comps = append(c.comps, s)
}

// Interval returns the checkpoint cadence.
func (c *Coordinator) Interval() time.Duration { return c.every }

// Start begins the periodic cadence. A non-positive interval disables
// periodic checkpoints (TakeNow still works).
func (c *Coordinator) Start() {
	if c.tick != nil || c.every <= 0 {
		return
	}
	c.tick = c.eng.Every(c.every, "checkpoint.tick", func() {
		if c.Gate != nil && !c.Gate() {
			c.Skipped.Inc()
			return
		}
		c.TakeNow()
	})
}

// Stop halts the periodic cadence.
func (c *Coordinator) Stop() {
	if c.tick != nil {
		c.tick.Stop()
		c.tick = nil
	}
}

// TakeNow captures a checkpoint immediately and makes it the restore
// point.
func (c *Coordinator) TakeNow() *Checkpoint {
	c.seq++
	ck := &Checkpoint{Seq: c.seq, At: c.eng.Now()}
	for _, s := range c.comps {
		ck.Sections = append(ck.Sections, Section{Name: s.SnapshotName(), Data: s.Snapshot()})
	}
	c.last = ck
	c.Taken.Inc()
	c.BytesTotal.Add(ck.Bytes())
	if c.OnCheckpoint != nil {
		c.OnCheckpoint(ck)
	}
	return ck
}

// Capture encodes every registered component exactly like TakeNow but
// with no side effects: the sequence counter, the restore point, the
// counters, and the OnCheckpoint observer are all untouched. The
// mission service uses it to compare live state against a persisted
// snapshot without perturbing the run being compared.
func (c *Coordinator) Capture() *Checkpoint {
	ck := &Checkpoint{Seq: c.seq, At: c.eng.Now()}
	for _, s := range c.comps {
		ck.Sections = append(ck.Sections, Section{Name: s.SnapshotName(), Data: s.Snapshot()})
	}
	return ck
}

// Last returns the most recent checkpoint, nil before the first cut.
func (c *Coordinator) Last() *Checkpoint { return c.last }

// Age returns how far behind the present the restore point is, or -1
// when no checkpoint exists.
func (c *Coordinator) Age() time.Duration {
	if c.last == nil {
		return -1
	}
	return c.eng.Now() - c.last.At
}

// RestoreLast replays the most recent checkpoint into every registered
// component, in registration order. It returns an error naming the
// first component whose Restore failed, or when no checkpoint exists.
func (c *Coordinator) RestoreLast() error {
	if c.last == nil {
		return fmt.Errorf("checkpoint: no checkpoint to restore")
	}
	return c.RestoreCheckpoint(c.last, nil)
}

// RestoreCheckpoint replays an arbitrary checkpoint — typically one
// recovered from a journal file rather than taken this run — into the
// registered components, in registration order. include, when non-nil,
// filters by section name; a false return skips that component (the
// mission service skips the ARQ window, whose Restore deliberately
// requeues in-flight traffic — failover semantics, not replay
// semantics). Components without a matching section are skipped.
func (c *Coordinator) RestoreCheckpoint(ck *Checkpoint, include func(name string) bool) error {
	if ck == nil {
		return fmt.Errorf("checkpoint: no checkpoint to restore")
	}
	for _, s := range c.comps {
		name := s.SnapshotName()
		if include != nil && !include(name) {
			continue
		}
		data := ck.Section(name)
		if data == nil {
			// Component registered after the cut: nothing to restore.
			continue
		}
		if err := s.Restore(data); err != nil {
			return fmt.Errorf("checkpoint: restore %s: %w", name, err)
		}
	}
	c.Restores.Inc()
	return nil
}
