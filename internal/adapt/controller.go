package adapt

import "math"

// Controller is a model-reference adaptive controller for one scalar
// "adaptation knob" (paper §IV.B): it drives a measured output toward a
// setpoint by adjusting its knob, while adapting its own gain estimate
// of the plant. The concrete use in the experiments is sensing-rate
// control (knob = sampling rate, output = delivered information
// utility), but the controller is plant-agnostic.
type Controller struct {
	name string

	// Setpoint is the goal output.
	Setpoint float64
	// Knob is the current actuation value.
	Knob float64
	// Min/Max bound the knob.
	Min, Max float64

	// FixedGain, when true, disables online gain estimation: the
	// controller keeps its initial model of the plant. This is the
	// "component unaware of its peers" configuration that reproduces the
	// destructive-interference pathology of the paper's reference [12].
	FixedGain bool

	// gainEst is the adaptive estimate of d(output)/d(knob).
	gainEst float64
	// rate is the adaptation aggressiveness in (0,1].
	rate float64

	lastOut  float64
	lastKnob float64
	seeded   bool
	pinned   int
}

var _ Self = (*Controller)(nil)

// NewController returns a controller with the given bounds and
// adaptation rate. rate outside (0,1] defaults to 0.5.
func NewController(name string, setpoint, initKnob, minKnob, maxKnob, rate float64) *Controller {
	if rate <= 0 || rate > 1 {
		rate = 0.5
	}
	return &Controller{
		name:     name,
		Setpoint: setpoint,
		Knob:     clamp(initKnob, minKnob, maxKnob),
		Min:      minKnob,
		Max:      maxKnob,
		gainEst:  1,
		rate:     rate,
	}
}

// Name implements Self.
func (c *Controller) Name() string { return c.name }

// GoalMet implements Self: within 5% of setpoint.
func (c *Controller) GoalMet() bool {
	if c.Setpoint == 0 {
		return math.Abs(c.lastOut) < 1e-9
	}
	return math.Abs(c.lastOut-c.Setpoint)/math.Abs(c.Setpoint) <= 0.05
}

// Adapt implements Self by re-applying the last observation.
func (c *Controller) Adapt() bool {
	before := c.Knob
	c.Observe(c.lastOut)
	return c.Knob != before
}

// Observe feeds one plant output measurement and updates the knob:
//  1. adapt the model: re-estimate plant gain from the last move;
//  2. adapt the action: step the knob by error/gain, scaled by rate.
func (c *Controller) Observe(output float64) {
	if c.seeded && !c.FixedGain {
		dKnob := c.Knob - c.lastKnob
		dOut := output - c.lastOut
		if math.Abs(dKnob) > 1e-9 {
			g := dOut / dKnob
			if !math.IsNaN(g) && !math.IsInf(g, 0) && g != 0 {
				c.gainEst = 0.7*c.gainEst + 0.3*g
			}
		}
		// Anti-windup sign probe: if the knob sits pinned at a bound
		// while the goal stays unmet, the gain model has the wrong sign
		// — flip it so the next step escapes the bound.
		atBound := c.Knob <= c.Min || c.Knob >= c.Max
		unmet := math.Abs(output-c.Setpoint) > 0.05*math.Abs(c.Setpoint)+1e-9
		if atBound && unmet && c.Knob == c.lastKnob {
			c.pinned++
			if c.pinned >= 2 {
				c.gainEst = -c.gainEst
				c.pinned = 0
			}
		} else {
			c.pinned = 0
		}
	}
	errv := c.Setpoint - output
	g := c.gainEst
	if math.Abs(g) < 0.05 {
		if g < 0 {
			g = -0.05
		} else {
			g = 0.05
		}
	}
	step := c.rate * errv / g
	// Bound a single move to 25% of the knob span to avoid slamming.
	span := c.Max - c.Min
	if span > 0 {
		limit := 0.25 * span
		if step > limit {
			step = limit
		}
		if step < -limit {
			step = -limit
		}
	}
	c.lastKnob = c.Knob
	c.lastOut = output
	c.seeded = true
	c.Knob = clamp(c.Knob+step, c.Min, c.Max)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Coordinator arbitrates a set of controllers that share one plant. The
// paper's reference [12] shows that "uncoordinated interactions of
// adaptive components, even when aimed at meeting the same goal, can
// result in unexpected consequences and severe performance loss";
// Coordinator implements the fix the experiments measure: round-robin
// actuation tokens so only one component adapts per tick, with the rest
// holding their knobs.
type Coordinator struct {
	controllers []*Controller
	next        int
}

// NewCoordinator returns a coordinator over the controllers.
func NewCoordinator(cs ...*Controller) *Coordinator {
	list := make([]*Controller, len(cs))
	copy(list, cs)
	return &Coordinator{controllers: list}
}

// Observe feeds the shared plant output to exactly one controller (the
// token holder); others record the observation without moving their
// knobs (so their models stay fresh but their actions don't interfere).
func (co *Coordinator) Observe(output float64) {
	if len(co.controllers) == 0 {
		return
	}
	for i, c := range co.controllers {
		if i == co.next {
			c.Observe(output)
		} else {
			c.lastOut = output
			c.lastKnob = c.Knob
			c.seeded = true
		}
	}
	co.next = (co.next + 1) % len(co.controllers)
}
