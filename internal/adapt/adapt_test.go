package adapt

import (
	"math"
	"testing"
	"time"

	"iobt/internal/sim"
)

func TestMonitorDetectsAndRepairs(t *testing.T) {
	eng := sim.NewEngine(1)
	healthy := true
	repairCalled := 0
	m := NewMonitor(eng, "link", func() bool { return healthy }, func() { repairCalled++ })
	m.Start(time.Second)
	m.Start(0) // idempotent second start

	eng.Schedule(5*time.Second+time.Millisecond, "break", func() { healthy = false })
	eng.Schedule(10*time.Second+time.Millisecond, "fix", func() { healthy = true })
	_ = eng.Run(20 * time.Second)

	if m.Violations.Value() != 1 {
		t.Errorf("violations = %d, want 1", m.Violations.Value())
	}
	if m.Repairs.Value() != 1 {
		t.Errorf("repairs = %d, want 1", m.Repairs.Value())
	}
	if repairCalled == 0 {
		t.Error("repair action never invoked")
	}
	if m.RepairTime.N() != 1 || m.RepairTime.Mean() < 4 || m.RepairTime.Mean() > 6 {
		t.Errorf("repair time = %v, want ~5s", m.RepairTime.Mean())
	}
	if m.Violated() {
		t.Error("monitor still violated after fix")
	}
	m.Stop()
}

func TestMonitorRepeatedRepairAttempts(t *testing.T) {
	eng := sim.NewEngine(2)
	attempts := 0
	m := NewMonitor(eng, "x", func() bool { return false }, func() { attempts++ })
	m.Start(time.Second)
	_ = eng.Run(5 * time.Second)
	if attempts < 4 {
		t.Errorf("repair attempts = %d, want retries while down", attempts)
	}
	if m.Violations.Value() != 1 {
		t.Errorf("violations = %d, want 1 (single episode)", m.Violations.Value())
	}
}

func TestReflexChainPriority(t *testing.T) {
	var fired []string
	mk := func(name string, cond bool) Rule {
		return Rule{Name: name, Condition: func() bool { return cond },
			Action: func() { fired = append(fired, name) }}
	}
	c := NewReflexChain(mk("high", false), mk("mid", true), mk("low", true))
	if got := c.Tick(); got != "mid" {
		t.Errorf("fired %q, want mid (priority order)", got)
	}
	if len(fired) != 1 {
		t.Errorf("fired %v, want exactly one rule per tick", fired)
	}
	if c.Fired["mid"] != 1 {
		t.Error("Fired count wrong")
	}
}

func TestReflexChainNoCondition(t *testing.T) {
	c := NewReflexChain(Rule{Name: "broken"}, Rule{Name: "never", Condition: func() bool { return false }})
	if got := c.Tick(); got != "" {
		t.Errorf("fired %q, want none", got)
	}
}

func TestControllerConvergesUnknownGain(t *testing.T) {
	// Plant: output = 3.7 * knob (gain unknown to controller).
	c := NewController("rate", 50, 1, 0, 100, 0.8)
	out := 0.0
	for i := 0; i < 60; i++ {
		out = 3.7 * c.Knob
		c.Observe(out)
	}
	if math.Abs(out-50) > 2.5 {
		t.Errorf("output = %.2f, want ~50", out)
	}
	if !c.GoalMet() {
		t.Errorf("goal not met: out=%.2f", out)
	}
}

func TestControllerRespectsBounds(t *testing.T) {
	c := NewController("x", 1e9, 5, 0, 10, 1) // unreachable setpoint
	for i := 0; i < 100; i++ {
		c.Observe(c.Knob) // gain 1
		if c.Knob < 0 || c.Knob > 10 {
			t.Fatalf("knob out of bounds: %v", c.Knob)
		}
	}
	if c.Knob != 10 {
		t.Errorf("knob = %v, want pinned at max", c.Knob)
	}
}

func TestControllerNegativeGainPlant(t *testing.T) {
	// Plant: output decreases as knob rises: out = 100 - 2*knob.
	c := NewController("neg", 40, 10, 0, 60, 0.6)
	out := 0.0
	for i := 0; i < 80; i++ {
		out = 100 - 2*c.Knob
		c.Observe(out)
	}
	if math.Abs(out-40) > 4 {
		t.Errorf("output = %.2f, want ~40 (negative-gain plant)", out)
	}
}

func TestControllerSelfInterface(t *testing.T) {
	c := NewController("s", 10, 0, 0, 100, 0.5)
	if c.Name() != "s" {
		t.Error("name wrong")
	}
	c.Observe(0)
	if c.GoalMet() {
		t.Error("goal met at output 0, setpoint 10")
	}
	_ = c.Adapt() // must not panic; applies last observation again
}

// TestUncoordinatedOscillation reproduces the paper's [12] pathology:
// two controllers sharing one plant fight when uncoordinated and settle
// when coordinated.
func TestUncoordinatedOscillation(t *testing.T) {
	// Two fixed-gain controllers each believe they alone drive the
	// shared plant (out = k1 + k2): each computes the full correction,
	// so the combined move is double and the system oscillates forever.
	run := func(coordinated bool) (tailErr float64) {
		c1 := NewController("a", 12, 0, 0, 20, 1)
		c2 := NewController("b", 12, 0, 0, 20, 1)
		c1.FixedGain = true
		c2.FixedGain = true
		var co *Coordinator
		if coordinated {
			co = NewCoordinator(c1, c2)
		}
		for i := 0; i < 60; i++ {
			out := c1.Knob + c2.Knob
			if coordinated {
				co.Observe(out)
			} else {
				c1.Observe(out)
				c2.Observe(out)
			}
			if i >= 40 {
				tailErr += math.Abs(12 - (c1.Knob + c2.Knob))
			}
		}
		return tailErr
	}
	unco := run(false)
	coord := run(true)
	if unco < 10 {
		t.Errorf("uncoordinated fixed-gain controllers did not oscillate: tail error %.2f", unco)
	}
	if coord >= unco {
		t.Errorf("coordination did not help: tail error %.2f (coord) vs %.2f (unco)", coord, unco)
	}
	if coord > 5 {
		t.Errorf("coordinated tail error = %.2f, want near zero", coord)
	}
}

// TestAdaptiveGainSelfCorrects is the ablation: with online gain
// estimation enabled (the default), even uncoordinated controllers learn
// the combined plant gain and settle — the "unified theory of self-aware
// adaptation" fix.
func TestAdaptiveGainSelfCorrects(t *testing.T) {
	c1 := NewController("a", 12, 0, 0, 20, 1)
	c2 := NewController("b", 12, 0, 0, 20, 1)
	tailErr := 0.0
	for i := 0; i < 60; i++ {
		out := c1.Knob + c2.Knob
		c1.Observe(out)
		c2.Observe(out)
		if i >= 40 {
			tailErr += math.Abs(12 - (c1.Knob + c2.Knob))
		}
	}
	if tailErr > 10 {
		t.Errorf("adaptive-gain controllers did not settle: tail error %.2f", tailErr)
	}
}

func TestCoordinatorEmpty(t *testing.T) {
	co := NewCoordinator()
	co.Observe(5) // must not panic
}
