package adapt

import (
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/geo"
	"iobt/internal/mesh"
	"iobt/internal/sim"
)

// meshWorld builds a k x k grid of sensors with radio range linking the
// four-neighborhood.
func meshWorld(t *testing.T, k int) (*sim.Engine, *asset.Population, *mesh.Network) {
	t.Helper()
	eng := sim.NewEngine(1)
	terr := geo.NewOpenTerrain(float64(k+1)*100, float64(k+1)*100)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 120 // links 100m grid neighbors, not diagonals
	for iy := 0; iy < k; iy++ {
		for ix := 0; ix < k; ix++ {
			a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
				Mobility: &geo.Static{P: geo.Point{X: float64(ix+1) * 100, Y: float64(iy+1) * 100}}}
			a.Energy = caps.EnergyCap
			pop.Add(a)
		}
	}
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	cfg.LossBase = 0
	return eng, pop, mesh.New(eng, pop, terr, cfg)
}

func TestSpanningTreeConverges(t *testing.T) {
	_, _, net := meshWorld(t, 5)
	tree := NewSpanningTree(net)
	rounds, ok := tree.Stabilize(100)
	if !ok {
		t.Fatal("tree did not stabilize")
	}
	if !tree.Legal() {
		t.Fatal("stabilized tree is not legal")
	}
	// BFS depth on a 5x5 grid from corner node 0 is at most 8.
	if rounds > 20 {
		t.Errorf("stabilization took %d rounds", rounds)
	}
	if tree.Root(24) != 0 {
		t.Errorf("root of node 24 = %d, want 0", tree.Root(24))
	}
	if tree.Depth(24) != 8 {
		t.Errorf("depth of far corner = %d, want 8", tree.Depth(24))
	}
}

func TestSpanningTreeSelfStabilizesFromCorruption(t *testing.T) {
	_, _, net := meshWorld(t, 4)
	tree := NewSpanningTree(net)
	if _, ok := tree.Stabilize(100); !ok {
		t.Fatal("initial stabilization failed")
	}
	// Adversarial state injection: node 7 claims a phantom root -5 at
	// distance 0, which is smaller than every real ID.
	tree.Corrupt(7, asset.ID(-5), 0)
	if tree.Legal() {
		t.Fatal("corruption not visible")
	}
	rounds, ok := tree.Stabilize(200)
	if !ok {
		t.Fatalf("did not re-stabilize after corruption")
	}
	if !tree.Legal() {
		t.Error("tree illegal after re-stabilization")
	}
	t.Logf("re-stabilized in %d rounds", rounds)
}

func TestSpanningTreeRecoversFromRootLoss(t *testing.T) {
	_, pop, net := meshWorld(t, 4)
	tree := NewSpanningTree(net)
	if _, ok := tree.Stabilize(100); !ok {
		t.Fatal("initial stabilization failed")
	}
	// Kill the root (node 0); the tree must re-root at node 1.
	pop.Kill(0)
	net.Refresh()
	if _, ok := tree.Stabilize(200); !ok {
		t.Fatal("did not re-stabilize after root loss")
	}
	if !tree.Legal() {
		t.Fatal("illegal after root loss")
	}
	if tree.Root(15) != 1 {
		t.Errorf("new root = %d, want 1", tree.Root(15))
	}
}

func TestSpanningTreePartition(t *testing.T) {
	_, pop, net := meshWorld(t, 3) // 3x3 grid, nodes 0..8
	// Cut the middle column (ids 1,4,7) to split left/right columns.
	pop.Kill(1)
	pop.Kill(4)
	pop.Kill(7)
	net.Refresh()
	tree := NewSpanningTree(net)
	if _, ok := tree.Stabilize(100); !ok {
		t.Fatal("did not stabilize under partition")
	}
	if !tree.Legal() {
		t.Fatal("illegal under partition")
	}
	// Components {0,3,6} and {2,5,8} must have distinct roots.
	if tree.Root(6) != 0 {
		t.Errorf("left root = %d", tree.Root(6))
	}
	if tree.Root(8) != 2 {
		t.Errorf("right root = %d", tree.Root(8))
	}
}

func TestAggregateCount(t *testing.T) {
	_, _, net := meshWorld(t, 4)
	tree := NewSpanningTree(net)
	if _, ok := tree.Stabilize(100); !ok {
		t.Fatal("stabilization failed")
	}
	totals := tree.AggregateCount()
	if totals[0] != 16 {
		t.Errorf("root aggregate = %d, want 16", totals[0])
	}
	if len(totals) != 1 {
		t.Errorf("aggregation roots = %v, want single root", totals)
	}
}

func TestAggregateCountWithCycleGuard(t *testing.T) {
	_, _, net := meshWorld(t, 2)
	tree := NewSpanningTree(net)
	// Deliberately illegal state: 2-cycle between 0 and 1.
	tree.Corrupt(0, 0, 0)
	tree.Corrupt(1, 0, 0)
	tree.parent[0] = 1
	tree.parent[1] = 0
	_ = tree.AggregateCount() // must terminate
}

func TestSpanningTreeEmptyNetwork(t *testing.T) {
	eng := sim.NewEngine(9)
	terr := geo.NewOpenTerrain(100, 100)
	pop := asset.NewPopulation(terr)
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	net := mesh.New(eng, pop, terr, cfg)
	tree := NewSpanningTree(net)
	if rounds, ok := tree.Stabilize(10); !ok || rounds != 1 {
		t.Errorf("empty network should quiesce immediately: %d, %v", rounds, ok)
	}
	if !tree.Legal() {
		t.Error("empty tree should be legal")
	}
	_ = eng.Run(time.Millisecond)
}
