package adapt

import (
	"math"
	"testing"

	"iobt/internal/sim"
)

// envPerf builds a unimodal performance landscape peaked at opt.
func envPerf(opt float64) func(float64) float64 {
	return func(p float64) float64 {
		d := p - opt
		return math.Exp(-d * d)
	}
}

func TestPopulationConvergesToOptimum(t *testing.T) {
	rng := sim.NewRNG(1)
	params := []float64{-2, -1, 0, 1, 2, 3, 4, 5}
	pop := NewPopulation(rng, params, envPerf(2.5))
	steps, ok := pop.StepsToReach(0.9, 500)
	if !ok {
		t.Fatalf("never reached target; mean perf %.3f", pop.MeanPerf())
	}
	t.Logf("converged in %d steps", steps)
	for _, v := range pop.Params {
		if math.Abs(v-2.5) > 0.7 {
			t.Errorf("agent param %v far from optimum 2.5", v)
		}
	}
}

// TestDiversitySpeedsRecovery is the live [15]-[18] claim: after an
// environment shift, a parameter-diverse team recovers much faster than
// a homogeneous one because some member is already near the new optimum
// and imitation propagates its parameters.
func TestDiversitySpeedsRecovery(t *testing.T) {
	recover := func(diverse bool) int {
		rng := sim.NewRNG(2)
		var params []float64
		for i := 0; i < 12; i++ {
			if diverse {
				params = append(params, float64(i)-4) // spread -4..7
			} else {
				params = append(params, 0) // tuned for the old environment
			}
		}
		// The environment the team actually faces has its optimum at 6 —
		// far from where the homogeneous team was tuned. (Note that
		// prolonged imitation erases diversity: a team left to converge
		// becomes effectively homogeneous, which is why doctrine that
		// preserves heterogeneity matters.)
		pop := NewPopulation(rng, params, envPerf(6))
		steps, ok := pop.StepsToReach(0.5, 3000)
		if !ok {
			return 3000
		}
		return steps
	}
	homo := recover(false)
	div := recover(true)
	if div*3 > homo {
		t.Errorf("diverse recovery %d steps not clearly faster than homogeneous %d", div, homo)
	}
}

func TestPopulationEdges(t *testing.T) {
	rng := sim.NewRNG(3)
	empty := NewPopulation(rng, nil, envPerf(0))
	empty.Step() // no panic
	if empty.MeanPerf() != 0 {
		t.Error("empty population perf should be 0")
	}
	single := NewPopulation(rng, []float64{1}, envPerf(1))
	single.Step() // no neighbors: pure local search
	if single.MeanPerf() < 0.9 {
		t.Errorf("single agent at optimum perf = %v", single.MeanPerf())
	}
}
