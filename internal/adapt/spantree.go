package adapt

import (
	"iobt/internal/asset"
	"iobt/internal/mesh"
)

// SpanningTree is a self-stabilizing BFS spanning tree over the mesh,
// in the shared-state model of Dolev/Dijkstra-style self-stabilization:
// each node repeatedly applies a local rule using only its neighbors'
// state, and from any (even corrupted) configuration the tree converges
// to a legal BFS tree rooted at the smallest reachable node ID.
//
// The tree is the substrate for in-network aggregation and command
// dissemination; its convergence time after disruption is one of the
// reflex metrics of experiment E4.
type SpanningTree struct {
	net *mesh.Network

	// state per node.
	root   map[asset.ID]asset.ID
	dist   map[asset.ID]int
	parent map[asset.ID]asset.ID
}

// NewSpanningTree returns a tree protocol bound to net with arbitrary
// (self-referential) initial state.
func NewSpanningTree(net *mesh.Network) *SpanningTree {
	t := &SpanningTree{
		net:    net,
		root:   make(map[asset.ID]asset.ID),
		dist:   make(map[asset.ID]int),
		parent: make(map[asset.ID]asset.ID),
	}
	return t
}

// Corrupt injects adversarial state into a node (testing and the E4
// fault-injection path).
func (t *SpanningTree) Corrupt(id asset.ID, root asset.ID, dist int) {
	t.root[id] = root
	t.dist[id] = dist
	t.parent[id] = id
}

// Step applies the local stabilization rule once at every node (one
// synchronous round) and returns the number of nodes that changed state.
func (t *SpanningTree) Step() int {
	ids := t.net.Nodes()
	changed := 0
	// maxDepth bounds legal distances: claims deeper than the node count
	// are impossible and are discarded. This is the standard defense
	// against count-to-infinity on phantom roots (a corrupted node
	// advertising a root ID that does not exist) and on dead roots.
	maxDepth := len(ids)
	// Compute next states from current states (synchronous model).
	type st struct {
		root   asset.ID
		dist   int
		parent asset.ID
	}
	next := make(map[asset.ID]st, len(ids))
	for _, id := range ids {
		// Default: claim self as root.
		best := st{root: id, dist: 0, parent: id}
		for _, nb := range t.net.Neighbors(id) {
			nbRoot, ok := t.root[nb]
			if !ok {
				nbRoot = nb
			}
			nbDist := t.dist[nb]
			if nbDist+1 > maxDepth {
				continue // impossible claim: ignore
			}
			cand := st{root: nbRoot, dist: nbDist + 1, parent: nb}
			if cand.root < best.root || (cand.root == best.root && cand.dist < best.dist) {
				best = cand
			}
		}
		next[id] = best
	}
	for _, id := range ids {
		n := next[id]
		if t.root[id] != n.root || t.dist[id] != n.dist || t.parent[id] != n.parent {
			changed++
		}
		t.root[id] = n.root
		t.dist[id] = n.dist
		t.parent[id] = n.parent
	}
	return changed
}

// Stabilize runs Step until quiescent or maxRounds, returning the number
// of rounds used and whether it quiesced.
func (t *SpanningTree) Stabilize(maxRounds int) (int, bool) {
	for r := 1; r <= maxRounds; r++ {
		if t.Step() == 0 {
			return r, true
		}
	}
	return maxRounds, false
}

// Parent returns id's current parent (itself for roots).
func (t *SpanningTree) Parent(id asset.ID) asset.ID {
	p, ok := t.parent[id]
	if !ok {
		return id
	}
	return p
}

// Root returns id's current believed root.
func (t *SpanningTree) Root(id asset.ID) asset.ID {
	r, ok := t.root[id]
	if !ok {
		return id
	}
	return r
}

// Depth returns id's current believed distance to the root.
func (t *SpanningTree) Depth(id asset.ID) int { return t.dist[id] }

// Legal verifies the global invariant: within every connected component
// all nodes agree on the minimum-ID root, distances are consistent BFS
// distances, and parent pointers decrease distance.
func (t *SpanningTree) Legal() bool {
	comps := t.net.Components(1)
	for _, comp := range comps {
		if len(comp) == 0 {
			continue
		}
		minID := comp[0] // Components returns sorted IDs
		// BFS ground-truth distances from minID.
		want := map[asset.ID]int{minID: 0}
		frontier := []asset.ID{minID}
		for len(frontier) > 0 {
			var next []asset.ID
			for _, u := range frontier {
				for _, v := range t.net.Neighbors(u) {
					if _, ok := want[v]; !ok {
						want[v] = want[u] + 1
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
		for _, id := range comp {
			if t.Root(id) != minID {
				return false
			}
			if t.dist[id] != want[id] {
				return false
			}
			if id != minID {
				p := t.Parent(id)
				if t.dist[p] != t.dist[id]-1 {
					return false
				}
			}
		}
	}
	return true
}

// AggregateCount performs tree aggregation: each node contributes 1 and
// counts propagate toward the root; returns per-root totals. It is a
// pure function of the current (possibly illegal) tree and demonstrates
// why the invariant matters.
func (t *SpanningTree) AggregateCount() map[asset.ID]int {
	ids := t.net.Nodes()
	// Accumulate along parent chains with cycle guards.
	totals := make(map[asset.ID]int)
	for _, id := range ids {
		cur := id
		steps := 0
		for steps <= len(ids) {
			p := t.Parent(cur)
			if p == cur {
				totals[cur]++
				break
			}
			cur = p
			steps++
		}
	}
	return totals
}
