// Package adapt implements the paper's Challenge 2 (§IV): self-aware
// adaptation. It provides the unifying "self" abstraction — state,
// model, goal, and actions that adapt until the goal is met — plus the
// concrete machinery the experiments exercise: invariant monitors with
// reflex repair, a self-stabilizing spanning tree for in-network
// aggregation, adaptive controllers, and a coordination layer that damps
// the destructive interference of uncoordinated adaptive components
// (the paper's reference [12]).
package adapt

import (
	"time"

	"iobt/internal/sim"
)

// Self is the unifying abstraction of a self-aware component (paper
// §IV.A): it encapsulates state, a model, and a goal, and adapts its
// actions when the goal is violated. Self-stabilizing algorithms, error
// correction, and adaptive control are all instances of this loop.
type Self interface {
	// Name identifies the component in traces.
	Name() string
	// GoalMet reports whether the component currently satisfies its goal.
	GoalMet() bool
	// Adapt performs one adaptation step toward the goal. It returns
	// true if the component changed anything (used for quiescence
	// detection).
	Adapt() bool
}

// Monitor watches an invariant and triggers reflexive repair on
// violation, recording detection and repair latencies ("akin to
// instinctual reflexes", §II).
type Monitor struct {
	// Name identifies the invariant.
	Name string
	// Check returns true while the invariant holds.
	Check func() bool
	// Repair attempts to restore the invariant.
	Repair func()

	eng      *sim.Engine
	ticker   *sim.Ticker
	violated bool
	downAt   time.Duration

	// Violations counts transitions from holding to violated.
	Violations sim.Counter
	// Repairs counts transitions back to holding.
	Repairs sim.Counter
	// RepairTime records seconds from violation to restoration.
	RepairTime sim.Series
}

// NewMonitor returns an unstarted monitor on eng.
func NewMonitor(eng *sim.Engine, name string, check func() bool, repair func()) *Monitor {
	return &Monitor{Name: name, Check: check, Repair: repair, eng: eng}
}

// Start begins checking every interval.
func (m *Monitor) Start(interval time.Duration) {
	if m.ticker != nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	m.ticker = m.eng.Every(interval, "monitor."+m.Name, m.Tick)
}

// Stop halts checking.
func (m *Monitor) Stop() {
	if m.ticker != nil {
		m.ticker.Stop()
		m.ticker = nil
	}
}

// Tick performs one check/repair cycle synchronously.
func (m *Monitor) Tick() {
	ok := m.Check()
	switch {
	case ok && m.violated:
		m.violated = false
		m.Repairs.Inc()
		m.RepairTime.AddDuration(m.eng.Now() - m.downAt)
	case !ok && !m.violated:
		m.violated = true
		m.downAt = m.eng.Now()
		m.Violations.Inc()
		if m.Repair != nil {
			m.Repair()
		}
	case !ok && m.violated:
		// Still down: keep trying.
		if m.Repair != nil {
			m.Repair()
		}
	}
}

// Violated reports whether the invariant is currently broken.
func (m *Monitor) Violated() bool { return m.violated }

// Rule is one reflex: when Condition holds, Action fires. Rules are
// evaluated in priority order; at most one rule fires per tick
// (subsumption-style arbitration keeps reflexes from fighting).
type Rule struct {
	Name      string
	Condition func() bool
	Action    func()
}

// ReflexChain sequences reflex rules (paper §IV: "complex behavior can
// be attained through the combined action of individual reflexes that
// have been chained together").
type ReflexChain struct {
	rules []Rule
	// Fired counts rule activations by rule name order.
	Fired map[string]int
}

// NewReflexChain returns a chain over rules (highest priority first).
func NewReflexChain(rules ...Rule) *ReflexChain {
	rs := make([]Rule, len(rules))
	copy(rs, rules)
	return &ReflexChain{rules: rs, Fired: make(map[string]int, len(rules))}
}

// Tick evaluates rules in order and fires the first whose condition
// holds. It returns the fired rule's name, or "".
func (c *ReflexChain) Tick() string {
	for _, r := range c.rules {
		if r.Condition != nil && r.Condition() {
			if r.Action != nil {
				r.Action()
			}
			c.Fired[r.Name]++
			return r.Name
		}
	}
	return ""
}
