package adapt

import (
	"testing"
	"time"

	"iobt/internal/sim"
)

// TestMonitorLifecycle drives the invariant monitor through boundary
// trajectories: an invariant that never breaks, breaks once and is
// repaired, stays broken (repair retried every tick), and flaps.
func TestMonitorLifecycle(t *testing.T) {
	cases := []struct {
		name string
		// holdsAt reports whether the invariant holds at tick i (0-based).
		holdsAt        func(i int) bool
		ticks          int
		wantViolations uint64
		wantRepairs    uint64
		wantViolated   bool
	}{
		{
			name:    "never-breaks",
			holdsAt: func(int) bool { return true }, ticks: 10,
			wantViolations: 0, wantRepairs: 0, wantViolated: false,
		},
		{
			name:    "breaks-once-then-repaired",
			holdsAt: func(i int) bool { return i != 3 }, ticks: 10,
			wantViolations: 1, wantRepairs: 1, wantViolated: false,
		},
		{
			name:    "stays-broken",
			holdsAt: func(i int) bool { return i < 2 }, ticks: 10,
			wantViolations: 1, wantRepairs: 0, wantViolated: true,
		},
		{
			name:    "flaps",
			holdsAt: func(i int) bool { return i%2 == 0 }, ticks: 10,
			wantViolations: 5, wantRepairs: 4, wantViolated: true,
		},
		{
			name:    "zero-ticks",
			holdsAt: func(int) bool { return false }, ticks: 0,
			wantViolations: 0, wantRepairs: 0, wantViolated: false,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.NewEngine(1)
			tick := 0
			repairs := 0
			m := NewMonitor(eng, tc.name,
				func() bool { return tc.holdsAt(tick) },
				func() { repairs++ })
			for ; tick < tc.ticks; tick++ {
				m.Tick()
			}
			if got := m.Violations.Value(); got != tc.wantViolations {
				t.Errorf("Violations = %d, want %d", got, tc.wantViolations)
			}
			if got := m.Repairs.Value(); got != tc.wantRepairs {
				t.Errorf("Repairs = %d, want %d", got, tc.wantRepairs)
			}
			if m.Violated() != tc.wantViolated {
				t.Errorf("Violated() = %v, want %v", m.Violated(), tc.wantViolated)
			}
			if int(m.Repairs.Value()) != m.RepairTime.N() {
				t.Errorf("RepairTime samples %d != repairs %d", m.RepairTime.N(), m.Repairs.Value())
			}
		})
	}
}

// TestMonitorStartStop checks the scheduling boundaries: a non-positive
// interval defaults to one second, double Start is a no-op, and Stop
// halts checking.
func TestMonitorStartStop(t *testing.T) {
	eng := sim.NewEngine(1)
	checks := 0
	m := NewMonitor(eng, "start-stop", func() bool { checks++; return true }, nil)
	m.Start(0) // defaults to 1s
	m.Start(time.Millisecond)
	if err := eng.Run(3500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if checks != 3 {
		t.Errorf("checks = %d, want 3 (1s default cadence, double Start ignored)", checks)
	}
	m.Stop()
	m.Stop() // idempotent
	if err := eng.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if checks != 3 {
		t.Errorf("checks after Stop = %d, want 3", checks)
	}
}

// TestMonitorNilRepair checks a monitor with no repair action still
// tracks violation state.
func TestMonitorNilRepair(t *testing.T) {
	eng := sim.NewEngine(1)
	ok := false
	m := NewMonitor(eng, "nil-repair", func() bool { return ok }, nil)
	m.Tick()
	if !m.Violated() || m.Violations.Value() != 1 {
		t.Fatalf("violation not recorded: violated=%v count=%d", m.Violated(), m.Violations.Value())
	}
	ok = true
	m.Tick()
	if m.Violated() || m.Repairs.Value() != 1 {
		t.Fatalf("repair not recorded: violated=%v count=%d", m.Violated(), m.Repairs.Value())
	}
}

// TestReflexChain covers the subsumption arbitration boundaries: empty
// chain, nil conditions, priority order, one rule per tick, and
// activation counting.
func TestReflexChain(t *testing.T) {
	t.Run("empty-chain", func(t *testing.T) {
		c := NewReflexChain()
		if got := c.Tick(); got != "" {
			t.Errorf("empty chain fired %q", got)
		}
	})

	t.Run("nil-condition-skipped", func(t *testing.T) {
		fired := false
		c := NewReflexChain(
			Rule{Name: "nil-cond", Action: func() { t.Error("nil-condition rule fired") }},
			Rule{Name: "real", Condition: func() bool { return true }, Action: func() { fired = true }},
		)
		if got := c.Tick(); got != "real" {
			t.Errorf("fired %q, want real", got)
		}
		if !fired {
			t.Error("action did not run")
		}
	})

	t.Run("priority-order", func(t *testing.T) {
		var order []string
		high, low := false, true
		c := NewReflexChain(
			Rule{Name: "high", Condition: func() bool { return high },
				Action: func() { order = append(order, "high") }},
			Rule{Name: "low", Condition: func() bool { return low },
				Action: func() { order = append(order, "low") }},
		)
		// Only the low rule's condition holds: it fires.
		if got := c.Tick(); got != "low" {
			t.Errorf("fired %q, want low", got)
		}
		// Both hold: the higher-priority rule wins, one rule per tick.
		high = true
		if got := c.Tick(); got != "high" {
			t.Errorf("fired %q, want high", got)
		}
		if len(order) != 2 || order[0] != "low" || order[1] != "high" {
			t.Errorf("actions ran %v, want [low high]", order)
		}
		if c.Fired["high"] != 1 || c.Fired["low"] != 1 {
			t.Errorf("Fired = %v, want high:1 low:1", c.Fired)
		}
	})

	t.Run("no-rule-applies", func(t *testing.T) {
		c := NewReflexChain(Rule{Name: "never", Condition: func() bool { return false }})
		for i := 0; i < 3; i++ {
			if got := c.Tick(); got != "" {
				t.Errorf("fired %q, want none", got)
			}
		}
		if c.Fired["never"] != 0 {
			t.Errorf("Fired[never] = %d, want 0", c.Fired["never"])
		}
	})
}
