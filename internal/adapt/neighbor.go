package adapt

import (
	"iobt/internal/sim"
)

// Neighbor-adaptive parameter tuning (paper §IV.B): "instead of brittle
// controllers designed with fixed assumptions, one may design novel
// controllers that are parameterized differently but adapt their
// parameterization by observing their neighbors, so that the system
// self-adjusts to the environment." Population is that mechanism: a set
// of agents with heterogeneous parameters, each locally hill-climbing a
// performance signal and blending toward the best-performing neighbor
// it can see.
type Population struct {
	// Params holds each agent's current parameter.
	Params []float64
	// Perf is an environment-supplied performance function (higher is
	// better). It may change at any time — that is the point.
	Perf func(param float64) float64
	// Neighbors lists each agent's visible peers.
	Neighbors [][]int
	// Blend is the imitation strength toward the best neighbor, in
	// [0,1]; StepSize is the local exploration step.
	Blend, StepSize float64

	rng *sim.RNG
}

// NewPopulation returns a population with the given initial parameters
// and ring visibility.
func NewPopulation(rng *sim.RNG, params []float64, perf func(float64) float64) *Population {
	ps := make([]float64, len(params))
	copy(ps, params)
	n := len(ps)
	nbrs := make([][]int, n)
	for i := 0; i < n; i++ {
		if n > 1 {
			nbrs[i] = []int{(i + n - 1) % n, (i + 1) % n}
		}
	}
	return &Population{
		Params:    ps,
		Perf:      perf,
		Neighbors: nbrs,
		Blend:     0.3,
		StepSize:  0.1,
		rng:       rng,
	}
}

// Step runs one adaptation round for every agent: probe locally (keep a
// random perturbation if it helps), then blend toward the
// best-performing visible neighbor. Imitation is what lets one lucky
// agent's parameters propagate through the team after an environment
// shift.
func (p *Population) Step() {
	n := len(p.Params)
	perf := make([]float64, n)
	for i := 0; i < n; i++ {
		perf[i] = p.Perf(p.Params[i])
	}
	next := make([]float64, n)
	for i := 0; i < n; i++ {
		cur := p.Params[i]
		// Local exploration.
		cand := cur + p.rng.Norm(0, p.StepSize)
		if p.Perf(cand) > perf[i] {
			cur = cand
		}
		// Imitate the best neighbor if it is doing better.
		bestNb, bestPerf := -1, perf[i]
		for _, nb := range p.Neighbors[i] {
			if perf[nb] > bestPerf {
				bestNb, bestPerf = nb, perf[nb]
			}
		}
		if bestNb >= 0 {
			cur = (1-p.Blend)*cur + p.Blend*p.Params[bestNb]
		}
		next[i] = cur
	}
	p.Params = next
}

// MeanPerf returns the population's average performance.
func (p *Population) MeanPerf() float64 {
	if len(p.Params) == 0 {
		return 0
	}
	total := 0.0
	for _, v := range p.Params {
		total += p.Perf(v)
	}
	return total / float64(len(p.Params))
}

// StepsToReach runs Step until MeanPerf reaches target or maxSteps, and
// returns the steps used and whether the target was met.
func (p *Population) StepsToReach(target float64, maxSteps int) (int, bool) {
	for s := 1; s <= maxSteps; s++ {
		p.Step()
		if p.MeanPerf() >= target {
			return s, true
		}
	}
	return maxSteps, false
}
