package trust

import (
	"bytes"
	"testing"

	"iobt/internal/asset"
)

func TestLedgerSnapshotRoundTrip(t *testing.T) {
	l := NewLedger()
	l.SetPrior(2, 1)
	l.Observe(3, EvMission, true)
	l.Observe(3, EvMission, true)
	l.Observe(7, EvAnomaly, false)
	l.Observe(1, EvDiscovery, true)

	snap := l.Snapshot()
	restored := NewLedger()
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for _, id := range []asset.ID{1, 3, 7} {
		if got, want := restored.Score(id), l.Score(id); got != want {
			t.Errorf("Score(%d) = %v after restore, want %v", id, got, want)
		}
		if got, want := restored.Confidence(id), l.Confidence(id); got != want {
			t.Errorf("Confidence(%d) = %v after restore, want %v", id, got, want)
		}
	}
	if got, want := restored.EvidenceTotal(), l.EvidenceTotal(); got != want {
		t.Errorf("EvidenceTotal = %v after restore, want %v", got, want)
	}
	// Deterministic encoding: re-snapshotting the restored ledger must
	// be byte-identical.
	if !bytes.Equal(restored.Snapshot(), snap) {
		t.Error("restored ledger snapshot differs from original")
	}
}

func TestLedgerResetClearsEvidence(t *testing.T) {
	l := NewLedger()
	l.Observe(5, EvMission, true)
	if l.EvidenceTotal() == 0 {
		t.Fatal("evidence should be nonzero after Observe")
	}
	l.Reset()
	if l.EvidenceTotal() != 0 {
		t.Errorf("EvidenceTotal = %v after Reset, want 0", l.EvidenceTotal())
	}
	if l.Len() != 0 {
		t.Errorf("Len = %d after Reset, want 0", l.Len())
	}
}
