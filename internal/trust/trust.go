// Package trust maintains per-asset trust scores using Beta-reputation
// bookkeeping: each node accumulates positive and negative evidence from
// discovery, truth-finding, anomaly detection, and mission outcomes, and
// its score is the posterior expectation of behaving correctly.
//
// Trust is the cross-cutting security signal of the paper (§II, §VI): it
// gates which discovered assets composition will recruit and which peers
// learning will aggregate from.
package trust

import (
	"math"
	"sort"

	"iobt/internal/asset"
	"iobt/internal/checkpoint"
)

// Evidence identifies where an observation came from, for audit and for
// source-specific weighting.
type Evidence int

// Evidence sources.
const (
	EvDiscovery Evidence = iota + 1 // fingerprint/probe consistency
	EvTruth                         // truth-discovery reliability estimate
	EvAnomaly                       // anomaly detector verdicts
	EvMission                       // post-mission outcome audit
)

// weights scale how strongly each evidence source moves the posterior.
var weights = map[Evidence]float64{
	EvDiscovery: 1,
	EvTruth:     2,
	EvAnomaly:   1.5,
	EvMission:   3,
}

type record struct {
	alpha, beta float64 // Beta(alpha, beta) posterior
}

// Ledger tracks trust for a world's assets. The zero ledger is not
// usable; construct with NewLedger.
type Ledger struct {
	records map[asset.ID]*record
	// PriorAlpha/PriorBeta set the uninformed prior; defaults 1,1
	// (uniform) giving new nodes score 0.5.
	priorAlpha, priorBeta float64
}

// NewLedger returns an empty ledger with a uniform prior.
func NewLedger() *Ledger {
	return &Ledger{
		records:    make(map[asset.ID]*record),
		priorAlpha: 1,
		priorBeta:  1,
	}
}

// SetPrior replaces the prior used for unseen nodes. Non-positive
// parameters are rejected (ignored).
func (l *Ledger) SetPrior(alpha, beta float64) {
	if alpha <= 0 || beta <= 0 {
		return
	}
	l.priorAlpha, l.priorBeta = alpha, beta
}

func (l *Ledger) rec(id asset.ID) *record {
	r, ok := l.records[id]
	if !ok {
		r = &record{alpha: l.priorAlpha, beta: l.priorBeta}
		l.records[id] = r
	}
	return r
}

// Observe records one observation about id: good=true is supporting
// evidence, good=false is incriminating. The evidence source sets the
// update weight.
func (l *Ledger) Observe(id asset.ID, src Evidence, good bool) {
	w, ok := weights[src]
	if !ok {
		w = 1
	}
	r := l.rec(id)
	if good {
		r.alpha += w
	} else {
		r.beta += w
	}
}

// Score returns the trust score of id in (0,1): the mean of its Beta
// posterior. Unseen nodes return the prior mean.
func (l *Ledger) Score(id asset.ID) float64 {
	r, ok := l.records[id]
	if !ok {
		return l.priorAlpha / (l.priorAlpha + l.priorBeta)
	}
	return r.alpha / (r.alpha + r.beta)
}

// Confidence returns how much evidence backs the score, as 1 - the
// posterior standard deviation normalized to the prior's. Ranges (0,1];
// higher is more settled.
func (l *Ledger) Confidence(id asset.ID) float64 {
	r, ok := l.records[id]
	if !ok {
		return 0
	}
	s := r.alpha + r.beta
	sd := math.Sqrt(r.alpha * r.beta / (s * s * (s + 1)))
	prior := l.priorAlpha + l.priorBeta
	sdPrior := math.Sqrt(l.priorAlpha * l.priorBeta / (prior * prior * (prior + 1)))
	if sdPrior == 0 {
		return 1
	}
	c := 1 - sd/sdPrior
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	return c
}

// Decay multiplies all accumulated evidence by factor in (0,1], pulling
// scores back toward the prior. Call periodically so stale reputations
// fade (nodes can be captured mid-mission).
func (l *Ledger) Decay(factor float64) {
	if factor <= 0 || factor >= 1 {
		return
	}
	for _, r := range l.records {
		r.alpha = l.priorAlpha + (r.alpha-l.priorAlpha)*factor
		r.beta = l.priorBeta + (r.beta-l.priorBeta)*factor
	}
}

// Trusted reports whether id's score meets the threshold.
func (l *Ledger) Trusted(id asset.ID, threshold float64) bool {
	return l.Score(id) >= threshold
}

// Suspects returns all ids with score below threshold, worst first.
func (l *Ledger) Suspects(threshold float64) []asset.ID {
	type pair struct {
		id asset.ID
		s  float64
	}
	var out []pair
	for id := range l.records {
		if s := l.Score(id); s < threshold {
			out = append(out, pair{id, s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].s != out[j].s {
			return out[i].s < out[j].s
		}
		return out[i].id < out[j].id
	})
	ids := make([]asset.ID, len(out))
	for i, p := range out {
		ids[i] = p.id
	}
	return ids
}

// Len returns the number of nodes with recorded evidence.
func (l *Ledger) Len() int { return len(l.records) }

// Reset discards all accumulated evidence, returning every node to the
// prior. This is the cold-failover path: a rebuilt command post starts
// with no reputation memory and must re-learn who to trust.
func (l *Ledger) Reset() {
	for id := range l.records {
		delete(l.records, id)
	}
}

// EvidenceTotal returns the total weighted evidence accumulated beyond
// the prior, summed over all nodes. The fault harness samples it to
// measure the stale-trust window after a failover: how long the
// successor post operates on less evidence than the lost post held.
// Float addition is not associative, so the sum runs over ids in
// sorted order (the Snapshot idiom): a map-order sum differs in the
// last bits between same-seed runs, and the harness feeds this value
// into scheduling decisions where those bits matter.
func (l *Ledger) EvidenceTotal() float64 {
	ids := make([]asset.ID, 0, len(l.records))
	for id := range l.records {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	total := 0.0
	for _, id := range ids {
		r := l.records[id]
		total += (r.alpha - l.priorAlpha) + (r.beta - l.priorBeta)
	}
	return total
}

// Evidence returns id's accumulated Beta evidence (alpha, beta), or the
// prior if the node is unseen. The replicated common operational picture
// (internal/cop) exports these pairs as grow-only counters.
func (l *Ledger) Evidence(id asset.ID) (alpha, beta float64) {
	r, ok := l.records[id]
	if !ok {
		return l.priorAlpha, l.priorBeta
	}
	return r.alpha, r.beta
}

// IDs returns every node with recorded evidence, ascending.
func (l *Ledger) IDs() []asset.ID {
	ids := make([]asset.ID, 0, len(l.records))
	for id := range l.records {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// MergeEvidence folds replicated evidence about id into the ledger as a
// pointwise max — the CRDT join, so merging is idempotent and never
// regresses locally accumulated evidence. Decay between merges can make
// the local pair dip below a previously merged value; the max then
// restores the replicated floor, which is the intended convergence
// semantic.
func (l *Ledger) MergeEvidence(id asset.ID, alpha, beta float64) {
	r := l.rec(id)
	if alpha > r.alpha {
		r.alpha = alpha
	}
	if beta > r.beta {
		r.beta = beta
	}
}

// SnapshotName implements checkpoint.Snapshotter.
func (l *Ledger) SnapshotName() string { return "trust" }

// Snapshot encodes the ledger deterministically (ids sorted).
func (l *Ledger) Snapshot() []byte {
	ids := make([]asset.ID, 0, len(l.records))
	for id := range l.records {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	e := checkpoint.NewEncoder()
	e.Float64(l.priorAlpha)
	e.Float64(l.priorBeta)
	e.Int(len(ids))
	for _, id := range ids {
		r := l.records[id]
		e.Int64(int64(id))
		e.Float64(r.alpha)
		e.Float64(r.beta)
	}
	return e.Bytes()
}

// Restore replaces the ledger's state from a snapshot.
func (l *Ledger) Restore(data []byte) error {
	d := checkpoint.NewDecoder(data)
	priorAlpha := d.Float64()
	priorBeta := d.Float64()
	n := d.Int()
	if d.Err() != nil {
		return d.Err()
	}
	records := make(map[asset.ID]*record, n)
	for i := 0; i < n; i++ {
		id := asset.ID(d.Int64())
		alpha := d.Float64()
		beta := d.Float64()
		records[id] = &record{alpha: alpha, beta: beta}
	}
	if d.Err() != nil {
		return d.Err()
	}
	l.priorAlpha, l.priorBeta = priorAlpha, priorBeta
	l.records = records
	return nil
}
