package trust

import (
	"testing"
	"testing/quick"

	"iobt/internal/asset"
)

func TestPriorScore(t *testing.T) {
	l := NewLedger()
	if got := l.Score(1); got != 0.5 {
		t.Errorf("prior score = %v, want 0.5", got)
	}
	if l.Confidence(1) != 0 {
		t.Error("unseen node should have zero confidence")
	}
}

func TestObserveMovesScore(t *testing.T) {
	l := NewLedger()
	l.Observe(1, EvMission, true)
	if l.Score(1) <= 0.5 {
		t.Error("good evidence should raise score")
	}
	l2 := NewLedger()
	l2.Observe(1, EvMission, false)
	if l2.Score(1) >= 0.5 {
		t.Error("bad evidence should lower score")
	}
}

func TestEvidenceWeighting(t *testing.T) {
	a, b := NewLedger(), NewLedger()
	a.Observe(1, EvDiscovery, true) // weight 1
	b.Observe(1, EvMission, true)   // weight 3
	if b.Score(1) <= a.Score(1) {
		t.Errorf("mission evidence should move score more: %v vs %v", b.Score(1), a.Score(1))
	}
	// Unknown evidence source defaults to weight 1.
	c := NewLedger()
	c.Observe(1, Evidence(99), true)
	if c.Score(1) != a.Score(1) {
		t.Error("unknown evidence should weigh 1")
	}
}

func TestConfidenceGrows(t *testing.T) {
	l := NewLedger()
	l.Observe(1, EvDiscovery, true)
	c1 := l.Confidence(1)
	for i := 0; i < 20; i++ {
		l.Observe(1, EvDiscovery, true)
	}
	c2 := l.Confidence(1)
	if c2 <= c1 {
		t.Errorf("confidence did not grow: %v -> %v", c1, c2)
	}
	if c2 > 1 {
		t.Errorf("confidence out of range: %v", c2)
	}
}

func TestDecayPullsTowardPrior(t *testing.T) {
	l := NewLedger()
	for i := 0; i < 10; i++ {
		l.Observe(1, EvMission, false)
	}
	before := l.Score(1)
	l.Decay(0.5)
	after := l.Score(1)
	if !(before < after && after < 0.5) {
		t.Errorf("decay wrong: %v -> %v", before, after)
	}
	l.Decay(0)   // invalid, no-op
	l.Decay(1.5) // invalid, no-op
	if l.Score(1) != after {
		t.Error("invalid decay factors should be ignored")
	}
}

func TestTrustedAndSuspects(t *testing.T) {
	l := NewLedger()
	for i := 0; i < 5; i++ {
		l.Observe(1, EvMission, false)
		l.Observe(2, EvMission, true)
		l.Observe(3, EvAnomaly, false)
	}
	if l.Trusted(1, 0.5) {
		t.Error("bad node should not be trusted at 0.5")
	}
	if !l.Trusted(2, 0.5) {
		t.Error("good node should be trusted")
	}
	sus := l.Suspects(0.5)
	if len(sus) != 2 {
		t.Fatalf("Suspects = %v", sus)
	}
	// Node 1 has stronger negative evidence (weight 3 vs 1.5) so comes first.
	if sus[0] != 1 || sus[1] != 3 {
		t.Errorf("Suspects order = %v, want [1 3]", sus)
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestSetPrior(t *testing.T) {
	l := NewLedger()
	l.SetPrior(9, 1)
	if got := l.Score(1); got != 0.9 {
		t.Errorf("score with 9:1 prior = %v", got)
	}
	l.SetPrior(-1, 2) // rejected
	if got := l.Score(1); got != 0.9 {
		t.Errorf("invalid prior applied: %v", got)
	}
}

// Property: scores always stay strictly inside (0,1) and more good
// evidence never lowers the score.
func TestScoreInvariants(t *testing.T) {
	prop := func(obs []bool) bool {
		l := NewLedger()
		prev := l.Score(7)
		for _, good := range obs {
			l.Observe(7, EvTruth, good)
			s := l.Score(7)
			if s <= 0 || s >= 1 {
				return false
			}
			if good && s < prev {
				return false
			}
			if !good && s > prev {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: decay never crosses the prior (monotone pull toward 0.5).
func TestDecayInvariant(t *testing.T) {
	prop := func(goods uint8, bads uint8) bool {
		l := NewLedger()
		for i := 0; i < int(goods); i++ {
			l.Observe(1, EvDiscovery, true)
		}
		for i := 0; i < int(bads); i++ {
			l.Observe(1, EvDiscovery, false)
		}
		before := l.Score(1)
		l.Decay(0.9)
		after := l.Score(1)
		if before >= 0.5 {
			return after >= 0.5-1e-9 && after <= before+1e-9
		}
		return after <= 0.5+1e-9 && after >= before-1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestEvidenceTotalDeterministic locks in the iobtlint dettaint fix:
// the evidence sum must be a pure function of ledger content. Float
// addition is not associative, so the old map-order loop returned a
// value whose last bits depended on that run's map iteration order —
// after Decay makes the records non-dyadic, repeated calls could
// disagree. The sum now runs over sorted ids and must equal the
// explicit ascending-ID reference bit-for-bit, every call.
func TestEvidenceTotalDeterministic(t *testing.T) {
	l := NewLedger()
	const n = 64
	for i := 0; i < n; i++ {
		id := asset.ID(i)
		for k := 0; k <= i; k++ {
			l.Observe(id, EvMission, k%3 == 0)
			l.Observe(id, EvAnomaly, k%2 == 0)
		}
	}
	l.Decay(0.977) // non-dyadic records: addition order now matters

	want := 0.0
	for i := 0; i < n; i++ {
		r := l.records[asset.ID(i)]
		want += (r.alpha - l.priorAlpha) + (r.beta - l.priorBeta)
	}
	for trial := 0; trial < 50; trial++ {
		if got := l.EvidenceTotal(); got != want {
			t.Fatalf("trial %d: EvidenceTotal = %v, want sorted-order sum %v", trial, got, want)
		}
	}
}

func TestEvidenceExportAndIDs(t *testing.T) {
	l := NewLedger()
	if a, b := l.Evidence(7); a != 1 || b != 1 {
		t.Errorf("unseen evidence = (%v,%v), want the (1,1) prior", a, b)
	}
	l.Observe(7, EvMission, true)
	l.Observe(3, EvAnomaly, false)
	a, b := l.Evidence(7)
	if a != 4 || b != 1 {
		t.Errorf("evidence(7) = (%v,%v), want (4,1)", a, b)
	}
	ids := l.IDs()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 7 {
		t.Errorf("IDs = %v, want [3 7] ascending", ids)
	}
}

func TestMergeEvidenceNeverRegresses(t *testing.T) {
	l := NewLedger()
	l.Observe(5, EvMission, true) // alpha 4, beta 1
	l.MergeEvidence(5, 2, 6)      // alpha stays 4, beta lifts to 6
	if a, b := l.Evidence(5); a != 4 || b != 6 {
		t.Errorf("evidence = (%v,%v), want (4,6)", a, b)
	}
	// Idempotent: re-merging the same replicated pair changes nothing.
	l.MergeEvidence(5, 2, 6)
	if a, b := l.Evidence(5); a != 4 || b != 6 {
		t.Errorf("re-merge moved evidence to (%v,%v)", a, b)
	}
	// Merging into an unseen node starts from the prior and lifts.
	l.MergeEvidence(9, 10, 1)
	if a, b := l.Evidence(9); a != 10 || b != 1 {
		t.Errorf("merged unseen = (%v,%v), want (10,1)", a, b)
	}
}
