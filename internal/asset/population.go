package asset

import (
	"fmt"
	"sort"
	"time"

	"iobt/internal/geo"
	"iobt/internal/sim"
)

// Mix describes the composition of a generated population: how many of
// each class, and the red/gray fractions among them.
type Mix struct {
	Counts map[Class]int
	// RedFrac and GrayFrac are the fractions of the population (after
	// class assignment) that are adversarial and neutral respectively;
	// the remainder is blue. Humans and phones are preferentially
	// assigned gray, and motes/phones red, matching the paper's picture
	// of commodity devices with mixed control.
	RedFrac, GrayFrac float64
	// MobileFrac is the fraction of non-fixed classes given random
	// waypoint mobility (the rest are static).
	MobileFrac float64
	// SpeedMin/SpeedMax bound mobile node speeds in m/s.
	SpeedMin, SpeedMax float64
}

// DefaultMix returns a heterogeneous population of roughly n assets with
// a composition matched to the paper's urban-operations scenario.
func DefaultMix(n int) Mix {
	if n < 10 {
		n = 10
	}
	return Mix{
		Counts: map[Class]int{
			ClassMote:       n * 30 / 100,
			ClassSensor:     n * 15 / 100,
			ClassPhone:      n * 25 / 100,
			ClassWearable:   n * 10 / 100,
			ClassUAV:        n * 5 / 100,
			ClassRobot:      n * 4 / 100,
			ClassVehicle:    n * 4 / 100,
			ClassEdgeServer: max(1, n*2/100),
			ClassHuman:      n * 5 / 100,
		},
		RedFrac:    0.10,
		GrayFrac:   0.25,
		MobileFrac: 0.4,
		SpeedMin:   0.5,
		SpeedMax:   8,
	}
}

// Population is the set of assets in one world plus a spatial index over
// the alive ones.
type Population struct {
	assets []*Asset
	grid   *geo.Grid
	terr   *geo.Terrain
}

// NewPopulation returns an empty population on terr; add assets with Add.
func NewPopulation(terr *geo.Terrain) *Population {
	return &Population{grid: geo.NewGrid(terr.Bounds, 0), terr: terr}
}

// Generate creates a population on terrain according to mix, using rng
// for all placement and class randomness.
func Generate(terr *geo.Terrain, mix Mix, rng *sim.RNG) *Population {
	p := &Population{
		grid: geo.NewGrid(terr.Bounds, 0),
		terr: terr,
	}
	classes := make([]Class, 0, len(mix.Counts))
	for c := range mix.Counts {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	var all []*Asset
	for _, c := range classes {
		for i := 0; i < mix.Counts[c]; i++ {
			a := &Asset{
				ID:          ID(len(all)),
				Affiliation: Blue,
				Class:       c,
				Caps:        DefaultCaps(c),
				DutyCycle:   1,
				Online:      true,
			}
			a.Energy = a.Caps.EnergyCap
			start := terr.RandomPoint(rng)
			mobileClass := c == ClassUAV || c == ClassRobot || c == ClassVehicle ||
				c == ClassPhone || c == ClassHuman || c == ClassWearable
			if mobileClass && rng.Bool(mix.MobileFrac) {
				a.Mobility = geo.NewRandomWaypoint(terr, rng.Derive(fmt.Sprintf("mob%d", a.ID)),
					start, mix.SpeedMin, mix.SpeedMax, 30*time.Second)
			} else {
				a.Mobility = &geo.Static{P: start}
			}
			// Emission signature: commodity devices are chattier.
			switch c {
			case ClassPhone, ClassHuman, ClassWearable:
				a.Emission = rng.Uniform(0.5, 1.0)
			default:
				a.Emission = rng.Uniform(0.1, 0.6)
			}
			all = append(all, a)
		}
	}

	// Assign affiliations: a weighted lottery biased by class.
	assignAffiliations(all, mix, rng)

	p.assets = all
	for _, a := range all {
		p.grid.Insert(int32(a.ID), a.Pos())
	}
	return p
}

func assignAffiliations(all []*Asset, mix Mix, rng *sim.RNG) {
	n := len(all)
	nRed := int(mix.RedFrac * float64(n))
	nGray := int(mix.GrayFrac * float64(n))
	// Build a weighted candidate order: gray prefers phones/humans, red
	// prefers motes/phones. Do it by scoring with jitter then sorting.
	grayScore := func(a *Asset) float64 {
		s := rng.Float64()
		if a.Class == ClassPhone || a.Class == ClassHuman || a.Class == ClassWearable {
			s += 1
		}
		return s
	}
	order := make([]*Asset, n)
	copy(order, all)
	scores := make(map[ID]float64, n)
	for _, a := range order {
		scores[a.ID] = grayScore(a)
	}
	sort.Slice(order, func(i, j int) bool { return scores[order[i].ID] > scores[order[j].ID] })
	for i := 0; i < nGray && i < n; i++ {
		order[i].Affiliation = Gray
	}
	// Red from the remaining blue pool, biased toward motes/phones.
	var pool []*Asset
	for _, a := range all {
		if a.Affiliation == Blue {
			pool = append(pool, a)
		}
	}
	redScores := make(map[ID]float64, len(pool))
	for _, a := range pool {
		s := rng.Float64()
		if a.Class == ClassMote || a.Class == ClassPhone {
			s += 0.7
		}
		redScores[a.ID] = s
	}
	sort.Slice(pool, func(i, j int) bool { return redScores[pool[i].ID] > redScores[pool[j].ID] })
	for i := 0; i < nRed && i < len(pool); i++ {
		pool[i].Affiliation = Red
	}
}

// Len returns the total number of assets ever added (including dead).
func (p *Population) Len() int { return len(p.assets) }

// Get returns the asset with the given ID, or nil.
func (p *Population) Get(id ID) *Asset {
	if id < 0 || int(id) >= len(p.assets) {
		return nil
	}
	return p.assets[id]
}

// All returns the underlying asset slice. Callers must not mutate the
// slice structure (elements are shared by design — the population is the
// single source of truth for asset state).
func (p *Population) All() []*Asset { return p.assets }

// Terrain returns the terrain the population inhabits.
func (p *Population) Terrain() *geo.Terrain { return p.terr }

// Add inserts an externally constructed asset, assigning it the next ID.
// It returns the assigned ID.
func (p *Population) Add(a *Asset) ID {
	a.ID = ID(len(p.assets))
	if a.Mobility == nil {
		a.Mobility = &geo.Static{}
	}
	p.assets = append(p.assets, a)
	if a.Alive() {
		p.grid.Insert(int32(a.ID), a.Pos())
	}
	return a.ID
}

// Kill marks an asset dead and removes it from the spatial index.
func (p *Population) Kill(id ID) {
	a := p.Get(id)
	if a == nil {
		return
	}
	a.Energy = 0
	a.Online = false
	p.grid.Remove(int32(id))
}

// Revive restores an asset to full energy and reindexes it.
func (p *Population) Revive(id ID) {
	a := p.Get(id)
	if a == nil {
		return
	}
	a.Energy = a.Caps.EnergyCap
	a.Online = true
	p.grid.Insert(int32(id), a.Pos())
}

// StepMobility advances every alive asset's mobility by dt and updates
// the spatial index.
func (p *Population) StepMobility(dt time.Duration) {
	for _, a := range p.assets {
		if !a.Alive() || a.Mobility == nil {
			continue
		}
		np := a.Mobility.Step(dt)
		p.grid.Move(int32(a.ID), np)
	}
}

// Near appends the IDs of alive assets within radius of pt to dst.
func (p *Population) Near(dst []ID, pt geo.Point, radius float64) []ID {
	raw := p.grid.Near(nil, pt, radius)
	for _, r := range raw {
		a := p.assets[r]
		if a.Alive() {
			dst = append(dst, ID(r))
		}
	}
	return dst
}

// CountByAffiliation returns alive-asset counts keyed by affiliation.
func (p *Population) CountByAffiliation() map[Affiliation]int {
	out := make(map[Affiliation]int, 3)
	for _, a := range p.assets {
		if a.Alive() {
			out[a.Affiliation]++
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// StepEnergy drains every alive asset's idle power for dt, scaled by its
// duty cycle (sleeping hardware draws ~nothing). Nodes whose battery
// empties die and leave the spatial index — the paper's "disadvantaged
// assets with limitations on energy" becoming churn.
func (p *Population) StepEnergy(dt time.Duration) int {
	died := 0
	for _, a := range p.assets {
		if !a.Alive() {
			continue
		}
		duty := a.DutyCycle
		if duty <= 0 || duty > 1 {
			duty = 1
		}
		if !a.Drain(a.Caps.IdlePower * duty * dt.Seconds()) {
			p.grid.Remove(int32(a.ID))
			died++
		}
	}
	return died
}

// AliveCount returns the number of alive assets.
func (p *Population) AliveCount() int {
	n := 0
	for _, a := range p.assets {
		if a.Alive() {
			n++
		}
	}
	return n
}
