package asset

import (
	"testing"
	"time"

	"iobt/internal/geo"
	"iobt/internal/sim"
)

func testPop(t *testing.T, n int, seed int64) *Population {
	t.Helper()
	terr := geo.NewUrbanTerrain(2000, 2000, 100)
	return Generate(terr, DefaultMix(n), sim.NewRNG(seed))
}

func TestGenerateCounts(t *testing.T) {
	p := testPop(t, 1000, 1)
	if p.Len() < 900 || p.Len() > 1100 {
		t.Fatalf("Len = %d, want ~1000", p.Len())
	}
	byAff := p.CountByAffiliation()
	total := byAff[Blue] + byAff[Red] + byAff[Gray]
	if total != p.Len() {
		t.Errorf("affiliation counts %v don't sum to %d", byAff, p.Len())
	}
	redFrac := float64(byAff[Red]) / float64(total)
	grayFrac := float64(byAff[Gray]) / float64(total)
	if redFrac < 0.05 || redFrac > 0.15 {
		t.Errorf("red fraction = %.3f, want ~0.10", redFrac)
	}
	if grayFrac < 0.2 || grayFrac > 0.3 {
		t.Errorf("gray fraction = %.3f, want ~0.25", grayFrac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := testPop(t, 300, 7)
	b := testPop(t, 300, 7)
	if a.Len() != b.Len() {
		t.Fatal("sizes differ")
	}
	for i := range a.All() {
		x, y := a.All()[i], b.All()[i]
		if x.Class != y.Class || x.Affiliation != y.Affiliation || x.Pos() != y.Pos() {
			t.Fatalf("asset %d differs between same-seed runs", i)
		}
	}
}

func TestGenerateAssetsInBounds(t *testing.T) {
	p := testPop(t, 500, 2)
	for _, a := range p.All() {
		pos := a.Pos()
		if pos.X < 0 || pos.X > 2000 || pos.Y < 0 || pos.Y > 2000 {
			t.Fatalf("asset %d out of bounds at %v", a.ID, pos)
		}
		if a.Energy <= 0 {
			t.Fatalf("asset %d generated dead", a.ID)
		}
	}
}

func TestGrayBiasTowardCommodity(t *testing.T) {
	p := testPop(t, 2000, 3)
	grayCommodity, grayOther := 0, 0
	for _, a := range p.All() {
		if a.Affiliation != Gray {
			continue
		}
		switch a.Class {
		case ClassPhone, ClassHuman, ClassWearable:
			grayCommodity++
		default:
			grayOther++
		}
	}
	if grayCommodity <= grayOther {
		t.Errorf("gray assignment not biased to commodity devices: %d vs %d", grayCommodity, grayOther)
	}
}

func TestKillReviveAndNear(t *testing.T) {
	p := testPop(t, 200, 4)
	target := p.All()[0]
	ids := p.Near(nil, target.Pos(), 1)
	found := false
	for _, id := range ids {
		if id == target.ID {
			found = true
		}
	}
	if !found {
		t.Fatal("asset not found near its own position")
	}
	p.Kill(target.ID)
	if target.Alive() {
		t.Error("killed asset alive")
	}
	for _, id := range p.Near(nil, target.Pos(), 1) {
		if id == target.ID {
			t.Error("dead asset returned by Near")
		}
	}
	p.Revive(target.ID)
	if !target.Alive() || target.Energy != target.Caps.EnergyCap {
		t.Error("revive did not restore energy")
	}
}

func TestGetBounds(t *testing.T) {
	p := testPop(t, 50, 5)
	if p.Get(-1) != nil || p.Get(ID(p.Len())) != nil {
		t.Error("out-of-range Get should return nil")
	}
	if p.Get(0) == nil {
		t.Error("valid Get returned nil")
	}
}

func TestAddAssignsID(t *testing.T) {
	p := testPop(t, 50, 6)
	n := p.Len()
	id := p.Add(&Asset{Class: ClassMote, Caps: DefaultCaps(ClassMote), Energy: 100})
	if int(id) != n {
		t.Errorf("Add id = %d, want %d", id, n)
	}
	if p.Get(id).Mobility == nil {
		t.Error("Add should default mobility")
	}
}

func TestStepMobilityUpdatesIndex(t *testing.T) {
	terr := geo.NewOpenTerrain(1000, 1000)
	p := &Population{grid: geo.NewGrid(terr.Bounds, 0), terr: terr}
	a := &Asset{Class: ClassUAV, Caps: DefaultCaps(ClassUAV), Energy: 1e5,
		Mobility: geo.NewPatrol([]geo.Point{{X: 0, Y: 500}, {X: 1000, Y: 500}}, 100), Online: true}
	p.Add(a)
	p.StepMobility(5 * time.Second) // moves 500m
	ids := p.Near(nil, geo.Point{X: 500, Y: 500}, 10)
	if len(ids) != 1 {
		t.Errorf("index not updated after mobility step: %v", ids)
	}
}

func TestChurnFailuresAndArrivals(t *testing.T) {
	eng := sim.NewEngine(9)
	terr := geo.NewOpenTerrain(1000, 1000)
	p := Generate(terr, DefaultMix(500), eng.Stream("gen"))
	before := aliveCount(p)
	ch := NewChurn(eng, p, ChurnConfig{FailRatePerMin: 0.05, ArriveRatePerMin: 5, ReviveProb: 0.5})
	var failEvents, arriveEvents int
	ch.OnFail = func(ID) { failEvents++ }
	ch.OnArrive = func(ID) { arriveEvents++ }
	ch.Start()
	if err := eng.Run(10 * time.Minute); err != nil {
		t.Fatalf("run: %v", err)
	}
	ch.Stop()
	if ch.Failed() == 0 {
		t.Error("no failures in 10 min at 5%/min")
	}
	if ch.Arrived() == 0 {
		t.Error("no arrivals in 10 min at 5/min")
	}
	if failEvents != int(ch.Failed()) || arriveEvents != int(ch.Arrived()) {
		t.Error("callback counts disagree with counters")
	}
	after := aliveCount(p)
	if after == before && ch.Failed() > 0 {
		t.Error("population unchanged despite churn")
	}
}

func TestChurnStopHalts(t *testing.T) {
	eng := sim.NewEngine(10)
	terr := geo.NewOpenTerrain(1000, 1000)
	p := Generate(terr, DefaultMix(100), eng.Stream("gen"))
	ch := NewChurn(eng, p, ChurnConfig{FailRatePerMin: 0.1, ArriveRatePerMin: 1})
	ch.Start()
	ch.Start() // double start is a no-op
	_ = eng.Run(time.Minute)
	ch.Stop()
	failedAt := ch.Failed()
	_ = eng.Run(10 * time.Minute)
	if ch.Failed() != failedAt {
		t.Error("churn continued after Stop")
	}
}

func aliveCount(p *Population) int {
	n := 0
	for _, a := range p.All() {
		if a.Alive() {
			n++
		}
	}
	return n
}

func TestStepEnergyDrainsAndKills(t *testing.T) {
	terr := geo.NewOpenTerrain(100, 100)
	p := NewPopulation(terr)
	caps := DefaultCaps(ClassMote) // 5e3 J at 0.01 J/s awake
	a := &Asset{Class: ClassMote, Caps: caps, Online: true, DutyCycle: 1,
		Mobility: &geo.Static{P: geo.Point{X: 50, Y: 50}}}
	a.Energy = 10 // tiny battery for the test
	p.Add(a)
	died := p.StepEnergy(500 * time.Second) // 5 J
	if died != 0 || !a.Alive() {
		t.Fatal("asset died too early")
	}
	died = p.StepEnergy(1000 * time.Second) // 10 J more
	if died != 1 || a.Alive() {
		t.Fatal("asset should be dead")
	}
	if ids := p.Near(nil, geo.Point{X: 50, Y: 50}, 10); len(ids) != 0 {
		t.Error("dead asset still indexed")
	}
	if p.AliveCount() != 0 {
		t.Error("AliveCount wrong")
	}
}

// TestDutyCyclingExtendsLifetime is the paper's energy claim: sleeping
// most of the time stretches a disadvantaged asset's battery.
func TestDutyCyclingExtendsLifetime(t *testing.T) {
	lifetime := func(duty float64) time.Duration {
		terr := geo.NewOpenTerrain(100, 100)
		p := NewPopulation(terr)
		a := &Asset{Class: ClassMote, Caps: DefaultCaps(ClassMote), Online: true, DutyCycle: duty,
			Mobility: &geo.Static{P: geo.Point{X: 50, Y: 50}}}
		a.Energy = 100
		p.Add(a)
		elapsed := time.Duration(0)
		step := time.Minute
		for a.Alive() && elapsed < 1000*time.Hour {
			p.StepEnergy(step)
			elapsed += step
		}
		return elapsed
	}
	full := lifetime(1.0)
	tenth := lifetime(0.1)
	ratio := float64(tenth) / float64(full)
	if ratio < 8 || ratio > 12 {
		t.Errorf("10%% duty lifetime ratio = %.1f, want ~10x", ratio)
	}
}

func TestStepEnergyZeroDuty(t *testing.T) {
	terr := geo.NewOpenTerrain(100, 100)
	p := NewPopulation(terr)
	a := &Asset{Class: ClassMote, Caps: DefaultCaps(ClassMote), Online: true, DutyCycle: 0}
	a.Energy = 1
	p.Add(a)
	// Zero/invalid duty cycle is treated as always-on (conservative).
	p.StepEnergy(200 * time.Second)
	if a.Alive() {
		t.Error("invalid duty cycle should default to full drain")
	}
}
