// Package asset models the "things" of an IoBT: their affiliation
// (blue/red/gray), device class, capability vector, energy state, and
// lifecycle. The paper (§II) stresses extreme heterogeneity — "from tiny
// occupancy sensors to drones with three-dimensional Radar" — so
// capabilities span several orders of magnitude across classes.
package asset

import (
	"fmt"

	"iobt/internal/geo"
)

// ID identifies an asset within one world. IDs are dense small integers
// so they can index slices and the spatial grid directly.
type ID int32

// None is the zero, invalid asset ID.
const None ID = -1

// Affiliation is the control status of an asset (paper §II: blue =
// military-controlled, red = adversary-controlled, gray = neutral/civilian).
type Affiliation int

// Affiliations.
const (
	Blue Affiliation = iota + 1
	Red
	Gray
)

// String returns the affiliation name.
func (a Affiliation) String() string {
	switch a {
	case Blue:
		return "blue"
	case Red:
		return "red"
	case Gray:
		return "gray"
	default:
		return "unknown"
	}
}

// Class is the device class of an asset.
type Class int

// Device classes, ordered roughly by capability.
const (
	ClassMote Class = iota + 1 // tiny disposable sensor
	ClassWearable
	ClassSensor // fixed multi-modal sensor post
	ClassPhone  // commodity handheld (often gray)
	ClassRobot
	ClassUAV
	ClassVehicle
	ClassEdgeServer // edge cloud with GPUs
	ClassHuman      // human asset (social sensing source)
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassMote:
		return "mote"
	case ClassWearable:
		return "wearable"
	case ClassSensor:
		return "sensor"
	case ClassPhone:
		return "phone"
	case ClassRobot:
		return "robot"
	case ClassUAV:
		return "uav"
	case ClassVehicle:
		return "vehicle"
	case ClassEdgeServer:
		return "edge"
	case ClassHuman:
		return "human"
	default:
		return "unknown"
	}
}

// Modality is a sensing modality bit.
type Modality uint16

// Sensing modalities. The paper's adaptation example switches from visual
// to seismic sensing under smoke or jamming, so modalities must be
// first-class.
const (
	ModVisual Modality = 1 << iota
	ModAcoustic
	ModSeismic
	ModRF
	ModThermal
	ModChemical
	ModPhysiological
	ModRadar
	ModLidar
)

var modalityNames = []struct {
	m    Modality
	name string
}{
	{ModVisual, "visual"},
	{ModAcoustic, "acoustic"},
	{ModSeismic, "seismic"},
	{ModRF, "rf"},
	{ModThermal, "thermal"},
	{ModChemical, "chemical"},
	{ModPhysiological, "physio"},
	{ModRadar, "radar"},
	{ModLidar, "lidar"},
}

// String lists the modality names joined by "+".
func (m Modality) String() string {
	if m == 0 {
		return "none"
	}
	out := ""
	for _, e := range modalityNames {
		if m&e.m != 0 {
			if out != "" {
				out += "+"
			}
			out += e.name
		}
	}
	return out
}

// Has reports whether m includes all modalities in q.
func (m Modality) Has(q Modality) bool { return m&q == q }

// Count returns the number of modality bits set.
func (m Modality) Count() int {
	n := 0
	for v := m; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Capabilities is an asset's resource vector. Units are abstract but
// consistent: Compute in MIPS-like units, Storage in MB, Bandwidth in
// kb/s, Energy in joules, ranges in meters.
type Capabilities struct {
	Modalities Modality
	SenseRange float64
	RadioRange float64
	Compute    float64
	Storage    float64
	Bandwidth  float64
	EnergyCap  float64
	// IdlePower is the baseline draw in joules/second when awake;
	// duty-cycled nodes pay it only for their awake fraction.
	IdlePower   float64
	Actuation   bool    // can effect the physical environment
	Reliability float64 // prior probability of correct operation [0,1]
}

// Asset is one IoBT entity.
type Asset struct {
	ID          ID
	Affiliation Affiliation
	Class       Class
	Caps        Capabilities
	Mobility    geo.Mobility

	// Energy is the remaining battery in joules; <= 0 means dead.
	// Edge servers and vehicles are treated as mains/engine powered via a
	// very large capacity.
	Energy float64

	// Online reports whether the node is currently powered and in duty
	// cycle. Disadvantaged assets duty-cycle aggressively (paper §II).
	Online bool
	// DutyCycle is the fraction of time the node is awake, in (0,1].
	DutyCycle float64

	// Compromised marks a blue/gray node the adversary has captured.
	Compromised bool

	// Emission is the node's RF side-channel signature amplitude;
	// discovery uses it to find non-cooperative (red/gray) nodes.
	Emission float64
}

// Pos returns the asset's current position.
func (a *Asset) Pos() geo.Point {
	if a.Mobility == nil {
		return geo.Point{}
	}
	return a.Mobility.Pos()
}

// Alive reports whether the asset has energy and is not failed.
func (a *Asset) Alive() bool { return a.Energy > 0 }

// Drain consumes j joules, flooring at zero. It returns false when the
// battery is exhausted by this drain.
func (a *Asset) Drain(j float64) bool {
	if j <= 0 {
		return a.Energy > 0
	}
	a.Energy -= j
	if a.Energy <= 0 {
		a.Energy = 0
		a.Online = false
		return false
	}
	return true
}

// String renders a short identity line.
func (a *Asset) String() string {
	return fmt.Sprintf("asset %d (%s %s) at %s", a.ID, a.Affiliation, a.Class, a.Pos())
}

// DefaultCaps returns the canonical capability vector for a device class.
// Values span the orders-of-magnitude heterogeneity the paper requires.
func DefaultCaps(c Class) Capabilities {
	switch c {
	case ClassMote:
		return Capabilities{Modalities: ModSeismic | ModAcoustic, SenseRange: 30, RadioRange: 80, Compute: 1, Storage: 1, Bandwidth: 20, EnergyCap: 5e3, IdlePower: 0.01, Reliability: 0.85}
	case ClassWearable:
		return Capabilities{Modalities: ModPhysiological | ModAcoustic, SenseRange: 5, RadioRange: 60, Compute: 10, Storage: 100, Bandwidth: 100, EnergyCap: 2e4, IdlePower: 0.05, Reliability: 0.9}
	case ClassSensor:
		return Capabilities{Modalities: ModVisual | ModThermal | ModAcoustic, SenseRange: 150, RadioRange: 250, Compute: 50, Storage: 1e3, Bandwidth: 500, EnergyCap: 2e5, IdlePower: 0.5, Reliability: 0.95}
	case ClassPhone:
		return Capabilities{Modalities: ModVisual | ModAcoustic | ModRF, SenseRange: 50, RadioRange: 120, Compute: 200, Storage: 1e4, Bandwidth: 1e3, EnergyCap: 4e4, IdlePower: 0.8, Reliability: 0.8}
	case ClassRobot:
		return Capabilities{Modalities: ModVisual | ModLidar | ModAcoustic, SenseRange: 100, RadioRange: 200, Compute: 500, Storage: 1e4, Bandwidth: 2e3, EnergyCap: 5e5, IdlePower: 5, Actuation: true, Reliability: 0.92}
	case ClassUAV:
		return Capabilities{Modalities: ModVisual | ModThermal | ModRadar | ModLidar, SenseRange: 400, RadioRange: 600, Compute: 300, Storage: 5e3, Bandwidth: 5e3, EnergyCap: 3e5, IdlePower: 50, Actuation: true, Reliability: 0.9}
	case ClassVehicle:
		return Capabilities{Modalities: ModVisual | ModRadar | ModRF, SenseRange: 250, RadioRange: 500, Compute: 1e3, Storage: 1e5, Bandwidth: 1e4, EnergyCap: 1e9, IdlePower: 100, Actuation: true, Reliability: 0.97}
	case ClassEdgeServer:
		return Capabilities{Modalities: 0, SenseRange: 0, RadioRange: 400, Compute: 1e5, Storage: 1e7, Bandwidth: 1e5, EnergyCap: 1e9, IdlePower: 200, Reliability: 0.99}
	case ClassHuman:
		return Capabilities{Modalities: ModVisual | ModAcoustic, SenseRange: 80, RadioRange: 100, Compute: 1, Storage: 1, Bandwidth: 50, EnergyCap: 1e9, IdlePower: 0, Reliability: 0.7}
	default:
		return Capabilities{}
	}
}
