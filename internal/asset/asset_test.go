package asset

import (
	"testing"
	"testing/quick"

	"iobt/internal/geo"
)

func TestAffiliationString(t *testing.T) {
	cases := map[Affiliation]string{Blue: "blue", Red: "red", Gray: "gray", Affiliation(0): "unknown"}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{ClassMote, ClassWearable, ClassSensor, ClassPhone, ClassRobot, ClassUAV, ClassVehicle, ClassEdgeServer, ClassHuman} {
		if c.String() == "unknown" {
			t.Errorf("class %d has no name", c)
		}
	}
	if Class(0).String() != "unknown" {
		t.Error("zero class should be unknown")
	}
}

func TestModality(t *testing.T) {
	m := ModVisual | ModThermal
	if !m.Has(ModVisual) || !m.Has(ModThermal) || m.Has(ModSeismic) {
		t.Error("Has wrong")
	}
	if !m.Has(ModVisual | ModThermal) {
		t.Error("multi-bit Has wrong")
	}
	if m.Count() != 2 {
		t.Errorf("Count = %d", m.Count())
	}
	if Modality(0).String() != "none" {
		t.Error("zero modality name")
	}
	if m.String() != "visual+thermal" {
		t.Errorf("String = %q", m.String())
	}
}

func TestDefaultCapsHeterogeneity(t *testing.T) {
	mote := DefaultCaps(ClassMote)
	edge := DefaultCaps(ClassEdgeServer)
	if edge.Compute/mote.Compute < 1000 {
		t.Errorf("compute spread too small: %v vs %v (paper requires orders of magnitude)", edge.Compute, mote.Compute)
	}
	uav := DefaultCaps(ClassUAV)
	if !uav.Modalities.Has(ModRadar) || !uav.Modalities.Has(ModLidar) {
		t.Error("UAV should carry radar+lidar (paper §III)")
	}
	if DefaultCaps(Class(99)) != (Capabilities{}) {
		t.Error("unknown class should have zero caps")
	}
}

func TestDrain(t *testing.T) {
	a := &Asset{Caps: DefaultCaps(ClassMote), Online: true}
	a.Energy = 10
	if !a.Drain(4) || a.Energy != 6 {
		t.Errorf("Drain: energy = %v", a.Energy)
	}
	if a.Drain(10) {
		t.Error("Drain past zero should report exhaustion")
	}
	if a.Energy != 0 || a.Online || a.Alive() {
		t.Error("dead asset state wrong")
	}
	// Draining zero or negative is a no-op on energy.
	b := &Asset{Energy: 5}
	if !b.Drain(0) || b.Energy != 5 {
		t.Error("Drain(0) should be a no-op")
	}
	if !b.Drain(-3) || b.Energy != 5 {
		t.Error("Drain(negative) should be a no-op")
	}
}

func TestPosNilMobility(t *testing.T) {
	a := &Asset{}
	if a.Pos() != (geo.Point{}) {
		t.Error("nil mobility should yield origin")
	}
}

func TestAssetString(t *testing.T) {
	a := &Asset{ID: 3, Affiliation: Blue, Class: ClassUAV, Mobility: &geo.Static{P: geo.Point{X: 1, Y: 2}}}
	if a.String() == "" {
		t.Error("empty String")
	}
}

// Property: Drain never leaves negative energy and Alive is consistent.
func TestDrainInvariant(t *testing.T) {
	prop := func(start uint16, drains []uint8) bool {
		a := &Asset{Energy: float64(start), Online: true}
		for _, d := range drains {
			a.Drain(float64(d))
			if a.Energy < 0 {
				return false
			}
			if (a.Energy > 0) != a.Alive() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
