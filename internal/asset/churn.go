package asset

import (
	"fmt"
	"time"

	"iobt/internal/geo"
	"iobt/internal/sim"
)

// ChurnConfig parameterizes the asset lifecycle process. The paper (§III)
// states that "the large scale of IoBTs implies continuous churn, so
// discovery and composition solutions will need to be robust to failure
// or removal of assets as a normal operating regime."
type ChurnConfig struct {
	// FailRatePerMin is the fraction of the alive population that fails
	// per simulated minute (battery death, destruction, capture).
	FailRatePerMin float64
	// ArriveRatePerMin is the expected number of new assets arriving per
	// simulated minute.
	ArriveRatePerMin float64
	// ReviveProb is the probability a failed asset comes back when an
	// arrival event fires (repair/redeploy) instead of a fresh asset.
	ReviveProb float64
	// Tick is the churn process cadence. Zero defaults to 5s.
	Tick time.Duration
}

// Churn drives stochastic failures and arrivals on a population. Create
// it with NewChurn and start it with Start; it schedules itself on the
// engine until stopped.
type Churn struct {
	cfg    ChurnConfig
	pop    *Population
	eng    *sim.Engine
	rng    *sim.RNG
	ticker *sim.Ticker

	// OnFail and OnArrive, when set, are invoked after each lifecycle
	// event so higher layers (discovery, composition) can react.
	OnFail   func(ID)
	OnArrive func(ID)

	failed  sim.Counter
	arrived sim.Counter
	dead    []ID
}

// NewChurn returns an unstarted churn process.
func NewChurn(eng *sim.Engine, pop *Population, cfg ChurnConfig) *Churn {
	if cfg.Tick <= 0 {
		cfg.Tick = 5 * time.Second
	}
	return &Churn{
		cfg: cfg,
		pop: pop,
		eng: eng,
		rng: eng.Stream("churn"),
	}
}

// Failed returns the number of failure events so far.
func (c *Churn) Failed() uint64 { return c.failed.Value() }

// Arrived returns the number of arrival events so far.
func (c *Churn) Arrived() uint64 { return c.arrived.Value() }

// Start begins the lifecycle process.
func (c *Churn) Start() {
	if c.ticker != nil {
		return
	}
	c.ticker = c.eng.Every(c.cfg.Tick, "churn", c.tick)
}

// Stop halts the lifecycle process.
func (c *Churn) Stop() {
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
}

func (c *Churn) tick() {
	mins := c.cfg.Tick.Minutes()

	// Failures: binomial over alive assets, approximated per-asset.
	pFail := c.cfg.FailRatePerMin * mins
	if pFail > 0 {
		for _, a := range c.pop.All() {
			if !a.Alive() {
				continue
			}
			if c.rng.Bool(pFail) {
				c.pop.Kill(a.ID)
				c.dead = append(c.dead, a.ID)
				c.failed.Inc()
				if c.OnFail != nil {
					c.OnFail(a.ID)
				}
			}
		}
	}

	// Arrivals: Poisson count this tick.
	nArrive := c.rng.Poisson(c.cfg.ArriveRatePerMin * mins)
	for i := 0; i < nArrive; i++ {
		id := c.arriveOne()
		c.arrived.Inc()
		if c.OnArrive != nil {
			c.OnArrive(id)
		}
	}
}

func (c *Churn) arriveOne() ID {
	// Prefer reviving a dead asset (redeployment) with ReviveProb.
	if len(c.dead) > 0 && c.rng.Bool(c.cfg.ReviveProb) {
		id := c.dead[len(c.dead)-1]
		c.dead = c.dead[:len(c.dead)-1]
		c.pop.Revive(id)
		return id
	}
	// Otherwise, a fresh commodity-class asset parachutes in.
	terr := c.pop.Terrain()
	classes := []Class{ClassMote, ClassPhone, ClassSensor, ClassUAV}
	cl := classes[c.rng.Intn(len(classes))]
	a := &Asset{
		Affiliation: Blue,
		Class:       cl,
		Caps:        DefaultCaps(cl),
		DutyCycle:   1,
		Online:      true,
		Emission:    c.rng.Uniform(0.1, 1.0),
	}
	a.Energy = a.Caps.EnergyCap
	start := terr.RandomPoint(c.rng)
	if cl == ClassUAV || cl == ClassPhone {
		a.Mobility = geo.NewRandomWaypoint(terr, c.rng.Derive(fmt.Sprintf("arr%d", c.arrived.Value())), start, 1, 8, 10*time.Second)
	} else {
		a.Mobility = &geo.Static{P: start}
	}
	if c.rng.Bool(0.1) {
		a.Affiliation = Gray
	}
	return c.pop.Add(a)
}
