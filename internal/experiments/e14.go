package experiments

import (
	"time"

	"iobt/internal/asset"
	"iobt/internal/core"
	"iobt/internal/fault"
	"iobt/internal/geo"
	"iobt/internal/verify"
)

// E14Recovery measures recovery from the standard composite disruption
// — partition, jam wave, 1/3 kill wave, command-post loss — swept over
// fault intensity, with the graceful-degradation reflexes on and off.
// The paper requires missions to "re-assemble upon damage within an
// appropriately short time"; this experiment puts numbers on that
// re-assembly: time to detect the degradation, time to recover goodput,
// goodput while degraded, and the mission success with vs. without the
// reflexes (command-continuity fallback + coverage relaxation).
func E14Recovery(seed int64, quick bool) *Table {
	t := &Table{
		ID:    "E14",
		Title: "recovery time and goodput vs fault intensity (standard plan)",
		Header: []string{"intensity", "detect (s)", "recover (s)", "degraded goodput",
			"success/reflex", "success/none", "ratio", "killed"},
		Notes: "recovery time and degradation depth grow with fault intensity; at full intensity the reflexes " +
			"(hierarchy->intent fallback + coverage relaxation) keep success >=2x the reflexless mission",
	}
	// The horizon must outlast the standard plan's four-minute blackout
	// for recovery to be observable, so quick mode trims the intensity
	// sweep rather than the horizon.
	const size = 1200.0
	horizon := 6 * time.Minute
	assets := 250
	intensities := []float64{0.25, 0.5, 0.75, 1.0}
	if quick {
		intensities = []float64{0.5, 1.0}
	}

	var verif verify.Summary
	run := func(scale float64, degrade bool) (*fault.Report, float64) {
		w := core.NewWorld(core.WorldConfig{
			Seed:    seed,
			Terrain: geo.NewOpenTerrain(size, size),
			Assets:  assets,
		})
		defer w.Stop()
		m := core.DefaultMission(geo.NewRect(geo.Point{X: 200, Y: 200}, geo.Point{X: 1000, Y: 1000}))
		m.Goal.CoverageFrac = 0.6
		m.Goal.Redundancy = 3 // a multi-member composite, so the kill wave bites
		m.Command = core.CommandHierarchy
		m.ReliableOrders = true
		m.Degradation = degrade
		m.IncidentsPerMin = 30
		r := core.NewRuntime(w, m)
		if err := r.Synthesize(); err != nil {
			return nil, 0
		}
		if err := r.Start(); err != nil {
			return nil, 0
		}
		defer r.Stop()
		reg := verify.NewRegistry()
		reg.Add(verify.MissionInvariants(w, r)...)
		reg.SetClock(w.Eng.Now)
		h := &fault.Harness{
			T: fault.Target{
				Eng: w.Eng, Pop: w.Pop, Net: w.Net, Jam: w.Jam, Smoke: w.Smoke,
				Composite:   func() []asset.ID { return r.Composite().Members },
				CommandPost: func() asset.ID { return r.Sink() },
			},
			Plan: fault.StandardPlan(size).Scale(scale),
			Goodput: func() (uint64, uint64) {
				return r.Metrics.OnTime.Value(), r.Metrics.Incidents.Value()
			},
			Invariants: reg.FaultInvariants(),
		}
		rep, err := h.Run(horizon)
		verif.Merge(reg.Summarize())
		if err != nil {
			return nil, 0
		}
		return rep, r.Metrics.SuccessRate()
	}

	for _, s := range intensities {
		rep, withReflex := run(s, true)
		if rep == nil {
			t.AddRow(f2(s), "run failed", "", "", "", "", "", "")
			continue
		}
		_, without := run(s, false)
		// Aggregate detect/recover over the plan: earliest detection,
		// latest recovery (the composite disruption overlaps in time).
		detect, recover := -1.0, -1.0
		degraded, degN := 0.0, 0
		for _, fr := range rep.Faults {
			if fr.Detected && (detect < 0 || fr.TimeToDetect.Seconds() < detect) {
				detect = fr.TimeToDetect.Seconds()
			}
			if fr.Recovered && fr.TimeToRecover.Seconds() > recover {
				recover = fr.TimeToRecover.Seconds()
			}
			if fr.Detected && fr.DegradedGoodput > 0 {
				degraded += fr.DegradedGoodput
				degN++
			}
		}
		detectS, recoverS, degS := "absorbed", "-", "-"
		if detect >= 0 {
			detectS = f0(detect)
			recoverS = "not recovered"
			if recover >= 0 {
				recoverS = f0(recover)
			}
		}
		if degN > 0 {
			degS = f2(degraded / float64(degN))
		}
		ratio := "-"
		if without > 0 {
			ratio = f2(withReflex / without)
		}
		t.AddRow(f2(s), detectS, recoverS, degS,
			f2(withReflex), f2(without), ratio, d(int(rep.Killed)))
	}
	t.Verification = &verif
	return t
}
