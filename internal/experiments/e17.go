package experiments

import (
	"fmt"
	"hash/fnv"
	"time"

	"iobt/internal/asset"
	"iobt/internal/cop"
	"iobt/internal/core"
	"iobt/internal/fault"
	"iobt/internal/geo"
	"iobt/internal/mesh"
	"iobt/internal/sim"
	"iobt/internal/verify"
)

// E17Dissemination compares three dissemination strategies for the
// common operational picture — epidemic gossip with anti-entropy, naive
// flooding (gossip with fanout >= degree and repairs disabled), and
// BFS source-routed unicast — under the disruption the paper treats as
// normal: a double partition that stands for most of the run, a jammed
// corridor, and an eventual heal. Every payload is an encoded CRDT
// picture replica (internal/cop) merged at the receiver, so the
// experiment also exercises the convergence layer end to end: the
// picture-monotone and gossip-conservation invariants are armed
// throughout, and each mode is run twice on the same seed to pin the
// determinism contract (identical metrics, byte for byte).
func E17Dissemination(seed int64, quick bool) *Table {
	t := &Table{
		ID:    "E17",
		Title: "COP dissemination: gossip vs flooding vs BFS unicast under partition+jam",
		Header: []string{"mode", "delivery", "lat mean (s)", "lat p95 (s)",
			"frames", "repairs", "deterministic"},
		Notes: "gossip anti-entropy reconverges after the heal (delivery >= 0.95) where BFS unicast strands " +
			"cross-partition traffic (< 0.5); flooding and BFS deliver in seconds but only where links exist, " +
			"while gossip's mean latency absorbs the partition wait its repairs survive",
	}

	var verif verify.Summary
	for _, mode := range []string{"gossip", "flood", "bfs"} {
		a := runE17(seed, quick, mode, &verif)
		b := runE17(seed, quick, mode, &verif)
		det := "yes"
		if a.fingerprint != b.fingerprint {
			det = "no"
		}
		t.AddRow(mode, f3(a.delivery), f2(a.latMean), f2(a.latP95),
			d(a.frames), d(a.repairs), det)
	}
	t.Verification = &verif
	return t
}

// e17Result is one run's metrics plus a fingerprint over everything the
// determinism contract covers.
type e17Result struct {
	delivery    float64
	latMean     float64
	latP95      float64
	frames      int
	repairs     int
	fingerprint string
}

// e17Timeline is the shared fault schedule: two unbounded partitions cut
// the map into thirds at 20s, a jammed center corridor from 40s to 100s,
// and a heal at 200s. Publishing stops before the heal, so whatever a
// mode failed to deliver by then can only be recovered by repair.
const (
	e17Size         = 1200.0
	e17PartitionAt  = 20 * time.Second
	e17HealAt       = 200 * time.Second
	e17Horizon      = 260 * time.Second
	e17PublishUntil = 195 * time.Second
)

func e17Plan() *fault.Plan {
	return (&fault.Plan{Name: "e17"}).
		Add(fault.Fault{Kind: fault.Partition, At: e17PartitionAt, X: e17Size / 3}).
		Add(fault.Fault{Kind: fault.Partition, At: e17PartitionAt, X: 2 * e17Size / 3}).
		Add(fault.Fault{Kind: fault.JamWave, At: 40 * time.Second, Duration: 60 * time.Second,
			Region:    geo.NewRect(geo.Point{X: e17Size / 3, Y: 0}, geo.Point{X: 2 * e17Size / 3, Y: e17Size}),
			Intensity: 0.7}).
		Add(fault.Fault{Kind: fault.Heal, At: e17HealAt})
}

func runE17(seed int64, quick bool, mode string, verif *verify.Summary) e17Result {
	assets := 220
	publishEvery := 5 * time.Second
	if quick {
		assets = 120
		publishEvery = 10 * time.Second
	}
	mcfg := mesh.DefaultConfig()
	mcfg.StepMobility = false // static topology: only faults change connectivity
	w := core.NewWorld(core.WorldConfig{
		Seed:    seed,
		Terrain: geo.NewOpenTerrain(e17Size, e17Size),
		Assets:  assets,
		Mesh:    &mcfg,
	})
	defer w.Stop()
	w.Net.Refresh()

	// Membership is the largest pre-fault connected component, so a
	// perfect protocol could reach delivery 1.0 before the partition and
	// again after the heal.
	var members []mesh.NodeID
	for _, comp := range w.Net.Components(2) {
		if len(comp) > len(members) {
			members = comp
		}
	}
	if len(members) < 3 {
		return e17Result{fingerprint: "degenerate-topology"}
	}
	fault.Apply(fault.Target{Eng: w.Eng, Pop: w.Pop, Net: w.Net, Jam: w.Jam, Smoke: w.Smoke}, e17Plan())

	// One picture replica per member; every payload is an encoded replica
	// merged on reception, whatever transport carried it.
	pictures := make(map[mesh.NodeID]*cop.Picture, len(members))
	for _, id := range members {
		pictures[id] = cop.NewPicture(id)
	}
	merge := func(id mesh.NodeID, msg mesh.Message) {
		enc, ok := msg.Payload.([]byte)
		if !ok {
			return
		}
		remote, err := cop.Decode(enc)
		if err != nil {
			return // a corrupted frame cannot regress the replica
		}
		pictures[id].Merge(remote)
	}

	// One publisher per map third — the first member (ascending ID) whose
	// position falls in the band — so every partition side originates
	// state that the other sides must eventually hold.
	var publishers []mesh.NodeID
	for band := 0; band < 3; band++ {
		lo, hi := float64(band)*e17Size/3, float64(band+1)*e17Size/3
		for _, id := range members {
			a := w.Pop.Get(id)
			if a == nil || !a.Alive() {
				continue
			}
			if x := a.Pos().X; x >= lo && x < hi {
				publishers = append(publishers, id)
				break
			}
		}
	}

	reg := verify.NewRegistry()
	reg.Add(verify.MeshConservation(w.Net))
	reg.Add(verify.TimeMonotone(w.Eng.Now))
	reg.Add(verify.PictureMonotone("e17-"+mode, func() []*cop.Picture {
		out := make([]*cop.Picture, 0, len(members))
		for _, id := range members {
			out = append(out, pictures[id])
		}
		return out
	}))

	var g *mesh.Gossip
	published, delivered, frames := 0, 0, 0
	var lat sim.Series
	switch mode {
	case "gossip", "flood":
		cfg := mesh.GossipConfig{}
		if mode == "flood" {
			cfg.Fanout = 1 << 16      // relay to every neighbor
			cfg.AntiEntropyEvery = -1 // no repair: pure dissemination
			cfg.TTL = 32              // hop budget is not the limiter
		}
		g = mesh.NewGossip(w.Net, cfg)
		for _, id := range members {
			node := id
			g.Join(id, func(msg mesh.Message) { merge(node, msg) })
		}
		g.Start()
		//iobt:allow metricreg gossip conservation only exists when a Gossip instance does; the bfs arm has no overlay to check
		reg.Add(verify.GossipConservation(g))
	case "bfs":
		for _, id := range members {
			node := id
			//iobt:allow metricreg the bfs arm is the only transport that delivers via raw mesh handlers; gossip/flood members install theirs through Join above
			w.Net.RegisterHandler(id, func(msg mesh.Message) {
				if msg.Kind != "cop" {
					return
				}
				delivered++
				lat.Add((w.Eng.Now() - msg.Sent).Seconds())
				merge(node, msg)
			})
		}
	}
	reg.SetClock(w.Eng.Now)
	reg.Arm(w.Eng, 5*time.Second)

	// Publishing: on every tick each publisher grows its own replica
	// (fresh coverage plus accumulated trust evidence) and disseminates
	// the encoded state.
	ticker := w.Eng.Every(publishEvery, "e17.publish", func() {
		if w.Eng.Now() > e17PublishUntil {
			return
		}
		for _, pub := range publishers {
			p := pictures[pub]
			p.Cover(cop.Cell{X: int32(published), Y: int32(pub)})
			p.ObserveTrust(pub, float64(published+1), 1)
			enc := p.Encode()
			published++
			switch mode {
			case "bfs":
				for _, dst := range members {
					if dst == pub {
						continue
					}
					frames++
					//iobt:allow errdrop the strandings are the measurement: BFS unicast offers no repair path, and the delivery-ratio column counts exactly what was lost
					_ = w.Net.Send(mesh.Message{
						From: pub, To: dst, Kind: "cop",
						Payload: enc, Size: float64(len(enc)),
					})
				}
			default:
				if _, err := g.Publish(pub, "cop", float64(len(enc)), enc); err != nil {
					return
				}
			}
		}
	})
	err := w.Run(e17Horizon)
	ticker.Stop()
	verif.Merge(reg.Summarize())
	if err != nil {
		return e17Result{fingerprint: "run-error"}
	}

	var res e17Result
	switch mode {
	case "bfs":
		denom := float64(published) * float64(len(members))
		if denom > 0 {
			// The origin holds its own publish; unicast reaches the rest.
			res.delivery = float64(published+delivered) / denom
		}
		res.latMean, res.latP95 = lat.Mean(), lat.Percentile(95)
		res.frames = frames
	default:
		res.delivery = g.DeliveryRatio()
		res.latMean = g.LatencySec.Mean()
		res.latP95 = g.LatencySec.Percentile(95)
		res.frames = int(g.FramesSent.Value())
		res.repairs = int(g.Repairs.Value())
	}
	res.fingerprint = e17Fingerprint(res, published, delivered, pictures, members)
	return res
}

// e17Fingerprint hashes everything the determinism contract covers: the
// headline metrics plus every replica's converged-state digest, walked
// in member order.
func e17Fingerprint(r e17Result, published, delivered int, pictures map[mesh.NodeID]*cop.Picture, members []asset.ID) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%.9f|%.9f|%.9f|%d|%d|%d|%d", r.delivery, r.latMean, r.latP95,
		r.frames, r.repairs, published, delivered)
	for _, id := range members {
		fmt.Fprintf(h, "|%d:%x", id, pictures[id].Digest())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
