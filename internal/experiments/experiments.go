// Package experiments contains the reproduction harness: one function
// per experiment in DESIGN.md §4 (E1..E15), each returning a Table with
// the rows the corresponding paper claim predicts. cmd/benchtab prints
// them; the root bench_test.go wraps them as testing.B benchmarks.
//
// Every experiment takes a seed (full determinism) and a quick flag
// (smaller workloads for benchmarking loops).
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"iobt/internal/lint"
	"iobt/internal/verify"
)

// Table is one experiment's result table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Notes carries the expected-shape statement from DESIGN.md §5.
	Notes string
	// Verification records the invariant coverage of the runs that
	// produced the table (nil when the experiment armed none), so the
	// committed BENCH_<ID>.json documents how much checking backed the
	// numbers.
	Verification *verify.Summary
	// Static records the iobtlint suite's coverage of the tree that
	// produced the numbers (analyzer count, unsuppressed findings —
	// zero at head — and reasoned waivers). cmd/benchtab attaches it
	// for JSON output; nil elsewhere.
	Static *lint.Coverage
	// Host records the machine that produced the numbers, so scaling
	// columns are self-describing: E18's speedup at 8 shards tracks
	// gomaxprocs, and a ~1× row on a 1-core host is expected, not a
	// regression. cmd/benchtab attaches it for JSON output.
	Host *Host
}

// Host is the benchmark host's parallelism envelope.
type Host struct {
	// GOMAXPROCS is the Go scheduler's processor limit for the run.
	GOMAXPROCS int `json:"gomaxprocs"`
	// CPUs is the machine's logical core count.
	CPUs int `json:"cpus"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// CSV renders the table as comma-separated values (header row first),
// for plotting pipelines.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// JSON renders the table as an indented JSON document — the
// machine-readable form committed as BENCH_<ID>.json so runs can be
// diffed and plotted without re-parsing aligned text.
func (t *Table) JSON() string {
	// The verification block carries both dynamic coverage (armed
	// invariants) and static coverage (the iobtlint suite) when present.
	type verification struct {
		*verify.Summary
		Static *lint.Coverage `json:"static,omitempty"`
	}
	var ver *verification
	if t.Verification != nil || t.Static != nil {
		ver = &verification{Summary: t.Verification, Static: t.Static}
	}
	doc := struct {
		ID           string        `json:"id"`
		Title        string        `json:"title"`
		Host         *Host         `json:"host,omitempty"`
		Header       []string      `json:"header"`
		Rows         [][]string    `json:"rows"`
		Notes        string        `json:"notes,omitempty"`
		Verification *verification `json:"verification,omitempty"`
	}{t.ID, t.Title, t.Host, t.Header, t.Rows, t.Notes, ver}
	b, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		// A table of strings cannot fail to marshal; keep the signature
		// print-friendly anyway.
		return fmt.Sprintf(`{"id":%q,"error":%q}`, t.ID, err)
	}
	return string(b) + "\n"
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "shape: %s\n", t.Notes)
	}
	if t.Verification != nil {
		fmt.Fprintf(&b, "%s\n", t.Verification)
	}
	return b.String()
}

// Experiment is a registry entry.
type Experiment struct {
	ID   string
	Name string
	Run  func(seed int64, quick bool) *Table
}

// All returns the registry in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "decision-loop: intent vs hierarchy", E1DecisionLoop},
		{"E2", "composition at scale under churn", E2Composition},
		{"E3", "asset discovery methods", E3Discovery},
		{"E4", "adaptive reflexes vs re-synthesis", E4Adaptation},
		{"E5", "command-by-intent game convergence", E5Game},
		{"E6", "Byzantine-resilient distributed learning", E6Learning},
		{"E7", "truth discovery vs voting", E7Truth},
		{"E8", "network tomography", E8Tomography},
		{"E9", "saturation resistance", E9Saturation},
		{"E10", "cost of learning vs topology", E10CostOfLearning},
		{"E11", "continual learning contexts", E11Continual},
		{"E12", "team diversity under modality loss", E12Diversity},
		{"E13", "multi-target tracking continuity", E13Tracking},
		{"E14", "recovery time vs fault intensity", E14Recovery},
		{"E15", "command-post failover: none vs cold vs warm", E15Failover},
		{"E16", "mission service under client flood with worker crashes", E16Service},
		{"E17", "COP dissemination: gossip vs flooding vs BFS", E17Dissemination},
		{"E18", "sharded engine scaling: assets × shards", E18ShardScaling},
	}
}

// Lookup finds an experiment by ID (case-insensitive).
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
