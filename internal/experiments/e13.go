package experiments

import (
	"time"

	"iobt/internal/geo"
	"iobt/internal/sim"
	"iobt/internal/track"
)

// E13Tracking reproduces §II's flagship task: "tracking a dispersed
// group of humans and vehicles moving through cluttered environments" —
// multi-target tracking continuity as a function of sensor density, and
// its degradation when sensors die mid-mission (the churn regime).
func E13Tracking(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "multi-target tracking continuity by sensor density and churn",
		Header: []string{"sensors", "churn", "continuity", "mean err (m)", "track drops", "detections"},
		Notes: "continuity rises with density; after 3/4 of sensors die mid-run, warm tracks (learned velocities + " +
			"coasting) hold continuity far above what the surviving density achieves from a cold start — error and " +
			"track drops rise instead",
	}
	horizon := 5 * time.Minute
	if quick {
		horizon = 2 * time.Minute
	}
	run := func(nSensors int, churnHalf bool) (float64, float64, int, uint64) {
		rng := sim.NewRNG(seed)
		// Five targets sweeping lanes across a 1 km sector.
		var targets []geo.Mobility
		for i := 0; i < 5; i++ {
			y := float64(150 + i*160)
			targets = append(targets, geo.NewPatrol([]geo.Point{
				{X: 100, Y: y}, {X: 900, Y: y},
			}, 6))
		}
		// Sensor grid over the sector.
		var sensors []track.Sensor
		cols := nSensors / 2
		if cols < 2 {
			cols = 2
		}
		for i := 0; i < nSensors; i++ {
			x := 100 + float64(i%cols)*(800/float64(cols-1))
			y := 300.0
			if i >= cols {
				y = 650
			}
			sensors = append(sensors, track.Sensor{
				ID: int32(i), Mob: &geo.Static{P: geo.Point{X: x, Y: y}},
				Range: 280, Var: 16, DetectProb: 0.8,
			})
		}
		sc := track.NewScenario(rng, targets, sensors, track.Config{ProcessNoise: 36})
		if !churnHalf {
			sc.Run(horizon, time.Second)
		} else {
			sc.Run(horizon/2, time.Second)
			// Three quarters of the sensors die mid-mission
			// (battery/attrition): only every fourth survives.
			for i := range sensors {
				if i%4 != 0 {
					sc.DisableSensor(sensors[i].ID)
				}
			}
			sc.Run(horizon/2, time.Second)
		}
		return sc.Continuity.Mean(), sc.RMSE.Mean(), sc.Tracker().Dropped, sc.Detections.Value()
	}
	for _, n := range []int{4, 8, 16} {
		c, rmse, drops, dets := run(n, false)
		t.AddRow(d(n), "no", f2(c), f2(rmse), d(drops), d(int(dets)))
	}
	c, rmse, drops, dets := run(16, true)
	t.AddRow("16->4", "yes", f2(c), f2(rmse), d(drops), d(int(dets)))
	return t
}
