package experiments

import (
	"time"

	"iobt/internal/asset"
	"iobt/internal/core"
	"iobt/internal/fault"
	"iobt/internal/geo"
	"iobt/internal/track"
	"iobt/internal/verify"
)

// E15Failover measures command-post survivability: the recovery gap
// after the post is destroyed, under three dispositions (no promotion,
// cold rebuild, warm restore from the last checkpoint), swept over the
// checkpoint cadence. The command post concentrates the mission's
// richest state — composite roll, trust ledger, track picture,
// unacknowledged orders — and the paper's threat model makes it a
// priority target; this experiment quantifies what each checkpoint
// interval buys when it dies: orders lost, time until command resumes,
// trust evidence gone stale, and track-picture fragmentation.
func E15Failover(seed int64, quick bool) *Table {
	t := &Table{
		ID:    "E15",
		Title: "failover recovery gap vs checkpoint interval (crash post at 119s)",
		Header: []string{"mode", "ckpt every", "ckpts", "orders lost", "resume (s)",
			"stale trust", "track frag", "success"},
		Notes: "warm beats cold on orders lost and time-to-resume at every interval (cold pays the full rebuild, " +
			"warm only the handover); shorter checkpoint intervals shrink warm's stale-trust window, and the track " +
			"picture survives a warm failover only when the checkpoint is younger than the tracker's coast window",
	}
	const size = 1200.0
	horizon := 5 * time.Minute
	intervals := []time.Duration{5 * time.Second, 15 * time.Second, 30 * time.Second, 60 * time.Second}
	if quick {
		intervals = []time.Duration{15 * time.Second, 60 * time.Second}
	}

	type outcome struct {
		gap     fault.RecoveryGap
		ckpts   uint64
		success float64
		ok      bool
		verif   verify.Summary
	}

	run := func(mode string, every time.Duration) outcome {
		w := core.NewWorld(core.WorldConfig{
			Seed:    seed,
			Terrain: geo.NewOpenTerrain(size, size),
			Assets:  250,
		})
		defer w.Stop()
		m := core.DefaultMission(geo.NewRect(geo.Point{X: 200, Y: 200}, geo.Point{X: 1000, Y: 1000}))
		m.Goal.CoverageFrac = 0.4
		m.Command = core.CommandHierarchy
		m.ReliableOrders = true
		m.IncidentsPerMin = 30
		m.CheckpointEvery = every
		m.TrustAudit = true
		r := core.NewRuntime(w, m)

		// A deterministic three-target picture fused at the post, so
		// fragmentation across the failover is measurable.
		tracker := track.NewTracker(track.Config{})
		r.AttachTracker(tracker)
		w.Eng.Every(time.Second, "e15.targets", func() {
			ts := w.Eng.Now().Seconds()
			tracker.Observe(w.Eng.Now(), []track.Detection{
				{Pos: geo.Point{X: 200 + 3*ts, Y: 300}, Var: 9, Sensor: 1},
				{Pos: geo.Point{X: 900 - 2*ts, Y: 600}, Var: 9, Sensor: 2},
				{Pos: geo.Point{X: 550, Y: 200 + 2.5*ts}, Var: 9, Sensor: 3},
			})
		})

		if err := r.Synthesize(); err != nil {
			return outcome{}
		}
		if err := r.Start(); err != nil {
			return outcome{}
		}
		defer r.Stop()

		plan := &fault.Plan{Name: "e15-" + mode}
		plan.Add(fault.Fault{Kind: fault.CrashPost, At: 119 * time.Second})
		if mode != "none" {
			plan.Add(fault.Fault{Kind: fault.Failover,
				At: 119*time.Second + 500*time.Millisecond, Warm: mode == "warm"})
		}
		reg := verify.NewRegistry()
		reg.Add(verify.MissionInvariants(w, r)...)
		reg.SetClock(w.Eng.Now)
		h := &fault.Harness{
			T: fault.Target{
				Eng: w.Eng, Pop: w.Pop, Net: w.Net, Jam: w.Jam, Smoke: w.Smoke,
				Composite:   func() []asset.ID { return r.Composite().Members },
				CommandPost: func() asset.ID { return r.Sink() },
				CrashPost:   r.CrashPost,
				Failover:    r.Failover,
			},
			Plan: plan,
			Goodput: func() (uint64, uint64) {
				return r.Metrics.OnTime.Value(), r.Metrics.Incidents.Value()
			},
			Invariants: reg.FaultInvariants(),
			Recovery:   fault.RecoveryHooks(r.Probe()),
		}
		rep, err := h.Run(horizon)
		if err != nil || !rep.OK() || len(rep.Recovery) != 1 {
			return outcome{}
		}
		var ckpts uint64
		if c := r.Checkpoints(); c != nil {
			ckpts = c.Taken.Value()
		}
		return outcome{gap: rep.Recovery[0], ckpts: ckpts, success: r.Metrics.SuccessRate(), ok: true,
			verif: reg.Summarize()}
	}

	var verif verify.Summary

	row := func(mode string, every time.Duration, o outcome) {
		verif.Merge(o.verif)
		if !o.ok {
			t.AddRow(mode, every.String(), "run failed", "", "", "", "", "")
			return
		}
		resume := "never"
		if o.gap.Resumed {
			resume = f0(o.gap.TimeToResume.Seconds())
		}
		everyS := "-"
		if every > 0 {
			everyS = every.String()
		}
		t.AddRow(mode, everyS, d(int(o.ckpts)), d(int(o.gap.OrdersLost)), resume,
			f2(o.gap.StaleTrust), d(o.gap.TrackFrag), f2(o.success))
	}

	// The no-promotion baseline and the cold rebuild do not read
	// checkpoints, so one row each suffices (run with the first swept
	// cadence so checkpoint airtime is comparable).
	row("none", intervals[0], run("none", intervals[0]))
	row("cold", intervals[0], run("cold", intervals[0]))
	for _, every := range intervals {
		row("warm", every, run("warm", every))
	}
	t.Verification = &verif
	return t
}
