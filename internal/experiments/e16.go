package experiments

import (
	"time"

	"iobt/internal/service"
	"iobt/internal/verify"
)

// E16Service measures the mission service under a synthetic client
// flood: concurrent clients push scenarios through the bounded
// admission queue while the chaos injector crashes workers mid-mission,
// swept over the worker-pool size. It reports sustained throughput,
// tail submit-to-first-event latency, and how long a crashed mission
// takes to produce its first recovered event — the service-level
// numbers behind the paper's "IoBT as a long-lived service" story:
// failures are contained per mission, recovery is checkpoint-anchored,
// and the invariant registry audits every run.
func E16Service(seed int64, quick bool) *Table {
	t := &Table{
		ID:    "E16",
		Title: "mission service under client flood with injected worker crashes",
		Header: []string{"workers", "missions", "crashes", "restarts", "recovered",
			"missions/s", "p50 first-event (ms)", "p99 first-event (ms)",
			"mean recovery (ms)", "completed", "degraded/failed"},
		Notes: "every crashed mission is recovered from its latest checkpoint and still completes; " +
			"throughput scales with the worker pool while p99 submit-to-first-event latency tracks " +
			"queue depth (admitted missions wait behind the pool), and recovery time stays flat — " +
			"it re-runs only the window since the last checkpoint cut, not the whole mission",
	}

	pools := []int{2, 4, 8}
	missions := 24
	if quick {
		pools = []int{2, 4}
		missions = 12
	}

	var verif verify.Summary
	for _, workers := range pools {
		rep, err := service.Flood(service.FloodConfig{
			Missions: missions,
			Clients:  4,
			BaseSeed: seed,
			Service: service.Config{
				Workers:    workers,
				QueueDepth: 8,
				Chaos:      service.ChaosConfig{CrashProb: 0.4},
			},
			Horizon: 30 * time.Second,
		})
		if err != nil {
			t.AddRow(d(workers), "flood failed: "+err.Error(), "", "", "", "", "", "", "", "", "")
			continue
		}
		verif.Merge(rep.Summary)
		t.AddRow(
			d(workers),
			d(rep.Missions),
			d(int(rep.Crashes)),
			d(int(rep.Restarts)),
			d(int(rep.Recoveries)),
			f2(rep.MissionsPerSec),
			f2(rep.P50FirstEventMs),
			f2(rep.P99FirstEventMs),
			f2(rep.MeanRecoveryMs),
			d(int(rep.Completed)),
			d(int(rep.Degraded+rep.Failed+rep.Quarantined)),
		)
	}
	t.Verification = &verif
	return t
}
