package experiments

import (
	"fmt"
	"runtime"
	"time"

	"iobt/internal/mesh"
	"iobt/internal/verify"
)

// E18ShardScaling measures the spatially sharded simulation core: the
// E17 dissemination comparison (epidemic gossip vs BFS flooding) rerun
// on the shard-native model at 10^4–10^5 assets, sweeping the shard
// count and reporting wall-clock, events/sec, and speedup against the
// 1-shard baseline of the same configuration. Sharding is a pure
// performance knob — the "digest" column asserts that every shard count
// reproduces the 1-shard run byte for byte, and the conservation laws
// of the overlay are checked on every run (the CI gate requires zero
// violations). Parallel speedup is bounded by the host core count
// (recorded in the notes): on a single-core runner the sweep measures
// the synchronization overhead of the window protocol instead.
func E18ShardScaling(seed int64, quick bool) *Table {
	t := &Table{
		ID:    "E18",
		Title: "sharded engine scaling: assets × shards → wall-clock, events/sec, determinism",
		Header: []string{"assets", "mode", "shards", "wall (s)", "events/s",
			"delivery", "speedup", "digest"},
	}

	sizes := []int{10000, 100000}
	shardCounts := []int{1, 2, 4, 8}
	if quick {
		sizes = []int{2000}
	}

	verif := &verify.Summary{Invariants: 3} // the three shardnet conservation laws
	for _, assets := range sizes {
		for _, mode := range []string{mesh.ShardModeGossip, mesh.ShardModeBFS} {
			var refDigest uint64
			var refWall float64
			for _, shards := range shardCounts {
				sc := e18Scenario(assets, mode)
				start := nowMS()
				res, err := mesh.RunShardScenario(seed, shards, sc)
				wall := (nowMS() - start) / 1000
				if err != nil {
					t.AddRow(d(assets), mode, d(shards), "error", err.Error(), "-", "-", "-")
					continue
				}
				// Every run evaluates the per-node holding law once per
				// node, the traceability law once per held key (folded
				// into Delivered), and the global bound once.
				verif.Checks += uint64(res.Nodes) + res.Delivered + 1
				verif.Violations = append(verif.Violations, res.Violations...)

				if shards == shardCounts[0] {
					refDigest, refWall = res.Digest, wall
				}
				match := "match"
				if res.Digest != refDigest {
					match = "DIVERGED"
				}
				speedup := 1.0
				if wall > 0 {
					speedup = refWall / wall
				}
				eps := 0.0
				if wall > 0 {
					eps = float64(res.Events) / wall
				}
				t.AddRow(d(assets), mode, d(shards), f2(wall), f0(eps),
					f3(res.DeliveryRatio), f2(speedup), match)
			}
		}
	}
	t.Verification = verif
	t.Notes = fmt.Sprintf("host procs=%d: speedup at 8 shards tracks the core count, so a single-core runner "+
		"reports ~1x and only the digest column carries the invariance claim; the conservative window protocol "+
		"(DESIGN.md §12) makes the digest identical for every shard count by construction, and the conservation "+
		"laws must show zero violations for the run to count", runtime.GOMAXPROCS(0))
	return t
}

// e18Scenario scales the E17-style workload to the asset count: a
// handful of striding publishers, TTL-bounded gossip or BFS flooding,
// and drift mobility that exercises cross-shard migration throughout.
func e18Scenario(assets int, mode string) mesh.ShardScenario {
	publishers := 8
	if assets >= 50000 {
		publishers = 4
	}
	return mesh.ShardScenario{
		Nodes:        assets,
		Mode:         mode,
		Publishers:   publishers,
		PublishEvery: 10 * time.Second,
		PublishUntil: 60 * time.Second,
		Horizon:      90 * time.Second,
		// A node relays a key at most once (first receipt), so TTL bounds
		// hop depth, not traffic — size it to the field diameter so gossip
		// competes with BFS on coverage rather than losing on range.
		TTL:           512,
		MobilityEvery: 8 * time.Second,
	}
}
