package experiments

import (
	"strconv"
	"testing"
)

// TestE15WarmBeatsCold asserts the experiment's acceptance shape on the
// produced table itself: the warm row strictly beats the cold row on
// orders lost and time-to-resume at every checkpoint interval, and the
// no-promotion baseline never resumes.
func TestE15WarmBeatsCold(t *testing.T) {
	tab := E15Failover(42, testing.Short())
	if len(tab.Rows) < 3 {
		t.Fatalf("E15 produced %d rows, want >= 3", len(tab.Rows))
	}
	col := func(name string) int {
		for i, h := range tab.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("no column %q", name)
		return -1
	}
	lost, resume, mode := col("orders lost"), col("resume (s)"), col("mode")
	num := func(row []string, c int) float64 {
		v, err := strconv.ParseFloat(row[c], 64)
		if err != nil {
			t.Fatalf("row %v column %d: %v", row, c, err)
		}
		return v
	}
	var coldLost, coldResume float64
	haveCold := false
	for _, row := range tab.Rows {
		switch row[mode] {
		case "none":
			if row[resume] != "never" {
				t.Errorf("no-promotion baseline resumed: %v", row)
			}
		case "cold":
			coldLost, coldResume = num(row, lost), num(row, resume)
			haveCold = true
		case "warm":
			if !haveCold {
				t.Fatal("warm row before cold row")
			}
			if wl := num(row, lost); wl >= coldLost {
				t.Errorf("warm lost %v orders, not below cold %v: %v", wl, coldLost, row)
			}
			if wr := num(row, resume); wr >= coldResume {
				t.Errorf("warm resumed in %vs, not below cold %vs: %v", wr, coldResume, row)
			}
		}
	}
}
