package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registry has %d experiments, want 18", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Name == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Lookup("e7"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("lookup of unknown id succeeded")
	}
}

func TestTableString(t *testing.T) {
	tb := &Table{ID: "EX", Title: "x", Header: []string{"a", "bb"}, Notes: "n"}
	tb.AddRow("1", "2")
	s := tb.String()
	if !strings.Contains(s, "EX") || !strings.Contains(s, "bb") || !strings.Contains(s, "shape:") {
		t.Errorf("table render missing pieces:\n%s", s)
	}
}

// TestTableJSONHost pins the host metadata block: committed BENCH
// documents must state the parallelism envelope that produced their
// scaling columns, and omit the block entirely when it is unset (old
// documents stay valid).
func TestTableJSONHost(t *testing.T) {
	tb := &Table{ID: "EX", Title: "x", Header: []string{"a"}}
	tb.AddRow("1")
	if s := tb.JSON(); strings.Contains(s, `"host"`) {
		t.Errorf("host block present without Host set:\n%s", s)
	}
	tb.Host = &Host{GOMAXPROCS: 3, CPUs: 8}
	s := tb.JSON()
	if !strings.Contains(s, `"gomaxprocs": 3`) || !strings.Contains(s, `"cpus": 8`) {
		t.Errorf("host block missing fields:\n%s", s)
	}
	if strings.Index(s, `"host"`) > strings.Index(s, `"header"`) {
		t.Errorf("host block must precede the data columns:\n%s", s)
	}
}

// The shape tests below run each experiment in quick mode and assert the
// DESIGN.md §5 expected shape on the produced numbers — the reproduction
// criteria themselves.

func TestE1Shape(t *testing.T) {
	tb := E1DecisionLoop(11, true)
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	intentP50 := parseF(t, tb.Rows[0][2])
	hier3P50 := parseF(t, tb.Rows[3][2])
	hier4P50 := parseF(t, tb.Rows[4][2])
	if hier3P50 < 2*intentP50 {
		t.Errorf("3-level hierarchy p50 %.2f not >= 2x intent %.2f", hier3P50, intentP50)
	}
	if hier4P50 <= hier3P50 {
		t.Errorf("latency not growing with depth: %.2f -> %.2f", hier3P50, hier4P50)
	}
}

func TestE2Shape(t *testing.T) {
	tb := E2Composition(12, true)
	// Greedy must be feasible at every scale; repair must not be slower
	// than full re-solve by more than 2x (it is usually much faster).
	var greedyFeasible int
	var repairMS, fullMS float64
	for _, row := range tb.Rows {
		switch row[1] {
		case "greedy":
			if row[5] == "yes" {
				greedyFeasible++
			}
		case "repair-20%":
			repairMS = parseF(t, row[2])
		case "full-resolve":
			fullMS = parseF(t, row[2])
		}
	}
	if greedyFeasible == 0 {
		t.Error("greedy never feasible")
	}
	if repairMS > 2*fullMS+5 {
		t.Errorf("repair (%.0fms) slower than full re-solve (%.0fms)", repairMS, fullMS)
	}
}

func TestE3Shape(t *testing.T) {
	tb := E3Discovery(13, true)
	// At duty 0.1, full-stack recall must beat probe-only.
	var probeLow, fullLow float64
	var fullRedRecall float64
	for _, row := range tb.Rows {
		if row[0] == "0.10" && row[1] == "probe" {
			probeLow = parseF(t, row[2])
		}
		if row[0] == "0.10" && row[1] != "probe" {
			fullLow = parseF(t, row[2])
		}
		if row[0] == "1.00" && row[1] != "probe" {
			fullRedRecall = parseF(t, row[4])
		}
	}
	if fullLow <= probeLow {
		t.Errorf("full-stack recall %.2f not above probe-only %.2f at duty 0.1", fullLow, probeLow)
	}
	if fullRedRecall < 0.5 {
		t.Errorf("red recall %.2f < 0.5 with side channel", fullRedRecall)
	}
}

func TestE4Shape(t *testing.T) {
	tb := E4Adaptation(14, true)
	var unco, coord float64
	var treeRows int
	for _, row := range tb.Rows {
		if row[0] == "controllers" && strings.Contains(row[1], "uncoordinated") {
			unco = parseF(t, row[3])
		}
		if row[0] == "controllers" && row[1] == "shared plant, coordinated" {
			coord = parseF(t, row[3])
		}
		if row[0] == "spanning tree" {
			treeRows++
			if parseF(t, row[3]) > 500 {
				t.Errorf("tree stabilization %s rounds too high", row[3])
			}
		}
	}
	if treeRows != 3 {
		t.Errorf("tree rows = %d", treeRows)
	}
	if coord >= unco {
		t.Errorf("coordination tail error %.2f not below uncoordinated %.2f", coord, unco)
	}
}

func TestE5Shape(t *testing.T) {
	tb := E5Game(15, true)
	for _, row := range tb.Rows {
		if row[1] == "best-response" {
			if row[5] != "yes" {
				t.Errorf("best response did not converge at n=%s", row[0])
			}
			if w := parseF(t, row[4]); w < 0.5 {
				t.Errorf("welfare ratio %.3f below PoA bound at n=%s", w, row[0])
			}
		}
		if row[1] == "random-assign" {
			if w := parseF(t, row[4]); w > 0.95 {
				t.Errorf("random assignment suspiciously good: %.3f", w)
			}
		}
	}
}

func TestE6Shape(t *testing.T) {
	tb := E6Learning(16, true)
	var fedavg30, median30 float64
	for _, row := range tb.Rows {
		if row[0] == "0.30" {
			switch row[1] {
			case "fedavg":
				fedavg30 = parseF(t, row[2])
			case "median":
				median30 = parseF(t, row[2])
			}
		}
	}
	if median30 < fedavg30+0.1 {
		t.Errorf("median %.3f should clearly beat fedavg %.3f at 30%% byzantine", median30, fedavg30)
	}
}

func TestE7Shape(t *testing.T) {
	tb := E7Truth(17, true)
	for _, row := range tb.Rows {
		maj := parseF(t, row[1])
		em := parseF(t, row[2])
		coll := parseF(t, row[0])
		if coll <= 0.2 && em < maj {
			t.Errorf("EM %.3f below majority %.3f at collusion %.2f", em, maj, coll)
		}
		// Graceful degradation holds while honest sources carry the
		// expected majority of correct votes (up to ~30% here); at 40%
		// the label symmetry can break, which the table documents.
		if coll <= 0.3 && em < 0.6 {
			t.Errorf("EM %.3f collapsed at collusion %.2f", em, coll)
		}
	}
}

func TestE8Shape(t *testing.T) {
	tb := E8Tomography(18, true)
	prevRank := -1.0
	for _, row := range tb.Rows {
		rank := parseF(t, row[3])
		if rank < prevRank {
			t.Errorf("rank decreased with more monitors: %v -> %v", prevRank, rank)
		}
		prevRank = rank
		// Precision is the hard guarantee; recall may be < 1 when the
		// failed link shares a stem with others.
		if prec := parseF(t, row[5]); prec != 0 && prec < 0.5 {
			t.Errorf("localization precision %.2f too low", prec)
		}
	}
	first := parseF(t, tb.Rows[0][3])
	last := parseF(t, tb.Rows[len(tb.Rows)-1][3])
	if last <= first {
		t.Error("rank never grew with monitor count")
	}
}

func TestE9Shape(t *testing.T) {
	tb := E9Saturation(19, true)
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	fifoDrop := parseF(t, first[1]) - parseF(t, last[1])
	isoDrop := parseF(t, first[3]) - parseF(t, last[3])
	if fifoDrop < 100 {
		t.Errorf("FIFO goodput did not collapse: drop %.0f", fifoDrop)
	}
	if isoDrop > 10 {
		t.Errorf("isolated goodput dropped %.0f; want flat", isoDrop)
	}
}

func TestE10Shape(t *testing.T) {
	tb := E10CostOfLearning(20, true)
	var ringAcc, fullAcc float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "ring":
			ringAcc = parseF(t, row[3])
		case "full":
			fullAcc = parseF(t, row[3])
		}
	}
	if ringAcc < fullAcc-0.05 {
		t.Errorf("budgeted ring %.3f much worse than full %.3f", ringAcc, fullAcc)
	}
}

func TestE11Shape(t *testing.T) {
	tb := E11Continual(21, true)
	// Context 0 row: contextual retention must beat single model.
	row := tb.Rows[0]
	single := parseF(t, row[1])
	ctx := parseF(t, row[2])
	if ctx < single+0.05 {
		t.Errorf("contextual %.3f not above single %.3f on forgotten context", ctx, single)
	}
	if ctx < 0.8 {
		t.Errorf("contextual retention %.3f too low", ctx)
	}
}

func TestE12Shape(t *testing.T) {
	tb := E12Diversity(22, true)
	var homoRetained, divRetained float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "homogeneous-visual":
			homoRetained = parseF(t, row[3])
		case "diverse-3-modality":
			divRetained = parseF(t, row[3])
		}
	}
	if homoRetained > 0.1 {
		t.Errorf("homogeneous team retained %.2f after smoke; want collapse", homoRetained)
	}
	if divRetained < 0.3 {
		t.Errorf("diverse team retained only %.2f", divRetained)
	}
}

func TestE13Shape(t *testing.T) {
	tb := E13Tracking(23, true)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	sparse := parseF(t, tb.Rows[0][2])
	dense := parseF(t, tb.Rows[2][2])
	if dense <= sparse {
		t.Errorf("continuity sparse=%.2f dense=%.2f; want density to help", sparse, dense)
	}
	// Warm tracks survive sensor churn far better than a cold start at
	// the surviving density; the damage shows up as error and drops.
	churned := parseF(t, tb.Rows[3][2])
	if churned <= sparse {
		t.Errorf("warm-track churn continuity %.2f not above cold-start sparse %.2f", churned, sparse)
	}
	churnErr := parseF(t, tb.Rows[3][3])
	denseErr := parseF(t, tb.Rows[2][3])
	if churnErr <= denseErr {
		t.Errorf("churn error %.2f not above full-density error %.2f", churnErr, denseErr)
	}
}

func TestRegistryHasE13(t *testing.T) {
	if _, ok := Lookup("E13"); !ok {
		t.Error("E13 missing from registry")
	}
	if len(All()) != 18 {
		t.Errorf("registry size = %d", len(All()))
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}, Rows: [][]string{{"1", "x,y"}, {"2", `q"u`}}}
	got := tb.CSV()
	want := "a,b\n1,\"x,y\"\n2,\"q\"\"u\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestE14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("E14 runs 6-minute missions")
	}
	tb := E14Recovery(42, true) // quick: intensities 0.5 and 1.0
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] == "run failed" {
			t.Fatalf("intensity %s failed to run", row[0])
		}
	}
	// The acceptance bar: at full intensity the degradation reflexes
	// keep success at least 2x the reflexless mission.
	full := tb.Rows[len(tb.Rows)-1]
	if ratio := parseF(t, full[6]); ratio < 2 {
		t.Errorf("reflex/no-reflex success ratio %.2f at full intensity, want >= 2", ratio)
	}
	// Degradation deepens with intensity: success without reflexes falls.
	if lo, hi := parseF(t, tb.Rows[0][5]), parseF(t, full[5]); hi >= lo {
		t.Errorf("reflexless success rose with intensity: %.2f -> %.2f", lo, hi)
	}
}

func TestE17Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("E17 runs six 260s dissemination missions")
	}
	tb := E17Dissemination(42, true)
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	byMode := map[string][]string{}
	for _, row := range tb.Rows {
		byMode[row[0]] = row
	}
	// The acceptance bar: gossip reconverges across the partition+heal
	// (>= 0.95) in the very scenario where BFS unicast strands a majority
	// of cross-partition traffic (< 0.5).
	if got := parseF(t, byMode["gossip"][1]); got < 0.95 {
		t.Errorf("gossip delivery %.3f, want >= 0.95", got)
	}
	if got := parseF(t, byMode["bfs"][1]); got >= 0.5 {
		t.Errorf("bfs delivery %.3f, want < 0.5", got)
	}
	// Repairs are what buys the convergence: gossip repaired, the
	// repairless modes could not.
	if parseF(t, byMode["gossip"][5]) == 0 {
		t.Error("gossip converged without a single anti-entropy repair")
	}
	for _, mode := range []string{"gossip", "flood", "bfs"} {
		if byMode[mode][6] != "yes" {
			t.Errorf("%s mode not deterministic across same-seed reruns", mode)
		}
	}
	if tb.Verification == nil || len(tb.Verification.Violations) != 0 {
		t.Errorf("invariant violations during E17: %+v", tb.Verification)
	}
}

func TestE18Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("E18 sweeps shard counts over dissemination runs")
	}
	tb := E18ShardScaling(42, true)
	if len(tb.Rows) != 8 { // quick: one size x {gossip,bfs} x {1,2,4,8}
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The acceptance bar: every shard count reproduces the 1-shard
	// digest, every run delivers, and nothing violates a conservation
	// law — sharding is a performance knob, not a semantic one.
	for _, row := range tb.Rows {
		if row[7] != "match" {
			t.Errorf("%s/%s shards=%s digest column = %q, want match", row[0], row[1], row[2], row[7])
		}
		if parseF(t, row[5]) <= 0 {
			t.Errorf("%s/%s shards=%s delivered nothing", row[0], row[1], row[2])
		}
	}
	if tb.Verification == nil || len(tb.Verification.Violations) != 0 {
		t.Errorf("conservation violations during E18: %+v", tb.Verification)
	}
	if tb.Verification != nil && tb.Verification.Checks == 0 {
		t.Error("E18 ran without counting a single conservation check")
	}
}
