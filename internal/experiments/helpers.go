package experiments

import (
	"time"

	"iobt/internal/asset"
	"iobt/internal/discovery"
	"iobt/internal/sim"
)

// nowMS returns wall-clock milliseconds; experiments use it only to
// measure solver cost on the host machine (never inside the simulated
// world, which runs on virtual time).
func nowMS() float64 {
	//iobt:allow detrand measures host solver cost for experiment tables; never read inside the simulated world
	return float64(time.Now().UnixNano()) / 1e6
}

// newDiscovery wraps discovery.New with a method bit mask (1=probe,
// 2=passive, 4=side-channel) so experiment tables can sweep methods.
func newDiscovery(eng *sim.Engine, pop *asset.Population, scanner asset.ID, flags int) *discovery.Service {
	cfg := discovery.DefaultConfig()
	cfg.Scanners = []asset.ID{scanner}
	cfg.Methods = discovery.Methods(flags)
	return discovery.New(eng, pop, nil, cfg)
}
