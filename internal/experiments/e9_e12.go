package experiments

import (
	"iobt/internal/adapt"
	"iobt/internal/alloc"
	"iobt/internal/asset"
	"iobt/internal/compose"
	"iobt/internal/geo"
	"iobt/internal/learn"
	"iobt/internal/sim"
)

// E9Saturation reproduces §IV.B: allocation must "prevent any subset of
// IoBT devices (including attackers) from saturating cloud processing
// and communication resources".
func E9Saturation(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "mission goodput under adversarial load by allocator",
		Header: []string{"attack share", "fifo", "max-min fair", "isolated", "isolated+admission"},
		Notes:  "FIFO collapses as attack share grows; isolation keeps mission goodput flat",
	}
	_ = quick
	rng := sim.NewRNG(seed)
	const capacity = 1000.0
	const missionDemand = 400.0
	for _, share := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		attackDemand := 0.0
		if share > 0 && share < 1 {
			attackDemand = capacity * share / (1 - share) * 10 // oversubscribed
		}
		// Attack flows arrive first (worst case for FIFO).
		nAttack := 8
		var flows []alloc.Flow
		id := 0
		for i := 0; i < nAttack; i++ {
			flows = append(flows, alloc.Flow{
				ID: id, Class: alloc.ClassUntrusted, Weight: 1,
				Demand: attackDemand / float64(nAttack) * rng.Uniform(0.8, 1.2),
			})
			id++
		}
		for i := 0; i < 4; i++ {
			flows = append(flows, alloc.Flow{
				ID: id, Class: alloc.ClassMission, Weight: 2,
				Demand: missionDemand / 4,
			})
			id++
		}
		fifo := alloc.FIFO(capacity, flows)
		fair := alloc.MaxMinFair(capacity, flows)
		iso := alloc.Isolated(capacity, flows, alloc.DefaultShares())
		admitted := alloc.Admission(flows, capacity/8)
		isoAdm := alloc.Isolated(capacity, admitted, alloc.DefaultShares())

		t.AddRow(f2(share),
			f0(alloc.Goodput(flows, fifo, alloc.ClassMission)),
			f0(alloc.Goodput(flows, fair, alloc.ClassMission)),
			f0(alloc.Goodput(flows, iso, alloc.ClassMission)),
			f0(alloc.Goodput(admitted, isoAdm, alloc.ClassMission)))
	}
	return t
}

// E10CostOfLearning reproduces §V.B refs [28]-[33]: "one might activate
// different network topologies based on the trade-off between network
// learning and communication".
func E10CostOfLearning(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "accuracy under a communication budget by gossip topology",
		Header: []string{"topology", "edges/round", "budget rounds", "final acc", "MB used"},
		Notes:  "dense graphs win per round but sparse graphs win per byte — a crossover exists",
	}
	n := 16
	budget := 400_000.0
	if quick {
		budget = 200_000
	}
	rng := sim.NewRNG(seed)
	train := learn.GenDataset(rng, learn.GenConfig{N: 1500, Dim: 4, Noise: 0.05})
	test := learn.GenDatasetFromW(rng, train.TrueW, 400, 0.05)
	shards := train.Split(rng, n, 0.3)

	msg := float64((4 + 1) * 8)
	cases := []struct {
		name string
		topo learn.Topology
	}{
		{"ring", learn.Ring(n)},
		{"hierarchical", learn.Hierarchical(n)},
		{"full", learn.Full(n)},
		{"star", learn.Star(n)},
	}
	for _, c := range cases {
		perRound := float64(learn.Edges(c.topo(0))) * 2 * msg
		rounds := int(budget / perRound)
		if rounds < 1 {
			rounds = 1
		}
		res := learn.RunGossip(shards, test, c.topo, learn.GossipConfig{Rounds: rounds, LR: 0.4})
		acc := 0.0
		if len(res.MeanAcc) > 0 {
			acc = res.MeanAcc[len(res.MeanAcc)-1]
		}
		t.AddRow(c.name, d(learn.Edges(c.topo(0))), d(rounds), f3(acc), f2(res.BytesSent/1e6))
	}
	return t
}

// E11Continual reproduces §V.B ref [26]: context-aware learning retains
// old knowledge where a single blindly-updated model forgets.
func E11Continual(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "retention accuracy per context: single model vs contextual",
		Header: []string{"context", "single", "contextual", "contexts found"},
		Notes:  "single model forgets early contexts; contextual retains all",
	}
	batches := 40
	if quick {
		batches = 25
	}
	rng := sim.NewRNG(seed)
	const dim = 4
	var ws [][]float64
	for c := 0; c < 3; c++ {
		w := make([]float64, dim+1)
		for i := range w {
			w[i] = rng.Norm(0, 3)
		}
		ws = append(ws, w)
	}
	for i := range ws[1] {
		ws[1][i] = -ws[0][i] // maximal interference with context 0
	}
	single := learn.NewSingleLearner(dim, 0.3)
	ctx := learn.NewContextualLearner(dim, 0.3)
	var evals []*learn.Dataset
	for phase := 0; phase < 3; phase++ {
		evals = append(evals, learn.GenDatasetFromW(rng, ws[phase], 400, 0.02))
		for b := 0; b < batches; b++ {
			batch := learn.GenDatasetFromW(rng, ws[phase], 20, 0.02)
			single.Observe(batch.X, batch.Y)
			ctx.Observe(batch.X, batch.Y)
		}
	}
	for phase := 0; phase < 3; phase++ {
		t.AddRow(d(phase),
			f3(single.Predictor().Accuracy(evals[phase].X, evals[phase].Y)),
			f3(ctx.BestAccuracy(evals[phase].X, evals[phase].Y)),
			d(ctx.NumContexts()))
	}
	return t
}

// E12Diversity reproduces §IV.B refs [15]-[18]: diverse teams outperform
// homogeneous teams — here, modality-diverse sensor teams retain
// coverage when an environmental event (smoke) blinds one modality,
// matching the paper's seismic-for-visual substitution example.
func E12Diversity(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "coverage before/after visual blackout: homogeneous vs diverse team",
		Header: []string{"team", "coverage before", "coverage after smoke", "retained"},
		Notes:  "homogeneous all-visual team collapses; diverse team degrades gracefully",
	}
	n := 12
	if quick {
		n = 8
	}
	rng := sim.NewRNG(seed)
	area := geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 1000, Y: 1000})

	mkTeam := func(diverse bool) []compose.Candidate {
		var team []compose.Candidate
		for i := 0; i < n*n/12; i++ {
			for j := 0; j < 12; j++ {
				mod := asset.ModVisual
				if diverse {
					switch j % 3 {
					case 1:
						mod = asset.ModSeismic
					case 2:
						mod = asset.ModThermal
					}
				}
				team = append(team, compose.Candidate{
					ID:  asset.ID(len(team)),
					Pos: geo.Point{X: rng.Uniform(0, 1000), Y: rng.Uniform(0, 1000)},
					Caps: asset.Capabilities{
						Modalities: mod, SenseRange: 180, RadioRange: 400,
					},
					Trust: 0.9, Affiliation: asset.Blue,
				})
			}
		}
		return team
	}
	eval := func(team []compose.Candidate, smokeBlocksVisual bool) float64 {
		goal := compose.Goal{Area: area, CoverageFrac: 0.9}
		if smokeBlocksVisual {
			// Smoke: visual sensors are blind; only non-visual modalities
			// still count. Requiring a non-visual modality models this.
			goal.Modalities = asset.ModSeismic | asset.ModThermal | asset.ModAcoustic
		}
		req := compose.Derive(goal)
		return compose.Evaluate(req, team).CoverageFrac
	}
	for _, diverse := range []bool{false, true} {
		name := "homogeneous-visual"
		if diverse {
			name = "diverse-3-modality"
		}
		team := mkTeam(diverse)
		before := eval(team, false)
		after := eval(team, true)
		retained := 0.0
		if before > 0 {
			retained = after / before
		}
		t.AddRow(name, f2(before), f2(after), f2(retained))
	}
	// Bonus row: adaptive reflex chain selecting the fallback modality,
	// tying the diversity result to the adapt machinery.
	chain := adapt.NewReflexChain(
		adapt.Rule{Name: "use-visual", Condition: func() bool { return false }},
		adapt.Rule{Name: "fallback-seismic", Condition: func() bool { return true }},
	)
	fired := chain.Tick()
	t.AddRow("reflex-chain", "-", "-", fired)
	return t
}
