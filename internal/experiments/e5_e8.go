package experiments

import (
	"iobt/internal/asset"
	"iobt/internal/game"
	"iobt/internal/geo"
	"iobt/internal/learn"
	"iobt/internal/mesh"
	"iobt/internal/sim"
	"iobt/internal/socialsense"
	"iobt/internal/tomo"
)

// E5Game reproduces §IV.A: agent objective functions designed so that
// best-response dynamics converge to equilibria meeting the global
// goal, scalably and without explicit coordination.
func E5Game(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "best-response convergence and welfare vs centralized optimum",
		Header: []string{"agents", "dynamics", "rounds", "moves/agent", "welfare/opt", "equilibrium"},
		Notes:  "rounds grow gently with N; welfare within the potential-game bound of optimum; random assignment wastes value",
	}
	sizes := []int{50, 200, 1000, 2000}
	if quick {
		sizes = []int{50, 200}
	}
	for _, n := range sizes {
		rng := sim.NewRNG(seed)
		tasks := make([]game.Task, n)
		for i := range tasks {
			tasks[i] = game.Task{Value: rng.Uniform(1, 10)}
		}
		opt := game.OptimalWelfare(tasks, n)

		g := game.New(tasks, n, rng.Derive("br"))
		g.Randomize()
		rounds, converged := g.Run(10000)
		t.AddRow(d(n), "best-response", d(rounds),
			f2(float64(g.Moves.Value())/float64(n)), f3(g.Welfare()/opt), boolStr(converged))

		rndGame := game.New(tasks, n, rng.Derive("rnd"))
		rndGame.Randomize()
		t.AddRow(d(n), "random-assign", "0", "0.00", f3(rndGame.Welfare()/opt), "no")

		dec := game.Decompose(tasks, n, 8, rng.Derive("dec"))
		decRounds, decOK := dec.Run(10000)
		t.AddRow(d(n), "decomposed-8", d(decRounds),
			f2(float64(dec.Moves())/float64(n)), f3(dec.Welfare()/opt), boolStr(decOK))
	}
	return t
}

// E6Learning reproduces §V.B (Figure 4): distributed learning must
// tolerate adversarial compromise; robust aggregation preserves
// convergence where plain averaging collapses.
func E6Learning(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "federated accuracy by aggregator and Byzantine fraction",
		Header: []string{"byz frac", "aggregator", "final acc", "bytes (MB)"},
		Notes:  "fedavg collapses at >=20% sign-flip attackers; median/trimmed/krum stay near the clean ceiling",
	}
	workers := 20
	rounds := 25
	if quick {
		rounds = 12
	}
	for _, byz := range []float64{0, 0.1, 0.2, 0.3} {
		for _, agg := range []learn.Aggregator{
			learn.MeanAgg{}, learn.MedianAgg{},
			learn.TrimmedMeanAgg{K: 6}, learn.KrumAgg{F: 6},
		} {
			rng := sim.NewRNG(seed)
			train := learn.GenDataset(rng, learn.GenConfig{N: 2000, Dim: 5, Noise: 0.05})
			test := learn.GenDatasetFromW(rng, train.TrueW, 500, 0.05)
			shards := train.Split(rng, workers, 0.3)
			res := learn.RunFederated(rng.Derive("fed"), shards, test, learn.FedConfig{
				Rounds: rounds, LocalSteps: 5, LR: 0.5,
				ByzFrac: byz, Attack: learn.AttackSignFlip, Agg: agg,
			})
			// Mean of the last 5 rounds: a poisoned FedAvg oscillates
			// between the model and its negation, so a single final
			// round would under- or over-state the damage by parity.
			acc := 0.0
			if n := len(res.TestAcc); n > 0 {
				k := 5
				if n < k {
					k = n
				}
				for _, v := range res.TestAcc[n-k:] {
					acc += v
				}
				acc /= float64(k)
			}
			t.AddRow(f2(byz), agg.Name(), f3(acc), f2(res.BytesSent/1e6))
		}
	}
	return t
}

// E7Truth reproduces §III.A/§V.A: estimation-theoretic truth discovery
// beats naive aggregation on unreliable human sources and degrades
// gracefully under collusion.
func E7Truth(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "claim accuracy by estimator and colluding-source fraction",
		Header: []string{"colluders", "majority", "EM", "EM iters", "reliability RMSE"},
		Notes: "EM dominates majority under heterogeneous reliability; degradation is graceful while honest " +
			"sources carry the majority of expected correct votes, and label symmetry breaks beyond that (~40%)",
	}
	cfg := socialsense.DefaultGenConfig()
	if quick {
		cfg.Sources = 80
		cfg.Claims = 200
	}
	// Heterogeneous but honest-leaning reliabilities (mean ~0.77): the
	// honest-majority anchor holds up to ~35% collusion.
	cfg.ReliabilityAlpha = 5
	cfg.ReliabilityBeta = 1.5
	for _, coll := range []float64{0, 0.1, 0.2, 0.3, 0.4} {
		c := cfg
		c.ColluderFrac = coll
		dset := socialsense.Generate(sim.NewRNG(seed), c)
		maj := socialsense.Accuracy(socialsense.MajorityVote(dset), dset.Truth)
		em := socialsense.EM(dset, 50)
		emAcc := socialsense.Accuracy(em.Estimates(), dset.Truth)
		rmse := socialsense.ReliabilityRMSE(em.Reliability, dset.Reliability)
		t.AddRow(f2(coll), f3(maj), f3(emAcc), d(em.Iterations), f3(rmse))
	}
	return t
}

// E8Tomography reproduces §V.A: system health inferred without direct
// observation; identifiability and failure localization improve with
// monitor count.
func E8Tomography(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "identifiable links and failure localization vs monitors",
		Header: []string{"monitors", "paths", "links seen", "rank", "identifiable", "loc precision", "loc recall"},
		Notes: "measurable link combinations (rank) grow steadily with monitors; uniquely identifiable links are " +
			"rarer in grid meshes (paths share stems), which is exactly the identifiability limit of ref [20]",
	}
	gridN := 6
	if quick {
		gridN = 5
	}
	eng := sim.NewEngine(seed)
	terr := geo.NewOpenTerrain(float64(gridN+1)*100, float64(gridN+1)*100)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 120
	for iy := 0; iy < gridN; iy++ {
		for ix := 0; ix < gridN; ix++ {
			a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
				Mobility: &geo.Static{P: geo.Point{X: float64(ix+1) * 100, Y: float64(iy+1) * 100}}}
			a.Energy = caps.EnergyCap
			pop.Add(a)
		}
	}
	mcfg := mesh.DefaultConfig()
	mcfg.StepMobility = false
	net := mesh.New(eng, pop, terr, mcfg)

	all := make([]asset.ID, gridN*gridN)
	for i := range all {
		all[i] = asset.ID(i)
	}
	rng := sim.NewRNG(seed)
	for _, k := range []int{2, 4, 6, 8} {
		monitors := tomo.PlaceMonitors(net, all, k)
		paths, links := tomo.CollectPaths(net, monitors)
		meas := make([]float64, len(paths))
		est := tomo.InferDelays(paths, links, meas)
		ident := 0
		for _, ok := range est.Identifiable {
			if ok {
				ident++
			}
		}
		// Boolean localization: fail a random covered link's endpoints.
		prec, rec := 0.0, 0.0
		if len(links) > 0 {
			failLink := links[rng.Intn(len(links))]
			var obs []tomo.PathObservation
			for _, p := range paths {
				ok := true
				for _, l := range p.Links {
					if l == failLink {
						ok = false
						break
					}
				}
				obs = append(obs, tomo.PathObservation{Path: p, OK: ok})
			}
			diag := tomo.Localize(obs)
			score := diag.Evaluate([]tomo.Link{failLink})
			prec, rec = score.Precision, score.Recall
		}
		t.AddRow(d(k), d(len(paths)), d(len(links)), d(est.Rank), d(ident), f2(prec), f2(rec))
	}
	return t
}
