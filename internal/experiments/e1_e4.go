package experiments

import (
	"fmt"
	"time"

	"iobt/internal/adapt"
	"iobt/internal/asset"
	"iobt/internal/compose"
	"iobt/internal/core"
	"iobt/internal/geo"
	"iobt/internal/mesh"
	"iobt/internal/sim"
)

// E1DecisionLoop reproduces the paper's motivating claim (§I, Figure 1):
// command-by-intent shortens the decision loop relative to hierarchical
// authorization, and the gap widens with hierarchy depth.
func E1DecisionLoop(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "decision-loop latency and mission success by command model",
		Header: []string{"command", "levels", "p50 latency (s)", "p90 latency (s)", "success", "detected"},
		Notes: "intent >=2x lower median latency than 3-level hierarchy; latency grows with depth; ARQ-backed " +
			"orders convert channel losses into successes at a small latency premium",
	}
	horizon := 6 * time.Minute
	assets := 400
	if quick {
		horizon = 2 * time.Minute
		assets = 250
	}
	type cfg struct {
		cmd      core.CommandModel
		levels   int
		reliable bool
	}
	cases := []cfg{
		{core.CommandIntent, 0, false},
		{core.CommandHierarchy, 1, false},
		{core.CommandHierarchy, 2, false},
		{core.CommandHierarchy, 3, false},
		{core.CommandHierarchy, 4, false},
		{core.CommandHierarchy, 3, true}, // ablation: ARQ-backed orders
	}
	for _, c := range cases {
		w := core.NewWorld(core.WorldConfig{
			Seed:    seed,
			Terrain: geo.NewOpenTerrain(1500, 1500),
			Assets:  assets,
		})
		m := core.DefaultMission(geo.NewRect(geo.Point{X: 300, Y: 300}, geo.Point{X: 1200, Y: 1200}))
		m.Goal.CoverageFrac = 0.5
		m.Command = c.cmd
		m.HierarchyLevels = c.levels
		m.ReliableOrders = c.reliable
		m.IncidentsPerMin = 30
		r := core.NewRuntime(w, m)
		if err := r.Synthesize(); err != nil {
			w.Stop()
			t.AddRow(c.cmd.String(), d(c.levels), "synthesis failed", "", "", "")
			continue
		}
		if err := r.Start(); err != nil {
			w.Stop()
			continue
		}
		_ = w.Run(horizon)
		r.Stop()
		w.Stop()
		label := c.cmd.String()
		if c.reliable {
			label += "+arq"
		}
		t.AddRow(label, d(c.levels),
			f2(r.Metrics.DecisionLatency.Percentile(50)),
			f2(r.Metrics.DecisionLatency.Percentile(90)),
			f2(r.Metrics.SuccessRate()),
			f2(r.Metrics.DetectionRate()))
	}
	return t
}

// E2Composition reproduces §III (Figure 2): composite assets of
// 1,000s-10,000s of nodes assembled on demand, with solver quality and
// cost compared, and incremental re-composition under damage.
func E2Composition(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "composition time and quality by solver and scale",
		Header: []string{"assets", "solver", "wall ms", "members", "coverage", "feasible"},
		Notes:  "greedy scales to 10k nodes well under a minute; random fails hard instances; repair << full solve",
	}
	sizes := []int{1000, 3000, 10000}
	if quick {
		sizes = []int{300, 1000}
	}
	for _, n := range sizes {
		terr := geo.NewUrbanTerrain(3000, 3000, 100)
		rng := sim.NewRNG(seed)
		pop := asset.Generate(terr, asset.DefaultMix(n), rng)
		goal := compose.Goal{
			Name:         "surveil",
			Area:         geo.NewRect(geo.Point{X: 200, Y: 200}, geo.Point{X: 2800, Y: 2800}),
			CoverageFrac: 0.6,
			Compute:      2000,
		}
		req := compose.Derive(goal)
		pool := compose.PoolFromPopulation(pop, nil)

		solvers := []struct {
			name string
			s    compose.Solver
		}{
			{"greedy", compose.GreedySolver{}},
			{"random", compose.RandomSolver{RNG: rng.Derive("rand"), Attempts: 20}},
		}
		if n <= 300 {
			solvers = append(solvers, struct {
				name string
				s    compose.Solver
			}{"csp", compose.CSPSolver{MaxNodes: 100000, MaxSize: 10}})
		}
		for _, sv := range solvers {
			start := nowMS()
			comp, err := sv.s.Solve(req, pool)
			elapsed := nowMS() - start
			feasible := err == nil
			members, coverage := 0, 0.0
			if comp != nil {
				members = len(comp.Members)
				coverage = comp.Assurance.CoverageFrac
			}
			t.AddRow(d(n), sv.name, f0(elapsed), d(members), f2(coverage), boolStr(feasible))
		}
		// Damage + incremental repair vs full re-solve.
		comp, err := compose.GreedySolver{}.Solve(req, pool)
		if err == nil {
			failed := map[asset.ID]bool{}
			for i, id := range comp.Members {
				if i%5 == 0 { // 20% losses
					failed[id] = true
				}
			}
			var survivors []compose.Candidate
			for _, c := range pool {
				if !failed[c.ID] {
					survivors = append(survivors, c)
				}
			}
			start := nowMS()
			_, rerr := compose.Recompose(req, comp, failed, survivors)
			repairMS := nowMS() - start
			start = nowMS()
			_, ferr := compose.GreedySolver{}.Solve(req, survivors)
			fullMS := nowMS() - start
			t.AddRow(d(n), "repair-20%", f0(repairMS), "", "", boolStr(rerr == nil))
			t.AddRow(d(n), "full-resolve", f0(fullMS), "", "", boolStr(ferr == nil))
		}
	}
	return t
}

// E3Discovery reproduces §III.A: probing alone misses intermittently
// connected and adversarial assets; passive fingerprinting and
// side-channel detection close the gap.
func E3Discovery(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "discovery recall and red-node identification by method and duty cycle",
		Header: []string{"duty", "methods", "recall", "class acc", "red recall", "red precision"},
		Notes: "probe-only recall collapses at low duty cycle and never sees silent red nodes; side channels give " +
			"near-perfect red identification at moderate duty cycles, degrading at extreme duty cycling (sleepy " +
			"blue motes become indistinguishable from deliberate silence — the paper's intermittency challenge)",
	}
	rounds := 25
	if quick {
		rounds = 12
	}
	for _, duty := range []float64{1.0, 0.5, 0.2, 0.1} {
		for _, mm := range []struct {
			name  string
			flags int
		}{
			{"probe", 1},
			{"probe+passive+sidechan", 7},
		} {
			eng := sim.NewEngine(seed)
			terr := geo.NewOpenTerrain(1000, 1000)
			pop := asset.NewPopulation(terr)
			rng := eng.Stream("place")
			caps := asset.DefaultCaps(asset.ClassSensor)
			caps.RadioRange = 700
			scanner := &asset.Asset{Affiliation: asset.Blue, Class: asset.ClassSensor,
				Caps: caps, Online: true, DutyCycle: 1,
				Mobility: &geo.Static{P: geo.Point{X: 500, Y: 500}}}
			scanner.Energy = caps.EnergyCap
			scannerID := pop.Add(scanner)
			addN := func(n int, aff asset.Affiliation, class asset.Class, emission float64) {
				for i := 0; i < n; i++ {
					a := &asset.Asset{Affiliation: aff, Class: class,
						Caps: asset.DefaultCaps(class), Online: true,
						DutyCycle: duty, Emission: emission,
						Mobility: &geo.Static{P: geo.Point{X: rng.Uniform(200, 800), Y: rng.Uniform(200, 800)}}}
					a.Energy = a.Caps.EnergyCap
					pop.Add(a)
				}
			}
			addN(40, asset.Blue, asset.ClassMote, 0.3)
			addN(20, asset.Gray, asset.ClassPhone, 0.8)
			addN(15, asset.Red, asset.ClassPhone, 0.7)

			// discovery.Methods bit values match mm.flags.
			svc := newDiscovery(eng, pop, scannerID, mm.flags)
			for i := 0; i < rounds; i++ {
				eng.Schedule(time.Duration(i)*2*time.Second, "scan", svc.Scan)
			}
			_ = eng.Run(0)
			st := svc.Evaluate()
			t.AddRow(f2(duty), mm.name, f2(st.Recall), f2(st.ClassAccuracy), f2(st.RedRecall), f2(st.RedPrecision))
		}
	}
	return t
}

// E4Adaptation reproduces §IV (Figure 3): reflexive incremental repair
// recovers far faster than global re-synthesis; the self-stabilizing
// tree re-converges after corruption; coordination damps the [12]
// oscillation pathology.
func E4Adaptation(seed int64, quick bool) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "recovery mechanisms after disruption",
		Header: []string{"mechanism", "disruption", "metric", "value"},
		Notes: "repair is cheaper than full re-synthesis at light damage and converges to full-re-solve cost as " +
			"damage grows (work scales with what was lost); tree cold-starts in O(diameter) rounds and flushes " +
			"corruption in O(N) rounds (the distance-bound epoch); coordinated tail error ~0 where uncoordinated " +
			"oscillates",
	}
	n := 2000
	if quick {
		n = 500
	}
	// (a) Composite repair vs full re-synthesis (also in E2; here under
	// jamming-induced loss to tie to the mission context).
	terr := geo.NewOpenTerrain(2000, 2000)
	rng := sim.NewRNG(seed)
	pop := asset.Generate(terr, asset.DefaultMix(n), rng)
	goal := compose.Goal{
		Area:         geo.NewRect(geo.Point{X: 200, Y: 200}, geo.Point{X: 1800, Y: 1800}),
		CoverageFrac: 0.55,
	}
	req := compose.Derive(goal)
	pool := compose.PoolFromPopulation(pop, nil)
	comp, err := compose.GreedySolver{}.Solve(req, pool)
	if err == nil {
		for _, lossPct := range []int{10, 33, 60} {
			failed := map[asset.ID]bool{}
			for i, id := range comp.Members {
				if (i*100)/len(comp.Members) < lossPct {
					failed[id] = true
				}
			}
			var survivors []compose.Candidate
			for _, c := range pool {
				if !failed[c.ID] {
					survivors = append(survivors, c)
				}
			}
			start := nowMS()
			_, _ = compose.Recompose(req, comp, failed, survivors)
			t.AddRow("reflex repair", fmt.Sprintf("%d%% member loss", lossPct), "wall ms", f0(nowMS()-start))
			if lossPct == 33 {
				start = nowMS()
				_, _ = compose.GreedySolver{}.Solve(req, survivors)
				t.AddRow("full re-synthesis", "33% member loss", "wall ms", f0(nowMS()-start))
			}
		}
	}

	// (b) Self-stabilizing spanning tree under corruption and root loss.
	eng := sim.NewEngine(seed)
	gridN := 8
	if quick {
		gridN = 5
	}
	tpop := asset.NewPopulation(geo.NewOpenTerrain(float64(gridN+1)*100, float64(gridN+1)*100))
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 120
	for iy := 0; iy < gridN; iy++ {
		for ix := 0; ix < gridN; ix++ {
			a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
				Mobility: &geo.Static{P: geo.Point{X: float64(ix+1) * 100, Y: float64(iy+1) * 100}}}
			a.Energy = caps.EnergyCap
			tpop.Add(a)
		}
	}
	mcfg := mesh.DefaultConfig()
	mcfg.StepMobility = false
	net := mesh.New(eng, tpop, tpop.Terrain(), mcfg)
	tree := adapt.NewSpanningTree(net)
	rounds, _ := tree.Stabilize(1000)
	t.AddRow("spanning tree", "cold start", "rounds", d(rounds))
	tree.Corrupt(asset.ID(gridN*gridN/2), asset.ID(-1), 0)
	rounds, _ = tree.Stabilize(1000)
	t.AddRow("spanning tree", "phantom-root corruption", "rounds", d(rounds))
	tpop.Kill(0)
	net.Refresh()
	rounds, _ = tree.Stabilize(1000)
	t.AddRow("spanning tree", "root killed", "rounds", d(rounds))

	// (c) Coordinated vs uncoordinated adaptation ([12]).
	tail := func(coordinated bool) float64 {
		c1 := adapt.NewController("a", 12, 0, 0, 20, 1)
		c2 := adapt.NewController("b", 12, 0, 0, 20, 1)
		c1.FixedGain, c2.FixedGain = true, true
		co := adapt.NewCoordinator(c1, c2)
		tailErr := 0.0
		for i := 0; i < 60; i++ {
			out := c1.Knob + c2.Knob
			if coordinated {
				co.Observe(out)
			} else {
				c1.Observe(out)
				c2.Observe(out)
			}
			if i >= 40 {
				diff := 12 - (c1.Knob + c2.Knob)
				if diff < 0 {
					diff = -diff
				}
				tailErr += diff
			}
		}
		return tailErr
	}
	t.AddRow("controllers", "shared plant, uncoordinated", "tail error", f2(tail(false)))
	t.AddRow("controllers", "shared plant, coordinated", "tail error", f2(tail(true)))
	return t
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
