package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"iobt/internal/geo"
)

// Plan DSL: one fault per line, `verb key=value ...`, with `#` comments
// and blank lines ignored. Durations use Go syntax (30s, 2m); lengths
// are meters. An optional leading `plan <name>` line names the plan.
//
//	plan standard
//	partition at=30s for=60s x=600
//	partition at=30s for=60s cx=500 cy=500 r=250
//	heal      at=2m
//	jam       at=60s for=60s cx=600 cy=600 r=300 intensity=0.9
//	jam       region at=60s for=60s x0=200 y0=200 x1=600 y1=600 intensity=0.9
//	kill      at=90s frac=0.33 of=composite
//	cploss    at=95s
//	corrupt   at=2m for=30s prob=0.2
//	delay     at=2m for=30s add=500ms prob=0.5
//	churn     at=3m for=60s rate=0.2
//	smoke     at=3m for=40s cx=500 cy=500 r=200
//	crash     post at=2m
//	failover  warm at=2m30s
//	failover  cold at=2m30s
//
// The crash and failover verbs take a positional operand (the crash
// target, the promotion disposition) before the key=value fields; jam
// takes an optional `region` operand selecting a rectangular footprint
// (x0/y0/x1/y1) instead of a circular one. The heal verb ends, at its
// own `at`, every partition that began at or before that instant —
// including unbounded ones (`partition at=30s x=600` with no for=).

// Parse reads a plan in the DSL above.
func Parse(src string) (*Plan, error) {
	p := &Plan{Name: "custom"}
	for ln, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		verb := strings.ToLower(fields[0])
		if verb == "plan" {
			if len(fields) > 1 {
				p.Name = fields[1]
			}
			continue
		}
		f, err := parseFault(verb, fields[1:])
		if err != nil {
			return nil, fmt.Errorf("fault: line %d: %w", ln+1, err)
		}
		p.Faults = append(p.Faults, f)
	}
	if len(p.Faults) == 0 {
		return nil, fmt.Errorf("fault: plan has no faults")
	}
	return p, nil
}

func parseFault(verb string, kvs []string) (Fault, error) {
	var f Fault
	switch verb {
	case "partition":
		f.Kind = Partition
	case "heal":
		f.Kind = Heal
	case "jam":
		f.Kind = JamWave
	case "kill":
		f.Kind = KillWave
	case "cploss":
		f.Kind = CommandPostLoss
	case "corrupt":
		f.Kind = Corrupt
	case "delay":
		f.Kind = Delay
	case "churn":
		f.Kind = ChurnSpike
	case "smoke":
		f.Kind = Smoke
	case "crash":
		f.Kind = CrashPost
	case "failover":
		f.Kind = Failover
	default:
		return f, fmt.Errorf("unknown fault verb %q", verb)
	}
	// Positional operands come before the key=value fields.
	switch f.Kind {
	case CrashPost:
		if len(kvs) == 0 || strings.ToLower(kvs[0]) != "post" {
			return f, fmt.Errorf("crash: want operand \"post\" (crash post at=...)")
		}
		kvs = kvs[1:]
	case Failover:
		if len(kvs) == 0 {
			return f, fmt.Errorf("failover: want operand \"warm\" or \"cold\"")
		}
		switch strings.ToLower(kvs[0]) {
		case "warm":
			f.Warm = true
		case "cold":
			f.Warm = false
		default:
			return f, fmt.Errorf("failover: want operand \"warm\" or \"cold\", got %q", kvs[0])
		}
		kvs = kvs[1:]
	case JamWave:
		// Optional `region` operand: a rectangular footprint given by
		// x0/y0/x1/y1 instead of the circular cx/cy/r one.
		if len(kvs) > 0 && strings.ToLower(kvs[0]) == "region" {
			kvs = kvs[1:]
		}
	default:
		// The remaining kinds take no positional operands; everything
		// after the verb is key=value fields.
	}
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return f, fmt.Errorf("malformed field %q (want key=value)", kv)
		}
		var err error
		switch strings.ToLower(k) {
		case "at":
			f.At, err = time.ParseDuration(v)
		case "for":
			f.Duration, err = time.ParseDuration(v)
		case "add":
			f.Extra, err = time.ParseDuration(v)
		case "x":
			f.X, err = parseNum(v)
		case "cx":
			f.Area.Center.X, err = parseNum(v)
		case "cy":
			f.Area.Center.Y, err = parseNum(v)
		case "r":
			f.Area.Radius, err = parseNum(v)
		case "x0":
			f.Region.Min.X, err = parseNum(v)
		case "y0":
			f.Region.Min.Y, err = parseNum(v)
		case "x1":
			f.Region.Max.X, err = parseNum(v)
		case "y1":
			f.Region.Max.Y, err = parseNum(v)
		case "intensity":
			f.Intensity, err = parseNum(v)
		case "frac":
			f.Fraction, err = parseNum(v)
		case "rate":
			f.Rate, err = parseNum(v)
		case "prob":
			f.Prob, err = parseNum(v)
		case "of":
			switch strings.ToLower(v) {
			case "composite":
				f.Select = SelectComposite
			case "blue":
				f.Select = SelectBlue
			default:
				err = fmt.Errorf("unknown selector %q", v)
			}
		default:
			err = fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return f, fmt.Errorf("%s %s: %v", verb, kv, err)
		}
	}
	return f, nil
}

// String renders the plan back into the DSL (parseable round trip).
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s\n", p.Name)
	for _, f := range p.Faults {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders one fault as a DSL line.
func (f Fault) String() string {
	var b strings.Builder
	b.WriteString(f.Kind.String())
	switch f.Kind {
	case CrashPost:
		b.WriteString(" post")
	case Failover:
		if f.Warm {
			b.WriteString(" warm")
		} else {
			b.WriteString(" cold")
		}
	case JamWave:
		if f.Region != (geo.Rect{}) {
			b.WriteString(" region")
		}
	default:
		// Mirrors the parser: only crash, failover, and rectangular
		// jam carry positional operands.
	}
	fmt.Fprintf(&b, " at=%s", f.At)
	// Every nonzero field is emitted — even ones inert for this kind —
	// so that String is a faithful inverse of Parse and the fuzzed
	// parse→format→parse round trip is exact.
	if f.Duration != 0 {
		fmt.Fprintf(&b, " for=%s", f.Duration)
	}
	if f.X != 0 {
		fmt.Fprintf(&b, " x=%s", ftoa(f.X))
	}
	if f.Area.Center.X != 0 || f.Area.Center.Y != 0 || f.Area.Radius != 0 {
		fmt.Fprintf(&b, " cx=%s cy=%s r=%s",
			ftoa(f.Area.Center.X), ftoa(f.Area.Center.Y), ftoa(f.Area.Radius))
	}
	if f.Region != (geo.Rect{}) {
		fmt.Fprintf(&b, " x0=%s y0=%s x1=%s y1=%s",
			ftoa(f.Region.Min.X), ftoa(f.Region.Min.Y), ftoa(f.Region.Max.X), ftoa(f.Region.Max.Y))
	}
	if f.Intensity != 0 {
		fmt.Fprintf(&b, " intensity=%s", ftoa(f.Intensity))
	}
	if f.Fraction != 0 {
		fmt.Fprintf(&b, " frac=%s", ftoa(f.Fraction))
	}
	if f.Rate != 0 {
		fmt.Fprintf(&b, " rate=%s", ftoa(f.Rate))
	}
	if f.Prob != 0 {
		fmt.Fprintf(&b, " prob=%s", ftoa(f.Prob))
	}
	if f.Extra != 0 {
		fmt.Fprintf(&b, " add=%s", f.Extra)
	}
	if f.Select == SelectComposite {
		b.WriteString(" of=composite")
	}
	return b.String()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// parseNum parses a float field, rejecting NaN (a NaN fault parameter
// is always a mistake and breaks plan comparability).
func parseNum(v string) (float64, error) {
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(x) {
		return 0, fmt.Errorf("NaN is not a valid value")
	}
	return x, nil
}

// StandardPlan is the harness's reference disruption for a square map
// of the given side length: a 60s mid-map partition, a four-minute
// map-wide jam wave (a communications blackout at full intensity), a
// kill wave destroying 1/3 of the composite, and loss of the command
// post. It is the plan behind E14 and the `-faults standard` flag;
// Scale sweeps its severity.
func StandardPlan(size float64) *Plan {
	center := geo.Point{X: size / 2, Y: size / 2}
	p := &Plan{Name: "standard"}
	p.Add(Fault{Kind: Partition, At: 30 * time.Second, Duration: 60 * time.Second, X: size / 2})
	p.Add(Fault{Kind: JamWave, At: 60 * time.Second, Duration: 4 * time.Minute,
		Area: geo.Circle{Center: center, Radius: size}, Intensity: 0.9})
	p.Add(Fault{Kind: KillWave, At: 90 * time.Second, Fraction: 1.0 / 3, Select: SelectComposite})
	p.Add(Fault{Kind: CommandPostLoss, At: 95 * time.Second})
	return p
}
