package fault

import (
	"errors"
	"strings"
	"testing"
	"time"
)

var errPostDown = errors.New("command post is down")

// TestHarnessReportEndToEnd drives the harness with synthetic mission
// hooks whose degradation is scripted in virtual time, so every report
// field is checkable against the script: a detected-and-recovered
// command-post crash with a measured recovery gap, and a second crash
// near the horizon that never recovers. (The absorbed branch lives in
// TestHarnessAbsorbedFault — a fault report scans every sample after
// its onset, so an early harmless fault here would be blamed for the
// later crash dips.)
func TestHarnessReportEndToEnd(t *testing.T) {
	tgt := testTarget(t, 51)

	// Scripted mission state, advanced once per virtual second. The post
	// goes down at each CrashPost fault and is repaired (once) at 90s.
	var (
		done, total, lost uint64
		evidence          float64
		tracks            = 5
		postDown          bool
	)
	tgt.CrashPost = func() {
		postDown = true
		evidence, tracks = 0, 0
	}
	tgt.Eng.Schedule(90*time.Second, "test.repair", func() {
		postDown = false
		tracks = 5
	})
	ticker := tgt.Eng.Every(time.Second, "test.mission", func() {
		total += 10
		if postDown {
			lost += 10
		} else {
			done += 10
			evidence++
		}
	})
	defer ticker.Stop()

	plan := &Plan{Name: "report"}
	// Crash with repair at 90s: detected, recovered, gap measured.
	plan.Add(Fault{Kind: CrashPost, At: 60 * time.Second})
	// Crash 5s before the horizon: detected, never recovers.
	plan.Add(Fault{Kind: CrashPost, At: 115 * time.Second})

	h := &Harness{
		T:       tgt,
		Plan:    plan,
		Goodput: func() (uint64, uint64) { return done, total },
		Window:  5,
		Invariants: []Invariant{
			{Name: "total-monotone", Check: func() error { return nil }},
			{Name: "post-standing", Check: func() error {
				if postDown {
					return errPostDown
				}
				return nil
			}},
		},
		Recovery: RecoveryHooks{
			OrdersDelivered: func() uint64 { return done },
			OrdersLost:      func() uint64 { return lost },
			TrustEvidence:   func() float64 { return evidence },
			ConfirmedTracks: func() int { return tracks },
			PostUp:          func() bool { return !postDown },
		},
	}
	rep, err := h.Run(2 * time.Minute)
	if err != nil {
		t.Fatalf("harness run: %v", err)
	}

	// Pre-fault the script delivers everything: baseline 1.0. The last
	// window straddles the unrecovered second crash, so final is lower.
	if rep.Baseline != 1.0 {
		t.Errorf("baseline = %.2f, want 1.0", rep.Baseline)
	}
	if rep.Final >= rep.Baseline {
		t.Errorf("final %.2f not below baseline with a crash at the horizon", rep.Final)
	}
	if rep.Killed != 2 {
		t.Errorf("killed = %d, want 2 (one per crash)", rep.Killed)
	}

	if len(rep.Faults) != 2 {
		t.Fatalf("fault reports = %d, want 2", len(rep.Faults))
	}
	crash, late := rep.Faults[0], rep.Faults[1]
	if !crash.Detected || !crash.Recovered {
		t.Fatalf("repaired crash detected=%v recovered=%v, want both", crash.Detected, crash.Recovered)
	}
	if crash.TimeToDetect <= 0 || crash.TimeToDetect > 10*time.Second {
		t.Errorf("time-to-detect %v outside the scripted dip", crash.TimeToDetect)
	}
	// Repair lands 30s after onset; the windowed signal recrosses 0.9
	// within a few samples of it.
	if crash.TimeToRecover < 30*time.Second || crash.TimeToRecover > 45*time.Second {
		t.Errorf("time-to-recover %v, want 30s–45s", crash.TimeToRecover)
	}
	if crash.DegradedGoodput <= 0 || crash.DegradedGoodput >= rep.Baseline {
		t.Errorf("degraded goodput %.2f not inside (0, baseline)", crash.DegradedGoodput)
	}
	if !late.Detected || late.Recovered {
		t.Errorf("horizon crash detected=%v recovered=%v, want detected only", late.Detected, late.Recovered)
	}

	// Recovery gaps: one per CrashPost fault, in onset order.
	if len(rep.Recovery) != 2 {
		t.Fatalf("recovery gaps = %d, want 2", len(rep.Recovery))
	}
	first, second := rep.Recovery[0], rep.Recovery[1]
	if !first.Resumed {
		t.Fatalf("repaired crash not resumed: %+v", first)
	}
	if first.TimeToResume < 30*time.Second || first.TimeToResume > 35*time.Second {
		t.Errorf("time-to-resume %v, want just past the 30s outage", first.TimeToResume)
	}
	// 30s outage at 10 lost orders/s.
	if first.OrdersLost < 280 || first.OrdersLost > 320 {
		t.Errorf("orders lost %d, want ≈300", first.OrdersLost)
	}
	// The crash wiped ~59 evidence points; ~1/s accrues back by resumption.
	if first.StaleTrust < 50 {
		t.Errorf("stale trust %.1f, want most of the pre-crash ledger", first.StaleTrust)
	}
	if first.TrackFrag != 5 {
		t.Errorf("track frag = %d, want 5", first.TrackFrag)
	}
	if second.Resumed {
		t.Errorf("horizon crash resumed: %+v", second)
	}
	if second.TimeToResume != 5*time.Second {
		t.Errorf("unresumed gap observed %v, want horizon-At = 5s", second.TimeToResume)
	}

	// The post-standing invariant fails once per down tick: well past the
	// String truncation point, far under the 100 cap.
	if rep.OK() {
		t.Error("report OK with the post down for 35 ticks")
	}
	if n := len(rep.Violations); n < 20 || n > 50 {
		t.Errorf("violations = %d, want one per down tick", n)
	}

	// The rendered report names every scripted outcome.
	text := rep.String()
	for _, want := range []string{
		"fault report: baseline goodput 1.00",
		"NOT RECOVERED",
		"resumed in",
		"NOT RESUMED",
		"VIOLATION",
		"more violations",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q:\n%s", want, text)
		}
	}
}

// TestHarnessAbsorbedFault pins the absorbed branch: a fault the
// mission rides out without a goodput dip is reported undetected and
// the run stays clean.
func TestHarnessAbsorbedFault(t *testing.T) {
	tgt := testTarget(t, 52)
	var done, total uint64
	ticker := tgt.Eng.Every(time.Second, "test.mission", func() {
		total += 10
		done += 10
	})
	defer ticker.Stop()

	plan := &Plan{Name: "absorbed"}
	plan.Add(Fault{Kind: JamWave, At: 10 * time.Second, Duration: 5 * time.Second, Intensity: 0.1})
	h := &Harness{
		T:       tgt,
		Plan:    plan,
		Goodput: func() (uint64, uint64) { return done, total },
		Window:  5,
	}
	rep, err := h.Run(time.Minute)
	if err != nil {
		t.Fatalf("harness run: %v", err)
	}
	if rep.Baseline != 1.0 || rep.Final != 1.0 {
		t.Errorf("clean run baseline=%.2f final=%.2f, want 1.0/1.0", rep.Baseline, rep.Final)
	}
	if len(rep.Faults) != 1 || rep.Faults[0].Detected {
		t.Fatalf("absorbed fault misreported: %+v", rep.Faults)
	}
	if !rep.OK() {
		t.Errorf("clean run has violations: %v", rep.Violations)
	}
	if !strings.Contains(rep.String(), "absorbed") {
		t.Errorf("report text missing the absorbed marker:\n%s", rep.String())
	}
}
