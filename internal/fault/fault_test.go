package fault

import (
	"strings"
	"testing"
	"time"

	"iobt/internal/asset"
	"iobt/internal/attack"
	"iobt/internal/geo"
	"iobt/internal/mesh"
	"iobt/internal/sim"
)

// testTarget assembles a target from raw substrates — no core import,
// mirroring how the package avoids the dependency cycle.
func testTarget(t *testing.T, seed int64) Target {
	t.Helper()
	eng := sim.NewEngine(seed)
	terr := geo.NewOpenTerrain(1000, 1000)
	mix := asset.DefaultMix(100)
	pop := asset.Generate(terr, mix, eng.Stream("gen"))
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	net := mesh.New(eng, pop, terr, cfg)
	jam := attack.NewField(eng)
	net.SetJamming(jam.At)
	return Target{Eng: eng, Pop: pop, Net: net, Jam: jam, Smoke: attack.NewObscurants(eng)}
}

func aliveBlue(pop *asset.Population) int {
	n := 0
	for _, a := range pop.All() {
		if a.Alive() && a.Affiliation == asset.Blue {
			n++
		}
	}
	return n
}

func TestParseRoundTrip(t *testing.T) {
	src := `
# the reference disruption, annotated
plan roundtrip
partition at=30s for=1m0s x=600
partition at=40s for=20s cx=500 cy=500 r=250
jam at=1m0s for=1m0s cx=600 cy=600 r=300 intensity=0.9
kill at=1m30s frac=0.33 of=composite
kill at=2m0s frac=0.5 cx=100 cy=100 r=50
cploss at=1m35s
corrupt at=2m0s for=30s prob=0.2
delay at=2m0s for=30s prob=0.5 add=500ms
churn at=3m0s for=1m0s rate=0.2
smoke at=3m0s for=40s cx=500 cy=500 r=200
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "roundtrip" {
		t.Errorf("name = %q", p.Name)
	}
	if len(p.Faults) != 10 {
		t.Fatalf("parsed %d faults, want 10", len(p.Faults))
	}
	if f := p.Faults[0]; f.Kind != Partition || f.At != 30*time.Second ||
		f.Duration != time.Minute || f.X != 600 {
		t.Errorf("partition parsed as %+v", f)
	}
	if f := p.Faults[3]; f.Kind != KillWave || f.Select != SelectComposite || f.Fraction != 0.33 {
		t.Errorf("kill parsed as %+v", f)
	}
	if f := p.Faults[7]; f.Kind != Delay || f.Extra != 500*time.Millisecond || f.Prob != 0.5 {
		t.Errorf("delay parsed as %+v", f)
	}

	// String must render a plan that parses back to the same faults.
	rendered := p.String()
	p2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered plan: %v\n%s", err, rendered)
	}
	if len(p2.Faults) != len(p.Faults) || p2.Name != p.Name {
		t.Fatalf("round trip lost faults: %d vs %d", len(p2.Faults), len(p.Faults))
	}
	for i := range p.Faults {
		if p.Faults[i] != p2.Faults[i] {
			t.Errorf("fault %d round-tripped %+v -> %+v", i, p.Faults[i], p2.Faults[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",                         // no faults
		"quake at=30s",             // unknown verb
		"jam at=30s intensity",     // malformed kv
		"jam at=thirty",            // bad duration
		"kill at=30s of=red",       // unknown selector
		"jam at=30s wavelength=12", // unknown key
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// Errors carry line numbers.
	if _, err := Parse("jam at=10s\nbogus at=20s"); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line number: %v", err)
	}
}

func TestPlanScale(t *testing.T) {
	p := StandardPlan(1000)
	half := p.Scale(0.5)
	if len(half.Faults) != len(p.Faults) {
		t.Fatal("Scale changed fault count")
	}
	if half.Faults[1].Intensity != 0.45 {
		t.Errorf("jam intensity scaled to %v, want 0.45", half.Faults[1].Intensity)
	}
	if got, want := half.Faults[2].Fraction, 1.0/6; got < want-1e-12 || got > want+1e-12 {
		t.Errorf("kill fraction scaled to %v, want %v", got, want)
	}
	// Scheduling is untouched; probabilities clamp at 1.
	if half.Faults[0].At != p.Faults[0].At {
		t.Error("Scale moved fault onset")
	}
	boosted := (&Plan{Faults: []Fault{{Kind: Corrupt, Prob: 0.8}}}).Scale(2)
	if boosted.Faults[0].Prob != 1 {
		t.Errorf("prob scaled to %v, want clamp at 1", boosted.Faults[0].Prob)
	}
}

func TestFaultWindows(t *testing.T) {
	w := Fault{Kind: JamWave, At: 10 * time.Second, Duration: 20 * time.Second}
	if w.activeAt(5 * time.Second) {
		t.Error("active before onset")
	}
	if !w.activeAt(15 * time.Second) {
		t.Error("inactive mid-window")
	}
	if w.activeAt(30 * time.Second) {
		t.Error("active past the window")
	}
	if w.End() != 30*time.Second {
		t.Errorf("End = %v", w.End())
	}
	// A windowed fault without duration lasts to the horizon: End is the
	// attack package's "never" sentinel, zero.
	open := Fault{Kind: JamWave, At: 10 * time.Second}
	if !open.activeAt(time.Hour) || open.End() != 0 {
		t.Errorf("open window: active=%v end=%v", open.activeAt(time.Hour), open.End())
	}
	instant := Fault{Kind: KillWave, At: 10 * time.Second}
	if instant.End() != 10*time.Second {
		t.Errorf("instant End = %v", instant.End())
	}
}

func TestKillWaveDeterministic(t *testing.T) {
	victims := func() (killed int, alive int) {
		tgt := testTarget(t, 99)
		defer tgt.Net.Stop()
		plan := (&Plan{Name: "kw"}).Add(Fault{Kind: KillWave, At: time.Second, Fraction: 0.25})
		inj := Apply(tgt, plan)
		if err := tgt.Eng.Run(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		return int(inj.Killed.Value()), aliveBlue(tgt.Pop)
	}
	k1, a1 := victims()
	k2, a2 := victims()
	if k1 != k2 || a1 != a2 {
		t.Errorf("same seed diverged: killed %d/%d alive %d/%d", k1, k2, a1, a2)
	}
	if k1 == 0 {
		t.Error("kill wave killed nothing")
	}
}

func TestKillWaveAreaScoped(t *testing.T) {
	tgt := testTarget(t, 100)
	defer tgt.Net.Stop()
	area := geo.Circle{Center: geo.Point{X: 250, Y: 250}, Radius: 200}
	inside := 0
	for _, a := range tgt.Pop.All() {
		if a.Alive() && a.Affiliation == asset.Blue && area.Contains(a.Pos()) {
			inside++
		}
	}
	if inside == 0 {
		t.Skip("no blue assets inside the area for this seed")
	}
	plan := (&Plan{Name: "area"}).Add(Fault{Kind: KillWave, At: time.Second, Fraction: 1, Area: area})
	inj := Apply(tgt, plan)
	if err := tgt.Eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if int(inj.Killed.Value()) != inside {
		t.Errorf("killed %d, want every one of the %d inside", inj.Killed.Value(), inside)
	}
	for _, a := range tgt.Pop.All() {
		if a.Affiliation == asset.Blue && !area.Contains(a.Pos()) && !a.Alive() {
			t.Fatal("kill wave leaked outside its area")
		}
	}
}

func TestCommandPostLossUsesHook(t *testing.T) {
	tgt := testTarget(t, 101)
	defer tgt.Net.Stop()
	var post asset.ID = asset.None
	for _, a := range tgt.Pop.All() {
		if a.Alive() && a.Affiliation == asset.Blue {
			post = a.ID
			break
		}
	}
	if post == asset.None {
		t.Fatal("no blue asset")
	}
	tgt.CommandPost = func() asset.ID { return post }
	plan := (&Plan{Name: "cp"}).Add(Fault{Kind: CommandPostLoss, At: time.Second})
	inj := Apply(tgt, plan)
	if err := tgt.Eng.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if a := tgt.Pop.Get(post); a.Alive() {
		t.Error("designated command post survived cploss")
	}
	if inj.Killed.Value() != 1 {
		t.Errorf("Killed = %d, want 1", inj.Killed.Value())
	}
}

func TestChurnSpikeKillsDuringWindowOnly(t *testing.T) {
	tgt := testTarget(t, 102)
	defer tgt.Net.Stop()
	before := aliveBlue(tgt.Pop)
	plan := (&Plan{Name: "spike"}).Add(Fault{
		Kind: ChurnSpike, At: 10 * time.Second, Duration: 30 * time.Second, Rate: 2,
	})
	inj := Apply(tgt, plan)
	if err := tgt.Eng.Run(9 * time.Second); err != nil {
		t.Fatal(err)
	}
	if inj.Killed.Value() != 0 {
		t.Fatalf("churn spike fired before its onset")
	}
	if err := tgt.Eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	during := inj.Killed.Value()
	if during == 0 {
		t.Fatal("churn spike at 2/min killed nothing in 30s")
	}
	if err := tgt.Eng.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if inj.Killed.Value() != during {
		t.Error("churn spike kept killing after its window")
	}
	if got := aliveBlue(tgt.Pop); got != before-int(during) {
		t.Errorf("alive %d, want %d - %d", got, before, during)
	}
}

func TestPartitionSeversCrossLinks(t *testing.T) {
	eng := sim.NewEngine(5)
	terr := geo.NewOpenTerrain(1000, 1000)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 200
	for i := 0; i < 2; i++ {
		a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
			Mobility: &geo.Static{P: geo.Point{X: 450 + 100*float64(i), Y: 500}}}
		a.Energy = caps.EnergyCap
		pop.Add(a)
	}
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	net := mesh.New(eng, pop, terr, cfg)
	tgt := Target{Eng: eng, Pop: pop, Net: net, Jam: attack.NewField(eng)}
	plan := (&Plan{Name: "cut"}).Add(Fault{
		Kind: Partition, At: 10 * time.Second, Duration: 20 * time.Second, X: 500,
	})
	Apply(tgt, plan)

	send := func() bool {
		ok := false
		net.RegisterHandler(1, func(mesh.Message) { ok = true })
		//iobt:allow errdrop connectivity probe: a refused send during the partition window is the expected outcome the delivery flag asserts
		_ = net.Send(mesh.Message{From: 0, To: 1, Size: 10, Kind: "probe"})
		_ = eng.Run(2 * time.Second)
		return ok
	}
	if !send() {
		t.Fatal("no delivery before the partition")
	}
	_ = eng.Run(9 * time.Second) // into the window
	if send() {
		t.Error("delivery across an active partition")
	}
	_ = eng.Run(20 * time.Second) // past the window
	if !send() {
		t.Error("no delivery after the partition healed")
	}
}

func TestHealEndsUnboundedPartition(t *testing.T) {
	eng := sim.NewEngine(7)
	terr := geo.NewOpenTerrain(1000, 1000)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 200
	for i := 0; i < 2; i++ {
		a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
			Mobility: &geo.Static{P: geo.Point{X: 450 + 100*float64(i), Y: 500}}}
		a.Energy = caps.EnergyCap
		pop.Add(a)
	}
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	net := mesh.New(eng, pop, terr, cfg)
	tgt := Target{Eng: eng, Pop: pop, Net: net, Jam: attack.NewField(eng)}
	// The partition has no for=: without the heal it would last to the
	// horizon. The heal at 40s must end it.
	plan := (&Plan{Name: "healcut"}).
		Add(Fault{Kind: Partition, At: 10 * time.Second, X: 500}).
		Add(Fault{Kind: Heal, At: 40 * time.Second})
	Apply(tgt, plan)

	send := func() bool {
		ok := false
		net.RegisterHandler(1, func(mesh.Message) { ok = true })
		//iobt:allow errdrop connectivity probe: a refused send during the partition window is the expected outcome the delivery flag asserts
		_ = net.Send(mesh.Message{From: 0, To: 1, Size: 10, Kind: "probe"})
		_ = eng.Run(2 * time.Second)
		return ok
	}
	if !send() {
		t.Fatal("no delivery before the partition")
	}
	_ = eng.Run(9 * time.Second) // into the open-ended window
	if send() {
		t.Error("delivery across an active unbounded partition")
	}
	_ = eng.Run(30 * time.Second) // past the heal instant
	if !send() {
		t.Error("no delivery after heal ended the unbounded partition")
	}
}

func TestHealOnlyEndsEarlierPartitions(t *testing.T) {
	// A heal must not end partitions that begin after it.
	inj := &Injector{plan: (&Plan{Name: "order"}).
		Add(Fault{Kind: Partition, At: 10 * time.Second, X: 500}).
		Add(Fault{Kind: Heal, At: 20 * time.Second}).
		Add(Fault{Kind: Partition, At: 30 * time.Second, X: 500})}
	early := &inj.plan.Faults[0]
	late := &inj.plan.Faults[2]
	if inj.healed(early, 15*time.Second) {
		t.Error("partition healed before the heal instant")
	}
	if !inj.healed(early, 25*time.Second) {
		t.Error("earlier partition not healed after the heal instant")
	}
	if inj.healed(late, 40*time.Second) {
		t.Error("heal ended a partition that began after it")
	}
}

func TestJamRegionFootprint(t *testing.T) {
	tgt := testTarget(t, 103)
	defer tgt.Net.Stop()
	plan := (&Plan{Name: "regionjam"}).Add(Fault{
		Kind: JamWave, At: time.Second, Duration: time.Minute,
		Region:    geo.NewRect(geo.Point{X: 0, Y: 0}, geo.Point{X: 500, Y: 1000}),
		Intensity: 0.9,
	})
	Apply(tgt, plan)
	// Sample from inside a scheduled event: the engine clock advances
	// with events, and Field.At reads the clock for the window check.
	var inside, outside float64
	tgt.Eng.ScheduleAt(2*time.Second, "test.sample", func() {
		inside = tgt.Jam.At(geo.Point{X: 250, Y: 500})
		outside = tgt.Jam.At(geo.Point{X: 750, Y: 500})
	})
	if err := tgt.Eng.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if inside != 0.9 {
		t.Errorf("intensity inside the region = %v, want 0.9", inside)
	}
	if outside != 0 {
		t.Errorf("intensity outside the region = %v, want 0", outside)
	}
}

func TestParseHealAndJamRegion(t *testing.T) {
	p, err := Parse(`
plan gossip
partition at=30s x=600
jam region at=1m0s for=2m0s x0=200 y0=100 x1=600 y1=700 intensity=0.8
heal at=2m0s
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 3 {
		t.Fatalf("parsed %d faults, want 3", len(p.Faults))
	}
	if f := p.Faults[0]; f.Kind != Partition || f.Duration != 0 || f.X != 600 {
		t.Errorf("unbounded partition parsed as %+v", f)
	}
	want := geo.Rect{Min: geo.Point{X: 200, Y: 100}, Max: geo.Point{X: 600, Y: 700}}
	if f := p.Faults[1]; f.Kind != JamWave || f.Region != want || f.Intensity != 0.8 ||
		f.Area.Radius != 0 {
		t.Errorf("jam region parsed as %+v", f)
	}
	if f := p.Faults[2]; f.Kind != Heal || f.At != 2*time.Minute {
		t.Errorf("heal parsed as %+v", f)
	}

	rendered := p.String()
	p2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered plan: %v\n%s", err, rendered)
	}
	for i := range p.Faults {
		if p.Faults[i] != p2.Faults[i] {
			t.Errorf("fault %d round-tripped %+v -> %+v", i, p.Faults[i], p2.Faults[i])
		}
	}
	if !strings.Contains(rendered, "jam region") {
		t.Errorf("rendered plan lost the region operand:\n%s", rendered)
	}
}

func TestCorruptAndDelayHopFaults(t *testing.T) {
	eng := sim.NewEngine(6)
	terr := geo.NewOpenTerrain(1000, 1000)
	pop := asset.NewPopulation(terr)
	caps := asset.DefaultCaps(asset.ClassSensor)
	caps.RadioRange = 200
	for i := 0; i < 2; i++ {
		a := &asset.Asset{Class: asset.ClassSensor, Caps: caps, Online: true,
			Mobility: &geo.Static{P: geo.Point{X: 450 + 100*float64(i), Y: 500}}}
		a.Energy = caps.EnergyCap
		pop.Add(a)
	}
	cfg := mesh.DefaultConfig()
	cfg.StepMobility = false
	net := mesh.New(eng, pop, terr, cfg)
	tgt := Target{Eng: eng, Pop: pop, Net: net, Jam: attack.NewField(eng)}
	plan := (&Plan{Name: "mangle"}).
		Add(Fault{Kind: Corrupt, At: 0, Duration: time.Minute, Prob: 1}).
		Add(Fault{Kind: Delay, At: 0, Duration: time.Minute, Prob: 1, Extra: 2 * time.Second})
	Apply(tgt, plan)

	gotKind := ""
	var gotAt time.Duration
	net.RegisterHandler(1, func(m mesh.Message) { gotKind, gotAt = m.Kind, eng.Now() })
	start := eng.Now()
	if err := net.Send(mesh.Message{From: 0, To: 1, Size: 10, Kind: "order", Payload: "x"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	_ = eng.Run(10 * time.Second)
	if gotKind != "corrupt" {
		t.Errorf("delivered kind %q, want corrupt", gotKind)
	}
	if net.Corrupted.Value() != 1 {
		t.Errorf("Corrupted = %d", net.Corrupted.Value())
	}
	if gotAt-start < 2*time.Second {
		t.Errorf("delivered after %v, want >= 2s injected delay", gotAt-start)
	}
}
