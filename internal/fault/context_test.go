package fault

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestHarnessRunContextCancel pins the cancellation contract: a
// cancelled context aborts the harnessed run between events, the
// cancellation cause comes back as the error, and the harness ticker
// does not keep firing afterwards.
func TestHarnessRunContextCancel(t *testing.T) {
	tgt := testTarget(t, 41)
	plan := &Plan{Name: "ctx"}
	plan.Add(Fault{Kind: JamWave, At: 30 * time.Second, Duration: time.Minute,
		Intensity: 0.5})

	ctx, cancel := context.WithCancelCause(context.Background())
	cause := errors.New("worker reclaimed")
	tgt.Eng.Schedule(10*time.Second, "ctx.cancel", func() { cancel(cause) })

	h := &Harness{T: tgt, Plan: plan}
	rep, err := h.RunContext(ctx, 5*time.Minute)
	if rep != nil {
		t.Fatalf("cancelled run produced a report: %+v", rep)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("RunContext error = %v, want cause %v", err, cause)
	}
	if now := tgt.Eng.Now(); now > 11*time.Second {
		t.Errorf("engine kept running to %v after cancellation", now)
	}
	// The harness ticker was stopped on the abort path: draining the
	// remaining queue fires no further harness ticks.
	before := tgt.Eng.Processed()
	_ = tgt.Eng.Run(2 * time.Second)
	if tgt.Eng.Processed() == before {
		t.Log("queue already drained") // mobility off: acceptable
	}
}

// TestHarnessCancelLeaksNoGoroutines runs harnessed missions on worker
// goroutines, cancels them mid-flight, and asserts the goroutine count
// returns to its baseline: a stopped mission must unwind its worker
// completely rather than leaving recovery machinery parked behind a
// channel.
func TestHarnessCancelLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const workers = 4
	done := make(chan error, workers)
	cancels := make([]context.CancelFunc, workers)
	for i := 0; i < workers; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels[i] = cancel
		seed := int64(100 + i)
		go func() {
			tgt := testTarget(t, seed)
			plan := &Plan{Name: "leak"}
			plan.Add(Fault{Kind: ChurnSpike, At: 5 * time.Second, Duration: 10 * time.Minute, Rate: 0.1})
			h := &Harness{T: tgt, Plan: plan}
			_, err := h.RunContext(ctx, 24*time.Hour)
			done <- err
		}()
	}
	for _, cancel := range cancels {
		cancel()
	}
	for i := 0; i < workers; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Error("cancelled worker returned nil error")
			}
		//iobt:allow detrand leak test bounds real goroutine unwinding, not simulated time
		case <-time.After(30 * time.Second):
			t.Fatal("cancelled worker did not unwind")
		}
	}
	// Goroutine teardown is asynchronous; poll briefly before judging.
	//iobt:allow detrand wall-clock poll deadline for real goroutine teardown
	deadline := time.Now().Add(5 * time.Second)
	//iobt:allow detrand wall-clock poll loop for real goroutine teardown
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		//iobt:allow detrand real sleep between goroutine-count polls
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}
