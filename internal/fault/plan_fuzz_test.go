package fault

import (
	"strings"
	"testing"
	"time"
)

func TestParseCrashAndFailover(t *testing.T) {
	p, err := Parse(`
plan failover
crash post at=2m0s
failover warm at=2m30s
failover cold at=3m0s
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Faults) != 3 {
		t.Fatalf("parsed %d faults, want 3", len(p.Faults))
	}
	if f := p.Faults[0]; f.Kind != CrashPost || f.At != 2*time.Minute {
		t.Errorf("crash parsed as %+v", f)
	}
	if f := p.Faults[1]; f.Kind != Failover || !f.Warm || f.At != 150*time.Second {
		t.Errorf("failover warm parsed as %+v", f)
	}
	if f := p.Faults[2]; f.Kind != Failover || f.Warm {
		t.Errorf("failover cold parsed as %+v", f)
	}

	rendered := p.String()
	p2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered plan: %v\n%s", err, rendered)
	}
	for i := range p.Faults {
		if p.Faults[i] != p2.Faults[i] {
			t.Errorf("fault %d round-tripped %+v -> %+v", i, p.Faults[i], p2.Faults[i])
		}
	}
}

func TestParseCrashFailoverErrors(t *testing.T) {
	for _, bad := range []string{
		"crash at=30s",          // missing operand
		"crash tower at=30s",    // wrong operand
		"failover at=30s",       // missing disposition
		"failover tepid at=30s", // unknown disposition
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// Operand errors carry line numbers too.
	if _, err := Parse("jam at=10s\nfailover at=20s"); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks line number: %v", err)
	}
}

// FuzzParsePlan asserts the parse→format→parse fixed point: any source
// the parser accepts must render to a DSL string that re-parses to the
// identical fault list, and that rendering must itself be a fixed point
// (format(parse(format(parse(src)))) == format(parse(src))).
func FuzzParsePlan(f *testing.F) {
	f.Add("plan seed\npartition at=30s for=1m0s x=600")
	f.Add("jam at=1m0s for=1m0s cx=600 cy=600 r=300 intensity=0.9")
	f.Add("kill at=90s frac=0.33 of=composite\ncploss at=95s")
	f.Add("corrupt at=2m for=30s prob=0.2\ndelay at=2m for=30s add=500ms prob=0.5")
	f.Add("churn at=3m for=60s rate=0.2\nsmoke at=3m for=40s cx=500 cy=500 r=200")
	f.Add("crash post at=2m\nfailover warm at=2m30s")
	f.Add("crash post at=2m\nfailover cold at=2m30s")
	f.Add("# comment\n\nplan x\nkill at=1s frac=1e-3")
	f.Add("partition at=30s x=600\nheal at=2m")
	f.Add("jam region at=1m for=1m x0=200 y0=200 x1=600 y1=600 intensity=0.9")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; acceptance must round-trip
		}
		s1 := p.String()
		p2, err := Parse(s1)
		if err != nil {
			t.Fatalf("rendered plan does not re-parse: %v\nsource: %q\nrendered: %q", err, src, s1)
		}
		if len(p2.Faults) != len(p.Faults) || p2.Name != p.Name {
			t.Fatalf("round trip changed shape: %d/%q -> %d/%q\nsource: %q",
				len(p.Faults), p.Name, len(p2.Faults), p2.Name, src)
		}
		for i := range p.Faults {
			if p.Faults[i] != p2.Faults[i] {
				t.Fatalf("fault %d changed across round trip:\n  %+v\n  %+v\nsource: %q",
					i, p.Faults[i], p2.Faults[i], src)
			}
		}
		if s2 := p2.String(); s2 != s1 {
			t.Fatalf("format not a fixed point:\n  %q\n  %q\nsource: %q", s1, s2, src)
		}
	})
}
