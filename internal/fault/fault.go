// Package fault is the unified fault-injection subsystem: a
// deterministic, composable Plan of scheduled battlefield disruptions
// (network partitions, jam waves, kill waves, command-post loss,
// message corruption and delay, churn spikes, obscurant smoke) that
// compiles onto the sim engine, plus a Harness that wraps a mission run
// with continuous invariant checks and produces a per-fault recovery
// report (time-to-detect, time-to-recover, goodput during degradation).
//
// The paper treats degradation under attack as the normal operating
// regime — missions must "re-assemble upon damage within an
// appropriately short time" — so every subsystem needs a single place
// from which that damage can be injected reproducibly. All randomness
// comes from engine streams: the same seed and plan produce the same
// fault schedule, byte for byte.
package fault

import (
	"fmt"
	"sort"
	"time"

	"iobt/internal/asset"
	"iobt/internal/attack"
	"iobt/internal/geo"
	"iobt/internal/mesh"
	"iobt/internal/sim"
)

// Kind enumerates fault types.
type Kind int

// Fault kinds.
const (
	// Partition severs links: those crossing the vertical line x=X when
	// X is set, otherwise those crossing the boundary of Area.
	Partition Kind = iota + 1
	// JamWave activates a circular jammer for the fault window.
	JamWave
	// KillWave destroys a fraction of the selected population at At.
	KillWave
	// CommandPostLoss destroys the current command post at At.
	CommandPostLoss
	// Corrupt mangles frames in flight with probability Prob during the
	// window.
	Corrupt
	// Delay adds Extra latency per hop with probability Prob during the
	// window.
	Delay
	// ChurnSpike kills Rate (fraction/min) of the alive blue population
	// on every tick of the window — a burst of attrition on top of any
	// baseline churn.
	ChurnSpike
	// Smoke raises a visual obscurant over Area for the window.
	Smoke
	// CrashPost destroys the command post and the state that lived on it
	// (`crash post` in the DSL). Unlike CommandPostLoss — which only
	// kills the node and lets the runtime silently re-promote — a crash
	// also disables implicit re-promotion, so the mission has no post
	// until a Failover fault (or nothing) decides the disposition.
	CrashPost
	// Failover promotes a successor command post after a CrashPost
	// (`failover warm|cold`). Warm restores the last checkpoint and
	// requeues the checkpointed ARQ window; cold rebuilds from scratch.
	Failover
	// Heal ends, at At, every partition that began at or before At —
	// including unbounded ones (`partition` with no `for=`), which is
	// what makes "partition … heal" scenarios expressible: the gossip
	// experiments cut the map indefinitely and then reconnect it.
	Heal
)

// String names the kind (also the plan-DSL verb).
func (k Kind) String() string {
	switch k {
	case Partition:
		return "partition"
	case JamWave:
		return "jam"
	case KillWave:
		return "kill"
	case CommandPostLoss:
		return "cploss"
	case Corrupt:
		return "corrupt"
	case Delay:
		return "delay"
	case ChurnSpike:
		return "churn"
	case Smoke:
		return "smoke"
	case CrashPost:
		return "crash"
	case Failover:
		return "failover"
	case Heal:
		return "heal"
	default:
		return "unknown"
	}
}

// Selector names the population a KillWave draws victims from.
type Selector int

// Selectors.
const (
	// SelectBlue targets the alive blue population (inside Area when its
	// radius is positive).
	SelectBlue Selector = iota
	// SelectComposite targets the current mission composite, resolved
	// through Target.Composite.
	SelectComposite
)

// String names the selector.
func (s Selector) String() string {
	if s == SelectComposite {
		return "composite"
	}
	return "blue"
}

// Fault is one scheduled disruption. Fields are interpreted per Kind;
// unused fields are ignored.
type Fault struct {
	Kind Kind
	// At is the onset in virtual time.
	At time.Duration
	// Duration bounds windowed faults; zero means "until the horizon".
	Duration time.Duration
	// Area scopes geographic faults (jam, smoke, area partition,
	// area-scoped kill).
	Area geo.Circle
	// X, when nonzero, makes a Partition cut all links crossing the
	// vertical line x=X.
	X float64
	// Region scopes a rectangular jam footprint (`jam region`); it is
	// consulted only when Area is unset.
	Region geo.Rect
	// Intensity is the jam strength in [0,1].
	Intensity float64
	// Fraction is the kill-wave victim fraction in [0,1].
	Fraction float64
	// Rate is the churn-spike failure rate (fraction of alive blue
	// assets per minute).
	Rate float64
	// Prob is the per-hop probability for Corrupt/Delay (default 1).
	Prob float64
	// Extra is the added per-hop latency for Delay.
	Extra time.Duration
	// Select picks the kill-wave victim population.
	Select Selector
	// Warm selects the Failover disposition: restore from the last
	// checkpoint (true) vs. rebuild from scratch (false).
	Warm bool
}

// windowed reports whether the fault is an interval (vs. an instant).
func (f Fault) windowed() bool {
	// Every Kind is listed explicitly — no default — so that adding a
	// variant without deciding its windowing is an enumcase finding,
	// not a silent "instant".
	switch f.Kind {
	case Partition, JamWave, Corrupt, Delay, ChurnSpike, Smoke:
		return true
	case KillWave, CommandPostLoss, CrashPost, Failover, Heal:
		return false
	}
	return false
}

// activeAt reports whether a windowed fault covers time now.
func (f Fault) activeAt(now time.Duration) bool {
	if now < f.At {
		return false
	}
	return f.Duration == 0 || now < f.At+f.Duration
}

// End returns the end of the fault's effect window: At for instants,
// zero ("never") for windowed faults with no Duration.
func (f Fault) End() time.Duration {
	if !f.windowed() {
		return f.At
	}
	if f.Duration == 0 {
		return 0
	}
	return f.At + f.Duration
}

// Plan is an ordered set of faults. Order in Faults is preserved for
// reporting; scheduling is by each fault's At.
type Plan struct {
	Name   string
	Faults []Fault
}

// Add appends a fault and returns the plan for chaining.
func (p *Plan) Add(f Fault) *Plan {
	p.Faults = append(p.Faults, f)
	return p
}

// Scale returns a copy with jam intensities, kill fractions, corruption
// and delay probabilities, and churn rates multiplied by s (clamped to
// [0,1] where probabilities are concerned). It is the E14 knob: one
// plan swept over fault intensities.
func (p *Plan) Scale(s float64) *Plan {
	out := &Plan{Name: fmt.Sprintf("%s x%.2f", p.Name, s)}
	for _, f := range p.Faults {
		f.Intensity = clamp01(f.Intensity * s)
		f.Fraction = clamp01(f.Fraction * s)
		f.Prob = clamp01(f.Prob * s)
		f.Rate *= s
		out.Faults = append(out.Faults, f)
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Target bundles the world surfaces faults act on. core.World satisfies
// it field-for-field; tests can assemble one from raw substrates.
type Target struct {
	Eng   *sim.Engine
	Pop   *asset.Population
	Net   *mesh.Network
	Jam   *attack.Field
	Smoke *attack.Obscurants
	// Composite, when set, resolves SelectComposite kill waves to the
	// current mission members.
	Composite func() []asset.ID
	// CommandPost, when set, resolves CommandPostLoss; otherwise the
	// alive blue asset with the most compute is taken.
	CommandPost func() asset.ID
	// CrashPost, when set, implements the `crash post` verb: destroy the
	// post and its state and disable implicit re-promotion
	// (core.Runtime.CrashPost). When nil, the verb degrades to
	// CommandPostLoss semantics.
	CrashPost func()
	// Failover, when set, implements the `failover warm|cold` verb
	// (core.Runtime.Failover). When nil, the verb is a no-op.
	Failover func(warm bool)
}

// Injector is a compiled plan: its hooks are installed on the target
// network and its instantaneous faults are scheduled on the engine.
type Injector struct {
	t    Target
	plan *Plan
	rng  *sim.RNG

	// Killed counts assets destroyed by kill waves, command-post loss,
	// and churn spikes.
	Killed sim.Counter
}

// Apply compiles the plan onto the target: network hooks for
// partitions, corruption, and delay; jammers and obscurants with
// activation windows; scheduled kill waves, command-post loss, and
// churn spikes. All victim choices are drawn from a dedicated engine
// stream, so the injected damage is identical for identical seeds.
func Apply(t Target, p *Plan) *Injector {
	inj := &Injector{t: t, plan: p, rng: t.Eng.Stream("fault:" + p.Name)}
	hasPartition, hasHop := false, false
	for i := range p.Faults {
		f := p.Faults[i]
		switch f.Kind {
		case Partition:
			hasPartition = true
			// Refresh at the window edges so topology reacts promptly
			// rather than on the next maintenance tick.
			t.Eng.ScheduleAt(f.At, "fault.partition", t.Net.Refresh)
			if f.Duration > 0 {
				t.Eng.ScheduleAt(f.At+f.Duration, "fault.heal", t.Net.Refresh)
			}
		case JamWave:
			t.Jam.Add(attack.Jammer{
				Area: f.Area, Region: f.Region, Intensity: f.Intensity,
				From: f.At, Until: f.End(),
			})
		case Smoke:
			if t.Smoke != nil {
				t.Smoke.Add(attack.Obscurant{
					Area: f.Area, Blocks: asset.ModVisual,
					From: f.At, Until: f.End(),
				})
			}
		case Corrupt, Delay:
			hasHop = true
		case KillWave:
			t.Eng.ScheduleAt(f.At, "fault.kill", func() { inj.killWave(f) })
		case CommandPostLoss:
			t.Eng.ScheduleAt(f.At, "fault.cploss", func() { inj.killCommandPost() })
		case CrashPost:
			t.Eng.ScheduleAt(f.At, "fault.crash", func() { inj.crashPost() })
		case Failover:
			warm := f.Warm
			t.Eng.ScheduleAt(f.At, "fault.failover", func() {
				if inj.t.Failover != nil {
					inj.t.Failover(warm)
				}
			})
		case ChurnSpike:
			inj.scheduleChurnSpike(f)
		case Heal:
			// The heal itself acts through linkCut consulting the plan;
			// refresh at the instant so topology reconnects promptly.
			t.Eng.ScheduleAt(f.At, "fault.heal", t.Net.Refresh)
		}
	}
	if hasPartition {
		t.Net.SetLinkFault(inj.linkCut)
	}
	if hasHop {
		t.Net.SetHopFault(inj.hopEffect)
	}
	return inj
}

// linkCut implements active partitions: a link is severed when any
// active, un-healed partition fault separates its endpoints.
func (inj *Injector) linkCut(a, b geo.Point) bool {
	now := inj.t.Eng.Now()
	for i := range inj.plan.Faults {
		f := &inj.plan.Faults[i]
		if f.Kind != Partition || !f.activeAt(now) || inj.healed(f, now) {
			continue
		}
		if f.X != 0 {
			if (a.X < f.X) != (b.X < f.X) {
				return true
			}
			continue
		}
		if f.Area.Radius > 0 && f.Area.Contains(a) != f.Area.Contains(b) {
			return true
		}
	}
	return false
}

// healed reports whether a Heal fault has ended partition f by now: a
// heal at time h ends every partition whose onset is at or before h.
func (inj *Injector) healed(f *Fault, now time.Duration) bool {
	for i := range inj.plan.Faults {
		h := &inj.plan.Faults[i]
		if h.Kind == Heal && h.At >= f.At && h.At <= now {
			return true
		}
	}
	return false
}

// hopEffect implements active corruption/delay faults.
func (inj *Injector) hopEffect(*mesh.Message) mesh.HopEffect {
	now := inj.t.Eng.Now()
	var eff mesh.HopEffect
	for i := range inj.plan.Faults {
		f := &inj.plan.Faults[i]
		if !f.activeAt(now) {
			continue
		}
		switch f.Kind {
		case Corrupt:
			if inj.rng.Bool(probOrOne(f.Prob)) {
				eff.Corrupt = true
			}
		case Delay:
			if inj.rng.Bool(probOrOne(f.Prob)) {
				eff.Delay += f.Extra
			}
		default:
			// Only Corrupt and Delay act per hop; the other kinds
			// take effect through topology or scheduled events.
		}
	}
	return eff
}

func probOrOne(p float64) float64 {
	if p <= 0 {
		return 1
	}
	return p
}

// killWave destroys Fraction of the selected population. Victims are
// chosen by a deterministic shuffle of the sorted candidate list.
func (inj *Injector) killWave(f Fault) {
	var ids []asset.ID
	if f.Select == SelectComposite && inj.t.Composite != nil {
		ids = append(ids, inj.t.Composite()...)
	} else {
		for _, a := range inj.t.Pop.All() {
			if !a.Alive() || a.Affiliation != asset.Blue {
				continue
			}
			if f.Area.Radius > 0 && !f.Area.Contains(a.Pos()) {
				continue
			}
			ids = append(ids, a.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	n := int(f.Fraction * float64(len(ids)))
	if n <= 0 {
		return
	}
	inj.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:n] {
		if a := inj.t.Pop.Get(id); a != nil && a.Alive() {
			inj.t.Pop.Kill(id)
			inj.Killed.Inc()
		}
	}
	inj.t.Net.Refresh()
}

// crashPost implements the `crash post` verb through the target's
// CrashPost hook (which destroys the post and its resident state),
// degrading to plain command-post loss when no hook is wired.
func (inj *Injector) crashPost() {
	if inj.t.CrashPost != nil {
		inj.t.CrashPost()
		inj.Killed.Inc()
		return
	}
	inj.killCommandPost()
}

// killCommandPost destroys the current command post.
func (inj *Injector) killCommandPost() {
	var id asset.ID
	if inj.t.CommandPost != nil {
		id = inj.t.CommandPost()
	} else {
		id = asset.None
		best := -1.0
		for _, a := range inj.t.Pop.All() {
			if a.Alive() && a.Affiliation == asset.Blue && a.Caps.Compute > best {
				id, best = a.ID, a.Caps.Compute
			}
		}
	}
	if id == asset.None {
		return
	}
	if a := inj.t.Pop.Get(id); a != nil && a.Alive() {
		inj.t.Pop.Kill(id)
		inj.Killed.Inc()
	}
	inj.t.Net.Refresh()
}

// scheduleChurnSpike drives burst attrition over the fault window.
func (inj *Injector) scheduleChurnSpike(f Fault) {
	const tick = 5 * time.Second
	inj.t.Eng.ScheduleAt(f.At, "fault.churnspike", func() {
		var step func()
		step = func() {
			if !f.activeAt(inj.t.Eng.Now()) {
				return
			}
			var ids []asset.ID
			for _, a := range inj.t.Pop.All() {
				if a.Alive() && a.Affiliation == asset.Blue {
					ids = append(ids, a.ID)
				}
			}
			expect := f.Rate * float64(len(ids)) * tick.Minutes()
			n := inj.rng.Poisson(expect)
			for i := 0; i < n && len(ids) > 0; i++ {
				k := inj.rng.Intn(len(ids))
				inj.t.Pop.Kill(ids[k])
				inj.Killed.Inc()
				ids[k] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
			}
			if n > 0 {
				inj.t.Net.Refresh()
			}
			inj.t.Eng.Schedule(tick, "fault.churnspike", step)
		}
		step()
	})
}
