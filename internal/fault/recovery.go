package fault

import (
	"fmt"
	"strings"
	"time"
)

// RecoveryHooks are the mission surfaces the harness samples to measure
// the recovery gap around each `crash post` fault. core.Runtime.Probe
// provides a matching set; tests can assemble their own. Nil members
// are simply not sampled.
type RecoveryHooks struct {
	// OrdersDelivered is the cumulative successful command-channel
	// deliveries.
	OrdersDelivered func() uint64
	// OrdersLost is the cumulative terminal command failures
	// (undeliverable incidents).
	OrdersLost func() uint64
	// TrustEvidence is the evidence mass currently in the trust ledger.
	TrustEvidence func() float64
	// ConfirmedTracks is the current confirmed-track count.
	ConfirmedTracks func() int
	// PostUp reports whether a command post is currently standing.
	// Resumption requires it: deliveries completed by exchanges already
	// in flight when the post died must not count as recovery. Nil means
	// "always up".
	PostUp func() bool
}

// RecoveryGap quantifies what one command-post crash cost the mission.
type RecoveryGap struct {
	// CrashAt is the crash onset.
	CrashAt time.Duration
	// OrdersLost counts terminal command failures from the crash until
	// resumption (or the horizon, when command never resumed).
	OrdersLost uint64
	// Resumed is whether any command delivery succeeded after the crash;
	// TimeToResume is crash-to-first-delivery (crash-to-horizon when not
	// resumed).
	Resumed      bool
	TimeToResume time.Duration
	// StaleTrust is the trust evidence mass lost across the crash: what
	// the ledger held just before the post died minus what the promoted
	// successor holds at resumption. A warm restore recovers everything
	// up to the checkpoint age; a cold rebuild loses it all.
	StaleTrust float64
	// TrackFrag is the track-picture fragmentation: confirmed tracks
	// held just before the crash minus the post-crash minimum.
	TrackFrag int
}

// recoveryState accumulates per-crash measurements during the run.
type recoveryState struct {
	at      time.Duration
	started bool
	// Baselines sampled at the last tick before the crash took effect.
	lostAt     uint64
	evidenceAt float64
	tracksAt   int
	// Post-crash observations.
	minTracks  int
	lostSeen   uint64
	resumed    bool
	resumeAt   time.Duration
	staleTrust float64
}

// recoveryMonitor drives RecoveryGap measurement from the harness tick.
type recoveryMonitor struct {
	hooks RecoveryHooks
	crash []*recoveryState
	// prev* hold the previous tick's samples, so a crash's baseline is
	// what the mission held just *before* the post died (the crash tick
	// itself may share a timestamp with the state wipe).
	prevDelivered, prevLost uint64
	prevEvidence            float64
	prevTracks              int
}

func newRecoveryMonitor(hooks RecoveryHooks, plan *Plan) *recoveryMonitor {
	m := &recoveryMonitor{hooks: hooks}
	for _, f := range plan.Faults {
		if f.Kind == CrashPost {
			m.crash = append(m.crash, &recoveryState{at: f.At})
		}
	}
	if len(m.crash) == 0 {
		return nil
	}
	return m
}

func (m *recoveryMonitor) sample(now time.Duration) {
	var delivered, lost uint64
	var evidence float64
	var tracks int
	if m.hooks.OrdersDelivered != nil {
		delivered = m.hooks.OrdersDelivered()
	}
	if m.hooks.OrdersLost != nil {
		lost = m.hooks.OrdersLost()
	}
	if m.hooks.TrustEvidence != nil {
		evidence = m.hooks.TrustEvidence()
	}
	if m.hooks.ConfirmedTracks != nil {
		tracks = m.hooks.ConfirmedTracks()
	}
	postUp := true
	if m.hooks.PostUp != nil {
		postUp = m.hooks.PostUp()
	}
	for _, rc := range m.crash {
		if now < rc.at {
			continue
		}
		if !rc.started {
			rc.started = true
			rc.lostAt = m.prevLost
			rc.evidenceAt, rc.tracksAt = m.prevEvidence, m.prevTracks
			rc.minTracks = m.prevTracks
		}
		// The crash tick itself (now == at) samples mid-destruction state
		// — the fault event fires before the harness tick at a shared
		// timestamp — so post-crash observation starts strictly after it.
		if now <= rc.at {
			continue
		}
		if tracks < rc.minTracks {
			rc.minTracks = tracks
		}
		if !rc.resumed {
			rc.lostSeen = lost
			// Resumption = a delivery observed this tick while a promoted
			// post stands. The PostUp gate keeps exchanges that were
			// already in flight at the crash — whose ACKs drain to live
			// senders regardless — from counting as recovery.
			if postUp && delivered > m.prevDelivered {
				rc.resumed = true
				rc.resumeAt = now
				rc.staleTrust = rc.evidenceAt - evidence
				if rc.staleTrust < 0 {
					rc.staleTrust = 0
				}
			}
		}
	}
	m.prevDelivered, m.prevLost = delivered, lost
	m.prevEvidence, m.prevTracks = evidence, tracks
}

// gaps finalizes the measurements at the end of the run.
func (m *recoveryMonitor) gaps(horizon time.Duration) []RecoveryGap {
	out := make([]RecoveryGap, 0, len(m.crash))
	for _, rc := range m.crash {
		g := RecoveryGap{CrashAt: rc.at, Resumed: rc.resumed}
		if rc.started {
			g.OrdersLost = rc.lostSeen - rc.lostAt
			g.TrackFrag = rc.tracksAt - rc.minTracks
			if g.TrackFrag < 0 {
				g.TrackFrag = 0
			}
		}
		if rc.resumed {
			g.TimeToResume = rc.resumeAt - rc.at
			g.StaleTrust = rc.staleTrust
		} else {
			g.TimeToResume = horizon - rc.at
			g.StaleTrust = rc.evidenceAt // never recovered: all of it stale
		}
		out = append(out, g)
	}
	return out
}

// String renders one gap as an aligned text fragment.
func (g RecoveryGap) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crash at %s: lost %d orders", g.CrashAt, g.OrdersLost)
	if g.Resumed {
		fmt.Fprintf(&b, ", resumed in %.1fs", g.TimeToResume.Seconds())
	} else {
		fmt.Fprintf(&b, ", NOT RESUMED (%.0fs observed)", g.TimeToResume.Seconds())
	}
	fmt.Fprintf(&b, ", stale trust %.1f, track frag %d", g.StaleTrust, g.TrackFrag)
	return b.String()
}
