package fault

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Invariant is a property checked continuously while the harness runs.
// Check returns nil when the property holds.
type Invariant struct {
	Name  string
	Check func() error
}

// Harness wraps a mission run with a fault plan, continuous invariant
// checks, and goodput sampling, and produces a per-fault recovery
// report. The caller builds the world and starts the mission runtime;
// Run then injects the plan and drives the engine.
type Harness struct {
	T    Target
	Plan *Plan
	// Invariants are evaluated every CheckEvery tick; violations are
	// recorded (not fatal) so a run surfaces every broken property.
	Invariants []Invariant
	// CheckEvery is the sampling cadence (default 1s).
	CheckEvery time.Duration
	// Goodput returns cumulative (done, total) counters — e.g. on-time
	// actions vs. incidents. The harness differentiates them into an
	// instantaneous goodput signal.
	Goodput func() (done, total uint64)
	// DetectFrac and RecoverFrac set the degradation thresholds as
	// fractions of the pre-fault baseline (defaults 0.7 and 0.9).
	DetectFrac, RecoverFrac float64
	// Window is the smoothing window in samples (default 10).
	Window int
	// Recovery, when any hook is set, measures a RecoveryGap around each
	// `crash post` fault in the plan.
	Recovery RecoveryHooks
}

// sample is one goodput observation. goodput is the windowed ratio
// Σdone/Σtotal over the last Window ticks — a per-tick ratio would
// alias against periodic incident generation (completions lag their
// incidents, so they systematically land in different ticks).
type sample struct {
	at       time.Duration
	goodput  float64
	hasTotal bool // some incidents occurred within the window
	// cumDone/cumTotal are the cumulative counters at this tick; their
	// ratio is the all-history goodput used for the pre-fault baseline.
	cumDone, cumTotal uint64
}

// Violation is one invariant failure observation.
type Violation struct {
	At   time.Duration
	Name string
	Err  error
}

// FaultReport is the recovery record for one injected fault.
type FaultReport struct {
	Fault Fault
	// Detected is whether goodput dropped below the detect threshold
	// after onset; TimeToDetect is onset-to-drop.
	Detected     bool
	TimeToDetect time.Duration
	// Recovered is whether goodput returned above the recover threshold
	// after detection; TimeToRecover is onset-to-recovery.
	Recovered     bool
	TimeToRecover time.Duration
	// DegradedGoodput is the mean goodput between detection and
	// recovery (or the horizon).
	DegradedGoodput float64
}

// Report is the outcome of one harnessed run.
type Report struct {
	// Baseline is the mean goodput before the first fault onset.
	Baseline float64
	// Final is the mean goodput over the last Window samples.
	Final  float64
	Faults []FaultReport
	// Recovery holds one gap measurement per `crash post` fault (empty
	// when the plan has none or no Recovery hooks were set).
	Recovery []RecoveryGap
	// Violations holds every invariant failure (bounded at 100).
	Violations []Violation
	// Killed is the number of assets the injector destroyed.
	Killed uint64
}

// OK reports whether no invariant was violated.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// String renders the report as an aligned text block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault report: baseline goodput %.2f, final %.2f, %d assets destroyed\n",
		r.Baseline, r.Final, r.Killed)
	for _, fr := range r.Faults {
		fmt.Fprintf(&b, "  %-52s", fr.Fault.String())
		switch {
		case !fr.Detected:
			b.WriteString("  absorbed (no degradation)")
		case !fr.Recovered:
			fmt.Fprintf(&b, "  detect %5.1fs  NOT RECOVERED  degraded goodput %.2f",
				fr.TimeToDetect.Seconds(), fr.DegradedGoodput)
		default:
			fmt.Fprintf(&b, "  detect %5.1fs  recover %5.1fs  degraded goodput %.2f",
				fr.TimeToDetect.Seconds(), fr.TimeToRecover.Seconds(), fr.DegradedGoodput)
		}
		b.WriteByte('\n')
	}
	for _, g := range r.Recovery {
		fmt.Fprintf(&b, "  %s\n", g)
	}
	for i, v := range r.Violations {
		if i >= 5 {
			fmt.Fprintf(&b, "  ... %d more violations\n", len(r.Violations)-i)
			break
		}
		fmt.Fprintf(&b, "  VIOLATION at %s: %s: %v\n", v.At, v.Name, v.Err)
	}
	return b.String()
}

// Run injects the plan, drives the engine for horizon, and returns the
// recovery report. The mission runtime must already be started.
func (h *Harness) Run(horizon time.Duration) (*Report, error) {
	return h.RunContext(context.Background(), horizon)
}

// RunContext is Run with cooperative cancellation: a cancelled ctx
// aborts the engine between events, the harness ticker is stopped
// before returning (nothing the harness armed outlives the call), and
// the cancellation cause is surfaced as the error. A mission worker
// that is cancelled mid-run therefore unwinds completely instead of
// leaking its recovery machinery.
func (h *Harness) RunContext(ctx context.Context, horizon time.Duration) (*Report, error) {
	if h.CheckEvery <= 0 {
		h.CheckEvery = time.Second
	}
	if h.DetectFrac <= 0 {
		h.DetectFrac = 0.7
	}
	if h.RecoverFrac <= 0 {
		h.RecoverFrac = 0.9
	}
	if h.Window <= 0 {
		h.Window = 10
	}

	inj := Apply(h.T, h.Plan)

	var (
		samples    []sample
		violations []Violation
		lastDone   uint64
		lastTotal  uint64
		dones      []uint64
		totals     []uint64
	)
	var recMon *recoveryMonitor
	if h.Recovery.OrdersDelivered != nil || h.Recovery.OrdersLost != nil {
		recMon = newRecoveryMonitor(h.Recovery, h.Plan)
	}
	tick := h.T.Eng.Every(h.CheckEvery, "fault.harness", func() {
		now := h.T.Eng.Now()
		if recMon != nil {
			recMon.sample(now)
		}
		if h.Goodput != nil {
			done, total := h.Goodput()
			dones = append(dones, done-lastDone)
			totals = append(totals, total-lastTotal)
			lastDone, lastTotal = done, total
			lo := len(totals) - h.Window
			if lo < 0 {
				lo = 0
			}
			var sd, st uint64
			for i := lo; i < len(totals); i++ {
				sd += dones[i]
				st += totals[i]
			}
			s := sample{at: now, goodput: 1, hasTotal: st > 0,
				cumDone: done, cumTotal: total}
			if st > 0 {
				s.goodput = float64(sd) / float64(st)
			} else if len(samples) > 0 {
				s.goodput = samples[len(samples)-1].goodput // no traffic: hold
			}
			samples = append(samples, s)
		}
		for _, inv := range h.Invariants {
			if err := inv.Check(); err != nil && len(violations) < 100 {
				violations = append(violations, Violation{At: now, Name: inv.Name, Err: err})
			}
		}
	})
	err := h.T.Eng.RunContext(ctx, horizon)
	tick.Stop()
	if err != nil {
		return nil, err
	}

	rep := &Report{Violations: violations, Killed: inj.Killed.Value()}
	rep.Baseline = h.baseline(samples)
	if n := len(samples); n > 0 {
		lo := n - h.Window
		if lo < 0 {
			lo = 0
		}
		sum := 0.0
		for _, s := range samples[lo:] {
			sum += s.goodput
		}
		rep.Final = sum / float64(n-lo)
	}
	for _, f := range h.Plan.Faults {
		rep.Faults = append(rep.Faults, h.faultReport(f, samples, rep.Baseline))
	}
	if recMon != nil {
		rep.Recovery = recMon.gaps(horizon)
	}
	return rep, nil
}

// baseline is the cumulative goodput (done/total over the whole
// pre-fault period) at the last sample strictly before the first fault
// onset, 1.0 when no pre-fault traffic exists. The cumulative ratio is
// used rather than the windowed one because a short window over a low
// incident rate holds too few events to anchor thresholds on.
func (h *Harness) baseline(samples []sample) float64 {
	first := time.Duration(-1)
	for _, f := range h.Plan.Faults {
		if first < 0 || f.At < first {
			first = f.At
		}
	}
	base := 1.0
	for _, s := range samples {
		if first >= 0 && s.at >= first {
			break
		}
		if s.cumTotal > 0 {
			base = float64(s.cumDone) / float64(s.cumTotal)
		}
	}
	return base
}

// faultReport scans the sample series from the fault's onset for the
// degradation dip and the recovery crossing.
func (h *Harness) faultReport(f Fault, samples []sample, baseline float64) FaultReport {
	fr := FaultReport{Fault: f}
	detectAt := time.Duration(-1)
	recoverAt := time.Duration(-1)
	degSum, degN := 0.0, 0
	for _, s := range samples {
		if s.at < f.At {
			continue
		}
		if detectAt < 0 {
			if s.goodput < h.DetectFrac*baseline {
				detectAt = s.at
				fr.Detected = true
				fr.TimeToDetect = s.at - f.At
			}
			continue
		}
		if recoverAt < 0 {
			if s.hasTotal {
				degSum += s.goodput
				degN++
			}
			if s.goodput >= h.RecoverFrac*baseline {
				recoverAt = s.at
				fr.Recovered = true
				fr.TimeToRecover = s.at - f.At
			}
		}
	}
	if degN > 0 {
		fr.DegradedGoodput = degSum / float64(degN)
	}
	return fr
}
