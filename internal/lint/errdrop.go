package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop enforces error discipline on the recovery-critical paths: an
// error returned by a Restore method (the checkpoint.Snapshotter
// contract), checkpoint.Coordinator.RestoreLast, verify.ParseScenario,
// a codec Decode* helper, or a mesh delivery call (Network.Send /
// SendDirect / SendGeo) must not be discarded — not by calling as a
// bare statement, not by assigning to the blank identifier. A dropped
// restore error is a failover that silently resumes from garbage; a
// dropped send error is a message the conservation invariant will
// count as lost with no record of why. Handle the error, return it, or
// waive the site with a reasoned //iobt:allow errdrop comment.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "errors from Restore, RestoreLast, ParseScenario, Decode* helpers, and mesh " +
		"sends must be handled, returned, or explicitly waived — never discarded",
	Run: runErrDrop,
}

// errdropMethods are (package, type, method) triples whose final error
// result is load-bearing.
var errdropMethods = []struct {
	pkgPath, typeName, method string
}{
	{"iobt/internal/checkpoint", "Coordinator", "RestoreLast"},
	{"iobt/internal/mesh", "Network", "Send"},
	{"iobt/internal/mesh", "Network", "SendDirect"},
	{"iobt/internal/mesh", "Network", "SendGeo"},
}

// monitoredCall reports whether call's callee is under errdrop
// discipline and returns a label for the message.
func monitoredCall(p *Pass, call *ast.CallExpr) (string, bool) {
	fn := staticCallee(p.Info, call)
	if fn == nil {
		return "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return "", false
	}

	if recv := sig.Recv(); recv != nil {
		// Any Restore([]byte) error — the Snapshotter contract —
		// regardless of receiver type.
		if fn.Name() == "Restore" && sig.Params().Len() == 1 &&
			types.TypeString(sig.Params().At(0).Type(), nil) == "[]byte" {
			return recvLabel(recv) + ".Restore", true
		}
		for _, m := range errdropMethods {
			t := recv.Type()
			if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			named, isNamed := t.(*types.Named)
			if isNamed && fn.Name() == m.method && namedIs(named, m.pkgPath, m.typeName) {
				return m.typeName + "." + m.method, true
			}
		}
		return "", false
	}

	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch {
	case pkg.Path() == "iobt/internal/verify" && fn.Name() == "ParseScenario":
		return "verify.ParseScenario", true
	case strings.HasPrefix(fn.Name(), "Decode") && strings.HasPrefix(pkg.Path(), "iobt/"):
		return pkg.Name() + "." + fn.Name(), true
	}
	return "", false
}

func recvLabel(recv *types.Var) string {
	t := recv.Type()
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return named.Obj().Name()
	}
	return "receiver"
}

func runErrDrop(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, isCall := ast.Unparen(x.X).(*ast.CallExpr); isCall {
					if label, monitored := monitoredCall(p, call); monitored {
						p.Reportf(call.Pos(),
							"result of %s is discarded; the error is the only signal this path failed — handle it, return it, or waive with //iobt:allow errdrop <reason>", label)
					}
				}
			case *ast.GoStmt:
				if label, monitored := monitoredCall(p, x.Call); monitored {
					p.Reportf(x.Call.Pos(),
						"go %s discards the returned error; collect it in the goroutine and surface it", label)
				}
			case *ast.DeferStmt:
				if label, monitored := monitoredCall(p, x.Call); monitored {
					p.Reportf(x.Call.Pos(),
						"defer %s discards the returned error; wrap it in a closure that checks the result", label)
				}
			case *ast.AssignStmt:
				checkBlankAssign(p, x)
			}
			return true
		})
	}
}

// checkBlankAssign flags `_ = call()` and `v, _ := call()` where the
// blank lands on a monitored call's error result.
func checkBlankAssign(p *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		// Parallel assignment pairs lhs[i] with rhs[i]; an error can
		// only be blanked when its own rhs is a monitored call.
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
				continue
			}
			reportBlanked(p, rhs)
		}
		return
	}
	// Single rhs: the error is the LAST result; it is discarded when
	// the last lhs is blank.
	if len(as.Lhs) == 0 || !isBlank(as.Lhs[len(as.Lhs)-1]) {
		return
	}
	reportBlanked(p, as.Rhs[0])
}

func reportBlanked(p *Pass, rhs ast.Expr) {
	call, isCall := ast.Unparen(rhs).(*ast.CallExpr)
	if !isCall {
		return
	}
	if label, monitored := monitoredCall(p, call); monitored {
		p.Reportf(call.Pos(),
			"error from %s is assigned to _; a silent failure here corrupts recovery — handle it, return it, or waive with //iobt:allow errdrop <reason>", label)
	}
}

func isBlank(e ast.Expr) bool {
	id, isIdent := ast.Unparen(e).(*ast.Ident)
	return isIdent && id.Name == "_"
}
