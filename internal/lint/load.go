package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked unit ready for analysis.
type Package struct {
	// Path is the base import path ("iobt/internal/mesh"), with any
	// test-variant bracket suffix stripped.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	ForTest    string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load locates the packages matching patterns with the go tool,
// parses them, and type-checks them against the compiler's export
// data. Test files are folded in: when `go list -test` offers a
// test-augmented variant of a package, the variant replaces the base
// package, so _test.go files are held to the same rules as the code
// they exercise.
//
// dir is the working directory for the go tool ("" = current); it must
// be inside the module under analysis.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, exports, err := list(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	var out []*Package
	for _, lp := range pkgs {
		files, err := parseFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		conf := types.Config{
			Importer: &exportImporter{fset: fset, exports: exports, importMap: lp.ImportMap},
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		base := basePath(lp.ImportPath)
		tpkg, err := conf.Check(base, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", base, err)
		}
		out = append(out, &Package{Path: base, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// list runs `go list -test -deps -export -json` and selects the
// packages to analyze plus the export data of everything importable.
func list(dir string, patterns []string) ([]listPackage, map[string]string, error) {
	args := append([]string{
		"list", "-e", "-test", "-deps", "-export",
		"-json=ImportPath,ForTest,Name,Dir,Export,GoFiles,Standard,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	// variants maps a base import path to its selected listPackage; a
	// test-augmented variant wins over the plain package.
	variants := map[string]listPackage{}
	var order []string
	dec := json.NewDecoder(bytes.NewReader(outBytes))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Standard || lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		if strings.HasSuffix(lp.ImportPath, ".test") && lp.ForTest == "" {
			continue // synthesized test main package
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("lint: go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		base := basePath(lp.ImportPath)
		prev, seen := variants[base]
		if !seen {
			order = append(order, base)
		}
		// Prefer the variant with test files folded in (its ImportPath
		// carries a bracket suffix).
		if !seen || isTestVariant(lp.ImportPath) && !isTestVariant(prev.ImportPath) {
			variants[base] = lp
		}
	}

	// -deps lists the transitive closure; keep only packages the
	// patterns matched. The go tool has already expanded patterns to
	// import paths, so match on the module prefix when patterns contain
	// "...", else exact paths. Simpler and robust: re-list without
	// -deps to learn the selected set.
	selected, err := listSelected(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	var pkgs []listPackage
	for _, base := range order {
		if selected[base] {
			pkgs = append(pkgs, variants[base])
		}
	}
	return pkgs, exports, nil
}

// listSelected returns the base import paths matching patterns.
func listSelected(dir string, patterns []string) (map[string]bool, error) {
	cmd := exec.Command("go", append([]string{"list", "-e"}, patterns...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	sel := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line != "" {
			sel[line] = true
		}
	}
	return sel, nil
}

// basePath strips a test-variant bracket suffix:
// "p [p.test]" → "p".
func basePath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

func isTestVariant(importPath string) bool {
	return strings.IndexByte(importPath, ' ') >= 0
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// exportImporter resolves imports through the compiler's export data,
// as located by `go list -export`. importMap carries per-package
// resolution (vendoring, test variants).
type exportImporter struct {
	fset      *token.FileSet
	exports   map[string]string
	importMap map[string]string
	gc        types.Importer
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if ei.gc == nil {
		ei.gc = importer.ForCompiler(ei.fset, "gc", func(path string) (io.ReadCloser, error) {
			resolved := path
			if mapped, ok := ei.importMap[path]; ok {
				resolved = mapped
			}
			file, ok := ei.exports[resolved]
			if !ok {
				return nil, fmt.Errorf("lint: no export data for %q", resolved)
			}
			return os.Open(file)
		})
	}
	return ei.gc.Import(path)
}

// LoadFixture parses and type-checks a single directory of Go files as
// one package — the analysistest path, for fixtures under testdata/
// that the go tool will not list. Imports are resolved by asking
// `go list -export` for the fixture's import closure, so fixtures may
// import both the standard library and this module's packages.
func LoadFixture(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}

	// Resolve the fixture's imports (transitively) to export data.
	importSet := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	imports := make([]string, 0, len(importSet))
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	exports := map[string]string{}
	if len(imports) > 0 {
		args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Export"}, imports...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("lint: go list %v: %v\n%s", imports, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var lp listPackage
			if err := dec.Decode(&lp); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("lint: decoding go list output: %v", err)
			}
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}

	conf := types.Config{Importer: &exportImporter{fset: fset, exports: exports}}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	path := "iobtlint/fixture/" + filepath.Base(dir)
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %v", dir, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
