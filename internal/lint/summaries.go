package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// A Program is the whole-repo view the interprocedural analyzers run
// on: every loaded package, the call graph over them, and one taint
// Summary per function, computed bottom-up over the call graph's
// strongly connected components so each function is analyzed once with
// all of its callees' summaries in hand (members of a cycle iterate to
// a fixpoint). Findings discovered while summarizing are attributed to
// the package they occur in and emitted when that package's dettaint
// pass runs, so suppression comments and fixture want-directives see
// them like any other diagnostic.
type Program struct {
	Pkgs  []*Package
	Graph *CallGraph

	summaries   map[string]*Summary
	methodImpls map[string][]string
	findings    []programFinding
	seen        map[string]bool

	// notes indexes the //iobt: shard-safety annotations across every
	// loaded package (see annotations.go).
	notes *annotations
	// captures maps a function key to the parameter indices (receiver
	// first, matching Summary numbering) that flow into an event closure
	// the function schedules or returns — the interprocedural leg of the
	// gocapture analyzer.
	captures map[string][]int
	// allocFacts maps a function key to short descriptions of the
	// per-event heap allocations it performs, directly or transitively —
	// the interprocedural leg of the hotalloc analyzer.
	allocFacts map[string][]string
}

// maxSCCIterations bounds fixpoint iteration inside one recursive
// cycle; taint sets only grow, so convergence is fast in practice.
const maxSCCIterations = 8

// NewProgram builds the call graph and computes every function's
// summary in one bottom-up SCC pass.
func NewProgram(pkgs []*Package) *Program {
	graph := buildCallGraph(pkgs)
	prog := &Program{
		Pkgs:        pkgs,
		Graph:       graph,
		summaries:   map[string]*Summary{},
		seen:        map[string]bool{},
		methodImpls: graph.methodImpls,
		notes:       scanNotes(pkgs),
		captures:    map[string][]int{},
		allocFacts:  map[string][]string{},
	}

	for _, comp := range prog.Graph.sccs() {
		if len(comp) == 1 {
			prog.summaries[comp[0].Key] = analyzeFunc(prog, comp[0])
			continue
		}
		// Cycle: iterate the whole component until summaries stabilize.
		for iter := 0; iter < maxSCCIterations; iter++ {
			changed := false
			for _, node := range comp {
				before := ""
				if s := prog.summaries[node.Key]; s != nil {
					before = s.fingerprint()
				}
				next := analyzeFunc(prog, node)
				if next.fingerprint() != before {
					changed = true
				}
				prog.summaries[node.Key] = next
			}
			if !changed {
				break
			}
		}
	}
	// Second bottom-up pass: capture summaries for gocapture. The same
	// SCC order gives each function its callees' capture sets; cycles
	// iterate to a fixpoint (capture sets only grow).
	for _, comp := range prog.Graph.sccs() {
		if len(comp) == 1 {
			if set := computeCaptures(prog, comp[0]); len(set) > 0 {
				prog.captures[comp[0].Key] = set
			}
			continue
		}
		for iter := 0; iter < maxSCCIterations; iter++ {
			changed := false
			for _, node := range comp {
				next := computeCaptures(prog, node)
				if len(next) != len(prog.captures[node.Key]) {
					changed = true
				}
				if len(next) > 0 {
					prog.captures[node.Key] = next
				}
			}
			if !changed {
				break
			}
		}
	}

	// Third bottom-up pass: allocation summaries for hotalloc. Same SCC
	// order; cycles iterate to a fixpoint (fact lists are capped, and
	// comparison is on the rendered facts).
	for _, comp := range prog.Graph.sccs() {
		if len(comp) == 1 {
			if facts := computeAllocFacts(prog, comp[0]); len(facts) > 0 {
				prog.allocFacts[comp[0].Key] = facts
			}
			continue
		}
		for iter := 0; iter < maxSCCIterations; iter++ {
			changed := false
			for _, node := range comp {
				next := computeAllocFacts(prog, node)
				if strings.Join(next, "\x00") != strings.Join(prog.allocFacts[node.Key], "\x00") {
					changed = true
				}
				if len(next) > 0 {
					prog.allocFacts[node.Key] = next
				}
			}
			if !changed {
				break
			}
		}
	}

	sort.Slice(prog.findings, func(i, j int) bool {
		a, b := prog.findings[i], prog.findings[j]
		if a.pkgPath != b.pkgPath {
			return a.pkgPath < b.pkgPath
		}
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.msg < b.msg
	})
	return prog
}

// report records one dettaint finding, deduplicating across fixpoint
// iterations and re-analysis.
func (prog *Program) report(pkg *Package, pos token.Pos, format string, args ...any) {
	f := programFinding{pkgPath: pkg.Path, pos: pos, msg: fmt.Sprintf(format, args...)}
	k := fmt.Sprintf("%s|%d|%s", f.pkgPath, f.pos, f.msg)
	if prog.seen[k] {
		return
	}
	prog.seen[k] = true
	prog.findings = append(prog.findings, f)
}

// findingsFor returns the dettaint findings recorded for one package.
func (prog *Program) findingsFor(path string) []programFinding {
	var out []programFinding
	for _, f := range prog.findings {
		if f.pkgPath == path {
			out = append(out, f)
		}
	}
	return out
}

// Summary returns the computed summary for a function key, for tests
// and debugging ("(*iobt/internal/trust.Ledger).Snapshot").
func (prog *Program) Summary(key string) *Summary { return prog.summaries[key] }

// Analyze runs the analyzers over every package in the program and
// returns all findings globally ordered by file, line, column, and
// analyzer — stable for CI diffing.
func (prog *Program) Analyze(as []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		out = append(out, prog.analyzePackage(pkg, as)...)
	}
	sortDiagnostics(out)
	return out
}

// AnalyzeMatching is Analyze restricted to packages whose import path
// matches the glob (see MatchPackage); the program-wide call graph and
// summaries still span every loaded package, so cross-package taint
// into a filtered package is not lost.
func (prog *Program) AnalyzeMatching(as []*Analyzer, glob string) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		if MatchPackage(glob, pkg.Path) {
			out = append(out, prog.analyzePackage(pkg, as)...)
		}
	}
	sortDiagnostics(out)
	return out
}

// MatchPackage reports whether a package import path matches a
// path-glob: a literal path, a "..." suffix for subtree matches
// ("iobt/internal/..."), or "*" wildcards within one path segment
// ("iobt/*/mesh"). An empty glob matches everything.
func MatchPackage(glob, path string) bool {
	if glob == "" || glob == "..." {
		return true
	}
	if prefix, isTree := strings.CutSuffix(glob, "/..."); isTree {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	gs := strings.Split(glob, "/")
	ps := strings.Split(path, "/")
	if len(gs) != len(ps) {
		return false
	}
	for i := range gs {
		if !segMatch(gs[i], ps[i]) {
			return false
		}
	}
	return true
}

// segMatch matches one path segment against a pattern where '*'
// matches any run of characters.
func segMatch(pat, s string) bool {
	parts := strings.Split(pat, "*")
	if len(parts) == 1 {
		return pat == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for _, p := range parts[1 : len(parts)-1] {
		i := strings.Index(s, p)
		if i < 0 {
			return false
		}
		s = s[i+len(p):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}
