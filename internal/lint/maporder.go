package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose iteration order can leak
// into anything the determinism contract covers: checkpoint encoders,
// journals and other writers, RNG draws, simulation-event scheduling,
// or slices that escape the loop unsorted. Go randomizes map iteration
// per run, so any of these turns same-seed runs into different traces
// (or different snapshot bytes, breaking the replay verifier's digest
// comparison). The fix is the repo's standard idiom: collect the keys,
// sort them, iterate the sorted slice (see trust.Ledger.Snapshot).
// Collecting into a slice that IS sorted before use in the same
// function is recognized and allowed.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "forbid map iteration feeding snapshots, journals, metrics output, " +
		"RNG draws, event scheduling, or escaping slices unless the keys are sorted first",
	Run: runMapOrder,
}

// orderedWriteMethods are method names that emit bytes in call order
// regardless of receiver: writing them under a randomized iteration
// order produces different output every run.
var orderedWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "Encode": true,
}

// orderedPkgFuncs are package-level functions that emit in call order.
var orderedPkgFuncs = map[string]map[string]bool{
	"fmt": {
		"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Print": true, "Printf": true, "Println": true,
	},
	"encoding/binary": {"Write": true},
}

// sortFuncs recognize "the collected slice is sorted before use".
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Strings": true, "Ints": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

func runMapOrder(p *Pass) {
	for _, f := range p.Files {
		// Collect every map-range with its innermost enclosing function
		// body, so the sorted-later check scans the right scope.
		type mapRange struct {
			rs *ast.RangeStmt
			fn *ast.BlockStmt
		}
		var ranges []mapRange
		var fnStack []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case nil:
				return false
			case *ast.FuncDecl:
				if x.Body != nil {
					fnStack = append(fnStack, x.Body)
					walkCollect(p, x.Body, &fnStack, func(rs *ast.RangeStmt, fn *ast.BlockStmt) {
						ranges = append(ranges, mapRange{rs, fn})
					})
					fnStack = fnStack[:len(fnStack)-1]
				}
				return false
			}
			return true
		})
		for _, mr := range ranges {
			checkMapRange(p, mr.rs, mr.fn)
		}
	}
}

// walkCollect walks body tracking nested function literals, invoking
// found for every range-over-map with its innermost function body.
func walkCollect(p *Pass, body *ast.BlockStmt, fnStack *[]*ast.BlockStmt, found func(*ast.RangeStmt, *ast.BlockStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if x.Body != nil {
				*fnStack = append(*fnStack, x.Body)
				walkCollect(p, x.Body, fnStack, found)
				*fnStack = (*fnStack)[:len(*fnStack)-1]
			}
			return false
		case *ast.RangeStmt:
			if t := p.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					found(x, (*fnStack)[len(*fnStack)-1])
				}
			}
		}
		return true
	})
}

// checkMapRange inspects one range-over-map for order-sensitive sinks.
func checkMapRange(p *Pass, rs *ast.RangeStmt, fn *ast.BlockStmt) {
	reported := false
	once := func(pos token.Pos, sink string) {
		if !reported {
			reported = true
			p.Reportf(rs.Pos(), "map iteration order is randomized but this loop %s; collect and sort the keys first (see trust.Ledger.Snapshot)", sink)
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			// A closure built per iteration inherits the same hazard
			// (its registration order is the map order); keep walking.
			return true
		case *ast.CallExpr:
			if sel, isSel := x.Fun.(*ast.SelectorExpr); isSel {
				if pkgPath, name, ok := pkgQualified(p.Info, sel); ok {
					if orderedPkgFuncs[pkgPath][name] {
						once(x.Pos(), "writes formatted output ("+pkgPath+"."+name+")")
					}
					return true
				}
				named := receiverNamed(p.Info, sel)
				switch {
				case namedIs(named, "iobt/internal/checkpoint", "Encoder"):
					once(x.Pos(), "encodes checkpoint bytes")
				case namedIs(named, "iobt/internal/sim", "RNG"):
					once(x.Pos(), "draws from the seeded RNG (draw count becomes order-dependent)")
				case namedIs(named, "iobt/internal/sim", "Engine"):
					once(x.Pos(), "schedules simulation events (queue tie-break follows insertion order)")
				case orderedWriteMethods[sel.Sel.Name]:
					once(x.Pos(), "writes ordered output ("+sel.Sel.Name+")")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, isCall := rhs.(*ast.CallExpr)
				if !isCall || i >= len(x.Lhs) {
					continue
				}
				id, isIdent := call.Fun.(*ast.Ident)
				if !isIdent || id.Name != "append" {
					continue
				}
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
					continue
				}
				target := rootIdent(x.Lhs[i])
				if target == nil {
					continue
				}
				obj := p.Info.ObjectOf(target)
				if obj == nil || obj.Pos() == token.NoPos {
					continue
				}
				// Appending to a loop-local slice is the loop's own
				// business; only escapes matter.
				if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
					continue
				}
				if !sortedAfter(p, fn, rs, obj) {
					once(x.Pos(), "appends to `"+obj.Name()+"` which escapes the loop unsorted")
				}
			}
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sort function after
// the range statement within the enclosing function body. Both the
// stdlib sorters and local helpers following the sortXxx naming
// convention (sortNodeIDs, sortLinks) count.
func sortedAfter(p *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		isSorter := false
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			pkgPath, name, ok := pkgQualified(p.Info, fun)
			isSorter = ok && sortFuncs[pkgPath][name]
		case *ast.Ident:
			isSorter = strings.HasPrefix(strings.ToLower(fun.Name), "sort")
		}
		if !isSorter {
			return true
		}
		if root := rootIdent(call.Args[0]); root != nil && p.Info.ObjectOf(root) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
