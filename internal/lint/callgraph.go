package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file builds the whole-program call graph the interprocedural
// analyzers (dettaint) run on. Nodes are functions keyed by their
// canonical full name — types.Func.FullName() renders identically for
// the same function seen from different type-check universes, which
// matters because each loaded package is checked against export data
// and therefore holds its own object for every imported function.
//
// Edges cover static calls (package functions, methods on concrete
// receivers) and interface dispatch resolved class-hierarchy style: a
// call through an interface method I.M fans out to every concrete
// method named M with an identical non-receiver signature among the
// analyzed packages. Calls through plain function values are not
// tracked; function literals are inlined into their enclosing
// declaration (the taint engine walks them the same way), so a closure
// scheduled from the function that builds it is still seen.

// A CGNode is one function in the call graph.
type CGNode struct {
	// Key is the canonical function key, e.g.
	// "(*iobt/internal/mesh.Network).Send" or
	// "iobt/internal/verify.ParseScenario".
	Key string
	// Decl is the function's declaration; nil for functions whose body
	// is outside the analyzed packages.
	Decl *ast.FuncDecl
	// Pkg is the analyzed package declaring the function.
	Pkg *Package
	// Out lists callee keys, deduplicated and sorted.
	Out []string

	outSet map[string]bool
}

// A CallGraph is the whole-program static call graph.
type CallGraph struct {
	// Nodes indexes every function declared in the analyzed packages.
	Nodes map[string]*CGNode
	// methodImpls maps "name|sig" to the keys of concrete methods, for
	// resolving interface dispatch at call sites.
	methodImpls map[string][]string
}

// funcKey canonicalizes a function object across type-check universes.
func funcKey(fn *types.Func) string { return fn.FullName() }

// sigKey renders a function's non-receiver signature with
// package-path-qualified types, for matching interface methods to
// their implementations across universes.
func sigKey(sig *types.Signature) string {
	q := func(p *types.Package) string { return p.Path() }
	parts := make([]string, 0, sig.Params().Len()+sig.Results().Len()+1)
	for i := 0; i < sig.Params().Len(); i++ {
		parts = append(parts, types.TypeString(sig.Params().At(i).Type(), q))
	}
	parts = append(parts, "→")
	for i := 0; i < sig.Results().Len(); i++ {
		parts = append(parts, types.TypeString(sig.Results().At(i).Type(), q))
	}
	return strings.Join(parts, ",")
}

// buildCallGraph indexes all function declarations and resolves call
// edges over pkgs.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: map[string]*CGNode{}, methodImpls: map[string][]string{}}
	methodImpls := g.methodImpls

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, isFunc := decl.(*ast.FuncDecl)
				if !isFunc || fd.Body == nil {
					continue
				}
				fn, isFn := pkg.Info.Defs[fd.Name].(*types.Func)
				if !isFn {
					continue
				}
				key := funcKey(fn)
				g.Nodes[key] = &CGNode{Key: key, Decl: fd, Pkg: pkg, outSet: map[string]bool{}}
				sig := fn.Type().(*types.Signature)
				if recv := sig.Recv(); recv != nil {
					if _, isIface := recv.Type().Underlying().(*types.Interface); !isIface {
						mk := fn.Name() + "|" + sigKey(sig)
						methodImpls[mk] = append(methodImpls[mk], key)
					}
				}
			}
		}
	}

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, isFunc := decl.(*ast.FuncDecl)
				if !isFunc || fd.Body == nil {
					continue
				}
				fn, isFn := pkg.Info.Defs[fd.Name].(*types.Func)
				if !isFn {
					continue
				}
				node := g.Nodes[funcKey(fn)]
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, isCall := n.(*ast.CallExpr)
					if !isCall {
						return true
					}
					for _, callee := range calleeKeys(pkg.Info, call, methodImpls) {
						node.outSet[callee] = true
					}
					return true
				})
			}
		}
	}

	for _, node := range g.Nodes {
		node.Out = make([]string, 0, len(node.outSet))
		for k := range node.outSet {
			node.Out = append(node.Out, k)
		}
		sort.Strings(node.Out)
	}
	for _, impls := range methodImpls {
		sort.Strings(impls)
	}
	return g
}

// staticCallee resolves call to the single *types.Func it statically
// invokes, or nil for builtins, conversions, and function values.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeKeys resolves one call site to the function keys it may reach:
// the static callee, or the dispatch set for an interface method call.
func calleeKeys(info *types.Info, call *ast.CallExpr, methodImpls map[string][]string) []string {
	fn := staticCallee(info, call)
	if fn == nil {
		return nil
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
			return methodImpls[fn.Name()+"|"+sigKey(sig)]
		}
	}
	return []string{funcKey(fn)}
}

// sccs returns the strongly connected components of the graph in
// reverse topological order (callees before callers), so one bottom-up
// pass sees every callee summary before it is needed. Tarjan's
// algorithm emits components in exactly that order.
func (g *CallGraph) sccs() [][]*CGNode {
	keys := make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var order [][]*CGNode
	next := 0

	var strongConnect func(k string)
	strongConnect = func(k string) {
		index[k] = next
		low[k] = next
		next++
		stack = append(stack, k)
		onStack[k] = true
		for _, out := range g.Nodes[k].Out {
			if _, known := g.Nodes[out]; !known {
				continue // external function: no body, no summary cycle
			}
			if _, visited := index[out]; !visited {
				strongConnect(out)
				if low[out] < low[k] {
					low[k] = low[out]
				}
			} else if onStack[out] && index[out] < low[k] {
				low[k] = index[out]
			}
		}
		if low[k] == index[k] {
			var comp []*CGNode
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, g.Nodes[top])
				if top == k {
					break
				}
			}
			sort.Slice(comp, func(i, j int) bool { return comp[i].Key < comp[j].Key })
			order = append(order, comp)
		}
	}
	for _, k := range keys {
		if _, visited := index[k]; !visited {
			strongConnect(k)
		}
	}
	return order
}

// WriteDOT dumps the graph in Graphviz DOT form, nodes and edges in
// deterministic order (iobtlint -graph).
func (g *CallGraph) WriteDOT(w io.Writer) error {
	keys := make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if _, err := fmt.Fprintln(w, "digraph iobt {"); err != nil {
		return err
	}
	for _, k := range keys {
		fmt.Fprintf(w, "  %q;\n", k)
	}
	for _, k := range keys {
		for _, out := range g.Nodes[k].Out {
			if _, known := g.Nodes[out]; known {
				fmt.Fprintf(w, "  %q -> %q;\n", k, out)
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
