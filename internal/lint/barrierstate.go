package lint

import (
	"go/ast"
	"go/types"
)

// BarrierState guards the sharded engine's shard-local state. Fields
// annotated //iobt:barrier-only (the per-lane event heap, staged
// mailbox, migration list, local clock) belong to exactly one worker
// while a window executes, and to the coordinating goroutine between
// windows; touching them from anywhere else is a race the detector only
// catches if a test happens to collide. The analyzer makes the
// discipline structural: every access to a barrier-only field must sit
// in a function annotated //iobt:barrier (it runs between barriers, or
// as the owning worker), or in a function that locks a mutex belonging
// to the same struct value (the staged-mailbox arm: ShardCtx.Send may
// touch lane.inbox because it holds lane.inboxMu).
//
// The mutex arm is deliberately flow-insensitive — one Lock/RLock of
// root.mu anywhere in the function licenses that root's barrier-only
// fields for the whole body. The analyzer pins down *who may touch*,
// and leaves *exact critical-section extent* to the race detector;
// both halves together are the assurance story.
var BarrierState = &Analyzer{
	Name: "barrierstate",
	Doc:  "//iobt:barrier-only fields may be touched only in //iobt:barrier functions or under a mutex of the same struct value",
	Run:  runBarrierState,
}

func runBarrierState(p *Pass) {
	reportMisplaced(p, map[string]string{
		noteBarrierOnly: "a named struct field",
		noteBarrier:     "a function declaration",
	})
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			checkBarrierAccess(p, fd)
		}
	}
}

// lockedRoots collects the root objects whose mutex the function locks
// anywhere in its body: a call root.mu.Lock() or root.mu.RLock() where
// mu is a sync.Mutex/RWMutex field licenses barrier-only fields of the
// same root.
func lockedRoots(p *Pass, body *ast.BlockStmt) map[types.Object]bool {
	roots := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !isSel || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		named := receiverNamed(p.Info, sel)
		if !namedIs(named, "sync", "Mutex") && !namedIs(named, "sync", "RWMutex") {
			return true
		}
		mutexSel, isMutexSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !isMutexSel {
			return true // a bare mutex variable guards nothing field-shaped
		}
		if root := rootIdent(mutexSel.X); root != nil {
			if obj := p.Info.Uses[root]; obj != nil {
				roots[obj] = true
			}
		}
		return true
	})
	return roots
}

func checkBarrierAccess(p *Pass, fd *ast.FuncDecl) {
	fn, _ := p.Info.Defs[fd.Name].(*types.Func)
	inBarrier := p.Prog.notes.funcHas(fn, noteBarrier)
	var locked map[types.Object]bool // computed lazily: most functions lock nothing

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, isSel := n.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		selection, isField := p.Info.Selections[sel]
		if !isField || selection.Kind() != types.FieldVal {
			return true
		}
		field, _ := selection.Obj().(*types.Var)
		if !p.Prog.notes.fieldHas(selection.Recv(), field, noteBarrierOnly) {
			return true
		}
		if inBarrier {
			return true
		}
		if locked == nil {
			locked = lockedRoots(p, fd.Body)
		}
		if root := rootIdent(sel.X); root != nil {
			if obj := p.Info.Uses[root]; obj != nil && locked[obj] {
				return true // guarded by the same struct value's mutex
			}
		}
		p.Reportf(sel.Sel.Pos(),
			"barrier-only field %s.%s touched outside barrier context; annotate the function //iobt:barrier or hold a mutex of the same struct",
			actorStateName(selection.Recv()), field.Name())
		return true
	})
}
