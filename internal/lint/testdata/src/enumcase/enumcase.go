// Package enumcase exercises the enum-exhaustiveness analyzer: a
// switch over a domain enum (named integer type with >= 2 package
// constants) must either cover every constant or carry an explicit
// default. The enum-mutation guard test appends a constant at the
// marker below and asserts the fully-covered switch goes stale.
package enumcase

type Phase int

const (
	PhaseIdle Phase = iota
	PhaseMarch
	PhaseEngage
	PhaseWithdraw
	// enum-mutation-point: the guard test inserts a new constant here.
)

// PhaseHold aliases PhaseIdle's value; covering either name covers
// the value.
const PhaseHold = PhaseIdle

type tiny bool // not an enum: non-integer underlying type

const tinyOn tiny = true

func incomplete(p Phase) string {
	switch p { // want `switch over enumcase.Phase is missing PhaseEngage, PhaseWithdraw`
	case PhaseIdle:
		return "idle"
	case PhaseMarch:
		return "march"
	}
	return ""
}

// covered lists every constant value — the mutation guard breaks this
// one by adding a new constant.
func covered(p Phase) string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseMarch:
		return "march"
	case PhaseEngage:
		return "engage"
	case PhaseWithdraw:
		return "withdraw"
	}
	return ""
}

// coveredByAlias covers PhaseIdle's value through the alias name.
func coveredByAlias(p Phase) string {
	switch p {
	case PhaseHold:
		return "hold"
	case PhaseMarch, PhaseEngage, PhaseWithdraw:
		return "moving"
	}
	return ""
}

// defaulted opts out with an explicit default.
func defaulted(p Phase) string {
	switch p {
	case PhaseEngage:
		return "engage"
	default:
		return "other"
	}
}

// nonConstant compares against a runtime value: not an
// exhaustiveness switch.
func nonConstant(p, q Phase) bool {
	switch p {
	case q:
		return true
	}
	return false
}

// tagless switches are ordinary if-chains, never checked.
func tagless(p Phase) bool {
	switch {
	case p == PhaseIdle:
		return true
	}
	return false
}

func notAnEnum(v tiny) bool {
	switch v {
	case tinyOn:
		return true
	}
	return false
}

// allowed demonstrates the reasoned waiver.
func allowed(p Phase) bool {
	//iobt:allow enumcase fixture: only the terminal phase matters to this predicate
	switch p {
	case PhaseWithdraw:
		return true
	}
	return false
}
