// Package hotbox seeds the interface-boxing findings: concrete
// non-pointer-shaped values crossing into interface arguments,
// assignments, conversions, and returns inside //iobt:hot bodies, plus
// the bound-method-closure shape. Pointer payloads box for free and
// must stay silent — that is the *frame fix the analyzer pushes
// toward.
package hotbox

type pair struct{ a, b int }

type sink struct{ v any }

func consume(v any)         {}
func consumeMany(vs ...any) {}
func typed(p pair)          {}
func pointered(p *pair)     {}

//iobt:hot
func box(p pair, pp *pair) {
	consume(p)  // want `argument boxes hotbox.pair into any`
	consume(pp) // pointer-shaped: boxes for free, silent
	typed(p)    // concrete parameter: no interface, silent
	pointered(pp)
	consumeMany(p.a, p.b) // want `argument boxes int into any` `argument boxes int into any`
	var s sink
	s.v = p // want `assignment boxes hotbox.pair into any`
	_ = s
	_ = any(p) // want `conversion boxes hotbox.pair into any`
}

//iobt:hot
func toIface(p pair) any {
	return p // want `return boxes hotbox.pair into any`
}

//iobt:hot
func toIfacePtr(p *pair) any {
	return p // pointer-shaped: silent
}

type counter struct{ n int }

func (c *counter) bump() {}

//iobt:hot
func methodValue(c *counter) {
	f := c.bump // want `method value c.bump allocates a bound-method closure`
	f()
	c.bump() // direct dispatch: silent
}

// cold is not annotated: boxing off the hot path is fine.
func cold(p pair) { consume(p) }
