// Package metricreg exercises the metricreg analyzer: invariant and
// snapshotter registries are populated unconditionally at init; mesh
// delivery handlers may be registered per node in loops but never
// behind a condition.
package metricreg

import (
	"iobt/internal/checkpoint"
	"iobt/internal/mesh"
	"iobt/internal/verify"
)

// goodInit is the canonical shape: build the full set, register once.
func goodInit(reg *verify.Registry, invs []verify.Invariant) {
	reg.Add(invs...)
}

func looped(reg *verify.Registry, invs []verify.Invariant) {
	for _, inv := range invs {
		reg.Add(inv) // want `verify\.Registry\.Add inside a loop registers repeatedly`
	}
}

func loopedRegister(reg *verify.Registry, checks map[string]func() error, names []string) {
	for _, name := range names {
		reg.Register(name, checks[name]) // want `verify\.Registry\.Register inside a loop`
	}
}

func conditional(c *checkpoint.Coordinator, s checkpoint.Snapshotter, enabled bool) {
	if enabled {
		c.Register(s) // want `checkpoint\.Coordinator\.Register is conditional`
	}
}

func allowedConditional(c *checkpoint.Coordinator, s checkpoint.Snapshotter, attached bool) {
	if attached {
		//iobt:allow metricreg optional component, wired only when the mission attaches it
		c.Register(s)
	}
}

// handlersPerNode: per-node registration in a loop is the normal mesh
// wiring pattern; no finding.
func handlersPerNode(n *mesh.Network, ids []mesh.NodeID, h mesh.Handler) {
	for _, id := range ids {
		n.RegisterHandler(id, h)
	}
}

func conditionalHandler(n *mesh.Network, id mesh.NodeID, h mesh.Handler, debug bool) {
	if debug {
		n.RegisterHandler(id, h) // want `mesh\.Network\.RegisterHandler is conditional`
	}
}

// deferredSetup: registration inside a function literal is judged at
// the literal's own scope, not the builder's; no finding here.
func deferredSetup(reg *verify.Registry, inv verify.Invariant) func() {
	return func() {
		reg.Add(inv)
	}
}
