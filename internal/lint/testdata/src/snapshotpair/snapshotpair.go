// Package snapshotpair exercises the snapshotpair analyzer: every
// Snapshot() []byte needs Restore([]byte) error and SnapshotName()
// string, and the two codec halves must move the same fields.
package snapshotpair

import "iobt/internal/checkpoint"

// Good is the complete, balanced contract: no findings.
type Good struct {
	a int64
	b float64
	s string
}

func (g *Good) SnapshotName() string { return "good" }

func (g *Good) Snapshot() []byte {
	e := checkpoint.NewEncoder()
	e.Int64(g.a)
	e.Float64(g.b)
	e.String(g.s)
	return e.Bytes()
}

func (g *Good) Restore(data []byte) error {
	d := checkpoint.NewDecoder(data)
	g.a = d.Int64()
	g.b = d.Float64()
	g.s = d.String()
	return d.Err()
}

// NoRestore captures state it can never put back.
type NoRestore struct{ n int }

func (n *NoRestore) SnapshotName() string { return "norestore" }

func (n *NoRestore) Snapshot() []byte { return nil } // want `declares Snapshot\(\) \[\]byte but no Restore`

// NoSnapshot restores state nothing produces.
type NoSnapshot struct{ n int }

func (n *NoSnapshot) Restore(data []byte) error { return nil } // want `declares Restore\(\[\]byte\) error but no Snapshot`

// Skewed encodes two fields but decodes only one — the
// incident-counter-rollback class of bug, caught structurally.
type Skewed struct{ a, b int64 }

func (s *Skewed) SnapshotName() string { return "skewed" }

func (s *Skewed) Snapshot() []byte { // want `disagree on the wire format \(Int64: 2 encoded vs 1 decoded\)`
	e := checkpoint.NewEncoder()
	e.Int64(s.a)
	e.Int64(s.b)
	return e.Bytes()
}

func (s *Skewed) Restore(data []byte) error {
	d := checkpoint.NewDecoder(data)
	s.a = d.Int64()
	return d.Err()
}

// Nameless has both halves but no section name.
type Nameless struct{ a bool }

func (n *Nameless) Snapshot() []byte { // want `no SnapshotName\(\) string`
	e := checkpoint.NewEncoder()
	e.Bool(n.a)
	return e.Bytes()
}

func (n *Nameless) Restore(data []byte) error {
	d := checkpoint.NewDecoder(data)
	n.a = d.Bool()
	return d.Err()
}

// Export is a deliberate one-way dump, waived with a reason.
type Export struct{ n int }

func (e *Export) SnapshotName() string { return "export" }

//iobt:allow snapshotpair one-way telemetry export; live state is rebuilt from the world, not from this snapshot
func (e *Export) Snapshot() []byte { return nil }

// Unrelated methods with the magic names but different signatures are
// out of scope.
type Other struct{}

func (o *Other) Snapshot(n int) int { return n }
