// Package gossipdet pins the gossip dissemination determinism
// contract: relay fanout must shuffle a *sorted* candidate list with a
// seeded stream (mesh.Gossip.relay sorts in memberPeers before the
// shuffle). Collecting peers from a map and shuffling unsorted makes
// peer choice depend on map iteration order — same seed, different
// bytes — and each shape of that mistake must be a finding: the
// escaping unsorted collect, the order-dependent draw count, and the
// flow laundered through a call boundary.
package gossipdet

import (
	"sort"

	"iobt/internal/sim"
)

// overlay is a miniature gossip membership: node ID → neighbor IDs.
type overlay struct {
	members map[int64][]int64
	rng     *sim.RNG
}

// badFanout collects relay candidates straight off the membership map
// and shuffles: the shuffle is seeded, but its input order is the
// map's, so the chosen fanout differs run to run on the same seed.
func (o *overlay) badFanout(exclude int64) []int64 {
	var peers []int64
	for id := range o.members { // want `appends to .peers. which escapes the loop unsorted`
		if id != exclude {
			peers = append(peers, id)
		}
	}
	o.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	return peers
}

// badJitter draws per-member jitter while ranging the map: the draw
// count follows iteration order, so every later consumer of the same
// stream shifts with it.
func (o *overlay) badJitter() int {
	total := 0
	for range o.members { // want `draws from the seeded RNG`
		total += o.rng.Intn(8)
	}
	return total
}

// firstMember returns whichever member the map yields first — a
// scalar, so the intraprocedural rules never see the hazard.
func firstMember(members map[int64][]int64) int64 {
	for id := range members {
		return id
	}
	return -1
}

// badSeedPick launders the arbitrary member through a call boundary
// before it reaches the seeded stream: caught by the taint analyzer.
func badSeedPick(members map[int64][]int64, rng *sim.RNG) int {
	return rng.Intn(int(firstMember(members)) + 1) // want `map-iteration order .* via firstMember flows into the seeded RNG`
}

// goodFanout is the contract itself: collect, sort, then seeded
// shuffle. Peer choice now depends only on the seed and the topology,
// which is what makes same-seed gossip runs byte-identical.
func (o *overlay) goodFanout(exclude int64) []int64 {
	var peers []int64
	for id := range o.members {
		if id != exclude {
			peers = append(peers, id)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	o.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	return peers
}

// memberCount is a commutative reduction over the map: clean input to
// the stream even though it came from a range.
func memberCount(members map[int64][]int64) int {
	n := 0
	for range members {
		n++
	}
	return n
}

func cleanDraw(members map[int64][]int64, rng *sim.RNG) int {
	return rng.Intn(memberCount(members) + 1)
}

// debugCensus demonstrates the reasoned-waiver escape hatch.
func (o *overlay) debugCensus() int {
	n := 0
	//iobt:allow maporder debug-only census: the draws feed a one-shot stderr line and never reach a trace, frame, or checkpoint
	for range o.members {
		n += o.rng.Intn(2)
	}
	return n
}
