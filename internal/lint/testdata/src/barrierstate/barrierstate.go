// Package barrierstate seeds the shard-local state violations: a
// barrier-only field read from an unannotated function, an access
// guarded by the *wrong* struct's mutex, and an annotation anchored to
// the wrong declaration kind. The two licensed paths — an
// //iobt:barrier function, and an access under a mutex of the same
// struct value — must stay silent.
package barrierstate

import "sync"

// lane is a miniature of the engine's per-shard state: an owned queue
// advanced between barriers and a mailbox other shards stage into
// under the lane's mutex.
type lane struct {
	mu sync.Mutex
	//iobt:barrier-only
	queue []int
	inbox []int //iobt:barrier-only
	id    int
}

// drain runs between barriers: the annotation licenses every
// barrier-only access in the body.
//
//iobt:barrier
func drain(l *lane) {
	l.queue = append(l.queue, l.inbox...)
	l.inbox = l.inbox[:0]
}

// stage is the mailbox arm: it holds the same lane's mutex, so the
// inbox access is licensed without a barrier annotation.
func stage(l *lane, v int) {
	l.mu.Lock()
	l.inbox = append(l.inbox, v)
	l.mu.Unlock()
}

// peek reads the queue with no barrier annotation and no lock: from a
// worker's perspective this races the owner.
func peek(l *lane) int {
	return len(l.queue) // want `barrier-only field lane.queue touched outside barrier context`
}

// crossLock holds a's mutex while touching b's mailbox: the lock must
// belong to the same struct value as the field.
func crossLock(a, b *lane) {
	a.mu.Lock()
	b.inbox = nil // want `barrier-only field lane.inbox touched outside barrier context`
	a.mu.Unlock()
}

// queueDepth documents the waiver shape: a deliberately racy monotone
// read for metrics, carried with a reason.
func queueDepth(l *lane) int {
	//iobt:allow barrierstate metrics-only read of a monotone length; one-window staleness is acceptable and the value never feeds the model
	return len(l.inbox)
}

var orphan int //iobt:barrier-only // want `iobt:barrier-only annotation must sit on a named struct field`
