// Package detrand exercises the detrand analyzer: wall-clock reads,
// host timers, and unseeded randomness are findings outside the
// allowlisted packages; referring to math/rand types is not.
package detrand

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

var start = time.Now() // want `time\.Now is a wall-clock read`

func elapsed() time.Duration {
	return time.Since(start) // want `time\.Since is a wall-clock read`
}

func wait() {
	time.Sleep(time.Second) // want `time\.Sleep is a host-timer wait`
}

func timer() <-chan time.Time {
	return time.After(time.Second) // want `time\.After is a host timer`
}

func roll() int {
	return rand.Intn(6) // want `math/rand\.Intn bypasses the seeded stream discipline`
}

func stream(seed int64) *rand.Rand {
	// The type reference (*rand.Rand) is fine; constructing an
	// unmanaged stream is not.
	return rand.New(rand.NewSource(seed)) // want `math/rand\.New bypasses` `math/rand\.NewSource bypasses`
}

func entropy(b []byte) {
	_, _ = crand.Read(b) // want `crypto/rand is nondeterministic by design`
}

// durationMath shows that time arithmetic and formatting stay legal:
// only reading host time is banned.
func durationMath(d time.Duration) string {
	return (d + time.Second).String()
}

//iobt:allow detrand host-side profiling hook, never called inside the simulated world
var profileStart = time.Now()
