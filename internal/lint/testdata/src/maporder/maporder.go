// Package maporder exercises the maporder analyzer: map iteration
// feeding ordered sinks (writers, checkpoint encoders, RNG draws,
// event scheduling, escaping slices) is a finding; the collect-keys-
// then-sort idiom and reasoned allows are not.
package maporder

import (
	"fmt"
	"sort"
	"strings"

	"iobt/internal/checkpoint"
	"iobt/internal/sim"
)

func emit(m map[string]int) string {
	var b strings.Builder
	for k, v := range m { // want `writes formatted output \(fmt\.Fprintf\)`
		fmt.Fprintf(&b, "%s=%d\n", k, v)
	}
	return b.String()
}

func writeEach(m map[string]string, b *strings.Builder) {
	for _, v := range m { // want `writes ordered output \(WriteString\)`
		b.WriteString(v)
	}
}

func encode(m map[int]float64, e *checkpoint.Encoder) {
	for k, v := range m { // want `encodes checkpoint bytes`
		e.Int(k)
		e.Float64(v)
	}
}

func draw(m map[string]int, rng *sim.RNG) float64 {
	sum := 0.0
	for range m { // want `draws from the seeded RNG`
		sum += rng.Float64()
	}
	return sum
}

func schedule(m map[string]func(), eng *sim.Engine) {
	for name, fn := range m { // want `schedules simulation events`
		eng.Schedule(0, name, fn)
	}
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `escapes the loop unsorted`
		keys = append(keys, k)
	}
	return keys
}

// collectSorted is the repo's canonical idiom: collect, sort, use.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortKeysHelper shows a local sortXxx helper counts as sorting.
func sortKeys(s []string) { sort.Strings(s) }

func collectHelperSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

// commutative accumulation never leaves the loop; no finding.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func allowedDebugDump(m map[string]int) {
	//iobt:allow maporder debug dump on demand; output order never reaches a trace or snapshot
	for k := range m {
		fmt.Println(k)
	}
}
