// Package lookaheadclamp seeds constant ShardCtx.Send delays below the
// default engine Lookahead: the runtime silently raises them to the
// window width, so the written constant misstates the model. Delays at
// or above the floor, computed delays (the HopLatency*hops idiom whose
// floor the runtime clamp legitimately enforces), and local Schedule
// delays (no lookahead requirement) must stay silent.
package lookaheadclamp

import (
	"time"

	"iobt/internal/sim"
)

// pollEvery is below the 100ms default floor: the named constant is
// flagged at the call site, same as a literal.
const pollEvery = 5 * time.Millisecond

func noop(*sim.ShardCtx) {}

func tick(c *sim.ShardCtx, dst sim.ActorID, hop time.Duration) {
	c.Send(dst, 20*time.Millisecond, "poll", noop) // want `constant Send delay 20ms is below the default Lookahead 100ms`
	c.Send(dst, pollEvery, "poll", noop)           // want `constant Send delay 5ms is below the default Lookahead 100ms`
	c.Send(dst, 100*time.Millisecond, "ok", noop)  // at the floor: exactly what the engine delivers
	c.Send(dst, 3*hop, "ok", noop)                 // computed: runtime clamp territory, ClampedSends accounts for it
	c.Schedule(time.Millisecond, "local", noop)    // local events need no lookahead
}

// fastProbe documents the waiver shape: a scenario that configures a
// smaller Lookahead than the default, stated in the reason.
func fastProbe(c *sim.ShardCtx, dst sim.ActorID) {
	//iobt:allow lookaheadclamp this scenario configures Lookahead=1ms, below the default the analyzer assumes; 2ms clears the real floor
	c.Send(dst, 2*time.Millisecond, "probe", noop)
}
