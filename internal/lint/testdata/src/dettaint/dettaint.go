// Package dettaint exercises the interprocedural taint analyzer with
// flows maporder provably cannot see: every tainted value crosses at
// least one call boundary between the map range (or entropy source)
// and the sink, and no range body touches a sink or grows a slice, so
// the intraprocedural suite stays silent on this entire file
// (TestDetTaintCatchesWhatMapOrderMisses asserts exactly that).
package dettaint

import (
	"sort"
	"time"

	"iobt/internal/checkpoint"
	"iobt/internal/sim"
)

// pickFirst returns whichever key the map yields first — a scalar, so
// maporder's escaping-slice rule never fires, but the result order-
// depends on map iteration.
func pickFirst(m map[string]func()) string {
	for k := range m {
		return k
	}
	return ""
}

func scheduleArbitrary(m map[string]func(), eng *sim.Engine) {
	name := pickFirst(m)
	eng.Schedule(0, name, func() {}) // want `map-iteration order .* via pickFirst flows into event scheduling`
}

// joined concatenates keys in map order: string += is not a
// commutative integer reduction, so the result is order-tainted.
func joined(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

func encodeJoined(m map[string]int, e *checkpoint.Encoder) {
	e.String(joined(m)) // want `map-iteration order .* via joined flows into checkpoint encoding`
}

// lastKey launders the taint through a second helper: two call
// boundaries between the range and the sink.
func lastKey(m map[int]bool) int {
	last := 0
	for k := range m {
		last = k
	}
	return last
}

func relay(m map[int]bool) int { return lastKey(m) }

func drawTainted(m map[int]bool, rng *sim.RNG) int {
	return rng.Intn(relay(m) + 1) // want `map-iteration order .* via relay → lastKey flows into the seeded RNG`
}

// hostJitter derives a delay from the wall clock; sorting cannot wash
// host entropy out, so the scheduling below is a finding even though
// the value passed through a helper.
func hostJitter() time.Duration {
	return time.Duration(time.Now().UnixNano() % 1000)
}

func scheduleJittered(eng *sim.Engine) {
	eng.Schedule(hostJitter(), "jitter", func() {}) // want `host entropy .* via hostJitter flows into event scheduling`
}

// sortedKeys is the canonical collect-then-sort idiom; the sort
// sanitizes the slice, so encoding it downstream is clean.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func encodeSorted(m map[string]int, e *checkpoint.Encoder) {
	for _, k := range keys2(m) {
		e.String(k)
	}
}

func keys2(m map[string]int) []string { return sortedKeys(m) }

// total is a commutative integer reduction: order-insensitive, clean
// even across the call boundary.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func drawClean(m map[string]int, rng *sim.RNG) int {
	return rng.Intn(total(m) + 1)
}

// allowedProbe demonstrates the reasoned-waiver escape hatch for an
// interprocedural flow.
func allowedProbe(m map[string]func(), eng *sim.Engine) {
	name := pickFirst(m)
	//iobt:allow dettaint fixture: debug probe fires once at t=0 and never reaches a trace or snapshot
	eng.Schedule(0, name, func() {})
}
