// Package hotalloc seeds the per-event allocation findings: direct
// allocation shapes inside a //iobt:hot body (escaping composites,
// make, per-event fmt/errors, unpreallocated append, sort.Slice,
// string conversions, scheduled capturing closures) and — the
// interprocedural case no per-function analyzer can catch — a hot call
// into a cold helper whose allocation is two frames down, carried to
// the call site by the bottom-up allocation summaries. The pooled
// refill shape shows the reasoned-waiver contract, and the reused
// buffer shapes must stay silent.
package hotalloc

import (
	"errors"
	"fmt"
	"sort"

	"iobt/internal/sim"
)

type point struct{ x, y int }

//iobt:hot
func tick(c *sim.ShardCtx, buf []int, n int) {
	_ = fmt.Sprintf("tick %d", n) // want `fmt.Sprintf allocates per call`
	_ = errors.New("boom")        // want `errors.New allocates per call`
	p := &point{x: n}             // want `composite literal .*point escapes to the heap`
	_ = p
	_ = map[int]bool{n: true} // want `map literal map\[int\]bool allocates`
	_ = []int{n, n + 1}       // want `slice literal \[\]int allocates its backing array`
	m := make(map[int]int)    // want `make\(map\[int\]int\) allocates`
	_ = m
	var grown []int
	grown = append(grown, n) // want `append to grown, a slice with no preallocated capacity`
	_ = grown
	_ = []byte("payload")                                           // want `conversion string → \[\]byte copies and allocates`
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] }) // want `sort.Slice allocates a closure and a reflect-based swapper`
	c.Schedule(0, "next", func(c *sim.ShardCtx) {                   // want `schedules a closure capturing buf, n`
		_ = buf[n]
	})
}

// reused is the clean shape: appends go to a reslice of a retained
// buffer and to a parameter, struct composites stay by value, and the
// rescheduled callback is a prebuilt value. Nothing fires.
type holder struct {
	scratch []int
	next    func(*sim.ShardCtx)
}

//iobt:hot
func (h *holder) reused(c *sim.ShardCtx, dst []int, n int) []int {
	s := h.scratch[:0]
	s = append(s, n)
	h.scratch = s
	dst = append(dst, point{x: n}.x)
	c.Schedule(0, "next", h.next)
	return dst
}

// newPoint is the cold helper: not annotated, so its body carries no
// finding of its own — but its allocation flows into every hot caller's
// summary.
func newPoint(n int) *point { return &point{x: n} }

// wrap adds a second frame between the hot caller and the allocation:
// the summary pass propagates bottom-up, so the chain survives depth.
func wrap(n int) *point { return newPoint(n) }

//iobt:hot
func hotCaller(n int) {
	_ = wrap(n) // want `call to wrap allocates per event: calls newPoint, which composite literal .*point escapes`
}

// makeTick returns a capturing closure: one allocation per call, so a
// hot caller scheduling a fresh one per event is flagged at its call
// site — the shape fixed by building tick closures once at setup.
func makeTick(hits []int) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) { hits[0]++ }
}

//iobt:hot
func schedules(c *sim.ShardCtx, hits []int) {
	c.Schedule(0, "t", makeTick(hits)) // want `call to makeTick allocates per event: returns a closure capturing hits`
}

// pooled is the refill contract: the steady state recycles, and the
// cold-start allocation is waived with a reason where it happens.
var freeList *point

//iobt:hot
func pooled() *point {
	if p := freeList; p != nil {
		freeList = nil
		return p
	}
	//iobt:allow hotalloc pool refill: allocates only until the free list warms to peak depth, then never
	return &point{}
}

// usesPool calls a hot callee: pooled's waived refill is reported (and
// waived) in pooled's own body, so nothing reappears at the call site.
//
//iobt:hot
func usesPool() {
	_ = pooled() // hot callee: silent here
}

// guard shows the crash-path exemption: formatting a panic message is
// not a per-event cost, so nothing fires inside the panic argument.
//
//iobt:hot
func guard(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // crash path: exempt, silent
	}
}

var misplacedHot int //iobt:hot // want `iobt:hot annotation must sit on a function declaration`
