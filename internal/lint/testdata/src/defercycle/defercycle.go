// Package defercycle seeds the loop-acquisition findings: a defer and
// a mutex acquisition inside a //iobt:hot loop. The hoisted-lock and
// closure-resets-context shapes must stay silent, and the intentional
// per-element handoff shows the reasoned-waiver contract.
package defercycle

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

//iobt:hot
func drain(gs []*guarded) {
	for _, g := range gs {
		g.mu.Lock()         // want `acquires g.mu inside a per-event loop`
		defer g.mu.Unlock() // want `defer inside a per-event loop`
		g.n++
	}
}

//iobt:hot
func hoisted(g *guarded, rounds int) {
	g.mu.Lock() // outside the loop: silent
	defer g.mu.Unlock()
	for i := 0; i < rounds; i++ {
		g.n++
	}
}

//iobt:hot
func closureResets(gs []*guarded, run func(func())) {
	for range gs {
		run(func() {
			g := gs[0]
			g.mu.Lock() // closure body runs later, not per iteration: silent
			defer g.mu.Unlock()
			g.n++
		})
	}
}

//iobt:hot
func handoff(gs []*guarded) {
	for _, g := range gs {
		//iobt:allow defercycle one uncontended lock per element is the mailbox handoff point, not a per-event cost
		g.mu.Lock()
		g.n++
		g.mu.Unlock()
	}
}

// cold loops may defer and lock freely.
func cold(gs []*guarded) {
	for _, g := range gs {
		g.mu.Lock()
		defer g.mu.Unlock()
		g.n++
	}
}
