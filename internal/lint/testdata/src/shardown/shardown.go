// Package shardown seeds every shape of owner-only violation the
// shardown analyzer must catch: indexing the actor table with a peer
// ID, ranging over every actor's state inside an event callback,
// passing another actor's state to a helper, and a shard-safety
// annotation anchored to the wrong declaration kind. The clean idioms
// — Self()-rooted lookups (direct, via a converted local, via a
// trusted parameter) and setup code without a ShardCtx — must stay
// silent.
package shardown

import "iobt/internal/sim"

//iobt:actor-state
type node struct {
	id    sim.ActorID
	count int
	peer  sim.ActorID
}

//iobt:frozen
type run struct {
	nodes []*node
}

// tick is the clean ownership idiom: every access is rooted at
// ShardCtx.Self(), directly or through a local that provably derives
// from it.
func (r *run) tick() func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		n := r.nodes[c.Self()]
		n.count++
		i := int(c.Self())
		m := r.nodes[i]
		m.count += int(m.peer) // reading the peer ID off own state is fine
	}
}

// pokePeer reaches through its own state into a neighbor's: the peer
// field is an actor ID like any other, and indexing the table with it
// is exactly the cross-actor access that must travel as a message.
func (r *run) pokePeer() func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		n := r.nodes[c.Self()]
		p := r.nodes[n.peer]
		p.count++ // want `actor-state node accessed through "p", which is not rooted at ShardCtx.Self\(\)`
	}
}

// census folds a global view inside an event callback — every actor's
// state read from one worker while the others may be writing theirs.
func (r *run) census() func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		total := 0
		for _, n := range r.nodes { // want `event callback iterates over every actor's node state`
			total += n.count
		}
		r.nodes[c.Self()].count = total
	}
}

// bump mutates whatever node it is handed; it has no ShardCtx, so its
// own body is exempt — the call sites carry the obligation.
func bump(n *node) { n.count++ }

// delegate launders a cross-actor access through a helper call.
func (r *run) delegate(victim sim.ActorID) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		bump(r.nodes[c.Self()])
		bump(r.nodes[victim]) // want `call passes actor-state node not rooted at ShardCtx.Self\(\)`
	}
}

// seed runs before the engine starts: no ShardCtx in the signature, so
// touching every actor is legitimate setup.
func seed(nodes []*node) {
	for i, n := range nodes {
		n.id = sim.ActorID(i)
		n.peer = sim.ActorID((i + 1) % len(nodes))
	}
}

// debugProbe documents the waiver shape: a deliberate cross-actor read
// in a diagnostics-only callback, carried with a reason.
func (r *run) debugProbe(other sim.ActorID) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		//iobt:allow shardown diagnostics-only read of a neighbor counter; the value is logged, never fed back into the model
		_ = r.nodes[other].count
	}
}

var wrongAnchor int //iobt:actor-state // want `iobt:actor-state annotation must sit on a type declaration`
