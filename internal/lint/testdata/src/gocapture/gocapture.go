// Package gocapture seeds the capture-discipline violations: an event
// closure capturing a mutable local (map), a goroutine spawned inside
// an event callback, and — the interprocedural case — a maker whose
// parameter escapes into the returned callback, flagged at the call
// site where the concrete slice is visible. The allowed captures
// (immutables, the ShardCtx, //iobt:frozen setup context,
// //iobt:actor-state values, mutex-guarded handles) must stay silent.
package gocapture

import (
	"sync"

	"iobt/internal/sim"
)

//iobt:actor-state
type node struct {
	count int
}

//iobt:frozen
type table struct {
	rows []int
}

// stats is a mutex-guarded handle: safe to capture because every
// access inside the closure goes through its own lock.
type stats struct {
	mu sync.Mutex
	n  int
}

// goodSend exercises every allowed capture shape in one closure.
func goodSend(c *sim.ShardCtx, t *table, st *stats, n *node) {
	limit := 3
	c.Send(0, 0, "ok", func(c *sim.ShardCtx) {
		if n.count < limit {
			st.mu.Lock()
			st.n += t.rows[0]
			st.mu.Unlock()
		}
	})
}

// armGood holds goodSend's call site to the same rules: every argument
// retained by its closure is itself capturable, so nothing fires.
func armGood(c *sim.ShardCtx, t *table, st *stats, n *node) {
	goodSend(c, t, st, n)
}

// badSend captures a mutable local map: the closure runs later on
// whichever worker owns the destination actor, racing this one.
func badSend(c *sim.ShardCtx, buf []byte) {
	local := map[int]bool{}
	c.Send(1, 0, "bad", func(c *sim.ShardCtx) {
		local[len(buf)] = true // want `closure passed to the sharded engine captures local map\[int\]bool`
	})
}

// spawn breaks the barrier protocol outright: a goroutine started
// inside an event callback outlives the event and the window.
func spawn(c *sim.ShardCtx) {
	done := make(chan struct{})
	go func() { // want `event callback spawns a goroutine the barrier protocol cannot see`
		close(done)
	}()
}

// counterTick is a maker: hits escapes into the returned callback, so
// the parameter is marked captured and call sites carry the check.
func counterTick(hits []int) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		hits[0]++
	}
}

// frozenTick is the clean maker shape: the captured parameter is
// //iobt:frozen, so call sites pass.
func frozenTick(t *table) func(*sim.ShardCtx) {
	return func(c *sim.ShardCtx) {
		_ = t.rows
	}
}

// arm wires both makers up: the frozen capture passes, the shared
// mutable slice is flagged where it is handed over.
func arm(eng *sim.Sharded, t *table, shared []int) {
	eng.ScheduleActor(0, 0, "frozen", frozenTick(t))
	eng.ScheduleActor(1, 0, "tick", counterTick(shared)) // want `argument shared is retained by counterTick's event closure`
}

// armReplay documents the waiver shape: a slice that is provably never
// written after scheduling, carried with a reason.
func armReplay(eng *sim.Sharded) {
	trace := []int{1, 2, 3}
	eng.ScheduleActor(2, 0, "replay", func(c *sim.ShardCtx) {
		//iobt:allow gocapture trace is fully built before scheduling and never written afterwards; it is a replay constant
		_ = trace[0]
	})
}
