// Package suppress exercises the iobt:allow escape hatch itself: an
// allow comment with no reason is a finding (and suppresses nothing),
// and naming an unknown analyzer is a finding.
package suppress

import "time"

//iobt:allow detrand // want `iobt:allow detrand has no reason`
var t0 = time.Now() // want `time\.Now is a wall-clock read`

//iobt:allow nosuchanalyzer the rule this refers to does not exist // want `iobt:allow names unknown analyzer "nosuchanalyzer"`
var label = "x"

//iobt:allow detrand benchmarks the fixture loader on the host, outside the simulated world
var t1 = time.Now()
