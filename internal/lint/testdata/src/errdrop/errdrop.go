// Package errdrop exercises error discipline on the recovery-critical
// paths: Restore([]byte) error (the Snapshotter contract), the
// checkpoint coordinator's RestoreLast, and mesh delivery calls must
// not have their errors discarded.
package errdrop

import "iobt/internal/mesh"

type store struct{}

// Restore matches the Snapshotter contract by shape alone; errdrop
// monitors it regardless of receiver type.
func (s *store) Restore(data []byte) error { return nil }

// Save has a different shape: not monitored.
func (s *store) Save(data []byte) error { return nil }

func drops(s *store, n *mesh.Network, m mesh.Message) {
	s.Restore(nil)       // want `result of store.Restore is discarded`
	_ = s.Restore(nil)   // want `error from store.Restore is assigned to _`
	_ = n.Send(m)        // want `error from Network.Send is assigned to _`
	_ = n.SendDirect(m)  // want `error from Network.SendDirect is assigned to _`
	go s.Restore(nil)    // want `go store.Restore discards the returned error`
	defer s.Restore(nil) // want `defer store.Restore discards the returned error`
}

func parallelBlank(s *store, n *mesh.Network, m mesh.Message) {
	// Parallel assignment: only the blanked monitored call is flagged.
	_, a := s.Restore(nil), n.Send(m) // want `error from store.Restore is assigned to _`
	_ = a
}

func handled(s *store, n *mesh.Network, m mesh.Message) error {
	if err := s.Restore(nil); err != nil {
		return err
	}
	// Unmonitored calls may be discarded freely.
	_ = s.Save(nil)
	return n.Send(m)
}

func waived(n *mesh.Network, m mesh.Message) {
	//iobt:allow errdrop fixture: probe traffic whose refusal is the asserted outcome
	_ = n.Send(m)
}
