package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotBox flags interface boxing on //iobt:hot paths. Converting a
// non-pointer-shaped concrete value (a struct, slice, string, or plain
// int) into an interface heap-allocates the boxed copy, and on a
// per-event path that is one hidden allocation per event — invisible
// in the source, top of the memprofile. Pointer-shaped values
// (pointers, channels, maps, funcs) box without allocating and are not
// flagged. The analyzer reports:
//
//   - arguments passed to interface (including any) parameters;
//   - assignments of concrete values to interface-typed variables or
//     fields;
//   - returns of concrete values through interface results;
//   - method values (x.M used as a value), each of which allocates a
//     bound-method closure.
//
// The fix is usually one of: a concrete-typed API, a pointer payload
// (*frame instead of frame), or hoisting the conversion out of the
// event loop. Boxing inside a panic(...) argument is exempt — a crash
// path's formatting is not a per-event cost.
var HotBox = &Analyzer{
	Name: "hotbox",
	Doc:  "//iobt:hot functions must not box non-pointer-shaped values into interfaces (arguments, assignments, returns) or take method values; each boxing is a hidden per-event allocation",
	Run:  runHotBox,
}

// pointerShaped reports whether values of t box into an interface
// without allocating: single-word reference types.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}

// boxes reports whether assigning src to a dst location allocates: dst
// is an interface and src is concrete and not pointer-shaped.
func boxes(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return false
	}
	if _, isIface := src.Underlying().(*types.Interface); isIface {
		return false // interface→interface copies the existing box
	}
	return !pointerShaped(src)
}

func runHotBox(p *Pass) {
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			fn, isFn := p.Info.Defs[fd.Name].(*types.Func)
			if !isFn || !p.Prog.notes.funcHas(fn, noteHot) {
				continue
			}
			checkBoxing(p, fd, fn)
		}
	}
}

func checkBoxing(p *Pass, fd *ast.FuncDecl, fn *types.Func) {
	q := func(pkg *types.Package) string { return pkg.Name() }
	report := func(pos ast.Node, src, dst types.Type, how string) {
		p.Reportf(pos.Pos(), "%s boxes %s into %s (one allocation per event); use a concrete type, a pointer payload, or hoist the conversion out of the hot path",
			how, types.TypeString(src, q), types.TypeString(dst, q))
	}

	// Method-value detection needs to know which selectors are call
	// targets (x.M() is dispatch, not a bound-method closure).
	called := map[*ast.SelectorExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, isCall := n.(*ast.CallExpr); isCall {
			if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
				called[sel] = true
			}
		}
		return true
	})

	var litDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// The literal's body is still per-event code of this hot
			// function, but its returns belong to the literal's own
			// signature, which litDepth tracks.
			litDepth++
			ast.Inspect(x.Body, walk)
			litDepth--
			return false
		case *ast.CallExpr:
			if isPanicCall(p.Info, x) {
				return false // crash path: boxing the message's verbs ends the run, not an event
			}
			checkCallBoxing(p, x, report)
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					dst, src := p.Info.TypeOf(x.Lhs[i]), p.Info.TypeOf(x.Rhs[i])
					if boxes(dst, src) {
						report(x.Rhs[i], src, dst, "assignment")
					}
				}
			}
		case *ast.ReturnStmt:
			if litDepth > 0 {
				return true
			}
			sig := fn.Type().(*types.Signature)
			for i, res := range x.Results {
				if i >= sig.Results().Len() {
					break
				}
				dst, src := sig.Results().At(i).Type(), p.Info.TypeOf(res)
				if boxes(dst, src) {
					report(res, src, dst, "return")
				}
			}
		case *ast.SelectorExpr:
			if called[x] {
				return true
			}
			if s, isSel := p.Info.Selections[x]; isSel && s.Kind() == types.MethodVal {
				p.Reportf(x.Pos(), "method value %s allocates a bound-method closure per evaluation; call it directly or hoist the binding",
					types.ExprString(x))
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkCallBoxing flags concrete arguments passed to interface
// parameters, including the expansion of variadic ...any tails and
// explicit conversions like any(v).
func checkCallBoxing(p *Pass, call *ast.CallExpr, report func(ast.Node, types.Type, types.Type, string)) {
	// Explicit conversion to an interface type.
	if tv, isType := p.Info.Types[call.Fun]; isType && tv.IsType() && len(call.Args) == 1 {
		if src := p.Info.TypeOf(call.Args[0]); boxes(tv.Type, src) {
			report(call.Args[0], src, tv.Type, "conversion")
		}
		return
	}
	sig, isSig := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !isSig {
		return
	}
	if call.Ellipsis.IsValid() {
		return // s... passes the slice through; no per-element boxing
	}
	for i, arg := range call.Args {
		var dst types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			s, isSlice := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice)
			if !isSlice {
				continue
			}
			dst = s.Elem()
		case i < sig.Params().Len():
			dst = sig.Params().At(i).Type()
		default:
			continue
		}
		if src := p.Info.TypeOf(arg); boxes(dst, src) {
			report(arg, src, dst, "argument")
		}
	}
}
