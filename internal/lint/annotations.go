package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// This file indexes the shard-safety annotations the shardsafe analyzer
// family (shardown, gocapture, barrierstate) keys off. Annotations are
// doc comments on declarations — the contract is stated where the state
// lives, and the analyzers enforce it:
//
//	//iobt:actor-state    on a type declaration: values are owner-only
//	                      actor state — only events executing on the
//	                      owning actor may touch them (shardown), and
//	                      scheduled closures may capture them because
//	                      ownership rides along with the event
//	                      (gocapture).
//	//iobt:frozen         on a type declaration: written only during
//	                      single-threaded setup, read-only while the
//	                      engine runs, so workers share it safely and
//	                      closures may capture it (gocapture).
//	//iobt:barrier-only   on a struct field: shard-local engine state
//	                      (heap, mailbox, clock) touched only between
//	                      barriers, by the owning worker, or under a
//	                      mutex of the same struct (barrierstate).
//	//iobt:barrier        on a function: declares barrier/owning-worker
//	                      context, licensing access to barrier-only
//	                      fields (barrierstate).
//	//iobt:hot            on a function: the body executes per simulation
//	                      event, so the hotpath analyzers (hotalloc,
//	                      hotbox, defercycle) hold it — and, through
//	                      bottom-up allocation summaries, every helper it
//	                      calls — to the zero-allocation discipline.
//
// An annotation that is not anchored to a declaration of the right kind
// is itself a finding (reported by the owning analyzer), so the
// vocabulary cannot rot silently.

const (
	noteActorState  = "actor-state"
	noteFrozen      = "frozen"
	noteBarrierOnly = "barrier-only"
	noteBarrier     = "barrier"
	noteHot         = "hot"
)

// noteRe matches one annotation comment line.
var noteRe = regexp.MustCompile(`^//\s*iobt:(actor-state|frozen|barrier-only|barrier|hot)\b`)

// A noteSite is one annotation comment that could not be anchored to a
// declaration of the kind it applies to.
type noteSite struct {
	name string
	pos  token.Pos
}

// annotations is the program-wide annotation index. Keys are
// universe-independent strings, because each analyzed package holds its
// own types.Object for anything imported:
//
//	types:  "pkgpath.TypeName"
//	fields: "pkgpath.TypeName.field"
//	funcs:  types.Func.FullName()
type annotations struct {
	types  map[string]map[string]bool
	fields map[string]map[string]bool
	funcs  map[string]map[string]bool
	// misplaced collects, per package path, annotations without a valid
	// anchor (wrong declaration kind, or no declaration at all).
	misplaced map[string][]noteSite
}

func newAnnotations() *annotations {
	return &annotations{
		types:     map[string]map[string]bool{},
		fields:    map[string]map[string]bool{},
		funcs:     map[string]map[string]bool{},
		misplaced: map[string][]noteSite{},
	}
}

func addNote(m map[string]map[string]bool, key, note string) {
	set := m[key]
	if set == nil {
		set = map[string]bool{}
		m[key] = set
	}
	set[note] = true
}

// groupNotes extracts the annotation comments from comment groups,
// skipping nil groups.
func groupNotes(groups ...*ast.CommentGroup) []*ast.Comment {
	var out []*ast.Comment
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if noteRe.MatchString(c.Text) {
				out = append(out, c)
			}
		}
	}
	return out
}

func noteName(c *ast.Comment) string {
	return noteRe.FindStringSubmatch(c.Text)[1]
}

// scanNotes builds the annotation index over all loaded packages,
// anchoring each annotation comment to its declaration and recording
// the ones that anchor to nothing (or to the wrong declaration kind).
func scanNotes(pkgs []*Package) *annotations {
	notes := newAnnotations()
	for _, pkg := range pkgs {
		scanPackageNotes(notes, pkg)
	}
	return notes
}

func scanPackageNotes(notes *annotations, pkg *Package) {
	consumed := map[token.Pos]bool{}
	anchor := func(comments []*ast.Comment, valid map[string]bool, key string, target map[string]map[string]bool) {
		for _, c := range comments {
			consumed[c.Pos()] = true
			name := noteName(c)
			if valid[name] && key != "" {
				addNote(target, key, name)
			} else {
				notes.misplaced[pkg.Path] = append(notes.misplaced[pkg.Path], noteSite{name: name, pos: c.Pos()})
			}
		}
	}

	typeNotes := map[string]bool{noteActorState: true, noteFrozen: true}
	fieldNotes := map[string]bool{noteBarrierOnly: true}
	funcNotes := map[string]bool{noteBarrier: true, noteHot: true}

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				key := ""
				if fn, isFn := pkg.Info.Defs[d.Name].(*types.Func); isFn {
					key = funcKey(fn)
				}
				anchor(groupNotes(d.Doc), funcNotes, key, notes.funcs)
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					// Annotations on imports/consts/vars anchor to nothing.
					anchor(groupNotes(d.Doc), nil, "", nil)
					continue
				}
				// A single-spec type declaration usually carries its doc on
				// the GenDecl.
				declDoc := d.Doc
				if len(d.Specs) != 1 {
					anchor(groupNotes(d.Doc), nil, "", nil)
					declDoc = nil
				}
				for _, spec := range d.Specs {
					ts, isType := spec.(*ast.TypeSpec)
					if !isType {
						continue
					}
					typeKey := pkg.Path + "." + ts.Name.Name
					anchor(groupNotes(declDoc, ts.Doc, ts.Comment), typeNotes, typeKey, notes.types)
					st, isStruct := ts.Type.(*ast.StructType)
					if !isStruct || st.Fields == nil {
						continue
					}
					for _, field := range st.Fields.List {
						comments := groupNotes(field.Doc, field.Comment)
						if len(comments) == 0 {
							continue
						}
						if len(field.Names) == 0 {
							anchor(comments, nil, "", nil) // embedded field: no name to key on
							continue
						}
						for _, c := range comments {
							consumed[c.Pos()] = true
							name := noteName(c)
							if !fieldNotes[name] {
								notes.misplaced[pkg.Path] = append(notes.misplaced[pkg.Path], noteSite{name: name, pos: c.Pos()})
								continue
							}
							for _, fieldName := range field.Names {
								addNote(notes.fields, typeKey+"."+fieldName.Name, name)
							}
						}
					}
				}
			}
		}
	}

	// Annotation comments floating anywhere else (inside bodies, between
	// declarations) anchor to nothing.
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if noteRe.MatchString(c.Text) && !consumed[c.Pos()] {
					notes.misplaced[pkg.Path] = append(notes.misplaced[pkg.Path], noteSite{name: noteName(c), pos: c.Pos()})
				}
			}
		}
	}
}

// typeHas reports whether the named type (or the element of a pointer
// to it) carries the annotation.
func (a *annotations) typeHas(t types.Type, note string) bool {
	if t == nil {
		return false
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return a.types[named.Obj().Pkg().Path()+"."+named.Obj().Name()][note]
}

// fieldHas reports whether a field selection's target carries the
// annotation; recv is the receiver type of the selection.
func (a *annotations) fieldHas(recv types.Type, field *types.Var, note string) bool {
	if recv == nil || field == nil {
		return false
	}
	if p, isPtr := recv.Underlying().(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
	return a.fields[key][note]
}

// funcHas reports whether the declared function carries the annotation.
func (a *annotations) funcHas(fn *types.Func, note string) bool {
	if fn == nil {
		return false
	}
	return a.funcs[funcKey(fn)][note]
}

// reportMisplaced emits findings for annotations in this package that
// anchor to nothing valid; which is reported by which analyzer follows
// annotation ownership (shardown owns the type notes, barrierstate the
// engine notes).
func reportMisplaced(p *Pass, owned map[string]string) {
	for _, site := range p.Prog.notes.misplaced[p.Path] {
		want, isOwned := owned[site.name]
		if !isOwned {
			continue
		}
		p.Reportf(site.pos, "iobt:%s annotation must sit on %s", site.name, want)
	}
}
