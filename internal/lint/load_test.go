package lint

import (
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a temp module from path→contents pairs and
// returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadTypeError: a package that does not compile must fail the
// load with an error naming the package, not crash or silently skip.
func TestLoadTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":    "module example.com/broken\n\ngo 1.22\n",
		"broken.go": "package broken\n\nfunc f() { undefinedIdentifier() }\n",
	})
	_, err := Load(dir, "./...")
	if err == nil {
		t.Fatal("Load succeeded on a package with type errors")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("error does not name the broken package: %v", err)
	}
}

// TestLoadParseError: syntactically invalid source is a load error.
func TestLoadParseError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module example.com/bad\n\ngo 1.22\n",
		"bad.go":  "package bad\n\nfunc {\n",
		"ok.go":   "package bad\n",
		"doc.txt": "not go",
	})
	if _, err := Load(dir, "./..."); err == nil {
		t.Fatal("Load succeeded on unparseable source")
	}
}

// TestImporterMissingExportData: the export importer must answer an
// unresolvable import with a diagnosable error rather than a panic —
// the failure mode when `go list -export` could not compile a
// dependency.
func TestImporterMissingExportData(t *testing.T) {
	ei := &exportImporter{fset: token.NewFileSet(), exports: map[string]string{}}
	_, err := ei.Import("no/such/pkg")
	if err == nil {
		t.Fatal("Import of unknown package succeeded")
	}
	if !strings.Contains(err.Error(), "no/such/pkg") {
		t.Errorf("error does not name the missing package: %v", err)
	}
}

// TestLoadFixtureFailures covers the analysistest loader's own error
// paths: a directory with no Go files and a missing directory.
func TestLoadFixtureFailures(t *testing.T) {
	if _, err := LoadFixture(t.TempDir()); err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("empty dir: err = %v, want no-Go-files error", err)
	}
	if _, err := LoadFixture(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir: want error")
	}
}

// TestLoadVendoredReplace: a module whose dependency arrives through a
// replace directive and a vendor/ tree must load and type-check — the
// import map go list reports has to be honored when resolving export
// data.
func TestLoadVendoredReplace(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module example.com/app\n\ngo 1.22\n\nrequire example.com/dep v0.0.0\n\nreplace example.com/dep => ./dep\n",
		"app.go":     "package app\n\nimport \"example.com/dep\"\n\n// Answer re-exports the vendored constant.\nconst Answer = dep.V\n",
		"dep/go.mod": "module example.com/dep\n\ngo 1.22\n",
		"dep/dep.go": "package dep\n\n// V is the vendored constant.\nconst V = 42\n",
	})
	vendor := exec.Command("go", "mod", "vendor")
	vendor.Dir = dir
	if out, err := vendor.CombinedOutput(); err != nil {
		t.Fatalf("go mod vendor: %v\n%s", err, out)
	}
	// Remove the replace target: resolution must now go through vendor/.
	if err := os.RemoveAll(filepath.Join(dir, "dep")); err != nil {
		t.Fatal(err)
	}

	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.com/app" {
		t.Fatalf("loaded %d packages (%v), want just example.com/app", len(pkgs), pkgs)
	}
	imported := false
	for _, imp := range pkgs[0].Types.Imports() {
		if imp.Path() == "example.com/dep" {
			imported = true
		}
	}
	if !imported {
		t.Error("vendored dependency missing from the type-checked import set")
	}
}
