package lint

// Run loads the packages matching patterns (from dir, "" = current
// directory) and applies the full analyzer suite, returning every
// finding — including suppressed ones, so callers can audit the allow
// trail. Findings are ordered by file position.
func Run(dir string, patterns ...string) ([]Diagnostic, error) {
	return RunAnalyzers(dir, Analyzers(), patterns...)
}

// RunAnalyzers is Run with an explicit analyzer set.
func RunAnalyzers(dir string, as []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		out = append(out, analyze(pkg, as)...)
	}
	return out, nil
}

// Active filters ds to the findings that should fail a build:
// everything not suppressed by a reasoned allow comment.
func Active(ds []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Coverage summarizes a lint run for embedding in benchmark JSON
// (BENCH_*.json records static coverage alongside invariant coverage).
type Coverage struct {
	// Analyzers is the number of rules in the suite.
	Analyzers int `json:"analyzers"`
	// Findings is the number of unsuppressed findings (zero at head).
	Findings int `json:"findings"`
	// Allowed is the number of findings waived by iobt:allow comments.
	Allowed int `json:"allowed,omitempty"`
}

// Summarize folds a run's findings into a Coverage record.
func Summarize(ds []Diagnostic) Coverage {
	c := Coverage{Analyzers: len(Analyzers())}
	for _, d := range ds {
		if d.Suppressed {
			c.Allowed++
		} else {
			c.Findings++
		}
	}
	return c
}
