package lint

import "sort"

// Run loads the packages matching patterns (from dir, "" = current
// directory) and applies the full analyzer suite, returning every
// finding — including suppressed ones, so callers can audit the allow
// trail. Findings are ordered by file, line, column, then analyzer.
func Run(dir string, patterns ...string) ([]Diagnostic, error) {
	return RunAnalyzers(dir, Analyzers(), patterns...)
}

// RunAnalyzers is Run with an explicit analyzer set.
func RunAnalyzers(dir string, as []*Analyzer, patterns ...string) ([]Diagnostic, error) {
	prog, err := LoadProgram(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return prog.Analyze(as), nil
}

// LoadProgram loads the packages matching patterns and builds the
// whole-program view (call graph + taint summaries) the analyzers run
// on.
func LoadProgram(dir string, patterns ...string) (*Program, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return NewProgram(pkgs), nil
}

// Active filters ds to the findings that should fail a build:
// everything not suppressed by a reasoned allow comment.
func Active(ds []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Coverage summarizes a lint run for embedding in benchmark JSON
// (BENCH_*.json records static coverage alongside invariant coverage).
type Coverage struct {
	// Analyzers is the number of rules in the suite.
	Analyzers int `json:"analyzers"`
	// Names lists the suite's analyzer names in run order.
	Names []string `json:"names"`
	// Findings is the number of unsuppressed findings (zero at head).
	Findings int `json:"findings"`
	// Allowed is the number of findings waived by iobt:allow comments.
	Allowed int `json:"allowed,omitempty"`
	// ByAnalyzer breaks both counts down per analyzer (keys are sorted
	// by encoding/json, so the block diffs cleanly in CI).
	ByAnalyzer map[string]AnalyzerCount `json:"by_analyzer,omitempty"`
}

// AnalyzerCount is one analyzer's share of a run's findings.
type AnalyzerCount struct {
	Findings int `json:"findings"`
	Allowed  int `json:"allowed,omitempty"`
}

// Summarize folds a run's findings into a Coverage record.
func Summarize(ds []Diagnostic) Coverage {
	c := Coverage{ByAnalyzer: map[string]AnalyzerCount{}}
	for _, a := range Analyzers() {
		c.Analyzers++
		c.Names = append(c.Names, a.Name)
	}
	sort.Strings(c.Names)
	for _, d := range ds {
		ac := c.ByAnalyzer[d.Analyzer]
		if d.Suppressed {
			c.Allowed++
			ac.Allowed++
		} else {
			c.Findings++
			ac.Findings++
		}
		c.ByAnalyzer[d.Analyzer] = ac
	}
	return c
}
