package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"iobt/internal/sim"
)

func TestDetRandFixture(t *testing.T) {
	diags := runFixture(t, "detrand", DetRand)
	requireSuppressed(t, diags, 1)
}

// TestDetRandExemptPaths verifies the allowlist: the same fixture
// re-badged as internal/sim, cmd, or examples code produces nothing.
func TestDetRandExemptPaths(t *testing.T) {
	pkg, err := LoadFixture("testdata/src/detrand")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"iobt/internal/sim", "iobt/cmd/iobtsim", "iobt/examples/quickstart"} {
		pkg.Path = path
		prog := NewProgram([]*Package{pkg})
		if diags := prog.analyzePackage(pkg, []*Analyzer{DetRand}); len(Active(diags)) != 0 {
			t.Errorf("path %s: want no findings, got %v", path, Active(diags))
		}
	}
}

func TestMapOrderFixture(t *testing.T) {
	diags := runFixture(t, "maporder", MapOrder)
	requireSuppressed(t, diags, 1)
}

func TestSnapshotPairFixture(t *testing.T) {
	diags := runFixture(t, "snapshotpair", SnapshotPair)
	requireSuppressed(t, diags, 1)
}

func TestMetricRegFixture(t *testing.T) {
	diags := runFixture(t, "metricreg", MetricReg)
	requireSuppressed(t, diags, 1)
}

// TestSuppressFixture runs the full suite so the allow-comment
// machinery itself is exercised: missing reasons and unknown analyzer
// names are findings, and the one reasoned allow suppresses.
func TestSuppressFixture(t *testing.T) {
	diags := runFixture(t, "suppress", Analyzers()...)
	requireSuppressed(t, diags, 1)
}

// TestTreeClean is the acceptance criterion in test form: the full
// analyzer suite over the whole repository reports zero active
// findings — every waiver carries a reason.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint skipped in -short (CI runs iobtlint directly)")
	}
	diags, err := Run("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if active := Active(diags); len(active) != 0 {
		var b strings.Builder
		for _, d := range active {
			b.WriteString("  " + d.String() + "\n")
		}
		t.Errorf("iobtlint findings on the tree:\n%s", b.String())
	}
	cov := Summarize(diags)
	if cov.Analyzers != 14 {
		t.Errorf("analyzer count = %d, want 14", cov.Analyzers)
	}
	if cov.Allowed == 0 {
		t.Error("expected at least one reasoned iobt:allow on the tree")
	}
}

// TestCoverageSummary checks the benchtab-facing summary arithmetic.
func TestCoverageSummary(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "detrand", Message: "a"},
		{Analyzer: "maporder", Message: "b", Suppressed: true, Reason: "r"},
	}
	cov := Summarize(diags)
	if cov.Analyzers != 14 || cov.Findings != 1 || cov.Allowed != 1 {
		t.Errorf("coverage = %+v", cov)
	}
	if len(cov.Names) != 14 || cov.Names[0] != "barrierstate" {
		t.Errorf("names = %v, want 14 sorted analyzer names", cov.Names)
	}
	if cov.ByAnalyzer["detrand"].Findings != 1 || cov.ByAnalyzer["maporder"].Allowed != 1 {
		t.Errorf("per-analyzer counts = %+v", cov.ByAnalyzer)
	}
	if len(Active(diags)) != 1 {
		t.Errorf("active = %d, want 1", len(Active(diags)))
	}
}

func TestDetTaintFixture(t *testing.T) {
	diags := runFixture(t, "dettaint", DetTaint)
	requireSuppressed(t, diags, 1)
}

// TestGossipDetFixture pins the gossip fanout determinism contract
// (sorted peer IDs before the seeded shuffle): the unsorted-escape,
// order-dependent-draw, and laundered-through-a-call shapes are all
// findings, while the sort-then-shuffle idiom mesh.Gossip uses is
// clean under both the intraprocedural and taint analyzers.
func TestGossipDetFixture(t *testing.T) {
	diags := runFixture(t, "gossipdet", MapOrder, DetTaint)
	requireSuppressed(t, diags, 1)
}

func TestEnumCaseFixture(t *testing.T) {
	diags := runFixture(t, "enumcase", EnumCase)
	requireSuppressed(t, diags, 1)
}

func TestErrDropFixture(t *testing.T) {
	diags := runFixture(t, "errdrop", ErrDrop)
	requireSuppressed(t, diags, 1)
}

// TestDetTaintCatchesWhatMapOrderMisses is the acceptance criterion in
// test form: every flow in the dettaint fixture crosses at least one
// call boundary, so the intraprocedural maporder analyzer reports
// nothing on the same file while dettaint reports each sink.
func TestDetTaintCatchesWhatMapOrderMisses(t *testing.T) {
	pkg, err := LoadFixture("testdata/src/dettaint")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram([]*Package{pkg})
	if mo := Active(prog.analyzePackage(pkg, []*Analyzer{MapOrder})); len(mo) != 0 {
		t.Errorf("maporder found %d findings on the interprocedural fixture; these flows must be invisible to it:\n%v", len(mo), mo)
	}
	dt := Active(prog.analyzePackage(pkg, []*Analyzer{DetTaint}))
	if len(dt) < 4 {
		t.Errorf("dettaint found %d findings, want the fixture's 4 interprocedural flows:\n%v", len(dt), dt)
	}
}

// TestEnumMutationGuard simulates the add-a-variant bug: it appends a
// new constant to the fixture enum and asserts the switch that was
// fully covered before the mutation is now a stale-switch finding.
func TestEnumMutationGuard(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "enumcase", "enumcase.go"))
	if err != nil {
		t.Fatal(err)
	}
	const marker = "// enum-mutation-point: the guard test inserts a new constant here."
	if !strings.Contains(string(src), marker) {
		t.Fatalf("fixture lost its mutation marker %q", marker)
	}
	mutated := strings.Replace(string(src), marker, "PhaseRegroup\n\t"+marker, 1)
	// The pre-mutation fixture declares its own wants; strip them so
	// only the mutation's effect is measured.
	mutated = regexp.MustCompile(`(?m)// want .*$`).ReplaceAllString(mutated, "")

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "enumcase.go"), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Active(NewProgram([]*Package{pkg}).analyzePackage(pkg, []*Analyzer{EnumCase}))
	stale := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "PhaseRegroup") {
			stale++
		}
	}
	// Every unwaived switch that lacked a default before the mutation
	// must go stale: covered, coveredByAlias, and incomplete all now
	// miss PhaseRegroup. defaulted opted out; the waived switch stays
	// suppressed by its reasoned allow.
	if stale < 3 {
		t.Errorf("adding PhaseRegroup produced %d stale-switch findings, want >= 3:\n%v", stale, diags)
	}
}

func TestMatchPackage(t *testing.T) {
	cases := []struct {
		glob, path string
		want       bool
	}{
		{"", "iobt/internal/mesh", true},
		{"...", "iobt/internal/mesh", true},
		{"iobt/internal/mesh", "iobt/internal/mesh", true},
		{"iobt/internal/mesh", "iobt/internal/meshx", false},
		{"iobt/internal/...", "iobt/internal/mesh", true},
		{"iobt/internal/...", "iobt/internal", true},
		{"iobt/internal/...", "iobt/cmd/iobtlint", false},
		{"iobt/*/mesh", "iobt/internal/mesh", true},
		{"iobt/*/mesh", "iobt/internal/core", false},
		{"iobt/internal/m*", "iobt/internal/mesh", true},
		{"iobt/internal/m*", "iobt/internal/core", false},
		{"iobt/*", "iobt/internal/mesh", false}, // "*" spans one segment only
	}
	for _, c := range cases {
		if got := MatchPackage(c.glob, c.path); got != c.want {
			t.Errorf("MatchPackage(%q, %q) = %v, want %v", c.glob, c.path, got, c.want)
		}
	}
}

// TestAnalyzeMatchingFilters runs two fixtures through one program and
// asserts the glob restricts reporting to the matching package.
func TestAnalyzeMatchingFilters(t *testing.T) {
	ep, err := LoadFixture("testdata/src/errdrop")
	if err != nil {
		t.Fatal(err)
	}
	mp, err := LoadFixture("testdata/src/maporder")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram([]*Package{ep, mp})
	all := Active(prog.Analyze([]*Analyzer{MapOrder, ErrDrop}))
	// Fixtures load under iobtlint/fixture/<dir>.
	filtered := Active(prog.AnalyzeMatching([]*Analyzer{MapOrder, ErrDrop}, "iobtlint/*/errdrop"))
	if len(filtered) == 0 || len(filtered) >= len(all) {
		t.Fatalf("filtered = %d findings, all = %d; want a strict non-empty subset", len(filtered), len(all))
	}
	for _, d := range filtered {
		if !strings.Contains(d.Pos.Filename, "errdrop") {
			t.Errorf("glob \"errdrop\" leaked finding from %s", d.Pos.Filename)
		}
	}
}

func TestShardownFixture(t *testing.T) {
	diags := runFixture(t, "shardown", Shardown)
	requireSuppressed(t, diags, 1)
}

func TestGoCaptureFixture(t *testing.T) {
	diags := runFixture(t, "gocapture", GoCapture)
	requireSuppressed(t, diags, 1)
}

func TestBarrierStateFixture(t *testing.T) {
	diags := runFixture(t, "barrierstate", BarrierState)
	requireSuppressed(t, diags, 1)
}

func TestLookaheadClampFixture(t *testing.T) {
	diags := runFixture(t, "lookaheadclamp", LookaheadClamp)
	requireSuppressed(t, diags, 1)
}

func TestHotAllocFixture(t *testing.T) {
	diags := runFixture(t, "hotalloc", HotAlloc)
	requireSuppressed(t, diags, 1)
}

func TestHotBoxFixture(t *testing.T) {
	runFixture(t, "hotbox", HotBox)
}

func TestDeferCycleFixture(t *testing.T) {
	diags := runFixture(t, "defercycle", DeferCycle)
	requireSuppressed(t, diags, 1)
}

// TestAllocSummaries pins hotalloc's interprocedural leg directly: the
// fixture's cold helpers carry allocation facts, and the two-frame
// chain (hotCaller → wrap → newPoint) survives propagation — the case
// a per-function pass like maporder or a taint pass like dettaint
// cannot express.
func TestAllocSummaries(t *testing.T) {
	pkg, err := LoadFixture("testdata/src/hotalloc")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram([]*Package{pkg})
	cases := map[string]string{
		"iobtlint/fixture/hotalloc.newPoint": "composite literal",
		"iobtlint/fixture/hotalloc.wrap":     "calls newPoint, which composite literal",
		"iobtlint/fixture/hotalloc.makeTick": "returns a closure capturing hits",
	}
	for key, want := range cases {
		facts := prog.AllocFacts(key)
		if len(facts) == 0 {
			t.Errorf("AllocFacts(%s) empty, want a fact containing %q", key, want)
			continue
		}
		if !strings.Contains(facts[0], want) {
			t.Errorf("AllocFacts(%s)[0] = %q, want containing %q", key, facts[0], want)
		}
	}
	// The clean reuse shapes must summarize as non-allocating.
	if facts := prog.AllocFacts("(*iobtlint/fixture/hotalloc.holder).reused"); len(facts) != 0 {
		t.Errorf("reused buffer shape summarized as allocating: %v", facts)
	}
}

// TestDefaultLookaheadMatchesRuntime pins the analyzer's compile-time
// floor to the engine's actual default: if withDefaults ever changes,
// lookaheadclamp must change with it or every threshold it applies is
// wrong.
func TestDefaultLookaheadMatchesRuntime(t *testing.T) {
	eng := sim.NewSharded(1, sim.ShardedConfig{})
	if got := eng.Lookahead(); got != DefaultLookahead {
		t.Errorf("engine default Lookahead = %v, analyzer assumes %v; update lookaheadclamp.DefaultLookahead", got, DefaultLookahead)
	}
}

// TestGoCaptureSummaries pins the interprocedural leg directly: the
// fixture makers' escaping parameters are recorded in the program's
// capture summaries, receiver-first like taint summaries.
func TestGoCaptureSummaries(t *testing.T) {
	pkg, err := LoadFixture("testdata/src/gocapture")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram([]*Package{pkg})
	cases := map[string][]int{
		"iobtlint/fixture/gocapture.counterTick": {0},
		"iobtlint/fixture/gocapture.frozenTick":  {0},
		"iobtlint/fixture/gocapture.goodSend":    {1, 2, 3},
	}
	for key, want := range cases {
		got := prog.captures[key]
		if len(got) != len(want) {
			t.Errorf("captures[%s] = %v, want %v", key, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("captures[%s] = %v, want %v", key, got, want)
				break
			}
		}
	}
}

// TestWriteDOTDeterministic renders the call graph twice and requires
// byte-identical output — the linter holds itself to its own rules.
func TestWriteDOTDeterministic(t *testing.T) {
	pkg, err := LoadFixture("testdata/src/dettaint")
	if err != nil {
		t.Fatal(err)
	}
	prog := NewProgram([]*Package{pkg})
	var a, b strings.Builder
	if err := prog.Graph.WriteDOT(&a); err != nil {
		t.Fatal(err)
	}
	if err := prog.Graph.WriteDOT(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteDOT output differs between calls")
	}
	if !strings.Contains(a.String(), "pickFirst") {
		t.Errorf("call graph missing fixture node:\n%s", a.String())
	}
	if !strings.Contains(a.String(), "->") {
		t.Error("call graph has no edges")
	}
}
