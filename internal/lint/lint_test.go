package lint

import (
	"strings"
	"testing"
)

func TestDetRandFixture(t *testing.T) {
	diags := runFixture(t, "detrand", DetRand)
	requireSuppressed(t, diags, 1)
}

// TestDetRandExemptPaths verifies the allowlist: the same fixture
// re-badged as internal/sim, cmd, or examples code produces nothing.
func TestDetRandExemptPaths(t *testing.T) {
	pkg, err := LoadFixture("testdata/src/detrand")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"iobt/internal/sim", "iobt/cmd/iobtsim", "iobt/examples/quickstart"} {
		pkg.Path = path
		if diags := analyze(pkg, []*Analyzer{DetRand}); len(Active(diags)) != 0 {
			t.Errorf("path %s: want no findings, got %v", path, Active(diags))
		}
	}
}

func TestMapOrderFixture(t *testing.T) {
	diags := runFixture(t, "maporder", MapOrder)
	requireSuppressed(t, diags, 1)
}

func TestSnapshotPairFixture(t *testing.T) {
	diags := runFixture(t, "snapshotpair", SnapshotPair)
	requireSuppressed(t, diags, 1)
}

func TestMetricRegFixture(t *testing.T) {
	diags := runFixture(t, "metricreg", MetricReg)
	requireSuppressed(t, diags, 1)
}

// TestSuppressFixture runs the full suite so the allow-comment
// machinery itself is exercised: missing reasons and unknown analyzer
// names are findings, and the one reasoned allow suppresses.
func TestSuppressFixture(t *testing.T) {
	diags := runFixture(t, "suppress", Analyzers()...)
	requireSuppressed(t, diags, 1)
}

// TestTreeClean is the acceptance criterion in test form: the full
// analyzer suite over the whole repository reports zero active
// findings — every waiver carries a reason.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree lint skipped in -short (CI runs iobtlint directly)")
	}
	diags, err := Run("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if active := Active(diags); len(active) != 0 {
		var b strings.Builder
		for _, d := range active {
			b.WriteString("  " + d.String() + "\n")
		}
		t.Errorf("iobtlint findings on the tree:\n%s", b.String())
	}
	cov := Summarize(diags)
	if cov.Analyzers != 4 {
		t.Errorf("analyzer count = %d, want 4", cov.Analyzers)
	}
	if cov.Allowed == 0 {
		t.Error("expected at least one reasoned iobt:allow on the tree")
	}
}

// TestCoverageSummary checks the benchtab-facing summary arithmetic.
func TestCoverageSummary(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "detrand", Message: "a"},
		{Analyzer: "maporder", Message: "b", Suppressed: true, Reason: "r"},
	}
	cov := Summarize(diags)
	if cov.Analyzers != 4 || cov.Findings != 1 || cov.Allowed != 1 {
		t.Errorf("coverage = %+v", cov)
	}
	if len(Active(diags)) != 1 {
		t.Errorf("active = %d, want 1", len(Active(diags)))
	}
}
