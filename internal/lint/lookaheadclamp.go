package lint

import (
	"go/ast"
	"go/constant"
	"time"
)

// DefaultLookahead mirrors ShardedConfig.withDefaults: the conservative
// window width a zero-valued config resolves to. A drift test pins this
// against sim.NewSharded(1, sim.ShardedConfig{}).Lookahead(), so the
// analyzer cannot silently disagree with the runtime.
const DefaultLookahead = 100 * time.Millisecond

// LookaheadClamp flags constant ShardCtx.Send delays below the default
// engine lookahead. The runtime clamps such delays up to Lookahead
// (internal/sim/shard.go, ShardCtx.Send) to preserve the conservative
// window invariant, so the written constant is a lie: the model author
// reads "5ms" and the engine delivers at 100ms. A constant below the
// default is almost always a latency model that forgot the floor —
// state it as max(latency, lookahead), raise it, or lower the
// configured Lookahead to match the model's real minimum latency. Only
// constants are flagged: computed delays are the expression idiom
// (HopLatency * hops) whose floor the runtime clamp legitimately
// enforces, and the ClampedSends counter accounts for them at run time.
var LookaheadClamp = &Analyzer{
	Name: "lookaheadclamp",
	Doc:  "constant ShardCtx.Send delays below the default Lookahead are silently raised by the runtime clamp; state the floor explicitly or adjust Config.Lookahead",
	Run:  runLookaheadClamp,
}

func runLookaheadClamp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !isSel || sel.Sel.Name != "Send" || len(call.Args) < 2 {
				return true
			}
			if !namedIs(receiverNamed(p.Info, sel), "iobt/internal/sim", "ShardCtx") {
				return true
			}
			delay := call.Args[1]
			tv, known := p.Info.Types[delay]
			if !known || tv.Value == nil || tv.Value.Kind() != constant.Int {
				return true // not a compile-time constant: runtime clamp territory
			}
			v, exact := constant.Int64Val(tv.Value)
			if exact && v >= 0 && time.Duration(v) < DefaultLookahead {
				p.Reportf(delay.Pos(),
					"constant Send delay %v is below the default Lookahead %v and will be silently clamped; write the intended floor explicitly or configure a smaller Lookahead",
					time.Duration(v), DefaultLookahead)
			}
			return true
		})
	}
}
