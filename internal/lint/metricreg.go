package lint

import (
	"go/ast"
)

// MetricReg enforces registration discipline on the correctness
// registries: invariants (verify.Registry.Register/Add) and
// checkpoint sections (checkpoint.Coordinator.Register) are wired up
// exactly once, at initialization, never per-iteration and never
// behind a condition — a conditionally-registered invariant is a check
// that silently never runs, and a loop-registered one inflates the
// audit counts (or double-fires handlers, the PR-1 registration bug).
// Mesh delivery handlers (mesh.Network.RegisterHandler) are
// legitimately registered per node in loops, so for those only
// conditional registration is flagged.
var MetricReg = &Analyzer{
	Name: "metricreg",
	Doc: "invariant and snapshotter registries are populated unconditionally at init, " +
		"never inside loops or branches; optional components justify themselves with iobt:allow",
	Run: runMetricReg,
}

// regTarget classifies one registration method.
type regTarget struct {
	pkgPath, typeName, method string
	// loopSensitive: flag registration inside loops too (registries
	// where double-registration corrupts audit state).
	loopSensitive bool
	label         string
}

var regTargets = []regTarget{
	{"iobt/internal/verify", "Registry", "Register", true, "verify.Registry.Register"},
	{"iobt/internal/verify", "Registry", "Add", true, "verify.Registry.Add"},
	{"iobt/internal/checkpoint", "Coordinator", "Register", true, "checkpoint.Coordinator.Register"},
	{"iobt/internal/mesh", "Network", "RegisterHandler", false, "mesh.Network.RegisterHandler"},
}

func runMetricReg(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			checkRegBody(p, fd.Body, nil)
		}
	}
}

// ctxKind marks one enclosing control construct.
type ctxKind int

const (
	inLoop ctxKind = iota
	inBranch
)

// checkRegBody walks stmts tracking the control context; entering a
// function literal resets it (the literal runs later, in whatever
// context its caller provides — judged at its own call site).
func checkRegBody(p *Pass, body *ast.BlockStmt, ctx []ctxKind) {
	var walk func(n ast.Node, ctx []ctxKind)
	walk = func(n ast.Node, ctx []ctxKind) {
		switch x := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			if x.Body != nil {
				checkRegBody(p, x.Body, nil)
			}
			return
		case *ast.ForStmt:
			walkChildren(x.Body, func(c ast.Node) { walk(c, append(ctx, inLoop)) })
			return
		case *ast.RangeStmt:
			walkChildren(x.Body, func(c ast.Node) { walk(c, append(ctx, inLoop)) })
			return
		case *ast.IfStmt:
			walk(x.Body, append(ctx, inBranch))
			if x.Else != nil {
				walk(x.Else, append(ctx, inBranch))
			}
			return
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			ast.Inspect(n, func(c ast.Node) bool {
				if cc, isCase := c.(*ast.CaseClause); isCase {
					for _, s := range cc.Body {
						walk(s, append(ctx, inBranch))
					}
					return false
				}
				if cc, isComm := c.(*ast.CommClause); isComm {
					for _, s := range cc.Body {
						walk(s, append(ctx, inBranch))
					}
					return false
				}
				return true
			})
			return
		case *ast.CallExpr:
			checkRegCall(p, x, ctx)
			for _, arg := range x.Args {
				walk(arg, ctx)
			}
			return
		}
		walkChildren(n, func(c ast.Node) { walk(c, ctx) })
	}
	walkChildren(body, func(c ast.Node) { walk(c, ctx) })
}

// walkChildren invokes fn on each direct child node of n.
func walkChildren(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}

func checkRegCall(p *Pass, call *ast.CallExpr, ctx []ctxKind) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return
	}
	named := receiverNamed(p.Info, sel)
	if named == nil {
		return
	}
	for _, t := range regTargets {
		if sel.Sel.Name != t.method || !namedIs(named, t.pkgPath, t.typeName) {
			continue
		}
		looped, branched := false, false
		for _, k := range ctx {
			switch k {
			case inLoop:
				looped = true
			case inBranch:
				branched = true
			}
		}
		switch {
		case looped && t.loopSensitive:
			p.Reportf(call.Pos(), "%s inside a loop registers repeatedly; build the full set first and register once at init", t.label)
		case branched:
			p.Reportf(call.Pos(), "%s is conditional; a skipped registration silently disables the check — register unconditionally or justify with //iobt:allow metricreg <reason>", t.label)
		}
		return
	}
}
