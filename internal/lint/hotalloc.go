package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc enforces the zero-allocation discipline on the simulator's
// per-event hot paths. A function annotated //iobt:hot executes once
// per simulation event (Engine.Step, lane windows, mailbox sends,
// per-tick track association), so any heap allocation in it — or in
// anything it calls — is a per-event allocation that turns the event
// rate into a GC workload. The analyzer flags the allocation shapes
// that dominate event-loop profiles:
//
//   - escaping composite literals (&T{…}, slice and map literals),
//     make, and new;
//   - per-event formatting: fmt.Sprintf/Sprint/Sprintln/Errorf and
//     errors.New;
//   - append to a slice that starts nil or empty in the same function
//     (growth reallocates every few events; preallocate or reuse a
//     buffer);
//   - sort.Slice/sort.SliceStable (a closure plus a reflect-based
//     swapper per call; use slices.Sort or a pointer-receiver
//     sort.Interface);
//   - string ↔ []byte/[]rune conversions;
//   - capturing closures handed to Schedule/Send/ScheduleActor or
//     returned to the caller (one allocation per event; build the
//     closure once at setup and reschedule it by value).
//
// The rule is interprocedural: a bottom-up pass over the call graph's
// SCCs summarizes every function's allocation behavior, so a hot
// function calling a cold helper that allocates three levels down is
// flagged at the call site, with the chain in the message. Calls to
// callees that are themselves //iobt:hot are not re-flagged — those
// bodies are checked (and waived) in their own right.
//
// Allocations inside a panic(...) argument are exempt: a panic ends
// the run (or the window), so formatting its message is a crash-path
// cost, not a per-event one. Pool-refill allocations, rare-path
// spawns, and message-payload closures are legitimate; waive them
// where they happen with a reasoned //iobt:allow hotalloc comment so
// the steady-state contract stays auditable.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//iobt:hot functions (and, via bottom-up allocation summaries, everything they call) must not allocate per event: no escaping composites, per-event fmt/errors, unpreallocated append, sort.Slice, string conversions, or per-event capturing closures",
	Run:  runHotAlloc,
}

// maxAllocFacts caps one function's allocation summary; the cap bounds
// message size and fixpoint work, not detection — a function is "an
// allocator" from its first fact.
const maxAllocFacts = 3

// An allocSite is one direct per-event allocation in a function body.
type allocSite struct {
	pos  token.Pos
	desc string
}

// allocSites lists fd's direct allocation sites in source order. With
// descend=false (the summary pass) function-literal bodies are skipped:
// code inside a literal runs when the closure runs, not when fd is
// called, so only the closure's own creation (if it captures and
// escapes via scheduling or return) counts against fd. With
// descend=true (reporting inside a //iobt:hot body) literals are
// walked too — a hot function's inline callbacks are part of its cone.
func allocSites(pkg *Package, fd *ast.FuncDecl, descend bool) []allocSite {
	var out []allocSite
	add := func(pos token.Pos, desc string) {
		out = append(out, allocSite{pos: pos, desc: desc})
	}
	nilStart := nilStartSlices(pkg, fd)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Creation facts for literals are added at their parent
			// (scheduling call or return); only the body's descent is
			// decided here.
			if descend {
				ast.Inspect(x.Body, walk)
			}
			return false
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if lit, isLit := ast.Unparen(res).(*ast.FuncLit); isLit {
					if names := captureNames(pkg.Info, lit); names != "" {
						add(lit.Pos(), "returns a closure capturing "+names+" (one allocation per call)")
					}
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, isLit := ast.Unparen(x.X).(*ast.CompositeLit); isLit {
					add(x.Pos(), "composite literal "+typeLabel(pkg.Info, cl)+" escapes to the heap via &")
				}
			}
		case *ast.CompositeLit:
			switch pkg.Info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				if len(x.Elts) > 0 {
					add(x.Pos(), "slice literal "+typeLabel(pkg.Info, x)+" allocates its backing array")
				}
			case *types.Map:
				add(x.Pos(), "map literal "+typeLabel(pkg.Info, x)+" allocates")
			}
		case *ast.CallExpr:
			if isPanicCall(pkg.Info, x) {
				return false // crash path: formatting the message is not a per-event cost
			}
			if d := callAllocDesc(pkg.Info, x, nilStart); d != "" {
				add(x.Pos(), d)
			}
			if fn := schedClosureArg(pkg.Info, x); fn != nil {
				if lit, isLit := ast.Unparen(fn).(*ast.FuncLit); isLit {
					if names := captureNames(pkg.Info, lit); names != "" {
						add(lit.Pos(), "schedules a closure capturing "+names+" (one allocation per event; build it once and reschedule by value)")
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return out
}

// isPanicCall reports whether call invokes the panic builtin.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent {
		return false
	}
	b, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin && b.Name() == "panic"
}

// callAllocDesc classifies one call expression as an allocation, or "".
func callAllocDesc(info *types.Info, call *ast.CallExpr, nilStart map[types.Object]bool) string {
	// Builtins: make, new, append.
	if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					return "make(" + types.ExprString(call.Args[0]) + ") allocates"
				}
			case "new":
				if len(call.Args) > 0 {
					return "new(" + types.ExprString(call.Args[0]) + ") allocates"
				}
			case "append":
				if len(call.Args) > 0 {
					if root := rootIdent(call.Args[0]); root != nil && nilStart[info.Uses[root]] {
						return "append to " + root.Name + ", a slice with no preallocated capacity (every growth reallocates)"
					}
				}
			}
			return ""
		}
	}
	// string ↔ []byte/[]rune conversions.
	if tv, isType := info.Types[call.Fun]; isType && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, info.TypeOf(call.Args[0])
		if isStringBytesConv(dst, src) {
			return "conversion " + types.TypeString(src, nil) + " → " + types.TypeString(dst, nil) + " copies and allocates"
		}
		return ""
	}
	// Per-event formatting and sort.Slice.
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if pkgPath, name, ok := pkgQualified(info, sel); ok {
			switch {
			case pkgPath == "fmt" && (name == "Sprintf" || name == "Sprint" || name == "Sprintln" || name == "Errorf"):
				return "fmt." + name + " allocates per call (boxing plus the result string)"
			case pkgPath == "errors" && name == "New":
				return "errors.New allocates per call"
			case pkgPath == "sort" && (name == "Slice" || name == "SliceStable"):
				return "sort." + name + " allocates a closure and a reflect-based swapper per call; use slices.Sort or a pointer-receiver sort.Interface"
			}
		}
	}
	return ""
}

// nilStartSlices collects fd's local slice variables declared with no
// backing capacity: `var s []T`, `s := []T{}`, or a make with zero (or
// omitted) capacity — the append-growth shape.
func nilStartSlices(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	markDef := func(id *ast.Ident) {
		if obj := pkg.Info.Defs[id]; obj != nil {
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				out[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeclStmt:
			gd, isGen := x.Decl.(*ast.GenDecl)
			if !isGen || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, isVal := spec.(*ast.ValueSpec)
				if !isVal || len(vs.Values) > 0 {
					continue
				}
				for _, name := range vs.Names {
					markDef(name)
				}
			}
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE || len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, rhs := range x.Rhs {
				id, isIdent := x.Lhs[i].(*ast.Ident)
				if !isIdent {
					continue
				}
				if zeroCapSliceExpr(pkg.Info, rhs) {
					markDef(id)
				}
			}
		}
		return true
	})
	return out
}

// zeroCapSliceExpr reports whether e builds a slice with no retained
// capacity: an empty slice literal or a make with zero/omitted cap.
func zeroCapSliceExpr(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		_, isSlice := info.TypeOf(x).Underlying().(*types.Slice)
		return isSlice && len(x.Elts) == 0
	case *ast.CallExpr:
		id, isIdent := ast.Unparen(x.Fun).(*ast.Ident)
		if !isIdent {
			return false
		}
		b, isBuiltin := info.Uses[id].(*types.Builtin)
		if !isBuiltin || b.Name() != "make" || len(x.Args) < 2 {
			return false
		}
		if _, isSlice := info.TypeOf(x).Underlying().(*types.Slice); !isSlice {
			return false
		}
		cap := x.Args[len(x.Args)-1]
		lit, isLit := ast.Unparen(cap).(*ast.BasicLit)
		return isLit && lit.Value == "0"
	}
	return false
}

// isStringBytesConv reports whether dst(src) is one of the allocating
// string conversions.
func isStringBytesConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, isBasic := t.Underlying().(*types.Basic)
		return isBasic && b.Info()&types.IsString != 0
	}
	isByteRuneSlice := func(t types.Type) bool {
		s, isSlice := t.Underlying().(*types.Slice)
		if !isSlice {
			return false
		}
		b, isBasic := s.Elem().Underlying().(*types.Basic)
		return isBasic && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteRuneSlice(src)) || (isByteRuneSlice(dst) && isStr(src))
}

// captureNames renders a closure's captured locals for messages, or ""
// when it captures nothing (a capture-free literal is a static func —
// no allocation).
func captureNames(info *types.Info, lit *ast.FuncLit) string {
	cvs := freeVars(info, lit)
	if len(cvs) == 0 {
		return ""
	}
	names := make([]string, 0, len(cvs))
	for _, cv := range cvs {
		names = append(names, cv.obj.Name())
	}
	return strings.Join(names, ", ")
}

// typeLabel renders a composite literal's type for messages.
func typeLabel(info *types.Info, cl *ast.CompositeLit) string {
	if t := info.TypeOf(cl); t != nil {
		return types.TypeString(t, func(p *types.Package) string { return p.Name() })
	}
	return "value"
}

// computeAllocFacts derives one function's allocation summary: short
// descriptions of its direct per-event allocations plus, transitively,
// those of its callees — the bottom-up leg that lets hotalloc flag a
// hot call into a cold helper that allocates three frames down.
func computeAllocFacts(prog *Program, node *CGNode) []string {
	var facts []string
	for _, s := range allocSites(node.Pkg, node.Decl, false) {
		facts = append(facts, s.desc)
		if len(facts) >= maxAllocFacts {
			return facts
		}
	}
	// Callee facts in source order, one per callee.
	seen := map[string]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if len(facts) >= maxAllocFacts {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // runs later, not per call of this function
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		for _, key := range calleeKeys(node.Pkg.Info, call, prog.methodImpls) {
			if seen[key] || len(facts) >= maxAllocFacts {
				continue
			}
			seen[key] = true
			if hotCallee(prog, key) {
				// A //iobt:hot callee's allocations are reported (and
				// waived) in its own body; a waived pool refill must not
				// reappear as a fact in every transitive caller.
				continue
			}
			if sub := prog.allocFacts[key]; len(sub) > 0 {
				facts = append(facts, "calls "+displayName(key)+", which "+sub[0])
			}
		}
		return true
	})
	return facts
}

func runHotAlloc(p *Pass) {
	reportMisplaced(p, map[string]string{noteHot: "a function declaration"})
	for _, f := range p.Files {
		// Test files are exempt, like gocapture: harness and fixture code
		// is not the event loop.
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			fn, isFn := p.Info.Defs[fd.Name].(*types.Func)
			if !isFn || !p.Prog.notes.funcHas(fn, noteHot) {
				continue
			}
			for _, s := range allocSites(&Package{Info: p.Info}, fd, true) {
				p.Reportf(s.pos, "%s; //iobt:hot paths must not allocate per event", s.desc)
			}
			checkHotCalls(p, fd)
		}
	}
}

// checkHotCalls reports calls from a hot body into callees whose
// allocation summary is non-empty. Hot callees are skipped — their
// bodies carry their own findings and waivers — as are calls inside
// nested literals' creation sites already reported above.
func checkHotCalls(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		for _, key := range calleeKeys(p.Info, call, p.Prog.methodImpls) {
			if p.Prog.Graph.Nodes[key] == nil {
				continue // external: no body to summarize
			}
			if hotCallee(p.Prog, key) {
				continue
			}
			facts := p.Prog.allocFacts[key]
			if len(facts) == 0 {
				continue
			}
			p.Reportf(call.Pos(), "call to %s allocates per event: %s",
				displayName(key), strings.Join(facts, "; "))
		}
		return true
	})
}

// hotCallee reports whether key names a function annotated //iobt:hot.
func hotCallee(prog *Program, key string) bool {
	node := prog.Graph.Nodes[key]
	if node == nil {
		return false
	}
	fn, isFn := node.Pkg.Info.Defs[node.Decl.Name].(*types.Func)
	return isFn && prog.notes.funcHas(fn, noteHot)
}

// AllocFacts exposes a function's computed allocation summary for
// tests and debugging, keyed like Summary.
func (prog *Program) AllocFacts(key string) []string { return prog.allocFacts[key] }
