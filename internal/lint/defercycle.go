package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeferCycle flags defer statements and lock acquisitions inside loops
// of //iobt:hot functions. A defer in a per-event loop does not run per
// iteration — it stacks one record per iteration and fires them all at
// function exit, which is both a latency cliff and (for locks) a
// correctness trap: every iteration's lock is still held when the next
// one is taken. A per-iteration mutex acquisition in a hot loop is a
// serialization point the profile attributes to runtime internals
// rather than the loop body; the fix is to hoist the lock around the
// loop, batch the critical section, or restructure so the loop owns
// its data. Intentional per-element handoffs (a mailbox swap per lane
// per window) are waived where they happen with //iobt:allow.
var DeferCycle = &Analyzer{
	Name: "defercycle",
	Doc:  "//iobt:hot functions must not defer or acquire sync.Mutex/RWMutex locks inside per-event loops; defers stack until function exit and per-iteration locks serialize the hot loop",
	Run:  runDeferCycle,
}

func runDeferCycle(p *Pass) {
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			fn, isFn := p.Info.Defs[fd.Name].(*types.Func)
			if !isFn || !p.Prog.notes.funcHas(fn, noteHot) {
				continue
			}
			checkHotLoops(p, fd.Body)
		}
	}
}

// checkHotLoops walks a hot body tracking whether the current node sits
// inside a loop. A function literal resets the loop context — its body
// executes when the closure runs, not per iteration of the enclosing
// loop — but is still walked for loops of its own.
func checkHotLoops(p *Pass, body *ast.BlockStmt) {
	var visit func(n ast.Node, inLoop bool)
	children := func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				visit(c, inLoop)
			}
			return false
		})
	}
	visit = func(n ast.Node, inLoop bool) {
		switch x := n.(type) {
		case *ast.FuncLit:
			visit(x.Body, false)
		case *ast.ForStmt:
			if x.Init != nil {
				visit(x.Init, inLoop)
			}
			if x.Cond != nil {
				visit(x.Cond, inLoop)
			}
			if x.Post != nil {
				visit(x.Post, inLoop)
			}
			visit(x.Body, true)
		case *ast.RangeStmt:
			if x.X != nil {
				visit(x.X, inLoop)
			}
			visit(x.Body, true)
		case *ast.DeferStmt:
			if inLoop {
				p.Reportf(x.Pos(), "defer inside a per-event loop stacks one record per iteration and runs them all at function exit; hoist it or call explicitly")
			}
			children(n, inLoop)
		case *ast.CallExpr:
			if inLoop {
				if sel, isSel := ast.Unparen(x.Fun).(*ast.SelectorExpr); isSel {
					if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
						named := receiverNamed(p.Info, sel)
						if namedIs(named, "sync", "Mutex") || namedIs(named, "sync", "RWMutex") {
							p.Reportf(x.Pos(), "acquires %s inside a per-event loop; hoist the lock around the loop or batch the critical section",
								types.ExprString(sel.X))
						}
					}
				}
			}
			children(n, inLoop)
		default:
			children(n, inLoop)
		}
	}
	visit(body, false)
}
