package lint

import (
	"go/ast"
	"go/types"
)

// pkgQualified resolves a selector like `rand.Intn` to the imported
// package path and member name. It returns ok=false for method calls
// and unqualified identifiers.
func pkgQualified(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// receiverNamed returns the named type of a method call's receiver
// expression (pointers dereferenced), or nil when the selector is not
// a method call on a named type.
func receiverNamed(info *types.Info, sel *ast.SelectorExpr) *types.Named {
	t := info.TypeOf(sel.X)
	if t == nil {
		return nil
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// namedIs reports whether named is defined as pkgPath.typeName.
func namedIs(named *types.Named, pkgPath, typeName string) bool {
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == typeName
}

// rootIdent unwraps parens, unary, index, and field selections down to
// the leftmost identifier, e.g. `(&s.buf[i])` → `s`.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// funcBodies visits every function body in the file: declarations and
// literals. fn receives the body; literals nested in a declaration are
// visited on their own too, but the declaration's visit already spans
// them, so callers doing position math should dedupe by range.
func funcBodies(f *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body)
			}
		case *ast.FuncLit:
			if d.Body != nil {
				fn(d.Body)
			}
		}
		return true
	})
}
