package lint

import (
	"go/ast"
	"go/types"
)

// Shardown enforces the owner-only half of the sharded engine's
// contract (DESIGN.md §12): a value of a type annotated
// //iobt:actor-state belongs to exactly one actor, and only events
// executing on that actor may touch it. Inside ShardCtx event callbacks
// every access to actor state must therefore be *self-rooted* — reached
// through ShardCtx.Self(), through a parameter the caller already
// vouched for, or through a local derived from either. Indexing the
// actor table with a peer ID, ranging over every actor's state, or
// passing a non-self-rooted actor-state value to a helper are all
// findings: that interaction has to travel as a ShardCtx.Send message
// so the barrier protocol serializes it. Setup and collection code
// (functions without a ShardCtx in their signature) runs while the
// engine is quiescent and is exempt.
var Shardown = &Analyzer{
	Name: "shardown",
	Doc:  "//iobt:actor-state values are owner-only: event callbacks may touch them only through ShardCtx.Self()-rooted paths; cross-actor interaction goes through ShardCtx.Send",
	Run:  runShardown,
}

// isShardCtxPtr reports whether t is *sim.ShardCtx.
func isShardCtxPtr(t types.Type) bool {
	p, isPtr := t.(*types.Pointer)
	if !isPtr {
		return false
	}
	named, _ := p.Elem().(*types.Named)
	return namedIs(named, "iobt/internal/sim", "ShardCtx")
}

// isActorState reports whether t (or its pointee) is annotated
// //iobt:actor-state.
func (p *Pass) isActorState(t types.Type) bool {
	return p.Prog.notes.typeHas(t, noteActorState)
}

// actorStateName renders the annotated type's bare name for messages.
func actorStateName(t types.Type) string {
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return named.Obj().Name()
	}
	return t.String()
}

// fieldListHasShardCtx reports whether any entry in the field lists is
// a *sim.ShardCtx parameter.
func fieldListHasShardCtx(info *types.Info, lists ...*ast.FieldList) bool {
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			if isShardCtxPtr(info.TypeOf(f.Type)) {
				return true
			}
		}
	}
	return false
}

// ctxScope is one region of code executing as a shard event callback:
// either a declared function with a *ShardCtx parameter, or a function
// literal with one (an event closure built by a maker without its own
// ShardCtx).
type ctxScope struct {
	body *ast.BlockStmt
	// decl is the enclosing declaration; its actor-state parameters and
	// receiver are trusted self-rooted (the caller is held to the rules
	// at its own call sites).
	decl *ast.FuncDecl
}

// ctxScopes finds the callback scopes in one declaration: the whole
// body when the declaration itself takes a ShardCtx, else the top-most
// ShardCtx-typed function literals inside it.
func ctxScopes(info *types.Info, fd *ast.FuncDecl) []ctxScope {
	if fd.Body == nil {
		return nil
	}
	if fieldListHasShardCtx(info, fd.Recv, fd.Type.Params) {
		return []ctxScope{{body: fd.Body, decl: fd}}
	}
	var out []ctxScope
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		lit, isLit := n.(*ast.FuncLit)
		if !isLit {
			return true
		}
		if fieldListHasShardCtx(info, lit.Type.Params) {
			out = append(out, ctxScope{body: lit.Body, decl: fd})
			return false // inner literals are covered by this scope's walk
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
	return out
}

func runShardown(p *Pass) {
	reportMisplaced(p, map[string]string{
		noteActorState: "a type declaration",
		noteFrozen:     "a type declaration",
	})
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc {
				continue
			}
			for _, scope := range ctxScopes(p.Info, fd) {
				checkScope(p, scope)
			}
		}
	}
}

// scopeState tracks provenance within one callback scope.
type scopeState struct {
	p *Pass
	// self holds objects proven to reference the current actor's own
	// state: trusted parameters plus locals assigned from self-rooted
	// expressions.
	self map[types.Object]bool
	// idx holds integer-ish locals derived from ShardCtx.Self().
	idx map[types.Object]bool
}

func checkScope(p *Pass, scope ctxScope) {
	st := &scopeState{p: p, self: map[types.Object]bool{}, idx: map[types.Object]bool{}}

	// Trust the enclosing declaration's receiver and actor-state
	// parameters: shardown checks the caller's side at the call site.
	trust := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				obj := p.Info.Defs[name]
				if obj != nil && p.isActorState(obj.Type()) {
					st.self[obj] = true
				}
			}
		}
	}
	trust(scope.decl.Recv)
	trust(scope.decl.Type.Params)

	// Provenance collection to a fixpoint: self/idx sets only grow, and
	// chains through locals are short.
	for i := 0; i < 4; i++ {
		before := len(st.self) + len(st.idx)
		ast.Inspect(scope.body, func(n ast.Node) bool {
			asg, isAssign := n.(*ast.AssignStmt)
			if !isAssign || len(asg.Lhs) != len(asg.Rhs) {
				return true
			}
			for j, lhs := range asg.Lhs {
				id, isIdent := ast.Unparen(lhs).(*ast.Ident)
				if !isIdent || id.Name == "_" {
					continue
				}
				obj := p.Info.Defs[id]
				if obj == nil {
					obj = p.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				rhs := asg.Rhs[j]
				if p.isActorState(obj.Type()) && st.selfRooted(rhs) {
					st.self[obj] = true
				}
				if st.selfIndex(rhs) {
					st.idx[obj] = true
				}
			}
			return true
		})
		if len(st.self)+len(st.idx) == before {
			break
		}
	}

	// Check pass.
	ast.Inspect(scope.body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if elem := containerElem(p.Info.TypeOf(x.X)); elem != nil && p.isActorState(elem) {
				p.Reportf(x.X.Pos(),
					"event callback iterates over every actor's %s state; fold global views at a barrier (AtBarrier) or aggregate through ShardCtx.Send messages",
					actorStateName(elem))
				// Treat the iteration variable as self-rooted after the
				// report so one range yields one finding, not a cascade.
				if id, isIdent := x.Value.(*ast.Ident); isIdent {
					if obj := p.Info.Defs[id]; obj != nil {
						st.self[obj] = true
					}
				}
			}
		case *ast.SelectorExpr:
			base := x.X
			if p.isActorState(p.Info.TypeOf(base)) && !st.selfRooted(base) {
				p.Reportf(base.Pos(),
					"actor-state %s accessed through %q, which is not rooted at ShardCtx.Self(); cross-actor interaction must go through ShardCtx.Send",
					actorStateName(p.Info.TypeOf(base)), types.ExprString(base))
			}
		case *ast.CallExpr:
			for _, arg := range x.Args {
				if p.isActorState(p.Info.TypeOf(arg)) && !st.selfRooted(arg) {
					p.Reportf(arg.Pos(),
						"call passes actor-state %s not rooted at ShardCtx.Self(); the callee would touch another actor's state — send that actor a message instead",
						actorStateName(p.Info.TypeOf(arg)))
				}
			}
		}
		return true
	})
}

// containerElem returns the element type of a slice, array, or map, or
// nil for anything else.
func containerElem(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Array:
		return u.Elem()
	case *types.Map:
		return u.Elem()
	}
	return nil
}

// selfRooted reports whether the expression provably references the
// current actor's own state.
func (st *scopeState) selfRooted(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.Ident:
			obj := st.p.Info.Uses[x]
			if obj == nil {
				obj = st.p.Info.Defs[x]
			}
			return obj != nil && st.self[obj]
		case *ast.IndexExpr:
			// container[i]: self-rooted iff the index derives from Self().
			return st.selfIndex(x.Index)
		case *ast.SelectorExpr:
			// A field of self-rooted state stays self-rooted.
			return st.selfRooted(x.X)
		case *ast.CallExpr:
			// The callee's own body and call sites are held to the rules;
			// its result is trusted here.
			return true
		default:
			return false
		}
	}
}

// selfIndex reports whether an index expression derives from
// ShardCtx.Self(): the call itself, a conversion of it, or a local
// assigned from either.
func (st *scopeState) selfIndex(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.CallExpr:
		if st.p.Info.Types[x.Fun].IsType() && len(x.Args) == 1 {
			return st.selfIndex(x.Args[0]) // conversion keeps provenance
		}
		if sel, isSel := ast.Unparen(x.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "Self" {
			return isShardCtxPtr(st.p.Info.TypeOf(sel.X))
		}
		return false
	case *ast.Ident:
		obj := st.p.Info.Uses[x]
		if obj == nil {
			obj = st.p.Info.Defs[x]
		}
		return obj != nil && st.idx[obj]
	}
	// Deliberately NOT trusted: fields of self-rooted state (n.peer is an
	// actor ID too, and indexing the table with it is exactly the
	// cross-actor reach this analyzer exists to catch).
	return false
}
