package lint

// A minimal analysistest in the style of
// golang.org/x/tools/go/analysis/analysistest (which the offline build
// cannot depend on): fixture packages live under testdata/src/<name>,
// and expected findings are declared inline with trailing
//
//	// want `regex`
//
// comments. Every unsuppressed finding must be matched by a want
// directive on its line, and every want directive must be matched by a
// finding. Findings suppressed by a reasoned iobt:allow comment are
// the fixtures' "allowed" cases; tests assert their count separately.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"
)

var (
	wantRe    = regexp.MustCompile(`// want (.+)$`)
	wantArgRe = regexp.MustCompile("`([^`]*)`")
)

// runFixture loads testdata/src/<dir>, applies the analyzers, checks
// the findings against the fixture's want directives, and returns all
// findings (including suppressed) for extra assertions.
func runFixture(t *testing.T, dir string, as ...*Analyzer) []Diagnostic {
	t.Helper()
	pkg, err := LoadFixture(filepath.Join("testdata", "src", dir))
	if err != nil {
		t.Fatal(err)
	}
	diags := NewProgram([]*Package{pkg}).analyzePackage(pkg, as)

	type wantKey struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[wantKey][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				args := wantArgRe.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s: want directive has no backquoted regexp", pkg.Fset.Position(c.Pos()))
				}
				for _, a := range args {
					re, err := regexp.Compile(a[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", a[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					k := wantKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
	return diags
}

// countSuppressed returns the number of findings waived by iobt:allow.
func countSuppressed(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		if d.Suppressed {
			n++
		}
	}
	return n
}

// requireSuppressed asserts the fixture demonstrated n allowed cases.
func requireSuppressed(t *testing.T, diags []Diagnostic, n int) {
	t.Helper()
	if got := countSuppressed(diags); got != n {
		var lines string
		for _, d := range diags {
			lines += fmt.Sprintf("  %s\n", d)
		}
		t.Errorf("suppressed findings = %d, want %d; all findings:\n%s", got, n, lines)
	}
}
