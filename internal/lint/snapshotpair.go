package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SnapshotPair enforces the checkpoint contract structurally: a type
// that declares `Snapshot() []byte` must declare `Restore([]byte)
// error` and `SnapshotName() string` (the full checkpoint.Snapshotter
// surface), and the two halves must agree on the wire format. The
// format check compares the static call profile of the codec — how
// many Int/Int64/Float64/Bool/String/Uint64 calls each side makes, and
// which Encode*/Decode* helper pairs they use — so adding a field to
// Snapshot without teaching Restore to read it back (the PR-3
// incident-counter class of bug) fails the build instead of
// corrupting a failover.
var SnapshotPair = &Analyzer{
	Name: "snapshotpair",
	Doc: "every Snapshot() []byte needs a matching Restore([]byte) error and SnapshotName, " +
		"and both sides must make the same codec calls (same kinds, same counts)",
	Run: runSnapshotPair,
}

// codecKinds are the checkpoint.Encoder/Decoder methods that move one
// value; the two bodies must use them with equal multiplicity.
var codecKinds = map[string]bool{
	"Uint64": true, "Int64": true, "Int": true,
	"Float64": true, "Bool": true, "String": true,
}

// snapMethods gathers one receiver type's checkpoint surface.
type snapMethods struct {
	typeName     string
	snapshot     *ast.FuncDecl
	restore      *ast.FuncDecl
	snapshotName *ast.FuncDecl
}

func runSnapshotPair(p *Pass) {
	byType := map[string]*snapMethods{}
	var order []string
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recv := recvTypeName(fd.Recv.List[0].Type)
			if recv == "" {
				continue
			}
			sm := byType[recv]
			if sm == nil {
				sm = &snapMethods{typeName: recv}
				byType[recv] = sm
				order = append(order, recv)
			}
			switch fd.Name.Name {
			case "Snapshot":
				if sigIs(p, fd, nil, []string{"[]byte"}) {
					sm.snapshot = fd
				}
			case "Restore":
				if sigIs(p, fd, []string{"[]byte"}, []string{"error"}) {
					sm.restore = fd
				}
			case "SnapshotName":
				if sigIs(p, fd, nil, []string{"string"}) {
					sm.snapshotName = fd
				}
			}
		}
	}
	sort.Strings(order)
	for _, name := range order {
		sm := byType[name]
		switch {
		case sm.snapshot != nil && sm.restore == nil:
			p.Reportf(sm.snapshot.Name.Pos(),
				"%s declares Snapshot() []byte but no Restore([]byte) error; checkpointed state must be restorable", sm.typeName)
		case sm.restore != nil && sm.snapshot == nil:
			p.Reportf(sm.restore.Name.Pos(),
				"%s declares Restore([]byte) error but no Snapshot() []byte; restore paths need a producing snapshot", sm.typeName)
		case sm.snapshot != nil && sm.restore != nil:
			if sm.snapshotName == nil {
				p.Reportf(sm.snapshot.Name.Pos(),
					"%s has Snapshot/Restore but no SnapshotName() string; it cannot join a checkpoint.Coordinator section", sm.typeName)
			}
			checkCodecBalance(p, sm)
		}
	}
}

// checkCodecBalance compares the static codec-call profile of the two
// bodies. Counts are static occurrences (a call inside a loop counts
// once), which matches the repo's length-prefixed encoding style: each
// encoded field has exactly one call site on each side.
func checkCodecBalance(p *Pass, sm *snapMethods) {
	enc := codecProfile(p, sm.snapshot, "iobt/internal/checkpoint", "Encoder", "Encode")
	dec := codecProfile(p, sm.restore, "iobt/internal/checkpoint", "Decoder", "Decode")
	if len(enc) == 0 || len(dec) == 0 {
		return // custom encoding style; nothing to compare structurally
	}
	var diffs []string
	keys := map[string]bool{}
	for k := range enc {
		keys[k] = true
	}
	for k := range dec {
		keys[k] = true
	}
	ordered := make([]string, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Strings(ordered)
	for _, k := range ordered {
		if enc[k] != dec[k] {
			diffs = append(diffs, fmt.Sprintf("%s: %d encoded vs %d decoded", k, enc[k], dec[k]))
		}
	}
	if len(diffs) > 0 {
		p.Reportf(sm.snapshot.Name.Pos(),
			"%s.Snapshot and Restore disagree on the wire format (%s); every encoded field must be decoded back",
			sm.typeName, strings.Join(diffs, ", "))
	}
}

// codecProfile counts codec calls in fd's body: methods of the given
// checkpoint type by kind name, plus package-level helpers whose name
// starts with prefix ("Encode"/"Decode"), keyed by the shared suffix
// so EncodeComposite pairs with DecodeComposite.
func codecProfile(p *Pass, fd *ast.FuncDecl, pkgPath, typeName, prefix string) map[string]int {
	counts := map[string]int{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		sel, isSel := call.Fun.(*ast.SelectorExpr)
		if !isSel {
			return true
		}
		if qp, qn, ok := pkgQualified(p.Info, sel); ok {
			if strings.HasPrefix(qn, prefix) && len(qn) > len(prefix) {
				counts["helper "+qp+"."+strings.TrimPrefix(qn, prefix)]++
			}
			return true
		}
		if named := receiverNamed(p.Info, sel); namedIs(named, pkgPath, typeName) && codecKinds[sel.Sel.Name] {
			counts[sel.Sel.Name]++
		}
		return true
	})
	return counts
}

// recvTypeName returns the receiver's base type identifier.
func recvTypeName(t ast.Expr) string {
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return recvTypeName(x.X)
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(x.X)
	case *ast.IndexListExpr:
		return recvTypeName(x.X)
	}
	return ""
}

// sigIs reports whether fd's signature has exactly the given parameter
// and result types (rendered with types.TypeString, unqualified for
// universe types).
func sigIs(p *Pass, fd *ast.FuncDecl, params, results []string) bool {
	fn, isFunc := p.Info.Defs[fd.Name].(*types.Func)
	if !isFunc {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return tupleIs(sig.Params(), params) && tupleIs(sig.Results(), results)
}

func tupleIs(t *types.Tuple, want []string) bool {
	if t.Len() != len(want) {
		return false
	}
	for i := 0; i < t.Len(); i++ {
		if types.TypeString(t.At(i).Type(), nil) != want[i] {
			return false
		}
	}
	return true
}
