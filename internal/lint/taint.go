package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the forward taint engine under dettaint. The property
// tracked is ORDER sensitivity, not secrecy: a value is tainted when
// its content (or the sequence of operations it drives) depends on map
// iteration order or host entropy, both of which vary between
// same-seed runs. Taint enters at sources (range over a map, wall
// clock, unseeded randomness), propagates through assignments,
// arithmetic, composite construction, and calls (using the callee's
// summary), is removed by sorting, and is reported when it reaches a
// determinism sink: checkpoint encoding, RNG stream selection, event
// scheduling, ordered writes, or the return value of an exported
// function when that value is a slice.
//
// Each function is analyzed with its parameters (receiver first)
// carrying symbolic taint, so the same walk that finds concrete
// source→sink flows also derives the function's Summary — which sinks
// each parameter reaches, whether each parameter flows to the results,
// and whether the results are tainted by the function's own sources.
// Callers consume summaries instead of re-walking callee bodies, which
// keeps the whole-program pass linear in program size (bottom-up over
// SCCs; see summaries.go).

// taintKind classifies why a value is order-sensitive.
type taintKind uint8

const (
	// taintMap: content or sequence follows map iteration order.
	taintMap taintKind = iota
	// taintHost: derived from wall clock or unseeded randomness.
	taintHost
	// taintParam: symbolic — follows parameter i of the function under
	// analysis; used only while building summaries, never reported.
	taintParam
)

func (k taintKind) String() string {
	switch k {
	case taintMap:
		return "map-iteration order"
	case taintHost:
		return "host entropy"
	default:
		return "parameter"
	}
}

// An origin is one reason a value is tainted.
type origin struct {
	kind  taintKind
	param int       // parameter index, for taintParam
	pos   token.Pos // source position, for concrete kinds
	what  string    // source description ("range over map[string]int")
	// via is the call chain the taint crossed, innermost first; empty
	// for taint born in the current function.
	via []string
}

// interproc reports whether the taint crossed a function boundary —
// the flows maporder cannot see, and the only ones dettaint reports.
func (o origin) interproc() bool { return len(o.via) > 0 }

func (o origin) describe(fset *token.FileSet) string {
	s := o.kind.String() + " (" + o.what
	if o.pos.IsValid() {
		p := fset.Position(o.pos)
		s += fmt.Sprintf(" at %s:%d", shortFile(p.Filename), p.Line)
	}
	s += ")"
	if len(o.via) > 0 {
		s += " via " + strings.Join(o.via, " → ")
	}
	return s
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// mergeOrigins unions two origin sets, deduplicating by identity and
// keeping the shortest via chain for each.
func mergeOrigins(a, b []origin) []origin {
	if len(b) == 0 {
		return a
	}
	out := a
	for _, o := range b {
		dup := false
		for i, e := range out {
			if e.kind == o.kind && e.param == o.param && e.pos == o.pos {
				if len(o.via) < len(e.via) {
					out[i] = o
				}
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, o)
		}
	}
	return out
}

// pushVia returns origins with one more call hop prepended.
func pushVia(os []origin, callee string) []origin {
	out := make([]origin, len(os))
	for i, o := range os {
		o.via = append([]string{callee}, o.via...)
		out[i] = o
	}
	return out
}

// A sinkHit records that taint reached one sink, for summaries.
type sinkHit struct {
	kind string // "encode", "rng", "sched", "write", "escape"
	desc string
	via  []string
}

// A Summary is one function's interprocedural behavior, as seen by its
// callers. Parameter indexing counts the receiver as parameter 0;
// plain functions start at 0 with their first parameter.
type Summary struct {
	// ParamSinks maps a parameter index to the sinks its taint reaches,
	// in this function or transitively through its callees.
	ParamSinks map[int][]sinkHit
	// ParamOut marks parameters whose taint flows into a result.
	ParamOut map[int]bool
	// ResultTaint lists concrete origins (this function's own sources,
	// or its callees') that taint the results.
	ResultTaint []origin
}

func newSummary() *Summary {
	return &Summary{ParamSinks: map[int][]sinkHit{}, ParamOut: map[int]bool{}}
}

// fingerprint serializes the summary for fixpoint detection in SCCs.
func (s *Summary) fingerprint() string {
	var b strings.Builder
	idx := make([]int, 0, len(s.ParamSinks))
	for i := range s.ParamSinks {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		fmt.Fprintf(&b, "P%d:", i)
		for _, h := range s.ParamSinks[i] {
			fmt.Fprintf(&b, "%s@%s;", h.kind, h.desc)
		}
	}
	idx = idx[:0]
	for i := range s.ParamOut {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	fmt.Fprintf(&b, "|out:%v|", idx)
	for _, o := range s.ResultTaint {
		fmt.Fprintf(&b, "R%d.%d;", o.kind, o.pos)
	}
	return b.String()
}

func (s *Summary) addParamSink(i int, h sinkHit) {
	for _, e := range s.ParamSinks[i] {
		if e.kind == h.kind && e.desc == h.desc {
			return
		}
	}
	s.ParamSinks[i] = append(s.ParamSinks[i], h)
}

// A programFinding is one dettaint diagnostic, attributed to the
// package it occurs in (the dettaint analyzer emits it when that
// package's pass runs).
type programFinding struct {
	pkgPath string
	pos     token.Pos
	msg     string
}

// taintState is the per-function analysis state.
type taintState struct {
	prog *Program
	pkg  *Package
	node *CGNode
	// vars carries each object's current taint.
	vars map[types.Object][]origin
	// results holds named result objects, for bare returns.
	results []types.Object
	sum     *Summary
	// record is true on the reporting pass (state is warm).
	record bool
}

// analyzeFunc runs the two-pass transfer over node's body: the first
// pass warms variable state (so taint introduced late in the source
// still reaches uses earlier in a loop body), the second records
// summary entries and findings.
func analyzeFunc(prog *Program, node *CGNode) *Summary {
	st := &taintState{prog: prog, pkg: node.Pkg, node: node, sum: newSummary()}
	for pass := 0; pass < 2; pass++ {
		st.record = pass == 1
		if pass == 0 {
			st.vars = map[types.Object][]origin{}
		}
		st.seedParams()
		st.walkStmts(node.Decl.Body.List)
	}
	return st.sum
}

// paramObjects lists the function's receiver (if any) then parameters.
func paramObjects(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			addField(f)
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			addField(f)
		}
	}
	return out
}

func (st *taintState) seedParams() {
	fd := st.node.Decl
	for i, obj := range paramObjects(st.pkg, fd) {
		st.vars[obj] = mergeOrigins(st.vars[obj], []origin{{kind: taintParam, param: i}})
	}
	st.results = nil
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, name := range f.Names {
				if obj := st.pkg.Info.Defs[name]; obj != nil {
					st.results = append(st.results, obj)
				}
			}
		}
	}
}

// walkStmts processes statements in source order (flow-insensitive
// within branches: all arms are walked).
func (st *taintState) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		st.walkStmt(s)
	}
}

func (st *taintState) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.AssignStmt:
		st.assign(x)
	case *ast.DeclStmt:
		if gd, isGen := x.Decl.(*ast.GenDecl); isGen {
			for _, spec := range gd.Specs {
				vs, isVal := spec.(*ast.ValueSpec)
				if !isVal {
					continue
				}
				for i, name := range vs.Names {
					obj := st.pkg.Info.Defs[name]
					if obj == nil {
						continue
					}
					var t []origin
					if len(vs.Values) == len(vs.Names) {
						t = st.taintOf(vs.Values[i])
					} else if len(vs.Values) == 1 {
						t = st.taintOf(vs.Values[0])
					}
					st.vars[obj] = t
				}
			}
		}
	case *ast.ExprStmt:
		st.taintOf(x.X)
	case *ast.IncDecStmt:
		// x++ adds a constant: order-insensitive.
	case *ast.GoStmt:
		st.taintOf(x.Call)
	case *ast.DeferStmt:
		st.taintOf(x.Call)
	case *ast.ReturnStmt:
		st.handleReturn(x)
	case *ast.BlockStmt:
		st.walkStmts(x.List)
	case *ast.IfStmt:
		st.walkStmt(x.Init)
		st.taintOf(x.Cond)
		st.walkStmt(x.Body)
		st.walkStmt(x.Else)
	case *ast.ForStmt:
		st.walkStmt(x.Init)
		if x.Cond != nil {
			st.taintOf(x.Cond)
		}
		st.walkStmt(x.Body)
		st.walkStmt(x.Post)
	case *ast.RangeStmt:
		st.handleRange(x)
	case *ast.SwitchStmt:
		st.walkStmt(x.Init)
		if x.Tag != nil {
			st.taintOf(x.Tag)
		}
		for _, c := range x.Body.List {
			if cc, isCase := c.(*ast.CaseClause); isCase {
				st.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		st.walkStmt(x.Init)
		st.walkStmt(x.Assign)
		for _, c := range x.Body.List {
			if cc, isCase := c.(*ast.CaseClause); isCase {
				st.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, isComm := c.(*ast.CommClause); isComm {
				st.walkStmt(cc.Comm)
				st.walkStmts(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		st.walkStmt(x.Stmt)
	case *ast.SendStmt:
		st.taintOf(x.Value)
	}
}

// handleRange taints the iteration variables of a range over a map
// (both key and value follow iteration order) and propagates element
// taint for slices, arrays, and channels.
func (st *taintState) handleRange(x *ast.RangeStmt) {
	var kv []origin
	t := st.pkg.Info.TypeOf(x.X)
	if t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			kv = []origin{{kind: taintMap, pos: x.Pos(),
				what: "range over " + types.TypeString(t, nil)}}
		} else {
			kv = st.taintOf(x.X)
		}
	}
	for _, e := range []ast.Expr{x.Key, x.Value} {
		if e == nil {
			continue
		}
		if id, isIdent := e.(*ast.Ident); isIdent {
			if obj := st.objectOf(id); obj != nil {
				st.vars[obj] = kv
			}
		}
	}
	st.walkStmt(x.Body)
}

func (st *taintState) objectOf(id *ast.Ident) types.Object {
	if obj := st.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return st.pkg.Info.Uses[id]
}

// integerCommutative reports whether a compound assignment on an
// integer-typed lvalue is an order-insensitive reduction (+=, |=, &=,
// ^=, *= over integers commute and associate exactly, so accumulating
// in map order is still deterministic; float accumulation is not).
func (st *taintState) integerCommutative(tok token.Token, lhs ast.Expr) bool {
	switch tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
	default:
		return false
	}
	t := st.pkg.Info.TypeOf(lhs)
	if t == nil {
		return false
	}
	b, isBasic := t.Underlying().(*types.Basic)
	return isBasic && b.Info()&types.IsInteger != 0
}

func (st *taintState) assign(x *ast.AssignStmt) {
	// Compound assignment: merge into the existing taint, except for
	// commutative integer reductions.
	if x.Tok != token.ASSIGN && x.Tok != token.DEFINE {
		if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
			rt := st.taintOf(x.Rhs[0])
			if st.integerCommutative(x.Tok, x.Lhs[0]) {
				return
			}
			st.mergeInto(x.Lhs[0], rt)
		}
		return
	}

	if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
		// Multi-value: a call, map index, or type assertion. All
		// destinations inherit the combined taint (per-result summaries
		// would be more precise; combined is sound enough here).
		rt := st.taintOf(x.Rhs[0])
		for _, lhs := range x.Lhs {
			st.setOrMerge(lhs, rt)
		}
		return
	}
	for i, lhs := range x.Lhs {
		if i >= len(x.Rhs) {
			break
		}
		st.setOrMerge(lhs, st.taintOf(x.Rhs[i]))
	}
}

// setOrMerge writes taint to an lvalue: plain identifiers get a strong
// update, element/field writes merge into the container's object (a
// tainted element makes the aggregate order-sensitive).
func (st *taintState) setOrMerge(lhs ast.Expr, t []origin) {
	if id, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
		if id.Name == "_" {
			return
		}
		if obj := st.objectOf(id); obj != nil {
			st.vars[obj] = t
		}
		return
	}
	st.mergeInto(lhs, t)
}

func (st *taintState) mergeInto(lhs ast.Expr, t []origin) {
	if len(t) == 0 {
		return
	}
	if root := rootIdent(lhs); root != nil {
		if obj := st.objectOf(root); obj != nil {
			st.vars[obj] = mergeOrigins(st.vars[obj], t)
		}
	}
}

// taintOf evaluates an expression's taint, visiting calls for their
// side effects (sink checks) along the way.
func (st *taintState) taintOf(e ast.Expr) []origin {
	switch x := e.(type) {
	case nil:
		return nil
	case *ast.Ident:
		if obj := st.objectOf(x); obj != nil {
			return st.vars[obj]
		}
		return nil
	case *ast.ParenExpr:
		return st.taintOf(x.X)
	case *ast.SelectorExpr:
		// Field access shares the container's taint; package-qualified
		// names carry none.
		if _, isPkg := st.pkg.Info.Uses[unparenIdent(x.X)].(*types.PkgName); isPkg {
			return nil
		}
		return st.taintOf(x.X)
	case *ast.IndexExpr:
		return mergeOrigins(st.taintOf(x.X), st.taintOf(x.Index))
	case *ast.IndexListExpr:
		return st.taintOf(x.X)
	case *ast.SliceExpr:
		return st.taintOf(x.X)
	case *ast.StarExpr:
		return st.taintOf(x.X)
	case *ast.UnaryExpr:
		return st.taintOf(x.X)
	case *ast.BinaryExpr:
		return mergeOrigins(st.taintOf(x.X), st.taintOf(x.Y))
	case *ast.KeyValueExpr:
		return mergeOrigins(st.taintOf(x.Key), st.taintOf(x.Value))
	case *ast.CompositeLit:
		var t []origin
		for _, el := range x.Elts {
			t = mergeOrigins(t, st.taintOf(el))
		}
		return t
	case *ast.TypeAssertExpr:
		return st.taintOf(x.X)
	case *ast.FuncLit:
		// The literal's body runs in this function's scope; walk it so
		// sinks inside closures (scheduled callbacks) are checked
		// against the shared state.
		st.walkStmt(x.Body)
		return nil
	case *ast.CallExpr:
		return st.visitCall(x)
	}
	return nil
}

func unparenIdent(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

func (st *taintState) handleReturn(x *ast.ReturnStmt) {
	record := func(e ast.Expr, t []origin) {
		for _, o := range t {
			switch o.kind {
			case taintParam:
				if st.record {
					st.sum.ParamOut[o.param] = true
				}
			default:
				if st.record {
					st.sum.ResultTaint = mergeOrigins(st.sum.ResultTaint, []origin{o})
					st.checkEscape(e, o, x.Pos())
				}
			}
		}
	}
	if len(x.Results) == 0 {
		for _, obj := range st.results {
			record(nil, st.vars[obj])
		}
		return
	}
	for _, e := range x.Results {
		record(e, st.taintOf(e))
	}
}

// checkEscape reports an exported function returning a slice whose
// order is map-iteration-tainted through a helper — the cross-function
// version of maporder's escaping-slice rule.
func (st *taintState) checkEscape(e ast.Expr, o origin, retPos token.Pos) {
	if o.kind != taintMap || !o.interproc() || !st.node.Decl.Name.IsExported() {
		return
	}
	if e == nil {
		return
	}
	t := st.pkg.Info.TypeOf(e)
	if t == nil {
		return
	}
	if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
		return
	}
	st.prog.report(st.pkg, retPos,
		"exported %s returns a slice ordered by %s without sorting; callers observe a different order every run",
		st.node.Decl.Name.Name, o.describe(st.pkg.Fset))
}

// visitCall checks the call against sinks and sanitizers, then returns
// the taint of its results.
func (st *taintState) visitCall(call *ast.CallExpr) []origin {
	// Builtins.
	if id := unparenIdent(call.Fun); id != nil {
		if _, isBuiltin := st.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				var t []origin
				for _, a := range call.Args {
					t = mergeOrigins(t, st.taintOf(a))
				}
				return t
			case "copy":
				if len(call.Args) == 2 {
					st.mergeInto(call.Args[0], st.taintOf(call.Args[1]))
				}
				return nil
			case "len", "cap", "delete", "make", "new", "clear", "min", "max":
				for _, a := range call.Args {
					st.taintOf(a)
				}
				return nil
			}
			return nil
		}
		// Conversions: T(x) keeps x's taint.
		if _, isType := st.pkg.Info.Uses[id].(*types.TypeName); isType {
			if len(call.Args) == 1 {
				return st.taintOf(call.Args[0])
			}
			return nil
		}
	}

	// Sanitizers: stdlib sorters and local sortXxx helpers remove
	// order taint from their argument.
	if st.isSorter(call) {
		if len(call.Args) > 0 {
			st.sanitize(call.Args[0])
		}
		return nil
	}

	// Sources: wall clock and unseeded randomness.
	if o, isSource := st.entropySource(call); isSource {
		for _, a := range call.Args {
			st.taintOf(a)
		}
		return []origin{o}
	}

	// Evaluate argument taint (receiver first for method calls), which
	// also recursively visits nested calls.
	args, argTaint := st.callArguments(call)

	// Sinks.
	if kind, desc, isSink := st.sinkCall(call); isSink {
		for i, t := range argTaint {
			_ = i
			st.recordSinkFlow(call.Pos(), kind, desc, nil, t)
		}
	}

	// Callee summaries.
	var out []origin
	for _, key := range calleeKeys(st.pkg.Info, call, st.prog.methodImpls) {
		sum := st.prog.summaries[key]
		if sum == nil {
			continue
		}
		calleeName := displayName(key)
		for j, t := range argTaint {
			if len(t) == 0 {
				continue
			}
			for _, h := range sum.ParamSinks[j] {
				st.recordSinkFlow(argPos(call, args, j), h.kind, h.desc,
					append([]string{calleeName}, h.via...), t)
			}
			if sum.ParamOut[j] {
				out = mergeOrigins(out, pushVia(t, calleeName))
			}
		}
		if len(sum.ResultTaint) > 0 {
			out = mergeOrigins(out, pushVia(sum.ResultTaint, calleeName))
		}
	}
	if out != nil {
		return out
	}

	// Unknown callee (stdlib, external): conservatively pass argument
	// taint through to the result — strings.Join of a tainted slice is
	// a tainted string.
	if staticCallee(st.pkg.Info, call) != nil {
		if _, known := st.knownCallee(call); known {
			// Analyzed function with an empty summary: results clean.
			return nil
		}
	}
	var t []origin
	for _, a := range argTaint {
		t = mergeOrigins(t, a)
	}
	return t
}

// knownCallee reports whether the call statically reaches a function
// whose body was analyzed (so its summary is authoritative).
func (st *taintState) knownCallee(call *ast.CallExpr) (*CGNode, bool) {
	for _, key := range calleeKeys(st.pkg.Info, call, st.prog.methodImpls) {
		if n, known := st.prog.Graph.Nodes[key]; known {
			return n, true
		}
	}
	return nil, false
}

// callArguments returns the call's argument expressions with the
// receiver (for method calls) prepended, plus each one's taint —
// indexed to match Summary parameter numbering.
func (st *taintState) callArguments(call *ast.CallExpr) ([]ast.Expr, [][]origin) {
	var args []ast.Expr
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if _, isMethod := st.pkg.Info.Selections[sel]; isMethod {
			args = append(args, sel.X)
		}
	}
	args = append(args, call.Args...)
	taints := make([][]origin, len(args))
	for i, a := range args {
		taints[i] = st.taintOf(a)
	}
	return args, taints
}

func argPos(call *ast.CallExpr, args []ast.Expr, j int) token.Pos {
	if j < len(args) {
		return args[j].Pos()
	}
	return call.Pos()
}

// recordSinkFlow routes taint arriving at a sink: symbolic taint feeds
// the summary; concrete taint that crossed a function boundary is a
// finding.
func (st *taintState) recordSinkFlow(pos token.Pos, kind, desc string, via []string, taint []origin) {
	if !st.record {
		return
	}
	for _, o := range taint {
		if o.kind == taintParam {
			st.sum.addParamSink(o.param, sinkHit{kind: kind, desc: desc, via: via})
			continue
		}
		if !o.interproc() && len(via) == 0 {
			continue // purely local flow: maporder/detrand territory
		}
		sink := desc
		if len(via) > 0 {
			sink += " (reached inside " + strings.Join(via, " → ") + ")"
		}
		st.prog.report(st.pkg, pos,
			"value tainted by %s flows into %s; same-seed runs diverge — sort (or derive deterministically) before this call",
			o.describe(st.pkg.Fset), sink)
	}
}

// sinkDesc labels per sink kind.
var sinkKindDesc = map[string]string{
	"encode": "checkpoint encoding",
	"rng":    "RNG stream selection",
	"sched":  "event scheduling",
	"write":  "ordered output",
}

// sinkCall classifies a call as a determinism sink.
func (st *taintState) sinkCall(call *ast.CallExpr) (kind, desc string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if pkgPath, name, qualified := pkgQualified(st.pkg.Info, sel); qualified {
		if orderedPkgFuncs[pkgPath][name] {
			return "write", "ordered output (" + pkgPath + "." + name + ")", true
		}
		if pkgPath == "iobt/internal/compose" && strings.HasPrefix(name, "Encode") {
			return "encode", "checkpoint encoding (" + name + ")", true
		}
		return "", "", false
	}
	named := receiverNamed(st.pkg.Info, sel)
	switch {
	case namedIs(named, "iobt/internal/checkpoint", "Encoder"):
		return "encode", "checkpoint encoding (Encoder." + sel.Sel.Name + ")", true
	case namedIs(named, "iobt/internal/sim", "RNG"):
		return "rng", "the seeded RNG (RNG." + sel.Sel.Name + ")", true
	case namedIs(named, "iobt/internal/sim", "Engine") &&
		(sel.Sel.Name == "Schedule" || sel.Sel.Name == "ScheduleAt" || sel.Sel.Name == "Every"):
		return "sched", "event scheduling (Engine." + sel.Sel.Name + ")", true
	case orderedWriteMethods[sel.Sel.Name]:
		return "write", "ordered output (" + sel.Sel.Name + ")", true
	}
	return "", "", false
}

// globalRandFuncs are the math/rand entry points that draw from the
// process-global (host-seeded) source. Constructors like rand.New and
// rand.NewSource take an explicit seed and are NOT entropy — sim.NewRNG
// wraps them to build the deterministic streams; detrand already
// polices where raw constructors may appear.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "IntN": true, "Int32": true,
	"Int32N": true, "Int64": true, "Int64N": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true, "Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true,
}

// entropySource classifies a call as a host-entropy source: a wall
// clock read or a draw from an unseeded random source.
func (st *taintState) entropySource(call *ast.CallExpr) (origin, bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return origin{}, false
	}
	pkgPath, name, qualified := pkgQualified(st.pkg.Info, sel)
	if !qualified {
		return origin{}, false
	}
	switch pkgPath {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			return origin{kind: taintHost, pos: call.Pos(), what: "time." + name}, true
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[name] {
			return origin{kind: taintHost, pos: call.Pos(), what: pkgPath + "." + name}, true
		}
	case "crypto/rand":
		if _, isType := st.pkg.Info.Uses[sel.Sel].(*types.TypeName); !isType {
			return origin{kind: taintHost, pos: call.Pos(), what: pkgPath + "." + name}, true
		}
	}
	return origin{}, false
}

// isSorter recognizes sorting calls: the stdlib sort/slices entry
// points and local helpers following the sortXxx convention.
func (st *taintState) isSorter(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		pkgPath, name, qualified := pkgQualified(st.pkg.Info, fun)
		return qualified && sortFuncs[pkgPath][name]
	case *ast.Ident:
		if _, isBuiltin := st.pkg.Info.Uses[fun].(*types.Builtin); isBuiltin {
			return false
		}
		return strings.HasPrefix(strings.ToLower(fun.Name), "sort")
	}
	return false
}

// sanitize clears order taint from the argument's root object (its
// contents are now in a canonical order).
func (st *taintState) sanitize(e ast.Expr) {
	if root := rootIdent(e); root != nil {
		if obj := st.objectOf(root); obj != nil {
			var kept []origin
			for _, o := range st.vars[obj] {
				if o.kind == taintHost {
					kept = append(kept, o) // sorting does not launder entropy
				}
			}
			st.vars[obj] = kept
		}
	}
}

// displayName shortens a function key for messages:
// "(*iobt/internal/mesh.Network).Send" → "Network.Send".
func displayName(key string) string {
	s := strings.TrimPrefix(key, "(")
	s = strings.ReplaceAll(s, ")", "")
	s = strings.TrimPrefix(s, "*")
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.IndexByte(s, '.'); i >= 0 {
		s = s[i+1:]
	}
	return s
}
