package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// GoCapture polices what closures handed to the sharded engine may
// close over. A callback scheduled through ShardCtx.Schedule,
// ShardCtx.Send, or Sharded.ScheduleActor runs later, on whichever
// worker owns the target actor, so anything it captures is shared
// across goroutines. The allowed captures are exactly the shapes the
// engine's contract makes safe: immutable values (basics, strings,
// durations, structs and arrays of those), the *ShardCtx parameter,
// //iobt:actor-state values (ownership rides along with the event; the
// shardown analyzer polices access), //iobt:frozen setup context,
// mutex-guarded handles (a pointer to a struct with its own
// sync.Mutex/RWMutex field), channels, sync/atomic/context types, and
// function values. Everything else — bare slices, maps, pointers to
// unguarded structs — is a finding.
//
// The rule is interprocedural: a maker function whose parameter flows
// into a returned or scheduled event closure marks that parameter as
// captured in its summary, and every call site is checked against the
// same classification — `r.receive(key, data, ...)` is held to the rule
// even though the closure literal lives in receive, not at the Send.
//
// Inside a ShardCtx callback scope the `go` statement itself is a
// finding regardless of captures: event callbacks must schedule
// follow-up events, never spawn goroutines the barrier protocol cannot
// see. (Goroutines outside callback scopes are conventional mutex- and
// channel-disciplined concurrency covered by the race detector, not by
// this analyzer.)
var GoCapture = &Analyzer{
	Name: "gocapture",
	Doc:  "closures scheduled on the sharded engine may capture only immutable values, the ShardCtx, actor-state, frozen setup context, or mutex-guarded handles; `go` inside an event callback is always a finding",
	Run:  runGoCapture,
}

// schedClosureArg returns the callback argument of a sharded-engine
// scheduling call (ShardCtx.Schedule/Send, Sharded.ScheduleActor), or
// nil.
func schedClosureArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) == 0 {
		return nil
	}
	named := receiverNamed(info, sel)
	switch {
	case namedIs(named, "iobt/internal/sim", "ShardCtx") &&
		(sel.Sel.Name == "Schedule" || sel.Sel.Name == "Send"):
		return call.Args[len(call.Args)-1]
	case namedIs(named, "iobt/internal/sim", "Sharded") && sel.Sel.Name == "ScheduleActor":
		return call.Args[len(call.Args)-1]
	}
	return nil
}

// isCtxCallback reports whether the literal's type is a shard event
// callback (it has a *ShardCtx parameter).
func isCtxCallback(info *types.Info, lit *ast.FuncLit) bool {
	return fieldListHasShardCtx(info, lit.Type.Params)
}

// A capturedVar is one free variable of a closure: an object declared
// in an enclosing function and referenced inside the literal.
type capturedVar struct {
	obj types.Object
	pos ast.Node // first referencing identifier, for reporting
}

// freeVars lists the closure's captured function-local variables in
// first-use order. Package-level variables and struct fields are not
// captures (the field's base is), and the literal's own declarations
// are excluded by position.
func freeVars(info *types.Info, lit *ast.FuncLit) []capturedVar {
	seen := map[types.Object]bool{}
	var out []capturedVar
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		obj, isVar := info.Uses[id].(*types.Var)
		if !isVar || obj.IsField() || seen[obj] {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // the literal's own parameter or local
		}
		if obj.Parent() == nil || (obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()) {
			return true // package-level state is not a closure capture
		}
		seen[obj] = true
		out = append(out, capturedVar{obj: obj, pos: id})
		return true
	})
	return out
}

// capturable classifies a type as safe for an event closure to capture.
func (p *Pass) capturable(t types.Type) bool {
	return capturableType(t, p.Prog.notes, map[types.Type]bool{})
}

func capturableType(t types.Type, notes *annotations, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen[t] {
		return true // recursive type: judged by its other components
	}
	seen[t] = true
	if isShardCtxPtr(t) {
		return true
	}
	if notes.typeHas(t, noteActorState) || notes.typeHas(t, noteFrozen) {
		return true
	}
	if fromSyncFamily(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return true
	case *types.Chan:
		return true // channels are synchronization primitives
	case *types.Signature:
		return true // the func value is immutable; its own captures are checked at its literal
	case *types.Pointer:
		st, isStruct := u.Elem().Underlying().(*types.Struct)
		return isStruct && hasMutexField(st)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !capturableType(u.Field(i).Type(), notes, seen) {
				return false
			}
		}
		return true
	case *types.Array:
		return capturableType(u.Elem(), notes, seen)
	}
	return false // slices, maps, interfaces: shared mutable or unknowable
}

// fromSyncFamily reports whether t (or its pointee) is declared in a
// package whose types are safe to share: sync, sync/atomic, context,
// and time (time.Time is immutable by contract).
func fromSyncFamily(t types.Type) bool {
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync", "sync/atomic", "context", "time":
		return true
	}
	return false
}

// hasMutexField reports whether the struct directly embeds a
// sync.Mutex or sync.RWMutex value — the mutex-guarded-handle shape.
func hasMutexField(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		named, isNamed := st.Field(i).Type().(*types.Named)
		if isNamed && (namedIs(named, "sync", "Mutex") || namedIs(named, "sync", "RWMutex")) {
			return true
		}
	}
	return false
}

// computeCaptures derives one function's capture summary: the
// parameter indices (receiver first, like taint summaries) whose
// values flow into an event closure this function schedules or
// returns — directly, or by passing them on to a callee that does.
func computeCaptures(prog *Program, node *CGNode) []int {
	pkg := node.Pkg
	params := map[types.Object]int{}
	for i, obj := range paramObjects(pkg, node.Decl) {
		params[obj] = i
	}
	idx := map[int]bool{}
	mark := func(e ast.Expr) {
		if id, isIdent := ast.Unparen(e).(*ast.Ident); isIdent {
			if i, isParam := params[pkg.Info.Uses[id]]; isParam {
				idx[i] = true
			}
		}
	}
	escaping := func(lit *ast.FuncLit) {
		for _, cv := range freeVars(pkg.Info, lit) {
			if i, isParam := params[cv.obj]; isParam {
				idx[i] = true
			}
		}
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if lit, isLit := ast.Unparen(x.Call.Fun).(*ast.FuncLit); isLit {
				escaping(lit)
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if lit, isLit := ast.Unparen(res).(*ast.FuncLit); isLit && isCtxCallback(pkg.Info, lit) {
					escaping(lit)
				}
			}
		case *ast.CallExpr:
			if fn := schedClosureArg(pkg.Info, x); fn != nil {
				if lit, isLit := ast.Unparen(fn).(*ast.FuncLit); isLit {
					escaping(lit)
				}
			}
			// Propagate: passing a parameter to a callee that captures it
			// captures it here too.
			for _, key := range calleeKeys(pkg.Info, x, prog.methodImpls) {
				captured := prog.captures[key]
				if len(captured) == 0 {
					continue
				}
				args := callArgExprs(pkg.Info, x)
				for _, j := range captured {
					if j < len(args) {
						mark(args[j])
					}
				}
			}
		}
		return true
	})
	out := make([]int, 0, len(idx))
	for i := range idx {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// callArgExprs returns the call's arguments with the method receiver
// prepended, matching summary parameter numbering.
func callArgExprs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	var args []ast.Expr
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if _, isMethod := info.Selections[sel]; isMethod {
			args = append(args, sel.X)
		}
	}
	return append(args, call.Args...)
}

func runGoCapture(p *Pass) {
	for _, f := range p.Files {
		// Test files are exempt: harnesses legitimately capture test-local
		// state (counters, t, collected traces) in probe callbacks, and the
		// CI race pass already runs the whole test suite. The capture
		// discipline is for model code, which test files are not.
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if !isFunc || fd.Body == nil {
				continue
			}
			checkCaptures(p, fd)
		}
	}
}

func checkCaptures(p *Pass, fd *ast.FuncDecl) {
	// Enclosing-declaration parameters are excluded from literal-side
	// checks: the capture summary holds every call site to the rule
	// instead, where the concrete argument is visible.
	declParams := map[types.Object]bool{}
	for _, obj := range paramObjects(&Package{Info: p.Info}, fd) {
		declParams[obj] = true
	}

	scopes := ctxScopes(p.Info, fd)
	inCallback := func(n ast.Node) bool {
		for _, s := range scopes {
			if n.Pos() >= s.body.Pos() && n.Pos() < s.body.End() {
				return true
			}
		}
		return false
	}

	checked := map[*ast.FuncLit]bool{}
	checkLit := func(lit *ast.FuncLit, how string) {
		if checked[lit] {
			return
		}
		checked[lit] = true
		for _, cv := range freeVars(p.Info, lit) {
			if declParams[cv.obj] || p.capturable(cv.obj.Type()) {
				continue
			}
			p.Reportf(cv.pos.Pos(),
				"closure %s captures %s %s; capture an immutable snapshot, actor-state, or a mutex-guarded handle — or move the data into a ShardCtx.Send message",
				how, cv.obj.Name(), types.TypeString(cv.obj.Type(), nil))
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if inCallback(x) {
				p.Reportf(x.Pos(),
					"event callback spawns a goroutine the barrier protocol cannot see; schedule a follow-up event instead")
			}
		case *ast.FuncLit:
			if isCtxCallback(p.Info, x) {
				checkLit(x, "scheduled as an event callback")
			}
		case *ast.CallExpr:
			if fn := schedClosureArg(p.Info, x); fn != nil {
				if lit, isLit := ast.Unparen(fn).(*ast.FuncLit); isLit {
					checkLit(lit, "passed to the sharded engine")
				}
			}
			for _, key := range calleeKeys(p.Info, x, p.Prog.methodImpls) {
				captured := p.Prog.captures[key]
				if len(captured) == 0 {
					continue
				}
				args := callArgExprs(p.Info, x)
				for _, j := range captured {
					if j >= len(args) {
						continue
					}
					t := p.Info.TypeOf(args[j])
					if t == nil || p.capturable(t) {
						continue
					}
					p.Reportf(args[j].Pos(),
						"argument %s is retained by %s's event closure (captured parameter) but %s cannot be safely captured; pass an immutable snapshot or route the data through ShardCtx.Send",
						types.ExprString(args[j]), displayName(key), types.TypeString(t, nil))
				}
			}
		}
		return true
	})
}
