package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// EnumCase enforces switch exhaustiveness over the repo's domain
// enums: fault.Kind, fault.Selector, asset.Class, asset.Affiliation,
// core.HealthState, core.CommandModel, trust.Evidence, alloc.Class,
// alloc.Tier, geo.TerrainKind, learn.Attack, discovery.Methods — and
// any other named integer type with two or more package-level
// constants, which is how every one of those enums is declared. A
// switch over such a type must either cover every declared constant or
// carry an explicit default clause. Without this, adding an enum
// constant (a new fault kind, a new health state) silently falls
// through the String method, the codec, and every dispatch switch —
// the add-a-variant bug class, caught at build time instead of as a
// blank label in a report three PRs later.
var EnumCase = &Analyzer{
	Name: "enumcase",
	Doc: "switches over domain enums must cover every declared constant or say `default:`; " +
		"adding a variant without updating its switches is a finding",
	Run: runEnumCase,
}

// enumConstants returns the package-level constants of the named type,
// declared in the type's own package, keyed by value with names
// aggregated (aliases for the same value count as one case). It
// returns nil when the type does not look like a domain enum: fewer
// than two constants, or a non-integer underlying type.
func enumConstants(named *types.Named) map[string][]string {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	basic, isBasic := named.Underlying().(*types.Basic)
	if !isBasic || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	scope := obj.Pkg().Scope()
	byValue := map[string][]string{}
	n := 0
	for _, name := range scope.Names() {
		c, isConst := scope.Lookup(name).(*types.Const)
		if !isConst || !types.Identical(c.Type(), named) {
			continue
		}
		key := c.Val().ExactString()
		byValue[key] = append(byValue[key], name)
		n++
	}
	if n < 2 {
		return nil
	}
	return byValue
}

func runEnumCase(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, isSwitch := n.(*ast.SwitchStmt)
			if !isSwitch || sw.Tag == nil {
				return true
			}
			checkEnumSwitch(p, sw)
			return true
		})
	}
}

func checkEnumSwitch(p *Pass, sw *ast.SwitchStmt) {
	t := p.TypeOf(sw.Tag)
	if t == nil {
		return
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return
	}
	constants := enumConstants(named)
	if constants == nil {
		return
	}

	covered := map[string]bool{}
	for _, clause := range sw.Body.List {
		cc, isCase := clause.(*ast.CaseClause)
		if !isCase {
			continue
		}
		if cc.List == nil {
			return // explicit default: the switch owns its fallback
		}
		for _, e := range cc.List {
			tv, known := p.Info.Types[e]
			if !known || tv.Value == nil {
				// Non-constant case expression: the switch is doing
				// dynamic matching; exhaustiveness does not apply.
				return
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	var missing []string
	for val, names := range constants {
		if !covered[val] {
			sort.Strings(names)
			missing = append(missing, names[0])
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	typeName := named.Obj().Name()
	if pkg := named.Obj().Pkg(); pkg != nil {
		typeName = pkg.Name() + "." + typeName
	}
	p.Reportf(sw.Pos(),
		"switch over %s is missing %s and has no default; cover every constant or add an explicit default so new variants cannot fall through silently",
		typeName, strings.Join(missing, ", "))
}
