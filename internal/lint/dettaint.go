package lint

import "strings"

// DetTaint is the interprocedural successor to maporder's escape
// rules. maporder sees one function at a time, so it goes blind the
// moment map-ordered data crosses a call: a helper that collects map
// keys and returns them unsorted, a caller that hands a tainted slice
// to a function that encodes it, a closure scheduled with an
// entropy-derived delay. DetTaint runs on the whole-program taint
// summaries (see taint.go/summaries.go): a value whose order depends
// on map iteration, or whose content derives from host entropy, must
// not reach event scheduling, checkpoint/codec encoders, RNG stream
// selection, ordered writers, or the return value of an exported
// function (for slices) — across any number of function boundaries.
//
// Purely intra-function flows are maporder/detrand territory and are
// not re-reported here; every dettaint finding involves at least one
// call boundary, which is exactly the class the intraprocedural suite
// provably misses.
var DetTaint = &Analyzer{
	Name: "dettaint",
	Doc: "forbid map-iteration-ordered or host-entropy-tainted values from reaching " +
		"schedulers, encoders, RNG selection, or exported slices across function boundaries",
	Run: runDetTaint,
}

func runDetTaint(p *Pass) {
	// The same entry points detrand exempts are exempt here: cmd/ and
	// examples/ legitimately turn host entropy into seeds, and
	// internal/sim is the wrapper that builds deterministic streams.
	// Their bodies still contribute summaries, so taint flowing
	// through them into simulation code is reported at that code.
	for _, prefix := range detrandExemptPrefixes {
		if strings.HasPrefix(p.Path+"/", prefix+"/") || strings.HasPrefix(p.Path, prefix) {
			return
		}
	}
	for _, f := range p.Prog.findingsFor(p.Path) {
		p.Reportf(f.pos, "%s", f.msg)
	}
}
