// Package lint is iobtlint: a suite of custom static analyzers that
// enforce the simulator's determinism and snapshot contracts at build
// time. Every reproduced claim rests on same-seed ⇒ same-trace; the
// invariant registry and the scenario fuzzer enforce that contract
// dynamically (DESIGN.md §8), while this package enforces it
// statically, so a violation is a build error rather than a fuzzer
// find three PRs later.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer /
// Pass / Diagnostic) but is built on the standard library only:
// packages are located with `go list -export -json` and type-checked
// with go/types against the compiler's export data, so the tool needs
// nothing outside the Go toolchain already required to build the repo.
//
// A finding is suppressed — with an audit trail — by a comment on the
// flagged line or the line directly above it:
//
//	//iobt:allow <analyzer> <reason>
//
// The reason is mandatory: an allow comment without one is itself a
// finding, so suppressions cannot silently accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one named rule and how to run it over a
// package.
type Analyzer struct {
	// Name identifies the analyzer in findings and allow comments.
	Name string
	// Doc is a one-paragraph description of the rule and its rationale.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path (test variants keep the base
	// path, so allowlists match both).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Prog is the whole-program view (call graph, taint summaries) the
	// interprocedural analyzers consult; always non-nil.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// A Diagnostic is one finding, after suppression processing.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	// Suppressed is true when a reasoned iobt:allow comment covers the
	// finding; suppressed findings never fail the build.
	Suppressed bool `json:"suppressed,omitempty"`
	// Reason is the justification from the allow comment.
	Reason string `json:"reason,omitempty"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	if d.Suppressed {
		s += fmt.Sprintf(" (allowed: %s)", d.Reason)
	}
	return s
}

// allowRe matches an allow comment: `//iobt:allow <analyzer> <reason>`.
// The reason group is everything after the analyzer name; empty is
// diagnosed as a malformed suppression.
var allowRe = regexp.MustCompile(`^//\s*iobt:allow\s+([A-Za-z0-9_-]+)[ \t]*(.*)$`)

// allow is one parsed iobt:allow comment.
type allow struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// suppressions indexes allow comments by (file, line).
type suppressions struct {
	byLine map[string]map[int][]*allow
	all    []*allow
}

// scanAllows collects every iobt:allow comment in files.
func scanAllows(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[string]map[int][]*allow{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				reason := strings.TrimSpace(m[2])
				// Fixture files annotate expected findings with
				// trailing `// want ...` directives; they are not part
				// of the reason.
				if i := strings.Index(reason, "// want"); i >= 0 {
					reason = strings.TrimSpace(reason[:i])
				}
				a := &allow{analyzer: m[1], reason: reason, pos: pos}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*allow{}
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], a)
				s.all = append(s.all, a)
			}
		}
	}
	return s
}

// match returns the allow comment covering a finding by analyzer at
// pos: one on the same line or on the line directly above.
func (s *suppressions) match(analyzer string, pos token.Position) *allow {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, a := range lines[line] {
			if a.analyzer == analyzer {
				return a
			}
		}
	}
	return nil
}

// apply folds the allow comments into raw findings: covered findings
// are marked suppressed (when the reason is non-empty), and malformed
// or unknown-analyzer allow comments become findings of their own, so
// the escape hatch cannot rot silently.
func (s *suppressions) apply(diags []Diagnostic, known map[string]bool) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if a := s.match(d.Analyzer, d.Pos); a != nil && a.reason != "" {
			a.used = true
			d.Suppressed = true
			d.Reason = a.reason
		}
		out = append(out, d)
	}
	for _, a := range s.all {
		switch {
		case a.reason == "":
			out = append(out, Diagnostic{
				Analyzer: "allow",
				Pos:      a.pos,
				Message:  fmt.Sprintf("iobt:allow %s has no reason; suppressions must say why", a.analyzer),
			})
		case !known[a.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: "allow",
				Pos:      a.pos,
				Message:  fmt.Sprintf("iobt:allow names unknown analyzer %q", a.analyzer),
			})
		}
	}
	sortDiagnostics(out)
	return out
}

// sortDiagnostics orders findings by position then analyzer, so output
// is stable across runs (the linter holds itself to the determinism
// rules it enforces).
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Analyzers returns the full iobtlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetRand, MapOrder, SnapshotPair, MetricReg, DetTaint, EnumCase, ErrDrop,
		Shardown, GoCapture, BarrierState, LookaheadClamp,
		HotAlloc, HotBox, DeferCycle,
	}
}

// analyzePackage runs every analyzer in as over one loaded package and
// resolves suppressions.
func (prog *Program) analyzePackage(pkg *Package, as []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range as {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Prog:     prog,
			diags:    &raw,
		}
		a.Run(pass)
	}
	// Allow comments validate against the full registry, not just the
	// analyzers in this run: waiving a real analyzer that happens not
	// to be running is fine; naming one that does not exist never is.
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	return scanAllows(pkg.Fset, pkg.Files).apply(raw, known)
}
