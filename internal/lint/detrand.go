package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetRand enforces the determinism contract on randomness and time:
// simulation code draws randomness only from internal/sim's seeded RNG
// streams and reads time only from the engine's virtual clock, so the
// same seed always produces the same trace. Wall-clock reads and the
// global math/rand source are flagged everywhere except the allowlist:
// internal/sim itself (which wraps math/rand behind seeded streams),
// command-line front ends under cmd/, and the runnable examples.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock time and unseeded randomness in simulation code; " +
		"use sim.Engine.Now and sim.RNG so same-seed runs stay byte-identical",
	Run: runDetRand,
}

// detrandExemptPrefixes are import-path prefixes where wall-clock and
// direct math/rand use is legitimate: the RNG/clock wrapper itself and
// the process entry points that never run inside the simulated world.
var detrandExemptPrefixes = []string{
	"iobt/internal/sim",
	// The mission service is process-level orchestration AROUND simulated
	// worlds, not code inside them: its watchdogs, restart backoff, and
	// latency metrics are genuinely about host time. Everything it runs
	// inside an engine stays deterministic (and is byte-verified against
	// persisted checkpoints on recovery).
	"iobt/internal/service",
	"iobt/cmd/",
	"iobt/examples/",
}

// bannedTimeFuncs are the wall-clock and real-timer entry points of
// package time. Duration arithmetic and formatting stay allowed — only
// reads of host time and host-timer scheduling break replayability.
var bannedTimeFuncs = map[string]string{
	"Now":       "wall-clock read",
	"Since":     "wall-clock read",
	"Until":     "wall-clock read",
	"Sleep":     "host-timer wait",
	"After":     "host timer",
	"Tick":      "host timer",
	"NewTimer":  "host timer",
	"NewTicker": "host timer",
	"AfterFunc": "host timer",
}

func runDetRand(p *Pass) {
	for _, prefix := range detrandExemptPrefixes {
		if strings.HasPrefix(p.Path+"/", prefix+"/") || strings.HasPrefix(p.Path, prefix) {
			return
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, isSel := n.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			pkgPath, name, ok := pkgQualified(p.Info, sel)
			if !ok {
				return true
			}
			switch pkgPath {
			case "time":
				if why, banned := bannedTimeFuncs[name]; banned {
					p.Reportf(sel.Pos(), "time.%s is a %s; simulation code must use the engine clock (sim.Engine.Now) so same-seed runs replay identically", name, why)
				}
			case "math/rand", "math/rand/v2":
				// Referring to the types (rand.Rand, rand.Source) is
				// harmless; calling package-level functions either hits
				// the global source or builds an unmanaged stream.
				if _, isType := p.Info.Uses[sel.Sel].(*types.TypeName); isType {
					return true
				}
				p.Reportf(sel.Pos(), "%s.%s bypasses the seeded stream discipline; draw from sim.RNG (Derive a named child stream) instead", pkgPath, name)
			case "crypto/rand":
				p.Reportf(sel.Pos(), "crypto/rand is nondeterministic by design; simulation code must draw from sim.RNG")
			}
			return true
		})
	}
}
