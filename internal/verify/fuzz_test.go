package verify

import (
	"fmt"
	"testing"
	"time"

	"iobt/internal/core"
	"iobt/internal/fault"
	"iobt/internal/geo"
	"iobt/internal/mesh"
	"iobt/internal/sim"
)

// TestScenarioFuzz is the quick fuzz pass wired into the ordinary test
// run: it derives random missions from sequential seeds and runs each
// with the full invariant catalogue armed. Any violation is shrunk to a
// minimal reproducer and reported as a replayable scenario file.
func TestScenarioFuzz(t *testing.T) {
	n := 60
	if !testing.Short() {
		n = 120
	}
	ran, skipped := 0, 0
	for seed := int64(1); ran < n; seed++ {
		s := Generate(seed)
		out := Run(s)
		if out.Skipped {
			skipped++
			if skipped > n {
				t.Fatalf("too many unsynthesizable scenarios (%d skipped)", skipped)
			}
			continue
		}
		ran++
		if len(out.Violations) > 0 {
			reportViolation(t, s, out)
		}
	}
	t.Logf("fuzzed %d scenarios (%d skipped as unsynthesizable)", ran, skipped)
}

// FuzzScenario is the native fuzz target: the nightly CI job mutates
// seeds far beyond the sequential range the quick pass covers. The
// second argument fuzzes the shard count of the differential check —
// every generated dissemination scenario must produce an identical
// result at 1 shard and at the fuzzed count.
func FuzzScenario(f *testing.F) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		f.Add(seed, uint8(4))
	}
	f.Fuzz(func(t *testing.T, seed int64, shards uint8) {
		s := Generate(seed)
		out := Run(s)
		if !out.Skipped && len(out.Violations) > 0 {
			reportViolation(t, s, out)
		}
		fuzzShardDifferential(t, seed, 1+int(shards%8))
	})
}

// fuzzShardDifferential derives a dissemination scenario from the seed
// and asserts shard-count invariance: byte-identical digest, counters,
// and zero conservation violations at 1 and at shards partitions.
func fuzzShardDifferential(t *testing.T, seed int64, shards int) {
	t.Helper()
	r := sim.NewRNG(seed).Derive("fuzz/shardnet")
	sc := mesh.ShardScenario{
		Nodes:        40 + r.Intn(80),
		Publishers:   1 + r.Intn(3),
		Horizon:      time.Duration(50+r.Intn(40)) * time.Second,
		PublishUntil: 40 * time.Second,
	}
	if r.Bool(0.5) {
		sc.Mode = mesh.ShardModeBFS
	}
	if r.Bool(0.4) {
		sc.KillAt = time.Duration(10+r.Intn(20)) * time.Second
		sc.KillFrac = r.Uniform(0.05, 0.4)
	}
	if r.Bool(0.4) {
		sc.PartitionAt = time.Duration(10+r.Intn(15)) * time.Second
		sc.HealAt = sc.PartitionAt + time.Duration(10+r.Intn(20))*time.Second
	}
	if r.Bool(0.4) && sc.Mode != mesh.ShardModeBFS {
		sc.AntiEntropyEvery = time.Duration(5+r.Intn(10)) * time.Second
	}
	ref, err := mesh.RunShardScenario(seed, 1, sc)
	if err != nil {
		t.Fatalf("1-shard run: %v", err)
	}
	got, err := mesh.RunShardScenario(seed, shards, sc)
	if err != nil {
		t.Fatalf("%d-shard run: %v", shards, err)
	}
	for _, v := range append(ref.Violations, got.Violations...) {
		t.Errorf("conservation violation: %s", v)
	}
	if ref.Digest != got.Digest || ref.Delivered != got.Delivered || ref.Events != got.Events {
		t.Errorf("shard differential diverged (seed %d, %d shards):\n  1-shard: digest=%016x delivered=%d events=%d\n  %d-shard: digest=%016x delivered=%d events=%d",
			seed, shards, ref.Digest, ref.Delivered, ref.Events,
			shards, got.Digest, got.Delivered, got.Events)
	}
}

// reportViolation shrinks a failing scenario and fails the test with
// the minimal replayable reproducer.
func reportViolation(t *testing.T, s Scenario, out *Outcome) {
	t.Helper()
	name := out.Violations[0].Name
	min := Shrink(s, func(c Scenario) bool {
		o := Run(c)
		if o.Skipped {
			return false
		}
		for _, v := range o.Violations {
			if v.Name == name {
				return true
			}
		}
		return false
	}, 60)
	t.Fatalf("invariant violated: %v\nsummary: %s\nminimal reproducer (cost %d, was %d):\n%s",
		out.Violations[0], out.Summary, min.Cost(), s.Cost(), min.String())
}

// TestShrinkFindsMinimalReproducer arms a deliberately broken invariant
// (it fails whenever the success rate is within its legal range, i.e.
// always) against a deliberately big scenario, and checks the shrinker
// reduces the reproducer to at most 25% of the original cost.
func TestShrinkFindsMinimalReproducer(t *testing.T) {
	flipped := func(w *core.World, r *core.Runtime) Invariant {
		return Invariant{Name: "flipped-success-bound", Check: func() error {
			if s := r.Metrics.SuccessRate(); s >= 0 && s <= 1 {
				return fmt.Errorf("deliberately flipped check: success rate %v is in [0,1]", s)
			}
			return nil
		}}
	}

	plan := &fault.Plan{Name: "shrink-big"}
	plan.Add(fault.Fault{Kind: fault.JamWave, At: 20 * time.Second, Duration: 30 * time.Second,
		Area: geo.Circle{Center: geo.Point{X: 700, Y: 700}, Radius: 400}, Intensity: 0.8})
	plan.Add(fault.Fault{Kind: fault.Smoke, At: 40 * time.Second, Duration: 30 * time.Second,
		Area: geo.Circle{Center: geo.Point{X: 400, Y: 400}, Radius: 300}})
	plan.Add(fault.Fault{Kind: fault.KillWave, At: 60 * time.Second, Fraction: 0.2,
		Select: fault.SelectComposite})
	plan.Add(fault.Fault{Kind: fault.Corrupt, At: 80 * time.Second, Duration: 30 * time.Second, Prob: 0.2})
	plan.Add(fault.Fault{Kind: fault.ChurnSpike, At: 100 * time.Second, Duration: 30 * time.Second, Rate: 0.1})
	big := Scenario{
		Seed: 99, Assets: 250, Size: 1400, Terrain: "urban",
		Command: "hierarchy", Reliable: true, Degrade: true, Track: true,
		Checkpoint: 15 * time.Second, Rate: 20, Horizon: 180 * time.Second,
		Plan: plan,
	}

	out := Run(big, flipped)
	if out.Skipped {
		t.Fatal("big scenario unexpectedly unsynthesizable")
	}
	if len(out.Violations) == 0 {
		t.Fatal("flipped invariant was not caught")
	}

	fails := func(c Scenario) bool {
		o := Run(c, flipped)
		if o.Skipped {
			return false
		}
		for _, v := range o.Violations {
			if v.Name == "flipped-success-bound" {
				return true
			}
		}
		return false
	}
	min := Shrink(big, fails, 60)

	if got, orig := min.Cost(), big.Cost(); got*4 > orig {
		t.Fatalf("shrunk reproducer cost %d > 25%% of original %d", got, orig)
	}
	if !fails(min) {
		t.Fatal("shrunk scenario no longer reproduces the violation")
	}
	// The reproducer must round-trip through its file form.
	parsed, err := ParseScenario(min.String())
	if err != nil {
		t.Fatalf("reproducer does not parse: %v", err)
	}
	if parsed.String() != min.String() {
		t.Fatalf("reproducer round-trip mismatch:\n%s\nvs\n%s", min.String(), parsed.String())
	}
	t.Logf("shrunk cost %d -> %d:\n%s", big.Cost(), min.Cost(), min.String())
}
