package verify

import (
	"fmt"
	"testing"
	"time"

	"iobt/internal/core"
	"iobt/internal/fault"
	"iobt/internal/geo"
)

// TestScenarioFuzz is the quick fuzz pass wired into the ordinary test
// run: it derives random missions from sequential seeds and runs each
// with the full invariant catalogue armed. Any violation is shrunk to a
// minimal reproducer and reported as a replayable scenario file.
func TestScenarioFuzz(t *testing.T) {
	n := 60
	if !testing.Short() {
		n = 120
	}
	ran, skipped := 0, 0
	for seed := int64(1); ran < n; seed++ {
		s := Generate(seed)
		out := Run(s)
		if out.Skipped {
			skipped++
			if skipped > n {
				t.Fatalf("too many unsynthesizable scenarios (%d skipped)", skipped)
			}
			continue
		}
		ran++
		if len(out.Violations) > 0 {
			reportViolation(t, s, out)
		}
	}
	t.Logf("fuzzed %d scenarios (%d skipped as unsynthesizable)", ran, skipped)
}

// FuzzScenario is the native fuzz target: the nightly CI job mutates
// seeds far beyond the sequential range the quick pass covers.
func FuzzScenario(f *testing.F) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		s := Generate(seed)
		out := Run(s)
		if out.Skipped {
			t.Skip("unsynthesizable scenario")
		}
		if len(out.Violations) > 0 {
			reportViolation(t, s, out)
		}
	})
}

// reportViolation shrinks a failing scenario and fails the test with
// the minimal replayable reproducer.
func reportViolation(t *testing.T, s Scenario, out *Outcome) {
	t.Helper()
	name := out.Violations[0].Name
	min := Shrink(s, func(c Scenario) bool {
		o := Run(c)
		if o.Skipped {
			return false
		}
		for _, v := range o.Violations {
			if v.Name == name {
				return true
			}
		}
		return false
	}, 60)
	t.Fatalf("invariant violated: %v\nsummary: %s\nminimal reproducer (cost %d, was %d):\n%s",
		out.Violations[0], out.Summary, min.Cost(), s.Cost(), min.String())
}

// TestShrinkFindsMinimalReproducer arms a deliberately broken invariant
// (it fails whenever the success rate is within its legal range, i.e.
// always) against a deliberately big scenario, and checks the shrinker
// reduces the reproducer to at most 25% of the original cost.
func TestShrinkFindsMinimalReproducer(t *testing.T) {
	flipped := func(w *core.World, r *core.Runtime) Invariant {
		return Invariant{Name: "flipped-success-bound", Check: func() error {
			if s := r.Metrics.SuccessRate(); s >= 0 && s <= 1 {
				return fmt.Errorf("deliberately flipped check: success rate %v is in [0,1]", s)
			}
			return nil
		}}
	}

	plan := &fault.Plan{Name: "shrink-big"}
	plan.Add(fault.Fault{Kind: fault.JamWave, At: 20 * time.Second, Duration: 30 * time.Second,
		Area: geo.Circle{Center: geo.Point{X: 700, Y: 700}, Radius: 400}, Intensity: 0.8})
	plan.Add(fault.Fault{Kind: fault.Smoke, At: 40 * time.Second, Duration: 30 * time.Second,
		Area: geo.Circle{Center: geo.Point{X: 400, Y: 400}, Radius: 300}})
	plan.Add(fault.Fault{Kind: fault.KillWave, At: 60 * time.Second, Fraction: 0.2,
		Select: fault.SelectComposite})
	plan.Add(fault.Fault{Kind: fault.Corrupt, At: 80 * time.Second, Duration: 30 * time.Second, Prob: 0.2})
	plan.Add(fault.Fault{Kind: fault.ChurnSpike, At: 100 * time.Second, Duration: 30 * time.Second, Rate: 0.1})
	big := Scenario{
		Seed: 99, Assets: 250, Size: 1400, Terrain: "urban",
		Command: "hierarchy", Reliable: true, Degrade: true, Track: true,
		Checkpoint: 15 * time.Second, Rate: 20, Horizon: 180 * time.Second,
		Plan: plan,
	}

	out := Run(big, flipped)
	if out.Skipped {
		t.Fatal("big scenario unexpectedly unsynthesizable")
	}
	if len(out.Violations) == 0 {
		t.Fatal("flipped invariant was not caught")
	}

	fails := func(c Scenario) bool {
		o := Run(c, flipped)
		if o.Skipped {
			return false
		}
		for _, v := range o.Violations {
			if v.Name == "flipped-success-bound" {
				return true
			}
		}
		return false
	}
	min := Shrink(big, fails, 60)

	if got, orig := min.Cost(), big.Cost(); got*4 > orig {
		t.Fatalf("shrunk reproducer cost %d > 25%% of original %d", got, orig)
	}
	if !fails(min) {
		t.Fatal("shrunk scenario no longer reproduces the violation")
	}
	// The reproducer must round-trip through its file form.
	parsed, err := ParseScenario(min.String())
	if err != nil {
		t.Fatalf("reproducer does not parse: %v", err)
	}
	if parsed.String() != min.String() {
		t.Fatalf("reproducer round-trip mismatch:\n%s\nvs\n%s", min.String(), parsed.String())
	}
	t.Logf("shrunk cost %d -> %d:\n%s", big.Cost(), min.Cost(), min.String())
}
