package verify

import (
	"bytes"
	"fmt"
	"math"
	"time"

	"iobt/internal/asset"
	"iobt/internal/cop"
	"iobt/internal/core"
	"iobt/internal/mesh"
	"iobt/internal/sim"
	"iobt/internal/track"
	"iobt/internal/trust"
)

// This file is the invariant catalogue: one constructor per subsystem
// property. MissionInvariants assembles the full set for a running
// mission; individual constructors exist so tests and experiments can
// arm subsets.

// MeshConservation wraps the network's message-conservation law:
// Delivered + Dropped + NoRoute + InFlight == Sent.
func MeshConservation(n *mesh.Network) Invariant {
	return Invariant{Name: "mesh-conservation", Check: n.CheckConservation}
}

// MissionMetrics checks the internal consistency of mission metrics:
// the counter lattice detected <= incidents, ontime <= acted <=
// detected, the undeliverable accounting (a lost incident is never also
// acted upon — which also catches an order executed twice across a
// failover, since a duplicate completion pushes acted past detected),
// one latency sample per action, and rates bounded in [0,1].
func MissionMetrics(m *core.Metrics) Invariant {
	return Invariant{Name: "mission-metrics", Check: func() error {
		if m.Detected.Value() > m.Incidents.Value() {
			return fmt.Errorf("detected %d > incidents %d", m.Detected.Value(), m.Incidents.Value())
		}
		if m.OnTime.Value() > m.Acted.Value() {
			return fmt.Errorf("ontime %d > acted %d", m.OnTime.Value(), m.Acted.Value())
		}
		if m.Acted.Value() > m.Detected.Value() {
			return fmt.Errorf("acted %d > detected %d (order executed twice?)", m.Acted.Value(), m.Detected.Value())
		}
		if m.Undeliverable.Value() > m.Detected.Value() {
			return fmt.Errorf("undeliverable %d > detected %d", m.Undeliverable.Value(), m.Detected.Value())
		}
		if m.Acted.Value()+m.Undeliverable.Value() > m.Detected.Value() {
			return fmt.Errorf("acted %d + undeliverable %d > detected %d",
				m.Acted.Value(), m.Undeliverable.Value(), m.Detected.Value())
		}
		if m.DecisionLatency.N() != int(m.Acted.Value()) {
			return fmt.Errorf("latency samples %d != acted %d (double completion?)",
				m.DecisionLatency.N(), m.Acted.Value())
		}
		if s := m.SuccessRate(); s < 0 || s > 1 {
			return fmt.Errorf("success rate %v out of [0,1]", s)
		}
		if d := m.DetectionRate(); d < 0 || d > 1 {
			return fmt.Errorf("detection rate %v out of [0,1]", d)
		}
		return nil
	}}
}

// CountersMonotone checks that no mission counter ever decreases — a
// regression (e.g. a Reset leaking into metrics on failover) shows up
// as a backwards step between two sweeps.
func CountersMonotone(m *core.Metrics) Invariant {
	names := []string{
		"incidents", "detected", "acted", "ontime", "undeliverable",
		"repairs", "fallbacks", "restores", "relaxations",
		"healthchanges", "orderscarried", "failovers",
	}
	counters := []*sim.Counter{
		&m.Incidents, &m.Detected, &m.Acted, &m.OnTime, &m.Undeliverable,
		&m.Repairs, &m.Fallbacks, &m.Restores, &m.Relaxations,
		&m.HealthChanges, &m.OrdersCarried, &m.Failovers,
	}
	prev := make([]uint64, len(counters))
	return Invariant{Name: "counters-monotone", Check: func() error {
		for i, c := range counters {
			v := c.Value()
			if v < prev[i] {
				return fmt.Errorf("counter %s went backwards: %d -> %d", names[i], prev[i], v)
			}
			prev[i] = v
		}
		return nil
	}}
}

// TrustBounds checks every recorded trust score and confidence stays in
// [0,1], evidence mass stays non-negative, and — because evidence only
// accumulates between resets — total evidence never shrinks except
// across an authorized wipe (a post crash, decay, or a checkpoint
// restore), which resetOK signals. resetOK is consulted every sweep,
// so constructors may use it to track wipe events between sweeps.
func TrustBounds(l *trust.Ledger, resetOK func() bool) Invariant {
	prevEvidence := 0.0
	return Invariant{Name: "trust-bounds", Check: func() error {
		allowed := resetOK == nil || resetOK()
		// Threshold above the score range enumerates every recorded id.
		for _, id := range l.Suspects(2) {
			if s := l.Score(id); s < 0 || s > 1 || math.IsNaN(s) {
				return fmt.Errorf("trust score of %d out of [0,1]: %v", id, s)
			}
			if c := l.Confidence(id); c < 0 || c > 1 || math.IsNaN(c) {
				return fmt.Errorf("trust confidence of %d out of [0,1]: %v", id, c)
			}
		}
		ev := l.EvidenceTotal()
		if ev < -1e-9 || math.IsNaN(ev) {
			return fmt.Errorf("trust evidence total negative: %v", ev)
		}
		if ev < prevEvidence-1e-9 && !allowed {
			return fmt.Errorf("trust evidence shrank without reset: %v -> %v", prevEvidence, ev)
		}
		prevEvidence = ev
		return nil
	}}
}

// TrackConsistency checks the track picture: confirmed counts agree
// across accessors, confirmation implies enough hits, and every state
// estimate is finite.
func TrackConsistency(tr *track.Tracker) Invariant {
	return Invariant{Name: "track-consistency", Check: func() error {
		if got, want := tr.ConfirmedCount(), len(tr.Tracks()); got != want {
			return fmt.Errorf("ConfirmedCount %d != len(Tracks) %d", got, want)
		}
		if len(tr.Tracks()) > len(tr.All()) {
			return fmt.Errorf("confirmed %d > all %d", len(tr.Tracks()), len(tr.All()))
		}
		for _, t := range tr.All() {
			if t.Confirmed() && t.Hits < 3 {
				return fmt.Errorf("track %d confirmed with %d hits", t.ID, t.Hits)
			}
			p := t.Pos()
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				return fmt.Errorf("track %d position not finite: %v", t.ID, p)
			}
		}
		return nil
	}}
}

// HealthValid checks the mission health state machine stays within its
// defined states.
func HealthValid(r *core.Runtime) Invariant {
	return Invariant{Name: "health-valid", Check: func() error {
		if h := r.Health(); h != core.Healthy && h != core.Degraded && h != core.Critical {
			return fmt.Errorf("invalid health state %v", h)
		}
		return nil
	}}
}

// TimeMonotone checks the engine clock never runs backwards across
// sweeps.
func TimeMonotone(now func() time.Duration) Invariant {
	prev := time.Duration(-1)
	return Invariant{Name: "time-monotone", Check: func() error {
		n := now()
		if n < prev {
			return fmt.Errorf("clock went backwards: %s -> %s", prev, n)
		}
		prev = n
		return nil
	}}
}

// GossipConservation wraps the epidemic overlay's conservation law:
// every held payload traces to an origin publish, first-time deliveries
// equal total held copies, no replica's holdings ever shrink, and
// deliveries never exceed publishes × members.
func GossipConservation(g *mesh.Gossip) Invariant {
	return Invariant{Name: "gossip-conservation", Check: g.CheckConservation}
}

// PictureMonotone checks that a replicated common operational picture
// only moves up the CRDT partial order between sweeps: merges and local
// observations may add state, but anti-entropy must never regress it.
// The pictures func returns the replicas to audit; prior states are
// tracked per replica owner.
func PictureMonotone(name string, pictures func() []*cop.Picture) Invariant {
	prev := make(map[asset.ID]*cop.Picture)
	return Invariant{Name: "picture-monotone-" + name, Check: func() error {
		for _, p := range pictures() {
			if p == nil {
				continue
			}
			if old, ok := prev[p.Self()]; ok && !p.Dominates(old) {
				return fmt.Errorf("picture %s/%d regressed below its prior state", name, p.Self())
			}
			prev[p.Self()] = p.Clone()
		}
		return nil
	}}
}

// SnapshotDeterminism checks that a snapshotter encodes the same
// logical state to the same bytes when asked twice at one instant —
// the property the whole checkpoint/replay stack rests on.
func SnapshotDeterminism(name string, snap func() []byte) Invariant {
	return Invariant{Name: "snapshot-determinism-" + name, Check: func() error {
		a := snap()
		b := snap()
		if !bytes.Equal(a, b) {
			return fmt.Errorf("%s snapshot not deterministic: %d vs %d bytes", name, len(a), len(b))
		}
		return nil
	}}
}

// MissionInvariants assembles the full catalogue for a running mission:
// mesh conservation, metric consistency and monotonicity, trust bounds,
// health validity, clock monotonicity, snapshot determinism for every
// checkpointed component, and — when a tracker is attached — track
// picture consistency.
func MissionInvariants(w *core.World, r *core.Runtime) []Invariant {
	// A post crash wipes the ledger and a warm promotion restores an
	// older (smaller) checkpointed copy — both authorized evidence
	// losses. postDown covers the crash-to-promotion window; a Failovers
	// increment covers the promotion sweep itself. Any other shrink is a
	// bug (the mission runtime never calls Decay).
	lastFailovers := r.Metrics.Failovers.Value()
	trustResetOK := func() bool {
		ok := r.PostDown()
		if f := r.Metrics.Failovers.Value(); f != lastFailovers {
			lastFailovers = f
			ok = true
		}
		return ok
	}
	invs := []Invariant{
		MeshConservation(w.Net),
		MissionMetrics(&r.Metrics),
		CountersMonotone(&r.Metrics),
		TrustBounds(w.Trust, trustResetOK),
		HealthValid(r),
		TimeMonotone(w.Eng.Now),
	}
	if tr := r.Tracker(); tr != nil {
		invs = append(invs, TrackConsistency(tr))
		invs = append(invs, SnapshotDeterminism("track", tr.Snapshot))
	}
	invs = append(invs, SnapshotDeterminism("trust", w.Trust.Snapshot))
	invs = append(invs, SnapshotDeterminism("runtime", r.Snapshot))
	return invs
}
