package verify

import "testing"

func TestPermutationInvariance(t *testing.T) {
	n := 30
	if !testing.Short() {
		n = 80
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		if err := PermutationInvariance(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestComposersAgree(t *testing.T) {
	n := 20
	if !testing.Short() {
		n = 60
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		if err := ComposersAgree(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCadenceIndependence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		if err := CadenceIndependence(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRestoreTransparency(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		if err := RestoreTransparency(seed); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReplayEquivalence(t *testing.T) {
	checked := 0
	for seed := int64(1); checked < 3; seed++ {
		s := Generate(seed)
		if Run(s).Skipped {
			continue
		}
		checked++
		if err := ReplayEquivalence(s); err != nil {
			t.Fatal(err)
		}
	}
}
