package verify

import (
	"time"

	"iobt/internal/fault"
)

// Cost scores a scenario for shrinking: bigger worlds, longer runs, and
// richer fault plans cost more. The shrinker minimizes this score while
// preserving the failure.
func (s Scenario) Cost() int {
	n := s.Assets + int(s.Size/10) + int(s.Horizon/time.Second)
	if s.Plan != nil {
		n += 20 * len(s.Plan.Faults)
	}
	return n
}

// shrinkWeight orders candidates: primarily by Cost, with a small
// tie-break toward fewer enabled features so the reproducer is as plain
// as possible.
func shrinkWeight(s Scenario) int {
	w := 4 * s.Cost()
	for _, on := range []bool{s.Reliable, s.Degrade, s.Track, s.Checkpoint > 0} {
		if on {
			w++
		}
	}
	if s.Terrain != "open" {
		w++
	}
	return w
}

// Shrink greedily reduces a failing scenario to a smaller one that
// still fails, using fails as the oracle (it must rerun the scenario
// and report whether the violation reproduces). It tries at most
// maxAttempts oracle calls and returns the smallest failing scenario
// found — at worst the input itself.
func Shrink(s Scenario, fails func(Scenario) bool, maxAttempts int) Scenario {
	if maxAttempts <= 0 {
		maxAttempts = 60
	}
	attempts := 0
	try := func(c Scenario) bool {
		if attempts >= maxAttempts {
			return false
		}
		if shrinkWeight(c) >= shrinkWeight(s) {
			return false
		}
		attempts++
		if fails(c) {
			s = c
			return true
		}
		return false
	}

	for progress := true; progress; {
		progress = false
		for _, c := range candidates(s) {
			if try(c) {
				progress = true
				// Restart from the new smaller base: earlier reductions
				// that failed before may succeed now.
				break
			}
		}
		if attempts >= maxAttempts {
			break
		}
	}
	return s
}

// candidates proposes one-step reductions of s, most aggressive first.
func candidates(s Scenario) []Scenario {
	var out []Scenario
	add := func(mutate func(*Scenario)) {
		c := s
		if s.Plan != nil {
			c.Plan = clonePlan(s.Plan)
		}
		mutate(&c)
		out = append(out, c)
	}

	// Fault plan: drop it all, halve it, drop one at a time.
	if s.Plan != nil && len(s.Plan.Faults) > 0 {
		add(func(c *Scenario) { c.Plan = nil })
		if n := len(s.Plan.Faults); n > 1 {
			add(func(c *Scenario) { c.Plan.Faults = c.Plan.Faults[:n/2] })
			add(func(c *Scenario) { c.Plan.Faults = c.Plan.Faults[n/2:] })
			for i := 0; i < n; i++ {
				i := i
				add(func(c *Scenario) {
					c.Plan.Faults = append(c.Plan.Faults[:i:i], c.Plan.Faults[i+1:]...)
				})
			}
		}
	}
	// World: jump to the floor first, then halve toward it.
	if s.Assets > 50 {
		add(func(c *Scenario) { c.Assets = 50 })
		if s.Assets > 100 {
			add(func(c *Scenario) { c.Assets /= 2 })
		}
	}
	if s.Size > 400 {
		add(func(c *Scenario) { c.Size = 400 })
		if s.Size > 800 {
			add(func(c *Scenario) { c.Size /= 2 })
		}
	}
	if s.Horizon > 30*time.Second {
		add(func(c *Scenario) { c.Horizon = 30 * time.Second })
		if s.Horizon > 60*time.Second {
			add(func(c *Scenario) { c.Horizon /= 2 })
		}
	}
	if s.Rate > 6 {
		add(func(c *Scenario) { c.Rate = 6 })
	}
	// Features: strip optional machinery.
	if s.Checkpoint > 0 {
		add(func(c *Scenario) { c.Checkpoint = 0 })
	}
	if s.Track {
		add(func(c *Scenario) { c.Track = false })
	}
	if s.Reliable {
		add(func(c *Scenario) { c.Reliable = false })
	}
	if s.Degrade {
		add(func(c *Scenario) { c.Degrade = false })
	}
	if s.Terrain != "open" {
		add(func(c *Scenario) { c.Terrain = "open" })
	}
	return out
}

func clonePlan(p *fault.Plan) *fault.Plan {
	c := &fault.Plan{Name: p.Name}
	c.Faults = append([]fault.Fault(nil), p.Faults...)
	return c
}
