package verify

import (
	"fmt"
	"math"
	"time"

	"iobt/internal/asset"
	"iobt/internal/checkpoint"
	"iobt/internal/compose"
	"iobt/internal/core"
	"iobt/internal/geo"
	"iobt/internal/sim"
)

// This file holds the metamorphic properties: differential checks that
// compare two runs related by a transformation that must not change the
// outcome. Each returns nil when the property holds and a diagnosable
// error otherwise.

// randomPool draws a random but structurally valid composition instance
// (mixed modalities, trust spread) from seed.
func randomPool(seed int64) (compose.Requirements, []compose.Candidate) {
	rng := sim.NewRNG(seed).Derive("verify.pool")
	n := 20 + rng.Intn(60)
	mods := []asset.Modality{asset.ModVisual, asset.ModAcoustic, asset.ModThermal}
	pool := make([]compose.Candidate, 0, n)
	for i := 0; i < n; i++ {
		pool = append(pool, compose.Candidate{
			ID:  asset.ID(i),
			Pos: geo.Point{X: rng.Uniform(0, 1000), Y: rng.Uniform(0, 1000)},
			Caps: asset.Capabilities{
				Modalities: mods[rng.Intn(len(mods))] | asset.ModVisual,
				SenseRange: rng.Uniform(50, 300),
				RadioRange: rng.Uniform(100, 400),
				Compute:    rng.Uniform(0, 200),
				Bandwidth:  rng.Uniform(0, 1000),
			},
			Trust:       rng.Uniform(0, 1),
			Affiliation: asset.Blue,
		})
	}
	g := compose.Goal{
		Area:         geo.NewRect(geo.Point{}, geo.Point{X: 1000, Y: 1000}),
		CoverageFrac: rng.Uniform(0.2, 0.8),
		MinTrust:     rng.Uniform(0, 0.4),
	}
	return compose.Derive(g), pool
}

// PermutationInvariance checks that assurance evaluation and solver
// feasibility do not depend on the order the candidate pool is listed
// in. Evaluate's coverage, connectivity, risk, and resource totals are
// order-free by construction; MeanTrust is a float sum, so it is
// compared within 1e-9; EstLatency (a BFS from the first member) is
// deliberately excluded.
func PermutationInvariance(seed int64) error {
	req, pool := randomPool(seed)
	rng := sim.NewRNG(seed).Derive("verify.perm")

	perm := append([]compose.Candidate(nil), pool...)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })

	a := compose.Evaluate(req, pool)
	b := compose.Evaluate(req, perm)
	if a.Feasible != b.Feasible {
		return fmt.Errorf("permutation changed feasibility: %v vs %v (seed %d)", a.Feasible, b.Feasible, seed)
	}
	if a.CoverageFrac != b.CoverageFrac {
		return fmt.Errorf("permutation changed coverage: %v vs %v (seed %d)", a.CoverageFrac, b.CoverageFrac, seed)
	}
	if a.Connected != b.Connected {
		return fmt.Errorf("permutation changed connectivity: %v vs %v (seed %d)", a.Connected, b.Connected, seed)
	}
	if a.RiskFrac != b.RiskFrac {
		return fmt.Errorf("permutation changed risk: %v vs %v (seed %d)", a.RiskFrac, b.RiskFrac, seed)
	}
	if math.Abs(a.MeanTrust-b.MeanTrust) > 1e-9 {
		return fmt.Errorf("permutation changed mean trust: %v vs %v (seed %d)", a.MeanTrust, b.MeanTrust, seed)
	}
	if math.Abs(a.Compute-b.Compute) > 1e-9 || math.Abs(a.Bandwidth-b.Bandwidth) > 1e-9 {
		return fmt.Errorf("permutation changed resource totals (seed %d)", seed)
	}

	// Solver-level: the greedy solver may pick different members from a
	// permuted pool, but feasibility must agree.
	_, errA := compose.GreedySolver{}.Solve(req, pool)
	_, errB := compose.GreedySolver{}.Solve(req, perm)
	if (errA == nil) != (errB == nil) {
		return fmt.Errorf("permutation changed greedy feasibility: %v vs %v (seed %d)", errA, errB, seed)
	}
	return nil
}

// ComposersAgree checks greedy-vs-anneal feasibility agreement: the
// annealer warm-starts from the greedy solution and never discards
// feasibility, so any instance greedy can solve, anneal must solve too.
// (Composite sizes may differ either way — the chain trades members for
// connectivity repairs.)
func ComposersAgree(seed int64) error {
	req, pool := randomPool(seed)
	gComp, gErr := compose.GreedySolver{}.Solve(req, pool)
	_, aErr := compose.AnnealSolver{RNG: sim.NewRNG(seed).Derive("verify.anneal")}.Solve(req, pool)
	if gErr == nil && aErr != nil {
		return fmt.Errorf("greedy feasible (%d members) but anneal infeasible: %v (seed %d)",
			len(gComp.Members), aErr, seed)
	}
	return nil
}

// CadenceIndependence checks that the checkpoint cadence — pure
// bookkeeping while no crash consumes a checkpoint — does not perturb
// the mission: two runs differing only in CheckpointEvery must end with
// identical metric fingerprints.
func CadenceIndependence(seed int64) error {
	base := Generate(seed)
	base.Command = "hierarchy"
	base.Reliable = true
	base.Plan = nil // a crash would legitimately couple outcome to cadence

	fast := base
	fast.Checkpoint = 10 * time.Second
	slow := base
	slow.Checkpoint = 45 * time.Second

	a := Run(fast)
	b := Run(slow)
	if a.Skipped || b.Skipped {
		return nil // sparse world: nothing to compare
	}
	if err := firstViolation(a, b); err != nil {
		return err
	}
	if a.Fingerprint != b.Fingerprint {
		return fmt.Errorf("checkpoint cadence changed outcome: fingerprint %x (10s) vs %x (45s), seed %d",
			a.Fingerprint, b.Fingerprint, seed)
	}
	return nil
}

// RestoreTransparency checks checkpoint/restore transparency: taking a
// checkpoint mid-mission and immediately restoring it must leave the
// run bit-identical to never having done either. Reliable transport is
// excluded: its restore legitimately requeues the in-flight ARQ window.
func RestoreTransparency(seed int64) error {
	base := Generate(seed)
	base.Command = "hierarchy"
	base.Reliable = false
	base.Track = false
	base.Checkpoint = 15 * time.Second
	base.Plan = nil

	plain := Run(base)
	// A probe that silently fails makes the transparency check vacuous:
	// if the restore never happened, fingerprint equality proves
	// nothing. (This code once early-returned on TakeNow's non-nil
	// *Checckpoint result, so the restore never ran — errdrop caught
	// the discarded RestoreLast error that hid it.) Capture the error
	// and report it as a violation.
	var probeErr error
	probed := runScenario(base, nil, func(w *core.World, r *core.Runtime) {
		w.Eng.ScheduleAt(base.Horizon/2, "verify.restore-probe", func() {
			r.Checkpoints().TakeNow()
			if err := r.Checkpoints().RestoreLast(); err != nil {
				probeErr = fmt.Errorf("mid-run restore failed: %w (seed %d)", err, seed)
			}
		})
	})
	if probeErr != nil {
		return probeErr
	}
	if plain.Skipped || probed.Skipped {
		return nil
	}
	if err := firstViolation(plain, probed); err != nil {
		return err
	}
	if plain.Fingerprint != probed.Fingerprint {
		return fmt.Errorf("mid-run snapshot+restore changed outcome: fingerprint %x vs %x, seed %d",
			plain.Fingerprint, probed.Fingerprint, seed)
	}
	return nil
}

// ReplayEquivalence checks journal-replay equivalence for a scenario:
// two full builds from the same recipe must journal identical decision
// streams.
func ReplayEquivalence(s Scenario) error {
	plan := ""
	if s.Plan != nil {
		plan = s.Plan.String()
	}
	if d := checkpoint.VerifyReplay(s.Seed, plan, func(j *checkpoint.Journal) {
		runScenario(s, j, nil)
	}); d != nil {
		return fmt.Errorf("replay diverged (seed %d): %v", s.Seed, d)
	}
	return nil
}

// firstViolation surfaces an invariant violation from either side of a
// differential pair before the fingerprints are compared.
func firstViolation(outcomes ...*Outcome) error {
	for _, o := range outcomes {
		if len(o.Violations) > 0 {
			return fmt.Errorf("invariant violated during differential run: %v", o.Violations[0])
		}
	}
	return nil
}
