package verify

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpusReproducers replays every shrunk-reproducer file under
// testdata/. Each file is a scenario that once violated an invariant
// (or exercised a fixed bug's trigger path); replaying them with the
// full catalogue armed keeps the fixes regression-locked.
//
// The corpus:
//
//	acted-undeliverable-seed45.scn — a delay fault over reliable
//	    hierarchy traffic made one incident resolve twice (counted both
//	    acted and undeliverable); fixed by per-incident terminal
//	    resolution in core.Runtime.
//	warm-failover-seed55.scn — delay + post crash + warm failover: the
//	    requeued ARQ window re-delivers orders that already executed.
//	cold-failover-seed30.scn — repeated post loss + composite kills +
//	    cold failover under tracking.
func TestCorpusReproducers(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.scn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files under testdata/")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			// Corpus files must declare the schema version this build
			// writes; a format change without re-shrinking the corpus
			// fails here, not with a confusing misparse downstream.
			wantHeader := fmt.Sprintf("scenario v%d", SchemaVersion)
			if header, _, _ := strings.Cut(string(src), "\n"); header != wantHeader {
				t.Fatalf("corpus header %q, want %q; re-shrink this reproducer for the new format", header, wantHeader)
			}
			s, err := ParseScenario(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			// The file form must be canonical (String is Parse's inverse).
			if s.String() != string(src) {
				t.Fatalf("corpus file is not canonical:\n%s\nvs\n%s", string(src), s.String())
			}
			out := Run(s)
			if out.Skipped {
				t.Fatal("corpus scenario unsynthesizable")
			}
			if len(out.Violations) > 0 {
				t.Fatalf("corpus scenario violates invariants again: %s", out.Summary)
			}
			t.Logf("%s", out.Summary)
		})
	}
}

// TestScenarioSchemaVersion pins the parser's version gate: files from
// a future (or garbled) format are rejected with a version error, not
// misparsed.
func TestScenarioSchemaVersion(t *testing.T) {
	valid := Generate(1).String()
	if _, err := ParseScenario(valid); err != nil {
		t.Fatalf("current-version scenario rejected: %v", err)
	}
	head := fmt.Sprintf("scenario v%d", SchemaVersion)
	cases := []struct {
		name, src, wantErr string
	}{
		{"future version",
			strings.Replace(valid, head, fmt.Sprintf("scenario v%d", SchemaVersion+1), 1),
			fmt.Sprintf("schema v%d not supported", SchemaVersion+1)},
		{"no version number", strings.Replace(valid, head, "scenario vX", 1), "not a scenario file"},
		{"missing header", strings.Replace(valid, head+"\n", "", 1), "not a scenario file"},
		{"empty", "", "not a scenario file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
