package verify

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCorpusReproducers replays every shrunk-reproducer file under
// testdata/. Each file is a scenario that once violated an invariant
// (or exercised a fixed bug's trigger path); replaying them with the
// full catalogue armed keeps the fixes regression-locked.
//
// The corpus:
//
//	acted-undeliverable-seed45.scn — a delay fault over reliable
//	    hierarchy traffic made one incident resolve twice (counted both
//	    acted and undeliverable); fixed by per-incident terminal
//	    resolution in core.Runtime.
//	warm-failover-seed55.scn — delay + post crash + warm failover: the
//	    requeued ARQ window re-delivers orders that already executed.
//	cold-failover-seed30.scn — repeated post loss + composite kills +
//	    cold failover under tracking.
func TestCorpusReproducers(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.scn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no corpus files under testdata/")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			s, err := ParseScenario(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			// The file form must be canonical (String is Parse's inverse).
			if s.String() != string(src) {
				t.Fatalf("corpus file is not canonical:\n%s\nvs\n%s", string(src), s.String())
			}
			out := Run(s)
			if out.Skipped {
				t.Fatal("corpus scenario unsynthesizable")
			}
			if len(out.Violations) > 0 {
				t.Fatalf("corpus scenario violates invariants again: %s", out.Summary)
			}
			t.Logf("%s", out.Summary)
		})
	}
}
